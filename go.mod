module etude

go 1.22
