// Package etude_test hosts the benchmark harness that regenerates every
// table and figure of the paper's experimental study (§III):
//
//	BenchmarkFig2Infrastructure  — Fig 2: TorchServe vs the ETUDE server
//	BenchmarkSyntheticValidation — §III-A: synthetic vs real click logs
//	BenchmarkFig3Micro           — Fig 3: serial latency vs catalog size
//	BenchmarkFig4EndToEnd        — Fig 4: latency/throughput per scenario
//	BenchmarkTable1Deployments   — Table I: cost-efficient deployments
//	BenchmarkModelIssues         — §III-C: RecBole implementation issues
//
// plus ablation benchmarks for the design decisions called out in
// DESIGN.md and per-model inference micro-benchmarks. Macro benchmarks run
// scaled-down parameters so `go test -bench=.` finishes in minutes; rerun
// with -benchtime=1x and the paper-scale knobs in internal/experiments for
// full fidelity. Rendered result tables appear with `go test -bench=. -v`.
package etude_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"etude/internal/ann"
	"etude/internal/autoscale"
	"etude/internal/batching"
	"etude/internal/core"
	"etude/internal/costmodel"
	"etude/internal/device"
	"etude/internal/experiments"
	"etude/internal/httpapi"
	"etude/internal/knn"
	"etude/internal/loadgen"
	"etude/internal/metrics"
	"etude/internal/model"
	"etude/internal/quant"
	"etude/internal/runtimes"
	"etude/internal/sim"
	"etude/internal/topk"
	"etude/internal/torchserve"
	"etude/internal/workload"
)

// BenchmarkFig2Infrastructure reruns the infrastructure test (scaled: ramp
// to 700 req/s over 4s instead of 1,000 req/s over 10 min). Reported
// metrics: p90 of both servers (ms) and TorchServe's error count.
func BenchmarkFig2Infrastructure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(context.Background(), experiments.Fig2Config{
			TargetRate: 700,
			Duration:   4 * time.Second,
			Tick:       500 * time.Millisecond,
			TorchServe: torchserve.DefaultConfig(),
			Seed:       1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Etude.Overall.P90)/1e6, "etude-p90-ms")
		b.ReportMetric(float64(res.TorchServe.Overall.P90)/1e6, "torchserve-p90-ms")
		b.ReportMetric(float64(res.TorchServe.Errors), "torchserve-errors")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkSyntheticValidation reruns the §III-A workload validation.
// Reported metric: relative p90 difference between real-log replay and the
// synthetic workload regenerated from its fitted marginals.
func BenchmarkSyntheticValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Validation(context.Background(), experiments.ValidationConfig{
			CatalogSize: 5_000,
			RealClicks:  30_000,
			TargetRate:  200,
			Duration:    3 * time.Second,
			Tick:        500 * time.Millisecond,
			Model:       "gru4rec",
			Seed:        1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.P90RatioDiff*100, "p90-diff-%")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkFig3Micro regenerates the micro-benchmark sweep over all ten
// models, the paper's four catalog sizes, CPU and T4, eager and JIT
// (cost-model mode, as on-paper GPU hardware is simulated).
func BenchmarkFig3Micro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig3Config()
		cfg.Requests = 100
		res, err := experiments.Fig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		report := func(m string, c int, d, e string, unit string) {
			for _, r := range res.Rows {
				if r.Model == m && r.CatalogSize == c && r.Device == d && r.Exec == e {
					b.ReportMetric(float64(r.P90)/1e6, unit)
				}
			}
		}
		report("gru4rec", 1_000_000, "cpu", "eager", "cpu-1e6-eager-ms")
		report("gru4rec", 1_000_000, "gpu-t4", "jit", "t4-1e6-jit-ms")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkFig3MicroMeasured is the live companion of Fig 3: the real Go
// models executed serially on this machine's CPU (catalog sizes scaled to
// what a test box handles in seconds).
func BenchmarkFig3MicroMeasured(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(experiments.Fig3Config{
			Models:       model.Names(),
			CatalogSizes: []int{10_000, 100_000},
			Devices:      []string{"cpu"},
			Requests:     30,
			Mode:         experiments.Fig3Measured,
			Seed:         1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkFig4EndToEnd regenerates the end-to-end study on the simulator
// (virtual 30-second ramps; the full 10-minute runs are a flag away).
func BenchmarkFig4EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig4Config()
		cfg.Duration = 30 * time.Second
		res, err := experiments.Fig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		meets := 0
		for _, r := range res.Rows {
			if r.MeetsSLO {
				meets++
			}
		}
		b.ReportMetric(float64(meets), "combos-meeting-slo")
		b.ReportMetric(float64(len(res.Rows)), "combos-total")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkTable1Deployments regenerates Table I: per-scenario capacity
// search, fleet sizing and cost ranking for the six healthy models.
func BenchmarkTable1Deployments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(experiments.DefaultTable1Config())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			for _, o := range row.Options {
				if o.Cheapest {
					b.ReportMetric(o.MonthlyUSD, "cheapest-$-"+shortName(row.Scenario.Name))
				}
			}
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func shortName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkModelIssues regenerates the §III-C implementation-issue study.
func BenchmarkModelIssues(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Issues(experiments.DefaultIssuesConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.FixedSerial > 0 {
				b.ReportMetric(float64(row.FaithfulSerial)/float64(row.FixedSerial), row.Model+"-slowdown-x")
			}
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkModelInference measures real single-request inference latency of
// every model on this machine's CPU (C=100k, eager vs JIT) — the live
// ground truth behind the Fig 3 CPU lines.
func BenchmarkModelInference(b *testing.B) {
	session := []int64{17, 430, 99, 17, 2048}
	for _, name := range model.Names() {
		m, err := model.New(name, model.Config{CatalogSize: 100_000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/eager", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Recommend(session)
			}
		})
		if jc, ok := m.(model.JITCompilable); ok {
			compiled := jc.CompiledRecommend()
			b.Run(name+"/jit", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					compiled(session)
				}
			})
		}
	}
}

// BenchmarkWorkloadGeneration measures synthetic click generation; the
// paper claims >1M clicks/second on one core at C=1e7.
func BenchmarkWorkloadGeneration(b *testing.B) {
	gen, err := workload.NewGenerator(workload.Spec{
		CatalogSize: 10_000_000,
		NumClicks:   1,
		AlphaLength: 2.2,
		AlphaClicks: 1.6,
		Seed:        1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	clicks := 0
	for i := 0; i < b.N; i++ {
		clicks += len(gen.NextSession())
	}
	b.ReportMetric(float64(clicks)/b.Elapsed().Seconds(), "clicks/s")
}

// BenchmarkAblationBackpressure contrasts the backpressure-aware load
// generator with a naive open-loop generator against an overloaded target:
// the naive loop piles up unbounded in-flight work while Algorithm 2 keeps
// it bounded and sheds load gracefully.
func BenchmarkAblationBackpressure(b *testing.B) {
	slowTarget := func() (loadgen.Target, *int64) {
		var inFlight, maxInFlight int64
		var mu sync.Mutex
		return loadgen.FuncTarget(func(ctx context.Context, r httpapi.PredictRequest) error {
			mu.Lock()
			inFlight++
			if inFlight > maxInFlight {
				maxInFlight = inFlight
			}
			mu.Unlock()
			defer func() { mu.Lock(); inFlight--; mu.Unlock() }()
			select {
			case <-time.After(800 * time.Millisecond): // far slower than the offered rate
			case <-ctx.Done():
				return ctx.Err()
			}
			return nil
		}), &maxInFlight
	}
	src := fixedSessions{workload.Session{1, 2}}

	b.Run("algorithm2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tgt, maxInFlight := slowTarget()
			res, err := loadgen.Run(context.Background(), loadgen.Config{
				TargetRate: 500, Duration: time.Second, Tick: 100 * time.Millisecond,
				RequestTimeout: 2 * time.Second, DrainTimeout: 3 * time.Second,
			}, &src, tgt)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(*maxInFlight), "max-inflight")
			b.ReportMetric(float64(res.Backpressured), "shed")
		}
	})
	b.Run("openloop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tgt, maxInFlight := slowTarget()
			var wg sync.WaitGroup
			for r := 0; r < 500; r++ { // one second at 500 req/s, fired blind
				wg.Add(1)
				go func() {
					defer wg.Done()
					ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
					defer cancel()
					_ = tgt.Predict(ctx, httpapi.PredictRequest{Items: []int64{1}})
				}()
				time.Sleep(2 * time.Millisecond)
			}
			wg.Wait()
			b.ReportMetric(float64(*maxInFlight), "max-inflight")
		}
	})
}

type fixedSessions struct{ s workload.Session }

func (f *fixedSessions) NextSession() workload.Session { return f.s }

// BenchmarkAblationBatching contrasts GPU serving with the paper's
// 1024/2ms batcher against unbatched serving, at the e-Commerce scenario's
// per-instance load: batching amortises the catalog scan across requests.
func BenchmarkAblationBatching(b *testing.B) {
	run := func(maxBatch int) *sim.RunResult {
		eng := sim.NewEngine()
		in, err := sim.NewInstance(eng, device.GPUT4(), "gru4rec",
			model.Config{CatalogSize: 10_000_000, Seed: 1}, true, 2*time.Millisecond, maxBatch)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.RunBenchmark(eng, sim.LoadConfig{
			TargetRate: 200, Duration: 20 * time.Second, NoRamp: true, Seed: 1,
		}, []*sim.Instance{in})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	b.Run("batched-1024", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := run(1024)
			b.ReportMetric(float64(res.Recorder.Overall().P90)/1e6, "p90-ms")
			b.ReportMetric(float64(res.Recorder.Errors()), "errors")
		}
	})
	b.Run("unbatched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := run(1)
			b.ReportMetric(float64(res.Recorder.Overall().P90)/1e6, "p90-ms")
			b.ReportMetric(float64(res.Recorder.Errors()), "errors")
		}
	})
}

// BenchmarkAblationTopK contrasts the bounded-heap top-k selection
// (O(C log k)) against a full sort (O(C log C)) over a million scores.
func BenchmarkAblationTopK(b *testing.B) {
	m, err := model.New("core", model.Config{CatalogSize: 1 << 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	recs := m.Recommend([]int64{1, 2, 3})
	scores := make([]float32, 1<<20)
	for i := range scores {
		scores[i] = float32(i%977) / 977
	}
	_ = recs
	b.Run("heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			topk.SelectFromScores(scores, model.DefaultTopK)
		}
	})
	b.Run("fullsort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			topk.SelectFromScoresSorted(scores, model.DefaultTopK)
		}
	})
}

// BenchmarkAblationJIT measures the real effect of the compiled execution
// plans (buffer reuse, pre-transposed weights) at a serving-relevant
// catalog size.
func BenchmarkAblationJIT(b *testing.B) {
	m, err := model.New("gru4rec", model.Config{CatalogSize: 1_000_000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	session := []int64{5, 17, 99}
	b.Run("eager", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Recommend(session)
		}
	})
	compiled := m.(model.JITCompilable).CompiledRecommend()
	b.Run("jit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			compiled(session)
		}
	})
}

// BenchmarkBatcherThroughput measures the live request batcher under
// concurrent submission.
func BenchmarkBatcherThroughput(b *testing.B) {
	batcher, err := batching.New(batching.DefaultConfig(), func(in []int) []int { return in })
	if err != nil {
		b.Fatal(err)
	}
	defer batcher.Close()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := batcher.Submit(context.Background(), 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHistogramRecord measures the lock-free latency histogram.
func BenchmarkHistogramRecord(b *testing.B) {
	h := metrics.NewHistogram()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Record(3 * time.Millisecond)
		}
	})
}

// BenchmarkSimulatedTenMinuteRun demonstrates the simulator's speed: a full
// paper-scale end-to-end run (10-minute ramp to 1,000 req/s on 5 T4s at
// C=1e7) per iteration.
func BenchmarkSimulatedTenMinuteRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ms, err := core.RunSim(core.Spec{
			Name:        "bench",
			Models:      []string{"gru4rec"},
			Instances:   []string{"gpu-t4"},
			CatalogSize: 10_000_000,
			JIT:         true,
			TargetRate:  1000,
			Duration:    10 * time.Minute,
			Replicas:    5,
			Seed:        1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(ms[0].Latency.P90)/1e6, "p90-ms")
		if !ms[0].MeetsSLO {
			b.Fatalf("five T4s must handle the e-Commerce scenario: %+v", ms[0].Latency)
		}
	}
}

// benchmarks are bound by the SLO constant; keep the import alive and the
// value visible in -v output.
var _ = costmodel.LatencySLO

// BenchmarkRetrievalServing contrasts exact MIPS with the two future-work
// retrieval stages (int8 quantisation, IVF at 1/16 probes) on real model
// inference at a serving-relevant catalog size.
func BenchmarkRetrievalServing(b *testing.B) {
	m, err := model.New("gru4rec", model.Config{CatalogSize: 500_000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	enc := m.(model.Encoder)
	session := []int64{17, 430, 99}

	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Recommend(session)
		}
	})

	table, err := quant.Quantize(enc.ItemEmbeddings())
	if err != nil {
		b.Fatal(err)
	}
	quantized, err := model.WithRetrieval(enc, table)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("int8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			quantized.Recommend(session)
		}
	})

	index, err := ann.Build(enc.ItemEmbeddings(), ann.Config{NLists: 256, KMeansIters: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	approx, err := model.WithRetrieval(enc, model.RetrieverFunc(index.Retriever(16)))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("ivf-16of256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			approx.Recommend(session)
		}
	})
}

// BenchmarkNonNeuralBaseline quantifies the paper's concluding remark that
// platform-scale catalogs (C=2e7) "can be handled much cheaper with
// non-neural approaches": a session-kNN recommender measured on this
// machine's CPU against the neural models' simulated A100 requirement.
func BenchmarkNonNeuralBaseline(b *testing.B) {
	gen, err := workload.NewGenerator(workload.Spec{
		CatalogSize: 20_000_000, NumClicks: 1,
		AlphaLength: 2.2, AlphaClicks: 1.6, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	history := make([]workload.Session, 0, 20_000)
	for i := 0; i < 20_000; i++ {
		history = append(history, gen.NextSession())
	}
	idx, err := knn.Train(history, knn.Config{CatalogSize: 20_000_000})
	if err != nil {
		b.Fatal(err)
	}
	session := history[3]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Recommend(session)
	}
	b.StopTimer()
	perReq := b.Elapsed() / time.Duration(b.N)
	// Conservative capacity estimate: all 5 CPU cores serving.
	capacity := 5 / perReq.Seconds()
	b.ReportMetric(capacity, "cpu-capacity-req/s")
	// The neural alternative at this scale: 3 A100 instances.
	b.ReportMetric(3*device.GPUA100().MonthlyCostUSD, "neural-$/month")
	b.ReportMetric(float64(int(1000/capacity)+1)*device.CPU().MonthlyCostUSD, "vsknn-$/month")
}

// BenchmarkRuntimeComparison regenerates the future-work runtime study:
// serial latency per inference runtime per device at C=1e6.
func BenchmarkRuntimeComparison(b *testing.B) {
	cfg := model.Config{CatalogSize: 1_000_000, Seed: 1}
	for i := 0; i < b.N; i++ {
		for _, rt := range runtimes.All() {
			for _, spec := range device.All() {
				lat, ok, err := rt.SerialInference(spec, "sasrec", cfg, 3)
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					continue
				}
				b.ReportMetric(float64(lat)/1e6, rt.Name+"-"+spec.Name+"-ms")
			}
		}
	}
}

// BenchmarkAutoscaler quantifies the autoscaling extension: a diurnal day
// (trough 40 req/s, peak 500 req/s) served by a static peak-sized CPU fleet
// vs the utilisation-driven autoscaler. Reported: instance-seconds and the
// implied monthly cost of each.
func BenchmarkAutoscaler(b *testing.B) {
	profile := autoscale.DiurnalProfile(40, 500, 240)
	const day = 480 * time.Second
	base := autoscale.Config{
		Device:   device.CPU(),
		Model:    "gru4rec",
		ModelCfg: model.Config{CatalogSize: 1_000_000, Seed: 1},
		JIT:      true,
		Interval: 5 * time.Second,
		Seed:     1,
	}
	for i := 0; i < b.N; i++ {
		staticCfg := base
		staticCfg.MinReplicas, staticCfg.MaxReplicas = 4, 4
		static, err := autoscale.Run(staticCfg, profile, day)
		if err != nil {
			b.Fatal(err)
		}
		autoCfg := base
		autoCfg.MinReplicas, autoCfg.MaxReplicas = 1, 4
		auto, err := autoscale.Run(autoCfg, profile, day)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(static.MonthlyUSD(device.CPU(), day), "static-$/month")
		b.ReportMetric(auto.MonthlyUSD(device.CPU(), day), "autoscaled-$/month")
		b.ReportMetric((1-auto.InstanceSeconds/static.InstanceSeconds)*100, "saving-%")
		if !auto.MeetsSLO(60 * time.Millisecond) {
			b.Fatalf("autoscaled fleet missed the SLO: %+v", auto.Recorder.Overall())
		}
	}
}

// BenchmarkMIPSLinearity measures the real (Go-executed) catalog-scan
// latency at growing catalog sizes — live evidence for Fig 3's headline
// that inference latency is linear in C.
func BenchmarkMIPSLinearity(b *testing.B) {
	for _, c := range []int{10_000, 100_000, 1_000_000} {
		m, err := model.New("core", model.Config{CatalogSize: c, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		compiled := m.(model.JITCompilable).CompiledRecommend()
		session := []int64{1, 2, 3}
		b.Run(fmt.Sprintf("C=%d", c), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				compiled(session)
			}
		})
	}
}
