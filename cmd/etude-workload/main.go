// Command etude-workload generates synthetic click logs (Algorithm 1) and
// fits workload statistics to existing logs — the tooling behind ETUDE's
// "estimate once from a real click log and reuse for experiments later"
// workflow.
//
// Examples:
//
//	etude-workload generate -catalog 100000 -clicks 1000000 > clicks.csv
//	etude-workload fit < clicks.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"etude/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "generate":
		generate(os.Args[2:])
	case "fit":
		fit(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  etude-workload generate [-catalog C] [-clicks N] [-alpha-length a] [-alpha-clicks a] [-seed s]
  etude-workload fit   (reads a click log from stdin)`)
	os.Exit(2)
}

func generate(args []string) {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	var (
		catalog     = fs.Int("catalog", 100_000, "catalog size C")
		clicks      = fs.Int("clicks", 100_000, "number of clicks N")
		alphaLength = fs.Float64("alpha-length", 2.2, "session-length exponent α_l")
		alphaClicks = fs.Float64("alpha-clicks", 1.6, "click-count exponent α_c")
		maxLen      = fs.Int("max-session", 50, "maximum session length")
		seed        = fs.Int64("seed", 1, "sampling seed")
	)
	_ = fs.Parse(args)

	gen, err := workload.NewGenerator(workload.Spec{
		CatalogSize:   *catalog,
		NumClicks:     *clicks,
		AlphaLength:   *alphaLength,
		AlphaClicks:   *alphaClicks,
		MaxSessionLen: *maxLen,
		Seed:          *seed,
	})
	if err != nil {
		log.Fatalf("etude-workload: %v", err)
	}
	if err := workload.WriteClicks(os.Stdout, gen.Generate()); err != nil {
		log.Fatalf("etude-workload: %v", err)
	}
}

func fit(args []string) {
	fs := flag.NewFlagSet("fit", flag.ExitOnError)
	_ = fs.Parse(args)

	clicks, err := workload.ReadClicks(os.Stdin)
	if err != nil {
		log.Fatalf("etude-workload: %v", err)
	}
	stats, err := workload.Fit(clicks)
	if err != nil {
		log.Fatalf("etude-workload: %v", err)
	}
	fmt.Printf("clicks:            %d\n", stats.NumClicks)
	fmt.Printf("sessions:          %d\n", stats.NumSessions)
	fmt.Printf("distinct items:    %d\n", stats.DistinctItems)
	fmt.Printf("mean session len:  %.2f\n", stats.MeanSessionLen)
	fmt.Printf("alpha_length:      %.4f\n", stats.AlphaLength)
	fmt.Printf("alpha_clicks:      %.4f\n", stats.AlphaClicks)
}
