// Command etude-loadgen is ETUDE's backpressure-aware load generator
// (Algorithm 2) as a standalone tool: it ramps a synthetic click workload
// up to a target request rate against an inference server and reports
// latency and error statistics.
//
// Example:
//
//	etude-loadgen -url http://localhost:8080 -rate 1000 -duration 10m \
//	    -catalog 100000 -alpha-length 2.2 -alpha-clicks 1.6
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"etude/internal/loadgen"
	"etude/internal/report"
	"etude/internal/workload"
)

func main() {
	var (
		url         = flag.String("url", "http://localhost:8080", "inference server base URL")
		rate        = flag.Float64("rate", 1000, "target throughput (requests/second)")
		duration    = flag.Duration("duration", 10*time.Minute, "ramp-up duration d")
		catalog     = flag.Int("catalog", 100_000, "catalog size C for synthetic clicks")
		alphaLength = flag.Float64("alpha-length", 2.2, "session-length power-law exponent α_l")
		alphaClicks = flag.Float64("alpha-clicks", 1.6, "click-count power-law exponent α_c")
		timeout     = flag.Duration("timeout", time.Second, "per-request timeout")
		slo         = flag.Duration("slo", 0, "end-to-end SLO budget per logical request, shared across retries and propagated via the X-Deadline header (0 = off)")
		tenant      = flag.String("tenant", "", "tenant label stamped on every request (X-Tenant header + body field; retries reuse it); empty = anonymous")
		seed        = flag.Int64("seed", 1, "workload seed")
		seriesCSV   = flag.String("series-csv", "", "also write the per-tick series as a CSV (stamped with the build identity) to this file")
	)
	flag.Parse()

	gen, err := workload.NewGenerator(workload.Spec{
		CatalogSize: *catalog,
		NumClicks:   1,
		AlphaLength: *alphaLength,
		AlphaClicks: *alphaClicks,
		Seed:        *seed,
	})
	if err != nil {
		log.Fatalf("etude-loadgen: %v", err)
	}

	target := loadgen.NewHTTPTarget(*url)
	readyCtx, cancelReady := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelReady()
	if err := target.WaitReady(readyCtx); err != nil {
		log.Fatalf("etude-loadgen: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	log.Printf("ramping to %.0f req/s over %v against %s", *rate, *duration, *url)
	res, err := loadgen.Run(ctx, loadgen.Config{
		TargetRate:     *rate,
		Duration:       *duration,
		RequestTimeout: *timeout,
		SLO:            *slo,
		Tenant:         *tenant,
	}, gen, target)
	if err != nil {
		log.Fatalf("etude-loadgen: %v", err)
	}

	snap := res.Recorder.Overall()
	fmt.Printf("sent=%d errors=%d backpressured=%d\n", res.Recorder.Sent(), res.Recorder.Errors(), res.Backpressured)
	fmt.Printf("latency: %s\n", snap)
	fmt.Printf("%-6s %8s %8s %8s %12s\n", "tick", "sent", "done", "errors", "p90")
	for _, ts := range res.Recorder.Series() {
		fmt.Printf("%-6d %8d %8d %8d %12s\n", ts.Tick, ts.Sent, ts.Completed, ts.Errors, ts.P90.Round(time.Microsecond))
	}
	if *seriesCSV != "" {
		f, err := os.Create(*seriesCSV)
		if err != nil {
			log.Fatalf("etude-loadgen: %v", err)
		}
		if err := report.WriteSeriesCSV(f, res.Recorder.Series()); err != nil {
			f.Close()
			log.Fatalf("etude-loadgen: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("etude-loadgen: %v", err)
		}
		log.Printf("series written to %s", *seriesCSV)
	}
}
