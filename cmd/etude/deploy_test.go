package main

import (
	"errors"
	"testing"

	"etude/internal/deploy"
	"etude/internal/model"
	"etude/internal/objstore"
)

func publishTestRelease(t *testing.T, store *deploy.Store, seed int64) deploy.Release {
	t.Helper()
	cfg := model.Config{CatalogSize: 500, Seed: seed}
	m, err := model.New("gru4rec", cfg)
	if err != nil {
		t.Fatal(err)
	}
	weights, err := model.SaveWeights(m)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := store.Publish(model.Manifest{Model: "gru4rec", Config: cfg}, weights, "")
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// TestRollbackRelease drives the CLI's rollback orchestration: CURRENT
// returns to PREVIOUS, the bad release is quarantined, and a second
// rollback refuses because the only remaining predecessor is the
// quarantined release itself.
func TestRollbackRelease(t *testing.T) {
	store := deploy.NewStore(objstore.NewMemBucket())
	v1 := publishTestRelease(t, store, 1)
	v2 := publishTestRelease(t, store, 2)
	if err := store.Promote(v1.Version); err != nil {
		t.Fatal(err)
	}
	if err := store.Promote(v2.Version); err != nil {
		t.Fatal(err)
	}

	from, to, err := rollbackRelease(store, "latency regression")
	if err != nil {
		t.Fatal(err)
	}
	if from != v2.Version || to != v1.Version {
		t.Fatalf("rollback moved v%d -> v%d, want v%d -> v%d", from, to, v2.Version, v1.Version)
	}
	cur, err := store.Current()
	if err != nil || cur.Version != v1.Version {
		t.Fatalf("current after rollback = v%d, %v", cur.Version, err)
	}
	reason, q := store.QuarantineReason(v2.Version)
	if !q || reason != "latency regression" {
		t.Fatalf("v2 quarantine = %q, %v", reason, q)
	}

	// PREVIOUS now names the quarantined v2; rolling back again must fail
	// without moving the pointer.
	if _, _, err := rollbackRelease(store, "again"); err == nil {
		t.Fatal("rollback onto a quarantined release accepted")
	}
	if cur, err := store.Current(); err != nil || cur.Version != v1.Version {
		t.Fatalf("failed rollback moved the pointer: v%d, %v", cur.Version, err)
	}
}

func TestRollbackReleaseRequiresHistory(t *testing.T) {
	store := deploy.NewStore(objstore.NewMemBucket())
	if _, _, err := rollbackRelease(store, "x"); !errors.Is(err, deploy.ErrNoCurrent) {
		t.Fatalf("rollback on empty store = %v, want ErrNoCurrent", err)
	}
	v1 := publishTestRelease(t, store, 1)
	if err := store.Promote(v1.Version); err != nil {
		t.Fatal(err)
	}
	// One promotion, no predecessor.
	if _, _, err := rollbackRelease(store, "x"); err == nil {
		t.Fatal("rollback without a previous release accepted")
	}
}

// TestStorePrevious pins the accessor the CLI stands on: absent before
// any second promotion, then tracking the superseded release.
func TestStorePrevious(t *testing.T) {
	store := deploy.NewStore(objstore.NewMemBucket())
	if _, err := store.Previous(); !errors.Is(err, deploy.ErrNoCurrent) {
		t.Fatalf("Previous on empty store = %v, want ErrNoCurrent", err)
	}
	v1 := publishTestRelease(t, store, 1)
	v2 := publishTestRelease(t, store, 2)
	if err := store.Promote(v1.Version); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Previous(); !errors.Is(err, deploy.ErrNoCurrent) {
		t.Fatalf("Previous after first promotion = %v, want ErrNoCurrent", err)
	}
	if err := store.Promote(v2.Version); err != nil {
		t.Fatal(err)
	}
	prev, err := store.Previous()
	if err != nil || prev.Version != v1.Version {
		t.Fatalf("Previous = v%d, %v; want v%d", prev.Version, err, v1.Version)
	}
}
