// The deploy subcommand is the operator face of the release store
// (internal/deploy): it publishes checksummed model releases into a
// bucket, moves the fleet-wide CURRENT pointer, and rolls a bad
// promotion back to the preserved PREVIOUS release. Servers started
// with `-releases` and `-watch-releases` pick the pointer moves up
// live, without a restart — publishing from this CLI while a fleet is
// serving is the manual analogue of the canary controller's flow.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"etude/internal/deploy"
	"etude/internal/model"
	"etude/internal/objstore"
)

func deployCmd(args []string) {
	if len(args) < 1 {
		deployUsage()
	}
	action, rest := args[0], args[1:]
	fs := flag.NewFlagSet("deploy "+action, flag.ExitOnError)
	bucketDir := fs.String("bucket", "./etude-bucket", "bucket directory holding the release store")
	switch action {
	case "publish":
		var (
			modelName = fs.String("model", "gru4rec", "model architecture to publish")
			catalog   = fs.Int("catalog", 10_000, "catalog size C")
			seed      = fs.Int64("seed", 1, "weight-initialisation seed")
			notes     = fs.String("notes", "", "free-form release notes")
			promote   = fs.Bool("promote", false, "move the CURRENT pointer to the new release immediately")
		)
		_ = fs.Parse(rest)
		store := openReleaseStore(*bucketDir)
		cfg := model.Config{CatalogSize: *catalog, Seed: *seed}
		m, err := model.New(*modelName, cfg)
		if err != nil {
			log.Fatalf("etude deploy publish: %v", err)
		}
		weights, err := model.SaveWeights(m)
		if err != nil {
			log.Fatalf("etude deploy publish: %v", err)
		}
		rel, err := store.Publish(model.Manifest{Model: *modelName, Config: cfg}, weights, *notes)
		if err != nil {
			log.Fatalf("etude deploy publish: %v", err)
		}
		fmt.Printf("published v%d: %s C=%d (%d artifacts, %d bytes)\n",
			rel.Version, rel.Model, *catalog, len(rel.Artifacts), releaseBytes(rel))
		if *promote {
			if err := store.Promote(rel.Version); err != nil {
				log.Fatalf("etude deploy publish: %v", err)
			}
			fmt.Printf("promoted v%d: CURRENT pointer moved\n", rel.Version)
		} else {
			fmt.Printf("staged only — run `etude deploy promote -bucket %s -version %d` to serve it\n",
				*bucketDir, rel.Version)
		}

	case "promote":
		version := fs.Int("version", 0, "staged release version to promote")
		_ = fs.Parse(rest)
		if *version <= 0 {
			log.Fatal("etude deploy promote: -version is required")
		}
		store := openReleaseStore(*bucketDir)
		if err := store.Promote(*version); err != nil {
			log.Fatalf("etude deploy promote: %v", err)
		}
		fmt.Printf("promoted v%d: CURRENT pointer moved\n", *version)

	case "rollback":
		reason := fs.String("reason", "operator rollback", "quarantine reason recorded against the rolled-back release")
		_ = fs.Parse(rest)
		store := openReleaseStore(*bucketDir)
		from, to, err := rollbackRelease(store, *reason)
		if err != nil {
			log.Fatalf("etude deploy rollback: %v", err)
		}
		fmt.Printf("rolled back v%d -> v%d (v%d quarantined: %s)\n", from, to, from, *reason)

	case "list":
		_ = fs.Parse(rest)
		store := openReleaseStore(*bucketDir)
		rels, err := store.List()
		if err != nil {
			log.Fatalf("etude deploy list: %v", err)
		}
		cur, curErr := store.Current()
		fmt.Printf("%-8s %-10s %10s %-12s %s\n", "version", "model", "bytes", "status", "notes")
		for _, rel := range rels {
			status := "staged"
			if curErr == nil && rel.Version == cur.Version {
				status = "current"
			}
			if reason, q := store.QuarantineReason(rel.Version); q {
				status = "quarantined(" + reason + ")"
			}
			fmt.Printf("%-8s %-10s %10d %-12s %s\n",
				fmt.Sprintf("v%d", rel.Version), rel.Model, releaseBytes(rel), status, rel.Notes)
		}

	case "status":
		_ = fs.Parse(rest)
		store := openReleaseStore(*bucketDir)
		cur, err := store.Current()
		switch {
		case errors.Is(err, deploy.ErrNoCurrent):
			fmt.Println("current: none (nothing promoted yet)")
		case err != nil:
			log.Fatalf("etude deploy status: %v", err)
		default:
			verdict := "verified"
			if verr := store.Verify(cur); verr != nil {
				verdict = "CORRUPT: " + verr.Error()
			}
			fmt.Printf("current:  v%d (%s, %d bytes) — %s\n", cur.Version, cur.Model, releaseBytes(cur), verdict)
		}
		if prev, err := store.Previous(); err == nil {
			if reason, q := store.QuarantineReason(prev.Version); q {
				fmt.Printf("previous: v%d (%s) — quarantined (%s), not a rollback target\n", prev.Version, prev.Model, reason)
			} else {
				fmt.Printf("previous: v%d (%s) — rollback target\n", prev.Version, prev.Model)
			}
		} else {
			fmt.Println("previous: none")
		}
		if latest, err := store.Latest(); err == nil {
			fmt.Printf("latest:   v%d staged\n", latest)
		}

	default:
		deployUsage()
	}
}

// rollbackRelease moves CURRENT back to the preserved PREVIOUS release
// and quarantines the release it replaced. Promotion happens first so a
// failing rollback (previous release corrupt or quarantined) leaves the
// store untouched rather than quarantining the only serving release.
func rollbackRelease(store *deploy.Store, reason string) (from, to int, err error) {
	cur, err := store.Current()
	if err != nil {
		return 0, 0, fmt.Errorf("resolving current release: %w", err)
	}
	prev, err := store.Previous()
	if err != nil {
		return 0, 0, fmt.Errorf("no previous release to roll back to: %w", err)
	}
	if prev.Version == cur.Version {
		return 0, 0, fmt.Errorf("PREVIOUS and CURRENT both name v%d; nothing to roll back to", cur.Version)
	}
	if err := store.Promote(prev.Version); err != nil {
		return 0, 0, fmt.Errorf("re-promoting v%d: %w", prev.Version, err)
	}
	if err := store.Quarantine(cur.Version, reason); err != nil {
		return 0, 0, fmt.Errorf("quarantining v%d: %w", cur.Version, err)
	}
	return cur.Version, prev.Version, nil
}

func releaseBytes(rel deploy.Release) int {
	total := 0
	for _, a := range rel.Artifacts {
		total += a.Bytes
	}
	return total
}

func openReleaseStore(dir string) *deploy.Store {
	b, err := objstore.NewFSBucket(dir)
	if err != nil {
		log.Fatalf("etude deploy: %v", err)
	}
	return deploy.NewStore(b)
}

func deployUsage() {
	fmt.Fprintln(os.Stderr, `usage:
  etude deploy publish  -bucket DIR -model NAME -catalog C [-seed N] [-notes S] [-promote]
  etude deploy promote  -bucket DIR -version N
  etude deploy rollback -bucket DIR [-reason S]
  etude deploy list     -bucket DIR
  etude deploy status   -bucket DIR`)
	os.Exit(2)
}
