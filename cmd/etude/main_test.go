package main

import (
	"context"
	"strings"
	"testing"
)

// TestRunExperimentIssues exercises the cheapest end of the benchmark
// dispatcher (the issues study needs no servers or long ramps).
func TestRunExperimentIssues(t *testing.T) {
	out, err := runExperiment(context.Background(), "issues", false, "inproc")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"repeatnet", "srgnn", "gcsan", "lightsans"} {
		if !strings.Contains(out, want) {
			t.Fatalf("issues output missing %q:\n%s", want, out)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := runExperiment(context.Background(), "fig9", false, "inproc"); err == nil {
		t.Fatalf("unknown experiment accepted")
	}
}

func TestBuildServerVariants(t *testing.T) {
	// The etude-server builder logic lives in cmd/etude-server; here we
	// only check the dispatcher compiles and the usage paths guard against
	// nonsense.
	if _, err := runExperiment(context.Background(), "", false, "inproc"); err == nil {
		t.Fatalf("empty experiment accepted")
	}
}
