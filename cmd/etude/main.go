// Command etude is the benchmarking framework's front door: it provisions
// local infrastructure (the `make infra` analogue), runs the paper's
// experiments, executes declarative live benchmarks (the
// `make run_deployed_benchmark` analogue) and renders stored results.
//
// Usage:
//
//	etude infra -bucket ./bucket
//	etude benchmark -experiment fig2|fig3|fig4|table1|validation|issues|runtimes|autoscale|chaos|overload|rolling|deploy|breakdown|shard|blackout|tenant|procs [-scale test|paper] [-pods inproc|proc]
//	etude bench -grid bench/smoke.json [-update-baseline]
//	etude deploy publish|promote|rollback|list|status -bucket ./bucket
//	etude live -model gru4rec -catalog 10000 -rate 100 -duration 30s [-bucket ./bucket]
//	etude report -bucket ./bucket -key results/live.json
//	etude advise -model gru4rec -catalog 10000000 -rate 1000
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime/pprof"
	"time"

	"etude/internal/advisor"
	"etude/internal/bench"
	"etude/internal/cluster"
	"etude/internal/core"
	"etude/internal/device"
	"etude/internal/experiments"
	"etude/internal/metrics"
	"etude/internal/model"
	"etude/internal/objstore"
	rpt "etude/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "infra":
		infra(os.Args[2:])
	case "benchmark":
		benchmark(os.Args[2:])
	case "bench":
		benchCmd(os.Args[2:])
	case "deploy":
		deployCmd(os.Args[2:])
	case "live":
		live(os.Args[2:])
	case "report":
		report(os.Args[2:])
	case "advise":
		advise(os.Args[2:])
	case "models":
		models(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  etude infra     -bucket DIR
  etude benchmark -experiment fig2|fig3|fig4|table1|validation|issues|runtimes|autoscale|chaos|overload|rolling|deploy|breakdown|shard|blackout|tenant|procs [-scale test|paper] [-pods inproc|proc] [-bucket DIR]
  etude bench     -grid SPEC.json [-out DIR] [-baseline DIR] [-update-baseline] [-no-gate]
  etude deploy    publish  -bucket DIR -model NAME -catalog C [-seed N] [-notes S] [-promote]
  etude deploy    promote  -bucket DIR -version N
  etude deploy    rollback -bucket DIR [-reason S]
  etude deploy    list     -bucket DIR
  etude deploy    status   -bucket DIR
  etude live      -model NAME -catalog C -rate R -duration D [-bucket DIR] [-replicas N]
  etude report    -bucket DIR -key KEY
  etude advise    -model NAME -catalog C -rate R [-slo D]
  etude models    [-catalog C]`)
	os.Exit(2)
}

// infra provisions the local stand-ins for the paper's one-time cloud
// setup: a filesystem bucket for model artifacts and results.
func infra(args []string) {
	fs := flag.NewFlagSet("infra", flag.ExitOnError)
	bucketDir := fs.String("bucket", "./etude-bucket", "bucket directory to provision")
	_ = fs.Parse(args)
	if _, err := objstore.NewFSBucket(*bucketDir); err != nil {
		log.Fatalf("etude infra: %v", err)
	}
	fmt.Printf("provisioned bucket at %s\n", *bucketDir)
	fmt.Println("infrastructure ready: deploy with `etude live` or run `etude benchmark`")
}

func benchmark(args []string) {
	fs := flag.NewFlagSet("benchmark", flag.ExitOnError)
	exp := fs.String("experiment", "", "experiment to run (see `etude benchmark -experiment list`)")
	scale := fs.String("scale", "test", "smoke (fastest), test (seconds) or paper (paper-scale parameters)")
	pods := fs.String("pods", "inproc", "pod substrate for cluster experiments: inproc (goroutine HTTP servers) or proc (real etude-server processes)")
	bucketDir := fs.String("bucket", "", "optional bucket directory for JSON results")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the experiment to this file (inspect with `go tool pprof`)")
	verbose := fs.Bool("v", false, "log cluster diagnostics (restarts, breaker trips, force-kills) to stderr")
	_ = fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *exp == "list" {
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		return
	}
	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		log.Fatalf("etude benchmark: %v", err)
	}
	if *pods != "inproc" && *pods != "proc" {
		log.Fatalf("etude benchmark: -pods must be inproc or proc, got %q", *pods)
	}
	if *verbose {
		cluster.SetLogger(cluster.NewTextLogger(os.Stderr))
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("etude benchmark: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("etude benchmark: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	out, err := runExperimentAt(ctx, *exp, sc, *pods)
	if err != nil {
		log.Fatalf("etude benchmark: %v", err)
	}
	fmt.Println(out)
	if *bucketDir != "" {
		bucket, err := objstore.NewFSBucket(*bucketDir)
		if err != nil {
			log.Fatalf("etude benchmark: %v", err)
		}
		key := fmt.Sprintf("results/%s.txt", *exp)
		if err := bucket.Put(key, []byte(out)); err != nil {
			log.Fatalf("etude benchmark: %v", err)
		}
		fmt.Printf("results written to %s/%s\n", *bucketDir, key)
	}
}

// benchCmd is the reproduction harness: it executes a declarative
// experiment grid (every listed experiment, once per seed) into a fresh
// timestamped results directory, schema-validating every CSV it writes
// and aggregating the repeats into BENCH_<experiment>.json summaries.
// Unless told otherwise it then gates those summaries against the
// committed baselines and exits non-zero when a metric regressed beyond
// its noise band, naming the trace stage that moved with it.
func benchCmd(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	gridPath := fs.String("grid", "bench/smoke.json", "experiment grid spec (JSON)")
	outDir := fs.String("out", "results/runs", "parent directory for timestamped run directories")
	baselineDir := fs.String("baseline", "results/baselines", "directory holding the committed BENCH_*.json baselines")
	update := fs.Bool("update-baseline", false, "write this run's summaries into -baseline instead of gating against it")
	noGate := fs.Bool("no-gate", false, "produce artifacts without comparing against baselines")
	_ = fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	grid, err := bench.LoadGrid(*gridPath)
	if err != nil {
		log.Fatalf("etude bench: %v", err)
	}
	rep, err := bench.Run(ctx, bench.RunOptions{Grid: grid, OutDir: *outDir, Log: os.Stderr})
	if err != nil {
		log.Fatalf("etude bench: %v", err)
	}
	fmt.Printf("results: %s\n", rep.Dir)
	if *update {
		if err := os.MkdirAll(*baselineDir, 0o755); err != nil {
			log.Fatalf("etude bench: %v", err)
		}
		for _, sum := range rep.Summaries {
			path, err := bench.WriteSummary(*baselineDir, sum)
			if err != nil {
				log.Fatalf("etude bench: %v", err)
			}
			fmt.Printf("baseline updated: %s\n", path)
		}
		return
	}
	if *noGate {
		return
	}
	findings, missing, err := bench.GateDir(*baselineDir, rep.Summaries, bench.DefaultGateConfig())
	if err != nil {
		log.Fatalf("etude bench: %v", err)
	}
	for _, exp := range missing {
		fmt.Printf("no baseline for %s in %s (run with -update-baseline to create one)\n", exp, *baselineDir)
	}
	for _, f := range findings {
		fmt.Println(f.String())
	}
	if regs := bench.Regressions(findings); len(regs) > 0 {
		log.Fatalf("etude bench: %d metric(s) regressed beyond the noise band", len(regs))
	}
	fmt.Printf("gate passed: %d experiment summaries within the noise band of %s\n",
		len(rep.Summaries)-len(missing), *baselineDir)
}

// runExperiment drives one registry experiment and renders its result.
// paper=false runs the test scale; pods selects the cluster substrate.
func runExperiment(ctx context.Context, name string, paper bool, pods string) (string, error) {
	scale := experiments.ScaleTest
	if paper {
		scale = experiments.ScalePaper
	}
	return runExperimentAt(ctx, name, scale, pods)
}

func runExperimentAt(ctx context.Context, name string, scale experiments.Scale, pods string) (string, error) {
	def, ok := experiments.Lookup(name)
	if !ok {
		return "", fmt.Errorf("unknown experiment %q", name)
	}
	res, err := def.Run(ctx, experiments.Params{Scale: scale, Pods: pods})
	if err != nil {
		return "", err
	}
	out := res.Render()
	// Fig 2 ships its plot-ready per-tick series alongside the summary.
	if f2, ok := res.(*experiments.Fig2Result); ok {
		for _, series := range []experiments.Fig2Series{f2.Etude, f2.TorchServe} {
			var csv bytes.Buffer
			if err := rpt.WriteSeriesCSV(&csv, series.Series); err != nil {
				return "", err
			}
			out += fmt.Sprintf("\n[series CSV: %s]\n%s", series.Server, csv.String())
		}
	}
	return out, nil
}

// live runs a declaratively specified benchmark against a real in-process
// deployment, like the paper's `make run_deployed_benchmark`.
func live(args []string) {
	fs := flag.NewFlagSet("live", flag.ExitOnError)
	var (
		modelName   = fs.String("model", "gru4rec", "model to deploy")
		catalog     = fs.Int("catalog", 10_000, "catalog size C")
		rate        = fs.Float64("rate", 100, "target throughput (req/s)")
		duration    = fs.Duration("duration", 30*time.Second, "ramp duration")
		replicas    = fs.Int("replicas", 1, "serving replicas")
		jit         = fs.Bool("jit", true, "serve the JIT-compiled variant")
		alphaLength = fs.Float64("alpha-length", 2.2, "session-length exponent α_l")
		alphaClicks = fs.Float64("alpha-clicks", 1.6, "click-count exponent α_c")
		bucketDir   = fs.String("bucket", "", "optional bucket directory for JSON results")
		seed        = fs.Int64("seed", 1, "seed")
	)
	_ = fs.Parse(args)

	var bucket objstore.Bucket = objstore.NewMemBucket()
	if *bucketDir != "" {
		fsb, err := objstore.NewFSBucket(*bucketDir)
		if err != nil {
			log.Fatalf("etude live: %v", err)
		}
		bucket = fsb
	}
	c := cluster.New(bucket)
	defer c.Teardown()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	spec := core.Spec{
		Name:        "live",
		Models:      []string{*modelName},
		Instances:   []string{"cpu"},
		CatalogSize: *catalog,
		JIT:         *jit,
		TargetRate:  *rate,
		Duration:    *duration,
		AlphaLength: *alphaLength,
		AlphaClicks: *alphaClicks,
		Replicas:    *replicas,
		Seed:        *seed,
	}
	log.Printf("deploying %s (C=%d, %d replica(s)) and ramping to %.0f req/s over %v",
		*modelName, *catalog, *replicas, *rate, *duration)
	ms, err := core.RunLive(ctx, c, spec)
	if err != nil {
		log.Fatalf("etude live: %v", err)
	}
	for _, m := range ms {
		fmt.Printf("%s on %s: sent=%d errors=%d backpressured=%d meetsSLO=%v\n",
			m.Model, m.Instance, m.Sent, m.Errors, m.Backpressured, m.MeetsSLO)
		fmt.Printf("latency: %s\n", m.Latency)
		fmt.Printf("outcomes: %s\n", m.Outcomes)
	}
	if *bucketDir != "" {
		if err := core.SaveResults(bucket, "results/live.json", ms); err != nil {
			log.Fatalf("etude live: %v", err)
		}
		var csv bytes.Buffer
		if err := rpt.WriteMeasurementsCSV(&csv, ms); err != nil {
			log.Fatalf("etude live: %v", err)
		}
		if err := bucket.Put("results/live.csv", csv.Bytes()); err != nil {
			log.Fatalf("etude live: %v", err)
		}
		for _, m := range ms {
			var seriesCSV bytes.Buffer
			if err := rpt.WriteSeriesCSV(&seriesCSV, m.Series); err != nil {
				log.Fatalf("etude live: %v", err)
			}
			key := fmt.Sprintf("results/live-%s-series.csv", m.Model)
			if err := bucket.Put(key, seriesCSV.Bytes()); err != nil {
				log.Fatalf("etude live: %v", err)
			}
		}
		fmt.Printf("results written to %s/results/ (json + csv)\n", *bucketDir)
	}
}

func report(args []string) {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	bucketDir := fs.String("bucket", "./etude-bucket", "bucket directory")
	key := fs.String("key", "results/live.json", "results key")
	charts := fs.Bool("charts", false, "render per-tick p90 charts")
	_ = fs.Parse(args)

	bucket, err := objstore.NewFSBucket(*bucketDir)
	if err != nil {
		log.Fatalf("etude report: %v", err)
	}
	ms, err := core.LoadResults(bucket, *key)
	if err != nil {
		log.Fatalf("etude report: %v", err)
	}
	fmt.Printf("%-12s %-10s %8s %8s %12s %12s %5s\n", "model", "instance", "sent", "errors", "p50", "p90", "SLO")
	for _, m := range ms {
		slo := "no"
		if m.MeetsSLO {
			slo = "yes"
		}
		fmt.Printf("%-12s %-10s %8d %8d %12s %12s %5s\n",
			m.Model, m.Instance, m.Sent, m.Errors,
			m.Latency.P50.Round(time.Microsecond), m.Latency.P90.Round(time.Microsecond), slo)
		if m.Outcomes != (metrics.OutcomeCounts{}) {
			fmt.Printf("  outcomes: %s\n", m.Outcomes)
		}
	}
	if *charts {
		for _, m := range ms {
			if len(m.Series) == 0 {
				continue
			}
			fmt.Println()
			fmt.Print(rpt.ASCIIChart(
				fmt.Sprintf("%s on %s — p90 per tick (ms)", m.Model, m.Instance),
				rpt.P90Series(m.Series), 40))
		}
	}
}

// advise recommends the cheapest instance fleet for a declaratively
// specified workload (simulated capacity search + end-to-end validation).
func advise(args []string) {
	fs := flag.NewFlagSet("advise", flag.ExitOnError)
	var (
		modelName = fs.String("model", "gru4rec", "model to deploy")
		catalog   = fs.Int("catalog", 100_000, "catalog size C")
		rate      = fs.Float64("rate", 250, "required throughput (req/s)")
		slo       = fs.Duration("slo", 50*time.Millisecond, "p90 latency budget")
		seed      = fs.Int64("seed", 1, "simulation seed")
	)
	_ = fs.Parse(args)

	advice, err := advisor.Advise(advisor.Request{
		Model:       *modelName,
		CatalogSize: *catalog,
		TargetRate:  *rate,
		SLO:         *slo,
		Seed:        *seed,
	})
	if err != nil {
		log.Fatalf("etude advise: %v", err)
	}
	fmt.Print(advice.Render())
}

// models lists the supported SBR models with their parameter counts and
// estimated serial inference latency at the given catalog size.
func models(args []string) {
	fs := flag.NewFlagSet("models", flag.ExitOnError)
	catalog := fs.Int("catalog", 100_000, "catalog size C for the estimates")
	_ = fs.Parse(args)

	fmt.Printf("catalog: %d items (d=%d)\n", *catalog, model.HeuristicDim(*catalog))
	fmt.Printf("%-10s %12s %14s %14s %8s %8s\n", "model", "parameters", "cpu-eager", "cpu-jit", "jit-able", "healthy")
	for _, name := range model.Names() {
		cfg := model.Config{CatalogSize: *catalog, Seed: 1}
		m, err := model.New(name, cfg)
		if err != nil {
			log.Fatalf("etude models: %v", err)
		}
		params := 0
		if src, ok := m.(model.ParamSource); ok {
			for _, p := range src.Params() {
				params += p.Len()
			}
		}
		_, jitable := m.(model.JITCompilable)
		cost, err := model.EstimateCost(name, cfg, 3)
		if err != nil {
			log.Fatalf("etude models: %v", err)
		}
		cpu := device.CPU()
		healthy := "yes"
		for _, b := range model.BrokenModels() {
			if b == name {
				healthy = "no"
			}
		}
		fmt.Printf("%-10s %12d %14s %14s %8v %8s\n",
			name, params,
			cpu.SerialInference(cost, false).Round(time.Microsecond),
			cpu.SerialInference(cost, true).Round(time.Microsecond),
			jitable, healthy)
	}
}
