// Command etude-server runs the ETUDE inference server: it deploys an SBR
// model (from flags or from an object-store bucket) and serves
// /predictions and /ping over HTTP.
//
// Examples:
//
//	etude-server -model gru4rec -catalog 100000 -port 8080
//	etude-server -static -port 8080            # Fig 2 infrastructure mode
//	etude-server -bucket ./bucket -key models/gru4rec.json
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"etude/internal/batching"
	"etude/internal/model"
	"etude/internal/objstore"
	"etude/internal/overload"
	"etude/internal/server"
	"etude/internal/trace"
)

func main() {
	var (
		modelName = flag.String("model", "", "model to serve (one of: "+fmt.Sprint(model.Names())+")")
		catalog   = flag.Int("catalog", 100_000, "catalog size C")
		seed      = flag.Int64("seed", 1, "weight initialisation seed")
		topK      = flag.Int("topk", model.DefaultTopK, "recommendations per request")
		faithful  = flag.Bool("faithful", false, "serve the RecBole-faithful (buggy) variant")
		jit       = flag.Bool("jit", true, "serve the JIT-compiled execution plan")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		batch     = flag.Bool("batch", false, "enable request batching (1024 / 2ms)")
		adaptive  = flag.Bool("adaptive", false, "enable the AIMD adaptive concurrency limiter and CoDel queue discipline")
		codelTgt  = flag.Duration("codel-target", 0, "CoDel sojourn target (0 = default 5ms; implies CoDel even without -adaptive)")
		codelIvl  = flag.Duration("codel-interval", 0, "CoDel observation interval (0 = default 100ms; implies CoDel even without -adaptive)")
		shards    = flag.Int("shards", 0, "catalog shards for in-process scatter-gather retrieval (0/1 = unsharded)")
		static    = flag.Bool("static", false, "serve empty responses without a model")
		traced    = flag.Bool("trace", false, "record per-stage latency histograms (exposed at /metrics)")
		profiled  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		bucketDir = flag.String("bucket", "", "filesystem bucket to load the model from")
		key       = flag.String("key", "", "model manifest key within the bucket")
		port      = flag.Int("port", 8080, "listen port")
	)
	flag.Parse()

	srv, err := buildServer(*modelName, *catalog, *seed, *topK, *faithful, *jit, *workers, *shards, *batch, *static, *traced, *profiled, *adaptive, *codelTgt, *codelIvl, *bucketDir, *key)
	if err != nil {
		log.Fatalf("etude-server: %v", err)
	}
	defer srv.Close()

	addr := fmt.Sprintf(":%d", *port)
	if srv.Model() != nil {
		log.Printf("serving %s (C=%d, jit=%v) on %s", srv.Model().Name(), srv.Model().Config().CatalogSize, srv.JITActive, addr)
	} else {
		log.Printf("serving static responses on %s", addr)
	}
	if err := http.ListenAndServe(addr, srv.Handler()); err != nil {
		log.Fatalf("etude-server: %v", err)
	}
}

func buildServer(modelName string, catalog int, seed int64, topK int, faithful, jit bool, workers, shards int, batch, static, traced, profiled, adaptive bool, codelTarget, codelInterval time.Duration, bucketDir, key string) (*server.Server, error) {
	opts := server.Options{Workers: workers, JIT: jit, Shards: shards, Profiling: profiled}
	if traced {
		opts.Tracer = trace.New(trace.Options{})
	}
	if batch {
		cfg := batching.DefaultConfig()
		opts.Batch = &cfg
	}
	if adaptive {
		opts.Limiter = overload.NewLimiter(overload.DefaultLimiterConfig())
	}
	if adaptive || codelTarget > 0 || codelInterval > 0 {
		cfg := overload.DefaultCoDelConfig()
		if codelTarget > 0 {
			cfg.Target = codelTarget
		}
		if codelInterval > 0 {
			cfg.Interval = codelInterval
		}
		opts.CoDel = overload.NewCoDel(cfg, nil)
	}
	switch {
	case static:
		return server.NewStatic(), nil
	case bucketDir != "":
		if key == "" {
			return nil, fmt.Errorf("-bucket requires -key")
		}
		bucket, err := objstore.NewFSBucket(bucketDir)
		if err != nil {
			return nil, err
		}
		return server.LoadFromBucket(bucket, key, opts)
	case modelName != "":
		m, err := model.New(modelName, model.Config{
			CatalogSize: catalog, Seed: seed, TopK: topK, Faithful: faithful,
		})
		if err != nil {
			return nil, err
		}
		return server.New(m, opts)
	default:
		flag.Usage()
		os.Exit(2)
		return nil, nil
	}
}
