// Command etude-server runs the ETUDE inference server: it deploys an SBR
// model (from flags or from an object-store bucket) and serves
// /predictions and /ping over HTTP.
//
// The listener comes up before the model loads — /live answers 200 as soon
// as the process can serve HTTP at all, while /ping stays 503 until the
// model is built. That split is what lets an orchestrator measure cold
// start (exec → live) separately from warm ready (exec → ready), exactly
// as Kubernetes probes would.
//
// Shutdown is signal-driven: SIGTERM or SIGINT begins a graceful drain
// (readiness fails, in-flight requests finish, bounded by -drain-timeout),
// then the process exits 0. If the deadline expires with work still in
// flight the server force-closes and exits 1; a second signal skips the
// grace entirely.
//
// Examples:
//
//	etude-server -model gru4rec -catalog 100000 -port 8080
//	etude-server -static -port 8080            # Fig 2 infrastructure mode
//	etude-server -bucket ./bucket -key models/gru4rec.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"etude/internal/batching"
	"etude/internal/deploy"
	"etude/internal/httpapi"
	"etude/internal/model"
	"etude/internal/objstore"
	"etude/internal/overload"
	"etude/internal/sched"
	"etude/internal/server"
	"etude/internal/shard"
	"etude/internal/trace"
)

func main() {
	var (
		modelName  = flag.String("model", "", "model to serve (one of: "+fmt.Sprint(model.Names())+")")
		catalog    = flag.Int("catalog", 100_000, "catalog size C")
		seed       = flag.Int64("seed", 1, "weight initialisation seed")
		topK       = flag.Int("topk", model.DefaultTopK, "recommendations per request")
		faithful   = flag.Bool("faithful", false, "serve the RecBole-faithful (buggy) variant")
		jit        = flag.Bool("jit", true, "serve the JIT-compiled execution plan")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		batch      = flag.Bool("batch", false, "enable request batching (1024 / 2ms)")
		tenants    = flag.String("tenants", "", "enable the SLO-aware multi-tenant scheduler with these tenant contracts, as comma-separated name:weight[:priority] entries (e.g. \"a:3,b:1\"); requests label themselves via the X-Tenant header, unknown tenants get an isolated weight-1 queue")
		schedQueue = flag.Int("sched-queue", 256, "per-tenant queue bound under -tenants; enqueues beyond it shed with 429 (0 = unbounded)")
		adaptive   = flag.Bool("adaptive", false, "enable the AIMD adaptive concurrency limiter and CoDel queue discipline")
		codelTgt   = flag.Duration("codel-target", 0, "CoDel sojourn target (0 = default 5ms; implies CoDel even without -adaptive)")
		codelIvl   = flag.Duration("codel-interval", 0, "CoDel observation interval (0 = default 100ms; implies CoDel even without -adaptive)")
		maxPending = flag.Int("max-pending", 0, "admission-control bound on pending requests (0 = default 16x workers, negative = unbounded)")
		degradeAt  = flag.Int("degrade-at", 0, "pending-request watermark for degraded fallback responses (0 = off)")
		shards     = flag.Int("shards", 0, "catalog shards for in-process scatter-gather retrieval (0/1 = unsharded)")
		partition  = flag.String("partition", "", "serve one catalog partition as a shard worker, as index:from:to (e.g. 0:0:25000)")
		gateway    = flag.String("gateway", "", "front a sharded fleet: shard groups separated by ';', replica URLs within a group by ',' (e.g. http://a:1,http://a:2;http://b:1)")
		partial    = flag.Bool("partial", false, "serve partial results when shards fail (requires -gateway; responses carry X-Degraded/X-Coverage)")
		minCov     = flag.Float64("min-coverage", 0.5, "minimum shard-coverage fraction under -partial; below it requests fail 503")
		static     = flag.Bool("static", false, "serve empty responses without a model")
		traced     = flag.Bool("trace", false, "record per-stage latency histograms (exposed at /metrics)")
		profiled   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		bucketDir  = flag.String("bucket", "", "filesystem bucket to load the model from")
		key        = flag.String("key", "", "model manifest key within the bucket")
		releases   = flag.Bool("releases", false, "deploy from the bucket's versioned release store (releases/ namespace) instead of a raw -key manifest; enables the /admin/deploy hot-swap endpoint")
		modelVer   = flag.Int("model-version", 0, "release version to serve under -releases (0 = the store's CURRENT pointer); canary pods pin a version here")
		watchRel   = flag.Duration("watch-releases", 0, "poll the release store at this interval and hot-swap onto newly promoted versions (0 = off)")
		port       = flag.Int("port", 8080, "listen port")
		drainTO    = flag.Duration("drain-timeout", 5*time.Second, "bound on in-flight work during graceful shutdown")
		drainStl   = flag.Duration("drain-settle", 200*time.Millisecond, "pause between failing readiness and closing the listener (lets racing picks connect)")
	)
	flag.Parse()

	// Listener first: the process serves /live the moment it can serve
	// anything, so cold start is observable before the model exists.
	addr := fmt.Sprintf(":%d", *port)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("etude-server: %v", err)
	}
	var handler atomic.Pointer[http.Handler]
	boot := bootstrapHandler()
	handler.Store(&boot)
	hs := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*handler.Load()).ServeHTTP(w, r)
	})}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	part, err := parsePartition(*partition)
	if err != nil {
		log.Fatalf("etude-server: %v", err)
	}
	srv, err := buildServer(*modelName, *catalog, *seed, *topK, *faithful, *jit, *workers, *shards, *maxPending, *degradeAt, part, *gateway, *partial, *minCov, *batch, *tenants, *schedQueue, *static, *traced, *profiled, *adaptive, *codelTgt, *codelIvl, *bucketDir, *key, *releases, *modelVer, *watchRel)
	if err != nil {
		log.Fatalf("etude-server: %v", err)
	}
	defer srv.Close()
	real := srv.Handler()
	handler.Store(&real)

	switch {
	case srv.ModelVersion() > 0:
		log.Printf("serving %s release v%d (C=%d, jit=%v, watch=%v) on %s",
			srv.Model().Name(), srv.ModelVersion(), srv.Model().Config().CatalogSize, srv.JITActive(), *watchRel, addr)
	case srv.Model() != nil:
		log.Printf("serving %s (C=%d, jit=%v) on %s", srv.Model().Name(), srv.Model().Config().CatalogSize, srv.JITActive(), addr)
	case srv.Gateway() != nil:
		log.Printf("serving scatter-gather gateway (%d shard groups, policy %s) on %s",
			srv.Gateway().Shards(), srv.Gateway().Policy().Mode, addr)
	default:
		log.Printf("serving static responses on %s", addr)
	}

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-serveErr:
		log.Fatalf("etude-server: %v", err)
	case sig := <-sigc:
		log.Printf("%v: draining (settle %v, timeout %v)", sig, *drainStl, *drainTO)
	}

	// Graceful drain: fail readiness, let endpoint updates propagate, then
	// shut the listener down waiting for in-flight work.
	srv.BeginDrain()
	time.Sleep(*drainStl)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- hs.Shutdown(ctx) }()
	select {
	case err := <-done:
		if err != nil {
			// Deadline expired with requests still in flight: force-close
			// and report the kill through the exit code.
			_ = hs.Close()
			log.Printf("drain deadline expired, force-closing")
			srv.Close()
			os.Exit(1)
		}
		log.Printf("drained cleanly")
	case sig := <-sigc:
		log.Printf("%v during drain: exiting immediately", sig)
		_ = hs.Close()
		srv.Close()
		os.Exit(1)
	}
}

// bootstrapHandler serves the pre-model window: alive but not ready.
func bootstrapHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(httpapi.LivePath, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "model loading", http.StatusServiceUnavailable)
	})
	return mux
}

// parsePartition decodes the -partition flag ("index:from:to").
func parsePartition(s string) (*shard.Partition, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("-partition wants index:from:to, got %q", s)
	}
	var nums [3]int
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("-partition wants index:from:to, got %q: %v", s, err)
		}
		nums[i] = n
	}
	return &shard.Partition{Index: nums[0], From: nums[1], To: nums[2]}, nil
}

// parseGateway decodes the -gateway flag: shard groups separated by ';',
// replica base URLs within a group by ','.
func parseGateway(s string) ([]shard.Picker, error) {
	if s == "" {
		return nil, nil
	}
	var pickers []shard.Picker
	for _, group := range strings.Split(s, ";") {
		var urls []string
		for _, u := range strings.Split(group, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		if len(urls) == 0 {
			return nil, fmt.Errorf("-gateway has an empty shard group in %q", s)
		}
		pickers = append(pickers, shard.NewStaticPicker(urls...))
	}
	return pickers, nil
}

func buildServer(modelName string, catalog int, seed int64, topK int, faithful, jit bool, workers, shards, maxPending, degradeAt int, partition *shard.Partition, gateway string, partial bool, minCoverage float64, batch bool, tenants string, schedQueue int, static, traced, profiled, adaptive bool, codelTarget, codelInterval time.Duration, bucketDir, key string, releases bool, modelVersion int, watchReleases time.Duration) (*server.Server, error) {
	opts := server.Options{
		Workers: workers, JIT: jit, Shards: shards, Profiling: profiled,
		MaxPending: maxPending, DegradeAt: degradeAt, Partition: partition,
	}
	if traced {
		opts.Tracer = trace.New(trace.Options{})
	}
	if batch {
		cfg := batching.DefaultConfig()
		opts.Batch = &cfg
	}
	if tenants != "" {
		tcs, err := sched.ParseTenants(tenants)
		if err != nil {
			return nil, err
		}
		bat := batching.DefaultConfig()
		opts.Sched = &sched.Config{
			Tenants:    tcs,
			MaxBatch:   bat.MaxBatch,
			FlushEvery: bat.FlushEvery,
			MaxQueue:   schedQueue,
		}
	}
	if adaptive {
		opts.Limiter = overload.NewLimiter(overload.DefaultLimiterConfig())
	}
	if adaptive || codelTarget > 0 || codelInterval > 0 {
		cfg := overload.DefaultCoDelConfig()
		if codelTarget > 0 {
			cfg.Target = codelTarget
		}
		if codelInterval > 0 {
			cfg.Interval = codelInterval
		}
		opts.CoDel = overload.NewCoDel(cfg, nil)
	}
	switch {
	case gateway != "":
		pickers, err := parseGateway(gateway)
		if err != nil {
			return nil, err
		}
		var pol shard.Policy
		if partial {
			pol = shard.Policy{Mode: shard.PolicyPartial, MinCoverage: minCoverage}
		}
		gw, err := shard.NewGateway(pickers, shard.GatewayConfig{K: topK, Policy: pol})
		if err != nil {
			return nil, err
		}
		opts.Gateway = gw
		return server.New(nil, opts)
	case static:
		return server.NewStatic(), nil
	case releases:
		if bucketDir == "" {
			return nil, fmt.Errorf("-releases requires -bucket")
		}
		bucket, err := objstore.NewFSBucket(bucketDir)
		if err != nil {
			return nil, err
		}
		return server.LoadFromReleases(deploy.NewStore(bucket), modelVersion, watchReleases, opts)
	case bucketDir != "":
		if key == "" {
			return nil, fmt.Errorf("-bucket requires -key")
		}
		bucket, err := objstore.NewFSBucket(bucketDir)
		if err != nil {
			return nil, err
		}
		return server.LoadFromBucket(bucket, key, opts)
	case modelName != "":
		m, err := model.New(modelName, model.Config{
			CatalogSize: catalog, Seed: seed, TopK: topK, Faithful: faithful,
		})
		if err != nil {
			return nil, err
		}
		return server.New(m, opts)
	default:
		flag.Usage()
		os.Exit(2)
		return nil, nil
	}
}
