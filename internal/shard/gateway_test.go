package shard_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"etude/internal/cluster"
	"etude/internal/httpapi"
	"etude/internal/leakcheck"
	"etude/internal/model"
	"etude/internal/server"
	"etude/internal/shard"
)

// newPartitionPod deploys one shard worker: a full server whose MIPS stage
// scans only the partition's catalog rows.
func newPartitionPod(t *testing.T, m model.Model, part shard.Partition) *httptest.Server {
	t.Helper()
	s, err := server.New(m, server.Options{Workers: 2, Partition: &part})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return ts
}

// The cross-pod tier's correctness property: scattering through real HTTP
// pods (JSON round-trip included) and merging reproduces the unsharded
// model bit for bit.
func TestGatewayMatchesUnshardedModel(t *testing.T) {
	leakcheck.Check(t)
	m, err := model.New("gru4rec", model.Config{CatalogSize: 2_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := shard.Plan(2_000, 4)
	if err != nil {
		t.Fatal(err)
	}
	pickers := make([]shard.Picker, len(parts))
	for i, part := range parts {
		pod := newPartitionPod(t, m, part)
		b := cluster.NewBalancer([]string{pod.URL}, cluster.BalancerConfig{})
		t.Cleanup(b.Close)
		pickers[i] = b
	}
	gw, err := shard.NewGateway(pickers, shard.GatewayConfig{K: m.Config().TopK})
	if err != nil {
		t.Fatal(err)
	}
	for _, session := range [][]int64{{1}, {5, 900, 1999}, {42, 42, 42, 17}, {1500, 3, 77, 256, 1024}} {
		want := m.Recommend(session)
		got, err := gw.Predict(context.Background(), httpapi.PredictRequest{SessionID: 1, Items: session})
		if err != nil {
			t.Fatalf("Predict(%v): %v", session, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("session %v: gateway top-k diverged\n got %v\nwant %v", session, got, want)
		}
	}
}

// scriptedPicker hands out URLs in a fixed order — a deterministic stand-in
// for the balancer's round-robin, so a test can force the primary onto a
// chosen replica.
type scriptedPicker struct {
	mu   sync.Mutex
	urls []string
	i    int
}

func (p *scriptedPicker) PickURL() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.urls) == 0 {
		return ""
	}
	url := p.urls[p.i%len(p.urls)]
	p.i++
	return url
}

func (p *scriptedPicker) Report(string, bool) {}

func TestGatewayHedgesSlowReplica(t *testing.T) {
	leakcheck.Check(t)
	m, err := model.New("gru4rec", model.Config{CatalogSize: 500, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	full := shard.Partition{Index: 0, From: 0, To: 500}
	fast := newPartitionPod(t, m, full)
	// The slow replica answers correctly, eventually — long after the hedge
	// deadline, so the backup must win and the merge must not wait for it.
	slowSrv, err := server.New(m, server.Options{Workers: 2, Partition: &full})
	if err != nil {
		t.Fatal(err)
	}
	slowHandler := slowSrv.Handler()
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(300 * time.Millisecond)
		slowHandler.ServeHTTP(w, r)
	}))
	t.Cleanup(func() { slow.Close(); slowSrv.Close() })

	picker := &scriptedPicker{urls: []string{slow.URL, fast.URL}}
	gw, err := shard.NewGateway([]shard.Picker{picker}, shard.GatewayConfig{
		K:     m.Config().TopK,
		Hedge: shard.HedgeConfig{Enabled: true, Delay: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	session := []int64{7, 31, 499}
	start := time.Now()
	got, err := gw.Predict(context.Background(), httpapi.PredictRequest{SessionID: 2, Items: session})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Fatalf("hedged request took %v: waited for the slow primary", elapsed)
	}
	if want := m.Recommend(session); !reflect.DeepEqual(got, want) {
		t.Fatalf("hedged result diverged\n got %v\nwant %v", got, want)
	}
	st := gw.Stats()
	if st.Sent() != 1 || st.Wins() != 1 || st.Cancelled() != 1 {
		t.Fatalf("hedge counters sent/wins/cancelled = %d/%d/%d, want 1/1/1",
			st.Sent(), st.Wins(), st.Cancelled())
	}
}

// A hedge fired with less remaining deadline budget than the hedge delay
// (the expected backup latency) is wasted work: the backup would be killed
// by the deadline before it could win. The gateway must skip it and count
// the suppression instead.
func TestGatewayHedgeSuppressedOnExhaustedBudget(t *testing.T) {
	leakcheck.Check(t)
	m, err := model.New("gru4rec", model.Config{CatalogSize: 500, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	full := shard.Partition{Index: 0, From: 0, To: 500}
	fast := newPartitionPod(t, m, full)
	slowSrv, err := server.New(m, server.Options{Workers: 2, Partition: &full})
	if err != nil {
		t.Fatal(err)
	}
	slowHandler := slowSrv.Handler()
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(400 * time.Millisecond)
		slowHandler.ServeHTTP(w, r)
	}))
	t.Cleanup(func() { slow.Close(); slowSrv.Close() })

	// Primary lands on the slow replica; the hedge fires at 200ms with only
	// ~50ms of the 250ms budget left — not enough for a 200ms backup.
	picker := &scriptedPicker{urls: []string{slow.URL, fast.URL}}
	gw, err := shard.NewGateway([]shard.Picker{picker}, shard.GatewayConfig{
		K:     m.Config().TopK,
		Hedge: shard.HedgeConfig{Enabled: true, Delay: 200 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	if _, err := gw.Predict(ctx, httpapi.PredictRequest{SessionID: 4, Items: []int64{7, 31}}); err == nil {
		t.Fatal("expected the deadline to expire with the hedge suppressed")
	}
	st := gw.Stats()
	if st.Suppressed() != 1 {
		t.Fatalf("Suppressed() = %d, want 1", st.Suppressed())
	}
	if st.Sent() != 0 {
		t.Fatalf("Sent() = %d, want 0: the backup should never have launched", st.Sent())
	}
}

func TestGatewayFailsWhenShardUnavailable(t *testing.T) {
	leakcheck.Check(t)
	// Exactness over availability: a shard with no routable replica fails
	// the whole request — a silently missing partition would return a
	// plausible but wrong top-k.
	m, _ := model.New("gru4rec", model.Config{CatalogSize: 100, Seed: 1})
	ok := newPartitionPod(t, m, shard.Partition{Index: 0, From: 0, To: 50})
	gw, err := shard.NewGateway([]shard.Picker{
		&scriptedPicker{urls: []string{ok.URL}},
		&scriptedPicker{}, // shard 1: every replica gone
	}, shard.GatewayConfig{K: m.Config().TopK})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Predict(context.Background(), httpapi.PredictRequest{SessionID: 3, Items: []int64{1}}); err == nil {
		t.Fatal("expected the scatter to fail with shard 1 unavailable")
	}
}
