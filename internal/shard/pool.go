package shard

import (
	"fmt"

	"etude/internal/model"
	"etude/internal/tensor"
	"etude/internal/topk"
	"etude/internal/trace"
)

// Pool is the in-process scatter-gather tier: one goroutine per shard
// scores its slice of the catalog embedding matrix against the session
// representation, and the partial top-k lists are merged into the exact
// global top-k. It is safe for concurrent use — each call allocates its own
// score buffers and partial lists.
type Pool struct {
	items *tensor.Tensor
	parts []Partition
}

// NewPool partitions the [C, d] item-embedding matrix into `shards`
// contiguous shards.
func NewPool(items *tensor.Tensor, shards int) (*Pool, error) {
	if items == nil {
		return nil, fmt.Errorf("shard: nil item matrix")
	}
	parts, err := Plan(items.Dim(0), shards)
	if err != nil {
		return nil, err
	}
	return &Pool{items: items, parts: parts}, nil
}

// Shards returns the number of partitions.
func (p *Pool) Shards() int { return len(p.parts) }

// TopK scatters the query to the per-shard workers and merges their
// partial heaps into the exact global top-k.
func (p *Pool) TopK(query *tensor.Tensor, k int) []topk.Result {
	return p.TopKSpan(query, k, nil)
}

// TopKSpan is TopK with stage tracing: scatter (goroutine fan-out), wait
// (fan-out until the last partial arrives — the straggler term) and merge
// are observed on the span. A nil span is the untraced fast path.
func (p *Pool) TopKSpan(query *tensor.Tensor, k int, sp *trace.Span) []topk.Result {
	if len(p.parts) == 1 {
		// Degenerate single-shard pool: no fan-out, plain scan.
		mergeStart := sp.Now()
		out := searchPartition(p.items, p.parts[0], query, k)
		sp.ObserveSince(trace.StageMIPSTopK, mergeStart)
		return out
	}
	scatterStart := sp.Now()
	partials := make([][]topk.Result, len(p.parts))
	done := make(chan struct{}, len(p.parts)-1)
	remaining := len(p.parts)
	for i := 1; i < len(p.parts); i++ {
		go func(i int) {
			partials[i] = searchPartition(p.items, p.parts[i], query, k)
			done <- struct{}{}
		}(i)
	}
	sp.ObserveSince(trace.StageShardScatter, scatterStart)
	waitStart := sp.Now()
	// The caller's goroutine doubles as shard 0's worker — a fan-out of S
	// goroutines would leave it idle while it waits.
	partials[0] = searchPartition(p.items, p.parts[0], query, k)
	for remaining > 1 {
		<-done
		remaining--
	}
	sp.ObserveSince(trace.StageShardWait, waitStart)
	mergeStart := sp.Now()
	out := topk.MergePartial(partials, k)
	sp.ObserveSince(trace.StageShardMerge, mergeStart)
	return out
}

// TopKPartial is the partial-result mirror of TopK: shards whose index is
// marked down are excluded from the scan, and the exact top-k over the
// surviving catalog slices is returned along with how many shards answered.
// It is the in-process analogue of a gateway scatter under PolicyPartial —
// and the oracle-vs-partial comparator the blackout experiment uses to
// measure recall@k (TopKPartial with no shards down is bit-identical to
// TopK).
func (p *Pool) TopKPartial(query *tensor.Tensor, k int, down []bool) ([]topk.Result, int) {
	partials := make([][]topk.Result, len(p.parts))
	answered := 0
	for i, part := range p.parts {
		if i < len(down) && down[i] {
			continue
		}
		partials[i] = searchPartition(p.items, part, query, k)
		answered++
	}
	return topk.MergePartial(partials, k), answered
}

// searchPartition scores rows [From, To) against the query and returns the
// partition's exact top-k with item ids rebased into the global id space.
func searchPartition(items *tensor.Tensor, part Partition, query *tensor.Tensor, k int) []topk.Result {
	rows := items.Rows(part.From, part.To)
	scores := tensor.New(part.Size())
	tensor.MatVecInto(scores, rows, query)
	recs := topk.SelectFromScores(scores.Data(), k)
	for i := range recs {
		recs[i].Item += int64(part.From)
	}
	return recs
}

// PartitionRetriever returns a model.Retriever serving the exact top-k of
// one catalog partition (item ids stay global) — the per-pod retrieval
// stage of a cross-pod sharded fleet, to be merged by a Gateway.
func PartitionRetriever(enc model.Encoder, part Partition) (model.Retriever, error) {
	if enc == nil {
		return nil, fmt.Errorf("shard: nil encoder")
	}
	items := enc.ItemEmbeddings()
	if part.From < 0 || part.To > items.Dim(0) || part.From >= part.To {
		return nil, fmt.Errorf("shard: partition %v outside catalog of %d items", part, items.Dim(0))
	}
	return model.RetrieverFunc(func(query *tensor.Tensor, k int) ([]topk.Result, error) {
		return searchPartition(items, part, query, k), nil
	}), nil
}

// PartitionModel wraps an encoder model so it serves only one catalog
// partition: the full encoder runs, but the MIPS stage scans rows
// [From, To) only. The wrapped model deploys through internal/server
// unchanged (server.Options.Partition wires it up).
func PartitionModel(enc model.Encoder, part Partition) (model.Model, error) {
	r, err := PartitionRetriever(enc, part)
	if err != nil {
		return nil, err
	}
	return model.WithRetrieval(enc, r)
}
