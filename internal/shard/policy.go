package shard

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"etude/internal/metrics"
	"etude/internal/topk"
)

// PolicyMode selects what a scatter-gather frontend does when a shard
// cannot answer.
type PolicyMode int

const (
	// PolicyFailFast is the exactness-over-availability mode: a shard whose
	// every attempt fails fails the whole request, and the first failure
	// cancels the surviving sub-requests (their work is moot). The merged
	// top-k, when it exists, is bit-identical to an unsharded scan.
	PolicyFailFast PolicyMode = iota
	// PolicyPartial is the availability-over-exactness mode: failed shards
	// are dropped from the merge, the surviving partial top-k lists are
	// combined, and the response is flagged degraded (X-Degraded: partial,
	// X-Coverage) so clients know the quality contract was relaxed. The
	// request only fails when coverage falls below the MinCoverage floor.
	PolicyPartial
)

// String names the mode for reports and flags.
func (m PolicyMode) String() string {
	if m == PolicyPartial {
		return "partial"
	}
	return "fail-fast"
}

// Policy is the partial-result serving policy of a sharded retrieval tier.
// The zero value is strict fail-fast — the pre-policy gateway behaviour —
// so existing deployments are unchanged.
type Policy struct {
	// Mode selects fail-fast or partial-result serving.
	Mode PolicyMode
	// MinCoverage is the minimum fraction of shard groups that must answer
	// under PolicyPartial: a request is served as long as ⌈MinCoverage·S⌉
	// shards contribute, and fails below that floor (default 0.5). Ignored
	// under PolicyFailFast, where the floor is always S.
	MinCoverage float64
	// StragglerFraction bounds each shard sub-request, under PolicyPartial,
	// to this fraction of the request's remaining X-Deadline budget
	// (default 0.75): a straggling shard is abandoned while there is still
	// budget left to merge the survivors and serialise the answer, instead
	// of dragging the whole request past its deadline and returning
	// nothing. Without a caller deadline only GatewayConfig.Timeout
	// applies.
	StragglerFraction float64
	// BreakerThreshold is the number of consecutive scatter failures after
	// which a shard group's breaker opens and the group is skipped outright
	// — a blacked-out shard then costs nothing per request instead of a
	// full sub-request timeout (default 3; negative disables the group
	// breaker).
	BreakerThreshold int
	// BreakerCooldown is how long an open group breaker skips its shard
	// before letting a probe request through again (default 500ms).
	BreakerCooldown time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.MinCoverage <= 0 {
		p.MinCoverage = 0.5
	}
	if p.MinCoverage > 1 {
		p.MinCoverage = 1
	}
	if p.StragglerFraction <= 0 || p.StragglerFraction > 1 {
		p.StragglerFraction = 0.75
	}
	if p.BreakerThreshold == 0 {
		p.BreakerThreshold = 3
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 500 * time.Millisecond
	}
	return p
}

// MinShards returns the coverage floor in shards for a fleet of s groups:
// ⌈MinCoverage·s⌉ clamped to [1, s] under PolicyPartial, s under
// PolicyFailFast (every shard must answer).
func (p Policy) MinShards(s int) int {
	if p.Mode != PolicyPartial {
		return s
	}
	q := p.withDefaults().MinCoverage
	min := int(math.Ceil(q * float64(s)))
	if min < 1 {
		min = 1
	}
	if min > s {
		min = s
	}
	return min
}

// CoverageError reports a scatter whose surviving shards fell below the
// policy's coverage floor — the partial-result analogue of a failed
// request.
type CoverageError struct {
	// Answered is how many shard groups contributed a partial top-k.
	Answered int
	// Shards is the fleet's shard-group count S.
	Shards int
	// Min is the floor ⌈MinCoverage·S⌉ the scatter had to reach.
	Min int
}

// Error implements error.
func (e *CoverageError) Error() string {
	return fmt.Sprintf("shard: insufficient coverage: %d/%d shards answered, floor is %d", e.Answered, e.Shards, e.Min)
}

// PartialResult is one scatter's merged answer plus its coverage metadata —
// what a partial-serving frontend needs to stamp X-Degraded/X-Coverage.
type PartialResult struct {
	// Recs is the merged top-k over the answering shards. Under full
	// coverage it is bit-identical to the unsharded top-k; under partial
	// coverage it is the exact top-k of the surviving catalog slices.
	Recs []topk.Result
	// Answered is how many shard groups contributed.
	Answered int
	// Shards is the fleet's shard-group count S.
	Shards int
}

// Coverage returns the fraction of the catalog that contributed (answered
// shards over S; partitions are near-equal slices, so shard fraction is
// catalog fraction to within one item).
func (r *PartialResult) Coverage() float64 {
	if r.Shards == 0 {
		return 0
	}
	return float64(r.Answered) / float64(r.Shards)
}

// Partial reports whether any shard is missing from the merge.
func (r *PartialResult) Partial() bool { return r.Answered < r.Shards }

// RecallAtK measures the quality loss of a partial answer: the fraction of
// the full-coverage oracle's items that the partial list retained. An empty
// oracle scores 1 (nothing to miss).
func RecallAtK(oracle, got []topk.Result) float64 {
	if len(oracle) == 0 {
		return 1
	}
	have := make(map[int64]bool, len(got))
	for _, r := range got {
		have[r.Item] = true
	}
	hit := 0
	for _, r := range oracle {
		if have[r.Item] {
			hit++
		}
	}
	return float64(hit) / float64(len(oracle))
}

// PartialStats counts partial-serving outcomes. All methods are safe for
// concurrent use.
type PartialStats struct {
	partial      atomic.Int64
	skipped      atomic.Int64
	floorFailed  atomic.Int64
	lastCoverage atomic.Uint64 // float64 bits of the most recent coverage
}

// RecordPartial notes one degraded response merged at the given coverage.
func (s *PartialStats) RecordPartial(coverage float64) {
	s.partial.Add(1)
	s.lastCoverage.Store(math.Float64bits(coverage))
}

// RecordFull notes one full-coverage response (updates the coverage gauge).
func (s *PartialStats) RecordFull() { s.lastCoverage.Store(math.Float64bits(1)) }

// RecordSkipped notes one shard sub-request skipped by an open group
// breaker.
func (s *PartialStats) RecordSkipped() { s.skipped.Add(1) }

// RecordFloorFailure notes one request failed because coverage fell below
// the policy floor.
func (s *PartialStats) RecordFloorFailure() { s.floorFailed.Add(1) }

// Partial returns how many degraded (partial-coverage) responses were
// served.
func (s *PartialStats) Partial() int64 { return s.partial.Load() }

// Skipped returns how many shard sub-requests an open group breaker
// short-circuited.
func (s *PartialStats) Skipped() int64 { return s.skipped.Load() }

// FloorFailures returns how many requests failed the coverage floor.
func (s *PartialStats) FloorFailures() int64 { return s.floorFailed.Load() }

// LastCoverage returns the coverage fraction of the most recent response
// (0 before any response).
func (s *PartialStats) LastCoverage() float64 {
	return math.Float64frombits(s.lastCoverage.Load())
}

// WriteMetrics appends the partial-serving counters to a Prometheus
// exposition.
func (s *PartialStats) WriteMetrics(pb *metrics.PromBuilder) {
	pb.Counter("etude_partial_responses_total",
		"Responses merged from a strict subset of shard groups (X-Degraded: partial).", float64(s.Partial()))
	pb.Counter("etude_shard_skipped_total",
		"Shard sub-requests skipped outright by an open shard-group breaker.", float64(s.Skipped()))
	pb.Counter("etude_coverage_floor_failures_total",
		"Requests failed because surviving shard coverage fell below the policy floor.", float64(s.FloorFailures()))
	pb.Gauge("etude_coverage_last",
		"Coverage fraction of the most recent scatter response (1 = full catalog).", s.LastCoverage())
}

// groupBreaker is the gateway's per-shard-group circuit breaker: after
// `threshold` consecutive scatter failures the group is skipped for
// `cooldown` — the brownout that keeps a blacked-out shard from charging
// every request a full sub-request timeout. The per-pod breakers inside a
// cluster.Balancer eject individual replicas; this breaker ejects the whole
// group, which matters exactly when every replica is gone and the Picker
// still hands out URLs (static pickers) or dials dead backends.
type groupBreaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu        sync.Mutex
	fails     int
	openUntil time.Time
}

func newGroupBreaker(p Policy) *groupBreaker {
	p = p.withDefaults()
	return &groupBreaker{threshold: p.BreakerThreshold, cooldown: p.BreakerCooldown, now: time.Now}
}

// allow reports whether the group should receive a sub-request: true while
// the breaker is closed, and again once an open breaker's cooldown has
// elapsed (the half-open probe — a failure re-opens it for another
// cooldown).
func (b *groupBreaker) allow() bool {
	if b == nil || b.threshold < 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails < b.threshold || !b.now().Before(b.openUntil)
}

// report feeds one sub-request outcome into the breaker.
func (b *groupBreaker) report(ok bool) {
	if b == nil || b.threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.fails = 0
		return
	}
	b.fails++
	if b.fails >= b.threshold {
		b.openUntil = b.now().Add(b.cooldown)
	}
}

// StaticPicker is a Picker over a fixed replica URL set with plain
// round-robin rotation and no health state — the wiring for a standalone
// gateway front (cmd/etude-server -gateway) whose brownout behaviour comes
// from the gateway's own shard-group breakers rather than per-pod ejection.
type StaticPicker struct {
	urls []string
	rr   atomic.Uint64
}

// NewStaticPicker builds a picker over the given replica base URLs.
func NewStaticPicker(urls ...string) *StaticPicker {
	return &StaticPicker{urls: append([]string(nil), urls...)}
}

// PickURL returns the next replica URL in rotation ("" for an empty set).
func (p *StaticPicker) PickURL() string {
	if len(p.urls) == 0 {
		return ""
	}
	return p.urls[int((p.rr.Add(1)-1)%uint64(len(p.urls)))]
}

// Report implements Picker; a static picker keeps no health state.
func (p *StaticPicker) Report(string, bool) {}
