// Package shard implements the catalog-sharded scatter-gather retrieval
// tier: the scale-out answer to the paper's central observation that
// inference latency is dominated by the O(C·(d + log k)) maximum-inner-
// product search over the catalog.
//
// The catalog embedding matrix is partitioned into S contiguous shards.
// Each request's session representation is scattered to one top-k worker
// per shard, the partial heaps are gathered, and topk.MergePartial combines
// them into the exact global top-k — bit-identical to an unsharded scan,
// because every shard surfaces its own k best candidates and the merge
// preserves the (score, item-id) order. The per-request work is unchanged;
// only its placement is: each worker pays C/S of the scan, so the dominant
// latency term divides by S at the cost of an explicit O((S + k)·log S)
// merge.
//
// Three substrates share these semantics:
//
//   - in-process: Pool fans out to one goroutine per shard inside a single
//     pod (internal/server's Options.Shards);
//   - cross-pod: Gateway scatters HTTP sub-requests to per-shard pod groups
//     through health-aware pickers (internal/cluster's balancer), with
//     optional tail-latency hedging — a backup sub-request to a replica of
//     the same shard after a p95-based delay, first response wins, loser
//     cancelled;
//   - simulated: SimFleet mirrors scatter/merge/hedge on the discrete-event
//     engine, with per-shard service time taken from the sliced cost model
//     (SliceCost) and the merge cost explicit (MergeOps).
package shard

import (
	"fmt"
	"math"

	"etude/internal/model"
)

// Partition is one contiguous shard of the catalog: rows [From, To) of the
// item-embedding matrix. Item ids stay global — a worker scoring a
// partition rebases its local row indices by From.
type Partition struct {
	// Index is the shard number in [0, S).
	Index int
	// From and To bound the catalog rows, half-open.
	From, To int
}

// Size returns the number of items in the partition.
func (p Partition) Size() int { return p.To - p.From }

// String renders the partition for logs and reports.
func (p Partition) String() string {
	return fmt.Sprintf("shard %d [%d,%d)", p.Index, p.From, p.To)
}

// Plan splits a catalog of C items into `shards` contiguous partitions of
// near-equal size (the first C mod S partitions hold one extra item).
func Plan(catalog, shards int) ([]Partition, error) {
	if catalog <= 0 {
		return nil, fmt.Errorf("shard: catalog size must be positive, got %d", catalog)
	}
	if shards <= 0 {
		return nil, fmt.Errorf("shard: shard count must be positive, got %d", shards)
	}
	if shards > catalog {
		return nil, fmt.Errorf("shard: cannot split %d items into %d shards", catalog, shards)
	}
	base, extra := catalog/shards, catalog%shards
	parts := make([]Partition, shards)
	from := 0
	for i := range parts {
		size := base
		if i < extra {
			size++
		}
		parts[i] = Partition{Index: i, From: from, To: from + size}
		from += size
	}
	return parts, nil
}

// SliceCost returns the per-inference cost of one worker serving a
// 1/shards slice of the catalog. The catalog-proportional terms — the MIPS
// scoring pass, the top-k heap maintenance, the catalog-scan and
// score-vector traffic, and any dense-on-sparse overhead — divide by the
// shard count; the session encoder is excluded entirely, because the
// frontend encodes once and scatters the finished representation. Kernel
// launches and host transfers stay: each worker dispatches its own scoring
// kernels, which is why shard counts past the point where the scan
// amortises the fixed per-worker overhead stop paying off.
func SliceCost(c model.Cost, shards int) model.Cost {
	if shards < 1 {
		shards = 1
	}
	s := float64(shards)
	c.Catalog = (c.Catalog + shards - 1) / shards
	c.EncoderFLOPs = 0
	c.MIPSFLOPs /= s
	c.TopKOps /= s
	c.SharedBytes /= s
	c.PerRequestBytes /= s
	c.DenseOverheadFLOPs /= s
	return c
}

// MergeOps approximates the arithmetic work of the gather-merge: a k-way
// merge over `shards` partial lists pops k results through a log2(S)-deep
// head heap (compare + swap per level) and copies S·k candidate entries.
// It is the explicit merge term of the sharded cost model — tiny next to
// the scan it replaces, but charged rather than assumed free.
func MergeOps(shards, k int) float64 {
	if shards < 1 || k < 1 {
		return 0
	}
	levels := math.Log2(float64(shards)) + 1
	return float64(k)*levels*2 + float64(shards*k)
}
