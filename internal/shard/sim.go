package shard

import (
	"fmt"
	"time"

	"etude/internal/device"
	"etude/internal/metrics"
	"etude/internal/model"
	"etude/internal/sim"
	"etude/internal/trace"
)

// SimConfig configures a simulated scatter-gather fleet.
type SimConfig struct {
	// Device is the instance type of the shard workers.
	Device device.Spec
	// Model and ModelCfg define the deployment; per-shard service times are
	// the model's cost table sliced by the shard count (SliceCost).
	Model    string
	ModelCfg model.Config
	// Shards is S, the number of shard groups; every request fans out to
	// all of them.
	Shards int
	// Replicas is the number of workers per shard group (≥2 gives hedging
	// a backup to send to).
	Replicas int
	// JIT serves compiled execution plans on the workers.
	JIT bool
	// FlushEvery and MaxBatch configure the workers' batcher (GPU kinds;
	// defaults 2ms and the device's MaxBatch).
	FlushEvery time.Duration
	// MaxBatch caps the worker batcher (0 = the device's MaxBatch).
	MaxBatch int
	// Hedge configures tail-latency hedging. When the adaptive delay is
	// selected with no FallbackDelay, the fallback defaults to 2× the
	// expected per-shard service time from the cost model.
	Hedge HedgeConfig
	// Policy is the partial-result serving policy, mirrored exactly from
	// the live gateway (zero value: strict fail-fast).
	Policy Policy
	// ShardTimeout is the sim mirror of the gateway's straggler
	// sub-deadline: under PolicyPartial a shard whose scatter is still
	// unresolved after this long is declared missed and the gather proceeds
	// without it (0 = no per-shard timeout).
	ShardTimeout time.Duration
}

// SimFleet mirrors the live scatter-gather tier on the discrete-event
// engine: a frontend that pays the session-encoder service time once,
// scatters to one worker per shard group (per-shard service time = the
// sliced cost model), gathers the partial top-k completions, pays the
// explicit merge cost, and completes the request — with the same hedging
// semantics as the live gateway (backup to another replica after a
// p95-based delay, first response wins, the loser's response is discarded
// and counted as cancelled; an in-flight catalog scan cannot be aborted,
// so the loser still occupies its worker).
//
// The frontend is modelled as dedicated capacity (pure delay): the queued
// resources are the shard workers, which is where sharding and hedging
// change the latency distribution. Workers are plain sim.Instances, so the
// chaos injector can crash or slow them individually — Instances exposes
// them in flat order (shard s, replica r at index s·Replicas+r).
type SimFleet struct {
	eng    *sim.Engine
	cfg    SimConfig
	groups [][]*sim.Instance
	rr     []int

	fullCosts []model.Cost // per session length; the encoder-time source
	mergeTime time.Duration

	timer    *hedgeTimer
	stats    HedgeStats
	pstats   PartialStats
	waitHist *metrics.Histogram
	tracer   *trace.Tracer
}

// errShardTimeout marks a sim shard dropped by the straggler sub-deadline.
var errShardTimeout = fmt.Errorf("shard: sub-request straggler deadline exceeded")

// NewSimFleet builds the simulated tier: Shards × Replicas workers, each
// serving the per-shard slice of the model's cost table.
func NewSimFleet(eng *sim.Engine, cfg SimConfig) (*SimFleet, error) {
	if cfg.Shards < 1 || cfg.Replicas < 1 {
		return nil, fmt.Errorf("shard: fleet needs at least 1 shard and 1 replica, got %d×%d", cfg.Shards, cfg.Replicas)
	}
	if cfg.ModelCfg.CatalogSize < cfg.Shards {
		return nil, fmt.Errorf("shard: cannot split catalog of %d into %d shards", cfg.ModelCfg.CatalogSize, cfg.Shards)
	}
	if cfg.ModelCfg.MaxSessionLen == 0 {
		cfg.ModelCfg.MaxSessionLen = 50
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = cfg.Device.MaxBatch
	}
	fullCosts := make([]model.Cost, cfg.ModelCfg.MaxSessionLen+1)
	sliced := make([]model.Cost, len(fullCosts))
	for l := 1; l < len(fullCosts); l++ {
		c, err := model.EstimateCost(cfg.Model, cfg.ModelCfg, l)
		if err != nil {
			return nil, err
		}
		fullCosts[l] = c
		sliced[l] = SliceCost(c, cfg.Shards)
	}
	if cfg.Hedge.Enabled && cfg.Hedge.Delay == 0 && cfg.Hedge.FallbackDelay == 0 {
		cfg.Hedge.FallbackDelay = 2 * cfg.Device.ParallelInference(sliced[1], cfg.JIT)
	}
	cfg.Policy = cfg.Policy.withDefaults()
	k := cfg.ModelCfg.TopK
	if k == 0 {
		k = model.DefaultTopK
	}
	f := &SimFleet{
		eng:       eng,
		cfg:       cfg,
		groups:    make([][]*sim.Instance, cfg.Shards),
		rr:        make([]int, cfg.Shards),
		fullCosts: fullCosts,
		mergeTime: time.Duration(MergeOps(cfg.Shards, k) / cfg.Device.CoreFLOPs * float64(time.Second)),
		timer:     newHedgeTimer(cfg.Hedge),
		waitHist:  metrics.NewHistogram(),
	}
	for s := range f.groups {
		f.groups[s] = make([]*sim.Instance, cfg.Replicas)
		for r := range f.groups[s] {
			in, err := sim.NewInstanceFromCosts(eng, cfg.Device, sliced, cfg.JIT, cfg.FlushEvery, cfg.MaxBatch)
			if err != nil {
				return nil, err
			}
			f.groups[s][r] = in
		}
	}
	return f, nil
}

// Instances returns the workers in flat order — shard s, replica r at
// index s·Replicas+r — the pod indexing chaos scenarios target.
func (f *SimFleet) Instances() []*sim.Instance {
	out := make([]*sim.Instance, 0, len(f.groups)*f.cfg.Replicas)
	for _, g := range f.groups {
		out = append(out, g...)
	}
	return out
}

// Stats returns the fleet's hedge counters.
func (f *SimFleet) Stats() *HedgeStats { return &f.stats }

// PartialStats returns the fleet's partial-serving counters.
func (f *SimFleet) PartialStats() *PartialStats { return &f.pstats }

// WaitSnapshot summarises the per-request scatter→gather wait — the
// sharded MIPS portion of the request, the term that divides by S.
func (f *SimFleet) WaitSnapshot() metrics.Snapshot { return f.waitHist.Snapshot() }

// SetTracer attaches a stage tracer (build it with the engine's clock:
// trace.New(trace.Options{Clock: eng.Now})). Spans record encoder-forward,
// shard-wait and shard-merge in virtual time; scatter is instantaneous in
// the simulator and therefore absent.
func (f *SimFleet) SetTracer(t *trace.Tracer) { f.tracer = t }

// encTime is the frontend's encoder service time for a session length —
// the C-independent term the shard workers no longer pay.
func (f *SimFleet) encTime(sessionLen int) time.Duration {
	if sessionLen < 1 {
		sessionLen = 1
	}
	if sessionLen >= len(f.fullCosts) {
		sessionLen = len(f.fullCosts) - 1
	}
	c := f.fullCosts[sessionLen]
	encOnly := model.Cost{Catalog: c.Catalog, Dim: c.Dim, EncoderFLOPs: c.EncoderFLOPs}
	return f.cfg.Device.ParallelInference(encOnly, f.cfg.JIT)
}

// pickReplica round-robins within a shard group, avoiding `avoid` when the
// group has an alternative (a backup must land on a different replica).
// Backup picks do not advance the rotation — otherwise a hedged request
// consumes two cursor steps and, in a two-replica group, every primary
// lands on the same replica forever.
func (f *SimFleet) pickReplica(s int, avoid *sim.Instance) *sim.Instance {
	group := f.groups[s]
	if avoid != nil {
		for _, in := range group {
			if in != avoid {
				return in
			}
		}
		return group[0]
	}
	in := group[f.rr[s]%len(group)]
	f.rr[s]++
	return in
}

// Submit runs one request through the tier; done fires exactly once with
// the end-to-end outcome.
func (f *SimFleet) Submit(sessionLen int, done func(sim.Outcome)) {
	t0 := f.eng.Now()
	sp := f.tracer.Start("")
	enc := f.encTime(sessionLen)
	f.eng.Schedule(enc, func() {
		sp.Observe(trace.StageEncoderForward, enc)
		st := &gatherState{
			f:           f,
			t0:          t0,
			scatterAt:   f.eng.Now(),
			sessionLen:  sessionLen,
			done:        done,
			sp:          sp,
			remaining:   len(f.groups),
			shardDone:   make([]bool, len(f.groups)),
			missed:      make([]bool, len(f.groups)),
			outstanding: make([]int, len(f.groups)),
			primary:     make([]*sim.Instance, len(f.groups)),
		}
		partialMode := f.cfg.Policy.Mode == PolicyPartial
		for s := range f.groups {
			st.launch(s, false)
			if st.finished {
				return // a down shard group failed the request synchronously
			}
			if st.shardDone[s] || st.missed[s] {
				continue // resolved synchronously; nothing to hedge or time out
			}
			if f.cfg.Hedge.Enabled && len(f.groups[s]) > 1 {
				st.armHedge(s)
			}
			if partialMode && f.cfg.ShardTimeout > 0 {
				st.armTimeout(s)
			}
		}
	})
}

// gatherState tracks one request's scatter across the shard groups.
type gatherState struct {
	f          *SimFleet
	t0         time.Duration
	scatterAt  time.Duration
	sessionLen int
	done       func(sim.Outcome)
	sp         *trace.Span

	remaining   int
	finished    bool // terminal: done already fired (or is scheduled)
	shardDone   []bool
	missed      []bool
	outstanding []int
	primary     []*sim.Instance
}

// launch sends one sub-request to shard s, reporting whether it was
// actually sent (a backup whose only pick is the primary's replica is
// skipped — the single-replica hedge blind spot).
func (st *gatherState) launch(s int, backup bool) bool {
	var avoid *sim.Instance
	if backup {
		avoid = st.primary[s]
	}
	in := st.f.pickReplica(s, avoid)
	if backup && in == st.primary[s] {
		st.f.stats.RecordSameReplica()
		return false
	}
	if !backup {
		st.primary[s] = in
	}
	st.outstanding[s]++
	start := st.f.eng.Now()
	in.SubmitOutcome(st.sessionLen, func(o sim.Outcome) { st.complete(s, backup, start, o) })
	return true
}

func (st *gatherState) armHedge(s int) {
	f := st.f
	f.eng.Schedule(f.timer.delay(), func() {
		if st.finished || st.shardDone[s] || st.missed[s] {
			return
		}
		if st.launch(s, true) {
			f.stats.RecordSent()
		}
	})
}

// armTimeout schedules the straggler sub-deadline for shard s: if the shard
// is still unresolved when it fires, the shard is declared missed and the
// gather proceeds without it — a late completion then hits the missed guard
// in complete and is dropped, exactly like the live gateway cancelling a
// straggler's context.
func (st *gatherState) armTimeout(s int) {
	f := st.f
	f.eng.Schedule(f.cfg.ShardTimeout, func() {
		if st.finished || st.shardDone[s] || st.missed[s] {
			return
		}
		st.shardFailed(s, errShardTimeout)
	})
}

func (st *gatherState) complete(s int, backup bool, start time.Duration, o sim.Outcome) {
	f := st.f
	if st.finished || st.shardDone[s] || st.missed[s] {
		return // a discarded loser (already counted), a timed-out straggler, or a lost cause
	}
	st.outstanding[s]--
	if o.Err != nil {
		if st.outstanding[s] > 0 {
			return // the hedged twin may still answer
		}
		st.shardFailed(s, o.Err)
		return
	}
	st.shardDone[s] = true
	if backup {
		f.stats.RecordWin()
	} else {
		// Only winning primaries train the hedge delay (see hedgeTimer).
		f.timer.observe(f.eng.Now() - start)
	}
	for i := 0; i < st.outstanding[s]; i++ {
		f.stats.RecordCancelled()
	}
	st.remaining--
	if st.remaining == 0 {
		st.finish()
	}
}

// shardFailed resolves shard s as a miss. Under fail-fast that is terminal
// for the request; under partial serving the gather continues and the floor
// check happens when the last shard resolves.
func (st *gatherState) shardFailed(s int, err error) {
	f := st.f
	if f.cfg.Policy.Mode != PolicyPartial {
		st.finished = true
		total := f.eng.Now() - st.t0
		st.sp.FinishErrorTotal(total)
		st.sp = nil
		st.done(sim.Outcome{Latency: total, Err: err})
		return
	}
	st.missed[s] = true
	st.remaining--
	if st.remaining == 0 {
		st.finish()
	}
}

// finish resolves the gather once every shard has answered or been declared
// missed: below the coverage floor the request fails with a CoverageError;
// otherwise the merge cost is paid and the outcome carries the coverage.
func (st *gatherState) finish() {
	f := st.f
	st.finished = true
	shards := len(f.groups)
	answered := 0
	for _, d := range st.shardDone {
		if d {
			answered++
		}
	}
	if min := f.cfg.Policy.MinShards(shards); answered < min {
		f.pstats.RecordFloorFailure()
		total := f.eng.Now() - st.t0
		st.sp.FinishErrorTotal(total)
		st.sp = nil
		st.done(sim.Outcome{Latency: total, Err: &CoverageError{Answered: answered, Shards: shards, Min: min}})
		return
	}
	wait := f.eng.Now() - st.scatterAt
	f.waitHist.Record(wait)
	st.sp.Observe(trace.StageShardWait, wait)
	coverage := float64(answered) / float64(shards)
	partial := answered < shards
	f.eng.Schedule(f.mergeTime, func() {
		if partial {
			st.sp.Observe(trace.StagePartialMerge, f.mergeTime)
			f.pstats.RecordPartial(coverage)
		} else {
			st.sp.Observe(trace.StageShardMerge, f.mergeTime)
			f.pstats.RecordFull()
		}
		total := f.eng.Now() - st.t0
		st.sp.FinishTotal(total)
		st.done(sim.Outcome{Latency: total, Partial: partial, Coverage: coverage})
	})
}
