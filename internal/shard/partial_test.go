package shard_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"etude/internal/httpapi"
	"etude/internal/leakcheck"
	"etude/internal/model"
	"etude/internal/server"
	"etude/internal/shard"
	"etude/internal/trace"
)

// The tentpole's core property: with one of four shard groups blacked out,
// a partial-policy gateway keeps serving at 3/4 coverage, and the degraded
// answer is bit-identical to the exact top-k over the surviving catalog
// slices (Pool.TopKPartial is the oracle).
func TestGatewayPartialSurvivesShardBlackout(t *testing.T) {
	leakcheck.Check(t)
	m, err := model.New("gru4rec", model.Config{CatalogSize: 2_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	enc := m.(model.Encoder)
	parts, err := shard.Plan(2_000, 4)
	if err != nil {
		t.Fatal(err)
	}
	pickers := make([]shard.Picker, len(parts))
	for i, part := range parts {
		if i == 3 {
			pickers[i] = &scriptedPicker{} // shard 3: every replica gone
			continue
		}
		pod := newPartitionPod(t, m, part)
		pickers[i] = &scriptedPicker{urls: []string{pod.URL}}
	}
	gw, err := shard.NewGateway(pickers, shard.GatewayConfig{
		K:      m.Config().TopK,
		Policy: shard.Policy{Mode: shard.PolicyPartial, MinCoverage: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := shard.NewPool(enc.ItemEmbeddings(), 4)
	if err != nil {
		t.Fatal(err)
	}
	down := []bool{false, false, false, true}
	for i, session := range [][]int64{{1}, {5, 900, 1999}, {42, 42, 42, 17}, {1500, 3, 77}} {
		pr, err := gw.PredictPartial(context.Background(),
			httpapi.PredictRequest{SessionID: int64(i + 1), Items: session})
		if err != nil {
			t.Fatalf("PredictPartial(%v): %v", session, err)
		}
		if pr.Answered != 3 || pr.Shards != 4 || !pr.Partial() || pr.Coverage() != 0.75 {
			t.Fatalf("coverage metadata = %d/%d, want 3/4", pr.Answered, pr.Shards)
		}
		want, _ := pool.TopKPartial(enc.Encode(session), m.Config().TopK, down)
		if !reflect.DeepEqual(pr.Recs, want) {
			t.Fatalf("session %v: partial merge diverged from surviving-slice oracle\n got %v\nwant %v",
				session, pr.Recs, want)
		}
	}
	ps := gw.PartialStats()
	if ps.Partial() != 4 {
		t.Fatalf("Partial() = %d, want 4", ps.Partial())
	}
	// Three consecutive misses open shard 3's group breaker (default
	// threshold), so the fourth scatter skips the dead group outright.
	if ps.Skipped() == 0 {
		t.Fatal("group breaker never short-circuited the blacked-out shard")
	}
	if ps.LastCoverage() != 0.75 {
		t.Fatalf("LastCoverage() = %v, want 0.75", ps.LastCoverage())
	}
}

// Below the coverage floor the gateway must refuse to answer: a top-k over
// a quarter of the catalog is not a recommendation list, it is noise.
func TestGatewayPartialFailsBelowFloor(t *testing.T) {
	leakcheck.Check(t)
	m, _ := model.New("gru4rec", model.Config{CatalogSize: 100, Seed: 1})
	ok := newPartitionPod(t, m, shard.Partition{Index: 0, From: 0, To: 25})
	gw, err := shard.NewGateway([]shard.Picker{
		&scriptedPicker{urls: []string{ok.URL}},
		&scriptedPicker{}, // shards 1–3: blacked out
		&scriptedPicker{},
		&scriptedPicker{},
	}, shard.GatewayConfig{
		K:      m.Config().TopK,
		Policy: shard.Policy{Mode: shard.PolicyPartial, MinCoverage: 0.75},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = gw.PredictPartial(context.Background(), httpapi.PredictRequest{SessionID: 3, Items: []int64{1}})
	var ce *shard.CoverageError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want a CoverageError", err)
	}
	if ce.Shards != 4 || ce.Min != 3 || ce.Answered >= ce.Min {
		t.Fatalf("CoverageError = %+v, want answered < floor 3 of 4", ce)
	}
	if got := gw.PartialStats().FloorFailures(); got != 1 {
		t.Fatalf("FloorFailures() = %d, want 1", got)
	}
}

// The straggler sub-deadline: under partial policy a slow shard is bounded
// to a fraction of the remaining deadline budget, so the gateway answers
// with the survivors while the caller's deadline still has room — instead
// of riding the straggler to the wire and returning nothing.
func TestGatewayPartialDropsStragglerBeforeDeadline(t *testing.T) {
	leakcheck.Check(t)
	m, err := model.New("gru4rec", model.Config{CatalogSize: 500, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fast := newPartitionPod(t, m, shard.Partition{Index: 0, From: 0, To: 250})
	slowSrv, err := server.New(m, server.Options{Workers: 2, Partition: &shard.Partition{Index: 1, From: 250, To: 500}})
	if err != nil {
		t.Fatal(err)
	}
	slowHandler := slowSrv.Handler()
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(400 * time.Millisecond) // far past the caller's 250ms budget
		slowHandler.ServeHTTP(w, r)
	}))
	t.Cleanup(func() { slow.Close(); slowSrv.Close() })

	gw, err := shard.NewGateway([]shard.Picker{
		&scriptedPicker{urls: []string{fast.URL}},
		&scriptedPicker{urls: []string{slow.URL}},
	}, shard.GatewayConfig{
		K:      m.Config().TopK,
		Policy: shard.Policy{Mode: shard.PolicyPartial, MinCoverage: 0.5, StragglerFraction: 0.4},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	start := time.Now()
	pr, err := gw.PredictPartial(ctx, httpapi.PredictRequest{SessionID: 9, Items: []int64{7, 31}})
	if err != nil {
		t.Fatalf("expected a partial answer, got %v", err)
	}
	// Sub-deadline = 0.4 × 250ms = 100ms; the merge must land well inside
	// the caller's budget, not at the 400ms straggler's pace.
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("partial answer took %v: the straggler was not dropped early", elapsed)
	}
	if pr.Coverage() != 0.5 || !pr.Partial() {
		t.Fatalf("coverage = %v partial=%v, want 0.5/true", pr.Coverage(), pr.Partial())
	}
}

// Satellite regression: a failed scatter used to Discard() its span, so
// failed requests vanished from the stage histograms and the tracer never
// learned the fleet was failing. They must finish with an error outcome.
func TestGatewayFailedRequestsAppearInTraceStats(t *testing.T) {
	leakcheck.Check(t)
	m, _ := model.New("gru4rec", model.Config{CatalogSize: 100, Seed: 1})
	ok := newPartitionPod(t, m, shard.Partition{Index: 0, From: 0, To: 50})
	gw, err := shard.NewGateway([]shard.Picker{
		&scriptedPicker{urls: []string{ok.URL}},
		&scriptedPicker{}, // shard 1 unavailable: fail-fast fails the request
	}, shard.GatewayConfig{K: m.Config().TopK})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Options{})
	gw.SetTracer(tr)
	if _, err := gw.Predict(context.Background(), httpapi.PredictRequest{SessionID: 3, Items: []int64{1}}); err == nil {
		t.Fatal("expected the scatter to fail with shard 1 unavailable")
	}
	if got := tr.ErrorCount(); got != 1 {
		t.Fatalf("ErrorCount() = %d, want 1", got)
	}
	if snap := tr.TotalSnapshot(); snap.Count != 1 {
		t.Fatalf("failed request missing from the end-to-end histogram: count = %d", snap.Count)
	}
}

// Satellite regression: in a single-replica group every pick returns the
// primary's URL, so a fired hedge used to duplicate the request on the pod
// that was already slow. The gateway must skip the duplicate and count the
// blind spot.
func TestGatewayHedgeSameReplicaSkipped(t *testing.T) {
	leakcheck.Check(t)
	m, err := model.New("gru4rec", model.Config{CatalogSize: 500, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	full := shard.Partition{Index: 0, From: 0, To: 500}
	slowSrv, err := server.New(m, server.Options{Workers: 2, Partition: &full})
	if err != nil {
		t.Fatal(err)
	}
	slowHandler := slowSrv.Handler()
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(80 * time.Millisecond) // outlives the hedge delay, then answers
		slowHandler.ServeHTTP(w, r)
	}))
	t.Cleanup(func() { slow.Close(); slowSrv.Close() })

	gw, err := shard.NewGateway([]shard.Picker{
		&scriptedPicker{urls: []string{slow.URL}}, // single replica: backup == primary
	}, shard.GatewayConfig{
		K:     m.Config().TopK,
		Hedge: shard.HedgeConfig{Enabled: true, Delay: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	session := []int64{7, 31, 499}
	got, err := gw.Predict(context.Background(), httpapi.PredictRequest{SessionID: 2, Items: session})
	if err != nil {
		t.Fatal(err)
	}
	if want := m.Recommend(session); !reflect.DeepEqual(got, want) {
		t.Fatalf("result diverged\n got %v\nwant %v", got, want)
	}
	st := gw.Stats()
	if st.SameReplica() < 1 {
		t.Fatalf("SameReplica() = %d, want >= 1", st.SameReplica())
	}
	if st.Sent() != 0 {
		t.Fatalf("Sent() = %d, want 0: the duplicate hedge should never have launched", st.Sent())
	}
}

// Cancelling the caller's context mid-scatter must not leak sub-request
// goroutines or return a partial as success — leakcheck guards the exits.
func TestGatewayPartialCancelledContextLeaksNothing(t *testing.T) {
	leakcheck.Check(t)
	m, err := model.New("gru4rec", model.Config{CatalogSize: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(m, server.Options{Workers: 2, Partition: &shard.Partition{Index: 0, From: 0, To: 200}})
	if err != nil {
		t.Fatal(err)
	}
	handler := srv.Handler()
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(150 * time.Millisecond)
		handler.ServeHTTP(w, r)
	}))
	t.Cleanup(func() { stall.Close(); srv.Close() })
	gw, err := shard.NewGateway([]shard.Picker{
		&scriptedPicker{urls: []string{stall.URL}},
	}, shard.GatewayConfig{
		K:      m.Config().TopK,
		Policy: shard.Policy{Mode: shard.PolicyPartial},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if _, err := gw.PredictPartial(ctx, httpapi.PredictRequest{SessionID: 1, Items: []int64{1}}); err == nil {
		t.Fatal("cancelled scatter must not report success")
	}
}
