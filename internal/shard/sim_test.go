package shard

import (
	"sort"
	"testing"
	"time"

	"etude/internal/device"
	"etude/internal/model"
	"etude/internal/sim"
)

func testSimConfig(shards, replicas int, hedge HedgeConfig) SimConfig {
	return SimConfig{
		Device:   device.CPU(),
		Model:    "gru4rec",
		ModelCfg: model.Config{CatalogSize: 1_000_000},
		Shards:   shards,
		Replicas: replicas,
		Hedge:    hedge,
	}
}

// runFleet drives n requests at fixed arrival spacing through a fresh
// fleet, optionally slowing one worker, and returns the end-to-end
// latencies of the successes plus the fleet for counter inspection.
func runFleet(t *testing.T, cfg SimConfig, n int, gap time.Duration, slowPod int, slowFactor float64) ([]time.Duration, *SimFleet) {
	t.Helper()
	eng := sim.NewEngine()
	f, err := NewSimFleet(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slowFactor > 1 {
		f.Instances()[slowPod].SetSlowdown(slowFactor)
	}
	var lats []time.Duration
	for i := 0; i < n; i++ {
		eng.Schedule(time.Duration(i)*gap, func() {
			f.Submit(10, func(o sim.Outcome) {
				if o.Err != nil {
					t.Errorf("request failed: %v", o.Err)
					return
				}
				lats = append(lats, o.Latency)
			})
		})
	}
	eng.Drain()
	if len(lats) != n {
		t.Fatalf("completed %d/%d requests", len(lats), n)
	}
	return lats, f
}

func percentile(lats []time.Duration, q float64) time.Duration {
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)-1))
	return s[idx]
}

func TestSimFleetDeterministic(t *testing.T) {
	a, _ := runFleet(t, testSimConfig(4, 2, HedgeConfig{Enabled: true}), 50, 30*time.Millisecond, 0, 10)
	b, _ := runFleet(t, testSimConfig(4, 2, HedgeConfig{Enabled: true}), 50, 30*time.Millisecond, 0, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: %v vs %v — virtual-time run not deterministic", i, a[i], b[i])
		}
	}
}

// The tentpole scaling property in the simulator: the scatter→gather wait
// (the sharded MIPS portion) drops monotonically with the shard count.
func TestSimFleetWaitDropsWithShards(t *testing.T) {
	prev := time.Duration(1 << 62)
	for _, s := range []int{1, 2, 4, 8} {
		_, f := runFleet(t, testSimConfig(s, 1, HedgeConfig{}), 40, 50*time.Millisecond, 0, 1)
		p50 := f.WaitSnapshot().P50
		if p50 <= 0 || p50 >= prev {
			t.Fatalf("S=%d: p50 shard wait %v not below previous %v", s, p50, prev)
		}
		prev = p50
	}
}

func TestSimFleetHedgingBeatsSlowShard(t *testing.T) {
	const n, gap, slowFactor = 120, 30 * time.Millisecond, 10.0
	unhedged, _ := runFleet(t, testSimConfig(4, 2, HedgeConfig{}), n, gap, 0, slowFactor)
	hedged, f := runFleet(t, testSimConfig(4, 2, HedgeConfig{Enabled: true}), n, gap, 0, slowFactor)
	up99, hp99 := percentile(unhedged, 0.99), percentile(hedged, 0.99)
	if hp99 >= up99 {
		t.Fatalf("hedged p99 %v not below unhedged p99 %v under a 10× slow shard", hp99, up99)
	}
	if f.Stats().Sent() == 0 || f.Stats().Wins() == 0 {
		t.Fatalf("hedging never fired: sent=%d wins=%d", f.Stats().Sent(), f.Stats().Wins())
	}
	if f.Stats().Cancelled() == 0 {
		t.Fatal("winning hedges must cancel their slow losers")
	}
}

func TestSimFleetFailsWhenShardDown(t *testing.T) {
	eng := sim.NewEngine()
	f, err := NewSimFleet(eng, testSimConfig(2, 1, HedgeConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	f.Instances()[0].Crash() // shard 0's only replica
	var got sim.Outcome
	calls := 0
	f.Submit(10, func(o sim.Outcome) { got = o; calls++ })
	eng.Drain()
	if calls != 1 || got.Err == nil {
		t.Fatalf("want exactly one failed outcome, got calls=%d err=%v", calls, got.Err)
	}
}

func TestNewSimFleetValidates(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewSimFleet(eng, testSimConfig(0, 1, HedgeConfig{})); err == nil {
		t.Fatal("expected error for zero shards")
	}
	cfg := testSimConfig(4, 1, HedgeConfig{})
	cfg.ModelCfg.CatalogSize = 2
	if _, err := NewSimFleet(eng, cfg); err == nil {
		t.Fatal("expected error for catalog smaller than the shard count")
	}
}
