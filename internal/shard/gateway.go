package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"etude/internal/httpapi"
	"etude/internal/metrics"
	"etude/internal/topk"
	"etude/internal/trace"
)

// errShardSkipped marks a shard sub-request never sent because the group's
// breaker was open — a miss for coverage accounting, but not a health
// signal to feed back into the breaker.
var errShardSkipped = errors.New("shard: skipped by open group breaker")

// Picker routes one shard group's sub-requests across that group's replica
// pods and accepts outcome feedback for its health state.
// *cluster.Balancer implements it, so a gateway fans out through the same
// per-pod circuit breakers ordinary traffic uses.
type Picker interface {
	// PickURL returns the next routable replica base URL, or "" when none
	// is (every breaker open, or the set empty).
	PickURL() string
	// Report feeds the outcome of a request to url back into its breaker.
	Report(url string, ok bool)
}

// GatewayConfig tunes the cross-pod scatter-gather frontend.
type GatewayConfig struct {
	// K is the number of recommendations requested per shard and returned
	// after the merge (default model.DefaultTopK via the zero check: 21 is
	// not imported here to keep the dependency surface small, so callers
	// normally set it from their model's Config().TopK; 0 defaults to 21).
	K int
	// Hedge configures tail-latency hedging of shard sub-requests.
	Hedge HedgeConfig
	// Timeout bounds each sub-request attempt (default 1s).
	Timeout time.Duration
	// Policy is the partial-result serving policy (zero value: strict
	// fail-fast, the exactness-preserving default).
	Policy Policy
	// Transport overrides the HTTP transport (tests; nil uses the default).
	Transport http.RoundTripper
}

// Gateway is the cross-pod scatter-gather frontend of a sharded fleet: one
// Picker per shard group. Predict scatters the request to every shard,
// optionally hedges stragglers with a backup sub-request to another
// replica of the same shard (first response wins, loser cancelled via its
// context), and merges the partial top-k lists into the exact global
// top-k.
//
// What a failed shard does is the Policy's call. Under PolicyFailFast
// (default) exactness requires every shard to answer: a shard whose every
// attempt fails fails the whole request. Under PolicyPartial the gateway
// merges the survivors and reports the coverage, failing only below the
// MinCoverage floor; per-shard-group breakers skip blacked-out shards
// outright so a dead group costs nothing per request instead of a
// sub-request timeout.
type Gateway struct {
	shards   []Picker
	cfg      GatewayConfig
	client   *http.Client
	timer    *hedgeTimer
	stats    HedgeStats
	pstats   PartialStats
	breakers []*groupBreaker
	tracer   *trace.Tracer
}

// NewGateway builds a gateway over one Picker per shard group.
func NewGateway(shards []Picker, cfg GatewayConfig) (*Gateway, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: gateway needs at least one shard group")
	}
	if cfg.K <= 0 {
		cfg.K = 21
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Second
	}
	cfg.Policy = cfg.Policy.withDefaults()
	breakers := make([]*groupBreaker, len(shards))
	for i := range breakers {
		breakers[i] = newGroupBreaker(cfg.Policy)
	}
	return &Gateway{
		shards:   shards,
		cfg:      cfg,
		client:   &http.Client{Transport: cfg.Transport},
		timer:    newHedgeTimer(cfg.Hedge),
		breakers: breakers,
	}, nil
}

// SetTracer attaches a stage tracer recording shard-scatter, shard-wait
// and shard-merge spans per request. Nil turns tracing off.
func (g *Gateway) SetTracer(t *trace.Tracer) { g.tracer = t }

// Shards returns the number of shard groups behind the gateway.
func (g *Gateway) Shards() int { return len(g.shards) }

// Stats returns the gateway's hedge counters.
func (g *Gateway) Stats() *HedgeStats { return &g.stats }

// PartialStats returns the gateway's partial-serving counters.
func (g *Gateway) PartialStats() *PartialStats { return &g.pstats }

// Policy returns the gateway's effective (defaulted) serving policy.
func (g *Gateway) Policy() Policy { return g.cfg.Policy }

// WriteMetrics appends the hedge and partial-serving counters to a
// Prometheus exposition.
func (g *Gateway) WriteMetrics(pb *metrics.PromBuilder) {
	g.stats.WriteMetrics(pb)
	g.pstats.WriteMetrics(pb)
}

// Predict scatters the request to every shard group, gathers the partial
// top-k lists and merges them — PredictPartial without the coverage
// metadata, for callers that only want the list.
func (g *Gateway) Predict(ctx context.Context, req httpapi.PredictRequest) ([]topk.Result, error) {
	pr, err := g.PredictPartial(ctx, req)
	if err != nil {
		return nil, err
	}
	return pr.Recs, nil
}

// PredictPartial scatters the request to every shard group, gathers the
// partial top-k lists and merges them under the gateway's Policy. The
// result carries the coverage metadata a frontend needs to stamp
// X-Degraded/X-Coverage. Under PolicyFailFast any shard failure fails the
// request (and the merged answer, when it exists, is bit-identical to the
// unsharded top-k); under PolicyPartial the merge proceeds as long as
// ⌈MinCoverage·S⌉ shards answered, and a CoverageError reports the floor
// being missed.
func (g *Gateway) PredictPartial(ctx context.Context, req httpapi.PredictRequest) (*PartialResult, error) {
	partialMode := g.cfg.Policy.Mode == PolicyPartial
	sp := g.tracer.Start(req.RequestID)
	scatterStart := sp.Now()
	type shardResult struct {
		idx     int
		recs    []topk.Result
		err     error
		skipped bool
	}
	results := make(chan shardResult, len(g.shards))
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	for i := range g.shards {
		if partialMode && !g.breakers[i].allow() {
			// Brownout: a group whose breaker is open is a known miss — skip
			// it for free instead of paying a sub-request timeout per request.
			g.pstats.RecordSkipped()
			results <- shardResult{idx: i, err: errShardSkipped, skipped: true}
			continue
		}
		go func(i int) {
			recs, err := g.fetchShard(ctx, i, req)
			results <- shardResult{idx: i, recs: recs, err: err}
		}(i)
	}
	sp.ObserveSince(trace.StageShardScatter, scatterStart)
	waitStart := sp.Now()
	partials := make([][]topk.Result, len(g.shards))
	minShards := g.cfg.Policy.MinShards(len(g.shards))
	answered, missed := 0, 0
	var firstErr error
	for range g.shards {
		r := <-results
		if r.err != nil {
			if !r.skipped && ctx.Err() == nil {
				// Charge the group breaker only for genuine failures: a
				// sub-request killed by our own cancel below is not shard
				// health evidence.
				g.breakers[r.idx].report(false)
			}
			missed++
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d: %w", r.idx, r.err)
			}
			if !partialMode {
				cancel() // fail-fast: the other shards' work is moot
			} else if len(g.shards)-missed < minShards {
				cancel() // the coverage floor is unreachable; stop the rest
			}
			continue
		}
		g.breakers[r.idx].report(true)
		answered++
		partials[r.idx] = r.recs
	}
	sp.ObserveSince(trace.StageShardWait, waitStart)
	if answered < minShards {
		// The failed request still did (and traced) real scatter work — it
		// must show up in the stage breakdown and error count, not vanish.
		sp.FinishError()
		if partialMode {
			g.pstats.RecordFloorFailure()
			return nil, &CoverageError{Answered: answered, Shards: len(g.shards), Min: minShards}
		}
		return nil, firstErr
	}
	mergeStart := sp.Now()
	out := topk.MergePartial(partials, g.cfg.K)
	if answered < len(g.shards) {
		sp.ObserveSince(trace.StagePartialMerge, mergeStart)
		g.pstats.RecordPartial(float64(answered) / float64(len(g.shards)))
	} else {
		sp.ObserveSince(trace.StageShardMerge, mergeStart)
		g.pstats.RecordFull()
	}
	sp.Finish()
	return &PartialResult{Recs: out, Answered: answered, Shards: len(g.shards)}, nil
}

// attempt is one sub-request's terminal state.
type attempt struct {
	recs   []topk.Result
	err    error
	backup bool
}

// fetchShard resolves one shard's partial top-k: a primary attempt, plus —
// when hedging is on and the primary outlives the hedge delay — one backup
// to another replica. First success wins and cancels the loser; the
// request fails only when every launched attempt has failed.
func (g *Gateway) fetchShard(ctx context.Context, shard int, req httpapi.PredictRequest) ([]topk.Result, error) {
	var cancel context.CancelFunc
	if dl, ok := ctx.Deadline(); ok && g.cfg.Policy.Mode == PolicyPartial {
		// Straggler sub-deadline: under partial serving a slow shard is
		// dropped while there is still deadline budget left to merge the
		// survivors — it must not drag the whole request to the wire and
		// leave nothing to serve.
		rem := time.Until(dl)
		if rem > 0 {
			sub := time.Duration(float64(rem) * g.cfg.Policy.StragglerFraction)
			ctx, cancel = context.WithDeadline(ctx, time.Now().Add(sub))
		}
	}
	if cancel == nil {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel() // cancels the losing attempt the moment a winner returns
	outcomes := make(chan attempt, 2)
	launch := func(backup bool, avoid string) (string, bool) {
		url := g.shards[shard].PickURL()
		if url == "" {
			return "", false
		}
		if backup && url == avoid {
			// Round-robin may hand back the primary's replica; one re-pick
			// is enough to land elsewhere in a ≥2-replica group.
			if next := g.shards[shard].PickURL(); next != "" {
				url = next
			}
			if url == avoid {
				// Single-replica group: every pick is the primary. A backup
				// here would duplicate the request on the pod that is already
				// slow — count the blind spot and skip it.
				g.stats.RecordSameReplica()
				return "", false
			}
		}
		go func() {
			start := time.Now()
			recs, err := g.do(ctx, url, req)
			if ctx.Err() == nil {
				g.shards[shard].Report(url, err == nil)
				if err == nil && !backup {
					// Only winning primaries train the hedge delay: backups
					// measure the hedge path and cancelled losers never
					// finish, so anything else would drag the p95 upward.
					g.timer.observe(time.Since(start))
				}
			}
			outcomes <- attempt{recs: recs, err: err, backup: backup}
		}()
		return url, true
	}
	primaryURL, ok := launch(false, "")
	if !ok {
		return nil, &httpapi.StatusError{Code: http.StatusServiceUnavailable}
	}
	var hedgeC <-chan time.Time
	if g.cfg.Hedge.Enabled {
		timer := time.NewTimer(g.timer.delay())
		defer timer.Stop()
		hedgeC = timer.C
	}
	outstanding := 1
	for {
		select {
		case <-hedgeC:
			hedgeC = nil
			// A backup is expected to take about as long as the hedge delay
			// (the p95 of healthy sub-requests). If the caller's deadline
			// cannot cover that, the backup is wasted work: it would be
			// killed by the deadline before it could win.
			if dl, hasDL := ctx.Deadline(); hasDL && time.Until(dl) < g.timer.delay() {
				g.stats.RecordSuppressed()
				continue
			}
			if _, ok := launch(true, primaryURL); ok {
				g.stats.RecordSent()
				outstanding++
			}
		case a := <-outcomes:
			outstanding--
			if a.err != nil {
				if outstanding > 0 {
					continue // the other attempt may still win
				}
				return nil, a.err
			}
			if outstanding > 0 {
				g.stats.RecordCancelled() // the defer cancel() aborts the loser
			}
			if a.backup {
				g.stats.RecordWin()
			}
			return a.recs, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// do issues one sub-request and parses the partial top-k out of the
// response body — unlike loadgen's measurement client, the gateway needs
// the items and scores, not just the status line.
func (g *Gateway) do(ctx context.Context, baseURL string, req httpapi.PredictRequest) ([]topk.Result, error) {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.Timeout)
	defer cancel()
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+httpapi.PredictPath, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if req.RequestID != "" {
		hreq.Header.Set(httpapi.HeaderRequestID, req.RequestID)
	}
	// Propagate the effective deadline (the tighter of the caller's budget
	// and the per-attempt timeout) so shard pods can shed expired work from
	// their own queues instead of computing answers nobody is waiting for.
	if dl, ok := ctx.Deadline(); ok {
		httpapi.SetDeadlineHeader(hreq.Header, dl)
	}
	resp, err := g.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, &httpapi.StatusError{Code: resp.StatusCode}
	}
	var pr httpapi.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, fmt.Errorf("shard: decoding sub-response: %w", err)
	}
	if len(pr.Items) != len(pr.Scores) {
		return nil, fmt.Errorf("shard: sub-response items/scores length mismatch (%d vs %d)", len(pr.Items), len(pr.Scores))
	}
	recs := make([]topk.Result, len(pr.Items))
	for i := range pr.Items {
		recs[i] = topk.Result{Item: pr.Items[i], Score: pr.Scores[i]}
	}
	return recs, nil
}
