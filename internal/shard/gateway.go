package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"etude/internal/httpapi"
	"etude/internal/metrics"
	"etude/internal/topk"
	"etude/internal/trace"
)

// Picker routes one shard group's sub-requests across that group's replica
// pods and accepts outcome feedback for its health state.
// *cluster.Balancer implements it, so a gateway fans out through the same
// per-pod circuit breakers ordinary traffic uses.
type Picker interface {
	// PickURL returns the next routable replica base URL, or "" when none
	// is (every breaker open, or the set empty).
	PickURL() string
	// Report feeds the outcome of a request to url back into its breaker.
	Report(url string, ok bool)
}

// GatewayConfig tunes the cross-pod scatter-gather frontend.
type GatewayConfig struct {
	// K is the number of recommendations requested per shard and returned
	// after the merge (default model.DefaultTopK via the zero check: 21 is
	// not imported here to keep the dependency surface small, so callers
	// normally set it from their model's Config().TopK; 0 defaults to 21).
	K int
	// Hedge configures tail-latency hedging of shard sub-requests.
	Hedge HedgeConfig
	// Timeout bounds each sub-request attempt (default 1s).
	Timeout time.Duration
	// Transport overrides the HTTP transport (tests; nil uses the default).
	Transport http.RoundTripper
}

// Gateway is the cross-pod scatter-gather frontend of a sharded fleet: one
// Picker per shard group. Predict scatters the request to every shard,
// optionally hedges stragglers with a backup sub-request to another
// replica of the same shard (first response wins, loser cancelled via its
// context), and merges the partial top-k lists into the exact global
// top-k. Exactness requires every shard to answer: a shard whose every
// attempt fails fails the whole request.
type Gateway struct {
	shards []Picker
	cfg    GatewayConfig
	client *http.Client
	timer  *hedgeTimer
	stats  HedgeStats
	tracer *trace.Tracer
}

// NewGateway builds a gateway over one Picker per shard group.
func NewGateway(shards []Picker, cfg GatewayConfig) (*Gateway, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: gateway needs at least one shard group")
	}
	if cfg.K <= 0 {
		cfg.K = 21
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Second
	}
	return &Gateway{
		shards: shards,
		cfg:    cfg,
		client: &http.Client{Transport: cfg.Transport},
		timer:  newHedgeTimer(cfg.Hedge),
	}, nil
}

// SetTracer attaches a stage tracer recording shard-scatter, shard-wait
// and shard-merge spans per request. Nil turns tracing off.
func (g *Gateway) SetTracer(t *trace.Tracer) { g.tracer = t }

// Stats returns the gateway's hedge counters.
func (g *Gateway) Stats() *HedgeStats { return &g.stats }

// WriteMetrics appends the hedge counters to a Prometheus exposition.
func (g *Gateway) WriteMetrics(pb *metrics.PromBuilder) { g.stats.WriteMetrics(pb) }

// Predict scatters the request to every shard group, gathers the partial
// top-k lists and merges them into the exact global top-k.
func (g *Gateway) Predict(ctx context.Context, req httpapi.PredictRequest) ([]topk.Result, error) {
	sp := g.tracer.Start(req.RequestID)
	scatterStart := sp.Now()
	type shardResult struct {
		idx  int
		recs []topk.Result
		err  error
	}
	results := make(chan shardResult, len(g.shards))
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	for i := range g.shards {
		go func(i int) {
			recs, err := g.fetchShard(ctx, i, req)
			results <- shardResult{idx: i, recs: recs, err: err}
		}(i)
	}
	sp.ObserveSince(trace.StageShardScatter, scatterStart)
	waitStart := sp.Now()
	partials := make([][]topk.Result, len(g.shards))
	var firstErr error
	for range g.shards {
		r := <-results
		if r.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d: %w", r.idx, r.err)
			cancel() // the other shards' work is moot
		}
		partials[r.idx] = r.recs
	}
	sp.ObserveSince(trace.StageShardWait, waitStart)
	if firstErr != nil {
		sp.Discard()
		return nil, firstErr
	}
	mergeStart := sp.Now()
	out := topk.MergePartial(partials, g.cfg.K)
	sp.ObserveSince(trace.StageShardMerge, mergeStart)
	sp.Finish()
	return out, nil
}

// attempt is one sub-request's terminal state.
type attempt struct {
	recs   []topk.Result
	err    error
	backup bool
}

// fetchShard resolves one shard's partial top-k: a primary attempt, plus —
// when hedging is on and the primary outlives the hedge delay — one backup
// to another replica. First success wins and cancels the loser; the
// request fails only when every launched attempt has failed.
func (g *Gateway) fetchShard(ctx context.Context, shard int, req httpapi.PredictRequest) ([]topk.Result, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels the losing attempt the moment a winner returns
	outcomes := make(chan attempt, 2)
	launch := func(backup bool, avoid string) (string, bool) {
		url := g.shards[shard].PickURL()
		if url == "" {
			return "", false
		}
		if backup && url == avoid {
			// Round-robin may hand back the primary's replica; one re-pick
			// is enough to land elsewhere in a ≥2-replica group.
			if next := g.shards[shard].PickURL(); next != "" {
				url = next
			}
		}
		go func() {
			start := time.Now()
			recs, err := g.do(ctx, url, req)
			if ctx.Err() == nil {
				g.shards[shard].Report(url, err == nil)
				if err == nil && !backup {
					// Only winning primaries train the hedge delay: backups
					// measure the hedge path and cancelled losers never
					// finish, so anything else would drag the p95 upward.
					g.timer.observe(time.Since(start))
				}
			}
			outcomes <- attempt{recs: recs, err: err, backup: backup}
		}()
		return url, true
	}
	primaryURL, ok := launch(false, "")
	if !ok {
		return nil, &httpapi.StatusError{Code: http.StatusServiceUnavailable}
	}
	var hedgeC <-chan time.Time
	if g.cfg.Hedge.Enabled {
		timer := time.NewTimer(g.timer.delay())
		defer timer.Stop()
		hedgeC = timer.C
	}
	outstanding := 1
	for {
		select {
		case <-hedgeC:
			hedgeC = nil
			// A backup is expected to take about as long as the hedge delay
			// (the p95 of healthy sub-requests). If the caller's deadline
			// cannot cover that, the backup is wasted work: it would be
			// killed by the deadline before it could win.
			if dl, hasDL := ctx.Deadline(); hasDL && time.Until(dl) < g.timer.delay() {
				g.stats.RecordSuppressed()
				continue
			}
			if _, ok := launch(true, primaryURL); ok {
				g.stats.RecordSent()
				outstanding++
			}
		case a := <-outcomes:
			outstanding--
			if a.err != nil {
				if outstanding > 0 {
					continue // the other attempt may still win
				}
				return nil, a.err
			}
			if outstanding > 0 {
				g.stats.RecordCancelled() // the defer cancel() aborts the loser
			}
			if a.backup {
				g.stats.RecordWin()
			}
			return a.recs, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// do issues one sub-request and parses the partial top-k out of the
// response body — unlike loadgen's measurement client, the gateway needs
// the items and scores, not just the status line.
func (g *Gateway) do(ctx context.Context, baseURL string, req httpapi.PredictRequest) ([]topk.Result, error) {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.Timeout)
	defer cancel()
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+httpapi.PredictPath, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if req.RequestID != "" {
		hreq.Header.Set(httpapi.HeaderRequestID, req.RequestID)
	}
	// Propagate the effective deadline (the tighter of the caller's budget
	// and the per-attempt timeout) so shard pods can shed expired work from
	// their own queues instead of computing answers nobody is waiting for.
	if dl, ok := ctx.Deadline(); ok {
		httpapi.SetDeadlineHeader(hreq.Header, dl)
	}
	resp, err := g.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, &httpapi.StatusError{Code: resp.StatusCode}
	}
	var pr httpapi.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, fmt.Errorf("shard: decoding sub-response: %w", err)
	}
	if len(pr.Items) != len(pr.Scores) {
		return nil, fmt.Errorf("shard: sub-response items/scores length mismatch (%d vs %d)", len(pr.Items), len(pr.Scores))
	}
	recs := make([]topk.Result, len(pr.Items))
	for i := range pr.Items {
		recs[i] = topk.Result{Item: pr.Items[i], Score: pr.Scores[i]}
	}
	return recs, nil
}
