package shard

import (
	"sync/atomic"
	"time"

	"etude/internal/metrics"
)

// HedgeConfig configures tail-latency hedging of shard sub-requests: after
// a delay, a backup sub-request is sent to another replica of the same
// shard; the first response wins and the loser is cancelled (live) or its
// response discarded (sim — an in-flight catalog scan cannot be aborted,
// so cancellation saves queue wait, not service).
type HedgeConfig struct {
	// Enabled turns hedging on. Off, a slow shard replica holds the whole
	// scatter hostage — the straggler problem hedging exists to solve.
	Enabled bool
	// Delay is a fixed hedge delay. Zero selects the adaptive delay: the
	// p95 of observed winning-primary sub-request latencies, the classic
	// "defer to the 95th percentile" policy that bounds the extra load at
	// a few percent of requests.
	Delay time.Duration
	// MinSamples is how many latencies the adaptive tracker needs before
	// trusting its p95 (default 32); until then FallbackDelay applies.
	MinSamples int
	// FallbackDelay is the hedge delay used before the adaptive tracker
	// warms up (default 2ms; sharded tiers that know their expected
	// per-shard service time should set it relative to that).
	FallbackDelay time.Duration
}

func (c HedgeConfig) withDefaults() HedgeConfig {
	if c.MinSamples <= 0 {
		c.MinSamples = 32
	}
	if c.FallbackDelay <= 0 {
		c.FallbackDelay = 2 * time.Millisecond
	}
	return c
}

// HedgeStats counts hedging outcomes. All methods are safe for concurrent
// use.
type HedgeStats struct {
	sent        atomic.Int64
	wins        atomic.Int64
	cancelled   atomic.Int64
	suppressed  atomic.Int64
	sameReplica atomic.Int64
}

// RecordSent notes one backup sub-request issued.
func (h *HedgeStats) RecordSent() { h.sent.Add(1) }

// RecordWin notes one backup that answered before its primary.
func (h *HedgeStats) RecordWin() { h.wins.Add(1) }

// RecordCancelled notes one losing sub-request cancelled (or its late
// response discarded) after the winner answered.
func (h *HedgeStats) RecordCancelled() { h.cancelled.Add(1) }

// RecordSuppressed notes one hedge skipped because the caller's remaining
// deadline budget could not cover the expected backup latency — the backup
// would have been wasted work.
func (h *HedgeStats) RecordSuppressed() { h.suppressed.Add(1) }

// RecordSameReplica notes one hedge skipped because the only replica the
// picker could offer was the primary itself — a single-replica group, where
// a backup would duplicate the exact request on the exact pod that is
// already slow.
func (h *HedgeStats) RecordSameReplica() { h.sameReplica.Add(1) }

// Sent returns how many backup sub-requests were issued.
func (h *HedgeStats) Sent() int64 { return h.sent.Load() }

// Wins returns how many backups answered first.
func (h *HedgeStats) Wins() int64 { return h.wins.Load() }

// Cancelled returns how many losing sub-requests were cancelled.
func (h *HedgeStats) Cancelled() int64 { return h.cancelled.Load() }

// Suppressed returns how many hedges were skipped for lack of deadline
// budget.
func (h *HedgeStats) Suppressed() int64 { return h.suppressed.Load() }

// SameReplica returns how many hedges were skipped because the backup would
// have landed on the primary's replica.
func (h *HedgeStats) SameReplica() int64 { return h.sameReplica.Load() }

// WriteMetrics appends the hedge counters to a Prometheus exposition —
// plug it into server.Options.MetricsExtra or any PromBuilder scrape.
func (h *HedgeStats) WriteMetrics(pb *metrics.PromBuilder) {
	pb.Counter("etude_hedges_sent_total",
		"Backup shard sub-requests issued after the hedge delay.", float64(h.Sent()))
	pb.Counter("etude_hedge_wins_total",
		"Hedged shard sub-requests where the backup answered first.", float64(h.Wins()))
	pb.Counter("etude_hedge_cancelled_total",
		"Losing shard sub-requests cancelled after the winner answered.", float64(h.Cancelled()))
	pb.Counter("etude_hedges_suppressed_total",
		"Hedges skipped because the remaining deadline budget could not cover the expected backup latency.", float64(h.Suppressed()))
	pb.Counter("etude_hedges_same_replica_total",
		"Hedges skipped because the backup would have landed on the primary's own replica (single-replica shard group).", float64(h.SameReplica()))
}

// hedgeTimer answers "how long to wait before hedging" from the observed
// sub-request latency distribution. Only winning primary attempts are
// observed: a backup's latency measures the hedge path itself and a
// cancelled loser never completes, so folding either in would let the
// estimator chase its own hedges upward instead of tracking the healthy
// service distribution.
type hedgeTimer struct {
	cfg  HedgeConfig
	hist *metrics.Histogram
}

func newHedgeTimer(cfg HedgeConfig) *hedgeTimer {
	return &hedgeTimer{cfg: cfg.withDefaults(), hist: metrics.NewHistogram()}
}

// observe records one winning primary sub-request latency.
func (t *hedgeTimer) observe(d time.Duration) {
	if t.cfg.Delay > 0 {
		return // fixed delay: no tracking needed
	}
	t.hist.Record(d)
}

// delay returns the current hedge delay.
func (t *hedgeTimer) delay() time.Duration {
	if t.cfg.Delay > 0 {
		return t.cfg.Delay
	}
	if t.hist.Count() < int64(t.cfg.MinSamples) {
		return t.cfg.FallbackDelay
	}
	return t.hist.Quantile(0.95)
}
