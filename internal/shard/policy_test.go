package shard

import (
	"testing"
	"time"

	"etude/internal/topk"
)

func TestPolicyMinShards(t *testing.T) {
	cases := []struct {
		pol  Policy
		s    int
		want int
	}{
		{Policy{}, 4, 4},                                              // fail-fast: every shard
		{Policy{Mode: PolicyPartial}, 4, 2},                           // default MinCoverage 0.5
		{Policy{Mode: PolicyPartial, MinCoverage: 0.75}, 4, 3},        // ⌈0.75·4⌉
		{Policy{Mode: PolicyPartial, MinCoverage: 0.75}, 5, 4},        // ⌈0.75·5⌉ = ⌈3.75⌉
		{Policy{Mode: PolicyPartial, MinCoverage: 0.01}, 4, 1},        // floor clamps at 1
		{Policy{Mode: PolicyPartial, MinCoverage: 1}, 4, 4},           // full coverage required
		{Policy{Mode: PolicyPartial, MinCoverage: 7}, 4, 4},           // >1 clamps to all
		{Policy{Mode: PolicyPartial, MinCoverage: 0.5}, 1, 1},         // single shard
		{Policy{Mode: PolicyFailFast, MinCoverage: 0.25}, 8, 8},       // coverage ignored fail-fast
		{Policy{Mode: PolicyPartial, MinCoverage: 0.334}, 3, 2},       // ⌈1.002⌉
	}
	for _, c := range cases {
		if got := c.pol.MinShards(c.s); got != c.want {
			t.Errorf("MinShards(%d) with %+v = %d, want %d", c.s, c.pol, got, c.want)
		}
	}
}

func TestPolicyModeString(t *testing.T) {
	if PolicyFailFast.String() != "fail-fast" || PolicyPartial.String() != "partial" {
		t.Fatalf("mode names: %q / %q", PolicyFailFast, PolicyPartial)
	}
}

func TestRecallAtK(t *testing.T) {
	oracle := []topk.Result{{Item: 1}, {Item: 2}, {Item: 3}, {Item: 4}}
	got := []topk.Result{{Item: 2}, {Item: 4}, {Item: 9}, {Item: 10}}
	if r := RecallAtK(oracle, got); r != 0.5 {
		t.Fatalf("RecallAtK = %v, want 0.5", r)
	}
	if r := RecallAtK(oracle, oracle); r != 1 {
		t.Fatalf("full-overlap recall = %v, want 1", r)
	}
	if r := RecallAtK(oracle, nil); r != 0 {
		t.Fatalf("empty answer recall = %v, want 0", r)
	}
	if r := RecallAtK(nil, got); r != 1 {
		t.Fatalf("empty-oracle recall = %v, want 1", r)
	}
}

func TestPartialResultCoverage(t *testing.T) {
	pr := &PartialResult{Answered: 3, Shards: 4}
	if pr.Coverage() != 0.75 || !pr.Partial() {
		t.Fatalf("coverage/partial = %v/%v", pr.Coverage(), pr.Partial())
	}
	full := &PartialResult{Answered: 4, Shards: 4}
	if full.Coverage() != 1 || full.Partial() {
		t.Fatalf("full coverage misreported: %v/%v", full.Coverage(), full.Partial())
	}
	if (&PartialResult{}).Coverage() != 0 {
		t.Fatal("zero-shard coverage should be 0")
	}
}

func TestGroupBreakerOpensAndProbes(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newGroupBreaker(Policy{BreakerThreshold: 3, BreakerCooldown: 500 * time.Millisecond})
	b.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		b.report(false)
		if !b.allow() {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i+1)
		}
	}
	b.report(false) // third consecutive failure: opens
	if b.allow() {
		t.Fatal("breaker still closed after reaching the threshold")
	}
	now = now.Add(499 * time.Millisecond)
	if b.allow() {
		t.Fatal("breaker let a request through before the cooldown elapsed")
	}
	now = now.Add(2 * time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker did not allow a probe after the cooldown")
	}
	b.report(false) // probe failed: re-opens for another cooldown
	if b.allow() {
		t.Fatal("breaker closed again after a failed probe")
	}
	now = now.Add(501 * time.Millisecond)
	if !b.allow() {
		t.Fatal("re-opened breaker did not allow the next probe")
	}
	b.report(true) // probe succeeded: closes and resets the failure count
	if !b.allow() {
		t.Fatal("breaker open after a successful probe")
	}
	b.report(false)
	if !b.allow() {
		t.Fatal("one failure after a success must not re-open the breaker")
	}
}

func TestGroupBreakerDisabled(t *testing.T) {
	b := newGroupBreaker(Policy{BreakerThreshold: -1})
	for i := 0; i < 10; i++ {
		b.report(false)
	}
	if !b.allow() {
		t.Fatal("disabled breaker must always allow")
	}
	var nilB *groupBreaker
	if !nilB.allow() {
		t.Fatal("nil breaker must allow")
	}
	nilB.report(false) // must not panic
}

func TestStaticPicker(t *testing.T) {
	p := NewStaticPicker("a", "b", "c")
	got := []string{p.PickURL(), p.PickURL(), p.PickURL(), p.PickURL()}
	want := []string{"a", "b", "c", "a"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation = %v, want %v", got, want)
		}
	}
	p.Report("a", false) // no health state; must not panic
	if empty := NewStaticPicker(); empty.PickURL() != "" {
		t.Fatal("empty picker must return \"\"")
	}
}
