package shard

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"etude/internal/model"
)

func TestPlanPartitionsContiguously(t *testing.T) {
	for _, tc := range []struct{ catalog, shards int }{
		{10, 1}, {10, 2}, {10, 3}, {10, 10}, {1_000_003, 8},
	} {
		parts, err := Plan(tc.catalog, tc.shards)
		if err != nil {
			t.Fatalf("Plan(%d, %d): %v", tc.catalog, tc.shards, err)
		}
		if len(parts) != tc.shards {
			t.Fatalf("Plan(%d, %d) = %d partitions", tc.catalog, tc.shards, len(parts))
		}
		next := 0
		for i, p := range parts {
			if p.Index != i || p.From != next || p.Size() < 1 {
				t.Fatalf("Plan(%d, %d)[%d] = %v: not contiguous from %d", tc.catalog, tc.shards, i, p, next)
			}
			// Near-equal: sizes differ by at most one item.
			if diff := p.Size() - parts[len(parts)-1].Size(); diff < 0 || diff > 1 {
				t.Fatalf("Plan(%d, %d): uneven partition %v", tc.catalog, tc.shards, p)
			}
			next = p.To
		}
		if next != tc.catalog {
			t.Fatalf("Plan(%d, %d) covers %d items", tc.catalog, tc.shards, next)
		}
	}
	for _, tc := range []struct{ catalog, shards int }{{0, 1}, {10, 0}, {3, 4}} {
		if _, err := Plan(tc.catalog, tc.shards); err == nil {
			t.Fatalf("Plan(%d, %d): expected error", tc.catalog, tc.shards)
		}
	}
}

func TestSliceCostDividesCatalogTerms(t *testing.T) {
	c := model.Cost{
		Catalog: 1001, Dim: 64,
		EncoderFLOPs: 5e6, MIPSFLOPs: 8e6, TopKOps: 4e4,
		SharedBytes: 2.56e5, PerRequestBytes: 2.4e4,
		KernelLaunches: 12, HostTransfers: 2, DenseOverheadFLOPs: 1e3,
	}
	s := SliceCost(c, 4)
	if s.Catalog != 251 { // ceil(1001/4)
		t.Fatalf("sliced catalog = %d, want 251", s.Catalog)
	}
	if s.EncoderFLOPs != 0 {
		t.Fatalf("sliced encoder FLOPs = %v, want 0 (frontend encodes once)", s.EncoderFLOPs)
	}
	if s.MIPSFLOPs != c.MIPSFLOPs/4 || s.TopKOps != c.TopKOps/4 ||
		s.SharedBytes != c.SharedBytes/4 || s.PerRequestBytes != c.PerRequestBytes/4 ||
		s.DenseOverheadFLOPs != c.DenseOverheadFLOPs/4 {
		t.Fatalf("catalog-proportional terms not divided by 4: %+v", s)
	}
	if s.KernelLaunches != c.KernelLaunches || s.HostTransfers != c.HostTransfers {
		t.Fatalf("fixed per-worker overheads must not shrink: %+v", s)
	}
	if got := SliceCost(c, 1); !reflect.DeepEqual(got, func() model.Cost { c2 := c; c2.EncoderFLOPs = 0; return c2 }()) {
		t.Fatalf("SliceCost(c, 1) must only drop the encoder, got %+v", got)
	}
}

func TestMergeOpsGrowsWithShards(t *testing.T) {
	if MergeOps(0, 21) != 0 || MergeOps(4, 0) != 0 {
		t.Fatal("degenerate merge must cost nothing")
	}
	prev := 0.0
	for _, s := range []int{1, 2, 4, 8, 16} {
		ops := MergeOps(s, 21)
		if ops <= prev {
			t.Fatalf("MergeOps(%d, 21) = %v, not increasing past %v", s, ops, prev)
		}
		prev = ops
	}
}

// The in-process tier's correctness property: for every shard count the
// scatter-gather result is bit-identical to the unsharded model — same
// items, same scores, same order, ties and all.
func TestPoolMatchesUnshardedModel(t *testing.T) {
	m, err := model.New("gru4rec", model.Config{CatalogSize: 3_000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	enc := m.(model.Encoder)
	k := enc.Config().TopK
	rng := rand.New(rand.NewSource(11))
	for _, shards := range []int{1, 2, 4, 8} {
		pool, err := NewPool(enc.ItemEmbeddings(), shards)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			session := make([]int64, 1+rng.Intn(20))
			for i := range session {
				session[i] = int64(rng.Intn(3_000))
			}
			want := m.Recommend(session)
			got := pool.TopK(enc.Encode(session), k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d trial %d: sharded top-k diverged\n got %v\nwant %v", shards, trial, got, want)
			}
		}
	}
}

func TestPartitionRetrieverValidatesBounds(t *testing.T) {
	m, _ := model.New("gru4rec", model.Config{CatalogSize: 100, Seed: 1})
	enc := m.(model.Encoder)
	if _, err := PartitionRetriever(enc, Partition{From: 50, To: 150}); err == nil {
		t.Fatal("expected error for partition past the catalog end")
	}
	if _, err := PartitionRetriever(enc, Partition{From: 10, To: 10}); err == nil {
		t.Fatal("expected error for empty partition")
	}
	if _, err := PartitionRetriever(nil, Partition{From: 0, To: 10}); err == nil {
		t.Fatal("expected error for nil encoder")
	}
}

func TestHedgeTimerDelays(t *testing.T) {
	fixed := newHedgeTimer(HedgeConfig{Enabled: true, Delay: 7 * time.Millisecond})
	fixed.observe(time.Second) // must be ignored: fixed delay tracks nothing
	if d := fixed.delay(); d != 7*time.Millisecond {
		t.Fatalf("fixed delay = %v, want 7ms", d)
	}

	ad := newHedgeTimer(HedgeConfig{Enabled: true, MinSamples: 8, FallbackDelay: 3 * time.Millisecond})
	if d := ad.delay(); d != 3*time.Millisecond {
		t.Fatalf("cold adaptive delay = %v, want the 3ms fallback", d)
	}
	// 100 fast primaries and one straggler: the p95 must track the fast
	// cluster, not the straggler.
	for i := 0; i < 100; i++ {
		ad.observe(time.Millisecond)
	}
	ad.observe(500 * time.Millisecond)
	if d := ad.delay(); d < time.Millisecond || d > 2*time.Millisecond {
		t.Fatalf("warm adaptive delay = %v, want ≈1ms (p95 of the healthy cluster)", d)
	}
}
