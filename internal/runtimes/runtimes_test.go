package runtimes

import (
	"testing"

	"etude/internal/device"
	"etude/internal/model"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"torchscript", "onnx", "tensorrt"} {
		r, err := ByName(name)
		if err != nil || r.Name != name {
			t.Fatalf("ByName(%s) = %+v, %v", name, r, err)
		}
	}
	if _, err := ByName("tvm"); err == nil {
		t.Fatalf("unknown runtime accepted")
	}
	if len(All()) != 3 {
		t.Fatalf("All() = %d", len(All()))
	}
}

func TestSupportMatrix(t *testing.T) {
	cases := []struct {
		runtime string
		model   string
		kind    device.Kind
		want    bool
	}{
		{"torchscript", "gru4rec", device.KindCPU, true},
		{"torchscript", "lightsans", device.KindGPU, true}, // eager fallback exists
		{"onnx", "gru4rec", device.KindCPU, true},
		{"onnx", "lightsans", device.KindCPU, false}, // dynamic graph: no export
		{"tensorrt", "gru4rec", device.KindCPU, false},
		{"tensorrt", "gru4rec", device.KindGPU, true},
		{"tensorrt", "lightsans", device.KindGPU, false},
		{"tensorrt", "srgnn", device.KindGPU, false},
		{"tensorrt", "gcsan", device.KindGPU, false},
		{"tensorrt", "sasrec", device.KindGPU, true},
	}
	for _, tc := range cases {
		r, err := ByName(tc.runtime)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.Supports(tc.model, tc.kind); got != tc.want {
			t.Errorf("%s/%s/kind=%d: Supports = %v, want %v", tc.runtime, tc.model, tc.kind, got, tc.want)
		}
	}
}

func TestONNXFasterOnCPU(t *testing.T) {
	cfg := model.Config{CatalogSize: 1_000_000, Seed: 1}
	base, ok, err := TorchScript().SerialInference(device.CPU(), "gru4rec", cfg, 3)
	if err != nil || !ok {
		t.Fatal(err)
	}
	onnx, ok, err := ONNX().SerialInference(device.CPU(), "gru4rec", cfg, 3)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if onnx >= base {
		t.Fatalf("ONNX %v not faster than TorchScript %v on CPU", onnx, base)
	}
	speedup := float64(base) / float64(onnx)
	if speedup < 1.2 || speedup > 1.6 {
		t.Fatalf("ONNX CPU speedup %.2f outside the 1.2-1.6 band", speedup)
	}
}

func TestTensorRTFastestOnGPUButBounded(t *testing.T) {
	cfg := model.Config{CatalogSize: 10_000_000, Seed: 1}
	ts, _, err := TorchScript().SerialInference(device.GPUT4(), "sasrec", cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	trt, ok, err := TensorRT().SerialInference(device.GPUT4(), "sasrec", cfg, 3)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if trt >= ts {
		t.Fatalf("TensorRT %v not faster than TorchScript %v", trt, ts)
	}
	// At huge catalogs the memory-bound MIPS dominates and no runtime can
	// fix DRAM: the win must stay well under the 2× compute speedup.
	if float64(ts)/float64(trt) > 1.5 {
		t.Fatalf("TensorRT speedup %.2f at C=1e7 — memory wall should cap it", float64(ts)/float64(trt))
	}
}

func TestTensorRTShinesAtSmallCatalogs(t *testing.T) {
	// With a small catalog, launch overhead dominates and fusion pays.
	cfg := model.Config{CatalogSize: 10_000, Seed: 1}
	ts, _, _ := TorchScript().SerialInference(device.GPUT4(), "sasrec", cfg, 3)
	trt, _, _ := TensorRT().SerialInference(device.GPUT4(), "sasrec", cfg, 3)
	if float64(ts)/float64(trt) < 1.15 {
		t.Fatalf("TensorRT speedup %.2f at C=1e4 — fusion should pay off", float64(ts)/float64(trt))
	}
}

func TestUnsupportedReturnsNotOK(t *testing.T) {
	cfg := model.Config{CatalogSize: 1000, Seed: 1}
	if _, ok, err := TensorRT().SerialInference(device.CPU(), "core", cfg, 2); err != nil || ok {
		t.Fatalf("TensorRT on CPU must be unsupported: ok=%v err=%v", ok, err)
	}
	if _, ok, err := ONNX().SerialInference(device.CPU(), "lightsans", cfg, 2); err != nil || ok {
		t.Fatalf("ONNX lightsans must be unsupported: ok=%v err=%v", ok, err)
	}
}

func TestAdjustCostFloorsAtOneLaunch(t *testing.T) {
	c := model.Cost{KernelLaunches: 2}
	if got := TensorRT().AdjustCost(c).KernelLaunches; got != 1 {
		t.Fatalf("launches = %d, want floor 1", got)
	}
}

func TestApplyLeavesMemoryAlone(t *testing.T) {
	spec := device.GPUT4()
	out := TensorRT().Apply(spec)
	if out.MemBW != spec.MemBW || out.ScoreBW != spec.ScoreBW {
		t.Fatalf("runtime must not change memory bandwidth")
	}
	if out.FLOPs <= spec.FLOPs {
		t.Fatalf("TensorRT must raise GPU compute rate")
	}
}
