// Package runtimes models alternative inference runtimes — the paper's
// future-work plan "to extend ETUDE with more inference runtimes such as
// ONNX or TensorRT".
//
// A runtime changes how a given model executes on a given device: how
// efficiently the compute kernels run, how aggressively operators are
// fused (kernel-launch count), and whether the model can be compiled at
// all. The profiles below follow commonly reported efficiency ratios:
//
//   - TorchScript — the baseline this repository's device model is
//     calibrated to (the paper serves TorchScript via tch-rs);
//   - ONNX Runtime — faster CPU execution (graph-level optimisation,
//     better threading) and mild GPU gains;
//   - TensorRT — aggressive GPU kernel fusion and tuning, GPU-only, and —
//     like PyTorch JIT — defeated by dynamic control flow and dynamic
//     graph shapes (LightSANs; the session-graph models).
package runtimes

import (
	"fmt"
	"time"

	"etude/internal/device"
	"etude/internal/model"
)

// Runtime is an inference-runtime performance profile.
type Runtime struct {
	// Name labels the runtime ("torchscript", "onnx", "tensorrt").
	Name string
	// CPUSpeedup multiplies the CPU execution rate (1 = TorchScript).
	CPUSpeedup float64
	// GPUSpeedup multiplies the accelerator compute rate.
	GPUSpeedup float64
	// FusionFactor multiplies the kernel-launch count (<1 = more fusion).
	FusionFactor float64
	// GPUOnly marks runtimes without a CPU backend.
	GPUOnly bool
	// rejects reports models the runtime cannot compile.
	rejects func(modelName string) bool
}

// TorchScript returns the baseline runtime (the paper's deployment).
func TorchScript() Runtime {
	return Runtime{
		Name:         "torchscript",
		CPUSpeedup:   1,
		GPUSpeedup:   1,
		FusionFactor: 1,
		rejects:      func(string) bool { return false },
	}
}

// ONNX returns the ONNX Runtime profile: strong CPU graph optimisation,
// modest GPU gains, and support for every exportable model (the dynamic
// LightSANs graph does not export).
func ONNX() Runtime {
	return Runtime{
		Name:         "onnx",
		CPUSpeedup:   1.4,
		GPUSpeedup:   1.15,
		FusionFactor: 0.7,
		rejects:      func(name string) bool { return name == "lightsans" },
	}
}

// TensorRT returns the TensorRT profile: heavy GPU fusion and kernel
// auto-tuning, no CPU backend, and no support for dynamic control flow or
// per-request graph shapes (LightSANs, SR-GNN, GC-SAN).
func TensorRT() Runtime {
	dynamic := map[string]bool{"lightsans": true, "srgnn": true, "gcsan": true}
	return Runtime{
		Name:         "tensorrt",
		CPUSpeedup:   1,
		GPUSpeedup:   2.0,
		FusionFactor: 0.3,
		GPUOnly:      true,
		rejects:      func(name string) bool { return dynamic[name] },
	}
}

// All returns the three runtime profiles.
func All() []Runtime {
	return []Runtime{TorchScript(), ONNX(), TensorRT()}
}

// ByName resolves a runtime label.
func ByName(name string) (Runtime, error) {
	for _, r := range All() {
		if r.Name == name {
			return r, nil
		}
	}
	return Runtime{}, fmt.Errorf("runtimes: unknown runtime %q", name)
}

// Supports reports whether the runtime can execute the named model on the
// given device kind.
func (r Runtime) Supports(modelName string, kind device.Kind) bool {
	if r.GPUOnly && kind == device.KindCPU {
		return false
	}
	return !r.rejects(modelName)
}

// Apply returns a device spec whose execution rates reflect the runtime.
// The catalog-scan and score-pass memory terms are unchanged: no runtime
// makes DRAM faster, which is why runtime choice matters least exactly
// where the paper's problem is hardest (huge catalogs).
func (r Runtime) Apply(spec device.Spec) device.Spec {
	out := spec
	out.CoreFLOPs *= r.CPUSpeedup
	out.FLOPs *= r.GPUSpeedup
	return out
}

// AdjustCost returns the model cost under the runtime's operator fusion.
func (r Runtime) AdjustCost(c model.Cost) model.Cost {
	out := c
	out.KernelLaunches = int(float64(c.KernelLaunches)*r.FusionFactor + 0.5)
	if out.KernelLaunches < 1 {
		out.KernelLaunches = 1
	}
	return out
}

// SerialInference returns the single-request latency of the model under
// this runtime on the device (JIT-style compiled execution; runtimes are
// ahead-of-time compilers). It returns false when the runtime cannot serve
// the model on the device.
func (r Runtime) SerialInference(spec device.Spec, modelName string, cfg model.Config, sessionLen int) (time.Duration, bool, error) {
	if !r.Supports(modelName, spec.Kind) {
		return 0, false, nil
	}
	cost, err := model.EstimateCost(modelName, cfg, sessionLen)
	if err != nil {
		return 0, false, err
	}
	d := r.Apply(spec).SerialInference(r.AdjustCost(cost), true)
	return d, true, nil
}
