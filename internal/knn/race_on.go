//go:build race

package knn

const raceEnabled = true
