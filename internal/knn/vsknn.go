// Package knn implements a vector-multiplication session-based kNN
// recommender (VS-kNN/VMIS-kNN style) — the non-neural approach the paper's
// conclusion points to: "catalogs with twenty million items ... can be
// handled much cheaper with non-neural approaches", citing the authors'
// Serenade system.
//
// Unlike the ten neural models, inference cost here is *independent of the
// catalog size*: the current session's items probe an inverted index of
// historical sessions, the most similar neighbours are scored by
// recency-weighted item overlap, and candidate items come only from those
// neighbours — no O(C·d) catalog scan. That is exactly why it undercuts
// neural serving costs at platform-scale catalogs (see
// BenchmarkNonNeuralBaseline).
//
// For the same reason the catalog-sharded retrieval tier (internal/shard)
// does not apply here: there is no catalog-proportional scan to split, so
// VSKNN does not implement model.Encoder and server.Options.Shards rejects
// it (see TestShardingDoesNotApply). Sharding and the non-neural baseline
// are two different answers to the same O(C·(d+log k)) bottleneck — divide
// the scan, or avoid it entirely.
package knn

import (
	"fmt"
	"math"
	"sort"
	"time"

	"etude/internal/model"
	"etude/internal/topk"
	"etude/internal/workload"
)

// Config controls index construction and inference.
type Config struct {
	// CatalogSize is C (used only for reporting and id validation).
	CatalogSize int
	// Neighbors is the number of similar historical sessions scored (the
	// "k" of kNN; Serenade uses values around 100-500).
	Neighbors int
	// MaxPostings caps the number of most recent historical sessions kept
	// per item (the "most recent m sessions" sampling of VMIS-kNN).
	MaxPostings int
	// TopK is the number of recommendations returned.
	TopK int
	// MaxSessionLen truncates input sessions.
	MaxSessionLen int
}

func (c Config) withDefaults() Config {
	if c.Neighbors == 0 {
		c.Neighbors = 100
	}
	if c.MaxPostings == 0 {
		c.MaxPostings = 500
	}
	if c.TopK == 0 {
		c.TopK = model.DefaultTopK
	}
	if c.MaxSessionLen == 0 {
		c.MaxSessionLen = 50
	}
	return c
}

// VSKNN is a trained session-kNN index implementing model.Model.
type VSKNN struct {
	cfg      Config
	sessions []workload.Session
	postings map[int64][]int32 // item → historical session ids (most recent last)
}

// Train builds the index from historical sessions (a training click log).
func Train(history []workload.Session, cfg Config) (*VSKNN, error) {
	cfg = cfg.withDefaults()
	if cfg.CatalogSize <= 0 {
		return nil, fmt.Errorf("knn: catalog size must be positive, got %d", cfg.CatalogSize)
	}
	if len(history) == 0 {
		return nil, fmt.Errorf("knn: empty training history")
	}
	if len(history) > math.MaxInt32 {
		return nil, fmt.Errorf("knn: too many training sessions (%d)", len(history))
	}
	m := &VSKNN{cfg: cfg, sessions: history, postings: make(map[int64][]int32)}
	for sid, s := range history {
		seen := make(map[int64]bool, len(s))
		for _, item := range s {
			if item < 0 || item >= int64(cfg.CatalogSize) {
				return nil, fmt.Errorf("knn: training item %d outside catalog [0,%d)", item, cfg.CatalogSize)
			}
			if seen[item] {
				continue
			}
			seen[item] = true
			m.postings[item] = append(m.postings[item], int32(sid))
		}
	}
	// VMIS-style sampling: keep only the most recent MaxPostings sessions
	// per item so hot items do not blow up candidate generation.
	for item, list := range m.postings {
		if len(list) > cfg.MaxPostings {
			m.postings[item] = list[len(list)-cfg.MaxPostings:]
		}
	}
	return m, nil
}

// Name implements model.Model.
func (m *VSKNN) Name() string { return "vsknn" }

// Config implements model.Model.
func (m *VSKNN) Config() model.Config {
	return model.Config{
		CatalogSize:   m.cfg.CatalogSize,
		MaxSessionLen: m.cfg.MaxSessionLen,
		TopK:          m.cfg.TopK,
	}
}

// Recommend implements model.Model: recency-weighted session-kNN scoring.
func (m *VSKNN) Recommend(session []int64) []topk.Result {
	session, neighbors := m.nearestSessions(session)
	if len(neighbors) == 0 {
		return nil
	}
	return m.scoreCandidates(session, neighbors)
}

// RecommendStaged implements model.StagedRecommender. The index probe +
// neighbour selection plays the encoder's role in the decomposition (it
// produces the "session representation" — the neighbour set); candidate
// scoring + truncation is the top-k stage. Neither grows with the catalog.
func (m *VSKNN) RecommendStaged(session []int64, now func() time.Duration) ([]topk.Result, model.StageTimings) {
	var tm model.StageTimings
	t0 := now()
	session, neighbors := m.nearestSessions(session)
	tm.Encoder = now() - t0
	if len(neighbors) == 0 {
		return nil, tm
	}
	t1 := now()
	out := m.scoreCandidates(session, neighbors)
	tm.TopK = now() - t1
	return out, tm
}

type neighbor struct {
	sid int32
	sim float64
}

// nearestSessions truncates the session and returns the Neighbors most
// similar historical sessions (steps 1–2 of VS-kNN).
func (m *VSKNN) nearestSessions(session []int64) ([]int64, []neighbor) {
	if len(session) > m.cfg.MaxSessionLen {
		session = session[len(session)-m.cfg.MaxSessionLen:]
	}
	if len(session) == 0 {
		return session, nil
	}
	// 1. Candidate sessions with recency-weighted overlap similarity:
	// later clicks in the current session contribute more.
	sim := make(map[int32]float64)
	for pos, item := range session {
		w := float64(pos+1) / float64(len(session))
		for _, sid := range m.postings[item] {
			sim[sid] += w
		}
	}
	if len(sim) == 0 {
		return session, nil
	}
	// 2. Keep the Neighbors most similar sessions.
	neighbors := make([]neighbor, 0, len(sim))
	for sid, s := range sim {
		neighbors = append(neighbors, neighbor{sid, s})
	}
	sort.Slice(neighbors, func(i, j int) bool {
		if neighbors[i].sim != neighbors[j].sim {
			return neighbors[i].sim > neighbors[j].sim
		}
		return neighbors[i].sid < neighbors[j].sid
	})
	if len(neighbors) > m.cfg.Neighbors {
		neighbors = neighbors[:m.cfg.Neighbors]
	}
	return session, neighbors
}

// scoreCandidates scores the neighbours' items and truncates to top-k
// (steps 3–4 of VS-kNN).
func (m *VSKNN) scoreCandidates(session []int64, neighbors []neighbor) []topk.Result {
	// 3. Score candidate items from the neighbours, excluding items the
	// visitor already clicked (next-item prediction).
	clicked := make(map[int64]bool, len(session))
	for _, item := range session {
		clicked[item] = true
	}
	scores := make(map[int64]float64)
	for _, n := range neighbors {
		for _, item := range m.sessions[n.sid] {
			if !clicked[item] {
				scores[item] += n.sim
			}
		}
	}
	// 4. Top-k over the (small) candidate set.
	out := make([]topk.Result, 0, len(scores))
	for item, s := range scores {
		out = append(out, topk.Result{Item: item, Score: float32(s)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Item < out[j].Item
	})
	if len(out) > m.cfg.TopK {
		out = out[:m.cfg.TopK]
	}
	return out
}

// Cost implements model.Model. The crucial property: no term grows with the
// catalog size. Work is bounded by session length × postings cap ×
// neighbour count.
func (m *VSKNN) Cost(sessionLen int) model.Cost {
	if sessionLen < 1 {
		sessionLen = 1
	}
	if sessionLen > m.cfg.MaxSessionLen {
		sessionLen = m.cfg.MaxSessionLen
	}
	l := float64(sessionLen)
	candidates := l * float64(m.cfg.MaxPostings)
	scoring := float64(m.cfg.Neighbors) * 8 // avg items per neighbour session
	return model.Cost{
		Catalog:         m.cfg.CatalogSize,
		Dim:             1,
		EncoderFLOPs:    candidates + scoring + candidates*math.Log2(math.Max(candidates, 2)),
		MIPSFLOPs:       0, // no catalog scan — the whole point
		TopKOps:         scoring,
		SharedBytes:     0,
		PerRequestBytes: (candidates + scoring) * 8,
		KernelLaunches:  1,
	}
}
