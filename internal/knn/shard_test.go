package knn

import (
	"strings"
	"testing"

	"etude/internal/server"
	"etude/internal/shard"
)

// TestShardingDoesNotApply pins the design boundary with internal/shard:
// VS-kNN has no catalog-proportional scan to split, so it does not
// implement model.Encoder and both sharded serving modes must reject it
// rather than silently serving unsharded.
func TestShardingDoesNotApply(t *testing.T) {
	m := trainedIndex(t)
	if _, err := server.New(m, server.Options{Shards: 2}); err == nil || !strings.Contains(err.Error(), "encoder") {
		t.Fatalf("Shards with a non-encoder model: got err %v, want encoder rejection", err)
	}
	part := shard.Partition{Index: 0, From: 0, To: 50}
	if _, err := server.New(m, server.Options{Partition: &part}); err == nil || !strings.Contains(err.Error(), "encoder") {
		t.Fatalf("Partition with a non-encoder model: got err %v, want encoder rejection", err)
	}
}
