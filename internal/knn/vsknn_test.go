package knn

import (
	"testing"
	"time"

	"etude/internal/device"
	"etude/internal/model"
	"etude/internal/workload"
)

func trainedIndex(t *testing.T) *VSKNN {
	t.Helper()
	history := []workload.Session{
		{1, 2, 3},
		{2, 3, 4},
		{3, 4, 5},
		{1, 2, 6},
		{7, 8},
	}
	m, err := Train(history, Config{CatalogSize: 100, Neighbors: 3, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, Config{CatalogSize: 10}); err == nil {
		t.Fatalf("empty history accepted")
	}
	if _, err := Train([]workload.Session{{1}}, Config{CatalogSize: 0}); err == nil {
		t.Fatalf("zero catalog accepted")
	}
	if _, err := Train([]workload.Session{{99}}, Config{CatalogSize: 10}); err == nil {
		t.Fatalf("out-of-catalog training item accepted")
	}
}

func TestRecommendFromNeighbors(t *testing.T) {
	m := trainedIndex(t)
	// Session {2,3}: neighbours are {1,2,3}, {2,3,4}, {3,4,5}; candidates
	// exclude 2 and 3; item 4 appears in two neighbours — it must rank top.
	recs := m.Recommend([]int64{2, 3})
	if len(recs) == 0 {
		t.Fatalf("no recommendations")
	}
	if recs[0].Item != 4 {
		t.Fatalf("top item = %d, want 4 (in two overlapping neighbours)", recs[0].Item)
	}
	for _, r := range recs {
		if r.Item == 2 || r.Item == 3 {
			t.Fatalf("already-clicked item %d recommended", r.Item)
		}
	}
	// Scores descending.
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Score < recs[i].Score {
			t.Fatalf("scores not sorted: %+v", recs)
		}
	}
}

func TestRecommendUnknownItems(t *testing.T) {
	m := trainedIndex(t)
	if recs := m.Recommend([]int64{50, 51}); len(recs) != 0 {
		t.Fatalf("items absent from history produced %v", recs)
	}
	if recs := m.Recommend(nil); len(recs) != 0 {
		t.Fatalf("empty session produced %v", recs)
	}
}

func TestRecencyWeighting(t *testing.T) {
	history := []workload.Session{
		{1, 10}, // shares the OLD click
		{2, 20}, // shares the RECENT click
	}
	m, err := Train(history, Config{CatalogSize: 100, Neighbors: 2, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Current session clicks 1 then 2: the session sharing the recent
	// click (2) is more similar, so its item 20 must outrank 10.
	recs := m.Recommend([]int64{1, 2})
	if len(recs) < 2 {
		t.Fatalf("recs = %+v", recs)
	}
	if recs[0].Item != 20 {
		t.Fatalf("top item = %d, want 20 (recency-weighted neighbour)", recs[0].Item)
	}
}

func TestModelInterface(t *testing.T) {
	var m model.Model = trainedIndex(t)
	if m.Name() != "vsknn" {
		t.Fatalf("name = %s", m.Name())
	}
	cfg := m.Config()
	if cfg.CatalogSize != 100 || cfg.TopK != 5 {
		t.Fatalf("config = %+v", cfg)
	}
}

func TestPostingsCapped(t *testing.T) {
	history := make([]workload.Session, 100)
	for i := range history {
		history[i] = workload.Session{7}
	}
	m, err := Train(history, Config{CatalogSize: 10, MaxPostings: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.postings[7]); got != 10 {
		t.Fatalf("postings for hot item = %d, want capped at 10", got)
	}
	// The kept postings must be the most recent (highest session ids).
	if m.postings[7][0] != 90 {
		t.Fatalf("postings not recency-sampled: first kept = %d", m.postings[7][0])
	}
}

// TestCostIndependentOfCatalog is the headline property: serving cost does
// not grow with C, which is what makes the non-neural baseline cheap at
// platform scale.
func TestCostIndependentOfCatalog(t *testing.T) {
	history := []workload.Session{{1, 2}, {2, 3}}
	small, _ := Train(history, Config{CatalogSize: 10_000})
	large, _ := Train(history, Config{CatalogSize: 20_000_000})
	cs, cl := small.Cost(5), large.Cost(5)
	if cs.TotalFLOPs() != cl.TotalFLOPs() || cs.PerRequestBytes != cl.PerRequestBytes {
		t.Fatalf("kNN cost must not depend on catalog size: %+v vs %+v", cs, cl)
	}
	if cs.MIPSFLOPs != 0 || cs.SharedBytes != 0 {
		t.Fatalf("kNN must not pay a catalog scan: %+v", cs)
	}
}

// TestPlatformScaleOnCPU quantifies the conclusion's claim: at C=2e7 the
// non-neural baseline serves within the latency SLO on the $108 CPU
// instance where the neural models need $6,026 of A100s.
func TestPlatformScaleOnCPU(t *testing.T) {
	gen, err := workload.NewGenerator(workload.Spec{
		CatalogSize: 20_000_000, NumClicks: 50_000,
		AlphaLength: 2.2, AlphaClicks: 1.6, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	history := make([]workload.Session, 0, 20_000)
	for i := 0; i < 20_000; i++ {
		history = append(history, gen.NextSession())
	}
	m, err := Train(history, Config{CatalogSize: 20_000_000})
	if err != nil {
		t.Fatal(err)
	}
	// Real measured inference on this machine must be far below the SLO.
	// The race detector slows execution an order of magnitude, so the
	// wall-clock bound only applies to uninstrumented builds.
	session := history[7]
	start := time.Now()
	const n = 50
	for i := 0; i < n; i++ {
		m.Recommend(session)
	}
	perReq := time.Since(start) / n
	if !raceEnabled && perReq > 10*time.Millisecond {
		t.Fatalf("vsknn at C=2e7: %v per request — should be millisecond-scale", perReq)
	}
	// The cost model agrees: CPU serial latency far below the neural models'.
	cpuLatency := device.CPU().SerialInference(m.Cost(5), true)
	neural, err := model.EstimateCost("gru4rec", model.Config{CatalogSize: 20_000_000, Seed: 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	neuralLatency := device.CPU().SerialInference(neural, true)
	if cpuLatency*100 > neuralLatency {
		t.Fatalf("vsknn (%v) not ≥100× cheaper than neural (%v) at C=2e7", cpuLatency, neuralLatency)
	}
}
