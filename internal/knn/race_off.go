//go:build !race

package knn

// raceEnabled reports whether the race detector instruments this build.
// Wall-clock performance assertions are meaningless under its ~10×
// slowdown and skip themselves when it is on.
const raceEnabled = false
