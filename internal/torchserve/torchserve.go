// Package torchserve is a behaviourally faithful simulator of the open
// source TorchServe inference server, built to reproduce the paper's
// infrastructure finding (Fig 2): TorchServe fails to handle 1,000
// requests/second efficiently even when no model inference is performed.
//
// The simulator models the three architectural mechanisms the paper blames:
//
//   - a Java frontend that enqueues every request into a bounded job queue
//     (immediate 503 when the queue is full);
//   - a small, fixed pool of Python worker processes, each handling one
//     request at a time (the GIL), with a per-request inter-process
//     serialisation/dispatch overhead of several milliseconds;
//   - an internal response timeout (default 100 ms): jobs that waited
//     longer than the timeout in the queue are answered with an HTTP error.
//
// Under a ramping load, capacity saturates at workers/overhead requests per
// second (≈330/s with the defaults); beyond that, queue waits climb to the
// timeout, surviving requests land in the 100–200 ms band, and the error
// rate explodes — exactly the measured behaviour in the paper.
package torchserve

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"etude/internal/httpapi"
	"etude/internal/model"
	"etude/internal/topk"
)

// Config controls the simulated TorchServe deployment.
type Config struct {
	// Workers is the number of Python worker processes (TorchServe default:
	// one per vCPU; the paper's 2-vCPU machine gets 2).
	Workers int
	// PerRequestOverhead is the frontend↔worker IPC plus Python dispatch
	// cost paid by every request, even for an empty model.
	PerRequestOverhead time.Duration
	// OverheadJitter adds uniform ±jitter to the overhead.
	OverheadJitter time.Duration
	// ResponseTimeout is TorchServe's internal timeout: requests whose
	// queue wait exceeds it are answered with an error (default 100 ms, as
	// in the paper).
	ResponseTimeout time.Duration
	// QueueSize bounds the frontend job queue (TorchServe default: 100).
	QueueSize int
	// Seed drives the jitter.
	Seed int64
}

// DefaultConfig returns the configuration matching the paper's TorchServe
// deployment on a 2-vCPU e2 machine.
func DefaultConfig() Config {
	return Config{
		Workers:            2,
		PerRequestOverhead: 6 * time.Millisecond,
		OverheadJitter:     2 * time.Millisecond,
		ResponseTimeout:    100 * time.Millisecond,
		QueueSize:          100,
		Seed:               1,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Workers <= 0 {
		c.Workers = d.Workers
	}
	if c.PerRequestOverhead <= 0 {
		c.PerRequestOverhead = d.PerRequestOverhead
	}
	if c.ResponseTimeout <= 0 {
		c.ResponseTimeout = d.ResponseTimeout
	}
	if c.QueueSize <= 0 {
		c.QueueSize = d.QueueSize
	}
	return c
}

// Server simulates a TorchServe deployment. Create with New (optionally
// hosting a model; nil serves the empty Python handler of the paper's
// infrastructure test), serve via Handler, stop with Close.
type Server struct {
	cfg   Config
	mdl   model.Model // nil: empty handler
	queue chan job
	stop  chan struct{}
	wg    sync.WaitGroup

	mu  sync.Mutex
	rng *rand.Rand
}

type job struct {
	enqueued time.Time
	session  []int64
	reply    chan jobResult
}

type jobResult struct {
	recs    []topk.Result
	expired bool
}

// New starts the simulated worker processes.
func New(mdl model.Model, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		mdl:   mdl,
		queue: make(chan job, cfg.QueueSize),
		stop:  make(chan struct{}),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close terminates the worker processes.
func (s *Server) Close() {
	close(s.stop)
	s.wg.Wait()
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.queue:
			wait := time.Since(j.enqueued)
			if wait > s.cfg.ResponseTimeout {
				// The frontend has already given up on this job.
				j.reply <- jobResult{expired: true}
				continue
			}
			// IPC + Python dispatch overhead, paid even with no model.
			time.Sleep(s.overhead())
			var recs []topk.Result
			if s.mdl != nil {
				recs = s.mdl.Recommend(j.session)
			}
			j.reply <- jobResult{recs: recs}
		}
	}
}

func (s *Server) overhead() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	jitter := time.Duration(0)
	if s.cfg.OverheadJitter > 0 {
		jitter = time.Duration(s.rng.Int63n(int64(2*s.cfg.OverheadJitter))) - s.cfg.OverheadJitter
	}
	return s.cfg.PerRequestOverhead + jitter
}

// Handler returns the HTTP routes: POST /predictions, GET /ping
// (readiness) and GET /live (liveness — the baseline has no drain state, so
// both probes answer 200 whenever the process is up).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(httpapi.ReadyPath, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc(httpapi.LivePath, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc(httpapi.PredictPath, s.handlePredict)
	return mux
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	// Echo the caller's correlation id on every outcome, including 503s and
	// timeouts, so client traces line up with server-side ones.
	if id := r.Header.Get(httpapi.HeaderRequestID); id != "" {
		w.Header().Set(httpapi.HeaderRequestID, id)
	}
	if r.Method != http.MethodPost {
		http.Error(w, "use POST", http.StatusMethodNotAllowed)
		return
	}
	var req httpapi.PredictRequest
	if err := httpapi.ReadJSON(r.Body, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if w.Header().Get(httpapi.HeaderRequestID) == "" && req.RequestID != "" {
		w.Header().Set(httpapi.HeaderRequestID, req.RequestID)
	}
	j := job{enqueued: time.Now(), session: req.Items, reply: make(chan jobResult, 1)}
	select {
	case s.queue <- j:
	default:
		http.Error(w, "job queue full", http.StatusServiceUnavailable)
		return
	}
	select {
	case res := <-j.reply:
		if res.expired {
			http.Error(w, fmt.Sprintf("worker timeout after %v", s.cfg.ResponseTimeout), http.StatusInternalServerError)
			return
		}
		resp := httpapi.PredictResponse{
			Items:  make([]int64, len(res.recs)),
			Scores: make([]float32, len(res.recs)),
		}
		for i, rec := range res.recs {
			resp.Items[i] = rec.Item
			resp.Scores[i] = rec.Score
		}
		httpapi.WriteJSON(w, http.StatusOK, resp)
	case <-r.Context().Done():
		http.Error(w, "client gone", http.StatusGatewayTimeout)
	}
}
