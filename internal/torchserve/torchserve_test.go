package torchserve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"etude/internal/httpapi"
	"etude/internal/model"
)

func post(t *testing.T, url string, items []int64) *http.Response {
	t.Helper()
	body, _ := json.Marshal(httpapi.PredictRequest{Items: items})
	resp, err := http.Post(url+httpapi.PredictPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestEmptyModelServing(t *testing.T) {
	s := New(nil, Config{Workers: 2, PerRequestOverhead: time.Millisecond, ResponseTimeout: time.Second, QueueSize: 10, Seed: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := post(t, ts.URL, []int64{1, 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out httpapi.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 0 {
		t.Fatalf("empty model must return no items")
	}
}

func TestHostsRealModel(t *testing.T) {
	m, err := model.New("core", model.Config{CatalogSize: 100, Seed: 1, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := New(m, Config{Workers: 1, PerRequestOverhead: time.Millisecond, ResponseTimeout: time.Second, QueueSize: 10, Seed: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := post(t, ts.URL, []int64{1, 2, 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out httpapi.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 5 {
		t.Fatalf("got %d items", len(out.Items))
	}
}

// TestPerRequestOverheadPaid: even the empty model costs the IPC overhead.
func TestPerRequestOverheadPaid(t *testing.T) {
	s := New(nil, Config{Workers: 1, PerRequestOverhead: 20 * time.Millisecond, OverheadJitter: time.Nanosecond, ResponseTimeout: time.Second, QueueSize: 10, Seed: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	start := time.Now()
	post(t, ts.URL, []int64{1})
	if elapsed := time.Since(start); elapsed < 18*time.Millisecond {
		t.Fatalf("request completed in %v despite 20ms IPC overhead", elapsed)
	}
}

// TestSaturationCausesErrors is the essence of Fig 2: push far more load
// than workers/overhead can absorb and observe queue-full and timeout
// errors while the Actix-style server (tested in internal/server) stays
// clean under the same load.
func TestSaturationCausesErrors(t *testing.T) {
	s := New(nil, Config{
		Workers:            1,
		PerRequestOverhead: 10 * time.Millisecond,
		ResponseTimeout:    30 * time.Millisecond,
		QueueSize:          5,
		Seed:               1,
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ok, errs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 60; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(httpapi.PredictRequest{Items: []int64{1}})
			resp, err := http.Post(ts.URL+httpapi.PredictPath, "application/json", bytes.NewReader(body))
			if err != nil {
				errs.Add(1)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				ok.Add(1)
			} else {
				errs.Add(1)
			}
		}()
	}
	wg.Wait()
	if errs.Load() == 0 {
		t.Fatalf("60 concurrent requests at 100 req/s capacity produced no errors")
	}
	if ok.Load() == 0 {
		t.Fatalf("no request survived at all — timeout model too harsh")
	}
}

func TestQueueFullReturns503(t *testing.T) {
	// One very slow worker, tiny queue.
	s := New(nil, Config{
		Workers:            1,
		PerRequestOverhead: 200 * time.Millisecond,
		ResponseTimeout:    5 * time.Second,
		QueueSize:          1,
		Seed:               1,
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var got503 atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(httpapi.PredictRequest{Items: []int64{1}})
			resp, err := http.Post(ts.URL+httpapi.PredictPath, "application/json", bytes.NewReader(body))
			if err != nil {
				return
			}
			resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable {
				got503.Store(true)
			}
		}()
	}
	wg.Wait()
	if !got503.Load() {
		t.Fatalf("overflowing a size-1 queue never returned 503")
	}
}

func TestPingAlwaysUp(t *testing.T) {
	s := New(nil, DefaultConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + httpapi.ReadyPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ping = %d", resp.StatusCode)
	}
}

func TestBadRequestRejected(t *testing.T) {
	s := New(nil, DefaultConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+httpapi.PredictPath, "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d", resp.StatusCode)
	}
	resp2, err := http.Get(ts.URL + httpapi.PredictPath)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET = %d", resp2.StatusCode)
	}
}

func TestDefaultsMatchPaperDeployment(t *testing.T) {
	c := DefaultConfig()
	if c.Workers != 2 {
		t.Errorf("workers = %d, paper deploys on a 2-vCPU machine", c.Workers)
	}
	if c.ResponseTimeout != 100*time.Millisecond {
		t.Errorf("timeout = %v, paper reports the internal 100ms timeout", c.ResponseTimeout)
	}
	// Capacity must be well below 1,000 req/s so that Fig 2 reproduces.
	capacity := float64(c.Workers) / c.PerRequestOverhead.Seconds()
	if capacity >= 1000 {
		t.Errorf("simulated capacity %.0f req/s — TorchServe must fail the 1,000 req/s ramp", capacity)
	}
}

// TestRecoversAfterOverload: once the flood stops, the simulated TorchServe
// drains its queue and serves new requests normally — the failure mode is
// saturation, not permanent breakage.
func TestRecoversAfterOverload(t *testing.T) {
	s := New(nil, Config{
		Workers:            1,
		PerRequestOverhead: 5 * time.Millisecond,
		ResponseTimeout:    20 * time.Millisecond,
		QueueSize:          10,
		Seed:               1,
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Flood.
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(httpapi.PredictRequest{Items: []int64{1}})
			resp, err := http.Post(ts.URL+httpapi.PredictPath, "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	time.Sleep(100 * time.Millisecond) // drain

	// Calm request must succeed.
	resp := post(t, ts.URL, []int64{1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-overload request failed with %d", resp.StatusCode)
	}
}

// TestOverheadJitterDeterministic: the same seed produces the same jitter
// sequence (experiments are reproducible).
func TestOverheadJitterDeterministic(t *testing.T) {
	a := New(nil, Config{Workers: 1, PerRequestOverhead: 5 * time.Millisecond, OverheadJitter: 2 * time.Millisecond, ResponseTimeout: time.Second, QueueSize: 4, Seed: 9})
	defer a.Close()
	b := New(nil, Config{Workers: 1, PerRequestOverhead: 5 * time.Millisecond, OverheadJitter: 2 * time.Millisecond, ResponseTimeout: time.Second, QueueSize: 4, Seed: 9})
	defer b.Close()
	for i := 0; i < 20; i++ {
		if a.overhead() != b.overhead() {
			t.Fatalf("jitter diverged at draw %d", i)
		}
	}
}

func TestOverheadWithinJitterBand(t *testing.T) {
	s := New(nil, Config{Workers: 1, PerRequestOverhead: 10 * time.Millisecond, OverheadJitter: 3 * time.Millisecond, ResponseTimeout: time.Second, QueueSize: 4, Seed: 2})
	defer s.Close()
	for i := 0; i < 200; i++ {
		d := s.overhead()
		if d < 7*time.Millisecond || d > 13*time.Millisecond {
			t.Fatalf("overhead %v outside 10ms ± 3ms", d)
		}
	}
}

// TestRequestIDEchoed: the baseline echoes X-Request-ID on success and on
// queue-full 503s, from the header or the body fallback.
func TestRequestIDEchoed(t *testing.T) {
	s := New(nil, Config{Workers: 1, PerRequestOverhead: time.Millisecond, ResponseTimeout: time.Second, QueueSize: 1, Seed: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	send := func(header, bodyID string) *http.Response {
		t.Helper()
		body, _ := json.Marshal(httpapi.PredictRequest{RequestID: bodyID, Items: []int64{1}})
		req, _ := http.NewRequest(http.MethodPost, ts.URL+httpapi.PredictPath, bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if header != "" {
			req.Header.Set(httpapi.HeaderRequestID, header)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := send("rid-1", ""); resp.Header.Get(httpapi.HeaderRequestID) != "rid-1" {
		t.Fatalf("header id not echoed: %q", resp.Header.Get(httpapi.HeaderRequestID))
	}
	if resp := send("", "rid-2"); resp.Header.Get(httpapi.HeaderRequestID) != "rid-2" {
		t.Fatalf("body id not echoed: %q", resp.Header.Get(httpapi.HeaderRequestID))
	}
}
