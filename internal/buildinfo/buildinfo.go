// Package buildinfo resolves the identity of the running binary — git
// revision, Go toolchain, host and GOMAXPROCS — so every measurement the
// repo emits (the /metrics endpoint, loadgen CSV files, bench result JSON)
// carries enough provenance to be compared across commits and machines.
// The paper's numbers are only trustworthy because they say exactly what
// was run where; this package is the local analogue.
package buildinfo

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
)

// Info is the build identity stamped onto results.
type Info struct {
	// GitSHA is the VCS revision the binary was built from ("unknown" when
	// the build carries no VCS metadata, e.g. `go test` binaries).
	GitSHA string `json:"git_sha"`
	// Dirty reports uncommitted changes at build time.
	Dirty bool `json:"dirty,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Host is the machine's hostname ("unknown" if unresolvable).
	Host string `json:"host"`
	// GOMAXPROCS is the scheduler width measurements ran under.
	GOMAXPROCS int `json:"gomaxprocs"`
	// OS and Arch locate the platform.
	OS   string `json:"os"`
	Arch string `json:"arch"`
}

var (
	once   sync.Once
	cached Info
)

// Get resolves the running binary's identity. The result is cached: the
// identity cannot change within one process.
func Get() Info {
	once.Do(func() {
		cached = resolve()
	})
	return cached
}

func resolve() Info {
	info := Info{
		GitSHA:     "unknown",
		GoVersion:  runtime.Version(),
		Host:       "unknown",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
	}
	if h, err := os.Hostname(); err == nil && h != "" {
		info.Host = h
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				if s.Value != "" {
					info.GitSHA = s.Value
				}
			case "vcs.modified":
				info.Dirty = s.Value == "true"
			}
		}
	}
	return info
}

// ShortSHA returns the first 12 characters of the revision (or the whole
// value when shorter) — the length git itself abbreviates to in big repos.
func (i Info) ShortSHA() string {
	if len(i.GitSHA) > 12 {
		return i.GitSHA[:12]
	}
	return i.GitSHA
}

// CommentLine renders the identity as a CSV comment line, e.g.
//
//	# build git_sha=3f2a… dirty=false go=go1.22.1 host=box gomaxprocs=8 os=linux arch=amd64
//
// Writers prepend it to CSV artifacts; ParseCommentLine is the inverse.
// Values never contain spaces (hostnames and revisions cannot), so the
// line splits on whitespace.
func (i Info) CommentLine() string {
	return fmt.Sprintf("# build git_sha=%s dirty=%t go=%s host=%s gomaxprocs=%d os=%s arch=%s",
		sanitize(i.GitSHA), i.Dirty, sanitize(i.GoVersion), sanitize(i.Host), i.GOMAXPROCS, i.OS, i.Arch)
}

// sanitize guards the space-delimited comment format against exotic values.
func sanitize(v string) string {
	if v == "" {
		return "unknown"
	}
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\n' || r == '\r' || r == '\t' {
			return '_'
		}
		return r
	}, v)
}

// ParseCommentLine parses a CommentLine back into an Info. It reports false
// for lines that are not build stamps (other comments, headers, data rows).
func ParseCommentLine(line string) (Info, bool) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 2 || fields[0] != "#" || fields[1] != "build" {
		return Info{}, false
	}
	var info Info
	seen := 0
	for _, f := range fields[2:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return Info{}, false
		}
		switch k {
		case "git_sha":
			info.GitSHA = v
		case "dirty":
			info.Dirty = v == "true"
		case "go":
			info.GoVersion = v
		case "host":
			info.Host = v
		case "gomaxprocs":
			if _, err := fmt.Sscanf(v, "%d", &info.GOMAXPROCS); err != nil {
				return Info{}, false
			}
		case "os":
			info.OS = v
		case "arch":
			info.Arch = v
		default:
			continue // forward compatibility: unknown keys are ignored
		}
		seen++
	}
	return info, seen > 0
}
