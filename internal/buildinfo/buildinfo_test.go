package buildinfo

import (
	"strings"
	"testing"
)

func TestGetResolvesIdentity(t *testing.T) {
	info := Get()
	if info.GoVersion == "" || !strings.HasPrefix(info.GoVersion, "go") {
		t.Fatalf("GoVersion = %q, want go toolchain version", info.GoVersion)
	}
	if info.GitSHA == "" {
		t.Fatalf("GitSHA must never be empty (fallback is \"unknown\")")
	}
	if info.GOMAXPROCS < 1 {
		t.Fatalf("GOMAXPROCS = %d", info.GOMAXPROCS)
	}
	if info.Host == "" || info.OS == "" || info.Arch == "" {
		t.Fatalf("incomplete identity: %+v", info)
	}
	if again := Get(); again != info {
		t.Fatalf("Get not stable: %+v vs %+v", info, again)
	}
}

func TestCommentLineRoundTrip(t *testing.T) {
	in := Info{
		GitSHA:     "3f2a9bdeadbeefcafe0123",
		Dirty:      true,
		GoVersion:  "go1.22.1",
		Host:       "bench-box",
		GOMAXPROCS: 8,
		OS:         "linux",
		Arch:       "amd64",
	}
	line := in.CommentLine()
	if !strings.HasPrefix(line, "# build ") {
		t.Fatalf("comment line = %q", line)
	}
	out, ok := ParseCommentLine(line)
	if !ok {
		t.Fatalf("ParseCommentLine rejected %q", line)
	}
	if out != in {
		t.Fatalf("round trip mismatch:\n in %+v\nout %+v", in, out)
	}
}

func TestParseCommentLineRejectsNonStamps(t *testing.T) {
	for _, line := range []string{
		"",
		"tick,sent,completed",
		"# just a comment",
		"# build",          // no key=value pairs
		"# build garbage",  // malformed pair
		"1,2,3,4.5",        // data row
		"## build git_sha=x",
	} {
		if _, ok := ParseCommentLine(line); ok {
			t.Fatalf("ParseCommentLine accepted %q", line)
		}
	}
}

func TestCommentLineSanitizesSpaces(t *testing.T) {
	in := Info{GitSHA: "a b", GoVersion: "go1.22", Host: "h\tx", GOMAXPROCS: 1, OS: "linux", Arch: "amd64"}
	line := in.CommentLine()
	out, ok := ParseCommentLine(line)
	if !ok {
		t.Fatalf("rejected sanitized line %q", line)
	}
	if out.GitSHA != "a_b" || out.Host != "h_x" {
		t.Fatalf("sanitization broken: %+v", out)
	}
}

func TestShortSHA(t *testing.T) {
	if got := (Info{GitSHA: "0123456789abcdef0123"}).ShortSHA(); got != "0123456789ab" {
		t.Fatalf("ShortSHA = %q", got)
	}
	if got := (Info{GitSHA: "abc"}).ShortSHA(); got != "abc" {
		t.Fatalf("ShortSHA = %q", got)
	}
}
