package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteClicks serialises a click log as CSV lines "session,item,time". The
// format is intentionally trivial: these logs move through the object store
// (internal/objstore) between the workload generator and the load generator.
func WriteClicks(w io.Writer, clicks []Click) error {
	bw := bufio.NewWriter(w)
	for _, c := range clicks {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d\n", c.Session, c.Item, c.Time); err != nil {
			return fmt.Errorf("workload: writing click log: %w", err)
		}
	}
	return bw.Flush()
}

// ReadClicks parses a click log produced by WriteClicks. Blank lines are
// ignored; any malformed line is an error that names the offending line.
func ReadClicks(r io.Reader) ([]Click, error) {
	var clicks []Click
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("workload: line %d: want 3 fields, got %d", lineNo, len(parts))
		}
		var c Click
		var err error
		if c.Session, err = strconv.ParseInt(parts[0], 10, 64); err != nil {
			return nil, fmt.Errorf("workload: line %d: session: %w", lineNo, err)
		}
		if c.Item, err = strconv.ParseInt(parts[1], 10, 64); err != nil {
			return nil, fmt.Errorf("workload: line %d: item: %w", lineNo, err)
		}
		if c.Time, err = strconv.ParseInt(parts[2], 10, 64); err != nil {
			return nil, fmt.Errorf("workload: line %d: time: %w", lineNo, err)
		}
		clicks = append(clicks, c)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading click log: %w", err)
	}
	return clicks, nil
}
