package workload

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func testSpec() Spec {
	return Spec{
		CatalogSize: 1000,
		NumClicks:   5000,
		AlphaLength: 2.2,
		AlphaClicks: 1.6,
		Seed:        1,
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{CatalogSize: 0, NumClicks: 10, AlphaLength: 2, AlphaClicks: 2},
		{CatalogSize: 10, NumClicks: -1, AlphaLength: 2, AlphaClicks: 2},
		{CatalogSize: 10, NumClicks: 10, AlphaLength: 1, AlphaClicks: 2},
		{CatalogSize: 10, NumClicks: 10, AlphaLength: 2, AlphaClicks: 0.9},
	}
	for i, s := range bad {
		if _, err := NewGenerator(s); err == nil {
			t.Errorf("spec %d should be rejected: %+v", i, s)
		}
	}
	if _, err := NewGenerator(testSpec()); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestGenerateCoversRequestedClicks(t *testing.T) {
	g, err := NewGenerator(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	clicks := g.Generate()
	if len(clicks) < 5000 {
		t.Fatalf("generated %d clicks, want ≥ 5000", len(clicks))
	}
	// Whole sessions only: the overshoot is bounded by one session.
	if len(clicks) >= 5000+51 {
		t.Fatalf("overshoot too large: %d", len(clicks))
	}
}

func TestGenerateItemRange(t *testing.T) {
	g, _ := NewGenerator(testSpec())
	for _, c := range g.Generate() {
		if c.Item < 0 || c.Item >= 1000 {
			t.Fatalf("item %d outside catalog", c.Item)
		}
	}
}

func TestGenerateTimesStrictlyIncreasing(t *testing.T) {
	g, _ := NewGenerator(testSpec())
	clicks := g.Generate()
	for i := 1; i < len(clicks); i++ {
		if clicks[i].Time <= clicks[i-1].Time {
			t.Fatalf("time not strictly increasing at %d", i)
		}
	}
}

func TestGenerateSessionsContiguous(t *testing.T) {
	g, _ := NewGenerator(testSpec())
	clicks := g.Generate()
	// Session ids must be non-decreasing and clicks of a session adjacent.
	lastSession := int64(-1)
	seen := map[int64]bool{}
	for _, c := range clicks {
		if c.Session != lastSession {
			if seen[c.Session] {
				t.Fatalf("session %d split into multiple runs", c.Session)
			}
			seen[c.Session] = true
			lastSession = c.Session
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := NewGenerator(testSpec())
	b, _ := NewGenerator(testSpec())
	ca, cb := a.Generate(), b.Generate()
	if len(ca) != len(cb) {
		t.Fatalf("lengths differ: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("click %d differs: %+v vs %+v", i, ca[i], cb[i])
		}
	}
}

func TestSessionLengthsBounded(t *testing.T) {
	spec := testSpec()
	spec.MaxSessionLen = 10
	g, _ := NewGenerator(spec)
	for sid, s := range Sessions(g.Generate()) {
		if len(s) < 1 || len(s) > 10 {
			t.Fatalf("session %d length %d outside [1,10]", sid, len(s))
		}
	}
}

// TestPopularitySkew: with a heavy-tailed α_c, the most popular item should
// receive far more clicks than the median item.
func TestPopularitySkew(t *testing.T) {
	spec := testSpec()
	spec.NumClicks = 50000
	g, _ := NewGenerator(spec)
	counts := make(map[int64]int)
	for _, c := range g.Generate() {
		counts[c.Item]++
	}
	maxCount := 0
	for _, n := range counts {
		if n > maxCount {
			maxCount = n
		}
	}
	mean := float64(50000) / 1000
	if float64(maxCount) < 5*mean {
		t.Fatalf("popularity not skewed: max %d vs mean %.1f", maxCount, mean)
	}
}

// TestFitRoundTrip is the paper's synthetic-generation validation: generate
// with (α_l, α_c), fit the marginals back, regenerate with the fitted
// values, and check the statistics agree.
func TestFitRoundTrip(t *testing.T) {
	spec := Spec{
		CatalogSize: 2000,
		NumClicks:   200000,
		AlphaLength: 2.4,
		AlphaClicks: 1.8,
		Seed:        42,
	}
	g, _ := NewGenerator(spec)
	stats, err := Fit(g.Generate())
	if err != nil {
		t.Fatal(err)
	}
	// The session-length MLE sees the capped discrete distribution, so a
	// generous band is appropriate; what matters is that regeneration from
	// the fitted exponents reproduces the same workload character.
	if math.Abs(stats.AlphaLength-spec.AlphaLength) > 0.5 {
		t.Errorf("fitted α_l = %v, true %v", stats.AlphaLength, spec.AlphaLength)
	}
	if stats.AlphaClicks <= 1 {
		t.Errorf("fitted α_c = %v, must exceed 1", stats.AlphaClicks)
	}

	spec2 := spec
	spec2.AlphaLength, spec2.AlphaClicks = stats.AlphaLength, stats.AlphaClicks
	spec2.Seed = 43
	g2, err := NewGenerator(spec2)
	if err != nil {
		t.Fatal(err)
	}
	stats2, err := Fit(g2.Generate())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stats2.MeanSessionLen-stats.MeanSessionLen) > 0.5 {
		t.Errorf("regenerated mean session length %v vs %v", stats2.MeanSessionLen, stats.MeanSessionLen)
	}
}

func TestFitEmpty(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Fatalf("empty log must error")
	}
}

func TestClickLogRoundTrip(t *testing.T) {
	g, _ := NewGenerator(testSpec())
	clicks := g.Generate()
	var buf bytes.Buffer
	if err := WriteClicks(&buf, clicks); err != nil {
		t.Fatal(err)
	}
	got, err := ReadClicks(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(clicks) {
		t.Fatalf("round trip length %d != %d", len(got), len(clicks))
	}
	for i := range clicks {
		if got[i] != clicks[i] {
			t.Fatalf("click %d: %+v != %+v", i, got[i], clicks[i])
		}
	}
}

func TestReadClicksMalformed(t *testing.T) {
	cases := []string{
		"1,2\n",
		"a,2,3\n",
		"1,b,3\n",
		"1,2,c\n",
		"1,2,3,4\n",
	}
	for _, in := range cases {
		if _, err := ReadClicks(strings.NewReader(in)); err == nil {
			t.Errorf("malformed input %q accepted", in)
		}
	}
	// Blank lines are fine.
	got, err := ReadClicks(strings.NewReader("\n1,2,3\n\n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("blank-line handling: %v %v", got, err)
	}
}

// Property: every generated session is non-empty, within the length cap,
// and all items are in the catalog.
func TestNextSessionProperty(t *testing.T) {
	f := func(seed int64, cRaw uint16) bool {
		c := int(cRaw%5000) + 1
		g, err := NewGenerator(Spec{
			CatalogSize: c, NumClicks: 1,
			AlphaLength: 2.0, AlphaClicks: 1.5,
			MaxSessionLen: 25, Seed: seed,
		})
		if err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			s := g.NextSession()
			if len(s) < 1 || len(s) > 25 {
				return false
			}
			for _, item := range s {
				if item < 0 || item >= int64(c) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkGenerate measures raw click generation throughput; the paper
// reports >1M clicks/second on one core for a 10M-item catalog.
func BenchmarkGenerate(b *testing.B) {
	g, err := NewGenerator(Spec{
		CatalogSize: 10_000_000,
		NumClicks:   1,
		AlphaLength: 2.2,
		AlphaClicks: 1.6,
		Seed:        1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	clicks := 0
	for i := 0; i < b.N; i++ {
		clicks += len(g.NextSession())
	}
	b.ReportMetric(float64(clicks)/b.Elapsed().Seconds(), "clicks/s")
}

type failingWriter struct{ n int }

func (f *failingWriter) Write(p []byte) (int, error) {
	f.n += len(p)
	if f.n > 4096 {
		return 0, errWriteFull
	}
	return len(p), nil
}

var errWriteFull = errors.New("disk full")

func TestWriteClicksPropagatesErrors(t *testing.T) {
	g, _ := NewGenerator(testSpec())
	clicks := g.Generate()
	if err := WriteClicks(&failingWriter{}, clicks); err == nil {
		t.Fatalf("write failure swallowed")
	}
}

// TestBolMarginalsSane: the documented bol.com-flavoured exponents generate
// short heavy-tailed sessions (mean ≈2-4 clicks, as e-Commerce logs show).
func TestBolMarginalsSane(t *testing.T) {
	al, ac := BolMarginals()
	g, err := NewGenerator(Spec{
		CatalogSize: 10_000, NumClicks: 50_000,
		AlphaLength: al, AlphaClicks: ac, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Fit(g.Generate())
	if err != nil {
		t.Fatal(err)
	}
	if stats.MeanSessionLen < 1.5 || stats.MeanSessionLen > 5 {
		t.Fatalf("mean session length %v outside the e-Commerce range", stats.MeanSessionLen)
	}
}

func TestReplayPreservesOrderAndCycles(t *testing.T) {
	clicks := []Click{
		{Session: 1, Item: 10, Time: 1},
		{Session: 1, Item: 11, Time: 2},
		{Session: 2, Item: 20, Time: 3},
	}
	r, err := NewReplay(clicks)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumSessions() != 2 {
		t.Fatalf("sessions = %d", r.NumSessions())
	}
	first := r.NextSession()
	if len(first) != 2 || first[0] != 10 || first[1] != 11 {
		t.Fatalf("first session = %v", first)
	}
	second := r.NextSession()
	if len(second) != 1 || second[0] != 20 {
		t.Fatalf("second session = %v", second)
	}
	// Cycles back to the start.
	again := r.NextSession()
	if again[0] != 10 {
		t.Fatalf("replay did not cycle: %v", again)
	}
}

func TestNewReplayEmpty(t *testing.T) {
	if _, err := NewReplay(nil); err == nil {
		t.Fatalf("empty log accepted")
	}
}

// FuzzReadClicks: arbitrary byte input never panics the click-log parser;
// valid outputs round-trip.
func FuzzReadClicks(f *testing.F) {
	f.Add([]byte("1,2,3\n4,5,6\n"))
	f.Add([]byte(""))
	f.Add([]byte("a,b,c\n"))
	f.Add([]byte("9223372036854775807,0,1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		clicks, err := ReadClicks(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteClicks(&buf, clicks); err != nil {
			t.Fatalf("re-encoding parsed log failed: %v", err)
		}
		again, err := ReadClicks(&buf)
		if err != nil {
			t.Fatalf("re-parsing encoded log failed: %v", err)
		}
		if len(again) != len(clicks) {
			t.Fatalf("round trip changed length: %d vs %d", len(again), len(clicks))
		}
	})
}
