package workload_test

import (
	"fmt"

	"etude/internal/workload"
)

// Generate a synthetic click workload from the two marginal statistics of a
// click log (Algorithm 1) and fit the statistics back.
func Example() {
	alphaLength, alphaClicks := workload.BolMarginals()
	gen, err := workload.NewGenerator(workload.Spec{
		CatalogSize: 1_000,
		NumClicks:   10_000,
		AlphaLength: alphaLength,
		AlphaClicks: alphaClicks,
		Seed:        1,
	})
	if err != nil {
		panic(err)
	}
	clicks := gen.Generate()
	stats, err := workload.Fit(clicks)
	if err != nil {
		panic(err)
	}
	fmt.Printf("clicks ≥ requested: %v\n", len(clicks) >= 10_000)
	fmt.Printf("fitted α_l close to 2.2: %v\n", stats.AlphaLength > 1.9 && stats.AlphaLength < 2.5)
	// Output:
	// clicks ≥ requested: true
	// fitted α_l close to 2.2: true
}

func ExampleGenerator_NextSession() {
	gen, _ := workload.NewGenerator(workload.Spec{
		CatalogSize: 100,
		NumClicks:   1,
		AlphaLength: 2.2,
		AlphaClicks: 1.6,
		Seed:        7,
	})
	s := gen.NextSession()
	fmt.Println(len(s) >= 1 && len(s) <= 50)
	// Output: true
}
