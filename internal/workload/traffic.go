package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// RateSchedule gives a time-varying offered request rate, the traffic-shape
// side of a workload (the click-log side — what each request contains — is
// the Generator/Replay session sources). Rates are requests per second.
//
// Schedules compose: FlashCrowd wraps any base schedule, so "diurnal
// baseline with a 5× flash crowd at 14:00" is a two-line literal.
type RateSchedule interface {
	// RateAt returns the instantaneous rate at elapsed time t, in req/s.
	RateAt(t time.Duration) float64
	// MaxRate returns an upper bound on RateAt over all t — the envelope
	// rate the thinning sampler draws candidate arrivals at.
	MaxRate() float64
}

// ConstantRate is a flat schedule of the given req/s — the paper's
// fixed-rate load phases.
type ConstantRate float64

// RateAt implements RateSchedule.
func (r ConstantRate) RateAt(time.Duration) float64 { return float64(r) }

// MaxRate implements RateSchedule.
func (r ConstantRate) MaxRate() float64 { return float64(r) }

// Diurnal is a sinusoidal day/night traffic pattern:
//
//	rate(t) = Mean · (1 + Swing·cos(2π·(t−Peak)/Period))
//
// Mean is the average rate, Swing ∈ [0,1] the relative peak-to-mean
// excursion (0.6 means peaks at 1.6× and troughs at 0.4× the mean), Period
// one full cycle (24h for a real diurnal curve; experiments compress it to
// seconds), and Peak the elapsed time of the first maximum.
type Diurnal struct {
	Mean   float64
	Swing  float64
	Period time.Duration
	Peak   time.Duration
}

// RateAt implements RateSchedule.
func (d Diurnal) RateAt(t time.Duration) float64 {
	if d.Period <= 0 {
		return d.Mean
	}
	phase := 2 * math.Pi * float64(t-d.Peak) / float64(d.Period)
	r := d.Mean * (1 + d.Swing*math.Cos(phase))
	if r < 0 {
		return 0
	}
	return r
}

// MaxRate implements RateSchedule.
func (d Diurnal) MaxRate() float64 {
	s := d.Swing
	if s < 0 {
		s = -s
	}
	return d.Mean * (1 + s)
}

// FlashCrowd multiplies a base schedule by Factor during the window
// [Start, Start+Length) — one tenant's sudden surge. Factor < 1 models a
// partial outage of the traffic source instead.
type FlashCrowd struct {
	Base   RateSchedule
	Start  time.Duration
	Length time.Duration
	Factor float64
}

// RateAt implements RateSchedule.
func (f FlashCrowd) RateAt(t time.Duration) float64 {
	r := f.Base.RateAt(t)
	if t >= f.Start && t < f.Start+f.Length {
		return r * f.Factor
	}
	return r
}

// MaxRate implements RateSchedule.
func (f FlashCrowd) MaxRate() float64 {
	m := f.Base.MaxRate()
	if f.Factor > 1 {
		return m * f.Factor
	}
	return m
}

// Arrivals samples a non-homogeneous Poisson arrival process following a
// rate schedule, deterministically from a seed, by Lewis–Shedler thinning:
// candidate arrivals are drawn from a homogeneous process at the envelope
// MaxRate and each is kept with probability RateAt(t)/MaxRate. The result
// is exact (no per-tick discretisation) and deterministic — the simulator
// and the load generator can replay the identical arrival sequence.
type Arrivals struct {
	sch RateSchedule
	rng *rand.Rand
	max float64
	t   time.Duration
}

// NewArrivals builds a sampler over the schedule. It returns an error when
// the schedule's envelope rate is not positive (no arrivals could ever be
// generated).
func NewArrivals(sch RateSchedule, seed int64) (*Arrivals, error) {
	max := sch.MaxRate()
	if max <= 0 || math.IsNaN(max) || math.IsInf(max, 0) {
		return nil, fmt.Errorf("workload: schedule envelope rate must be positive and finite, got %v", max)
	}
	return &Arrivals{sch: sch, rng: rand.New(rand.NewSource(seed)), max: max}, nil
}

// Next returns the next arrival instant (elapsed time from zero, strictly
// increasing). The process is unbounded; callers stop at their horizon.
func (a *Arrivals) Next() time.Duration {
	for {
		// Exponential inter-arrival at the envelope rate, then thin. The
		// gap is floored at 1ns so arrival instants are strictly
		// increasing even when the envelope rate approaches clock
		// resolution.
		gap := time.Duration(a.rng.ExpFloat64() / a.max * float64(time.Second))
		if gap < 1 {
			gap = 1
		}
		a.t += gap
		if a.rng.Float64()*a.max <= a.sch.RateAt(a.t) {
			return a.t
		}
	}
}

// Times materialises every arrival before the horizon — the convenient form
// for pre-scheduling a simulation's submit events.
func Times(sch RateSchedule, seed int64, horizon time.Duration) ([]time.Duration, error) {
	a, err := NewArrivals(sch, seed)
	if err != nil {
		return nil, err
	}
	var out []time.Duration
	for {
		t := a.Next()
		if t >= horizon {
			return out, nil
		}
		out = append(out, t)
	}
}
