// Package workload implements ETUDE's synthetic click workload generation
// (paper Algorithm 1) and the click-log representation shared by the load
// generator and the validation experiments.
//
// The generator preserves the two marginal statistics that characterise a
// real click log — the power-law exponent α_l of the session-length
// distribution and the exponent α_c of the per-item click-count distribution
// — without ever replaying sensitive real-world data. Item popularity is
// realised by sampling C click counts from the α_c power law once and then
// drawing each click via inverse-transform sampling from the resulting
// empirical CDF.
package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"etude/internal/powerlaw"
)

// Click is a single synthetic interaction: item Item was the Time-th click
// overall and belongs to session Session.
type Click struct {
	Session int64
	Item    int64
	Time    int64
}

// Session is an ordered list of item ids clicked in one session.
type Session []int64

// Spec declares the statistics of a synthetic workload, mirroring the
// declarative inputs ETUDE users provide.
type Spec struct {
	// CatalogSize is C, the number of distinct items.
	CatalogSize int
	// NumClicks is N, the total number of clicks to generate.
	NumClicks int
	// AlphaLength is α_l, the session-length power-law exponent.
	AlphaLength float64
	// AlphaClicks is α_c, the click-count power-law exponent.
	AlphaClicks float64
	// MaxSessionLen caps sampled session lengths (0 means 50).
	MaxSessionLen int
	// Seed drives all sampling.
	Seed int64
}

func (s Spec) withDefaults() Spec {
	if s.MaxSessionLen == 0 {
		s.MaxSessionLen = 50
	}
	return s
}

func (s Spec) validate() error {
	if s.CatalogSize <= 0 {
		return fmt.Errorf("workload: catalog size must be positive, got %d", s.CatalogSize)
	}
	if s.NumClicks < 0 {
		return fmt.Errorf("workload: negative click count %d", s.NumClicks)
	}
	if s.AlphaLength <= 1 || s.AlphaClicks <= 1 {
		return errors.New("workload: power-law exponents must exceed 1")
	}
	return nil
}

// BolMarginals returns workload statistics in the range of those fitted to
// the bol.com click log discussed in the paper: a heavy-tailed session
// length distribution (most sessions are short) and a strongly skewed item
// popularity distribution.
func BolMarginals() (alphaLength, alphaClicks float64) {
	return 2.2, 1.6
}

// Generator produces synthetic sessions on demand. It is safe to create
// once and reuse; it is not safe for concurrent use (wrap with a mutex or
// use one per goroutine, seeded differently).
type Generator struct {
	spec    Spec
	rng     *rand.Rand
	lengths powerlaw.Dist
	items   *powerlaw.EmpiricalCDF

	nextSession int64
	clock       int64
}

// NewGenerator prepares a generator: it samples the C click counts up front
// (Algorithm 1, line 7) and builds the empirical CDF used for item draws.
func NewGenerator(spec Spec) (*Generator, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	lengths, err := powerlaw.New(spec.AlphaLength, 1)
	if err != nil {
		return nil, fmt.Errorf("workload: session-length distribution: %w", err)
	}
	clicks, err := powerlaw.New(spec.AlphaClicks, 1)
	if err != nil {
		return nil, fmt.Errorf("workload: click-count distribution: %w", err)
	}
	counts := make([]float64, spec.CatalogSize)
	for i := range counts {
		counts[i] = clicks.Sample(rng)
	}
	cdf, err := powerlaw.NewEmpiricalCDF(counts)
	if err != nil {
		return nil, fmt.Errorf("workload: click-count CDF: %w", err)
	}
	return &Generator{spec: spec, rng: rng, lengths: lengths, items: cdf}, nil
}

// Spec returns the generator's (defaulted) spec.
func (g *Generator) Spec() Spec { return g.spec }

// NextSession samples one synthetic session: a length l from the α_l power
// law and l items from the empirical click-count CDF.
func (g *Generator) NextSession() Session {
	l := g.lengths.SampleIntCapped(g.rng, g.spec.MaxSessionLen)
	s := make(Session, l)
	for i := range s {
		s[i] = int64(g.items.Sample(g.rng))
	}
	g.nextSession++
	g.clock += int64(l)
	return s
}

// Generate produces clicks until the spec's NumClicks is reached, exactly as
// Algorithm 1: whole sessions are emitted, so the result may slightly exceed
// N (the final session is not truncated).
func (g *Generator) Generate() []Click {
	clicks := make([]Click, 0, g.spec.NumClicks+g.spec.MaxSessionLen)
	n := 0
	for n < g.spec.NumClicks {
		sid := g.nextSession
		s := g.NextSession()
		for _, item := range s {
			g.clockTick()
			clicks = append(clicks, Click{Session: sid, Item: item, Time: g.clock})
		}
		n += len(s)
	}
	return clicks
}

func (g *Generator) clockTick() { g.clock++ }

// Sessions groups a click log back into ordered sessions. Click order within
// a session follows the Time field order of appearance.
func Sessions(clicks []Click) map[int64]Session {
	out := make(map[int64]Session)
	for _, c := range clicks {
		out[c.Session] = append(out[c.Session], c.Item)
	}
	return out
}

// Stats summarises a click log with the two marginals ETUDE cares about.
type Stats struct {
	NumClicks   int
	NumSessions int
	// AlphaLength is the MLE power-law exponent of session lengths.
	AlphaLength float64
	// AlphaClicks is the MLE power-law exponent of per-item click counts.
	AlphaClicks float64
	// MeanSessionLen is the average session length.
	MeanSessionLen float64
	// DistinctItems is the number of items with at least one click.
	DistinctItems int
}

// Fit estimates the marginal statistics of a click log — the "estimate once
// from a real click log" step. It returns an error when the log is too small
// or degenerate for MLE fitting.
func Fit(clicks []Click) (Stats, error) {
	if len(clicks) == 0 {
		return Stats{}, errors.New("workload: empty click log")
	}
	sessions := Sessions(clicks)
	lengths := make([]float64, 0, len(sessions))
	var total int
	for _, s := range sessions {
		lengths = append(lengths, float64(len(s)))
		total += len(s)
	}
	counts := make(map[int64]int)
	for _, c := range clicks {
		counts[c.Item]++
	}
	itemCounts := make([]float64, 0, len(counts))
	for _, n := range counts {
		itemCounts = append(itemCounts, float64(n))
	}
	// Session lengths and click counts are floored continuous power-law
	// draws, so the floored-Pareto MLE is the matching estimator: exponents
	// fitted here can be fed straight back into a Spec to regenerate a
	// workload with the same marginals.
	al, err := powerlaw.FitFlooredPareto(lengths)
	if err != nil {
		return Stats{}, fmt.Errorf("workload: fitting session lengths: %w", err)
	}
	ac, err := powerlaw.FitFlooredPareto(itemCounts)
	if err != nil {
		return Stats{}, fmt.Errorf("workload: fitting click counts: %w", err)
	}
	return Stats{
		NumClicks:      len(clicks),
		NumSessions:    len(sessions),
		AlphaLength:    al,
		AlphaClicks:    ac,
		MeanSessionLen: float64(total) / float64(len(sessions)),
		DistinctItems:  len(counts),
	}, nil
}

// Replay yields the sessions of a recorded click log in their original
// order, cycling when exhausted — the "replay a real click log" side of the
// paper's synthetic-vs-real validation. It implements the load generator's
// SessionSource contract.
type Replay struct {
	sessions []Session
	i        int
}

// NewReplay builds a replayer from a click log. It returns an error for
// empty logs.
func NewReplay(clicks []Click) (*Replay, error) {
	if len(clicks) == 0 {
		return nil, errors.New("workload: cannot replay an empty click log")
	}
	byID := Sessions(clicks)
	order := make([]int64, 0, len(byID))
	seen := make(map[int64]bool, len(byID))
	for _, c := range clicks {
		if !seen[c.Session] {
			seen[c.Session] = true
			order = append(order, c.Session)
		}
	}
	out := make([]Session, len(order))
	for i, id := range order {
		out[i] = byID[id]
	}
	return &Replay{sessions: out}, nil
}

// NumSessions returns the number of distinct sessions in the log.
func (r *Replay) NumSessions() int { return len(r.sessions) }

// NextSession implements the load generator's session source: original
// order, cycling.
func (r *Replay) NextSession() Session {
	s := r.sessions[r.i%len(r.sessions)]
	r.i++
	return s
}
