package workload

import (
	"math"
	"testing"
	"time"
)

func countIn(times []time.Duration, from, to time.Duration) int {
	n := 0
	for _, t := range times {
		if t >= from && t < to {
			n++
		}
	}
	return n
}

func TestConstantRateArrivalCount(t *testing.T) {
	times, err := Times(ConstantRate(1000), 1, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Poisson(10 000): ±4σ = ±400.
	if n := len(times); n < 9600 || n > 10400 {
		t.Fatalf("arrivals = %d, want ≈10000", n)
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("arrivals not strictly increasing at %d: %v then %v", i, times[i-1], times[i])
		}
	}
}

func TestArrivalsDeterministic(t *testing.T) {
	sch := FlashCrowd{Base: Diurnal{Mean: 500, Swing: 0.5, Period: 4 * time.Second}, Start: time.Second, Length: time.Second, Factor: 3}
	a, err := Times(sch, 42, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Times(sch, 42, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c, err := Times(sch, 43, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical arrival sequences")
	}
}

func TestDiurnalShape(t *testing.T) {
	d := Diurnal{Mean: 1000, Swing: 0.6, Period: 10 * time.Second, Peak: 0}
	if r := d.RateAt(0); math.Abs(r-1600) > 1e-9 {
		t.Fatalf("peak rate = %v, want 1600", r)
	}
	if r := d.RateAt(5 * time.Second); math.Abs(r-400) > 1e-9 {
		t.Fatalf("trough rate = %v, want 400", r)
	}
	if m := d.MaxRate(); math.Abs(m-1600) > 1e-9 {
		t.Fatalf("MaxRate = %v, want 1600", m)
	}
	times, err := Times(d, 7, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// The half-cycle around the peak must carry far more traffic than the
	// half-cycle around the trough.
	peak := countIn(times, 0, 2500*time.Millisecond) + countIn(times, 7500*time.Millisecond, 10*time.Second)
	trough := countIn(times, 2500*time.Millisecond, 7500*time.Millisecond)
	if float64(peak) < 1.3*float64(trough) {
		t.Fatalf("peak half %d vs trough half %d — no diurnal shape", peak, trough)
	}
}

func TestFlashCrowdWindow(t *testing.T) {
	sch := FlashCrowd{Base: ConstantRate(400), Start: 2 * time.Second, Length: time.Second, Factor: 5}
	if r := sch.RateAt(2500 * time.Millisecond); r != 2000 {
		t.Fatalf("in-window rate = %v, want 2000", r)
	}
	if r := sch.RateAt(3 * time.Second); r != 400 {
		t.Fatalf("post-window rate = %v, want 400", r)
	}
	times, err := Times(sch, 11, 4*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	before := countIn(times, time.Second, 2*time.Second)
	during := countIn(times, 2*time.Second, 3*time.Second)
	ratio := float64(during) / float64(before)
	if ratio < 4 || ratio > 6 {
		t.Fatalf("crowd ratio = %.2f (before=%d during=%d), want ≈5", ratio, before, during)
	}
}

func TestNewArrivalsRejectsEmptyEnvelope(t *testing.T) {
	if _, err := NewArrivals(ConstantRate(0), 1); err == nil {
		t.Fatal("zero-rate schedule accepted")
	}
	if _, err := NewArrivals(Diurnal{Mean: math.Inf(1), Period: time.Second}, 1); err == nil {
		t.Fatal("infinite-rate schedule accepted")
	}
}

func TestDiurnalNeverNegative(t *testing.T) {
	d := Diurnal{Mean: 100, Swing: 1.5, Period: time.Second} // over-swung
	for ms := 0; ms < 1000; ms += 10 {
		if r := d.RateAt(time.Duration(ms) * time.Millisecond); r < 0 {
			t.Fatalf("negative rate %v at %dms", r, ms)
		}
	}
}
