package experiments

import (
	"fmt"
	"strings"
	"time"

	"etude/internal/chaos"
	"etude/internal/device"
	"etude/internal/metrics"
	"etude/internal/model"
	"etude/internal/overload"
	"etude/internal/sim"
	"etude/internal/trace"
)

// OverloadCmpConfig controls the overload-control study: one instance
// driven by the chaos.Overload scenario (offered load stepped to 3× the
// nominal rate during the middle of the run), replayed once per admission
// arm so the arms differ in nothing but their overload-control stack.
type OverloadCmpConfig struct {
	// Device is the instance type (default CPU).
	Device device.Spec
	// Model and CatalogSize define the deployment.
	Model       string
	CatalogSize int
	// TargetRate is the nominal offered rate; the spike is 3× it. 0 derives
	// it from the measured single-instance capacity at the SLO, so the
	// spike is 3× capacity by construction.
	TargetRate float64
	// Duration is the run length; the spike occupies its middle 60%.
	Duration time.Duration
	// SLO is both the client deadline and the per-request server budget the
	// deadline-propagating arms enforce (default 30ms).
	SLO time.Duration
	// StaticMaxQueue is the hand-tuned queue bound of the static arm, kept
	// as the backstop in the others (default 1024 — deep enough that queue
	// delay alone busts the SLO many times over, the failure mode the
	// adaptive stack exists to prevent).
	StaticMaxQueue int
	// Seed drives sampling and jitter.
	Seed int64
	// Inflate maps a trace-stage name (e.g. "mips-topk") to a service-time
	// multiplier applied to every instance in every arm — a deliberate,
	// attributable regression. The bench regression gate's self-test uses
	// it to prove an injected slowdown is detected AND blamed on the right
	// stage; it has no place in a faithful run.
	Inflate map[string]float64
}

// DefaultOverloadCmpConfig returns the standard study: gru4rec at C=100k on
// one CPU instance, 60 virtual seconds, a 30ms SLO, and the nominal rate
// pinned to the measured capacity.
func DefaultOverloadCmpConfig() OverloadCmpConfig {
	return OverloadCmpConfig{
		Device:         device.CPU(),
		Model:          "gru4rec",
		CatalogSize:    100_000,
		Duration:       60 * time.Second,
		SLO:            30 * time.Millisecond,
		StaticMaxQueue: 1024,
		Seed:           1,
	}
}

// OverloadArm is one admission stack's outcome under the spike.
type OverloadArm struct {
	Name string `json:"name"`
	Sent int64  `json:"sent"`
	// Goodput is successful (in-SLO) responses per second over the spike
	// window only; GoodputFraction normalises it by the measured capacity.
	Goodput         float64 `json:"goodput"`
	GoodputFraction float64 `json:"goodput_fraction"`
	// Latency summarises successful responses (all within the SLO — the
	// client hangs up at the deadline — so P99 here is the admitted p99).
	Latency  metrics.Snapshot      `json:"latency"`
	Outcomes metrics.OutcomeCounts `json:"outcomes"`
	// Server-side overload-control counters.
	DeadlineExpired int64 `json:"deadline_expired"`
	CoDelDropped    int64 `json:"codel_dropped"`
	Limited         int64 `json:"limited"`
	// EncoderSpans counts encoder-forward stage spans; ServedSpans counts
	// requests the executor finished. Equal counts prove expired work was
	// dropped at dequeue, before the encoder ever ran for it.
	EncoderSpans int64 `json:"encoder_spans"`
	ServedSpans  int64 `json:"served_spans"`
	// FinalLimit is the adaptive limiter's concurrency limit at run end (0
	// for arms without a limiter).
	FinalLimit int `json:"final_limit,omitempty"`
	// Stages is the arm's trace-stage breakdown (virtual time). The
	// regression gate diffs these against the baseline to attribute an
	// end-to-end drift to the stage that moved.
	Stages []BreakdownStage `json:"stages,omitempty"`
}

// OverloadCmpResult holds the per-arm rows plus the shared physics.
type OverloadCmpResult struct {
	// Capacity is the measured single-instance capacity (req/s at the SLO).
	Capacity float64 `json:"capacity"`
	// TargetRate is the nominal offered rate; the spike offers 3× it.
	TargetRate float64       `json:"target_rate"`
	Arms       []OverloadArm `json:"arms"`
}

// Arm returns the named arm, or nil.
func (r *OverloadCmpResult) Arm(name string) *OverloadArm {
	for i := range r.Arms {
		if r.Arms[i].Name == name {
			return &r.Arms[i]
		}
	}
	return nil
}

// OverloadComparison measures what each admission stack salvages from a
// sustained 3× overload:
//
//   - static: the hand-tuned bounded queue alone. Admitted requests wait
//     behind up to StaticMaxQueue others — hundreds of ms against a 30ms
//     SLO — so nearly everything admitted during the spike times out
//     client-side: goodput collapses even though the server never idles.
//   - deadline: the bounded queue plus per-request deadline budgets.
//     Expired work is dropped at dequeue (cheaply, before the encoder), so
//     the server wastes no forward passes on dead requests — but the queue
//     still pins sojourns at the budget boundary, so goodput stays poor.
//     Protecting the server is necessary, not sufficient.
//   - adaptive: deadline budgets + CoDel queue discipline + the AIMD
//     concurrency limiter. The limiter holds the standing queue near zero,
//     so admitted requests finish well inside the SLO and goodput tracks
//     capacity; the excess is refused immediately instead of queued to
//     death.
//
// Runs are deterministic: virtual time plus seeded sampling.
func OverloadComparison(cfg OverloadCmpConfig) (*OverloadCmpResult, error) {
	if cfg.Model == "" || cfg.CatalogSize <= 0 {
		return nil, fmt.Errorf("experiments: invalid overload config %+v", cfg)
	}
	if cfg.SLO <= 0 {
		cfg.SLO = 30 * time.Millisecond
	}
	if cfg.StaticMaxQueue <= 0 {
		cfg.StaticMaxQueue = 1024
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 60 * time.Second
	}
	mcfg := model.Config{CatalogSize: cfg.CatalogSize, Seed: cfg.Seed}
	capacity, err := sim.Capacity(cfg.Device, cfg.Model, mcfg, true, cfg.SLO)
	if err != nil {
		return nil, fmt.Errorf("experiments: measuring capacity: %w", err)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("experiments: %s at C=%d has no capacity at SLO %v", cfg.Model, cfg.CatalogSize, cfg.SLO)
	}
	rate := cfg.TargetRate
	if rate <= 0 {
		rate = capacity
	}

	arms := []struct {
		name  string
		setup func(eng *sim.Engine) sim.Resilience
	}{
		{"static", func(*sim.Engine) sim.Resilience {
			return sim.Resilience{MaxQueue: cfg.StaticMaxQueue}
		}},
		{"deadline", func(*sim.Engine) sim.Resilience {
			return sim.Resilience{MaxQueue: cfg.StaticMaxQueue, Budget: cfg.SLO}
		}},
		{"adaptive", func(eng *sim.Engine) sim.Resilience {
			return sim.Resilience{
				MaxQueue: cfg.StaticMaxQueue,
				Budget:   cfg.SLO,
				CoDel:    overload.NewCoDel(overload.DefaultCoDelConfig(), eng.Now),
				Limiter:  overload.NewLimiter(overload.DefaultLimiterConfig()),
			}
		}},
	}
	res := &OverloadCmpResult{Capacity: capacity, TargetRate: rate}
	for _, arm := range arms {
		row, err := runOverloadArm(cfg, rate, capacity, arm.name, arm.setup)
		if err != nil {
			return nil, fmt.Errorf("experiments: overload arm %s: %w", arm.name, err)
		}
		res.Arms = append(res.Arms, *row)
	}
	return res, nil
}

func runOverloadArm(cfg OverloadCmpConfig, rate, capacity float64, name string, setup func(*sim.Engine) sim.Resilience) (*OverloadArm, error) {
	eng := sim.NewEngine()
	in, err := sim.NewInstance(eng, cfg.Device, cfg.Model,
		model.Config{CatalogSize: cfg.CatalogSize, Seed: cfg.Seed},
		true, 2*time.Millisecond, cfg.Device.MaxBatch)
	if err != nil {
		return nil, err
	}
	resil := setup(eng)
	in.SetResilience(resil)
	for stName, factor := range cfg.Inflate {
		st, ok := trace.StageByName(stName)
		if !ok {
			return nil, fmt.Errorf("experiments: Inflate names unknown trace stage %q", stName)
		}
		in.InflateStage(st, factor)
	}
	tr := trace.New(trace.Options{Clock: eng.Now})
	in.SetTracer(tr)
	out, err := chaos.RunSim(eng, chaos.SimConfig{
		TargetRate: rate,
		Duration:   cfg.Duration,
		NoRamp:     true, // the pre-spike phase is the warm-up, not a ramp
		Timeout:    cfg.SLO,
		Seed:       cfg.Seed,
		Retry:      chaos.RetryPolicy{MaxAttempts: 3},
		// The breaker is effectively disabled: this study isolates
		// admission control, and a breaker that opens on shed load would
		// turn the static arm's refusals into 2s client-side blackouts,
		// conflating two mechanisms.
		Breaker: chaos.BreakerPolicy{FailThreshold: 1 << 30},
	}, []*sim.Instance{in}, chaos.NewInjector(chaos.Overload(cfg.Duration)))
	if err != nil {
		return nil, err
	}
	row := &OverloadArm{
		Name:            name,
		Sent:            out.Sent,
		Goodput:         spikeGoodput(out.Recorder, cfg.Duration),
		Latency:         out.Recorder.Overall(),
		Outcomes:        out.Recorder.Outcomes(),
		DeadlineExpired: in.DeadlineExpired(),
		CoDelDropped:    in.CoDelDropped(),
		Limited:         in.Limited(),
		EncoderSpans:    tr.StageSnapshot(trace.StageEncoderForward).Count,
		ServedSpans:     tr.TotalSnapshot().Count,
	}
	if capacity > 0 {
		row.GoodputFraction = row.Goodput / capacity
	}
	if resil.Limiter != nil {
		row.FinalLimit = resil.Limiter.Limit()
	}
	for _, st := range trace.Stages() {
		if snap := tr.StageSnapshot(st); snap.Count > 0 {
			row.Stages = append(row.Stages, BreakdownStage{
				Stage: st.String(), Count: snap.Count, P50: snap.P50, P99: snap.P99,
			})
		}
	}
	return row, nil
}

// spikeGoodput is successful responses per second over the spike window
// ticks ([0.2, 0.8) of the run, matching chaos.Overload).
func spikeGoodput(rec *metrics.Recorder, duration time.Duration) float64 {
	series := rec.Series()
	ticks := int(duration / time.Second)
	if ticks < 1 {
		ticks = 1
	}
	from, to := ticks*2/10, ticks*8/10
	var completed int64
	for _, ts := range series {
		if ts.Tick >= from && ts.Tick < to {
			// Completed counts every finished request, failures included;
			// goodput is only the successes.
			completed += ts.Completed - ts.Errors
		}
	}
	window := to - from
	if window < 1 {
		window = 1
	}
	return float64(completed) / float64(window)
}

// Render prints the per-arm overload table.
func (r *OverloadCmpResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Overload — admission stacks under a 3× load spike (sim, deterministic)\n")
	fmt.Fprintf(&b, "capacity %.0f req/s at SLO; nominal %.0f req/s, spike %.0f req/s\n",
		r.Capacity, r.TargetRate, 3*r.TargetRate)
	fmt.Fprintf(&b, "%-10s %8s %9s %8s %10s %10s %9s %9s %9s %7s\n",
		"arm", "sent", "goodput", "good%", "p50", "p99", "expired", "codel", "limited", "limit")
	for _, a := range r.Arms {
		fmt.Fprintf(&b, "%-10s %8d %9.0f %7.1f%% %10s %10s %9d %9d %9d %7d\n",
			a.Name, a.Sent, a.Goodput, a.GoodputFraction*100,
			a.Latency.P50.Round(time.Microsecond), a.Latency.P99.Round(time.Microsecond),
			a.DeadlineExpired, a.CoDelDropped, a.Limited, a.FinalLimit)
	}
	fmt.Fprintf(&b, "encoder spans == served requests in every arm (expired work never reaches the encoder): ")
	for i, a := range r.Arms {
		if i > 0 {
			fmt.Fprintf(&b, "; ")
		}
		fmt.Fprintf(&b, "%s %d/%d", a.Name, a.EncoderSpans, a.ServedSpans)
	}
	fmt.Fprintf(&b, "\n")
	return b.String()
}

// Metrics emits, per arm, the goodput and admitted-latency headline plus
// the overload-control counters and the trace-stage breakdown (with
// `stage=` markers, so the regression gate can attribute drift).
func (r *OverloadCmpResult) Metrics() map[string]float64 {
	m := map[string]float64{
		"capacity_rps":    r.Capacity,
		"target_rate_rps": r.TargetRate,
	}
	for _, arm := range r.Arms {
		pre := keyify(arm.Name)
		putSnap(m, pre+"/latency", arm.Latency)
		m[pre+"/sent"] = float64(arm.Sent)
		m[pre+"/goodput_rps"] = arm.Goodput
		m[pre+"/goodput_fraction"] = arm.GoodputFraction
		m[pre+"/deadline_expired"] = float64(arm.DeadlineExpired)
		m[pre+"/codel_dropped"] = float64(arm.CoDelDropped)
		m[pre+"/limited"] = float64(arm.Limited)
		for _, st := range arm.Stages {
			spre := pre + "/stage=" + keyify(st.Stage)
			m[spre+"/p50_ms"] = msF(st.P50)
			m[spre+"/p99_ms"] = msF(st.P99)
		}
	}
	return m
}
