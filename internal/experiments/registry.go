// Registry: the declarative catalogue of every experiment the repo can
// run. cmd/etude's `benchmark` switch and internal/bench's grid runner
// both drive experiments through this table, so adding an experiment is
// one entry here — the CLI, the reproduction harness and the regression
// gate pick it up automatically.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"etude/internal/metrics"
	"etude/internal/torchserve"
)

// Scale selects the parameterisation of an experiment run.
type Scale string

const (
	// ScaleSmoke is the fastest useful parameterisation — the regression
	// gate's grid, sized to keep `make check` within its budget.
	ScaleSmoke Scale = "smoke"
	// ScaleTest is the development default (seconds per experiment).
	ScaleTest Scale = "test"
	// ScalePaper reproduces the paper-scale parameters (minutes).
	ScalePaper Scale = "paper"
)

// ParseScale validates a scale name.
func ParseScale(s string) (Scale, error) {
	switch Scale(s) {
	case ScaleSmoke, ScaleTest, ScalePaper:
		return Scale(s), nil
	}
	return "", fmt.Errorf("experiments: unknown scale %q (want smoke, test or paper)", s)
}

// Params shape one registry run. The zero value of Seed means "keep the
// experiment's default seed".
type Params struct {
	Scale Scale
	// Pods selects the pod substrate for cluster experiments: "inproc"
	// (goroutine HTTP servers) or "proc" (real etude-server processes).
	Pods string
	Seed int64
}

// Result is what every experiment returns: a human-readable rendering and
// a flat metric map the bench harness aggregates, baselines and gates on.
//
// Metric keys are slash-separated paths: leading segments identify the
// cell (arm, model, catalog…), the last segment names the quantity. The
// quantity suffix encodes the unit and polarity — `*_ms` and `*_usd` are
// lower-is-better, `availability`/`goodput*`/`*recall`/`speedup`/
// `coverage*` are higher-is-better (see internal/bench). A segment of the
// form `stage=<name>` marks a trace-stage metric; the regression gate uses
// those to attribute an end-to-end drift to the stage that moved.
type Result interface {
	Render() string
	Metrics() map[string]float64
}

// Definition is one experiment in the registry.
type Definition struct {
	Name string
	// Deterministic marks experiments that run entirely on the sim clock
	// (or on analytic cost models): for a fixed seed their metrics are
	// bit-identical across machines, so the regression gate may compare
	// timing metrics against a committed baseline from another host.
	// Non-deterministic (wall-clock) experiments are gated only on
	// dimensionless metrics (rates, fractions, ratios).
	Deterministic bool
	// Smoke marks the experiments in the fast regression-gate grid.
	Smoke bool
	Run   func(ctx context.Context, p Params) (Result, error)
}

// Registry returns every experiment, ordered as the paper presents them.
func Registry() []Definition {
	return []Definition{
		{Name: "fig2", Run: runFig2},
		{Name: "fig3", Deterministic: true, Run: runFig3},
		{Name: "fig4", Deterministic: true, Run: runFig4},
		{Name: "table1", Deterministic: true, Run: runTable1},
		{Name: "validation", Run: runValidation},
		{Name: "issues", Deterministic: true, Run: runIssues},
		{Name: "runtimes", Deterministic: true, Run: runRuntimes},
		{Name: "autoscale", Deterministic: true, Run: runAutoscale},
		{Name: "chaos", Deterministic: true, Run: runChaos},
		{Name: "overload", Deterministic: true, Smoke: true, Run: runOverload},
		{Name: "rolling", Run: runRolling},
		{Name: "deploy", Smoke: true, Run: runDeploy},
		{Name: "breakdown", Smoke: true, Run: runBreakdown},
		{Name: "shard", Deterministic: true, Smoke: true, Run: runShard},
		{Name: "blackout", Deterministic: true, Smoke: true, Run: runBlackout},
		{Name: "tenant", Deterministic: true, Smoke: true, Run: runTenant},
		{Name: "procs", Run: runProcs},
	}
}

// Lookup finds an experiment by name.
func Lookup(name string) (Definition, bool) {
	for _, d := range Registry() {
		if d.Name == name {
			return d, true
		}
	}
	return Definition{}, false
}

// Names returns all experiment names in registry order.
func Names() []string {
	defs := Registry()
	names := make([]string, len(defs))
	for i, d := range defs {
		names[i] = d.Name
	}
	return names
}

func runFig2(ctx context.Context, p Params) (Result, error) {
	cfg := DefaultFig2Config()
	if p.Scale != ScalePaper {
		cfg.TargetRate = 700
		cfg.Duration = 10 * time.Second
		cfg.Tick = 500 * time.Millisecond
		cfg.TorchServe = torchserve.DefaultConfig()
	}
	if p.Scale == ScaleSmoke {
		cfg.TargetRate = 300
		cfg.Duration = 4 * time.Second
	}
	if p.Seed != 0 {
		cfg.Seed = p.Seed
	}
	return Fig2(ctx, cfg)
}

func runFig3(ctx context.Context, p Params) (Result, error) {
	cfg := DefaultFig3Config()
	if p.Scale != ScalePaper {
		cfg.Requests = 50
	}
	if p.Seed != 0 {
		cfg.Seed = p.Seed
	}
	return Fig3(cfg)
}

func runFig4(ctx context.Context, p Params) (Result, error) {
	cfg := DefaultFig4Config()
	if p.Scale != ScalePaper {
		cfg.Duration = 30 * time.Second
	}
	if p.Scale == ScaleSmoke {
		cfg.Duration = 10 * time.Second
	}
	if p.Seed != 0 {
		cfg.Seed = p.Seed
	}
	return Fig4(cfg)
}

func runTable1(ctx context.Context, p Params) (Result, error) {
	cfg := DefaultTable1Config()
	if p.Seed != 0 {
		cfg.Seed = p.Seed
	}
	return Table1(cfg)
}

func runValidation(ctx context.Context, p Params) (Result, error) {
	cfg := DefaultValidationConfig()
	if p.Scale != ScalePaper {
		cfg.Duration = 10 * time.Second
		cfg.RealClicks = 20_000
	}
	if p.Scale == ScaleSmoke {
		cfg.Duration = 4 * time.Second
	}
	if p.Seed != 0 {
		cfg.Seed = p.Seed
	}
	return Validation(ctx, cfg)
}

func runIssues(ctx context.Context, p Params) (Result, error) {
	cfg := DefaultIssuesConfig()
	if p.Seed != 0 {
		cfg.Seed = p.Seed
	}
	return Issues(cfg)
}

func runRuntimes(ctx context.Context, p Params) (Result, error) {
	cfg := DefaultRuntimeCmpConfig()
	if p.Seed != 0 {
		cfg.Seed = p.Seed
	}
	return RuntimeComparison(cfg)
}

func runAutoscale(ctx context.Context, p Params) (Result, error) {
	cfg := DefaultAutoscaleCmpConfig()
	if p.Scale == ScaleSmoke {
		cfg.Days = 1
	}
	if p.Seed != 0 {
		cfg.Seed = p.Seed
	}
	return AutoscaleComparison(cfg)
}

func runChaos(ctx context.Context, p Params) (Result, error) {
	cfg := DefaultChaosCmpConfig()
	if p.Scale == ScalePaper {
		cfg.Duration = 10 * time.Minute
	}
	if p.Seed != 0 {
		cfg.Seed = p.Seed
	}
	return ChaosComparison(cfg)
}

func runOverload(ctx context.Context, p Params) (Result, error) {
	cfg := DefaultOverloadCmpConfig()
	if p.Scale == ScalePaper {
		cfg.Duration = 10 * time.Minute
	}
	if p.Scale == ScaleSmoke {
		cfg.Duration = 30 * time.Second
	}
	if p.Seed != 0 {
		cfg.Seed = p.Seed
	}
	return OverloadComparison(cfg)
}

func runRolling(ctx context.Context, p Params) (Result, error) {
	cfg := DefaultRollingConfig()
	if p.Pods != "" {
		cfg.Backend = p.Pods
	}
	if p.Scale == ScalePaper {
		cfg.Duration = 2 * time.Minute
		cfg.TargetRate = 400
		cfg.OpAfter = 30 * time.Second
	}
	if p.Seed != 0 {
		cfg.Seed = p.Seed
	}
	return Rolling(ctx, cfg)
}

func runBreakdown(ctx context.Context, p Params) (Result, error) {
	cfg := DefaultBreakdownConfig()
	if p.Scale != ScalePaper {
		cfg.Requests = 60
	}
	if p.Scale == ScaleSmoke {
		cfg.Requests = 40
	}
	if p.Seed != 0 {
		cfg.Seed = p.Seed
	}
	return Breakdown(cfg)
}

func runShard(ctx context.Context, p Params) (Result, error) {
	cfg := DefaultShardConfig()
	if p.Scale != ScalePaper {
		cfg.Catalogs = []int{100_000, 1_000_000}
		cfg.Requests = 150
		cfg.Gap = 60 * time.Millisecond
		cfg.LiveSessions = 10
	}
	if p.Scale == ScaleSmoke {
		cfg.Catalogs = []int{100_000}
		cfg.Requests = 100
		cfg.LiveSessions = 5
	}
	if p.Seed != 0 {
		cfg.Seed = p.Seed
	}
	return Shard(cfg)
}

func runBlackout(ctx context.Context, p Params) (Result, error) {
	cfg := DefaultBlackoutConfig()
	if p.Scale != ScalePaper {
		cfg.Catalog = 100_000
		cfg.Requests = 150
		cfg.Gap = 60 * time.Millisecond
		cfg.LiveSessions = 20
	}
	if p.Scale == ScaleSmoke {
		cfg.Requests = 100
		cfg.LiveSessions = 10
	}
	if p.Seed != 0 {
		cfg.Seed = p.Seed
	}
	return Blackout(cfg)
}

func runTenant(ctx context.Context, p Params) (Result, error) {
	cfg := DefaultTenantCmpConfig()
	if p.Scale == ScalePaper {
		cfg.Horizon = time.Second
		cfg.CrowdStart = 300 * time.Millisecond
		cfg.CrowdLen = 400 * time.Millisecond
		cfg.FairnessHorizon = 500 * time.Millisecond
	}
	if p.Scale == ScaleSmoke {
		cfg.Horizon = 200 * time.Millisecond
		cfg.CrowdStart = 60 * time.Millisecond
		cfg.CrowdLen = 80 * time.Millisecond
		cfg.FairnessHorizon = 120 * time.Millisecond
	}
	if p.Seed != 0 {
		cfg.Seed = p.Seed
	}
	return TenantComparison(cfg)
}

func runDeploy(ctx context.Context, p Params) (Result, error) {
	cfg := DefaultDeployStudyConfig()
	if p.Pods != "" {
		cfg.Backend = p.Pods
	}
	if p.Scale == ScalePaper {
		cfg.Duration = time.Minute
		cfg.TargetRate = 300
		cfg.RolloutAfter = 5 * time.Second
		cfg.Thresholds.MinSamples = 50
	}
	if p.Scale == ScaleSmoke {
		cfg.Duration = 3 * time.Second
		cfg.RolloutAfter = 700 * time.Millisecond
	}
	if p.Seed != 0 {
		cfg.Seed = p.Seed
	}
	return DeployStudy(ctx, cfg)
}

func runProcs(ctx context.Context, p Params) (Result, error) {
	cfg := DefaultProcsConfig()
	if p.Scale == ScalePaper {
		cfg.Rolling.Duration = time.Minute
		cfg.Rolling.TargetRate = 200
		cfg.Rolling.OpAfter = 10 * time.Second
		cfg.ColdStartSamples = 20
	}
	if p.Seed != 0 {
		cfg.Rolling.Seed = p.Seed
	}
	return Procs(ctx, cfg)
}

// --- metric map helpers (used by the Metrics() methods) ---

// msF converts a duration into float milliseconds.
func msF(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// keyify makes a row identifier safe for slash-separated metric keys:
// spaces, commas and slashes collapse to '-', so "Groceries (small)"
// becomes "Groceries-(small)".
func keyify(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case ' ', ',', '/', '\n', '\r', '\t':
			return '-'
		}
		return r
	}, s)
}

// putSnap flattens a latency snapshot under prefix.
func putSnap(m map[string]float64, prefix string, s metrics.Snapshot) {
	m[prefix+"/count"] = float64(s.Count)
	m[prefix+"/mean_ms"] = msF(s.Mean)
	m[prefix+"/p50_ms"] = msF(s.P50)
	m[prefix+"/p90_ms"] = msF(s.P90)
	m[prefix+"/p99_ms"] = msF(s.P99)
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// ratio guards against zero denominators (NaN poisons serialization).
func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// sortedKeys is a test/debug helper: the metric names of a Result.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
