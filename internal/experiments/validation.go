package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"etude/internal/cluster"
	"etude/internal/loadgen"
	"etude/internal/metrics"
	"etude/internal/model"
	"etude/internal/objstore"
	"etude/internal/server"
	"etude/internal/workload"
)

// ValidationConfig controls the synthetic-workload validation (§III-A,
// second experiment): the latency measurements from replaying a "real"
// click log must closely resemble those from a synthetic workload generated
// from the log's fitted marginal statistics.
type ValidationConfig struct {
	// CatalogSize of the deployed model.
	CatalogSize int
	// RealClicks is the size of the "real" reference click log.
	RealClicks int
	// TargetRate and Duration shape both load runs.
	TargetRate float64
	Duration   time.Duration
	Tick       time.Duration
	// Model served during both runs.
	Model string
	// Seed drives everything.
	Seed int64
}

// DefaultValidationConfig returns a paper-flavoured setup (scaled to a
// single machine).
func DefaultValidationConfig() ValidationConfig {
	return ValidationConfig{
		CatalogSize: 10_000,
		RealClicks:  50_000,
		TargetRate:  200,
		Duration:    30 * time.Second,
		Tick:        time.Second,
		Model:       "gru4rec",
		Seed:        1,
	}
}

// ValidationResult compares the two runs.
type ValidationResult struct {
	// RealStats are the marginals fitted to the reference log.
	RealStats workload.Stats `json:"real_stats"`
	// Real and Synthetic are the latency snapshots of the two runs.
	Real      metrics.Snapshot `json:"real"`
	Synthetic metrics.Snapshot `json:"synthetic"`
	// P90RatioDiff is |p90_synth/p90_real − 1|: the headline closeness
	// metric ("the achieved latencies resemble each other closely").
	P90RatioDiff float64 `json:"p90_ratio_diff"`
}

// Validation runs the experiment: a reference log stands in for the real
// bol.com click log (generated once, treated as ground truth), its two
// power-law marginals are fitted, a fresh synthetic workload is generated
// from ONLY those two numbers, and both are replayed against the same live
// model server.
func Validation(ctx context.Context, cfg ValidationConfig) (*ValidationResult, error) {
	// The "real" click log: ground truth this experiment treats as given.
	alphaL, alphaC := workload.BolMarginals()
	realGen, err := workload.NewGenerator(workload.Spec{
		CatalogSize: cfg.CatalogSize,
		NumClicks:   cfg.RealClicks,
		AlphaLength: alphaL,
		AlphaClicks: alphaC,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	realLog := realGen.Generate()
	stats, err := workload.Fit(realLog)
	if err != nil {
		return nil, fmt.Errorf("experiments: fitting reference log: %w", err)
	}

	// Synthetic workload from the fitted statistics only.
	synthGen, err := workload.NewGenerator(workload.Spec{
		CatalogSize: cfg.CatalogSize,
		NumClicks:   1,
		AlphaLength: stats.AlphaLength,
		AlphaClicks: stats.AlphaClicks,
		Seed:        cfg.Seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: regenerating from fitted stats: %w", err)
	}

	// Deploy one model server used for both runs.
	c := cluster.New(objstore.NewMemBucket())
	defer c.Teardown()
	manifest := model.Manifest{Model: cfg.Model, Config: model.Config{CatalogSize: cfg.CatalogSize, Seed: cfg.Seed}}
	data, err := model.MarshalManifest(manifest)
	if err != nil {
		return nil, err
	}
	if err := c.Bucket().Put("models/validation.json", data); err != nil {
		return nil, err
	}
	svc, err := c.Deploy(ctx, "validation", cluster.PodSpec{
		Runtime:  cluster.RuntimeEtude,
		ModelKey: "models/validation.json",
		Server:   server.Options{JIT: true},
	}, 1)
	if err != nil {
		return nil, err
	}

	replay, err := workload.NewReplay(realLog)
	if err != nil {
		return nil, err
	}
	lcfg := loadgen.Config{TargetRate: cfg.TargetRate, Duration: cfg.Duration, Tick: cfg.Tick}
	realRun, err := loadgen.Run(ctx, lcfg, replay, svc.Target())
	if err != nil {
		return nil, fmt.Errorf("experiments: replaying real log: %w", err)
	}
	synthRun, err := loadgen.Run(ctx, lcfg, synthGen, svc.Target())
	if err != nil {
		return nil, fmt.Errorf("experiments: replaying synthetic workload: %w", err)
	}

	real := realRun.Recorder.Overall()
	synth := synthRun.Recorder.Overall()
	diff := math.Abs(float64(synth.P90)/float64(real.P90) - 1)
	return &ValidationResult{
		RealStats:    stats,
		Real:         real,
		Synthetic:    synth,
		P90RatioDiff: diff,
	}, nil
}

// Render prints the comparison.
func (r *ValidationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§III-A — synthetic workload validation\n")
	fmt.Fprintf(&b, "fitted marginals: α_l=%.2f α_c=%.2f (from %d clicks, %d sessions)\n",
		r.RealStats.AlphaLength, r.RealStats.AlphaClicks, r.RealStats.NumClicks, r.RealStats.NumSessions)
	fmt.Fprintf(&b, "%-10s %10s %12s %12s\n", "workload", "requests", "p50", "p90")
	fmt.Fprintf(&b, "%-10s %10d %12s %12s\n", "real", r.Real.Count, r.Real.P50.Round(time.Microsecond), r.Real.P90.Round(time.Microsecond))
	fmt.Fprintf(&b, "%-10s %10d %12s %12s\n", "synthetic", r.Synthetic.Count, r.Synthetic.P50.Round(time.Microsecond), r.Synthetic.P90.Round(time.Microsecond))
	fmt.Fprintf(&b, "p90 relative difference: %.1f%%\n", r.P90RatioDiff*100)
	return b.String()
}

// Metrics emits the closeness of the synthetic workload to the real log.
// The experiment is wall-clock; P90RatioDiff is its dimensionless
// headline and the only cross-machine-gateable key.
func (r *ValidationResult) Metrics() map[string]float64 {
	m := map[string]float64{}
	putSnap(m, "real/latency", r.Real)
	putSnap(m, "synthetic/latency", r.Synthetic)
	m["p90_ratio_diff"] = r.P90RatioDiff
	return m
}
