package experiments

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"time"

	"etude/internal/chaos"
	"etude/internal/costmodel"
	"etude/internal/device"
	"etude/internal/metrics"
	"etude/internal/model"
	"etude/internal/shard"
	"etude/internal/sim"
)

// ShardConfig controls the catalog-sharding study: an exactness check of
// the live scatter-gather tier, a simulated shard-count sweep over large
// catalogs, a tail-latency hedging comparison under a slow-shard fault, and
// the sharded deployment options the cost model derives.
type ShardConfig struct {
	// Device is the shard workers' instance type (default CPU).
	Device device.Spec
	// Model names the session encoder (default gru4rec).
	Model string
	// Catalogs are the catalog sizes of the sim sweep, ascending; the last
	// (largest) one also hosts the hedging and cost-model phases.
	Catalogs []int
	// ShardCounts is the swept S, ascending (default 1, 2, 4, 8).
	ShardCounts []int
	// LiveCatalog sizes the in-process exactness check (default 2,000 —
	// large enough for score ties, small enough to run everywhere).
	LiveCatalog int
	// LiveSessions is how many random sessions the exactness check replays
	// per shard count (default 25).
	LiveSessions int
	// Requests and Gap shape each sim arm: Requests arrivals spaced Gap
	// apart — wide enough that queueing never builds, so the latency
	// distribution isolates scatter, service and merge.
	Requests int
	Gap      time.Duration
	// SessionLen is the session length of every simulated request.
	SessionLen int
	// Replicas is the per-shard group size of the hedging phase (≥2 so a
	// backup has somewhere to go).
	Replicas int
	// SlowFactor is the slow-shard fault's service-time multiplier.
	SlowFactor float64
	// Rate is the deployment scenario's target throughput for the cost rows.
	Rate float64
	// Seed drives the exactness check's session sampling.
	Seed int64
}

// DefaultShardConfig returns the paper-scale study: gru4rec on CPUs over
// 1M- and 10M-item catalogs, S ∈ {1, 2, 4, 8}, 2 replicas per shard group
// and a 10× slow shard for the hedging comparison.
func DefaultShardConfig() ShardConfig {
	return ShardConfig{
		Device:       device.CPU(),
		Model:        "gru4rec",
		Catalogs:     []int{1_000_000, 10_000_000},
		ShardCounts:  []int{1, 2, 4, 8},
		LiveCatalog:  2_000,
		LiveSessions: 25,
		Requests:     300,
		Gap:          80 * time.Millisecond,
		SessionLen:   40,
		Replicas:     2,
		SlowFactor:   10,
		Rate:         500,
		Seed:         1,
	}
}

// ShardIdentityRow is one shard count's live exactness outcome.
type ShardIdentityRow struct {
	Shards    int  `json:"shards"`
	Sessions  int  `json:"sessions"`
	Identical bool `json:"identical"`
}

// ShardSweepRow is one (catalog, shard count) cell of the sim sweep.
type ShardSweepRow struct {
	Catalog int `json:"catalog"`
	Shards  int `json:"shards"`
	// Wait summarises the scatter→gather wait — the sharded MIPS portion of
	// the request, the term that divides by S.
	Wait metrics.Snapshot `json:"wait"`
	// Total summarises end-to-end latency (encoder + scatter + merge incl.).
	Total metrics.Snapshot `json:"total"`
	// Speedup is p50 wait at S=1 over p50 wait at this S, same catalog.
	Speedup float64 `json:"speedup"`
}

// ShardHedgeRow is one arm of the slow-shard comparison.
type ShardHedgeRow struct {
	Arm       string           `json:"arm"`
	Latency   metrics.Snapshot `json:"latency"`
	Sent      int64            `json:"hedges_sent"`
	Wins      int64            `json:"hedge_wins"`
	Cancelled int64            `json:"hedge_cancelled"`
}

// ShardCostRow is one shard count's deployment option for the largest
// catalog at the configured rate.
type ShardCostRow struct {
	Shards int             `json:"shards"`
	Option costmodel.Option `json:"option"`
}

// ShardResult aggregates the four phases.
type ShardResult struct {
	Model    string             `json:"model"`
	Device   string             `json:"device"`
	Identity []ShardIdentityRow `json:"identity"`
	Sweep    []ShardSweepRow    `json:"sweep"`
	// HedgeCatalog and HedgeShards locate the hedging comparison.
	HedgeCatalog int             `json:"hedge_catalog"`
	HedgeShards  int             `json:"hedge_shards"`
	SlowFactor   float64         `json:"slow_factor"`
	Hedge        []ShardHedgeRow `json:"hedge"`
	CostRate     float64         `json:"cost_rate"`
	Costs        []ShardCostRow  `json:"costs"`
}

// Shard runs the catalog-sharding study. Simulated phases are deterministic
// (virtual time); the live phase is exact-match, so the whole result is
// reproducible.
func Shard(cfg ShardConfig) (*ShardResult, error) {
	if cfg.Model == "" || len(cfg.Catalogs) == 0 || len(cfg.ShardCounts) == 0 {
		return nil, fmt.Errorf("experiments: invalid shard config %+v", cfg)
	}
	res := &ShardResult{Model: cfg.Model, Device: cfg.Device.Name, CostRate: cfg.Rate}

	identity, err := shardIdentity(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: shard identity: %w", err)
	}
	res.Identity = identity

	for _, catalog := range cfg.Catalogs {
		var base time.Duration
		for _, s := range cfg.ShardCounts {
			wait, total, _, err := runShardSimArm(cfg, catalog, s, 1, false, 0)
			if err != nil {
				return nil, fmt.Errorf("experiments: shard sweep C=%d S=%d: %w", catalog, s, err)
			}
			if base == 0 {
				base = wait.P50
			}
			speedup := 0.0
			if wait.P50 > 0 {
				speedup = float64(base) / float64(wait.P50)
			}
			res.Sweep = append(res.Sweep, ShardSweepRow{
				Catalog: catalog, Shards: s, Wait: wait, Total: total, Speedup: speedup,
			})
		}
	}

	res.HedgeCatalog = cfg.Catalogs[len(cfg.Catalogs)-1]
	res.HedgeShards = cfg.ShardCounts[len(cfg.ShardCounts)-1]
	res.SlowFactor = cfg.SlowFactor
	for _, arm := range []struct {
		name  string
		slow  bool
		hedge bool
	}{
		{"fault-free", false, false},
		{"slow-shard unhedged", true, false},
		{"slow-shard hedged", true, true},
	} {
		factor := 0.0
		if arm.slow {
			factor = cfg.SlowFactor
		}
		_, total, fleet, err := runShardSimArm(cfg, res.HedgeCatalog, res.HedgeShards, cfg.Replicas, arm.hedge, factor)
		if err != nil {
			return nil, fmt.Errorf("experiments: shard hedging arm %s: %w", arm.name, err)
		}
		res.Hedge = append(res.Hedge, ShardHedgeRow{
			Arm: arm.name, Latency: total,
			Sent: fleet.Stats().Sent(), Wins: fleet.Stats().Wins(), Cancelled: fleet.Stats().Cancelled(),
		})
	}

	sc := costmodel.Scenario{Name: "sharded", CatalogSize: res.HedgeCatalog, TargetRate: cfg.Rate}
	for _, s := range cfg.ShardCounts {
		capacity, err := shardedCapacity(cfg, res.HedgeCatalog, s)
		if err != nil {
			return nil, fmt.Errorf("experiments: sharded capacity S=%d: %w", s, err)
		}
		res.Costs = append(res.Costs, ShardCostRow{
			Shards: s,
			Option: costmodel.PlanSharded(cfg.Device, capacity, sc, s),
		})
	}
	return res, nil
}

// shardIdentity verifies the live in-process tier bit for bit: for every
// shard count, Pool's scatter-gather result must equal the unsharded model's
// — same items, same scores, same order, ties included.
func shardIdentity(cfg ShardConfig) ([]ShardIdentityRow, error) {
	m, err := model.New(cfg.Model, model.Config{CatalogSize: cfg.LiveCatalog, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	enc, ok := m.(model.Encoder)
	if !ok {
		return nil, fmt.Errorf("model %s has no encoder/MIPS decomposition", cfg.Model)
	}
	k := enc.Config().TopK
	rows := make([]ShardIdentityRow, 0, len(cfg.ShardCounts))
	for _, s := range cfg.ShardCounts {
		pool, err := shard.NewPool(enc.ItemEmbeddings(), s)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		identical := true
		for i := 0; i < cfg.LiveSessions; i++ {
			session := make([]int64, 1+rng.Intn(20))
			for j := range session {
				session[j] = int64(rng.Intn(cfg.LiveCatalog))
			}
			if !reflect.DeepEqual(pool.TopK(enc.Encode(session), k), m.Recommend(session)) {
				identical = false
				break
			}
		}
		rows = append(rows, ShardIdentityRow{Shards: s, Sessions: cfg.LiveSessions, Identical: identical})
	}
	return rows, nil
}

// runShardSimArm drives one deterministic arm: a Shards×Replicas fleet,
// cfg.Requests arrivals spaced cfg.Gap apart, optionally with pod 0 (shard
// 0, replica 0) slowed by slowFactor for the whole run via the chaos
// injector. Returns the wait and end-to-end latency summaries plus the
// fleet for hedge-counter inspection.
func runShardSimArm(cfg ShardConfig, catalog, shards, replicas int, hedge bool, slowFactor float64) (metrics.Snapshot, metrics.Snapshot, *shard.SimFleet, error) {
	eng := sim.NewEngine()
	fleet, err := shard.NewSimFleet(eng, shard.SimConfig{
		Device:   cfg.Device,
		Model:    cfg.Model,
		ModelCfg: model.Config{CatalogSize: catalog, Seed: cfg.Seed},
		Shards:   shards,
		Replicas: replicas,
		Hedge:    shard.HedgeConfig{Enabled: hedge},
	})
	if err != nil {
		return metrics.Snapshot{}, metrics.Snapshot{}, nil, err
	}
	if slowFactor > 1 {
		runLen := time.Duration(cfg.Requests) * cfg.Gap
		inj := chaos.NewInjector(chaos.SlowShard(runLen, 0, slowFactor))
		if err := inj.Arm(eng, fleet.Instances()); err != nil {
			return metrics.Snapshot{}, metrics.Snapshot{}, nil, err
		}
	}
	totals := metrics.NewHistogram()
	var firstErr error
	for i := 0; i < cfg.Requests; i++ {
		eng.Schedule(time.Duration(i)*cfg.Gap, func() {
			fleet.Submit(cfg.SessionLen, func(o sim.Outcome) {
				if o.Err != nil {
					if firstErr == nil {
						firstErr = o.Err
					}
					return
				}
				totals.Record(o.Latency)
			})
		})
	}
	eng.Drain()
	if firstErr != nil {
		return metrics.Snapshot{}, metrics.Snapshot{}, nil, firstErr
	}
	return fleet.WaitSnapshot(), totals.Snapshot(), fleet, nil
}

// shardedCapacity bisects one shard worker's sustainable throughput under
// the latency SLO — sim.Capacity's search, run against an instance serving
// the per-shard slice of the model's cost table.
func shardedCapacity(cfg ShardConfig, catalog, shards int) (float64, error) {
	mcfg := model.Config{CatalogSize: catalog, Seed: cfg.Seed, MaxSessionLen: 50}
	costs := make([]model.Cost, mcfg.MaxSessionLen+1)
	for l := 1; l < len(costs); l++ {
		c, err := model.EstimateCost(cfg.Model, mcfg, l)
		if err != nil {
			return 0, err
		}
		costs[l] = shard.SliceCost(c, shards)
	}
	feasibleAt := func(rate float64) (bool, error) {
		eng := sim.NewEngine()
		in, err := sim.NewInstanceFromCosts(eng, cfg.Device, costs, true, 2*time.Millisecond, cfg.Device.MaxBatch)
		if err != nil {
			return false, err
		}
		if !in.Fits() {
			return false, nil
		}
		res, err := sim.RunBenchmark(eng, sim.LoadConfig{
			TargetRate: rate, Duration: 10 * time.Second, NoRamp: true, Seed: 1,
		}, []*sim.Instance{in})
		if err != nil {
			return false, err
		}
		return res.Meets(costmodel.LatencySLO), nil
	}
	lo, hi := 1.0, 8000.0
	if ok, err := feasibleAt(lo); err != nil || !ok {
		return 0, err
	}
	for i := 0; i < 20 && hi-lo > 1; i++ {
		mid := (lo + hi) / 2
		ok, err := feasibleAt(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// Render prints the four phases as one report.
func (r *ShardResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Shard — catalog-sharded scatter-gather retrieval (%s on %s, sim + live)\n\n", r.Model, r.Device)

	fmt.Fprintf(&b, "live exactness (in-process pool vs unsharded model):\n")
	for _, row := range r.Identity {
		verdict := "IDENTICAL"
		if !row.Identical {
			verdict = "DIVERGED"
		}
		fmt.Fprintf(&b, "  S=%d: %s over %d sessions\n", row.Shards, verdict, row.Sessions)
	}

	fmt.Fprintf(&b, "\nsim sweep — scatter→gather wait (the sharded MIPS term) and end-to-end latency:\n")
	fmt.Fprintf(&b, "  %-12s %4s %12s %12s %12s %9s\n", "catalog", "S", "p50 wait", "p99 wait", "p50 total", "speedup")
	for _, row := range r.Sweep {
		fmt.Fprintf(&b, "  %-12d %4d %12s %12s %12s %8.2f×\n",
			row.Catalog, row.Shards,
			row.Wait.P50.Round(time.Microsecond), row.Wait.P99.Round(time.Microsecond),
			row.Total.P50.Round(time.Microsecond), row.Speedup)
	}

	fmt.Fprintf(&b, "\nhedging under a %.0f× slow-shard fault (C=%d, S=%d):\n", r.SlowFactor, r.HedgeCatalog, r.HedgeShards)
	fmt.Fprintf(&b, "  %-22s %12s %12s %8s %8s %10s\n", "arm", "p50", "p99", "sent", "wins", "cancelled")
	for _, row := range r.Hedge {
		fmt.Fprintf(&b, "  %-22s %12s %12s %8d %8d %10d\n",
			row.Arm, row.Latency.P50.Round(time.Microsecond), row.Latency.P99.Round(time.Microsecond),
			row.Sent, row.Wins, row.Cancelled)
	}

	fmt.Fprintf(&b, "\ndeployment options (C=%d at %.0f req/s, %v SLO):\n", r.HedgeCatalog, r.CostRate, costmodel.LatencySLO)
	for _, row := range r.Costs {
		fmt.Fprintf(&b, "  S=%d: %s\n", row.Shards, row.Option)
	}
	return b.String()
}

// Metrics emits the sharding study: live-tier exactness, the simulated
// shard-count sweep (wait and end-to-end latency plus the headline
// speedups), the hedging arms and the cost frontier.
func (r *ShardResult) Metrics() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.Identity {
		m[fmt.Sprintf("identity/s%d/identical", row.Shards)] = boolMetric(row.Identical)
	}
	for _, row := range r.Sweep {
		pre := fmt.Sprintf("sweep/c%d/s%d", row.Catalog, row.Shards)
		putSnap(m, pre+"/wait", row.Wait)
		putSnap(m, pre+"/total", row.Total)
		m[pre+"/speedup"] = row.Speedup
	}
	for _, row := range r.Hedge {
		pre := "hedge/" + keyify(row.Arm)
		putSnap(m, pre+"/latency", row.Latency)
		m[pre+"/hedges_sent"] = float64(row.Sent)
		m[pre+"/hedge_wins"] = float64(row.Wins)
	}
	for _, row := range r.Costs {
		if row.Option.Feasible {
			m[fmt.Sprintf("cost/s%d/monthly_usd", row.Shards)] = row.Option.MonthlyUSD
		}
	}
	return m
}
