package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"etude/internal/chaos"
	"etude/internal/device"
	"etude/internal/metrics"
	"etude/internal/model"
	"etude/internal/shard"
	"etude/internal/sim"
)

// BlackoutConfig controls the shard-blackout study: the availability
// comparison of fail-fast vs partial-result serving when every replica of
// one shard group dies mid-run, and the recall@k cost of the partial
// answers measured against the full-coverage oracle on a real model.
type BlackoutConfig struct {
	// Device is the shard workers' instance type (default CPU).
	Device device.Spec
	// Model names the session encoder (default gru4rec).
	Model string
	// Catalog sizes the simulated fleet's catalog.
	Catalog int
	// Shards and Replicas shape the fleet; the blackout kills every replica
	// of shard group 1.
	Shards   int
	Replicas int
	// Requests and Gap shape each sim arm; the blackout lands mid-run, so
	// half the requests see a healthy fleet and half a dead group.
	Requests int
	Gap      time.Duration
	// SessionLen is the session length of every simulated request.
	SessionLen int
	// MinCoverage is the partial arm's coverage floor.
	MinCoverage float64
	// LiveCatalog and LiveSessions size the recall phase: a real model's
	// partial top-k (shards progressively blacked out) scored against its
	// full-coverage oracle.
	LiveCatalog  int
	LiveSessions int
	// Seed drives the recall phase's session sampling.
	Seed int64
}

// DefaultBlackoutConfig returns the paper-scale study: gru4rec over a
// 1M-item catalog on a 4×2 fleet, 300 requests with the blackout at
// mid-run, and recall measured over 50 sessions at C=2,000.
func DefaultBlackoutConfig() BlackoutConfig {
	return BlackoutConfig{
		Device:       device.CPU(),
		Model:        "gru4rec",
		Catalog:      1_000_000,
		Shards:       4,
		Replicas:     2,
		Requests:     300,
		Gap:          80 * time.Millisecond,
		SessionLen:   40,
		MinCoverage:  0.5,
		LiveCatalog:  2_000,
		LiveSessions: 50,
		Seed:         1,
	}
}

// BlackoutArmRow is one serving policy's outcome under the blackout.
type BlackoutArmRow struct {
	Arm  string `json:"arm"`
	Sent int    `json:"sent"`
	OK   int    `json:"ok"`
	// PartialServed counts successes merged from a strict shard subset.
	PartialServed int `json:"partial_served"`
	// Availability is OK/Sent over the whole run; PostAvailability is the
	// same ratio over the post-blackout phase only — the headline number
	// (fail-fast ≈ 0, partial ≈ 1).
	Availability     float64 `json:"availability"`
	PostAvailability float64 `json:"post_availability"`
	// MeanCoverage averages the coverage fraction over the run's successes
	// (full-coverage answers count 1).
	MeanCoverage float64 `json:"mean_coverage"`
	// Latency summarises the successes' end-to-end latency.
	Latency metrics.Snapshot `json:"latency"`
	// Skipped and FloorFailures are the partial-serving counters: scatters
	// short-circuited by the open group breaker, and requests failed below
	// the coverage floor.
	Skipped       int64 `json:"skipped"`
	FloorFailures int64 `json:"floor_failures"`
}

// BlackoutRecallRow is the measured quality loss at one outage size: the
// exact partial top-k over the surviving slices, scored against the
// full-coverage oracle.
type BlackoutRecallRow struct {
	DownShards int     `json:"down_shards"`
	Coverage   float64 `json:"coverage"`
	MeanRecall float64 `json:"mean_recall"`
	MinRecall  float64 `json:"min_recall"`
}

// BlackoutResult aggregates both phases.
type BlackoutResult struct {
	Model    string `json:"model"`
	Device   string `json:"device"`
	Catalog  int    `json:"catalog"`
	Shards   int    `json:"shards"`
	Replicas int    `json:"replicas"`
	// BlackoutAt is when every replica of shard group 1 dies (never to
	// return) on the sim clock.
	BlackoutAt  time.Duration       `json:"blackout_at"`
	MinCoverage float64             `json:"min_coverage"`
	Arms        []BlackoutArmRow    `json:"arms"`
	LiveCatalog int                 `json:"live_catalog"`
	Recall      []BlackoutRecallRow `json:"recall"`
}

// Blackout runs the shard-blackout study. Both phases are deterministic:
// the sim arms run on virtual time, the recall phase on a seeded session
// sample.
func Blackout(cfg BlackoutConfig) (*BlackoutResult, error) {
	if cfg.Model == "" || cfg.Shards < 2 || cfg.Replicas < 1 || cfg.Requests < 4 {
		return nil, fmt.Errorf("experiments: invalid blackout config %+v", cfg)
	}
	res := &BlackoutResult{
		Model: cfg.Model, Device: cfg.Device.Name, Catalog: cfg.Catalog,
		Shards: cfg.Shards, Replicas: cfg.Replicas,
		MinCoverage: cfg.MinCoverage, LiveCatalog: cfg.LiveCatalog,
	}
	// Mid-gap placement: the boundary request is cleanly on one side of the
	// outage or the other.
	res.BlackoutAt = time.Duration(cfg.Requests/2)*cfg.Gap + cfg.Gap/2

	for _, arm := range []struct {
		name string
		pol  shard.Policy
	}{
		{"fail-fast", shard.Policy{Mode: shard.PolicyFailFast}},
		{"partial", shard.Policy{Mode: shard.PolicyPartial, MinCoverage: cfg.MinCoverage}},
	} {
		row, err := runBlackoutArm(cfg, res.BlackoutAt, arm.name, arm.pol)
		if err != nil {
			return nil, fmt.Errorf("experiments: blackout arm %s: %w", arm.name, err)
		}
		res.Arms = append(res.Arms, row)
	}

	recall, err := blackoutRecall(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: blackout recall: %w", err)
	}
	res.Recall = recall
	return res, nil
}

// runBlackoutArm drives one policy arm: a Shards×Replicas fleet with every
// replica of shard group 1 killed at `at` and never restarted.
func runBlackoutArm(cfg BlackoutConfig, at time.Duration, name string, pol shard.Policy) (BlackoutArmRow, error) {
	eng := sim.NewEngine()
	fleet, err := shard.NewSimFleet(eng, shard.SimConfig{
		Device:   cfg.Device,
		Model:    cfg.Model,
		ModelCfg: model.Config{CatalogSize: cfg.Catalog, Seed: cfg.Seed},
		Shards:   cfg.Shards,
		Replicas: cfg.Replicas,
		Policy:   pol,
	})
	if err != nil {
		return BlackoutArmRow{}, err
	}
	sc := chaos.ShardBlackout(1, cfg.Replicas, at)
	if err := chaos.NewInjector(sc).Arm(eng, fleet.Instances()); err != nil {
		return BlackoutArmRow{}, err
	}
	row := BlackoutArmRow{Arm: name, Sent: cfg.Requests}
	totals := metrics.NewHistogram()
	covSum := 0.0
	postN, postOK := 0, 0
	// One request can be mid-scatter when the group dies; judge the
	// post-blackout phase from a small margin past the boundary.
	postFrom := cfg.Requests/2 + 2
	for i := 0; i < cfg.Requests; i++ {
		i := i
		eng.Schedule(time.Duration(i)*cfg.Gap, func() {
			fleet.Submit(cfg.SessionLen, func(o sim.Outcome) {
				if i >= postFrom {
					postN++
				}
				if o.Err != nil {
					return
				}
				row.OK++
				if i >= postFrom {
					postOK++
				}
				totals.Record(o.Latency)
				if o.Partial {
					row.PartialServed++
					covSum += o.Coverage
				} else {
					covSum += 1
				}
			})
		})
	}
	eng.Drain()
	row.Latency = totals.Snapshot()
	row.Availability = float64(row.OK) / float64(row.Sent)
	if postN > 0 {
		row.PostAvailability = float64(postOK) / float64(postN)
	}
	if row.OK > 0 {
		row.MeanCoverage = covSum / float64(row.OK)
	}
	row.Skipped = fleet.PartialStats().Skipped()
	row.FloorFailures = fleet.PartialStats().FloorFailures()
	return row, nil
}

// blackoutRecall measures the quality contract of partial serving on a real
// model: for each outage size d, the exact top-k over the surviving
// catalog slices (groups 0..d-1 down) is scored against the full-coverage
// oracle with RecallAtK, over a seeded session sample.
func blackoutRecall(cfg BlackoutConfig) ([]BlackoutRecallRow, error) {
	m, err := model.New(cfg.Model, model.Config{CatalogSize: cfg.LiveCatalog, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	enc, ok := m.(model.Encoder)
	if !ok {
		return nil, fmt.Errorf("model %s has no encoder/MIPS decomposition", cfg.Model)
	}
	pool, err := shard.NewPool(enc.ItemEmbeddings(), cfg.Shards)
	if err != nil {
		return nil, err
	}
	k := enc.Config().TopK
	rows := make([]BlackoutRecallRow, 0, cfg.Shards-1)
	for d := 1; d < cfg.Shards; d++ {
		down := make([]bool, cfg.Shards)
		for g := 0; g < d; g++ {
			down[g] = true
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		sum, min, n := 0.0, 1.0, 0
		for i := 0; i < cfg.LiveSessions; i++ {
			session := make([]int64, 1+rng.Intn(20))
			for j := range session {
				session[j] = int64(rng.Intn(cfg.LiveCatalog))
			}
			query := enc.Encode(session)
			oracle := pool.TopK(query, k)
			got, _ := pool.TopKPartial(query, k, down)
			r := shard.RecallAtK(oracle, got)
			sum += r
			if r < min {
				min = r
			}
			n++
		}
		rows = append(rows, BlackoutRecallRow{
			DownShards: d,
			Coverage:   float64(cfg.Shards-d) / float64(cfg.Shards),
			MeanRecall: sum / float64(n),
			MinRecall:  min,
		})
	}
	return rows, nil
}

// Render prints both phases as one report.
func (r *BlackoutResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Blackout — partial-result serving under a shard-group outage (%s on %s, C=%d, %d×%d fleet)\n",
		r.Model, r.Device, r.Catalog, r.Shards, r.Replicas)
	fmt.Fprintf(&b, "every replica of shard group 1 dies at %v and never restarts; coverage floor %.2f\n\n",
		r.BlackoutAt.Round(time.Millisecond), r.MinCoverage)

	fmt.Fprintf(&b, "availability (post = after the blackout):\n")
	fmt.Fprintf(&b, "  %-10s %6s %6s %8s %12s %12s %10s %12s %12s %8s %6s\n",
		"arm", "sent", "ok", "partial", "avail", "post-avail", "mean-cov", "p50", "p99", "skipped", "floor")
	for _, row := range r.Arms {
		fmt.Fprintf(&b, "  %-10s %6d %6d %8d %11.2f%% %11.2f%% %10.4f %12s %12s %8d %6d\n",
			row.Arm, row.Sent, row.OK, row.PartialServed,
			100*row.Availability, 100*row.PostAvailability, row.MeanCoverage,
			row.Latency.P50.Round(time.Microsecond), row.Latency.P99.Round(time.Microsecond),
			row.Skipped, row.FloorFailures)
	}

	fmt.Fprintf(&b, "\nrecall@k of partial answers vs the full-coverage oracle (%s, C=%d, %d shards):\n",
		r.Model, r.LiveCatalog, r.Shards)
	fmt.Fprintf(&b, "  %-12s %10s %12s %12s\n", "down shards", "coverage", "mean recall", "min recall")
	for _, row := range r.Recall {
		fmt.Fprintf(&b, "  %-12d %10.2f %12.4f %12.4f\n", row.DownShards, row.Coverage, row.MeanRecall, row.MinRecall)
	}
	return b.String()
}

// Metrics emits the shard-blackout study: per-arm availability, coverage
// and latency, plus the recall-vs-coverage frontier of the live model.
func (r *BlackoutResult) Metrics() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.Arms {
		pre := keyify(row.Arm)
		putSnap(m, pre+"/latency", row.Latency)
		m[pre+"/availability"] = row.Availability
		m[pre+"/post_availability"] = row.PostAvailability
		m[pre+"/coverage_mean"] = row.MeanCoverage
		m[pre+"/partial_served"] = float64(row.PartialServed)
		m[pre+"/floor_failures"] = float64(row.FloorFailures)
	}
	for _, row := range r.Recall {
		pre := fmt.Sprintf("recall/down%d", row.DownShards)
		m[pre+"/coverage"] = row.Coverage
		m[pre+"/mean_recall"] = row.MeanRecall
		m[pre+"/min_recall"] = row.MinRecall
	}
	return m
}
