package experiments

import (
	"fmt"
	"strings"
	"time"

	"etude/internal/device"
	"etude/internal/model"
	"etude/internal/runtimes"
)

// RuntimeCmpConfig controls the inference-runtime comparison (the paper's
// future-work extension "more inference runtimes such as ONNX or
// TensorRT").
type RuntimeCmpConfig struct {
	// Models to include (default: all ten).
	Models []string
	// CatalogSizes to sweep (default: 1e4 and 1e6 — launch-bound and
	// memory-bound regimes).
	CatalogSizes []int
	// Devices to include (default: cpu and gpu-t4).
	Devices []string
	// Seed drives the cost estimation.
	Seed int64
}

// DefaultRuntimeCmpConfig returns the standard sweep.
func DefaultRuntimeCmpConfig() RuntimeCmpConfig {
	return RuntimeCmpConfig{
		Models:       model.Names(),
		CatalogSizes: []int{10_000, 1_000_000},
		Devices:      []string{"cpu", "gpu-t4"},
	}
}

// RuntimeCmpRow is one (model, catalog, device, runtime) latency cell.
type RuntimeCmpRow struct {
	Model       string        `json:"model"`
	CatalogSize int           `json:"catalog_size"`
	Device      string        `json:"device"`
	Runtime     string        `json:"runtime"`
	Supported   bool          `json:"supported"`
	Serial      time.Duration `json:"serial"`
}

// RuntimeCmpResult holds the sweep.
type RuntimeCmpResult struct {
	Rows []RuntimeCmpRow `json:"rows"`
}

// RuntimeComparison sweeps all runtimes over the models, catalog sizes and
// devices, reporting serial inference latency and support gaps.
func RuntimeComparison(cfg RuntimeCmpConfig) (*RuntimeCmpResult, error) {
	if len(cfg.Models) == 0 {
		cfg.Models = model.Names()
	}
	if len(cfg.CatalogSizes) == 0 {
		cfg.CatalogSizes = []int{10_000, 1_000_000}
	}
	if len(cfg.Devices) == 0 {
		cfg.Devices = []string{"cpu", "gpu-t4"}
	}
	res := &RuntimeCmpResult{}
	for _, name := range cfg.Models {
		for _, c := range cfg.CatalogSizes {
			for _, dev := range cfg.Devices {
				spec, err := device.ByName(dev)
				if err != nil {
					return nil, err
				}
				for _, rt := range runtimes.All() {
					mcfg := model.Config{CatalogSize: c, Seed: cfg.Seed}
					lat, ok, err := rt.SerialInference(spec, name, mcfg, 3)
					if err != nil {
						return nil, fmt.Errorf("experiments: runtime %s/%s/%s: %w", rt.Name, name, dev, err)
					}
					res.Rows = append(res.Rows, RuntimeCmpRow{
						Model: name, CatalogSize: c, Device: dev,
						Runtime: rt.Name, Supported: ok, Serial: lat,
					})
				}
			}
		}
	}
	return res, nil
}

// Render prints the comparison.
func (r *RuntimeCmpResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Runtime comparison — serial inference latency (future-work extension)\n")
	fmt.Fprintf(&b, "%-10s %10s %-8s %-12s %14s\n", "model", "catalog", "device", "runtime", "serial")
	for _, row := range r.Rows {
		val := "unsupported"
		if row.Supported {
			val = row.Serial.Round(time.Microsecond).String()
		}
		fmt.Fprintf(&b, "%-10s %10d %-8s %-12s %14s\n", row.Model, row.CatalogSize, row.Device, row.Runtime, val)
	}
	return b.String()
}

// Metrics emits one serial latency per (model, device, runtime) cell.
func (r *RuntimeCmpResult) Metrics() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.Rows {
		pre := fmt.Sprintf("%s/c%d/%s/%s", keyify(row.Model), row.CatalogSize, keyify(row.Device), keyify(row.Runtime))
		m[pre+"/supported"] = boolMetric(row.Supported)
		if row.Supported {
			m[pre+"/serial_ms"] = msF(row.Serial)
		}
	}
	return m
}
