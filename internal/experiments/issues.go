package experiments

import (
	"fmt"
	"strings"
	"time"

	"etude/internal/costmodel"
	"etude/internal/device"
	"etude/internal/model"
	"etude/internal/sim"
)

// IssuesConfig controls the model-implementation-issue study (§III-C,
// "Issues with selected SBR models").
type IssuesConfig struct {
	// CatalogSize for the comparison (default 1e6, where the issues bite).
	CatalogSize int
	// SLO is the latency budget used for capacity comparison.
	SLO time.Duration
	// Seed drives the simulations.
	Seed int64
}

// DefaultIssuesConfig returns the paper-flavoured setup.
func DefaultIssuesConfig() IssuesConfig {
	return IssuesConfig{CatalogSize: 1_000_000, SLO: costmodel.LatencySLO}
}

// IssueRow contrasts a buggy model's faithful and fixed variants on one
// device.
type IssueRow struct {
	Model  string `json:"model"`
	Device string `json:"device"`
	// Issue names the root cause the paper identified.
	Issue string `json:"issue"`
	// FaithfulSerial and FixedSerial are single-request latencies.
	FaithfulSerial time.Duration `json:"faithful_serial"`
	FixedSerial    time.Duration `json:"fixed_serial"`
	// FaithfulCapacity and FixedCapacity are per-instance req/s under the
	// SLO.
	FaithfulCapacity float64 `json:"faithful_capacity"`
	FixedCapacity    float64 `json:"fixed_capacity"`
}

// IssuesResult is the full study.
type IssuesResult struct {
	Rows []IssueRow `json:"rows"`
	// LightSANsJIT records that LightSANs cannot be JIT-compiled, with the
	// eager/jit serial latencies of a healthy model for contrast.
	LightSANsJITSupported bool          `json:"lightsans_jit_supported"`
	LightSANsEagerSerial  time.Duration `json:"lightsans_eager_serial"`
}

// issueDescriptions names the root causes from the paper.
var issueDescriptions = map[string]string{
	"repeatnet": "dense operations on very sparse matrices",
	"srgnn":     "NumPy ops in inference → CPU↔GPU transfers",
	"gcsan":     "NumPy ops in inference → CPU↔GPU transfers",
}

// Issues reproduces the implementation-issue findings: RepeatNet, SR-GNN
// and GC-SAN are compared in faithful (RecBole-like) and fixed variants;
// LightSANs' JIT failure is verified.
func Issues(cfg IssuesConfig) (*IssuesResult, error) {
	if cfg.CatalogSize <= 0 {
		cfg.CatalogSize = 1_000_000
	}
	if cfg.SLO <= 0 {
		cfg.SLO = costmodel.LatencySLO
	}
	res := &IssuesResult{}
	devices := map[string]device.Spec{
		"repeatnet": device.CPU(),   // the dense scatter hurts everywhere; report CPU
		"srgnn":     device.GPUT4(), // host transfers only hurt accelerators
		"gcsan":     device.GPUT4(),
	}
	for _, name := range []string{"repeatnet", "srgnn", "gcsan"} {
		spec := devices[name]
		row := IssueRow{Model: name, Device: spec.Name, Issue: issueDescriptions[name]}
		for _, faithful := range []bool{true, false} {
			mcfg := model.Config{CatalogSize: cfg.CatalogSize, Seed: cfg.Seed, Faithful: faithful}
			cost, err := model.EstimateCost(name, mcfg, 25)
			if err != nil {
				return nil, err
			}
			serial := spec.SerialInference(cost, true)
			capacity, err := sim.Capacity(spec, name, mcfg, true, cfg.SLO)
			if err != nil {
				return nil, fmt.Errorf("experiments: issues capacity %s: %w", name, err)
			}
			if faithful {
				row.FaithfulSerial, row.FaithfulCapacity = serial, capacity
			} else {
				row.FixedSerial, row.FixedCapacity = serial, capacity
			}
		}
		res.Rows = append(res.Rows, row)
	}

	// LightSANs: verify the JIT refusal on the real implementation.
	m, err := model.New("lightsans", model.Config{CatalogSize: 1000, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	_, res.LightSANsJITSupported = m.(model.JITCompilable)
	cost, err := model.EstimateCost("lightsans", model.Config{CatalogSize: cfg.CatalogSize, Seed: cfg.Seed}, 25)
	if err != nil {
		return nil, err
	}
	res.LightSANsEagerSerial = device.CPU().SerialInference(cost, false)
	return res, nil
}

// Render prints the issue study.
func (r *IssuesResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§III-C — RecBole implementation issues (faithful vs fixed)\n")
	fmt.Fprintf(&b, "%-10s %-9s %14s %14s %12s %12s  %s\n",
		"model", "device", "serial(bug)", "serial(fix)", "cap(bug)", "cap(fix)", "root cause")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %-9s %14s %14s %10.0f/s %10.0f/s  %s\n",
			row.Model, row.Device,
			row.FaithfulSerial.Round(time.Microsecond), row.FixedSerial.Round(time.Microsecond),
			row.FaithfulCapacity, row.FixedCapacity, row.Issue)
	}
	fmt.Fprintf(&b, "lightsans: JIT-compilable=%v (paper: cannot be JIT-optimised, dynamic code paths)\n",
		r.LightSANsJITSupported)
	return b.String()
}

// Metrics emits, per broken model, the faithful vs fixed serial latency
// and capacity, plus the speedup the fix buys (dimensionless).
func (r *IssuesResult) Metrics() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.Rows {
		pre := keyify(row.Model) + "/" + keyify(row.Device)
		m[pre+"/faithful_serial_ms"] = msF(row.FaithfulSerial)
		m[pre+"/fixed_serial_ms"] = msF(row.FixedSerial)
		m[pre+"/faithful_capacity_rps"] = row.FaithfulCapacity
		m[pre+"/fixed_capacity_rps"] = row.FixedCapacity
		m[pre+"/fix_speedup"] = ratio(msF(row.FaithfulSerial), msF(row.FixedSerial))
	}
	m["lightsans/jit_supported"] = boolMetric(r.LightSANsJITSupported)
	m["lightsans/eager_serial_ms"] = msF(r.LightSANsEagerSerial)
	return m
}
