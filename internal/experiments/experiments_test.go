package experiments

import (
	"context"
	"strings"
	"testing"
	"time"

	"etude/internal/core"
	"etude/internal/costmodel"
	"etude/internal/model"
	"etude/internal/torchserve"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestFig2Shape runs a scaled-down infrastructure test and checks the
// paper's qualitative result: the ETUDE server handles the ramp with low
// latency and no errors, while TorchServe throws errors and lands its p90
// near its internal timeout.
func TestFig2Shape(t *testing.T) {
	cfg := Fig2Config{
		TargetRate: 700,
		Duration:   4 * time.Second,
		Tick:       250 * time.Millisecond,
		TorchServe: torchserve.Config{
			Workers:            2,
			PerRequestOverhead: 6 * time.Millisecond,
			ResponseTimeout:    100 * time.Millisecond,
			QueueSize:          100,
			Seed:               1,
		},
		Seed: 1,
	}
	res, err := Fig2(testCtx(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Etude.Errors != 0 {
		t.Errorf("ETUDE server threw %d errors", res.Etude.Errors)
	}
	if res.Etude.Overall.P90 > 20*time.Millisecond {
		t.Errorf("ETUDE p90 = %v, want ≈1ms", res.Etude.Overall.P90)
	}
	if res.TorchServe.Errors == 0 {
		t.Errorf("TorchServe threw no errors under a %v req/s ramp", cfg.TargetRate)
	}
	if res.TorchServe.Overall.P90 < res.Etude.Overall.P90*5 {
		t.Errorf("TorchServe p90 %v not clearly worse than ETUDE %v",
			res.TorchServe.Overall.P90, res.Etude.Overall.P90)
	}
	if !strings.Contains(res.Render(), "torchserve") {
		t.Errorf("render missing torchserve row")
	}
}

func TestFig3ModeledShape(t *testing.T) {
	cfg := Fig3Config{
		Models:       []string{"gru4rec", "core", "lightsans"},
		CatalogSizes: []int{10_000, 100_000, 1_000_000, 10_000_000},
		Devices:      []string{"cpu", "gpu-t4"},
		Requests:     50,
		Mode:         Fig3Modeled,
		Seed:         1,
	}
	res, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 models × 4 catalogs × 2 devices × 2 execs.
	if len(res.Rows) != 48 {
		t.Fatalf("rows = %d, want 48", len(res.Rows))
	}
	lookup := func(m string, c int, d, e string) Fig3Row {
		for _, r := range res.Rows {
			if r.Model == m && r.CatalogSize == c && r.Device == d && r.Exec == e {
				return r
			}
		}
		t.Fatalf("missing row %s/%d/%s/%s", m, c, d, e)
		return Fig3Row{}
	}
	// Linear scaling on CPU: 1e6 → 1e7 grows by ≈ 10×d-ratio.
	small := lookup("gru4rec", 1_000_000, "cpu", "eager").P90
	large := lookup("gru4rec", 10_000_000, "cpu", "eager").P90
	ratio := float64(large) / float64(small)
	if ratio < 8 || ratio > 40 {
		t.Errorf("CPU scaling 1e6→1e7 = %.1fx, want ≈18x", ratio)
	}
	// CPU eager above 50ms at 1e6 (paper statement).
	if small < 50*time.Millisecond {
		t.Errorf("CPU eager at 1e6 = %v, paper says >50ms", small)
	}
	// GPU an order of magnitude faster at 1e6 (JIT).
	cpuJit := lookup("gru4rec", 1_000_000, "cpu", "jit").P90
	gpuJit := lookup("gru4rec", 1_000_000, "gpu-t4", "jit").P90
	if cpuJit < 10*gpuJit {
		t.Errorf("at 1e6: cpu jit %v vs gpu jit %v — want ≥10x", cpuJit, gpuJit)
	}
	// JIT never hurts.
	for _, r := range res.Rows {
		if r.Exec != "jit" {
			continue
		}
		eager := lookup(r.Model, r.CatalogSize, r.Device, "eager")
		if r.P90 > eager.P90 {
			t.Errorf("%s/%d/%s: jit %v > eager %v", r.Model, r.CatalogSize, r.Device, r.P90, eager.P90)
		}
	}
	// LightSANs: jit rows equal eager rows (fallback).
	lsEager := lookup("lightsans", 1_000_000, "cpu", "eager").P90
	lsJit := lookup("lightsans", 1_000_000, "cpu", "jit").P90
	if lsEager != lsJit {
		t.Errorf("lightsans jit %v != eager %v — must fall back", lsJit, lsEager)
	}
	if !strings.Contains(res.Render(), "not JIT-able") {
		t.Errorf("render missing LightSANs JIT note")
	}
}

// TestFig3MeasuredAgainstModeled runs the measured mode on a small catalog
// and checks it behaves: jit ≤ eager (real buffer-reuse effect) and both
// latencies are nonzero.
func TestFig3Measured(t *testing.T) {
	cfg := Fig3Config{
		Models:       []string{"gru4rec", "core"},
		CatalogSizes: []int{50_000},
		Devices:      []string{"cpu"},
		Requests:     40,
		Mode:         Fig3Measured,
		Seed:         1,
	}
	res, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.P90 <= 0 {
			t.Errorf("%+v: zero latency", r)
		}
	}
	// Measured mode rejects GPU devices.
	bad := cfg
	bad.Devices = []string{"gpu-t4"}
	if _, err := Fig3(bad); err == nil {
		t.Fatalf("measured GPU accepted")
	}
}

func TestFig4ScaledSweep(t *testing.T) {
	cfg := Fig4Config{
		Scenarios: []costmodel.Scenario{
			{Name: "Groceries (small)", CatalogSize: 10_000, TargetRate: 100},
			{Name: "Fashion", CatalogSize: 1_000_000, TargetRate: 500},
		},
		Models:    []string{"gru4rec", "stamp"},
		Instances: []string{"cpu", "gpu-t4"},
		Duration:  15 * time.Second,
		Faithful:  true,
		Seed:      1,
	}
	res, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(res.Rows))
	}
	find := func(sc, m, inst string) Fig4Row {
		for _, r := range res.Rows {
			if r.Scenario == sc && r.Model == m && r.Instance == inst {
				return r
			}
		}
		t.Fatalf("missing row %s/%s/%s", sc, m, inst)
		return Fig4Row{}
	}
	// Small groceries: CPU handles it.
	if !find("Groceries (small)", "gru4rec", "cpu").MeetsSLO {
		t.Errorf("CPU must handle the small groceries scenario")
	}
	// Fashion at 500 req/s: one CPU instance fails, one T4 succeeds.
	if find("Fashion", "gru4rec", "cpu").MeetsSLO {
		t.Errorf("single CPU instance must fail Fashion at 500 req/s")
	}
	if !find("Fashion", "gru4rec", "gpu-t4").MeetsSLO {
		t.Errorf("T4 must handle Fashion at 500 req/s")
	}
	if !strings.Contains(res.Render(), "Fashion") {
		t.Errorf("render missing scenario")
	}
}

// TestTable1SmallScenarios checks the cheap rows of Table I: both grocery
// scenarios are served by a single CPU machine for $108/month, and that
// option is the cheapest.
func TestTable1SmallScenarios(t *testing.T) {
	cfg := Table1Config{
		Scenarios: []costmodel.Scenario{
			{Name: "Groceries (small)", CatalogSize: 10_000, TargetRate: 100},
			{Name: "Groceries (large)", CatalogSize: 100_000, TargetRate: 250},
		},
		Models:    []string{"core", "gru4rec", "stamp"},
		Instances: []string{"cpu", "gpu-t4"},
		Seed:      1,
	}
	res, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		var cpu *Table1Option
		for i := range row.Options {
			if row.Options[i].Instance == "cpu" {
				cpu = &row.Options[i]
			}
		}
		if cpu == nil || !cpu.Feasible {
			t.Fatalf("%s: CPU option must be feasible", row.Scenario.Name)
		}
		if cpu.Count != 1 {
			t.Errorf("%s: CPU count = %d, paper uses 1", row.Scenario.Name, cpu.Count)
		}
		if !cpu.Cheapest {
			t.Errorf("%s: CPU must be the cheapest option", row.Scenario.Name)
		}
		for m, ok := range cpu.Supported {
			if !ok {
				t.Errorf("%s: model %s unsupported on CPU", row.Scenario.Name, m)
			}
		}
	}
	if !strings.Contains(res.Render(), "cost-efficient") {
		t.Errorf("render broken")
	}
}

// TestTable1Platform checks the expensive end: at C=2e7 only the A100 is
// feasible.
func TestTable1Platform(t *testing.T) {
	cfg := Table1Config{
		Scenarios: []costmodel.Scenario{{Name: "Platform", CatalogSize: 20_000_000, TargetRate: 1000}},
		Models:    []string{"gru4rec"},
		Instances: []string{"gpu-t4", "gpu-a100"},
		Seed:      1,
	}
	res, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	for _, o := range row.Options {
		switch o.Instance {
		case "gpu-t4":
			if o.Feasible {
				t.Errorf("T4 must be infeasible for the platform scenario, got %+v", o.Option)
			}
		case "gpu-a100":
			if !o.Feasible {
				t.Errorf("A100 must be feasible for the platform scenario")
			}
			if o.Count < 2 || o.Count > 4 {
				t.Errorf("A100 count = %d, paper uses 3", o.Count)
			}
		}
	}
}

func TestValidationCloseness(t *testing.T) {
	cfg := ValidationConfig{
		CatalogSize: 3_000,
		RealClicks:  20_000,
		TargetRate:  150,
		Duration:    2 * time.Second,
		Tick:        200 * time.Millisecond,
		Model:       "core",
		Seed:        1,
	}
	res, err := Validation(testCtx(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Real.Count == 0 || res.Synthetic.Count == 0 {
		t.Fatalf("empty runs: %+v", res)
	}
	// "The achieved latencies resemble each other closely". Tail quantiles
	// of a 2-second live run are too noisy to assert on when the machine is
	// busy (e.g. during `go test -bench ./...`), so the hard assertion uses
	// the median: the synthetic workload must be the same order of
	// magnitude and within 4× of the real replay even on a loaded box.
	// Quiet-machine runs measure ≈4% p90 difference (see
	// results/validation.txt).
	p50Ratio := float64(res.Synthetic.P50) / float64(res.Real.P50)
	if p50Ratio < 0.25 || p50Ratio > 4 {
		t.Errorf("p50 ratio %.2f — synthetic workload not representative (real %v vs synthetic %v)",
			p50Ratio, res.Real.P50, res.Synthetic.P50)
	}
	if res.RealStats.AlphaLength <= 1 || res.RealStats.AlphaClicks <= 1 {
		t.Errorf("fitted marginals degenerate: %+v", res.RealStats)
	}
	if !strings.Contains(res.Render(), "synthetic") {
		t.Errorf("render broken")
	}
}

func TestIssuesFindings(t *testing.T) {
	cfg := IssuesConfig{CatalogSize: 200_000, Seed: 1}
	res, err := Issues(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.FaithfulSerial <= row.FixedSerial {
			t.Errorf("%s: faithful %v not slower than fixed %v", row.Model, row.FaithfulSerial, row.FixedSerial)
		}
		if row.FaithfulCapacity > row.FixedCapacity {
			t.Errorf("%s: faithful capacity %.0f exceeds fixed %.0f", row.Model, row.FaithfulCapacity, row.FixedCapacity)
		}
		if row.Issue == "" {
			t.Errorf("%s: missing root cause", row.Model)
		}
	}
	if res.LightSANsJITSupported {
		t.Errorf("LightSANs must not be JIT-compilable")
	}
	if !strings.Contains(res.Render(), "lightsans") {
		t.Errorf("render broken")
	}
}

func TestDefaultConfigsMatchPaper(t *testing.T) {
	f2 := DefaultFig2Config()
	if f2.TargetRate != 1000 || f2.Duration != 10*time.Minute {
		t.Errorf("Fig2 defaults: %+v", f2)
	}
	f3 := DefaultFig3Config()
	if len(f3.CatalogSizes) != 4 || f3.CatalogSizes[3] != 10_000_000 {
		t.Errorf("Fig3 catalog sizes: %v", f3.CatalogSizes)
	}
	if len(f3.Models) != 10 {
		t.Errorf("Fig3 must cover all ten models")
	}
	f4 := DefaultFig4Config()
	if len(f4.Scenarios) != 5 || !f4.Faithful {
		t.Errorf("Fig4 defaults: %+v", f4)
	}
	t1 := DefaultTable1Config()
	if len(t1.Models) != 6 {
		t.Errorf("Table1 must exclude the four broken models: %v", t1.Models)
	}
	v := DefaultValidationConfig()
	if v.RealClicks == 0 || v.Model == "" {
		t.Errorf("Validation defaults degenerate: %+v", v)
	}
	is := DefaultIssuesConfig()
	if is.CatalogSize != 1_000_000 || is.SLO != costmodel.LatencySLO {
		t.Errorf("Issues defaults: %+v", is)
	}
	rc := DefaultRuntimeCmpConfig()
	if len(rc.Models) != 10 || len(rc.CatalogSizes) != 2 {
		t.Errorf("RuntimeCmp defaults: %+v", rc)
	}
	for _, m := range t1.Models {
		for _, b := range model.BrokenModels() {
			if m == b {
				t.Errorf("broken model %s in Table1 defaults", m)
			}
		}
	}
}

func TestRuntimeComparisonShape(t *testing.T) {
	res, err := RuntimeComparison(RuntimeCmpConfig{
		Models:       []string{"sasrec", "lightsans", "srgnn"},
		CatalogSizes: []int{10_000, 1_000_000},
		Devices:      []string{"cpu", "gpu-t4"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 models × 2 catalogs × 2 devices × 3 runtimes.
	if len(res.Rows) != 36 {
		t.Fatalf("rows = %d, want 36", len(res.Rows))
	}
	find := func(m string, c int, d, rt string) RuntimeCmpRow {
		for _, r := range res.Rows {
			if r.Model == m && r.CatalogSize == c && r.Device == d && r.Runtime == rt {
				return r
			}
		}
		t.Fatalf("missing row %s/%d/%s/%s", m, c, d, rt)
		return RuntimeCmpRow{}
	}
	// TensorRT has no CPU backend and rejects dynamic models on GPU.
	if find("sasrec", 10_000, "cpu", "tensorrt").Supported {
		t.Errorf("tensorrt must not support CPU")
	}
	if find("srgnn", 10_000, "gpu-t4", "tensorrt").Supported {
		t.Errorf("tensorrt must reject srgnn (dynamic graph)")
	}
	if find("lightsans", 10_000, "cpu", "onnx").Supported {
		t.Errorf("onnx must reject lightsans")
	}
	// ONNX beats TorchScript on CPU; TensorRT beats both on GPU (small C).
	tsCPU := find("sasrec", 1_000_000, "cpu", "torchscript").Serial
	onnxCPU := find("sasrec", 1_000_000, "cpu", "onnx").Serial
	if onnxCPU >= tsCPU {
		t.Errorf("onnx cpu %v not faster than torchscript %v", onnxCPU, tsCPU)
	}
	tsGPU := find("sasrec", 10_000, "gpu-t4", "torchscript").Serial
	trtGPU := find("sasrec", 10_000, "gpu-t4", "tensorrt").Serial
	if trtGPU >= tsGPU {
		t.Errorf("tensorrt %v not faster than torchscript %v at small C", trtGPU, tsGPU)
	}
	if !strings.Contains(res.Render(), "unsupported") {
		t.Errorf("render must show support gaps")
	}
}

// TestFig4BrokenModelsFail reproduces the §III-C observation in the
// end-to-end results: the faithful (RecBole-like) SR-GNN cannot handle a
// mid-size scenario on GPU where a healthy model passes easily.
func TestFig4BrokenModelsFail(t *testing.T) {
	cfg := Fig4Config{
		Scenarios: []costmodel.Scenario{
			{Name: "Fashion", CatalogSize: 1_000_000, TargetRate: 500},
		},
		Models:    []string{"srgnn", "stamp"},
		Instances: []string{"gpu-t4"},
		Duration:  15 * time.Second,
		Faithful:  true,
		Seed:      1,
	}
	res, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	verdicts := map[string]bool{}
	for _, r := range res.Rows {
		verdicts[r.Model] = r.MeetsSLO
	}
	if !verdicts["stamp"] {
		t.Errorf("healthy STAMP must handle Fashion on a T4")
	}
	if verdicts["srgnn"] {
		t.Errorf("faithful SR-GNN must fail Fashion on a T4 (host transfers)")
	}
}

// TestFig4PlatformOnlyA100: in the end-to-end sweep at C=2e7, the T4 row
// fails while three A100s pass (Table I platform row seen through Fig 4).
func TestFig4PlatformReplicas(t *testing.T) {
	run := func(instance string, replicas int) bool {
		ms, err := core.RunSim(core.Spec{
			Name:        "platform-check",
			Models:      []string{"gru4rec"},
			Instances:   []string{instance},
			CatalogSize: 20_000_000,
			JIT:         true,
			TargetRate:  1000,
			Duration:    20 * time.Second,
			Replicas:    replicas,
			Seed:        1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ms[0].MeetsSLO
	}
	if run("gpu-t4", 3) {
		t.Errorf("3 T4s must fail the platform scenario")
	}
	if !run("gpu-a100", 3) {
		t.Errorf("3 A100s must handle the platform scenario")
	}
}

func TestAutoscaleComparison(t *testing.T) {
	cfg := DefaultAutoscaleCmpConfig()
	cfg.Days = 1
	res, err := AutoscaleComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SavingFraction < 0.15 {
		t.Errorf("autoscaler saved only %.0f%%", res.SavingFraction*100)
	}
	if res.AutoMonthlyUSD >= res.StaticMonthlyUSD {
		t.Errorf("autoscaled cost $%.0f not below static $%.0f", res.AutoMonthlyUSD, res.StaticMonthlyUSD)
	}
	if res.Auto.Recorder.Errors() > res.Auto.Sent/100 {
		t.Errorf("autoscaler error rate too high: %d/%d", res.Auto.Recorder.Errors(), res.Auto.Sent)
	}
	if !strings.Contains(res.Render(), "saving") {
		t.Errorf("render broken")
	}
	// Invalid config rejected.
	if _, err := AutoscaleComparison(AutoscaleCmpConfig{}); err == nil {
		t.Errorf("zero config accepted")
	}
}

func TestChaosComparison(t *testing.T) {
	cfg := DefaultChaosCmpConfig()
	cfg.TargetRate = 400
	cfg.Duration = 15 * time.Second
	res, err := ChaosComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("want 5 scenario rows, got %d", len(res.Rows))
	}
	byName := map[string]ChaosRow{}
	for _, row := range res.Rows {
		byName[row.Scenario] = row
		if row.Sent == 0 {
			t.Errorf("scenario %s issued no requests", row.Scenario)
		}
	}
	if base := byName["baseline"]; base.ErrorRate != 0 {
		t.Errorf("fault-free baseline has error rate %.4f", base.ErrorRate)
	}
	crash := byName["pod-crash"]
	if crash.ErrorRate > 0.02 {
		t.Errorf("pod crash error rate %.4f exceeds 2%%", crash.ErrorRate)
	}
	if crash.TailErrorRate != 0 {
		t.Errorf("pod crash tail error rate %.4f: fleet never recovered", crash.TailErrorRate)
	}
	if crash.Outcomes.Retries == 0 && crash.Outcomes.Refused == 0 {
		t.Errorf("pod crash left no trace: %v", crash.Outcomes)
	}
	out := res.Render()
	for _, want := range []string{"pod-crash", "az-outage", "degraded%", "errors by kind"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	// Invalid config rejected.
	if _, err := ChaosComparison(ChaosCmpConfig{}); err == nil {
		t.Errorf("zero config accepted")
	}
}

func TestOverloadComparison(t *testing.T) {
	cfg := DefaultOverloadCmpConfig()
	// Downscale for test time: a bigger catalog means slower service, lower
	// capacity and far fewer simulated events; the overload physics (3×
	// capacity offered) is rate-invariant.
	cfg.CatalogSize = 1_000_000
	cfg.Duration = 30 * time.Second
	res, err := OverloadComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 3 {
		t.Fatalf("want 3 arms, got %d", len(res.Arms))
	}
	if res.Capacity <= 0 {
		t.Fatalf("capacity = %v", res.Capacity)
	}
	static, deadline, adaptive := res.Arm("static"), res.Arm("deadline"), res.Arm("adaptive")
	if static == nil || deadline == nil || adaptive == nil {
		t.Fatalf("missing arms: %+v", res.Arms)
	}
	// The headline claims: the hand-tuned static bound collapses under the
	// spike while the adaptive stack keeps goodput at capacity with the
	// admitted tail well inside the SLO.
	if static.GoodputFraction >= 0.5 {
		t.Errorf("static arm salvaged %.1f%% of capacity, want < 50%%", static.GoodputFraction*100)
	}
	if adaptive.GoodputFraction < 0.8 {
		t.Errorf("adaptive arm salvaged %.1f%% of capacity, want >= 80%%", adaptive.GoodputFraction*100)
	}
	if adaptive.Latency.P99 > 2*cfg.SLO {
		t.Errorf("adaptive admitted p99 %v exceeds 2×SLO %v", adaptive.Latency.P99, 2*cfg.SLO)
	}
	if adaptive.Limited == 0 {
		t.Errorf("adaptive arm never engaged the limiter: %+v", adaptive)
	}
	// Deadline propagation visibly fires, and expired work never reaches
	// the encoder: every encoder-forward span belongs to a served request.
	if deadline.DeadlineExpired == 0 {
		t.Errorf("deadline arm expired nothing under a 3× spike")
	}
	for _, a := range res.Arms {
		if a.Sent == 0 {
			t.Errorf("arm %s issued no requests", a.Name)
		}
		if a.EncoderSpans != a.ServedSpans {
			t.Errorf("arm %s: %d encoder spans vs %d served requests — dropped work reached the encoder",
				a.Name, a.EncoderSpans, a.ServedSpans)
		}
	}
	out := res.Render()
	for _, want := range []string{"static", "deadline", "adaptive", "goodput", "expired", "encoder spans"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	// Invalid config rejected.
	if _, err := OverloadComparison(OverloadCmpConfig{}); err == nil {
		t.Errorf("zero config accepted")
	}
}

func TestShardStudy(t *testing.T) {
	cfg := DefaultShardConfig()
	// Downscale for test time: the shape — exactness, monotone speedup,
	// hedging recovery — is scale-invariant.
	cfg.Catalogs = []int{100_000, 1_000_000}
	cfg.Requests = 150
	cfg.Gap = 60 * time.Millisecond
	cfg.LiveSessions = 10
	res, err := Shard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Identity) != len(cfg.ShardCounts) {
		t.Fatalf("want %d identity rows, got %d", len(cfg.ShardCounts), len(res.Identity))
	}
	for _, row := range res.Identity {
		if !row.Identical {
			t.Errorf("S=%d: sharded top-k diverged from unsharded", row.Shards)
		}
	}
	if len(res.Sweep) != len(cfg.Catalogs)*len(cfg.ShardCounts) {
		t.Fatalf("want %d sweep rows, got %d", len(cfg.Catalogs)*len(cfg.ShardCounts), len(res.Sweep))
	}
	// The acceptance criterion: on the largest catalog, p50 scatter→gather
	// wait improves monotonically with the shard count.
	largest := cfg.Catalogs[len(cfg.Catalogs)-1]
	prev := time.Duration(1 << 62)
	for _, row := range res.Sweep {
		if row.Catalog != largest {
			continue
		}
		if row.Wait.P50 <= 0 || row.Wait.P50 >= prev {
			t.Errorf("C=%d S=%d: p50 wait %v not below previous %v", row.Catalog, row.Shards, row.Wait.P50, prev)
		}
		prev = row.Wait.P50
		if row.Shards == 1 && row.Speedup != 1 {
			t.Errorf("S=1 speedup = %.2f, want 1.00", row.Speedup)
		}
		if row.Shards > 1 && row.Speedup <= 1 {
			t.Errorf("S=%d speedup = %.2f, want > 1", row.Shards, row.Speedup)
		}
	}
	if len(res.Hedge) != 3 {
		t.Fatalf("want 3 hedging arms, got %d", len(res.Hedge))
	}
	byArm := map[string]ShardHedgeRow{}
	for _, row := range res.Hedge {
		byArm[row.Arm] = row
	}
	hedged, unhedged := byArm["slow-shard hedged"], byArm["slow-shard unhedged"]
	if hedged.Latency.P99 >= unhedged.Latency.P99 {
		t.Errorf("hedged p99 %v not below unhedged %v", hedged.Latency.P99, unhedged.Latency.P99)
	}
	if hedged.Sent == 0 || hedged.Wins == 0 {
		t.Errorf("hedging never engaged: %+v", hedged)
	}
	if unhedged.Sent != 0 {
		t.Errorf("unhedged arm sent %d hedges", unhedged.Sent)
	}
	if len(res.Costs) != len(cfg.ShardCounts) {
		t.Fatalf("want %d cost rows, got %d", len(cfg.ShardCounts), len(res.Costs))
	}
	for _, row := range res.Costs {
		if !row.Option.Feasible {
			t.Errorf("S=%d: expected a feasible CPU option at C=%d", row.Shards, largest)
		}
	}
	out := res.Render()
	for _, want := range []string{"IDENTICAL", "speedup", "slow-shard hedged", "deployment options"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if _, err := Shard(ShardConfig{}); err == nil {
		t.Errorf("zero config accepted")
	}
}

func TestRolling(t *testing.T) {
	cfg := DefaultRollingConfig()
	// Small scale: 2 replicas, short run, the operation firing early enough
	// that the drained arm still covers the full swap.
	cfg.Replicas = 2
	cfg.TargetRate = 60
	cfg.Duration = 4 * time.Second
	cfg.OpAfter = time.Second
	res, err := Rolling(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 phase rows, got %d", len(res.Rows))
	}
	byPhase := map[string]RollingRow{}
	for _, row := range res.Rows {
		byPhase[row.Phase] = row
		if row.Sent == 0 {
			t.Errorf("phase %s issued no requests", row.Phase)
		}
		if row.TailErrorRate != 0 {
			t.Errorf("phase %s tail error rate %.4f: fleet never healed", row.Phase, row.TailErrorRate)
		}
	}
	// The headline: a drained rolling update loses nothing.
	if drained := byPhase["rolling-drained"]; drained.Errors != 0 {
		t.Errorf("drained rollout failed %d/%d requests", drained.Errors, drained.Sent)
	}
	if drained := byPhase["rolling-drained"]; drained.ForcedKills != 0 {
		t.Errorf("drained rollout forced %d kills", drained.ForcedKills)
	}
	// The drainless arm force-kills every old pod.
	if un := byPhase["rolling-undrained"]; un.ForcedKills != int64(cfg.Replicas) {
		t.Errorf("undrained rollout forced %d kills, want %d", un.ForcedKills, cfg.Replicas)
	}
	crash := byPhase["crash-supervised"]
	if crash.Restarts < 1 {
		t.Errorf("supervisor performed %d restarts, want >=1", crash.Restarts)
	}
	if crash.Restarts > 0 && crash.MTTR <= 0 {
		t.Errorf("restarts happened but MTTR = %v", crash.MTTR)
	}
	out := res.Render()
	for _, want := range []string{"rolling-drained", "rolling-undrained", "crash-supervised", "mttr", "errors by kind"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	// Invalid configs rejected: zero value, and a fleet too small to roll.
	if _, err := Rolling(context.Background(), RollingConfig{}); err == nil {
		t.Errorf("zero config accepted")
	}
	solo := DefaultRollingConfig()
	solo.Replicas = 1
	if _, err := Rolling(context.Background(), solo); err == nil {
		t.Errorf("single-replica rolling config accepted")
	}
}

// TestDeployStudy: the three release arms end as the safety story demands —
// a good re-train promotes, a latency regression rolls back with its blast
// radius confined to the canary slice, and a corrupted release quarantines
// without serving a single request.
func TestDeployStudy(t *testing.T) {
	cfg := DefaultDeployStudyConfig()
	cfg.TargetRate = 100
	cfg.Duration = 3 * time.Second
	cfg.RolloutAfter = 700 * time.Millisecond
	res, err := DeployStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 arm rows, got %d", len(res.Rows))
	}
	byArm := map[string]DeployRow{}
	for _, row := range res.Rows {
		byArm[row.Arm] = row
		if row.Sent == 0 {
			t.Errorf("arm %s issued no requests", row.Arm)
		}
	}
	good := byArm["good"]
	if !good.Promoted || good.Errors != 0 {
		t.Errorf("good arm promoted=%v errors=%d, want promoted with zero drops (%s)",
			good.Promoted, good.Errors, good.Reason)
	}
	regress := byArm["regress"]
	if !regress.RolledBack || regress.Promoted {
		t.Errorf("regress arm rolled_back=%v promoted=%v (%s)", regress.RolledBack, regress.Promoted, regress.Reason)
	}
	if !regress.StoreQuarantined {
		t.Error("rolled-back release not quarantined in the store")
	}
	// The bad release's blast radius is bounded by the canary slice: with 1
	// of 3 pods canaried for part of the run, nowhere near half the traffic.
	if regress.BlastRadius <= 0 || regress.BlastRadius > 0.5 {
		t.Errorf("regress blast radius %.3f outside (0, 0.5]", regress.BlastRadius)
	}
	corrupt := byArm["corrupted"]
	if !corrupt.Quarantined || corrupt.CanaryServed != 0 {
		t.Errorf("corrupted arm quarantined=%v served=%d, want quarantined with zero served (%s)",
			corrupt.Quarantined, corrupt.CanaryServed, corrupt.Reason)
	}
	if corrupt.VerifyFailures < 1 {
		t.Errorf("corrupted arm verify failures = %v, want >= 1", corrupt.VerifyFailures)
	}
	out := res.Render()
	for _, want := range []string{"good", "regress", "corrupted", "quarantine", "rollback", "stall-ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	m := res.Metrics()
	for _, key := range []string{"good/promoted", "good/stall_ratio", "regress/rolled_back",
		"regress/blast_radius", "corrupted/quarantined", "corrupted/bad_serve_fraction"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
	if m["corrupted/bad_serve_fraction"] != 0 {
		t.Errorf("corrupted arm served %.4f of traffic, want 0", m["corrupted/bad_serve_fraction"])
	}
	// Invalid config rejected: no baseline cohort left after the canary.
	bad := DefaultDeployStudyConfig()
	bad.Replicas = 1
	if _, err := DeployStudy(context.Background(), bad); err == nil {
		t.Errorf("canary-only fleet accepted")
	}
}

// TestBreakdownShape: the stage decomposition runs end to end, covers every
// cell of the sweep, and the per-stage p50 sum accounts for the end-to-end
// p50 within 10% — the acceptance bar for the trace instrumentation.
func TestBreakdownShape(t *testing.T) {
	// Catalogs large enough that the ~tens-of-µs of untraced per-request
	// overhead (mux dispatch, span bookkeeping) stays well under the 10% bar.
	cfg := BreakdownConfig{
		Models:       []string{"gru4rec", "stamp"},
		CatalogSizes: []int{20_000, 100_000},
		Requests:     40,
		Seed:         1,
	}
	res, err := Breakdown(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row.Stages) < 4 {
			t.Fatalf("%s: only %d stages traced", row.Model, len(row.Stages))
		}
		for _, st := range row.Stages {
			if st.Stage == "batch-assembly" {
				t.Fatalf("%s: batch-assembly recorded on the unbatched path", row.Model)
			}
		}
		if row.TotalP50 <= 0 || row.StageSumP50 <= 0 {
			t.Fatalf("%s: empty quantiles: %+v", row.Model, row)
		}
		if row.ReconcileErr > 0.10 {
			t.Fatalf("%s C=%d: stage sum %v vs e2e %v — %.1f%% unaccounted (>10%%)",
				row.Model, row.CatalogSize, row.StageSumP50, row.TotalP50, 100*row.ReconcileErr)
		}
	}
	out := res.Render()
	for _, want := range []string{"mips-topk", "encoder-forward", "stage-sum p50"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestTenantComparison checks the multi-tenant isolation contract: under
// tenant A's 5× flash crowd, B's served p99 stays within its SLO and
// within 1.25× the quiet baseline behind WDRR, the shared-queue baseline
// violates the same contract, and served shares under saturation track
// the 3:1 weights within ±10%.
func TestTenantComparison(t *testing.T) {
	res, err := TenantComparison(DefaultTenantCmpConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 4 {
		t.Fatalf("want 4 arms, got %d", len(res.Arms))
	}
	cfg := DefaultTenantCmpConfig()
	if res.QuietP99 <= 0 || res.IsolatedP99 <= 0 || res.ExposedP99 <= 0 {
		t.Fatalf("missing victim quantiles: %+v", res)
	}
	if !res.IsolationMeetsSLO {
		t.Errorf("WDRR victim p99 %v (quiet %v, SLO %v) — isolation failed",
			res.IsolatedP99, res.QuietP99, cfg.SLO)
	}
	if res.IsolatedP99 > cfg.SLO {
		t.Errorf("WDRR victim p99 %v exceeds SLO %v", res.IsolatedP99, cfg.SLO)
	}
	if float64(res.IsolatedP99) > 1.25*float64(res.QuietP99) {
		t.Errorf("WDRR victim p99 %v exceeds 1.25× quiet %v", res.IsolatedP99, res.QuietP99)
	}
	if !res.BaselineViolates {
		t.Errorf("shared-queue victim p99 %v — baseline should break the SLO contract", res.ExposedP99)
	}
	if res.ExposedP99 <= cfg.SLO {
		t.Errorf("shared-queue victim p99 %v within SLO %v — crowd too weak to prove anything", res.ExposedP99, cfg.SLO)
	}
	// WDRR shares track the configured 3:1 weights within ±10%.
	if res.ShareErr > 0.10 {
		t.Errorf("served share A = %.3f, want 0.75 ± 0.10", res.ShareA)
	}
	// The crowd really saturates: tenant A sheds in the wdrr arm, and the
	// fairness arm sheds on both sides.
	wdrr := res.Arm("wdrr")
	if wdrr.Tenant("a").Shed == 0 {
		t.Errorf("flash crowd never hit the queue bound: %+v", wdrr.Tenant("a"))
	}
	if wdrr.Tenant("b").GoodputFraction() < 0.99 {
		t.Errorf("victim goodput %.3f under WDRR, want ~1", wdrr.Tenant("b").GoodputFraction())
	}
	fair := res.Arm("fairness")
	if fair.Tenant("a").Shed == 0 || fair.Tenant("b").Shed == 0 {
		t.Errorf("fairness arm not saturated: %+v", fair.Tenants)
	}
	// Scheduling metrics carry the stage marker for drift attribution.
	m := res.Metrics()
	for _, k := range []string{
		"wdrr/tenant=b/latency/p99_ms", "shared/tenant=b/latency/p99_ms",
		"wdrr/isolation_meets_slo", "shared/baseline_violates",
		"wdrr/stage=sched-wait/p99_ms", "fairness/tenant=a/goodput_fraction",
		"fairness/share_a",
	} {
		if _, ok := m[k]; !ok {
			t.Errorf("metric %q missing (have %v)", k, sortedKeys(m))
		}
	}
	if m["wdrr/isolation_meets_slo"] != 1 || m["shared/baseline_violates"] != 1 {
		t.Errorf("headline verdicts: %v / %v", m["wdrr/isolation_meets_slo"], m["shared/baseline_violates"])
	}
	out := res.Render()
	for _, want := range []string{"wdrr", "shared", "fairness", "isolation meets SLO: true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
