package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"etude/internal/httpapi"
	"etude/internal/model"
	"etude/internal/powerlaw"
	"etude/internal/server"
	"etude/internal/trace"
)

// BreakdownConfig controls the per-stage latency decomposition experiment:
// where inside the serving path does a request's time actually go, per model
// and per catalog size?
type BreakdownConfig struct {
	// Models to decompose (default: gru4rec, sasrec, stamp — a recurrent, a
	// self-attentive and an attention/memory architecture).
	Models []string
	// CatalogSizes to sweep. The split shifts with C: the encoder is
	// catalog-independent while the MIPS top-k scan grows linearly.
	CatalogSizes []int
	// Requests is the number of serial traced requests per cell.
	Requests int
	// AlphaLength shapes the session lengths (bol.com marginals).
	AlphaLength float64
	// Seed drives session sampling.
	Seed int64
}

// DefaultBreakdownConfig returns a three-model, two-catalog sweep.
func DefaultBreakdownConfig() BreakdownConfig {
	return BreakdownConfig{
		Models:       []string{"gru4rec", "sasrec", "stamp"},
		CatalogSizes: []int{10_000, 100_000},
		Requests:     200,
		AlphaLength:  2.2,
		Seed:         1,
	}
}

// BreakdownStage is one stage's latency summary within a cell.
type BreakdownStage struct {
	Stage string        `json:"stage"`
	Count int64         `json:"count"`
	P50   time.Duration `json:"p50"`
	P99   time.Duration `json:"p99"`
}

// BreakdownRow is one model × catalog cell: per-stage quantiles plus the
// reconciliation of the stage sum against the end-to-end latency.
type BreakdownRow struct {
	Model       string           `json:"model"`
	CatalogSize int              `json:"catalog_size"`
	Stages      []BreakdownStage `json:"stages"`
	TotalP50    time.Duration    `json:"total_p50"`
	TotalP99    time.Duration    `json:"total_p99"`
	// StageSumP50 is the sum of the per-stage p50s. On a serial, unbatched
	// drive it must reconcile with TotalP50: the stages tile the request.
	StageSumP50 time.Duration `json:"stage_sum_p50"`
	// ReconcileErr is |StageSumP50/TotalP50 − 1| — how much of the
	// end-to-end latency the trace decomposition fails to account for.
	ReconcileErr float64 `json:"reconcile_err"`
}

// BreakdownResult is the full sweep.
type BreakdownResult struct {
	Rows []BreakdownRow `json:"rows"`
}

// Breakdown runs the experiment: for each model × catalog size, a traced
// eager-mode server (JIT fuses encoder and scan into one opaque call, so the
// decomposition runs eager) answers Requests serial predictions through the
// full HTTP handler, and the tracer's per-stage histograms are summarised.
func Breakdown(cfg BreakdownConfig) (*BreakdownResult, error) {
	if len(cfg.Models) == 0 {
		cfg.Models = DefaultBreakdownConfig().Models
	}
	if len(cfg.CatalogSizes) == 0 {
		cfg.CatalogSizes = DefaultBreakdownConfig().CatalogSizes
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 200
	}
	if cfg.AlphaLength == 0 {
		cfg.AlphaLength = 2.2
	}
	res := &BreakdownResult{}
	for _, name := range cfg.Models {
		for _, c := range cfg.CatalogSizes {
			row, err := breakdownCell(cfg, name, c)
			if err != nil {
				return nil, fmt.Errorf("experiments: breakdown %s/C=%d: %w", name, c, err)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func breakdownCell(cfg BreakdownConfig, name string, catalog int) (BreakdownRow, error) {
	m, err := model.New(name, model.Config{CatalogSize: catalog, Seed: cfg.Seed})
	if err != nil {
		return BreakdownRow{}, err
	}
	tr := trace.New(trace.Options{})
	srv, err := server.New(m, server.Options{Workers: 1, JIT: false, Tracer: tr})
	if err != nil {
		return BreakdownRow{}, err
	}
	defer srv.Close()
	handler := srv.Handler()

	lengths, err := powerlaw.New(cfg.AlphaLength, 1)
	if err != nil {
		return BreakdownRow{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.Requests; i++ {
		session := sampleSession(rng, lengths, catalog)
		body, err := json.Marshal(httpapi.PredictRequest{
			SessionID: int64(i),
			RequestID: fmt.Sprintf("bd-%d", i),
			Items:     session,
		})
		if err != nil {
			return BreakdownRow{}, err
		}
		req := httptest.NewRequest(http.MethodPost, httpapi.PredictPath, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return BreakdownRow{}, fmt.Errorf("request %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}

	row := BreakdownRow{Model: name, CatalogSize: catalog}
	for s := trace.Stage(0); s < trace.NumStages; s++ {
		snap := tr.StageSnapshot(s)
		if snap.Count == 0 {
			continue // e.g. batch-assembly never fires on the unbatched path
		}
		row.Stages = append(row.Stages, BreakdownStage{
			Stage: s.String(), Count: snap.Count, P50: snap.P50, P99: snap.P99,
		})
		row.StageSumP50 += snap.P50
	}
	total := tr.TotalSnapshot()
	row.TotalP50, row.TotalP99 = total.P50, total.P99
	if total.P50 > 0 {
		row.ReconcileErr = math.Abs(float64(row.StageSumP50)/float64(total.P50) - 1)
	}
	return row, nil
}

// Render prints one stage table per cell with the stage-sum vs end-to-end
// reconciliation line.
func (r *BreakdownResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "breakdown — where a request's time goes, per stage (serial, eager, unbatched)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "\n%s  C=%d\n", row.Model, row.CatalogSize)
		fmt.Fprintf(&b, "  %-18s %8s %14s %14s\n", "stage", "count", "p50", "p99")
		for _, st := range row.Stages {
			fmt.Fprintf(&b, "  %-18s %8d %14s %14s\n",
				st.Stage, st.Count, st.P50.Round(time.Microsecond), st.P99.Round(time.Microsecond))
		}
		fmt.Fprintf(&b, "  %-18s %8s %14s %14s\n", "end-to-end", "", row.TotalP50.Round(time.Microsecond), row.TotalP99.Round(time.Microsecond))
		fmt.Fprintf(&b, "  stage-sum p50 %s vs e2e p50 %s (unaccounted %.1f%%)\n",
			row.StageSumP50.Round(time.Microsecond), row.TotalP50.Round(time.Microsecond), 100*row.ReconcileErr)
	}
	return b.String()
}

// Metrics emits the stage decomposition. Breakdown is wall-clock, so the
// portable keys are the dimensionless reconciliation error and per-stage
// latency shares; absolute stage latencies ride along (with `stage=`
// markers) for same-host drift attribution.
func (r *BreakdownResult) Metrics() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.Rows {
		pre := fmt.Sprintf("%s/c%d", keyify(row.Model), row.CatalogSize)
		m[pre+"/total/p50_ms"] = msF(row.TotalP50)
		m[pre+"/total/p99_ms"] = msF(row.TotalP99)
		m[pre+"/reconcile_err"] = row.ReconcileErr
		for _, st := range row.Stages {
			spre := pre + "/stage=" + keyify(st.Stage)
			m[spre+"/p50_ms"] = msF(st.P50)
			m[spre+"/p99_ms"] = msF(st.P99)
			m[spre+"/p50_share"] = ratio(msF(st.P50), msF(row.StageSumP50))
		}
	}
	return m
}
