package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"etude/internal/device"
	"etude/internal/metrics"
	"etude/internal/model"
	"etude/internal/powerlaw"
)

// Fig3Mode selects how latencies are obtained.
type Fig3Mode int

const (
	// Fig3Modeled computes latencies from the device cost models —
	// instant, covers accelerators, used for the full paper sweep.
	Fig3Modeled Fig3Mode = iota
	// Fig3Measured executes the real Go models serially on the CPU and
	// measures wall time. Only valid for the "cpu" device.
	Fig3Measured
)

// Fig3Config controls the micro-benchmark.
type Fig3Config struct {
	// Models to include (default: all ten).
	Models []string
	// CatalogSizes to sweep (paper: 1e4, 1e5, 1e6, 1e7).
	CatalogSizes []int
	// Devices to include (paper: cpu and gpu-t4).
	Devices []string
	// Requests is the number of serial requests per cell whose p90 is
	// reported.
	Requests int
	// Mode selects modeled vs measured latencies.
	Mode Fig3Mode
	// AlphaLength shapes the session lengths (bol.com marginals).
	AlphaLength float64
	// Seed drives session sampling and weights.
	Seed int64
}

// DefaultFig3Config returns the paper-scale sweep in modeled mode.
func DefaultFig3Config() Fig3Config {
	return Fig3Config{
		Models:       model.Names(),
		CatalogSizes: []int{10_000, 100_000, 1_000_000, 10_000_000},
		Devices:      []string{"cpu", "gpu-t4"},
		Requests:     200,
		Mode:         Fig3Modeled,
		AlphaLength:  2.2,
		Seed:         1,
	}
}

// Fig3Row is one point of the micro-benchmark: p90 serial prediction
// latency of a model at a catalog size on a device in one execution mode.
type Fig3Row struct {
	Model       string        `json:"model"`
	CatalogSize int           `json:"catalog_size"`
	Device      string        `json:"device"`
	Exec        string        `json:"exec"` // "eager" or "jit"
	P90         time.Duration `json:"p90"`
	// JITSupported is false for LightSANs (dynamic code paths); its "jit"
	// rows then carry the eager latency, as PyTorch falls back.
	JITSupported bool `json:"jit_supported"`
}

// Fig3Result is the full sweep.
type Fig3Result struct {
	Rows []Fig3Row `json:"rows"`
}

// Fig3 runs the micro-benchmark: requests are sent serially (one after
// another), and the p90 prediction latency is reported per cell.
func Fig3(cfg Fig3Config) (*Fig3Result, error) {
	if len(cfg.Models) == 0 {
		cfg.Models = model.Names()
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 200
	}
	if cfg.AlphaLength == 0 {
		cfg.AlphaLength = 2.2
	}
	res := &Fig3Result{}
	for _, name := range cfg.Models {
		for _, c := range cfg.CatalogSizes {
			for _, dev := range cfg.Devices {
				spec, err := device.ByName(dev)
				if err != nil {
					return nil, err
				}
				if cfg.Mode == Fig3Measured && spec.Kind != device.KindCPU {
					return nil, fmt.Errorf("experiments: measured mode supports only cpu, got %s", dev)
				}
				for _, jit := range []bool{false, true} {
					row, err := fig3Cell(cfg, name, c, spec, jit)
					if err != nil {
						return nil, fmt.Errorf("experiments: fig3 %s/C=%d/%s: %w", name, c, dev, err)
					}
					res.Rows = append(res.Rows, row)
				}
			}
		}
	}
	return res, nil
}

func fig3Cell(cfg Fig3Config, name string, catalog int, spec device.Spec, jit bool) (Fig3Row, error) {
	mcfg := model.Config{CatalogSize: catalog, Seed: cfg.Seed}
	exec := "eager"
	if jit {
		exec = "jit"
	}
	jitSupported := name != "lightsans"
	effectiveJIT := jit && jitSupported

	lengths, err := powerlaw.New(cfg.AlphaLength, 1)
	if err != nil {
		return Fig3Row{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var p90 time.Duration
	switch cfg.Mode {
	case Fig3Modeled:
		hist := metrics.NewHistogram()
		for i := 0; i < cfg.Requests; i++ {
			l := lengths.SampleIntCapped(rng, 50)
			c, err := model.EstimateCost(name, mcfg, l)
			if err != nil {
				return Fig3Row{}, err
			}
			hist.Record(spec.SerialInference(c, effectiveJIT))
		}
		p90 = hist.Quantile(0.9)
	case Fig3Measured:
		m, err := model.New(name, mcfg)
		if err != nil {
			return Fig3Row{}, err
		}
		predict := m.Recommend
		if effectiveJIT {
			if jc, ok := m.(model.JITCompilable); ok {
				predict = jc.CompiledRecommend()
			}
		}
		hist := metrics.NewHistogram()
		for i := 0; i < cfg.Requests; i++ {
			session := sampleSession(rng, lengths, catalog)
			start := time.Now()
			predict(session)
			hist.Record(time.Since(start))
		}
		p90 = hist.Quantile(0.9)
	default:
		return Fig3Row{}, fmt.Errorf("experiments: unknown fig3 mode %d", cfg.Mode)
	}
	return Fig3Row{
		Model:        name,
		CatalogSize:  catalog,
		Device:       spec.Name,
		Exec:         exec,
		P90:          p90,
		JITSupported: jitSupported,
	}, nil
}

func sampleSession(rng *rand.Rand, lengths powerlaw.Dist, catalog int) []int64 {
	l := lengths.SampleIntCapped(rng, 50)
	s := make([]int64, l)
	for i := range s {
		s[i] = rng.Int63n(int64(catalog))
	}
	return s
}

// Render prints the sweep grouped by model, catalog size ascending —
// the log-log series of Fig 3.
func (r *Fig3Result) Render() string {
	rows := append([]Fig3Row(nil), r.Rows...)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Model != rows[j].Model {
			return rows[i].Model < rows[j].Model
		}
		if rows[i].CatalogSize != rows[j].CatalogSize {
			return rows[i].CatalogSize < rows[j].CatalogSize
		}
		if rows[i].Device != rows[j].Device {
			return rows[i].Device < rows[j].Device
		}
		return rows[i].Exec < rows[j].Exec
	})
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 3 — micro-benchmark: serial p90 prediction latency\n")
	fmt.Fprintf(&b, "%-10s %12s %-9s %-6s %14s\n", "model", "catalog", "device", "exec", "p90")
	for _, row := range rows {
		note := ""
		if row.Exec == "jit" && !row.JITSupported {
			note = "  (not JIT-able: eager fallback)"
		}
		fmt.Fprintf(&b, "%-10s %12d %-9s %-6s %14s%s\n",
			row.Model, row.CatalogSize, row.Device, row.Exec, row.P90.Round(time.Microsecond), note)
	}
	return b.String()
}

// Metrics emits one p90 per (model, catalog, device, exec) cell. Modeled
// mode (the default) is analytic, hence deterministic across machines.
func (r *Fig3Result) Metrics() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.Rows {
		pre := fmt.Sprintf("%s/c%d/%s/%s", keyify(row.Model), row.CatalogSize, keyify(row.Device), row.Exec)
		m[pre+"/p90_ms"] = msF(row.P90)
		m[pre+"/jit_supported"] = boolMetric(row.JITSupported)
	}
	return m
}
