package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"etude/internal/device"
	"etude/internal/metrics"
	"etude/internal/model"
	"etude/internal/sched"
	"etude/internal/sim"
	"etude/internal/trace"
	"etude/internal/workload"
)

// TenantCmpConfig controls the multi-tenant isolation study: tenant A's
// flash crowd against tenant B's steady interactive traffic, served either
// through the WDRR scheduler (per-tenant queues, weighted shares) or a
// single shared queue (the no-scheduler baseline), plus a saturation arm
// that measures whether served shares track the configured weights.
type TenantCmpConfig struct {
	// Device is the instance type (default gpu-t4 with JIT).
	Device device.Spec
	JIT    bool
	// Model and Catalog shape the served model. The default 100k catalog
	// keeps the full-batch service time ~1ms on gpu-t4, so victim latency
	// reflects scheduling, not raw device occupancy.
	Model   string
	Catalog int
	// WeightA/WeightB are the tenants' WDRR weights.
	WeightA, WeightB int
	// VictimRate is tenant B's steady arrival rate (req/s); CrowdRate is
	// tenant A's base rate, multiplied by CrowdFactor during
	// [CrowdStart, CrowdStart+CrowdLen) — the flash crowd.
	VictimRate  float64
	CrowdRate   float64
	CrowdFactor float64
	CrowdStart  time.Duration
	CrowdLen    time.Duration
	// Horizon is each comparison arm's run length on the sim clock.
	Horizon time.Duration
	// SLO is tenant B's admitted-latency p99 target.
	SLO time.Duration
	// Scheduler shape shared by every arm.
	MaxBatch   int
	FlushEvery time.Duration
	MaxQueue   int
	// FairnessRate is the per-tenant offered rate of the saturation arm
	// (both tenants offer it simultaneously) over FairnessHorizon.
	FairnessRate    float64
	FairnessHorizon time.Duration
	Seed            int64
}

// DefaultTenantCmpConfig returns the headline study: gru4rec on gpu-t4
// over a 100k catalog; tenant B at 1,000 req/s with a 10ms p99 SLO;
// tenant A at 8,000 req/s spiking 5× (to ~1.25× device capacity) for a
// third of the run; weights 3:1.
func DefaultTenantCmpConfig() TenantCmpConfig {
	return TenantCmpConfig{
		Device:          device.GPUT4(),
		JIT:             true,
		Model:           "gru4rec",
		Catalog:         100_000,
		WeightA:         3,
		WeightB:         1,
		VictimRate:      1_000,
		CrowdRate:       8_000,
		CrowdFactor:     5,
		CrowdStart:      100 * time.Millisecond,
		CrowdLen:        100 * time.Millisecond,
		Horizon:         300 * time.Millisecond,
		SLO:             10 * time.Millisecond,
		MaxBatch:        32,
		FlushEvery:      2 * time.Millisecond,
		MaxQueue:        512,
		FairnessRate:    30_000,
		FairnessHorizon: 200 * time.Millisecond,
		Seed:            1,
	}
}

// TenantRow is one tenant's outcome within one arm.
type TenantRow struct {
	Tenant string `json:"tenant"`
	Weight int    `json:"weight"`
	Sent   int    `json:"sent"`
	Served int    `json:"served"`
	Shed   int    `json:"shed"`
	// Expired counts deadline misses the scheduler dropped at assembly.
	Expired int `json:"expired"`
	// Latency summarises the tenant's served requests.
	Latency metrics.Snapshot `json:"latency"`
}

// GoodputFraction is the tenant's served/sent ratio.
func (t TenantRow) GoodputFraction() float64 {
	return ratio(float64(t.Served), float64(t.Sent))
}

// TenantArm is one scheduling policy's outcome under the flash crowd.
type TenantArm struct {
	// Arm names the cell: "quiet" (no crowd, WDRR), "wdrr" (crowd, WDRR),
	// "shared" (crowd, single shared queue), "fairness" (saturation).
	Arm     string      `json:"arm"`
	Tenants []TenantRow `json:"tenants"`
	Flushes int64       `json:"flushes"`
	// SchedWait is the enqueue→flush stage distribution of the arm.
	SchedWait metrics.Snapshot `json:"sched_wait"`
}

// Tenant finds one tenant's row.
func (a *TenantArm) Tenant(name string) *TenantRow {
	for i := range a.Tenants {
		if a.Tenants[i].Tenant == name {
			return &a.Tenants[i]
		}
	}
	return nil
}

// TenantCmpResult aggregates the four arms.
type TenantCmpResult struct {
	Device  string        `json:"device"`
	Model   string        `json:"model"`
	Catalog int           `json:"catalog"`
	SLO     time.Duration `json:"slo"`
	Arms    []TenantArm   `json:"arms"`
	// QuietP99/IsolatedP99/ExposedP99 are tenant B's served p99 without
	// the crowd, with the crowd behind WDRR, and with the crowd in a
	// shared queue.
	QuietP99    time.Duration `json:"quiet_p99"`
	IsolatedP99 time.Duration `json:"isolated_p99"`
	ExposedP99  time.Duration `json:"exposed_p99"`
	// IsolationMeetsSLO is the headline claim: under A's flash crowd,
	// B's served p99 stays within the SLO and within 1.25× its quiet
	// baseline.
	IsolationMeetsSLO bool `json:"isolation_meets_slo"`
	// BaselineViolates records that the shared queue breaks the same
	// contract — the scheduler is necessary, not incidental.
	BaselineViolates bool `json:"baseline_violates"`
	// ShareA is tenant A's served share in the saturation arm; ShareErr
	// its absolute error against the configured weight fraction.
	ShareA   float64 `json:"share_a"`
	ShareErr float64 `json:"share_err"`
}

// Arm finds one arm by name.
func (r *TenantCmpResult) Arm(name string) *TenantArm {
	for i := range r.Arms {
		if r.Arms[i].Arm == name {
			return &r.Arms[i]
		}
	}
	return nil
}

// TenantComparison runs the study. Every arm is a deterministic sim run:
// Poisson arrivals come from seeded thinning (internal/workload), service
// from the analytic device cost model, scheduling from the very sched.Core
// the live server runs.
func TenantComparison(cfg TenantCmpConfig) (*TenantCmpResult, error) {
	if cfg.Model == "" || cfg.Horizon <= 0 || cfg.VictimRate <= 0 || cfg.CrowdRate <= 0 {
		return nil, fmt.Errorf("experiments: invalid tenant config %+v", cfg)
	}
	res := &TenantCmpResult{
		Device: cfg.Device.Name, Model: cfg.Model, Catalog: cfg.Catalog, SLO: cfg.SLO,
	}

	crowdSchedule := func(flash bool) workload.RateSchedule {
		base := workload.ConstantRate(cfg.CrowdRate)
		if !flash {
			return base
		}
		return workload.FlashCrowd{Base: base, Start: cfg.CrowdStart, Length: cfg.CrowdLen, Factor: cfg.CrowdFactor}
	}

	for _, arm := range []struct {
		name   string
		flash  bool
		shared bool
	}{
		{"quiet", false, false},
		{"wdrr", true, false},
		{"shared", true, true},
	} {
		row, err := runTenantArm(cfg, arm.name, map[string]workload.RateSchedule{
			"a": crowdSchedule(arm.flash),
			"b": workload.ConstantRate(cfg.VictimRate),
		}, cfg.Horizon, arm.shared)
		if err != nil {
			return nil, fmt.Errorf("experiments: tenant arm %s: %w", arm.name, err)
		}
		res.Arms = append(res.Arms, *row)
	}

	fair, err := runTenantArm(cfg, "fairness", map[string]workload.RateSchedule{
		"a": workload.ConstantRate(cfg.FairnessRate),
		"b": workload.ConstantRate(cfg.FairnessRate),
	}, cfg.FairnessHorizon, false)
	if err != nil {
		return nil, fmt.Errorf("experiments: tenant arm fairness: %w", err)
	}
	res.Arms = append(res.Arms, *fair)

	victim := func(arm string) time.Duration {
		if a := res.Arm(arm); a != nil {
			if t := a.Tenant("b"); t != nil {
				return t.Latency.P99
			}
		}
		return 0
	}
	res.QuietP99 = victim("quiet")
	res.IsolatedP99 = victim("wdrr")
	res.ExposedP99 = victim("shared")
	withinSLO := func(p99 time.Duration) bool {
		return p99 > 0 && p99 <= cfg.SLO && float64(p99) <= 1.25*float64(res.QuietP99)
	}
	res.IsolationMeetsSLO = withinSLO(res.IsolatedP99)
	res.BaselineViolates = !withinSLO(res.ExposedP99)

	servedA := float64(fair.Tenant("a").Served)
	servedB := float64(fair.Tenant("b").Served)
	res.ShareA = ratio(servedA, servedA+servedB)
	wantA := float64(cfg.WeightA) / float64(cfg.WeightA+cfg.WeightB)
	res.ShareErr = res.ShareA - wantA
	if res.ShareErr < 0 {
		res.ShareErr = -res.ShareErr
	}
	return res, nil
}

// runTenantArm drives one scheduler-fronted instance with per-tenant
// Poisson arrival streams for the given horizon. shared collapses every
// tenant into one lazily-created queue — the no-scheduler baseline.
func runTenantArm(cfg TenantCmpConfig, name string, offered map[string]workload.RateSchedule, horizon time.Duration, shared bool) (*TenantArm, error) {
	eng := sim.NewEngine()
	scfg := sched.Config{
		Tenants: []sched.TenantConfig{
			{Name: "a", Weight: cfg.WeightA},
			{Name: "b", Weight: cfg.WeightB},
		},
		MaxBatch:   cfg.MaxBatch,
		FlushEvery: cfg.FlushEvery,
		MaxQueue:   cfg.MaxQueue,
	}
	if shared {
		scfg.Tenants = nil
	}
	in, err := sim.NewSchedInstance(eng, cfg.Device, cfg.Model,
		model.Config{CatalogSize: cfg.Catalog, Seed: cfg.Seed}, cfg.JIT, scfg)
	if err != nil {
		return nil, err
	}
	tr := trace.New(trace.Options{Clock: eng.Now})
	in.SetTracer(tr)

	arm := &TenantArm{Arm: name}
	type tally struct {
		sent, served, shed, expired int
		lat                         *metrics.Histogram
	}
	tallies := map[string]*tally{}
	tenants := make([]string, 0, len(offered))
	for t := range offered {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	seed := cfg.Seed
	for _, tenant := range tenants {
		seed++
		times, err := workload.Times(offered[tenant], seed, horizon)
		if err != nil {
			return nil, err
		}
		ta := &tally{lat: metrics.NewHistogram()}
		tallies[tenant] = ta
		queue := tenant
		if shared {
			queue = "shared"
		}
		for _, at := range times {
			ta.sent++
			eng.Schedule(at, func() {
				in.Submit(queue, 10, 0, func(o sim.Outcome) {
					switch o.Err {
					case nil:
						ta.served++
						ta.lat.Record(o.Latency)
					case sim.ErrShed:
						ta.shed++
					default:
						ta.expired++
					}
				})
			})
		}
	}
	eng.Drain()

	weights := map[string]int{"a": cfg.WeightA, "b": cfg.WeightB}
	for _, tenant := range tenants {
		ta := tallies[tenant]
		arm.Tenants = append(arm.Tenants, TenantRow{
			Tenant: tenant, Weight: weights[tenant],
			Sent: ta.sent, Served: ta.served, Shed: ta.shed, Expired: ta.expired,
			Latency: ta.lat.Snapshot(),
		})
	}
	arm.Flushes = in.Flushes()
	arm.SchedWait = tr.StageSnapshot(trace.StageSchedWait)
	return arm, nil
}

// Render prints the four arms and the headline verdicts.
func (r *TenantCmpResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tenant — SLO isolation under a flash crowd (%s on %s, C=%d, SLO p99 ≤ %v)\n",
		r.Model, r.Device, r.Catalog, r.SLO)
	fmt.Fprintf(&b, "tenant A floods 5×; tenant B's served p99: quiet %v → WDRR %v → shared queue %v\n\n",
		r.QuietP99.Round(time.Microsecond), r.IsolatedP99.Round(time.Microsecond), r.ExposedP99.Round(time.Microsecond))
	for _, arm := range r.Arms {
		fmt.Fprintf(&b, "%s (batches %d, sched-wait p99 %v):\n", arm.Arm, arm.Flushes, arm.SchedWait.P99.Round(time.Microsecond))
		fmt.Fprintf(&b, "  %-8s %6s %6s %6s %6s %8s %12s %12s %8s\n",
			"tenant", "weight", "sent", "served", "shed", "expired", "p50", "p99", "goodput")
		for _, t := range arm.Tenants {
			fmt.Fprintf(&b, "  %-8s %6d %6d %6d %6d %8d %12s %12s %7.1f%%\n",
				t.Tenant, t.Weight, t.Sent, t.Served, t.Shed, t.Expired,
				t.Latency.P50.Round(time.Microsecond), t.Latency.P99.Round(time.Microsecond),
				100*t.GoodputFraction())
		}
	}
	fmt.Fprintf(&b, "\nisolation meets SLO: %v; shared baseline violates: %v; served share A %.3f (err %.3f)\n",
		r.IsolationMeetsSLO, r.BaselineViolates, r.ShareA, r.ShareErr)
	return b.String()
}

// Metrics emits, per arm and tenant, the served-latency summary and the
// admission counters, the sched-wait stage distribution (with a `stage=`
// marker for drift attribution), and the headline isolation/fairness
// verdicts.
func (r *TenantCmpResult) Metrics() map[string]float64 {
	m := map[string]float64{
		"slo_ms": msF(r.SLO),
	}
	for _, arm := range r.Arms {
		pre := keyify(arm.Arm)
		for _, t := range arm.Tenants {
			tpre := pre + "/tenant=" + keyify(t.Tenant)
			putSnap(m, tpre+"/latency", t.Latency)
			m[tpre+"/sent"] = float64(t.Sent)
			m[tpre+"/served"] = float64(t.Served)
			m[tpre+"/shed"] = float64(t.Shed)
			m[tpre+"/deadline_miss"] = float64(t.Expired)
			m[tpre+"/goodput_fraction"] = t.GoodputFraction()
		}
		m[pre+"/flushes"] = float64(arm.Flushes)
		if arm.SchedWait.Count > 0 {
			spre := pre + "/stage=sched-wait"
			m[spre+"/p50_ms"] = msF(arm.SchedWait.P50)
			m[spre+"/p99_ms"] = msF(arm.SchedWait.P99)
		}
	}
	m["wdrr/isolation_meets_slo"] = boolMetric(r.IsolationMeetsSLO)
	m["shared/baseline_violates"] = boolMetric(r.BaselineViolates)
	m["wdrr/victim_p99_ratio"] = ratio(float64(r.IsolatedP99), float64(r.QuietP99))
	m["shared/victim_p99_ratio"] = ratio(float64(r.ExposedP99), float64(r.QuietP99))
	m["fairness/share_a"] = r.ShareA
	m["fairness/share_err"] = r.ShareErr
	return m
}
