package experiments

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"etude/internal/cluster"
	"etude/internal/metrics"
	"etude/internal/model"
	"etude/internal/objstore"
)

// EXPERIMENT=procs is the reality check on the robustness stack: every
// prior chaos, drain and MTTR number was measured against in-process pods,
// where a "crash" is a middleware answering 503 and a "kill" closes a
// listener. This experiment re-runs the same fleet operations against real
// etude-server processes behind the local control plane — SIGKILL against
// a PID, SIGTERM-driven drains, exec-to-ready cold starts — and puts the
// two substrates side by side:
//
//  1. crash-supervised on both backends: the in-process MTTR is the
//     simulated prediction, the process MTTR is the measurement; the
//     ratio column is the fidelity claim (the substrates agree when the
//     ratio is near 1, and the process number is expected to sit a little
//     higher — exec and model load are real there);
//  2. rolling-drained vs rolling-undrained on the process backend: a
//     drained update of real processes stays at zero errors while the
//     undrained arm SIGKILLs pods out of the rotation and pays for it;
//  3. a cold-start distribution from repeated real spawns: exec → /live
//     (process up) vs exec → /ping (model loaded), the two phases
//     Kubernetes readiness gating would see.

// ProcsConfig controls the real-process study.
type ProcsConfig struct {
	// Rolling shapes the load and fleet for the crash and rolling phases
	// (its Backend field is overridden per phase).
	Rolling RollingConfig
	// ColdStartSamples is how many real processes are spawned (serially)
	// for the cold-start distribution.
	ColdStartSamples int
	// ServerBin is the etude-server binary; empty builds one.
	ServerBin string
}

// DefaultProcsConfig returns the test-scale study: a small fleet under
// modest load, enough spawns for a stable distribution.
func DefaultProcsConfig() ProcsConfig {
	r := DefaultRollingConfig()
	r.Duration = 6 * time.Second
	r.TargetRate = 100
	r.OpAfter = 1500 * time.Millisecond
	return ProcsConfig{
		Rolling:          r,
		ColdStartSamples: 8,
	}
}

// ProcsMTTRRow is one backend's supervised-crash outcome.
type ProcsMTTRRow struct {
	Backend   string        `json:"backend"`
	Sent      int64         `json:"sent"`
	Errors    int64         `json:"errors"`
	ErrorRate float64       `json:"error_rate"`
	Restarts  int           `json:"restarts"`
	MTTR      time.Duration `json:"mttr"`
}

// ProcsResult holds the three phases' outcomes.
type ProcsResult struct {
	// MTTR compares supervised crash recovery across substrates
	// (inproc first, proc second).
	MTTR []ProcsMTTRRow `json:"mttr"`
	// Rolling holds the drained and undrained rows, both on the process
	// backend.
	Rolling []RollingRow `json:"rolling"`
	// ColdStart and WarmReady summarise the spawn distribution.
	ColdStart metrics.Snapshot `json:"cold_start"`
	WarmReady metrics.Snapshot `json:"warm_ready"`
}

// MTTRRatio returns process MTTR / in-process MTTR (0 when either is
// unmeasured) — the substrate-fidelity number.
func (r *ProcsResult) MTTRRatio() float64 {
	var inproc, proc time.Duration
	for _, row := range r.MTTR {
		switch row.Backend {
		case "inproc":
			inproc = row.MTTR
		case "proc":
			proc = row.MTTR
		}
	}
	if inproc <= 0 || proc <= 0 {
		return 0
	}
	return float64(proc) / float64(inproc)
}

// Procs runs the study. The process phases exec real binaries; expect a
// few seconds of wall time per phase.
func Procs(ctx context.Context, cfg ProcsConfig) (*ProcsResult, error) {
	if cfg.ColdStartSamples <= 0 {
		cfg.ColdStartSamples = 8
	}
	res := &ProcsResult{}

	// Phase 1 — supervised crash on both substrates.
	for _, backend := range []string{"inproc", "proc"} {
		rcfg := cfg.Rolling
		rcfg.Backend = backend
		rcfg.ServerBin = cfg.ServerBin
		row, err := runRollingPhase(ctx, rcfg, "crash-supervised")
		if err != nil {
			return nil, fmt.Errorf("experiments: procs crash phase (%s): %w", backend, err)
		}
		res.MTTR = append(res.MTTR, ProcsMTTRRow{
			Backend:   backend,
			Sent:      row.Sent,
			Errors:    row.Errors,
			ErrorRate: row.ErrorRate,
			Restarts:  row.Restarts,
			MTTR:      row.MTTR,
		})
	}

	// Phase 2 — drained vs undrained rolling update of real processes.
	for _, phase := range []string{"rolling-drained", "rolling-undrained"} {
		rcfg := cfg.Rolling
		rcfg.Backend = "proc"
		rcfg.ServerBin = cfg.ServerBin
		row, err := runRollingPhase(ctx, rcfg, phase)
		if err != nil {
			return nil, fmt.Errorf("experiments: procs %s: %w", phase, err)
		}
		res.Rolling = append(res.Rolling, *row)
	}

	// Phase 3 — cold-start distribution from repeated real spawns.
	cold, warm, err := procColdStarts(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: procs cold-start phase: %w", err)
	}
	res.ColdStart, res.WarmReady = cold, warm
	return res, nil
}

// procColdStarts spawns real model-serving processes one at a time and
// collects their startup-phase timings. Serial spawning keeps the samples
// honest on small machines — concurrent model loads would contend for CPU
// and inflate each other.
func procColdStarts(cfg ProcsConfig) (cold, warm metrics.Snapshot, err error) {
	bin := cfg.ServerBin
	if bin == "" {
		if bin, err = cluster.ServerBinary(); err != nil {
			return cold, warm, err
		}
	}
	dir, err := os.MkdirTemp("", "etude-coldstart-")
	if err != nil {
		return cold, warm, err
	}
	defer os.RemoveAll(dir)
	bucket, err := objstore.NewFSBucket(dir)
	if err != nil {
		return cold, warm, err
	}
	manifest := model.Manifest{
		Model:  cfg.Rolling.Model,
		Config: model.Config{CatalogSize: cfg.Rolling.CatalogSize, Seed: cfg.Rolling.Seed},
	}
	data, err := model.MarshalManifest(manifest)
	if err != nil {
		return cold, warm, err
	}
	const key = "models/coldstart.json"
	if err := bucket.Put(key, data); err != nil {
		return cold, warm, err
	}

	runner := cluster.NewProcRunner()
	defer runner.Close()
	coldHist, warmHist := metrics.NewHistogram(), metrics.NewHistogram()
	for i := 0; i < cfg.ColdStartSamples; i++ {
		st, err := runner.Spawn(cluster.ProcSpec{
			Bin:  bin,
			Args: []string{"-bucket", dir, "-key", key, "-drain-timeout", "2s", "-drain-settle", "10ms"},
		})
		if err != nil {
			return cold, warm, err
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			cur, serr := runner.Status(st.ID)
			if serr != nil {
				return cold, warm, serr
			}
			if cur.State == cluster.ProcReady {
				coldHist.Record(cur.ColdStart)
				warmHist.Record(cur.WarmReady)
				break
			}
			if cur.State == cluster.ProcExited {
				return cold, warm, fmt.Errorf("spawn %d exited before ready (code %d)", i, cur.ExitCode)
			}
			if time.Now().After(deadline) {
				return cold, warm, fmt.Errorf("spawn %d never became ready", i)
			}
			time.Sleep(5 * time.Millisecond)
		}
		if err := runner.Forget(st.ID); err != nil {
			return cold, warm, err
		}
	}
	return coldHist.Snapshot(), warmHist.Snapshot(), nil
}

// Render prints the three tables.
func (r *ProcsResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Procs — real-process pods vs the in-process substrate (live, seeded)\n\n")

	fmt.Fprintf(&b, "supervised SIGKILL crash: measured MTTR per substrate\n")
	fmt.Fprintf(&b, "%-8s %8s %7s %8s %9s %12s\n", "backend", "sent", "errors", "err%", "restarts", "mttr")
	for _, row := range r.MTTR {
		fmt.Fprintf(&b, "%-8s %8d %7d %7.2f%% %9d %12s\n",
			row.Backend, row.Sent, row.Errors, row.ErrorRate*100,
			row.Restarts, row.MTTR.Round(time.Millisecond))
	}
	if ratio := r.MTTRRatio(); ratio > 0 {
		fmt.Fprintf(&b, "proc/inproc MTTR ratio: %.2fx (substrates agree when near 1; the process side pays real exec + model load)\n", ratio)
	}

	fmt.Fprintf(&b, "\nrolling update of real processes: drained vs undrained\n")
	fmt.Fprintf(&b, "%-18s %8s %7s %8s %10s %10s %7s\n",
		"phase", "sent", "errors", "err%", "p50", "p99", "forced")
	for _, row := range r.Rolling {
		fmt.Fprintf(&b, "%-18s %8d %7d %7.2f%% %10s %10s %7d\n",
			row.Phase, row.Sent, row.Errors, row.ErrorRate*100,
			row.Latency.P50.Round(time.Microsecond), row.Latency.P99.Round(time.Microsecond),
			row.ForcedKills)
	}

	fmt.Fprintf(&b, "\ncold start, %d real spawns (exec→/live = process up; exec→/ping = model loaded)\n", r.ColdStart.Count)
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %10s %10s\n", "phase", "mean", "p50", "p90", "p99", "max")
	for _, row := range []struct {
		name string
		s    metrics.Snapshot
	}{{"cold-start", r.ColdStart}, {"warm-ready", r.WarmReady}} {
		fmt.Fprintf(&b, "%-12s %10s %10s %10s %10s %10s\n", row.name,
			row.s.Mean.Round(time.Millisecond), row.s.P50.Round(time.Millisecond),
			row.s.P90.Round(time.Millisecond), row.s.P99.Round(time.Millisecond),
			row.s.Max.Round(time.Millisecond))
	}
	return b.String()
}

// Metrics emits the substrate comparison: MTTR and error rates per
// backend, rolling-deploy rows on real processes, and the spawn costs.
func (r *ProcsResult) Metrics() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.MTTR {
		pre := "crash/" + keyify(row.Backend)
		m[pre+"/error_rate"] = row.ErrorRate
		m[pre+"/restarts"] = float64(row.Restarts)
		m[pre+"/mttr_ms"] = msF(row.MTTR)
	}
	for _, row := range r.Rolling {
		pre := "rolling/" + keyify(row.Phase)
		m[pre+"/error_rate"] = row.ErrorRate
		m[pre+"/forced_kills"] = float64(row.ForcedKills)
	}
	putSnap(m, "cold_start", r.ColdStart)
	putSnap(m, "warm_ready", r.WarmReady)
	m["mttr_ratio_proc_over_inproc"] = r.MTTRRatio()
	return m
}
