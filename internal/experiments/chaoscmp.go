package experiments

import (
	"fmt"
	"strings"
	"time"

	"etude/internal/chaos"
	"etude/internal/device"
	"etude/internal/metrics"
	"etude/internal/model"
	"etude/internal/sim"
)

// ChaosCmpConfig controls the resilience study: one fig4-style workload
// replayed in the simulator under each fault scenario from the chaos
// catalog, with the full resilience stack (admission control, degradation,
// retries, circuit breaking) active.
type ChaosCmpConfig struct {
	// Device is the instance type (default CPU).
	Device device.Spec
	// Model and CatalogSize define the deployment.
	Model       string
	CatalogSize int
	// Replicas sizes the fleet (default 4; the pod-crash and AZ-outage
	// scenarios need survivors to absorb rerouted traffic).
	Replicas int
	// TargetRate and Duration shape the Algorithm 2 ramp.
	TargetRate float64
	Duration   time.Duration
	// Timeout is the client deadline.
	Timeout time.Duration
	// Resilience tunes each instance's admission control and degradation
	// watermarks. Zero values default to MaxQueue=64, DegradeAt=32.
	Resilience sim.Resilience
	// Retry and Breaker configure the client stack.
	Retry   chaos.RetryPolicy
	Breaker chaos.BreakerPolicy
	// Scenarios overrides the default chaos catalog.
	Scenarios []chaos.Scenario
	// Seed drives sampling, jitter and drop decisions.
	Seed int64
}

// DefaultChaosCmpConfig returns the standard study: gru4rec at C=100k on
// CPUs, 4 replicas, 8,000 req/s over 60 virtual seconds, three retries.
// The rate is chosen so the full fleet has headroom but half of it (the
// AZ-outage survivors) runs past saturation — the regime where admission
// control and graceful degradation earn their keep.
func DefaultChaosCmpConfig() ChaosCmpConfig {
	return ChaosCmpConfig{
		Device:      device.CPU(),
		Model:       "gru4rec",
		CatalogSize: 100_000,
		Replicas:    4,
		TargetRate:  8000,
		Duration:    60 * time.Second,
		Timeout:     time.Second,
		Resilience:  sim.Resilience{MaxQueue: 64, DegradeAt: 32},
		Retry:       chaos.RetryPolicy{MaxAttempts: 3},
		Seed:        1,
	}
}

// ChaosRow is one scenario's outcome.
type ChaosRow struct {
	Scenario string `json:"scenario"`
	Sent     int64  `json:"sent"`
	// Latency summarises successful (incl. degraded) responses.
	Latency metrics.Snapshot `json:"latency"`
	// ErrorRate is failed / issued logical requests.
	ErrorRate float64 `json:"error_rate"`
	// TailErrorRate is the error rate over the final fifth of the run —
	// near zero it shows the fleet recovered from mid-run faults.
	TailErrorRate float64 `json:"tail_error_rate"`
	// DegradedFraction is fallback responses / issued requests.
	DegradedFraction float64 `json:"degraded_fraction"`
	// Outcomes breaks results down by status class and error kind.
	Outcomes metrics.OutcomeCounts `json:"outcomes"`
	// Backpressured and NoBackend count client-side skips.
	Backpressured int64 `json:"backpressured"`
	NoBackend     int64 `json:"no_backend"`
}

// ChaosCmpResult holds the per-scenario rows.
type ChaosCmpResult struct {
	Rows []ChaosRow `json:"rows"`
}

// ChaosComparison replays the workload under every scenario. Runs are
// deterministic: virtual time plus seeded sampling, so identical configs
// yield identical rows.
func ChaosComparison(cfg ChaosCmpConfig) (*ChaosCmpResult, error) {
	if cfg.Model == "" || cfg.CatalogSize <= 0 {
		return nil, fmt.Errorf("experiments: invalid chaos config %+v", cfg)
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 4
	}
	if cfg.Resilience == (sim.Resilience{}) {
		cfg.Resilience = sim.Resilience{MaxQueue: 64, DegradeAt: 32}
	}
	scenarios := cfg.Scenarios
	if len(scenarios) == 0 {
		scenarios = chaos.Catalog(cfg.Duration, cfg.Replicas)
	}
	res := &ChaosCmpResult{}
	for _, sc := range scenarios {
		row, err := runChaosScenario(cfg, sc)
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos scenario %s: %w", sc.Name, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

func runChaosScenario(cfg ChaosCmpConfig, sc chaos.Scenario) (*ChaosRow, error) {
	// Every scenario gets a fresh engine and fleet so fault state cannot
	// leak between runs.
	eng := sim.NewEngine()
	fleet := make([]*sim.Instance, cfg.Replicas)
	for i := range fleet {
		in, err := sim.NewInstance(eng, cfg.Device, cfg.Model,
			model.Config{CatalogSize: cfg.CatalogSize, Seed: cfg.Seed},
			true, 2*time.Millisecond, cfg.Device.MaxBatch)
		if err != nil {
			return nil, err
		}
		in.SetResilience(cfg.Resilience)
		fleet[i] = in
	}
	out, err := chaos.RunSim(eng, chaos.SimConfig{
		TargetRate: cfg.TargetRate,
		Duration:   cfg.Duration,
		Timeout:    cfg.Timeout,
		Seed:       cfg.Seed,
		Retry:      cfg.Retry,
		Breaker:    cfg.Breaker,
	}, fleet, chaos.NewInjector(sc))
	if err != nil {
		return nil, err
	}
	return &ChaosRow{
		Scenario:         sc.Name,
		Sent:             out.Sent,
		Latency:          out.Recorder.Overall(),
		ErrorRate:        out.ErrorRate(),
		TailErrorRate:    tailErrorRate(out.Recorder),
		DegradedFraction: out.DegradedRate(),
		Outcomes:         out.Recorder.Outcomes(),
		Backpressured:    out.Backpressured,
		NoBackend:        out.NoBackend,
	}, nil
}

// tailErrorRate is the error rate over the final fifth of the run's ticks —
// the recovery signal: a mid-run fault that healed leaves the tail clean.
func tailErrorRate(rec *metrics.Recorder) float64 {
	series := rec.Series()
	if len(series) == 0 {
		return 0
	}
	from := len(series) - len(series)/5
	if from >= len(series) {
		from = len(series) - 1
	}
	var sent, errs int64
	for _, ts := range series[from:] {
		sent += ts.Sent
		errs += ts.Errors
	}
	if sent == 0 {
		return 0
	}
	return float64(errs) / float64(sent)
}

// Render prints the per-scenario resilience table.
func (r *ChaosCmpResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos — fault scenarios vs the resilience stack (sim, deterministic)\n")
	fmt.Fprintf(&b, "%-18s %8s %10s %10s %8s %8s %10s %8s\n",
		"scenario", "sent", "p50", "p99", "err%", "tail-err%", "degraded%", "retries")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %8d %10s %10s %7.2f%% %8.2f%% %9.2f%% %8d\n",
			row.Scenario, row.Sent,
			row.Latency.P50.Round(time.Microsecond), row.Latency.P99.Round(time.Microsecond),
			row.ErrorRate*100, row.TailErrorRate*100, row.DegradedFraction*100,
			row.Outcomes.Retries)
	}
	fmt.Fprintf(&b, "errors by kind: ")
	for i, row := range r.Rows {
		if i > 0 {
			fmt.Fprintf(&b, "; ")
		}
		fmt.Fprintf(&b, "%s timeout=%d refused=%d server=%d",
			row.Scenario, row.Outcomes.Timeouts, row.Outcomes.Refused, row.Outcomes.ServerErrors)
	}
	fmt.Fprintf(&b, "\n")
	return b.String()
}

// Metrics emits per-scenario availability under faults.
func (r *ChaosCmpResult) Metrics() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.Rows {
		pre := keyify(row.Scenario)
		putSnap(m, pre+"/latency", row.Latency)
		m[pre+"/sent"] = float64(row.Sent)
		m[pre+"/error_rate"] = row.ErrorRate
		m[pre+"/tail_error_rate"] = row.TailErrorRate
		m[pre+"/degraded_fraction"] = row.DegradedFraction
	}
	return m
}
