package experiments

import (
	"fmt"
	"strings"
	"time"

	"etude/internal/costmodel"
	"etude/internal/device"
	"etude/internal/model"
	"etude/internal/sim"
)

// Table1Config controls the deployment-option study.
type Table1Config struct {
	// Scenarios to plan for (default: all five).
	Scenarios []costmodel.Scenario
	// Models to include (default: the six healthy Table I models; the
	// paper excludes the four with implementation errors).
	Models []string
	// Instances to consider (default: cpu, gpu-t4, gpu-a100).
	Instances []string
	// SLO is the latency constraint (paper: 50ms p90).
	SLO time.Duration
	// Seed drives the capacity simulations.
	Seed int64
}

// DefaultTable1Config returns the paper's setup.
func DefaultTable1Config() Table1Config {
	return Table1Config{
		Scenarios: costmodel.Scenarios(),
		Models:    model.TableIModels(),
		Instances: []string{"cpu", "gpu-t4", "gpu-a100"},
		SLO:       costmodel.LatencySLO,
	}
}

// Table1Cell is one (scenario, model, instance) plan.
type Table1Cell struct {
	Scenario string  `json:"scenario"`
	Model    string  `json:"model"`
	Instance string  `json:"instance"`
	Capacity float64 `json:"capacity_per_instance"`
	costmodel.Option
}

// Table1Row aggregates a scenario row: per instance type, the fleet that
// serves ALL feasible models (the paper reports per-instance-type options
// with checkmarks per model).
type Table1Row struct {
	Scenario costmodel.Scenario `json:"scenario"`
	// Options maps instance name → the option sized for the slowest model
	// that is feasible on that instance.
	Options []Table1Option `json:"options"`
}

// Table1Option is one deployment option row with per-model feasibility.
type Table1Option struct {
	costmodel.Option
	// Supported maps model name → whether the model meets the scenario on
	// this option.
	Supported map[string]bool `json:"supported"`
	// Cheapest marks the scenario's most cost-efficient option (the
	// boldface rows of Table I).
	Cheapest bool `json:"cheapest"`
}

// Table1Result is the reproduced Table I.
type Table1Result struct {
	Rows  []Table1Row  `json:"rows"`
	Cells []Table1Cell `json:"cells"`
}

// Table1 reproduces Table I: for every scenario and instance type, the
// per-instance capacity of each model is found by simulated capacity
// search, fleets are sized for the scenario's target rate, and the
// cheapest feasible option is marked.
func Table1(cfg Table1Config) (*Table1Result, error) {
	if len(cfg.Scenarios) == 0 {
		cfg.Scenarios = costmodel.Scenarios()
	}
	if len(cfg.Models) == 0 {
		cfg.Models = model.TableIModels()
	}
	if len(cfg.Instances) == 0 {
		cfg.Instances = []string{"cpu", "gpu-t4", "gpu-a100"}
	}
	if cfg.SLO <= 0 {
		cfg.SLO = costmodel.LatencySLO
	}
	res := &Table1Result{}
	for _, sc := range cfg.Scenarios {
		row := Table1Row{Scenario: sc}
		for _, instName := range cfg.Instances {
			spec, err := device.ByName(instName)
			if err != nil {
				return nil, err
			}
			supported := make(map[string]bool, len(cfg.Models))
			// The option is sized by the slowest *feasible* model so that
			// one fleet serves every checkmarked model, as in the paper.
			minFeasibleCapacity := 0.0
			anyFeasible := false
			for _, name := range cfg.Models {
				mcfg := model.Config{CatalogSize: sc.CatalogSize, Seed: cfg.Seed}
				capacity, err := sim.Capacity(spec, name, mcfg, true, cfg.SLO)
				if err != nil {
					return nil, fmt.Errorf("experiments: capacity %s/%s/%s: %w", sc.Name, name, instName, err)
				}
				opt := costmodel.Plan(spec, capacity, sc)
				res.Cells = append(res.Cells, Table1Cell{
					Scenario: sc.Name, Model: name, Instance: instName,
					Capacity: capacity, Option: opt,
				})
				feasible := opt.Feasible && reasonableFleet(opt)
				supported[name] = feasible
				if feasible {
					if !anyFeasible || capacity < minFeasibleCapacity {
						minFeasibleCapacity = capacity
					}
					anyFeasible = true
				}
			}
			option := Table1Option{Supported: supported}
			if anyFeasible {
				option.Option = costmodel.Plan(spec, minFeasibleCapacity, sc)
			} else {
				option.Option = costmodel.Option{Instance: instName}
			}
			row.Options = append(row.Options, option)
		}
		// Mark the cheapest feasible option (boldface in the paper).
		bestIdx, bestCost := -1, 0.0
		for i, o := range row.Options {
			if !o.Feasible {
				continue
			}
			if bestIdx < 0 || o.MonthlyUSD < bestCost {
				bestIdx, bestCost = i, o.MonthlyUSD
			}
		}
		if bestIdx >= 0 {
			row.Options[bestIdx].Cheapest = true
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// reasonableFleet filters out degenerate "feasible" plans that need an
// absurd number of machines (the paper treats such models as unable to
// handle the scenario on that hardware).
func reasonableFleet(o costmodel.Option) bool {
	return o.Count <= 16
}

// Render prints the reproduced Table I.
func (r *Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — cost-efficient deployment options (p90 ≤ 50ms)\n")
	models := modelColumns(r)
	fmt.Fprintf(&b, "%-18s %-10s %7s %12s", "scenario", "instance", "count", "cost/month")
	for _, m := range models {
		fmt.Fprintf(&b, " %-8s", m)
	}
	fmt.Fprintf(&b, "\n")
	for _, row := range r.Rows {
		for _, o := range row.Options {
			anySupported := false
			for _, ok := range o.Supported {
				if ok {
					anySupported = true
					break
				}
			}
			if !anySupported {
				continue // the paper omits hopeless instance rows entirely
			}
			marker := " "
			if o.Cheapest {
				marker = "*"
			}
			fmt.Fprintf(&b, "%-18s %-10s %6d%s %11s", row.Scenario.Name, o.Instance, o.Count, marker, fmt.Sprintf("$%.0f", o.MonthlyUSD))
			for _, m := range models {
				mark := ""
				if o.Supported[m] {
					mark = "yes"
				}
				fmt.Fprintf(&b, " %-8s", mark)
			}
			fmt.Fprintf(&b, "\n")
		}
	}
	fmt.Fprintf(&b, "(* = most cost-efficient option for the scenario)\n")
	return b.String()
}

func modelColumns(r *Table1Result) []string {
	seen := map[string]bool{}
	var models []string
	for _, c := range r.Cells {
		if !seen[c.Model] {
			seen[c.Model] = true
			models = append(models, c.Model)
		}
	}
	return models
}

// Metrics emits the fleet-planning table: per (scenario, instance) cost
// and feasibility, plus each scenario's cheapest option.
func (r *Table1Result) Metrics() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.Rows {
		sc := keyify(row.Scenario.Name)
		for _, opt := range row.Options {
			pre := sc + "/" + keyify(opt.Instance)
			m[pre+"/feasible"] = boolMetric(opt.Feasible)
			if !opt.Feasible {
				continue
			}
			m[pre+"/monthly_usd"] = opt.MonthlyUSD
			m[pre+"/instances"] = float64(opt.Count)
			if opt.Cheapest {
				m[sc+"/cheapest_monthly_usd"] = opt.MonthlyUSD
			}
		}
	}
	return m
}
