package experiments

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"etude/internal/chaos"
	"etude/internal/cluster"
	"etude/internal/deploy"
	"etude/internal/httpapi"
	"etude/internal/loadgen"
	"etude/internal/metrics"
	"etude/internal/model"
	"etude/internal/server"
	"etude/internal/workload"
)

// DeployStudyConfig controls the crash-safe release study: a fleet serving
// a promoted release under sustained load takes three candidate releases
// through the SLO-guarded canary controller — a good re-train that must
// promote, an organically slower one that must roll back, and a corrupted
// one that must quarantine without serving a byte.
type DeployStudyConfig struct {
	// Model and CatalogSize define the baseline release; the regressing
	// candidate multiplies the catalog by RegressFactor (MIPS scoring is
	// O(C), so the slowdown is organic — no artificial sleeps).
	Model         string
	CatalogSize   int
	RegressFactor int
	// Replicas sizes the fleet; CanaryPods the slice pinned to candidates.
	Replicas   int
	CanaryPods int
	// TargetRate and Duration shape the sustained load; Tick is the
	// generator quantum, Timeout the client deadline.
	TargetRate float64
	Duration   time.Duration
	Tick       time.Duration
	Timeout    time.Duration
	// RolloutAfter is when the canary rollout starts — late enough that the
	// baseline cohort has accumulated comparison samples.
	RolloutAfter time.Duration
	// Observe and RolloutTimeout tune the canary controller's loop.
	Observe        time.Duration
	RolloutTimeout time.Duration
	// Thresholds are the SLO guardrails (zero fields take the defaults).
	Thresholds deploy.Thresholds
	// AlphaLength and AlphaClicks shape the synthetic sessions.
	AlphaLength float64
	AlphaClicks float64
	// Seed drives workload sampling and release weights.
	Seed int64
	// Backend selects the pod substrate ("inproc" or "proc"); ServerBin is
	// the etude-server binary for the proc backend (empty builds one).
	Backend   string
	ServerBin string
}

// DefaultDeployStudyConfig returns the standard study: gru4rec at C=10k on
// three replicas under 150 req/s, one canary pod, the rollout firing 1s in.
func DefaultDeployStudyConfig() DeployStudyConfig {
	return DeployStudyConfig{
		Model:          "gru4rec",
		CatalogSize:    10_000,
		RegressFactor:  8,
		Replicas:       3,
		CanaryPods:     1,
		TargetRate:     150,
		Duration:       6 * time.Second,
		Tick:           500 * time.Millisecond,
		Timeout:        time.Second,
		RolloutAfter:   time.Second,
		Observe:        50 * time.Millisecond,
		RolloutTimeout: 20 * time.Second,
		Thresholds:     deploy.Thresholds{MinSamples: 10},
		AlphaLength:    2.2,
		AlphaClicks:    1.6,
		Seed:           1,
	}
}

// DeployRow is one arm's outcome.
type DeployRow struct {
	Arm string `json:"arm"`
	// CandidateVersion and BaselineVersion identify the releases.
	CandidateVersion int `json:"candidate_version"`
	BaselineVersion  int `json:"baseline_version"`
	// Sent/Errors/ErrorRate/Latency summarise the client's view of the
	// whole run, rollout included.
	Sent      int64            `json:"sent"`
	Errors    int64            `json:"errors"`
	ErrorRate float64          `json:"error_rate"`
	Latency   metrics.Snapshot `json:"latency"`
	// Promoted/RolledBack/Quarantined is the controller's verdict; Reason
	// explains it.
	Promoted    bool   `json:"promoted"`
	RolledBack  bool   `json:"rolled_back"`
	Quarantined bool   `json:"quarantined"`
	Reason      string `json:"reason"`
	// CanaryServed counts requests the candidate answered before the
	// verdict; BlastRadius divides by Sent — the fraction of the run's
	// traffic a bad release touched.
	CanaryServed int64   `json:"canary_served"`
	BlastRadius  float64 `json:"blast_radius"`
	// CanaryP99/BaselineP99 are the cohort latencies at verdict time.
	CanaryP99   time.Duration `json:"canary_p99"`
	BaselineP99 time.Duration `json:"baseline_p99"`
	// Decided is deploy-to-verdict time — for the rollback arm, the MTTR of
	// a bad release.
	Decided time.Duration `json:"decided"`
	// StallRatio is the worst per-tick client p99 over the median tick p99:
	// ~1 means the hot swap never stalled the request path (good arm).
	StallRatio float64 `json:"stall_ratio,omitempty"`
	// ReloadTime is a measured no-load hot swap on one pod: POST
	// /admin/deploy round-trip, which spans load+verify+swap (good arm).
	ReloadTime time.Duration `json:"reload_time,omitempty"`
	// VerifyFailures counts checksum rejections on the canary pod
	// (corrupted arm).
	VerifyFailures float64 `json:"verify_failures,omitempty"`
	// StoreQuarantined reports whether the release store blocks the
	// candidate from any future load (bad arms).
	StoreQuarantined bool `json:"store_quarantined,omitempty"`
}

// DeployResult holds the per-arm rows.
type DeployResult struct {
	Rows []DeployRow `json:"rows"`
}

// DeployStudy runs the three release arms, each against a fresh cluster so
// state cannot leak between them.
func DeployStudy(ctx context.Context, cfg DeployStudyConfig) (*DeployResult, error) {
	if cfg.Model == "" || cfg.CatalogSize <= 0 || cfg.Replicas <= cfg.CanaryPods {
		return nil, fmt.Errorf("experiments: invalid deploy config %+v", cfg)
	}
	if cfg.RegressFactor < 2 {
		cfg.RegressFactor = 2
	}
	res := &DeployResult{}
	for _, arm := range []string{"good", "regress", "corrupted"} {
		row, err := runDeployArm(ctx, cfg, arm)
		if err != nil {
			return nil, fmt.Errorf("experiments: deploy arm %s: %w", arm, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

// publishStudyRelease stages one release in the store. Catalog size is the
// latency knob; the seed offset makes each candidate a genuine re-train.
func publishStudyRelease(store *deploy.Store, cfg DeployStudyConfig, catalog int, rev int64) (deploy.Release, error) {
	mcfg := model.Config{CatalogSize: catalog, Seed: cfg.Seed + rev}
	m, err := model.New(cfg.Model, mcfg)
	if err != nil {
		return deploy.Release{}, err
	}
	weights, err := model.SaveWeights(m)
	if err != nil {
		return deploy.Release{}, err
	}
	return store.Publish(model.Manifest{Model: cfg.Model, Config: mcfg}, weights, fmt.Sprintf("rev %d", rev))
}

func runDeployArm(ctx context.Context, cfg DeployStudyConfig, arm string) (*DeployRow, error) {
	c, bucket, cleanup, err := provisionCluster(cfg.Backend, cfg.ServerBin)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	store := deploy.NewStore(bucket)
	base, err := publishStudyRelease(store, cfg, cfg.CatalogSize, 1)
	if err != nil {
		return nil, err
	}
	if err := store.Promote(base.Version); err != nil {
		return nil, err
	}
	svc, err := c.Deploy(ctx, "deploy", cluster.PodSpec{
		Runtime:  cluster.RuntimeEtude,
		Releases: true,
		Server:   server.Options{Workers: 2},
	}, cfg.Replicas)
	if err != nil {
		return nil, err
	}

	catalog := cfg.CatalogSize
	if arm == "regress" {
		catalog *= cfg.RegressFactor
	}
	cand, err := publishStudyRelease(store, cfg, catalog, 2)
	if err != nil {
		return nil, err
	}
	row := &DeployRow{Arm: arm, CandidateVersion: cand.Version, BaselineVersion: base.Version}

	if arm == "corrupted" {
		// The corruption is delivered through the chaos driver — the same
		// storage-plane fault path real-process fleets get — and must land
		// before the canary tries the release.
		driver := chaos.NewProcDriver(
			chaos.CorruptedPublish(cand.Artifacts[0].Key, chaos.CorruptBitflip, 0), nil,
		).SetBucket(bucket)
		driver.Start()
		defer driver.Stop()
		deadline := time.Now().Add(5 * time.Second)
		for store.Verify(cand) == nil {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("artifact corruption never landed")
			}
			time.Sleep(time.Millisecond)
		}
	}

	// The canary rollout fires mid-run, concurrently with the load.
	cc := cluster.NewCanaryController(store)
	type opResult struct {
		out cluster.CanaryOutcome
		err error
	}
	opCh := make(chan opResult, 1)
	go func() {
		time.Sleep(cfg.RolloutAfter)
		out, err := cc.Rollout(ctx, svc, cand.Version, cluster.CanaryConfig{
			CanaryPods: cfg.CanaryPods,
			Observe:    cfg.Observe,
			Timeout:    cfg.RolloutTimeout,
			Thresholds: cfg.Thresholds,
		})
		opCh <- opResult{out, err}
	}()

	gen, err := workload.NewGenerator(workload.Spec{
		CatalogSize: cfg.CatalogSize,
		NumClicks:   1,
		AlphaLength: cfg.AlphaLength,
		AlphaClicks: cfg.AlphaClicks,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	balancer := svc.Balancer(cluster.BalancerConfig{
		FailThreshold: 3,
		ProbeInterval: 25 * time.Millisecond,
	})
	// No retries: a request dropped by a swap would stay visible — the good
	// arm's zero is a zero of raw attempts.
	out, err := loadgen.Run(ctx, loadgen.Config{
		TargetRate:     cfg.TargetRate,
		Duration:       cfg.Duration,
		Tick:           cfg.Tick,
		RequestTimeout: cfg.Timeout,
	}, gen, balancer)
	if err != nil {
		return nil, err
	}
	op := <-opCh
	if op.err != nil {
		return nil, fmt.Errorf("canary rollout: %w", op.err)
	}

	row.Sent = out.Recorder.Sent()
	row.Errors = out.Recorder.Errors()
	row.Latency = out.Recorder.Overall()
	if row.Sent > 0 {
		row.ErrorRate = float64(row.Errors) / float64(row.Sent)
		row.BlastRadius = float64(op.out.CanaryServed) / float64(row.Sent)
	}
	row.Promoted = op.out.Promoted
	row.RolledBack = op.out.RolledBack
	row.Quarantined = op.out.Quarantined
	row.Reason = op.out.Reason
	row.CanaryServed = op.out.CanaryServed
	row.CanaryP99, row.BaselineP99 = op.out.CanaryP99, op.out.BaselineP99
	row.Decided = op.out.Decided
	_, row.StoreQuarantined = store.QuarantineReason(cand.Version)

	switch arm {
	case "good":
		row.StallRatio = stallRatio(out.Recorder)
		// A clean hot swap measured in isolation: publish one more
		// re-train and time the synchronous load+verify+swap round-trip on
		// one pod (the run is over; the fleet serves no traffic).
		probe, err := publishStudyRelease(store, cfg, cfg.CatalogSize, 3)
		if err == nil {
			start := time.Now()
			if code, perr := postAdminDeploy(ctx, svc.Pods()[0].URL(), probe.Version); perr == nil && code == http.StatusOK {
				row.ReloadTime = time.Since(start)
			}
		}
	case "corrupted":
		// The canary pod must have refused the release at the checksum, and
		// its refusal is what quarantined the release for everyone else.
		row.VerifyFailures = scrapeVerifyFailures(svc.Pods()[0].URL())
	}
	return row, nil
}

// stallRatio is the worst per-tick client p99 divided by the median tick
// p99 — a hot swap that stalled the request path shows up as an outlier
// tick.
func stallRatio(rec *metrics.Recorder) float64 {
	var p99s []time.Duration
	for _, ts := range rec.Series() {
		if ts.Completed > 0 {
			p99s = append(p99s, ts.P99)
		}
	}
	if len(p99s) == 0 {
		return 0
	}
	worst, sorted := p99s[0], append([]time.Duration(nil), p99s...)
	for _, p := range p99s {
		if p > worst {
			worst = p
		}
	}
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	median := sorted[len(sorted)/2]
	if median <= 0 {
		return 0
	}
	return float64(worst) / float64(median)
}

// postAdminDeploy mirrors the canary controller's pod deploy call for the
// experiment's own reload-time probe.
func postAdminDeploy(ctx context.Context, podURL string, version int) (int, error) {
	body := strings.NewReader(fmt.Sprintf(`{"version":%d}`, version))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, podURL+httpapi.DeployPath, body)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

// scrapeVerifyFailures reads one pod's checksum-rejection counter; 0 on any
// scrape error (the metric assertion then fails loudly downstream).
func scrapeVerifyFailures(podURL string) float64 {
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get(podURL + httpapi.MetricsPath)
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	samples, err := metrics.ParsePromText(resp.Body)
	if err != nil {
		return 0
	}
	for _, s := range samples {
		if s.Name == "etude_artifact_verify_failures_total" {
			return s.Value
		}
	}
	return 0
}

// Render prints the per-arm release-safety table.
func (r *DeployResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Deploy — versioned releases under SLO-guarded canary (live, seeded)\n")
	fmt.Fprintf(&b, "%-10s %9s %8s %7s %8s %10s %8s %9s %10s %10s\n",
		"arm", "verdict", "sent", "errors", "err%", "blast%", "decided", "canary", "c-p99", "b-p99")
	for _, row := range r.Rows {
		verdict := "promote"
		switch {
		case row.RolledBack:
			verdict = "rollback"
		case row.Quarantined:
			verdict = "quarantine"
		}
		fmt.Fprintf(&b, "%-10s %9s %8d %7d %7.2f%% %9.2f%% %8s %9d %10s %10s\n",
			row.Arm, verdict, row.Sent, row.Errors, row.ErrorRate*100,
			row.BlastRadius*100, row.Decided.Round(time.Millisecond),
			row.CanaryServed,
			row.CanaryP99.Round(time.Microsecond), row.BaselineP99.Round(time.Microsecond))
	}
	for _, row := range r.Rows {
		switch row.Arm {
		case "good":
			fmt.Fprintf(&b, "good: stall-ratio=%.2f reload=%s (%s)\n",
				row.StallRatio, row.ReloadTime.Round(time.Millisecond), row.Reason)
		case "regress":
			fmt.Fprintf(&b, "regress: quarantined=%v store-quarantined=%v (%s)\n",
				row.Quarantined || row.RolledBack, row.StoreQuarantined, row.Reason)
		case "corrupted":
			fmt.Fprintf(&b, "corrupted: served=%d verify-failures=%s store-quarantined=%v (%s)\n",
				row.CanaryServed, strconv.FormatFloat(row.VerifyFailures, 'f', -1, 64),
				row.StoreQuarantined, row.Reason)
		}
	}
	return b.String()
}

// Metrics emits per-arm release-safety results. Deploy drives a wall-clock
// cluster, so cross-machine gating keys off the dimensionless metrics; the
// booleans (promoted, rolled_back, quarantined) are the headline gates.
func (r *DeployResult) Metrics() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.Rows {
		pre := keyify(row.Arm)
		putSnap(m, pre+"/latency", row.Latency)
		m[pre+"/error_rate"] = row.ErrorRate
		m[pre+"/decided_ms"] = msF(row.Decided)
		switch row.Arm {
		case "good":
			m[pre+"/promoted"] = boolMetric(row.Promoted)
			m[pre+"/dropped_fraction"] = row.ErrorRate
			m[pre+"/stall_ratio"] = row.StallRatio
			m[pre+"/reload_ms"] = msF(row.ReloadTime)
		case "regress":
			m[pre+"/rolled_back"] = boolMetric(row.RolledBack)
			m[pre+"/quarantined"] = boolMetric(row.StoreQuarantined)
			m[pre+"/blast_radius"] = row.BlastRadius
			m[pre+"/rollback_mttr_ms"] = msF(row.Decided)
		case "corrupted":
			m[pre+"/quarantined"] = boolMetric(row.Quarantined && row.StoreQuarantined)
			m[pre+"/bad_serve_fraction"] = row.BlastRadius
			m[pre+"/verify_failures"] = row.VerifyFailures
		}
	}
	return m
}
