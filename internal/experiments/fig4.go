package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"etude/internal/core"
	"etude/internal/costmodel"
	"etude/internal/model"
)

// Fig4Config controls the end-to-end benchmark over the simulator.
type Fig4Config struct {
	// Scenarios to sweep (default: all five Table I scenarios).
	Scenarios []costmodel.Scenario
	// Models to include (default: all ten).
	Models []string
	// Instances to include (default: cpu, gpu-t4, gpu-a100).
	Instances []string
	// Duration per run in virtual time (paper: 10 minutes; the simulator
	// makes paper scale cheap, but tests may shorten it).
	Duration time.Duration
	// Faithful selects the RecBole-faithful model variants (the paper
	// benchmarks what RecBole ships).
	Faithful bool
	// Seed drives workloads and weights.
	Seed int64
}

// DefaultFig4Config returns the paper-scale sweep: all scenarios, all ten
// models (faithful RecBole variants), three instance types, 10-minute
// ramps.
func DefaultFig4Config() Fig4Config {
	return Fig4Config{
		Scenarios: costmodel.Scenarios(),
		Models:    model.Names(),
		Instances: []string{"cpu", "gpu-t4", "gpu-a100"},
		Duration:  10 * time.Minute,
		Faithful:  true,
		Seed:      1,
	}
}

// Fig4Row is one end-to-end measurement.
type Fig4Row struct {
	Scenario string `json:"scenario"`
	core.Measurement
}

// Fig4Result holds the sweep.
type Fig4Result struct {
	Rows []Fig4Row `json:"rows"`
}

// Fig4 runs the end-to-end benchmark on the discrete-event simulator: for
// every scenario, model and instance type, load ramps to the scenario's
// target rate and the response-latency distribution is recorded.
func Fig4(cfg Fig4Config) (*Fig4Result, error) {
	if len(cfg.Scenarios) == 0 {
		cfg.Scenarios = costmodel.Scenarios()
	}
	if len(cfg.Models) == 0 {
		cfg.Models = model.Names()
	}
	if len(cfg.Instances) == 0 {
		cfg.Instances = []string{"cpu", "gpu-t4", "gpu-a100"}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Minute
	}
	res := &Fig4Result{}
	for _, sc := range cfg.Scenarios {
		ms, err := core.RunSim(core.Spec{
			Name:        "fig4-" + sc.Name,
			Models:      cfg.Models,
			Instances:   cfg.Instances,
			CatalogSize: sc.CatalogSize,
			Faithful:    cfg.Faithful,
			JIT:         true, // the paper's end-to-end runs use JIT variants
			TargetRate:  sc.TargetRate,
			Duration:    cfg.Duration,
			Seed:        cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: fig4 scenario %s: %w", sc.Name, err)
		}
		for _, m := range ms {
			m.Series = nil // keep result payloads small; Fig 2 carries series
			res.Rows = append(res.Rows, Fig4Row{Scenario: sc.Name, Measurement: m})
		}
	}
	return res, nil
}

// Render prints the per-scenario rows of Fig 4.
func (r *Fig4Result) Render() string {
	rows := append([]Fig4Row(nil), r.Rows...)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Scenario != rows[j].Scenario {
			return rows[i].Scenario < rows[j].Scenario
		}
		if rows[i].Model != rows[j].Model {
			return rows[i].Model < rows[j].Model
		}
		return rows[i].Instance < rows[j].Instance
	})
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 4 — end-to-end latency/throughput per scenario\n")
	fmt.Fprintf(&b, "%-18s %-10s %-9s %10s %12s %8s %8s %5s\n",
		"scenario", "model", "instance", "achieved", "p90", "errors", "shed", "SLO")
	for _, row := range rows {
		achieved := float64(row.Sent-row.Errors) / rowDurationSeconds(row)
		slo := " no"
		if row.MeetsSLO {
			slo = "yes"
		}
		fmt.Fprintf(&b, "%-18s %-10s %-9s %9.0f/s %12s %8d %8d %5s\n",
			row.Scenario, row.Model, row.Instance, achieved,
			row.Latency.P90.Round(time.Microsecond), row.Errors, row.Backpressured, slo)
	}
	return b.String()
}

func rowDurationSeconds(row Fig4Row) float64 {
	if n := len(row.Series); n > 0 {
		return float64(n)
	}
	// Series dropped: approximate with the planned schedule — a linear
	// ramp to TargetRate delivers TargetRate/2 per second on average.
	if row.TargetRate > 0 {
		return float64(row.Sent) / (row.TargetRate / 2)
	}
	return 1
}

// Metrics emits per-scenario end-to-end results from the simulator.
func (r *Fig4Result) Metrics() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.Rows {
		pre := fmt.Sprintf("%s/%s/%s", keyify(row.Scenario), keyify(row.Model), keyify(row.Instance))
		putSnap(m, pre+"/latency", row.Latency)
		m[pre+"/sent"] = float64(row.Sent)
		m[pre+"/error_rate"] = ratio(float64(row.Errors), float64(row.Sent))
		m[pre+"/meets_slo"] = boolMetric(row.MeetsSLO)
	}
	return m
}
