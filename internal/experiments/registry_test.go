package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"etude/internal/trace"
)

func TestRegistryCoversAllExperiments(t *testing.T) {
	defs := Registry()
	if len(defs) != 17 {
		t.Fatalf("registry has %d experiments, want 17", len(defs))
	}
	seen := map[string]bool{}
	smoke := 0
	for _, d := range defs {
		if d.Name == "" || d.Run == nil {
			t.Fatalf("incomplete definition %+v", d)
		}
		if seen[d.Name] {
			t.Fatalf("duplicate experiment %q", d.Name)
		}
		seen[d.Name] = true
		if d.Smoke {
			smoke++
		}
	}
	// The smoke grid is the committed-baseline set.
	for _, name := range []string{"breakdown", "shard", "overload", "blackout", "tenant", "deploy"} {
		d, ok := Lookup(name)
		if !ok || !d.Smoke {
			t.Fatalf("%s must be in the smoke grid (found=%v smoke=%v)", name, ok, d.Smoke)
		}
	}
	if smoke != 6 {
		t.Fatalf("smoke grid has %d experiments, want 6", smoke)
	}
	if _, ok := Lookup("no-such"); ok {
		t.Fatal("Lookup accepted an unknown name")
	}
	if got := len(Names()); got != len(defs) {
		t.Fatalf("Names() returned %d entries", got)
	}
}

func TestParseScale(t *testing.T) {
	for _, ok := range []string{"smoke", "test", "paper"} {
		if _, err := ParseScale(ok); err != nil {
			t.Fatalf("ParseScale(%q): %v", ok, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("ParseScale accepted an unknown scale")
	}
}

// checkMetrics validates the Result contract: a non-empty map, finite
// values, and slash-path keys without CSV-hostile characters.
func checkMetrics(t *testing.T, name string, m map[string]float64) {
	t.Helper()
	if len(m) == 0 {
		t.Fatalf("%s: Metrics() is empty", name)
	}
	for k, v := range m {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s: metric %q = %v", name, k, v)
		}
		if strings.ContainsAny(k, ", \n\r") {
			t.Fatalf("%s: metric key %q contains forbidden characters", name, k)
		}
	}
}

// TestDeterministicMetricsReproduce runs the cheap deterministic
// experiments twice through the registry and demands bit-identical metric
// maps — the property the cross-machine regression gate stands on.
func TestDeterministicMetricsReproduce(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full sims")
	}
	for _, name := range []string{"issues", "runtimes", "overload", "tenant"} {
		def, ok := Lookup(name)
		if !ok || !def.Deterministic {
			t.Fatalf("%s must be a deterministic registry entry", name)
		}
		p := Params{Scale: ScaleSmoke, Seed: 7}
		a, err := def.Run(context.Background(), p)
		if err != nil {
			t.Fatalf("%s run 1: %v", name, err)
		}
		b, err := def.Run(context.Background(), p)
		if err != nil {
			t.Fatalf("%s run 2: %v", name, err)
		}
		ma, mb := a.Metrics(), b.Metrics()
		checkMetrics(t, name, ma)
		if len(ma) != len(mb) {
			t.Fatalf("%s: metric sets differ in size: %d vs %d", name, len(ma), len(mb))
		}
		for k, v := range ma {
			if mb[k] != v {
				t.Fatalf("%s: metric %q not reproducible: %v vs %v", name, k, v, mb[k])
			}
		}
		if a.Render() == "" {
			t.Fatalf("%s: Render() is empty", name)
		}
	}
}

func TestStageByNameRoundTrip(t *testing.T) {
	for _, st := range trace.Stages() {
		got, ok := trace.StageByName(st.String())
		if !ok || got != st {
			t.Fatalf("StageByName(%q) = %v, %v", st.String(), got, ok)
		}
	}
	if _, ok := trace.StageByName("warp-drive"); ok {
		t.Fatal("StageByName accepted an unknown stage")
	}
}

// TestOverloadInflateNamesStage injects a deliberate mips-topk slowdown
// through the config knob and verifies (a) the arm's end-to-end latency
// regresses, and (b) the per-stage breakdown pins the regression on
// mips-topk while encoder-forward stays put — the attribution signal the
// bench gate consumes.
func TestOverloadInflateNamesStage(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full sims")
	}
	base := DefaultOverloadCmpConfig()
	base.Duration = DefaultOverloadCmpConfig().Duration / 2
	clean, err := OverloadComparison(base)
	if err != nil {
		t.Fatal(err)
	}
	inflated := base
	inflated.Inflate = map[string]float64{"mips-topk": 3}
	slow, err := OverloadComparison(inflated)
	if err != nil {
		t.Fatal(err)
	}
	armStage := func(r *OverloadCmpResult, arm, stage string) *BreakdownStage {
		a := r.Arm(arm)
		if a == nil {
			t.Fatalf("missing arm %q", arm)
		}
		for i := range a.Stages {
			if a.Stages[i].Stage == stage {
				return &a.Stages[i]
			}
		}
		t.Fatalf("arm %q has no stage %q", arm, stage)
		return nil
	}
	cm, sm := armStage(clean, "adaptive", "mips-topk"), armStage(slow, "adaptive", "mips-topk")
	if float64(sm.P50) < 1.5*float64(cm.P50) {
		t.Fatalf("mips-topk p50 did not inflate: %v -> %v", cm.P50, sm.P50)
	}
	ce, se := armStage(clean, "adaptive", "encoder-forward"), armStage(slow, "adaptive", "encoder-forward")
	if float64(se.P50) > 1.2*float64(ce.P50) {
		t.Fatalf("encoder-forward p50 moved under a mips-only inflation: %v -> %v", ce.P50, se.P50)
	}
	if slow.Arm("adaptive").Latency.P99 <= clean.Arm("adaptive").Latency.P99 {
		t.Fatalf("end-to-end p99 did not regress: %v -> %v",
			clean.Arm("adaptive").Latency.P99, slow.Arm("adaptive").Latency.P99)
	}
	if _, err := OverloadComparison(OverloadCmpConfig{
		Model: "gru4rec", CatalogSize: 1000,
		Inflate: map[string]float64{"not-a-stage": 2},
	}); err == nil {
		t.Fatal("unknown Inflate stage accepted")
	}
}
