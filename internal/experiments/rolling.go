package experiments

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"etude/internal/chaos"
	"etude/internal/cluster"
	"etude/internal/loadgen"
	"etude/internal/metrics"
	"etude/internal/model"
	"etude/internal/objstore"
	"etude/internal/workload"
)

// RollingConfig controls the zero-downtime operations study: one sustained
// live workload driven through (a) a rolling model swap with graceful drain,
// (b) the same swap with drain disabled, and (c) a pod crash healed by the
// supervisor. The headline claim is the first row's zero failed requests.
type RollingConfig struct {
	// Model and CatalogSize define the deployed model; the rolling update
	// swaps it for a re-trained revision (same architecture, fresh
	// weights).
	Model       string
	CatalogSize int
	// Replicas sizes the fleet.
	Replicas int
	// TargetRate and Duration shape the Algorithm 2 ramp.
	TargetRate float64
	Duration   time.Duration
	// Tick is the load generator's scheduling quantum.
	Tick time.Duration
	// Timeout is the client deadline.
	Timeout time.Duration
	// DrainTimeout is each pod's graceful-shutdown bound.
	DrainTimeout time.Duration
	// OpAfter is when the fleet operation (rollout start, crash) fires.
	OpAfter time.Duration
	// EndpointLag is the endpoint-propagation delay the drainless arm
	// suffers (see cluster.RolloutConfig.EndpointLag).
	EndpointLag time.Duration
	// AlphaLength and AlphaClicks shape the synthetic sessions.
	AlphaLength float64
	AlphaClicks float64
	// Seed drives workload sampling and model weights.
	Seed int64
	// Backend selects the pod substrate: "inproc" (or empty) hosts pods as
	// goroutine HTTP servers; "proc" execs real etude-server processes
	// behind the local control plane, so the crash phase delivers an actual
	// SIGKILL and the undrained arm kills real PIDs.
	Backend string
	// ServerBin is the etude-server binary for the proc backend; empty
	// builds one with the go toolchain (cluster.ServerBinary).
	ServerBin string
}

// DefaultRollingConfig returns the standard study: gru4rec at C=10k, 3
// replicas under 150 req/s for 8 virtual-wall seconds, the operation firing
// 2s in. Rates are far below saturation on purpose — the rows isolate
// lifecycle-inflicted errors, not overload.
func DefaultRollingConfig() RollingConfig {
	return RollingConfig{
		Model:        "gru4rec",
		CatalogSize:  10_000,
		Replicas:     3,
		TargetRate:   150,
		Duration:     8 * time.Second,
		Tick:         500 * time.Millisecond,
		Timeout:      time.Second,
		DrainTimeout: 5 * time.Second,
		OpAfter:      2 * time.Second,
		EndpointLag:  500 * time.Millisecond,
		AlphaLength:  2.2,
		AlphaClicks:  1.6,
		Seed:         1,
	}
}

// RollingRow is one phase's outcome.
type RollingRow struct {
	Phase string `json:"phase"`
	Sent  int64  `json:"sent"`
	// Errors counts failed logical requests; ErrorRate divides by Sent.
	Errors    int64   `json:"errors"`
	ErrorRate float64 `json:"error_rate"`
	// TailErrorRate covers the final fifth of the run — near zero means
	// the fleet healed.
	TailErrorRate float64 `json:"tail_error_rate"`
	// Latency summarises successful responses.
	Latency metrics.Snapshot `json:"latency"`
	// DegradedFraction is fallback responses / issued requests.
	DegradedFraction float64 `json:"degraded_fraction"`
	// Outcomes breaks results down by status class and error kind.
	Outcomes metrics.OutcomeCounts `json:"outcomes"`
	// ForcedKills counts pods whose drain deadline expired (or that were
	// killed outright on the drainless arm).
	ForcedKills int64 `json:"forced_kills"`
	// Restarts and MTTR describe supervised recovery (crash phase only).
	Restarts int           `json:"restarts"`
	MTTR     time.Duration `json:"mttr"`
}

// RollingResult holds the per-phase rows.
type RollingResult struct {
	Rows []RollingRow `json:"rows"`
}

// Rolling runs the three lifecycle phases, each against a fresh in-process
// cluster so state cannot leak between arms. Workload sampling is seeded;
// the assertions the experiment supports (zero errors drained, a spike
// undrained, finite MTTR supervised) are robust to wall-clock jitter.
func Rolling(ctx context.Context, cfg RollingConfig) (*RollingResult, error) {
	if cfg.Model == "" || cfg.CatalogSize <= 0 || cfg.Replicas < 2 {
		return nil, fmt.Errorf("experiments: invalid rolling config %+v", cfg)
	}
	res := &RollingResult{}
	for _, phase := range []string{"rolling-drained", "rolling-undrained", "crash-supervised"} {
		row, err := runRollingPhase(ctx, cfg, phase)
		if err != nil {
			return nil, fmt.Errorf("experiments: rolling phase %s: %w", phase, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

// publishRevision writes one model revision manifest to the bucket. The
// seed offset makes rev2 a genuinely different weight set — a re-trained
// model, not a no-op swap.
func publishRevision(bucket objstore.Bucket, cfg RollingConfig, rev int) (string, error) {
	manifest := model.Manifest{
		Model:  cfg.Model,
		Config: model.Config{CatalogSize: cfg.CatalogSize, Seed: cfg.Seed + int64(rev)},
	}
	data, err := model.MarshalManifest(manifest)
	if err != nil {
		return "", err
	}
	key := fmt.Sprintf("models/%s-rev%d.json", cfg.Model, rev)
	return key, bucket.Put(key, data)
}

// phaseCluster provisions the substrate one phase runs on: an in-process
// cluster over a memory bucket, or a real-process cluster over a temporary
// filesystem bucket (child processes read model artifacts via -bucket).
func phaseCluster(cfg RollingConfig) (*cluster.Cluster, objstore.Bucket, func(), error) {
	return provisionCluster(cfg.Backend, cfg.ServerBin)
}

// provisionCluster builds the pod substrate every cluster experiment runs
// on. backend "proc" execs real etude-server processes over a temporary
// filesystem bucket; anything else hosts pods in-process over a memory
// bucket. The returned cleanup tears the cluster (and any temp dir) down.
func provisionCluster(backend, serverBin string) (*cluster.Cluster, objstore.Bucket, func(), error) {
	if backend != "proc" {
		bucket := objstore.NewMemBucket()
		c := cluster.New(bucket)
		return c, bucket, c.Teardown, nil
	}
	bin := serverBin
	if bin == "" {
		var err error
		if bin, err = cluster.ServerBinary(); err != nil {
			return nil, nil, nil, err
		}
	}
	dir, err := os.MkdirTemp("", "etude-procs-")
	if err != nil {
		return nil, nil, nil, err
	}
	bucket, err := objstore.NewFSBucket(dir)
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, nil, err
	}
	c, err := cluster.NewProc(bucket, bin)
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, nil, err
	}
	return c, bucket, func() { c.Teardown(); os.RemoveAll(dir) }, nil
}

func runRollingPhase(ctx context.Context, cfg RollingConfig, phase string) (*RollingRow, error) {
	c, bucket, cleanup, err := phaseCluster(cfg)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	key1, err := publishRevision(bucket, cfg, 1)
	if err != nil {
		return nil, err
	}
	key2, err := publishRevision(bucket, cfg, 2)
	if err != nil {
		return nil, err
	}

	spec := cluster.PodSpec{
		Runtime:      cluster.RuntimeEtude,
		ModelKey:     key1,
		InstanceType: "cpu",
		DrainTimeout: cfg.DrainTimeout,
	}

	// Pod 0 crashes at OpAfter and never self-heals: only the supervisor
	// can bring capacity back, which is what makes its MTTR measurable.
	// The same scenario drives both substrates — as a 503 middleware on
	// in-process pods, as a real SIGKILL on process pods.
	crash := chaos.Scenario{
		Name: "crash", Seed: cfg.Seed,
		Faults: []chaos.Fault{{Kind: chaos.FaultPodCrash, At: cfg.OpAfter, Pod: 0}},
	}
	var inj *chaos.Injector
	if phase == "crash-supervised" && cfg.Backend != "proc" {
		inj = chaos.NewInjector(crash)
		spec.Middleware = inj.Middleware
	}

	const deployment = "rolling"
	svc, err := c.Deploy(ctx, deployment, spec, cfg.Replicas)
	if err != nil {
		return nil, err
	}

	var sup *cluster.Supervisor
	if phase == "crash-supervised" {
		if inj != nil {
			inj.Start()
		} else {
			driver := chaos.NewProcDriver(crash, svc)
			driver.Start()
			defer driver.Stop()
		}
		sup, err = c.Supervise(deployment, cluster.RestartPolicy{})
		if err != nil {
			return nil, err
		}
		defer sup.Stop()
	}

	// The fleet operation fires mid-run, concurrently with the load.
	opErr := make(chan error, 1)
	switch phase {
	case "rolling-drained":
		go func() {
			time.Sleep(cfg.OpAfter)
			newSpec := spec
			newSpec.ModelKey = key2
			opErr <- c.RollingUpdate(ctx, deployment, newSpec, cluster.RolloutConfig{})
		}()
	case "rolling-undrained":
		go func() {
			time.Sleep(cfg.OpAfter)
			newSpec := spec
			newSpec.ModelKey = key2
			noDrain := false
			opErr <- c.RollingUpdate(ctx, deployment, newSpec, cluster.RolloutConfig{
				Drain:       &noDrain,
				EndpointLag: cfg.EndpointLag,
			})
		}()
	default:
		opErr <- nil
	}

	gen, err := workload.NewGenerator(workload.Spec{
		CatalogSize: cfg.CatalogSize,
		NumClicks:   1,
		AlphaLength: cfg.AlphaLength,
		AlphaClicks: cfg.AlphaClicks,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	balancer := svc.Balancer(cluster.BalancerConfig{
		FailThreshold: 3,
		ProbeInterval: 25 * time.Millisecond,
	})
	// No retries: every lifecycle-inflicted failure stays visible instead
	// of being quietly healed by the client — the drained arm's zero is a
	// zero of raw attempts.
	out, err := loadgen.Run(ctx, loadgen.Config{
		TargetRate:     cfg.TargetRate,
		Duration:       cfg.Duration,
		Tick:           cfg.Tick,
		RequestTimeout: cfg.Timeout,
	}, gen, balancer)
	if err != nil {
		return nil, err
	}
	if oerr := <-opErr; oerr != nil {
		return nil, fmt.Errorf("fleet operation: %w", oerr)
	}

	row := &RollingRow{
		Phase:       phase,
		Sent:        out.Recorder.Sent(),
		Errors:      out.Recorder.Errors(),
		Latency:     out.Recorder.Overall(),
		Outcomes:    out.Outcomes,
		ForcedKills: c.ForcedKills(),
	}
	if row.Sent > 0 {
		row.ErrorRate = float64(row.Errors) / float64(row.Sent)
		row.DegradedFraction = float64(row.Outcomes.Degraded) / float64(row.Sent)
	}
	row.TailErrorRate = tailErrorRate(out.Recorder)
	if sup != nil {
		sup.Stop()
		row.Restarts = sup.Restarts()
		row.MTTR = sup.MTTR()
	}
	return row, nil
}

// Render prints the per-phase lifecycle table.
func (r *RollingResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Rolling — fleet operations under sustained load (live, seeded)\n")
	fmt.Fprintf(&b, "%-18s %8s %7s %8s %10s %10s %10s %7s %9s %10s\n",
		"phase", "sent", "errors", "err%", "p50", "p99", "degraded%", "forced", "restarts", "mttr")
	for _, row := range r.Rows {
		mttr := "-"
		if row.Restarts > 0 {
			mttr = row.MTTR.Round(time.Millisecond).String()
		}
		fmt.Fprintf(&b, "%-18s %8d %7d %7.2f%% %10s %10s %9.2f%% %7d %9d %10s\n",
			row.Phase, row.Sent, row.Errors, row.ErrorRate*100,
			row.Latency.P50.Round(time.Microsecond), row.Latency.P99.Round(time.Microsecond),
			row.DegradedFraction*100, row.ForcedKills, row.Restarts, mttr)
	}
	fmt.Fprintf(&b, "errors by kind: ")
	for i, row := range r.Rows {
		if i > 0 {
			fmt.Fprintf(&b, "; ")
		}
		fmt.Fprintf(&b, "%s timeout=%d refused=%d server=%d tail-err=%.2f%%",
			row.Phase, row.Outcomes.Timeouts, row.Outcomes.Refused,
			row.Outcomes.ServerErrors, row.TailErrorRate*100)
	}
	fmt.Fprintf(&b, "\n")
	return b.String()
}

// Metrics emits per-phase deploy-safety results. Rolling drives a
// wall-clock cluster, so cross-machine gating keys off the rates.
func (r *RollingResult) Metrics() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.Rows {
		pre := keyify(row.Phase)
		putSnap(m, pre+"/latency", row.Latency)
		m[pre+"/error_rate"] = row.ErrorRate
		m[pre+"/tail_error_rate"] = row.TailErrorRate
		m[pre+"/degraded_fraction"] = row.DegradedFraction
		m[pre+"/forced_kills"] = float64(row.ForcedKills)
		m[pre+"/restarts"] = float64(row.Restarts)
		m[pre+"/mttr_ms"] = msF(row.MTTR)
	}
	return m
}
