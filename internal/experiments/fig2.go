// Package experiments contains one harness per table and figure of the
// paper's experimental study (§III). Each harness returns structured results
// plus a text rendering with the same rows/series the paper reports, so the
// repository regenerates every experiment:
//
//   - Fig 2  — infrastructure test: TorchServe vs the ETUDE server on empty
//     responses under a 1,000 req/s ramp;
//   - §III-A — synthetic-vs-real click-log validation;
//   - Fig 3  — micro-benchmark: serial p90 latency vs catalog size across
//     devices and execution modes;
//   - Fig 4  — end-to-end latency/throughput of all models per scenario and
//     instance type;
//   - Table I — cost-efficient deployment options per scenario;
//   - §III-C — the RecBole implementation issues (RepeatNet, SR-GNN,
//     GC-SAN, LightSANs).
//
// Harnesses accept scaled-down durations/rates so tests finish in seconds;
// the paper-scale settings are the documented defaults.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"etude/internal/cluster"
	"etude/internal/loadgen"
	"etude/internal/metrics"
	"etude/internal/objstore"
	"etude/internal/torchserve"
	"etude/internal/workload"
)

// Fig2Config controls the infrastructure test.
type Fig2Config struct {
	// TargetRate is the ramp target (paper: 1,000 req/s).
	TargetRate float64
	// Duration is the ramp length (paper: 10 minutes).
	Duration time.Duration
	// Tick is the load generator quantum (paper: 1s; tests use less).
	Tick time.Duration
	// TorchServe configures the baseline (DefaultConfig matches the paper's
	// 2-vCPU deployment).
	TorchServe torchserve.Config
	// Seed drives the synthetic session workload.
	Seed int64
}

// DefaultFig2Config returns the paper-scale settings.
func DefaultFig2Config() Fig2Config {
	return Fig2Config{
		TargetRate: 1000,
		Duration:   10 * time.Minute,
		Tick:       time.Second,
		TorchServe: torchserve.DefaultConfig(),
		Seed:       1,
	}
}

// Fig2Series is one server's measured behaviour under the ramp.
type Fig2Series struct {
	Server  string              `json:"server"`
	Overall metrics.Snapshot    `json:"overall"`
	Errors  int64               `json:"errors"`
	Sent    int64               `json:"sent"`
	Series  []metrics.TickStats `json:"series"`
}

// Fig2Result holds both servers' series.
type Fig2Result struct {
	Etude      Fig2Series `json:"etude"`
	TorchServe Fig2Series `json:"torchserve"`
}

// Fig2 runs the infrastructure test live: both servers answer empty
// responses (no model inference), deployed as cluster pods, each load
// tested with the backpressure-aware generator.
func Fig2(ctx context.Context, cfg Fig2Config) (*Fig2Result, error) {
	c := cluster.New(objstore.NewMemBucket())
	defer c.Teardown()

	etudeSvc, err := c.Deploy(ctx, "etude-static", cluster.PodSpec{Runtime: cluster.RuntimeEtudeStatic}, 1)
	if err != nil {
		return nil, fmt.Errorf("experiments: deploying static server: %w", err)
	}
	tsSvc, err := c.Deploy(ctx, "torchserve", cluster.PodSpec{
		Runtime:    cluster.RuntimeTorchServe,
		TorchServe: cfg.TorchServe,
	}, 1)
	if err != nil {
		return nil, fmt.Errorf("experiments: deploying torchserve: %w", err)
	}

	res := &Fig2Result{}
	for _, target := range []struct {
		name string
		svc  *cluster.Service
		out  *Fig2Series
	}{
		{"etude", etudeSvc, &res.Etude},
		{"torchserve", tsSvc, &res.TorchServe},
	} {
		gen, err := workload.NewGenerator(workload.Spec{
			CatalogSize: 10_000, NumClicks: 1,
			AlphaLength: 2.2, AlphaClicks: 1.6, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		run, err := loadgen.Run(ctx, loadgen.Config{
			TargetRate:     cfg.TargetRate,
			Duration:       cfg.Duration,
			Tick:           cfg.Tick,
			RequestTimeout: time.Second,
		}, gen, target.svc.Target())
		if err != nil {
			return nil, fmt.Errorf("experiments: load against %s: %w", target.name, err)
		}
		*target.out = Fig2Series{
			Server:  target.name,
			Overall: run.Recorder.Overall(),
			Errors:  run.Recorder.Errors(),
			Sent:    run.Recorder.Sent(),
			Series:  run.Recorder.Series(),
		}
	}
	return res, nil
}

// Render prints the figure's story: p90 and error counts for both servers.
func (r *Fig2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 2 — infrastructure test (empty responses)\n")
	fmt.Fprintf(&b, "%-12s %10s %12s %12s %10s\n", "server", "requests", "p90", "p99", "errors")
	for _, s := range []Fig2Series{r.Etude, r.TorchServe} {
		fmt.Fprintf(&b, "%-12s %10d %12s %12s %10d\n",
			s.Server, s.Sent, s.Overall.P90.Round(time.Microsecond), s.Overall.P99.Round(time.Microsecond), s.Errors)
	}
	return b.String()
}

// Metrics flattens the comparison for the bench harness. Fig 2 is a
// wall-clock experiment, so cross-machine gating keys off the
// dimensionless ratios; absolute latencies are still recorded for
// same-host trajectories.
func (r *Fig2Result) Metrics() map[string]float64 {
	m := map[string]float64{}
	for _, s := range []Fig2Series{r.Etude, r.TorchServe} {
		pre := keyify(s.Server)
		putSnap(m, pre+"/latency", s.Overall)
		m[pre+"/sent"] = float64(s.Sent)
		m[pre+"/error_rate"] = ratio(float64(s.Errors), float64(s.Sent))
	}
	m["p90_ratio_torchserve_over_etude"] = ratio(msF(r.TorchServe.Overall.P90), msF(r.Etude.Overall.P90))
	return m
}
