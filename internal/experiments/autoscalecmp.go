package experiments

import (
	"fmt"
	"strings"
	"time"

	"etude/internal/autoscale"
	"etude/internal/device"
	"etude/internal/model"
)

// AutoscaleCmpConfig controls the autoscaling extension study: a diurnal
// load curve served by a static peak-sized fleet vs the utilisation-driven
// autoscaler.
type AutoscaleCmpConfig struct {
	// Device is the instance type (default CPU).
	Device device.Spec
	// Model and CatalogSize define the deployment.
	Model       string
	CatalogSize int
	// TroughRate and PeakRate bound the diurnal curve (req/s).
	TroughRate, PeakRate float64
	// DayLength is one diurnal period of virtual time.
	DayLength time.Duration
	// Days is the number of periods simulated.
	Days int
	// PeakReplicas sizes the static fleet and caps the autoscaler.
	PeakReplicas int
	// Seed drives sampling.
	Seed int64
}

// DefaultAutoscaleCmpConfig returns the standard study: C=1e6 on CPUs,
// 40→500 req/s over 4-minute "days", two days.
func DefaultAutoscaleCmpConfig() AutoscaleCmpConfig {
	return AutoscaleCmpConfig{
		Device:       device.CPU(),
		Model:        "gru4rec",
		CatalogSize:  1_000_000,
		TroughRate:   40,
		PeakRate:     500,
		DayLength:    240 * time.Second,
		Days:         2,
		PeakReplicas: 4,
		Seed:         1,
	}
}

// AutoscaleCmpResult compares the two fleets.
type AutoscaleCmpResult struct {
	Static *autoscale.Result `json:"static"`
	Auto   *autoscale.Result `json:"auto"`
	// SavingFraction is 1 − auto/static instance-seconds.
	SavingFraction float64 `json:"saving_fraction"`
	// StaticMonthlyUSD and AutoMonthlyUSD price the average fleets.
	StaticMonthlyUSD float64 `json:"static_monthly_usd"`
	AutoMonthlyUSD   float64 `json:"auto_monthly_usd"`
	duration         time.Duration
}

// AutoscaleComparison runs the study.
func AutoscaleComparison(cfg AutoscaleCmpConfig) (*AutoscaleCmpResult, error) {
	if cfg.Model == "" || cfg.CatalogSize <= 0 || cfg.PeakReplicas < 1 || cfg.Days < 1 {
		return nil, fmt.Errorf("experiments: invalid autoscale config %+v", cfg)
	}
	profile := autoscale.DiurnalProfile(cfg.TroughRate, cfg.PeakRate, int(cfg.DayLength/time.Second))
	duration := time.Duration(cfg.Days) * cfg.DayLength
	base := autoscale.Config{
		Device:   cfg.Device,
		Model:    cfg.Model,
		ModelCfg: model.Config{CatalogSize: cfg.CatalogSize, Seed: cfg.Seed},
		JIT:      true,
		Interval: 5 * time.Second,
		Seed:     cfg.Seed,
	}
	staticCfg := base
	staticCfg.MinReplicas, staticCfg.MaxReplicas = cfg.PeakReplicas, cfg.PeakReplicas
	static, err := autoscale.Run(staticCfg, profile, duration)
	if err != nil {
		return nil, fmt.Errorf("experiments: static fleet: %w", err)
	}
	autoCfg := base
	autoCfg.MinReplicas, autoCfg.MaxReplicas = 1, cfg.PeakReplicas
	auto, err := autoscale.Run(autoCfg, profile, duration)
	if err != nil {
		return nil, fmt.Errorf("experiments: autoscaled fleet: %w", err)
	}
	return &AutoscaleCmpResult{
		Static:           static,
		Auto:             auto,
		SavingFraction:   1 - auto.InstanceSeconds/static.InstanceSeconds,
		StaticMonthlyUSD: static.MonthlyUSD(cfg.Device, duration),
		AutoMonthlyUSD:   auto.MonthlyUSD(cfg.Device, duration),
		duration:         duration,
	}, nil
}

// Render prints the comparison.
func (r *AutoscaleCmpResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Autoscaling extension — diurnal load, static peak fleet vs autoscaler\n")
	fmt.Fprintf(&b, "%-10s %16s %12s %12s %8s %6s %6s\n",
		"fleet", "instance-seconds", "cost/month", "p90", "errors", "ups", "downs")
	for _, row := range []struct {
		name string
		res  *autoscale.Result
		usd  float64
	}{
		{"static", r.Static, r.StaticMonthlyUSD},
		{"autoscaled", r.Auto, r.AutoMonthlyUSD},
	} {
		fmt.Fprintf(&b, "%-10s %16.0f %12s %12s %8d %6d %6d\n",
			row.name, row.res.InstanceSeconds, fmt.Sprintf("$%.0f", row.usd),
			row.res.Recorder.Overall().P90.Round(time.Microsecond),
			row.res.Recorder.Errors(), row.res.ScaleUps, row.res.ScaleDowns)
	}
	fmt.Fprintf(&b, "saving: %.0f%% of instance-time at the same SLO\n", r.SavingFraction*100)
	return b.String()
}

// Metrics emits the static-vs-autoscaled comparison: cost, control
// actions and the headline saving fraction.
func (r *AutoscaleCmpResult) Metrics() map[string]float64 {
	m := map[string]float64{}
	for _, fleet := range []struct {
		name string
		res  *autoscale.Result
		usd  float64
	}{
		{"static", r.Static, r.StaticMonthlyUSD},
		{"autoscaled", r.Auto, r.AutoMonthlyUSD},
	} {
		pre := fleet.name
		putSnap(m, pre+"/latency", fleet.res.Recorder.Overall())
		m[pre+"/monthly_usd"] = fleet.usd
		m[pre+"/instance_seconds"] = fleet.res.InstanceSeconds
		m[pre+"/peak_replicas"] = float64(fleet.res.PeakReplicas)
		m[pre+"/scale_ups"] = float64(fleet.res.ScaleUps)
		m[pre+"/scale_downs"] = float64(fleet.res.ScaleDowns)
		m[pre+"/error_rate"] = ratio(float64(fleet.res.Recorder.Errors()), float64(fleet.res.Sent))
	}
	m["saving_fraction"] = r.SavingFraction
	return m
}
