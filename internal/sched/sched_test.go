package sched

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"etude/internal/device"
	"etude/internal/model"
)

func newCore(t *testing.T, cfg Config) *Core[int] {
	t.Helper()
	c, err := NewCore[int](cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{MaxBatch: 0, FlushEvery: time.Millisecond},
		{MaxBatch: 4, FlushEvery: 0},
		{MaxBatch: 4, FlushEvery: time.Millisecond, TargetBatch: 8},
		{MaxBatch: 4, FlushEvery: time.Millisecond, Tenants: []TenantConfig{{Name: ""}}},
		{MaxBatch: 4, FlushEvery: time.Millisecond, Tenants: []TenantConfig{{Name: "a"}, {Name: "a"}}},
	}
	for i, cfg := range bad {
		if _, err := NewCore[int](cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestParseTenants(t *testing.T) {
	got, err := ParseTenants("a:3,b:1")
	if err != nil {
		t.Fatal(err)
	}
	want := []TenantConfig{{Name: "a", Weight: 3}, {Name: "b", Weight: 1}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("ParseTenants = %+v, want %+v", got, want)
	}
	got, err = ParseTenants("interactive:4:0, batch:1:1")
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Priority != 0 || got[1].Priority != 1 || got[1].Name != "batch" {
		t.Fatalf("priority parse = %+v", got)
	}
	if got, err := ParseTenants("solo"); err != nil || got[0].Weight != 1 {
		t.Fatalf("bare name: %+v, %v", got, err)
	}
	if n, err := ParseTenants(""); err != nil || n != nil {
		t.Fatalf("empty spec: %+v, %v", n, err)
	}
	for _, bad := range []string{"a:x", "a:1:2:3", ":3", "a:-1"} {
		if _, err := ParseTenants(bad); err == nil {
			t.Errorf("ParseTenants(%q) accepted", bad)
		}
	}
}

// TestWDRRSharesConvergeToWeights is the fairness acceptance property:
// two saturated tenants with weights 3:1 receive throughput shares within
// ±10% of 0.75/0.25.
func TestWDRRSharesConvergeToWeights(t *testing.T) {
	c := newCore(t, Config{
		Tenants:    []TenantConfig{{Name: "a", Weight: 3}, {Name: "b", Weight: 1}},
		MaxBatch:   8,
		FlushEvery: ms(2),
	})
	// Keep both tenants backlogged; count served per tenant over many batches.
	served := map[string]int{}
	now := time.Duration(0)
	for round := 0; round < 200; round++ {
		for c.tenants["a"].len() < 16 {
			if err := c.Enqueue(now, "a", 0, 1); err != nil {
				t.Fatal(err)
			}
		}
		for c.tenants["b"].len() < 16 {
			if err := c.Enqueue(now, "b", 0, 2); err != nil {
				t.Fatal(err)
			}
		}
		now += ms(2)
		batch, expired := c.Assemble(now)
		if len(expired) != 0 {
			t.Fatalf("unexpected expiries: %d", len(expired))
		}
		if len(batch) != 8 {
			t.Fatalf("saturated assemble returned %d, want full target 8", len(batch))
		}
		for _, v := range batch {
			if v == 1 {
				served["a"]++
			} else {
				served["b"]++
			}
		}
	}
	total := served["a"] + served["b"]
	shareA := float64(served["a"]) / float64(total)
	if shareA < 0.75*0.9 || shareA > 0.75*1.1 {
		t.Fatalf("tenant a share = %.3f, want 0.75 ± 10%%", shareA)
	}
}

// TestWDRRFairnessAcrossUnevenArrival: a tenant that was idle banks no
// deficit — when it wakes it gets its weighted share from then on, not a
// burst of saved-up credit.
func TestWDRRNoBankedCreditWhileIdle(t *testing.T) {
	c := newCore(t, Config{
		Tenants:    []TenantConfig{{Name: "a", Weight: 1}, {Name: "b", Weight: 1}},
		MaxBatch:   4,
		FlushEvery: ms(2),
	})
	now := time.Duration(0)
	// Only A has traffic for many rounds.
	for round := 0; round < 50; round++ {
		for i := 0; i < 4; i++ {
			_ = c.Enqueue(now, "a", 0, 1)
		}
		batch, _ := c.Assemble(now)
		if len(batch) != 4 {
			t.Fatalf("round %d: batch %d", round, len(batch))
		}
	}
	// B wakes up: in a saturated 1:1 round it must get ~half, not the whole
	// batch off banked credit.
	for i := 0; i < 8; i++ {
		_ = c.Enqueue(now, "a", 0, 1)
		_ = c.Enqueue(now, "b", 0, 2)
	}
	batch, _ := c.Assemble(now)
	nb := 0
	for _, v := range batch {
		if v == 2 {
			nb++
		}
	}
	if nb != 2 {
		t.Fatalf("woken tenant got %d of 4 slots in a 1:1 round, want 2", nb)
	}
}

// TestStrictPriorityTiers: a lower tier contributes nothing while a
// higher tier has pending work.
func TestStrictPriorityTiers(t *testing.T) {
	c := newCore(t, Config{
		Tenants: []TenantConfig{
			{Name: "interactive", Weight: 1, Priority: 0},
			{Name: "batch", Weight: 8, Priority: 1},
		},
		MaxBatch:   4,
		FlushEvery: ms(2),
	})
	now := time.Duration(0)
	for i := 0; i < 6; i++ {
		_ = c.Enqueue(now, "interactive", 0, 1)
		_ = c.Enqueue(now, "batch", 0, 2)
	}
	batch, _ := c.Assemble(now)
	for _, v := range batch {
		if v != 1 {
			t.Fatalf("batch-tier entry served while the interactive tier had %d pending", c.tenants["interactive"].len())
		}
	}
	// Once the interactive tier drains, the batch tier fills the slack.
	batch, _ = c.Assemble(now)
	want := map[int]int{1: 2, 2: 2}
	got := map[int]int{}
	for _, v := range batch {
		got[v]++
	}
	if got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("mixed batch = %v, want 2 interactive + 2 batch", got)
	}
}

func TestMaxQueueSheds(t *testing.T) {
	c := newCore(t, Config{MaxBatch: 64, FlushEvery: ms(2), MaxQueue: 3})
	now := time.Duration(0)
	for i := 0; i < 3; i++ {
		if err := c.Enqueue(now, "a", 0, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Enqueue(now, "a", 0, 99); !errors.Is(err, ErrShed) {
		t.Fatalf("over-bound enqueue = %v, want ErrShed", err)
	}
	// Other tenants' queues are unaffected — the bound is per tenant.
	if err := c.Enqueue(now, "b", 0, 1); err != nil {
		t.Fatalf("other tenant shed: %v", err)
	}
	st := statsFor(t, c, "a")
	if st.Shed != 1 || st.Enqueued != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestExpiredDroppedAtAssembly: entries whose deadline passed while
// queued come back in the expired list — never in the batch.
func TestExpiredDroppedAtAssembly(t *testing.T) {
	c := newCore(t, Config{MaxBatch: 8, FlushEvery: ms(2)})
	_ = c.Enqueue(0, "a", ms(1), 1)  // dies at 1ms
	_ = c.Enqueue(0, "a", ms(50), 2) // alive
	_ = c.Enqueue(0, "a", 0, 3)      // no deadline
	batch, expired := c.Assemble(ms(2))
	if len(expired) != 1 || expired[0] != 1 {
		t.Fatalf("expired = %v, want the 1ms entry", expired)
	}
	if len(batch) != 2 {
		t.Fatalf("batch = %v, want both live entries", batch)
	}
	st := statsFor(t, c, "a")
	if st.Expired != 1 || st.Served != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestNextFlushAtEmptyBufferReset: an empty core holds no flush instant;
// the first enqueue establishes a fresh FlushEvery window from its own
// enqueue time — the "empty-buffer timer reset" semantics under the
// virtual clock.
func TestNextFlushAtEmptyBufferReset(t *testing.T) {
	c := newCore(t, Config{MaxBatch: 8, FlushEvery: ms(2)})
	if _, ok := c.NextFlushAt(); ok {
		t.Fatal("empty core reported a flush instant")
	}
	_ = c.Enqueue(ms(10), "a", 0, 1)
	at, ok := c.NextFlushAt()
	if !ok || at != ms(12) {
		t.Fatalf("NextFlushAt = %v, %v; want 12ms", at, ok)
	}
	batch, _ := c.Assemble(ms(12))
	if len(batch) != 1 {
		t.Fatalf("flush served %d", len(batch))
	}
	if _, ok := c.NextFlushAt(); ok {
		t.Fatal("drained core still reports a flush instant")
	}
	// A much later arrival gets its own window, not the stale one.
	_ = c.Enqueue(ms(100), "a", 0, 2)
	if at, _ := c.NextFlushAt(); at != ms(102) {
		t.Fatalf("fresh window = %v, want 102ms", at)
	}
}

// TestReadyCoalescesAtTargetBatch: once TargetBatch entries are pending
// the core is ready immediately — no waiting out the flush interval.
func TestReadyCoalescesAtTargetBatch(t *testing.T) {
	c := newCore(t, Config{MaxBatch: 64, TargetBatch: 4, FlushEvery: time.Hour})
	now := time.Duration(0)
	for i := 0; i < 3; i++ {
		_ = c.Enqueue(now, "a", 0, i)
		if c.Ready(now) {
			t.Fatalf("ready with %d < target pending", i+1)
		}
	}
	_ = c.Enqueue(now, "a", 0, 3)
	if !c.Ready(now) {
		t.Fatal("not ready at TargetBatch pending")
	}
	batch, _ := c.Assemble(now)
	if len(batch) != 4 {
		t.Fatalf("coalesced batch = %d, want the full target 4", len(batch))
	}
	// Assembly is capped at TargetBatch even when more is pending.
	for i := 0; i < 10; i++ {
		_ = c.Enqueue(now, "a", 0, i)
	}
	batch, _ = c.Assemble(now)
	if len(batch) != 4 {
		t.Fatalf("assembled %d, want TargetBatch 4", len(batch))
	}
}

// TestNoBatchWaitsPastTightestDeadline is the scheduler-level property
// test: for random arrival patterns, the instant the core picks to flush
// never lies past any queued entry's deadline, and any entry that IS past
// its deadline at assembly is dropped, never batched.
func TestNoBatchWaitsPastTightestDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		c := newCore(t, Config{
			Tenants: []TenantConfig{
				{Name: "a", Weight: 1 + rng.Intn(4)},
				{Name: "b", Weight: 1 + rng.Intn(4)},
			},
			MaxBatch:      16,
			FlushEvery:    ms(2),
			DeadlineSlack: -1, // exact-deadline flushing for the property
		})
		now := time.Duration(rng.Int63n(int64(time.Second)))
		type tracked struct {
			deadline time.Duration
		}
		byValue := map[int]tracked{}
		n := 1 + rng.Intn(12)
		for i := 0; i < n; i++ {
			now += time.Duration(rng.Int63n(int64(ms(1))))
			var dl time.Duration
			if rng.Intn(2) == 0 {
				dl = now + time.Duration(rng.Int63n(int64(ms(4))))
			}
			tn := "a"
			if rng.Intn(2) == 0 {
				tn = "b"
			}
			byValue[i] = tracked{deadline: dl}
			if err := c.Enqueue(now, tn, dl, i); err != nil {
				t.Fatal(err)
			}
		}
		at, ok := c.NextFlushAt()
		if !ok {
			t.Fatal("no flush instant with pending entries")
		}
		for v, tr := range byValue {
			if tr.deadline > 0 && at > tr.deadline {
				t.Fatalf("trial %d: flush instant %v waits past entry %d deadline %v", trial, at, v, tr.deadline)
			}
		}
		// Advance to the flush instant and assemble: nothing in the batch
		// may be past-deadline at that instant.
		flushNow := at
		if flushNow < now {
			flushNow = now
		}
		batch, expired := c.Assemble(flushNow)
		for _, v := range batch {
			if dl := byValue[v].deadline; dl > 0 && dl < flushNow {
				t.Fatalf("trial %d: batched entry %d was dead (deadline %v, flush %v)", trial, v, dl, flushNow)
			}
		}
		for _, v := range expired {
			if dl := byValue[v].deadline; dl == 0 || dl > flushNow {
				t.Fatalf("trial %d: live entry %d reported expired", trial, v)
			}
		}
	}
}

func TestUnknownTenantLazilyCreated(t *testing.T) {
	c := newCore(t, Config{Tenants: []TenantConfig{{Name: "a", Weight: 3}}, MaxBatch: 8, FlushEvery: ms(2)})
	if err := c.Enqueue(0, "surprise", 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Enqueue(0, "", 0, 2); err != nil {
		t.Fatal(err)
	}
	st := statsFor(t, c, "surprise")
	if st.Weight != 1 || st.Priority != 0 {
		t.Fatalf("lazy tenant contract = %+v, want weight 1 tier 0", st)
	}
	if s := statsFor(t, c, DefaultTenant); s.Enqueued != 1 {
		t.Fatalf("unlabelled request not in %q queue: %+v", DefaultTenant, s)
	}
}

func statsFor(t *testing.T, c *Core[int], tenant string) TenantStats {
	t.Helper()
	for _, s := range c.Stats() {
		if s.Tenant == tenant {
			return s
		}
	}
	t.Fatalf("no stats for tenant %q", tenant)
	return TenantStats{}
}

func TestAmortizedBatch(t *testing.T) {
	cost := model.Cost{
		Catalog: 1_000_000, SharedBytes: 256e6, PerRequestBytes: 8e6,
		EncoderFLOPs: 1e6, MIPSFLOPs: 1.28e8, KernelLaunches: 30,
	}
	t4 := device.GPUT4()
	b := AmortizedBatch(t4, cost, false, 0)
	if b < 2 || b > t4.EffectiveMaxBatch(cost) {
		t.Fatalf("AmortizedBatch = %d, want inside (1, %d]", b, t4.EffectiveMaxBatch(cost))
	}
	// The knee criterion: at B the fixed share is ≤ eps of marginal cost;
	// at B−1 it is not.
	t1 := t4.BatchInference(cost, 1, false)
	t2 := t4.BatchInference(cost, 2, false)
	perReq := float64(t2 - t1)
	fixed := float64(t1) - perReq
	eps := DefaultAmortizationEps
	if fixed/(float64(b)*perReq) > eps {
		t.Fatalf("B=%d does not satisfy the knee criterion", b)
	}
	if b > 1 && fixed/(float64(b-1)*perReq) <= eps {
		t.Fatalf("B=%d is not minimal", b)
	}
	// Tighter eps grows the target; looser shrinks it.
	if loose := AmortizedBatch(t4, cost, false, 0.5); loose > b {
		t.Fatalf("looser eps produced a larger batch: %d > %d", loose, b)
	}
	if tight := AmortizedBatch(t4, cost, false, 0.001); tight < b {
		t.Fatalf("tighter eps produced a smaller batch: %d < %d", tight, b)
	}
	// CPU specs have no amortisation curve.
	if got := AmortizedBatch(device.CPU(), cost, false, 0); got != 1 {
		t.Fatalf("CPU AmortizedBatch = %d, want 1", got)
	}
}

func TestServiceTimeMatchesCostModel(t *testing.T) {
	cost := model.Cost{Catalog: 100_000, SharedBytes: 25.6e6, PerRequestBytes: 8e5, MIPSFLOPs: 1.28e7, KernelLaunches: 30}
	spec := device.GPUT4()
	if got, want := ServiceTime(spec, cost, 64, true), spec.BatchInference(cost, 64, true); got != want {
		t.Fatalf("ServiceTime = %v, want %v", got, want)
	}
}
