// Package sched implements SLO-aware multi-tenant batch scheduling for the
// inference server: per-tenant queues in front of the batcher, weighted
// deficit-round-robin (WDRR) fairness with optional strict priority tiers,
// deadline-aware batch assembly (a buffer never waits past the tightest
// member deadline — it flushes early instead, via batching.Assembly), and
// batch-size selection driven by the device cost model's amortisation curve
// rather than a fixed MaxBatch.
//
// The scheduling state machine lives in Core, which is deliberately
// substrate-agnostic: it holds no clock, no goroutine and no timer — every
// method takes an explicit monotonic timestamp. The live Dispatcher drives
// a Core from the wall clock; the discrete-event simulator (internal/sim)
// drives the very same Core from virtual time, so fairness and isolation
// properties proven in deterministic simulation are properties of the code
// the server runs, not of a parallel model of it.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"etude/internal/batching"
)

// ErrShed is returned when a tenant's queue is at its bound: admitting
// more would let one tenant's backlog grow without limit. Callers answer
// 429 — the client should retry after backoff.
var ErrShed = errors.New("sched: tenant queue full")

// ErrExpired is returned for entries whose deadline passed while queued:
// they are dropped at assembly instead of spending accelerator FLOPs.
// Callers answer 504. It matches errors.Is(err, context.DeadlineExceeded)
// so budget-generic callers need no special case.
var ErrExpired error = expiredError{}

type expiredError struct{}

func (expiredError) Error() string { return "sched: deadline expired in tenant queue" }

func (expiredError) Is(target error) bool { return target == context.DeadlineExceeded }

// ErrClosed is returned by the live dispatcher after Close.
var ErrClosed = errors.New("sched: dispatcher closed")

// DefaultTenant is the queue name for requests that carry no tenant label.
const DefaultTenant = "default"

// TenantConfig declares one tenant's scheduling contract.
type TenantConfig struct {
	// Name keys the tenant's queue (the X-Tenant header value).
	Name string
	// Weight is the tenant's WDRR weight: under saturation, tenants in the
	// same priority tier receive throughput proportional to their weights.
	// Minimum (and default) 1.
	Weight int
	// Priority is the tenant's strict tier: lower tiers are exhausted
	// before higher ones contribute anything to a batch. Default 0. Use
	// sparingly — a saturated tier starves everything below it; weights
	// within a tier are the isolation mechanism, priorities are for
	// traffic classes that must always win (e.g. interactive vs batch).
	Priority int
}

// Config controls the scheduler.
type Config struct {
	// Tenants declares the known tenants. Requests from undeclared tenants
	// are admitted into a lazily-created queue with Weight 1, Priority 0 —
	// unknown traffic is isolated, not rejected.
	Tenants []TenantConfig
	// MaxBatch is the hard batch-size cap (accelerator memory bound).
	MaxBatch int
	// TargetBatch is the amortisation-driven batch size the scheduler
	// aims for: once this many requests are pending it assembles a batch
	// immediately rather than waiting out FlushEvery, and assembly never
	// exceeds it while smaller flushes remain deadline-bounded. Derive it
	// with AmortizedBatch from the device cost model. 0 means MaxBatch
	// (pure size/time batching, the paper's fixed policy).
	TargetBatch int
	// FlushEvery bounds how long the oldest pending request may wait.
	FlushEvery time.Duration
	// DeadlineSlack reserves headroom before the tightest member deadline
	// when pulling a flush early (see batching.Assembly). Zero defaults
	// like batching.Config (FlushEvery/4 capped at 5ms); set it to the
	// expected batch service time when a cost model is available.
	DeadlineSlack time.Duration
	// MaxQueue bounds each tenant's queue; enqueues beyond it shed with
	// ErrShed. 0 means unbounded (not recommended under overload: a
	// bounded queue is what keeps an admitted request's wait bounded).
	MaxQueue int
	// Quantum is the WDRR credit per weight unit added each time a queue's
	// turn comes around, in requests. Default 1: the smallest quantum
	// gives the finest-grained interleaving.
	Quantum int
}

func (c Config) withDefaults() Config {
	if c.MaxBatch < 1 {
		c.MaxBatch = 1
	}
	if c.TargetBatch <= 0 || c.TargetBatch > c.MaxBatch {
		c.TargetBatch = c.MaxBatch
	}
	if c.Quantum < 1 {
		c.Quantum = 1
	}
	return c
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	if c.MaxBatch < 1 {
		return fmt.Errorf("sched: MaxBatch must be ≥ 1, got %d", c.MaxBatch)
	}
	if c.FlushEvery <= 0 {
		return fmt.Errorf("sched: FlushEvery must be positive, got %v", c.FlushEvery)
	}
	if c.TargetBatch > c.MaxBatch {
		return fmt.Errorf("sched: TargetBatch %d exceeds MaxBatch %d", c.TargetBatch, c.MaxBatch)
	}
	seen := map[string]bool{}
	for _, tc := range c.Tenants {
		if tc.Name == "" {
			return fmt.Errorf("sched: tenant with empty name")
		}
		if seen[tc.Name] {
			return fmt.Errorf("sched: duplicate tenant %q", tc.Name)
		}
		seen[tc.Name] = true
		if tc.Weight < 0 {
			return fmt.Errorf("sched: tenant %q has negative weight %d", tc.Name, tc.Weight)
		}
	}
	return nil
}

// ParseTenants decodes the CLI weight syntax "a:3,b:1" (weight defaults
// to 1 when omitted: "a,b:2"). An optional third field sets the strict
// priority tier: "interactive:4:0,batch:1:1".
func ParseTenants(s string) ([]TenantConfig, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []TenantConfig
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		tc := TenantConfig{Name: strings.TrimSpace(fields[0]), Weight: 1}
		if tc.Name == "" {
			return nil, fmt.Errorf("sched: empty tenant name in %q", s)
		}
		if len(fields) > 3 {
			return nil, fmt.Errorf("sched: tenant %q wants name[:weight[:priority]]", part)
		}
		if len(fields) >= 2 {
			w, err := parsePositive(fields[1])
			if err != nil {
				return nil, fmt.Errorf("sched: tenant %q weight: %v", tc.Name, err)
			}
			tc.Weight = w
		}
		if len(fields) == 3 {
			p, err := parsePositive(fields[2])
			if err != nil {
				return nil, fmt.Errorf("sched: tenant %q priority: %v", tc.Name, err)
			}
			tc.Priority = p
		}
		out = append(out, tc)
	}
	return out, nil
}

func parsePositive(s string) (int, error) {
	n := 0
	if s == "" {
		return 0, fmt.Errorf("empty")
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, fmt.Errorf("%q is not a non-negative integer", s)
		}
		n = n*10 + int(r-'0')
		if n > 1<<20 {
			return 0, fmt.Errorf("%q is out of range", s)
		}
	}
	return n, nil
}

// TenantStats counts one tenant's scheduling outcomes.
type TenantStats struct {
	// Tenant is the queue name.
	Tenant string
	// Weight and Priority echo the effective scheduling contract.
	Weight   int
	Priority int
	// Enqueued counts admissions into the queue.
	Enqueued int64
	// Served counts entries assembled into batches.
	Served int64
	// Shed counts enqueues refused at the queue bound (429).
	Shed int64
	// Expired counts entries dropped at assembly because their deadline
	// had passed (504) — deadline misses the scheduler refused to spend
	// FLOPs on.
	Expired int64
	// Pending is the current queue depth.
	Pending int
}

// entry is one queued request.
type entry[T any] struct {
	v        T
	enq      time.Duration
	deadline time.Duration // 0 = none
}

// queue is one tenant's FIFO plus its WDRR state.
type queue[T any] struct {
	cfg     TenantConfig
	items   []entry[T] // FIFO; head at items[0] (amortised via headIdx)
	head    int
	deficit int
	stats   TenantStats
}

func (q *queue[T]) len() int { return len(q.items) - q.head }

func (q *queue[T]) push(e entry[T]) { q.items = append(q.items, e) }

func (q *queue[T]) pop() entry[T] {
	e := q.items[q.head]
	var zero entry[T]
	q.items[q.head] = zero // release for GC
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return e
}

// Core is the scheduling state machine: per-tenant FIFO queues drained by
// weighted deficit round robin across strict priority tiers, with
// deadline-aware flush timing delegated to batching.Assembly.
//
// Core is NOT goroutine-safe and holds no clock: every method takes `now`
// explicitly. The live Dispatcher serialises access behind a mutex; the
// simulator is single-threaded by construction.
type Core[T any] struct {
	cfg Config
	asm batching.Assembly
	// tenants indexes queues by name; tiers holds the same queues grouped
	// by strict priority, ascending, in declaration order within a tier —
	// the WDRR visit order.
	tenants map[string]*queue[T]
	tiers   []*tier[T]
	pending int
}

type tier[T any] struct {
	priority int
	queues   []*queue[T]
	// cursor is the persistent round-robin position: fairness must carry
	// across batches, not restart at the first tenant every flush.
	cursor int
}

// NewCore builds a Core. The config is validated and defaulted.
func NewCore[T any](cfg Config) (*Core[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	c := &Core[T]{
		cfg: cfg,
		asm: batching.Config{
			MaxBatch:      cfg.TargetBatch,
			FlushEvery:    cfg.FlushEvery,
			DeadlineSlack: cfg.DeadlineSlack,
		}.Assembly(),
		tenants: make(map[string]*queue[T]),
	}
	for _, tc := range cfg.Tenants {
		c.addQueue(tc)
	}
	return c, nil
}

// addQueue registers a tenant queue and threads it into its tier.
func (c *Core[T]) addQueue(tc TenantConfig) *queue[T] {
	if tc.Weight < 1 {
		tc.Weight = 1
	}
	q := &queue[T]{cfg: tc}
	q.stats.Tenant = tc.Name
	q.stats.Weight = tc.Weight
	q.stats.Priority = tc.Priority
	c.tenants[tc.Name] = q
	for _, tr := range c.tiers {
		if tr.priority == tc.Priority {
			tr.queues = append(tr.queues, q)
			return q
		}
	}
	c.tiers = append(c.tiers, &tier[T]{priority: tc.Priority, queues: []*queue[T]{q}})
	sort.SliceStable(c.tiers, func(i, j int) bool { return c.tiers[i].priority < c.tiers[j].priority })
	return q
}

// lookup resolves (or lazily creates) the queue for a tenant name.
func (c *Core[T]) lookup(tenant string) *queue[T] {
	if tenant == "" {
		tenant = DefaultTenant
	}
	if q, ok := c.tenants[tenant]; ok {
		return q
	}
	return c.addQueue(TenantConfig{Name: tenant, Weight: 1})
}

// Enqueue admits one request into its tenant queue at time now. deadline
// is the request's absolute deadline on the caller's clock (0 = none).
// Returns ErrShed when the tenant's queue is at its bound.
func (c *Core[T]) Enqueue(now time.Duration, tenant string, deadline time.Duration, v T) error {
	q := c.lookup(tenant)
	if c.cfg.MaxQueue > 0 && q.len() >= c.cfg.MaxQueue {
		q.stats.Shed++
		return ErrShed
	}
	q.push(entry[T]{v: v, enq: now, deadline: deadline})
	q.stats.Enqueued++
	c.pending++
	return nil
}

// Pending returns the total queued entries across all tenants.
func (c *Core[T]) Pending() int { return c.pending }

// Ready reports whether a batch should be assembled immediately: the
// pending count has reached the amortisation target (waiting further buys
// no amortisation, only latency) or the flush instant has arrived.
func (c *Core[T]) Ready(now time.Duration) bool {
	if c.pending == 0 {
		return false
	}
	if c.pending >= c.cfg.TargetBatch {
		return true
	}
	at, ok := c.NextFlushAt()
	return ok && now >= at
}

// NextFlushAt returns the instant the buffered work must flush — the
// Assembly bound over all queued entries: the oldest entry's
// enqueue+FlushEvery, pulled earlier to the tightest member deadline
// minus slack. ok is false when nothing is queued.
func (c *Core[T]) NextFlushAt() (at time.Duration, ok bool) {
	for _, tr := range c.tiers {
		for _, q := range tr.queues {
			for i := q.head; i < len(q.items); i++ {
				e := q.items[i]
				bound := c.asm.FlushAt(e.enq, e.deadline)
				if !ok || bound < at {
					at, ok = bound, true
				}
			}
		}
	}
	return at, ok
}

// Assemble drains expired entries and builds the next batch at time now.
// Expired entries (deadline passed while queued) are returned separately
// so the caller can answer them 504 — they never consume batch slots or
// handler FLOPs. The batch is drained by WDRR: strict priority tiers in
// ascending order; within a tier each queue's turn credits
// Quantum×Weight deficit and serves up to its deficit, so saturated
// tenants converge to throughput shares proportional to their weights
// while idle tenants bank nothing. At most TargetBatch entries are
// assembled — the amortisation knee; a larger batch would add latency
// faster than it amortises fixed cost.
func (c *Core[T]) Assemble(now time.Duration) (batch, expired []T) {
	for _, tr := range c.tiers {
		for _, q := range tr.queues {
			expired = c.dropExpired(q, now, expired)
		}
	}
	if c.pending == 0 {
		return nil, expired
	}
	max := c.cfg.TargetBatch
	if max > c.pending {
		max = c.pending
	}
	batch = make([]T, 0, max)
	for _, tr := range c.tiers {
		c.drainTier(tr, &batch, max)
		if len(batch) >= max {
			break
		}
	}
	return batch, expired
}

// dropExpired filters dead entries out of one queue, preserving FIFO
// order of the survivors.
func (c *Core[T]) dropExpired(q *queue[T], now time.Duration, expired []T) []T {
	n := q.len()
	if n == 0 {
		return expired
	}
	live := q.items[:0]
	for i := q.head; i < len(q.items); i++ {
		e := q.items[i]
		if c.asm.Expired(e.deadline, now) {
			expired = append(expired, e.v)
			q.stats.Expired++
			c.pending--
			continue
		}
		live = append(live, e)
	}
	q.items = live
	q.head = 0
	return expired
}

// drainTier runs WDRR rounds over one priority tier until the batch is
// full or the tier is empty.
func (c *Core[T]) drainTier(tr *tier[T], batch *[]T, max int) {
	n := len(tr.queues)
	if n == 0 {
		return
	}
	idle := 0 // consecutive queues that contributed nothing
	for len(*batch) < max && idle < n {
		q := tr.queues[tr.cursor%n]
		tr.cursor = (tr.cursor + 1) % n
		if q.len() == 0 {
			// An empty queue banks no credit: DRR resets its deficit so a
			// tenant cannot save up idle turns and burst past its share.
			q.deficit = 0
			idle++
			continue
		}
		q.deficit += c.cfg.Quantum * q.cfg.Weight
		for q.deficit >= 1 && q.len() > 0 && len(*batch) < max {
			e := q.pop()
			*batch = append(*batch, e.v)
			q.deficit--
			q.stats.Served++
			c.pending--
		}
		if q.len() == 0 {
			q.deficit = 0
		}
		idle = 0
	}
}

// Stats returns a snapshot of every tenant's counters, sorted by tenant
// name for stable rendering.
func (c *Core[T]) Stats() []TenantStats {
	out := make([]TenantStats, 0, len(c.tenants))
	for _, q := range c.tenants {
		s := q.stats
		s.Pending = q.len()
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
