package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Handler processes one assembled batch and returns one response per
// request, in order. It runs on the dispatcher's goroutine: at most one
// batch is in flight at a time, modelling an accelerator executing one
// kernel sequence at a time.
type Handler[Req, Resp any] func(batch []Req) []Resp

// Dispatcher drives a Core from the wall clock: Submit enqueues into the
// caller's tenant queue and blocks for the response; a single dispatch
// goroutine arms a timer to the core's next flush instant (re-armed
// whenever an arrival tightens it), assembles WDRR batches, answers
// expired entries ErrExpired, and runs the handler.
type Dispatcher[Req, Resp any] struct {
	// mu guards the core. Contention is one short critical section per
	// enqueue and per flush — the handler runs outside the lock.
	mu   sync.Mutex
	core *Core[envelope[Req, Resp]]

	handler Handler[Req, Resp]
	now     func() time.Duration
	// kick wakes the dispatch goroutine when an arrival makes the buffer
	// ready or tightens its flush instant (capacity 1: wake-ups coalesce).
	kick    chan struct{}
	done    chan struct{}
	closed  sync.Once
	pending atomic.Int64
	flushes atomic.Int64
}

type envelope[Req, Resp any] struct {
	req    Req
	tenant string
	enq    time.Duration
	reply  chan result[Resp]
}

type result[Resp any] struct {
	resp Resp
	err  error
}

// NewDispatcher starts a dispatcher over the given scheduling config.
// Close must be called to stop the dispatch goroutine.
func NewDispatcher[Req, Resp any](cfg Config, handler Handler[Req, Resp]) (*Dispatcher[Req, Resp], error) {
	if handler == nil {
		return nil, errors.New("sched: nil handler")
	}
	core, err := NewCore[envelope[Req, Resp]](cfg)
	if err != nil {
		return nil, err
	}
	epoch := time.Now()
	d := &Dispatcher[Req, Resp]{
		core:    core,
		handler: handler,
		now:     func() time.Duration { return time.Since(epoch) },
		kick:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	go d.dispatch()
	return d, nil
}

// Pending returns requests submitted but not yet answered — the
// queue-depth signal degradation watermarks consume.
func (d *Dispatcher[Req, Resp]) Pending() int { return int(d.pending.Load()) }

// Flushes returns how many batches the dispatcher has assembled.
func (d *Dispatcher[Req, Resp]) Flushes() int64 { return d.flushes.Load() }

// Stats snapshots every tenant's scheduling counters.
func (d *Dispatcher[Req, Resp]) Stats() []TenantStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.core.Stats()
}

// Submit enqueues one request under its tenant and blocks until the
// response is available, the tenant queue sheds it (ErrShed), its
// deadline expires (ErrExpired from assembly, or the context error if the
// caller gives up first), or the dispatcher closes.
func (d *Dispatcher[Req, Resp]) Submit(ctx context.Context, tenant string, req Req) (Resp, error) {
	var zero Resp
	select {
	case <-d.done:
		return zero, ErrClosed
	default:
	}
	d.pending.Add(1)
	defer d.pending.Add(-1)

	env := envelope[Req, Resp]{req: req, tenant: tenant, enq: d.now(), reply: make(chan result[Resp], 1)}
	var deadline time.Duration
	if dl, ok := ctx.Deadline(); ok {
		deadline = env.enq + time.Until(dl)
	}
	d.mu.Lock()
	err := d.core.Enqueue(env.enq, tenant, deadline, env)
	d.mu.Unlock()
	if err != nil {
		return zero, err
	}
	// Wake the dispatcher: the new entry may have made the buffer ready or
	// tightened its flush instant.
	select {
	case d.kick <- struct{}{}:
	default:
	}
	select {
	case r := <-env.reply:
		return r.resp, r.err
	case <-ctx.Done():
		return zero, ctx.Err()
	case <-d.done:
		return zero, ErrClosed
	}
}

// Close stops the dispatch goroutine. Blocked Submits receive ErrClosed.
func (d *Dispatcher[Req, Resp]) Close() {
	d.closed.Do(func() { close(d.done) })
}

// dispatch is the single batch-formation goroutine: sleep until the
// core's next flush instant (or a kick), then assemble and run batches
// while the core is ready.
func (d *Dispatcher[Req, Resp]) dispatch() {
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	armed := false
	disarm := func() {
		if armed && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		armed = false
	}
	for {
		// Flush everything due, then compute the next sleep under one lock.
		var wait time.Duration
		haveWork := false
		for {
			now := d.now()
			d.mu.Lock()
			if !d.core.Ready(now) {
				if at, ok := d.core.NextFlushAt(); ok {
					wait = at - now
					if wait < 0 {
						wait = 0
					}
					haveWork = true
				}
				d.mu.Unlock()
				break
			}
			batch, expired := d.core.Assemble(now)
			d.mu.Unlock()
			for _, env := range expired {
				env.reply <- result[Resp]{err: ErrExpired}
			}
			if len(batch) == 0 {
				continue
			}
			d.flushes.Add(1)
			reqs := make([]Req, len(batch))
			for i, env := range batch {
				reqs[i] = env.req
			}
			resps := d.handler(reqs)
			for i, env := range batch {
				if i < len(resps) {
					env.reply <- result[Resp]{resp: resps[i]}
				}
			}
		}
		disarm()
		if haveWork {
			timer.Reset(wait)
			armed = true
		}
		select {
		case <-d.kick:
		case <-timer.C:
			armed = false
		case <-d.done:
			disarm()
			return
		}
	}
}
