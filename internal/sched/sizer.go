package sched

import (
	"math"
	"time"

	"etude/internal/device"
	"etude/internal/model"
)

// DefaultAmortizationEps is the default knee criterion for AmortizedBatch:
// stop growing the batch once the per-request share of the fixed batch
// overhead falls below 5% of the per-request marginal cost.
const DefaultAmortizationEps = 0.05

// AmortizedBatch picks a target batch size from the device cost model's
// amortisation curve instead of a fixed MaxBatch. The accelerator batch
// latency is affine, T(B) = fixed + B·perReq (device.Spec.BatchInference),
// so the per-request cost fixed/B + perReq decays hyperbolically: almost
// all of the amortisation win is captured at the knee where
// fixed/B ≤ eps·B·... — precisely, the smallest B with
// fixed/(B·perReq) ≤ eps. Past the knee, every extra slot buys <eps
// relative throughput but a full perReq of head-of-line latency for the
// requests already in the buffer.
//
// The result is capped by the accelerator's memory-bound EffectiveMaxBatch
// and floored at 1. eps ≤ 0 defaults to DefaultAmortizationEps. On CPU
// specs (no batch amortisation: T(B) = B·T(1)) it returns 1.
func AmortizedBatch(spec device.Spec, cost model.Cost, jit bool, eps float64) int {
	if eps <= 0 {
		eps = DefaultAmortizationEps
	}
	memCap := spec.EffectiveMaxBatch(cost)
	if memCap < 1 {
		memCap = 1
	}
	if spec.Kind == device.KindCPU {
		return 1
	}
	// Recover the affine decomposition from two points on the curve:
	// T(1) = fixed + perReq, T(2) = fixed + 2·perReq.
	t1 := spec.BatchInference(cost, 1, jit)
	t2 := spec.BatchInference(cost, 2, jit)
	perReq := t2 - t1
	if perReq <= 0 {
		return memCap
	}
	fixed := t1 - perReq
	if fixed <= 0 {
		return 1
	}
	// Smallest B with fixed/(B·perReq) ≤ eps ⇒ B = ⌈fixed/(eps·perReq)⌉.
	b := int(math.Ceil(float64(fixed) / (eps * float64(perReq))))
	if b < 1 {
		b = 1
	}
	if b > memCap {
		b = memCap
	}
	return b
}

// ServiceTime returns the cost model's latency for a batch of the given
// size — the DeadlineSlack a scheduler should reserve so a deadline-bound
// flush still has time to execute.
func ServiceTime(spec device.Spec, cost model.Cost, batch int, jit bool) time.Duration {
	return spec.BatchInference(cost, batch, jit)
}
