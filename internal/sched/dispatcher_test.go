package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDispatcherServesAndEchoesOrder(t *testing.T) {
	d, err := NewDispatcher(Config{MaxBatch: 8, FlushEvery: time.Millisecond}, func(batch []int) []int {
		out := make([]int, len(batch))
		for i, v := range batch {
			out[i] = v * v
		}
		return out
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var wg sync.WaitGroup
	for i := 1; i <= 32; i++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			got, err := d.Submit(context.Background(), "t", v)
			if err != nil {
				t.Errorf("Submit(%d): %v", v, err)
				return
			}
			if got != v*v {
				t.Errorf("Submit(%d) = %d, want %d", v, got, v*v)
			}
		}(i)
	}
	wg.Wait()
	if d.Flushes() == 0 {
		t.Fatal("no flushes recorded")
	}
}

func TestDispatcherBatches(t *testing.T) {
	var calls atomic.Int64
	d, err := NewDispatcher(Config{MaxBatch: 64, FlushEvery: 20 * time.Millisecond}, func(batch []int) []int {
		calls.Add(1)
		return batch
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = d.Submit(context.Background(), "t", 1)
		}()
	}
	wg.Wait()
	if calls.Load() > 8 {
		t.Fatalf("32 requests used %d handler calls — not batching", calls.Load())
	}
}

func TestDispatcherShedsAtQueueBound(t *testing.T) {
	release := make(chan struct{})
	d, err := NewDispatcher(Config{MaxBatch: 1, FlushEvery: time.Millisecond, MaxQueue: 2}, func(batch []int) []int {
		<-release
		return batch
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	defer close(release)

	// Park the handler, then fill tenant t's queue past its bound.
	go func() { _, _ = d.Submit(context.Background(), "t", 0) }()
	time.Sleep(5 * time.Millisecond)
	for i := 0; i < 2; i++ {
		go func() { _, _ = d.Submit(context.Background(), "t", 1) }()
	}
	time.Sleep(5 * time.Millisecond)
	_, err = d.Submit(context.Background(), "t", 2)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("over-bound Submit = %v, want ErrShed", err)
	}
	// A different tenant still gets in: the bound is per tenant.
	done := make(chan error, 1)
	go func() {
		_, err := d.Submit(context.Background(), "other", 3)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("other tenant returned early: %v", err)
	case <-time.After(10 * time.Millisecond):
		// still queued, not shed — good
	}
}

func TestDispatcherExpiresDeadEntries(t *testing.T) {
	release := make(chan struct{})
	first := make(chan struct{}, 1)
	d, err := NewDispatcher(Config{MaxBatch: 8, FlushEvery: time.Hour}, func(batch []int) []int {
		select {
		case first <- struct{}{}:
			<-release
		default:
		}
		return batch
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Park the dispatcher in the first flush: a 1ms budget against the
	// default 5ms slack makes the flush immediate, so request 1 is alone
	// in the stuck batch.
	ctx1, cancel1 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel1()
	go func() { _, _ = d.Submit(ctx1, "t", 1) }()
	time.Sleep(10 * time.Millisecond)
	// ...queue a request that dies while the handler is stuck...
	ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	errc := make(chan error, 1)
	go func() {
		_, err := d.Submit(ctx2, "t", 2)
		errc <- err
	}()
	time.Sleep(40 * time.Millisecond)
	close(release)
	err = <-errc
	// The dead entry is answered ErrExpired at assembly (or the context
	// error if the caller's select won the race); either way it matches
	// the generic budget error.
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("dead entry Submit = %v, want a deadline error", err)
	}
	var st TenantStats
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		for _, s := range d.Stats() {
			if s.Tenant == "t" {
				st = s
			}
		}
		if st.Expired == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if st.Expired != 1 {
		t.Fatalf("tenant stats = %+v, want Expired 1", st)
	}
}

func TestDispatcherSubmitAfterClose(t *testing.T) {
	d, err := NewDispatcher(Config{MaxBatch: 1, FlushEvery: time.Millisecond}, func(batch []int) []int { return batch })
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	d.Close() // idempotent
	if _, err := d.Submit(context.Background(), "t", 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

func TestDispatcherStatsSnapshot(t *testing.T) {
	d, err := NewDispatcher(Config{
		Tenants:    []TenantConfig{{Name: "a", Weight: 3}, {Name: "b", Weight: 1}},
		MaxBatch:   8,
		FlushEvery: time.Millisecond,
	}, func(batch []string) []string { return batch })
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		tenant := "a"
		if i%2 == 0 {
			tenant = "b"
		}
		go func(tn string) {
			defer wg.Done()
			_, _ = d.Submit(context.Background(), tn, "x")
		}(tenant)
	}
	wg.Wait()
	var servedA, servedB int64
	for _, s := range d.Stats() {
		switch s.Tenant {
		case "a":
			servedA = s.Served
		case "b":
			servedB = s.Served
		}
	}
	if servedA != 3 || servedB != 3 {
		t.Fatalf("served a=%d b=%d, want 3 each", servedA, servedB)
	}
}
