package device

import (
	"testing"
	"time"

	"etude/internal/model"
)

func costFor(t *testing.T, name string, catalog int) model.Cost {
	t.Helper()
	c, err := model.EstimateCost(name, model.Config{CatalogSize: catalog, Seed: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestByName(t *testing.T) {
	for _, name := range []string{"cpu", "gpu-t4", "gpu-a100"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if s.Name != name {
			t.Fatalf("ByName(%s).Name = %s", name, s.Name)
		}
	}
	if _, err := ByName("tpu"); err == nil {
		t.Fatalf("unknown device must error")
	}
	if len(All()) != 3 {
		t.Fatalf("All() = %d specs", len(All()))
	}
}

func TestPricesMatchPaper(t *testing.T) {
	if CPU().MonthlyCostUSD != 108.09 {
		t.Errorf("CPU price = %v", CPU().MonthlyCostUSD)
	}
	if GPUT4().MonthlyCostUSD != 268.09 {
		t.Errorf("T4 price = %v", GPUT4().MonthlyCostUSD)
	}
	if GPUA100().MonthlyCostUSD != 2008.80 {
		t.Errorf("A100 price = %v", GPUA100().MonthlyCostUSD)
	}
}

// TestCPUOver50msAtOneMillion reproduces the paper's Fig 3 statement: "the
// CPU already requires more than 50ms per prediction for catalogs with one
// million items" (eager execution, serial requests).
func TestCPUOver50msAtOneMillion(t *testing.T) {
	c := costFor(t, "gru4rec", 1_000_000)
	got := CPU().SerialInference(c, false)
	if got < 50*time.Millisecond {
		t.Fatalf("CPU eager at C=1e6: %v, paper says >50ms", got)
	}
	if got > 250*time.Millisecond {
		t.Fatalf("CPU eager at C=1e6: %v, implausibly slow", got)
	}
}

// TestGPUOrderOfMagnitudeAtOneMillion: "starting from catalogs with one
// million items, the prediction latency of the GPU is more than an order of
// magnitude lower than the latencies achieved with CPUs only".
func TestGPUOrderOfMagnitudeAtOneMillion(t *testing.T) {
	for _, name := range model.TableIModels() {
		c := costFor(t, name, 1_000_000)
		cpu := CPU().SerialInference(c, true)
		gpu := GPUT4().SerialInference(c, true)
		if cpu < 10*gpu {
			t.Errorf("%s at C=1e6: CPU %v vs T4 %v — want ≥10×", name, cpu, gpu)
		}
	}
}

// TestSmallCatalogCrossover: "this relation does not hold for small catalogs
// with 10,000 items; in six out of ten cases, the CPU latency is on par with
// or lower than the GPU latency". We assert the crossover exists for at
// least a third of the models (shape, not the exact 6/10 split).
func TestSmallCatalogCrossover(t *testing.T) {
	cpuWins := 0
	for _, name := range model.Names() {
		c := costFor(t, name, 10_000)
		cpu := CPU().SerialInference(c, true)
		gpu := GPUT4().SerialInference(c, true)
		if float64(cpu) <= 1.1*float64(gpu) { // "on par or lower"
			cpuWins++
		}
	}
	if cpuWins < 4 {
		t.Fatalf("CPU on par/better for only %d/10 models at C=1e4; paper found 6/10", cpuWins)
	}
	if cpuWins == 10 {
		t.Fatalf("GPU never competitive at C=1e4 — overhead model too harsh")
	}
}

// TestLatencyLinearInCatalog checks the microbenchmark's headline: latency
// scales linearly with the catalog size (10× catalog ⇒ ≈10× latency for
// large C where the MIPS term dominates).
func TestLatencyLinearInCatalog(t *testing.T) {
	c1 := costFor(t, "core", 1_000_000)
	c10 := costFor(t, "core", 10_000_000)
	cpu1 := CPU().SerialInference(c1, false)
	cpu10 := CPU().SerialInference(c10, false)
	ratio := float64(cpu10) / float64(cpu1)
	// d grows too (32 → 58), so the expected ratio is ≈ 10·(58/32) ≈ 18.
	if ratio < 10 || ratio > 30 {
		t.Fatalf("CPU latency ratio 1e7/1e6 = %.1f, want ≈ 18", ratio)
	}
}

func TestJITAlwaysHelps(t *testing.T) {
	for _, name := range model.Names() {
		for _, spec := range All() {
			c := costFor(t, name, 100_000)
			eager := spec.SerialInference(c, false)
			jit := spec.SerialInference(c, true)
			if jit > eager {
				t.Errorf("%s on %s: JIT %v slower than eager %v", name, spec.Name, jit, eager)
			}
		}
	}
}

func TestBatchingAmortizesCatalogScan(t *testing.T) {
	c := costFor(t, "sasrec", 10_000_000)
	t4 := GPUT4()
	single := t4.BatchInference(c, 1, true)
	batch64 := t4.BatchInference(c, 64, true)
	perReqBatched := batch64 / 64
	if perReqBatched >= single {
		t.Fatalf("batching must reduce per-request latency: %v vs %v", perReqBatched, single)
	}
	// The catalog scan (SharedBytes) must be paid once, not 64 times: the
	// batch must cost well under 64 independent requests.
	if batch64 > 32*single {
		t.Fatalf("batch of 64 costs %v vs single %v — catalog scan not amortised", batch64, single)
	}
}

func TestBatchInferenceMonotoneInBatch(t *testing.T) {
	c := costFor(t, "narm", 1_000_000)
	t4 := GPUT4()
	prev := time.Duration(0)
	for _, b := range []int{1, 2, 8, 64, 512, 1024} {
		cur := t4.BatchInference(c, b, true)
		if cur <= prev {
			t.Fatalf("batch %d latency %v not greater than smaller batch %v", b, cur, prev)
		}
		prev = cur
	}
}

func TestHostTransfersPenalizeGPU(t *testing.T) {
	bugCost, _ := model.EstimateCost("srgnn", model.Config{CatalogSize: 100_000, Seed: 1, Faithful: true}, 3)
	fixCost, _ := model.EstimateCost("srgnn", model.Config{CatalogSize: 100_000, Seed: 1}, 3)
	t4 := GPUT4()
	slow := t4.BatchInference(bugCost, 1, true)
	fast := t4.BatchInference(fixCost, 1, true)
	if slow <= fast {
		t.Fatalf("faithful SR-GNN must be slower on GPU: %v vs %v", slow, fast)
	}
	// On CPU the transfers cost nothing (everything is host-side already).
	cpuSlow := CPU().SerialInference(bugCost, true)
	cpuFast := CPU().SerialInference(fixCost, true)
	if cpuSlow != cpuFast {
		t.Fatalf("host transfers must not penalise CPU: %v vs %v", cpuSlow, cpuFast)
	}
}

func TestRepeatNetDensePenaltyOnAllDevices(t *testing.T) {
	bugCost, _ := model.EstimateCost("repeatnet", model.Config{CatalogSize: 1_000_000, Seed: 1, Faithful: true}, 25)
	fixCost, _ := model.EstimateCost("repeatnet", model.Config{CatalogSize: 1_000_000, Seed: 1}, 25)
	for _, spec := range All() {
		slow := spec.SerialInference(bugCost, true)
		fast := spec.SerialInference(fixCost, true)
		if float64(slow) < 1.2*float64(fast) {
			t.Errorf("%s: dense scatter should hurt clearly: %v vs %v", spec.Name, slow, fast)
		}
	}
}

// TestOnlyA100HandlesPlatform reproduces Table I's platform row: at C=2e7
// the T4's catalog scan alone exceeds the 50ms p90 budget at any usable
// throughput, while the A100 sustains >333 req/s per instance.
func TestOnlyA100HandlesPlatform(t *testing.T) {
	c := costFor(t, "gru4rec", 20_000_000)
	t4, a100 := GPUT4(), GPUA100()
	// T4: the catalog scan alone costs ~28ms; the modest batch any real
	// arrival rate produces blows the latency budget.
	if lat := t4.BatchInference(c, 8, true); lat < 50*time.Millisecond {
		t.Fatalf("T4 at C=2e7 batch 8: %v — paper says T4 cannot handle the platform scenario", lat)
	}
	// A100: sustains at least ~333 req/s (3 instances for 1,000 req/s).
	if tput := a100.Throughput(c, true); tput < 333 {
		t.Fatalf("A100 throughput at C=2e7 = %.0f req/s, want ≥333", tput)
	}
	// A100 latency at the operating batch stays within budget.
	if lat := a100.BatchInference(c, 8, true); lat > 50*time.Millisecond {
		t.Fatalf("A100 at C=2e7 batch 8: %v > 50ms", lat)
	}
}

// TestT4HandlesECommerceFleet: Table I's e-Commerce row — T4 instances
// handle C=1e7; a single T4 sustains at least 1000/5 = 200 req/s within the
// latency budget.
func TestT4HandlesECommerce(t *testing.T) {
	c := costFor(t, "core", 10_000_000)
	t4 := GPUT4()
	// At ~200 req/s the batcher (2ms window) sees batches of ~1-2 requests;
	// allow some burst headroom and check latency at batch 8.
	if lat := t4.BatchInference(c, 8, true); lat > 50*time.Millisecond {
		t.Fatalf("T4 at C=1e7 batch 8: %v > 50ms", lat)
	}
	if tput := t4.Throughput(c, true); tput < 200 {
		t.Fatalf("T4 throughput at C=1e7 = %.0f req/s, want ≥ 200", tput)
	}
}

func TestT4Handles700AtOneMillion(t *testing.T) {
	// "the T4 card already handles more than 700 requests per second at a
	// 50ms p90 latency" for C=1e6.
	c := costFor(t, "stamp", 1_000_000)
	t4 := GPUT4()
	if tput := t4.Throughput(c, true); tput < 700 {
		t.Fatalf("T4 throughput at C=1e6 = %.0f req/s, want > 700", tput)
	}
}

func TestEffectiveMaxBatch(t *testing.T) {
	small := costFor(t, "core", 10_000)
	if b := GPUT4().EffectiveMaxBatch(small); b != 1024 {
		t.Fatalf("small catalog should allow full batching, got %d", b)
	}
	huge := costFor(t, "core", 20_000_000)
	bT4 := GPUT4().EffectiveMaxBatch(huge)
	bA100 := GPUA100().EffectiveMaxBatch(huge)
	if bT4 <= 0 || bA100 <= 0 {
		t.Fatalf("2e7 catalog must still fit: T4 %d, A100 %d", bT4, bA100)
	}
	if bA100 <= bT4 {
		t.Fatalf("A100 (40GB) must batch more than T4 (16GB): %d vs %d", bA100, bT4)
	}
	if b := CPU().EffectiveMaxBatch(huge); b != 1 {
		t.Fatalf("CPU batch = %d, want 1", b)
	}
}

func TestFitsMemory(t *testing.T) {
	if !CPU().FitsMemory(costFor(t, "core", 20_000_000)) {
		t.Fatalf("CPU always fits")
	}
	if !GPUA100().FitsMemory(costFor(t, "core", 10_000)) {
		t.Fatalf("tiny model must fit the A100")
	}
}

func TestParallelFasterThanSerialOnCPU(t *testing.T) {
	c := costFor(t, "gru4rec", 1_000_000)
	cpu := CPU()
	serial := cpu.SerialInference(c, true)
	parallel := cpu.ParallelInference(c, true)
	if parallel >= serial {
		t.Fatalf("intra-op parallelism must help: %v vs %v", parallel, serial)
	}
	if float64(serial)/float64(parallel) > float64(cpu.Cores)+1 {
		t.Fatalf("superlinear speedup: %v vs %v", serial, parallel)
	}
}

func TestCPUBatchIsSerialMultiple(t *testing.T) {
	c := costFor(t, "core", 10_000)
	cpu := CPU()
	if cpu.BatchInference(c, 4, false) != 4*cpu.SerialInference(c, false) {
		t.Fatalf("CPU has no batching benefit")
	}
}
