// Package device models the three instance types of the paper's GCP testbed
// — a 5.5-vCPU e2 machine, an e2 machine with an NVIDIA Tesla T4, and an
// A100 machine — as analytic latency models over the per-inference costs
// reported by internal/model.
//
// The hardware substitution of this reproduction lives here: no physical
// accelerator is available, so GPU inference latency is computed from a
// roofline-style model with four calibrated mechanisms:
//
//  1. a batch-amortised catalog scan (Cost.SharedBytes / memory bandwidth) —
//     the reason batching helps GPUs;
//  2. per-request score-vector traffic (Cost.PerRequestBytes) and compute
//     (Cost FLOPs) — the reason throughput is finite;
//  3. fixed kernel-launch and submission overhead — the reason small
//     catalogs are NOT faster on GPUs (the paper's 10k-item crossover);
//  4. host↔device round trips (Cost.HostTransfers) — the SR-GNN / GC-SAN
//     implementation bug.
//
// Effective FLOP/s and bandwidth values are derated from datasheet peaks
// (≈0.6× compute; ≈0.6× bandwidth for the streaming catalog scan; ≈0.33×
// of T4 peak and ≈0.18× of A100 peak for the strided per-request score
// passes — achieved kernel efficiency does not scale with peak bandwidth,
// so the effective A100/T4 ratio lands at the ≈2.6× speedup PyTorch
// workloads actually see, not the 4.9× datasheet ratio). Values were
// calibrated so that the paper's
// headline shapes hold (CPU >50 ms at C=1e6 eager; T4 ≥10× faster than CPU
// from C=1e6; five T4s sustain 1,000 req/s at C=1e7; only the A100 handles
// C=2e7 at 1,000 req/s under a 50 ms p90).
package device

import (
	"fmt"
	"time"

	"etude/internal/model"
)

// Kind distinguishes CPU-only instances from accelerator instances.
type Kind int

const (
	// KindCPU marks instances that run inference on host cores.
	KindCPU Kind = iota
	// KindGPU marks instances with an attached accelerator.
	KindGPU
)

// Spec describes one instance type's performance and price.
type Spec struct {
	// Name is the instance-type label used in reports ("cpu", "gpu-t4",
	// "gpu-a100").
	Name string
	// Kind selects the latency model.
	Kind Kind
	// Cores is the number of usable host vCPUs (worker slots).
	Cores int
	// CoreFLOPs is the effective per-core FLOP/s of eager CPU execution.
	CoreFLOPs float64
	// JITSpeedup multiplies CPU throughput when serving a JIT-compiled
	// model (buffer reuse + operator fusion).
	JITSpeedup float64
	// OpOverheadEager and OpOverheadJIT are the per-operator dispatch costs
	// of CPU execution (framework overhead per kernel launch); JIT
	// compilation shrinks but does not eliminate them. At small catalogs
	// these overheads — not FLOPs — decide the CPU/GPU crossover.
	OpOverheadEager time.Duration
	OpOverheadJIT   time.Duration
	// FLOPs is the accelerator's effective FLOP/s (GPU only).
	FLOPs float64
	// MemBW is the accelerator's effective memory bandwidth for the
	// streaming catalog scan (sequential, prefetch-friendly) in bytes/s.
	MemBW float64
	// ScoreBW is the effective bandwidth for the per-request score-vector
	// passes (materialise + softmax + top-k selection): multi-pass,
	// strided kernels achieve a far smaller fraction of peak than the
	// streaming scan.
	ScoreBW float64
	// KernelOverhead is the per-kernel-launch cost on the accelerator.
	KernelOverhead time.Duration
	// SubmitOverhead is the fixed per-batch driver/framework cost.
	SubmitOverhead time.Duration
	// PCIeRoundTrip is one host↔device transfer round trip.
	PCIeRoundTrip time.Duration
	// HostSyncPenalty is the pipeline-flush cost of a host↔device
	// synchronisation forced by host-side code in the middle of inference
	// (the SR-GNN / GC-SAN NumPy-in-inference bug): the device drains, the
	// Python side computes, and the kernel pipeline restarts. Charged once
	// per Cost.HostTransfers per request, on top of the raw PCIe copy.
	HostSyncPenalty time.Duration
	// MemoryBytes is the accelerator memory capacity.
	MemoryBytes int64
	// MaxBatch caps the request batcher (paper setting: 1024).
	MaxBatch int
	// MonthlyCostUSD is the GCP one-year-commitment price of the instance.
	MonthlyCostUSD float64
}

// CPU returns the e2 general-purpose instance used in the paper: 5.5 vCPUs
// of an Intel Xeon @2.20GHz, 32 GB RAM, $108.09/month.
func CPU() Spec {
	return Spec{
		Name:            "cpu",
		Kind:            KindCPU,
		Cores:           5,
		CoreFLOPs:       1.2e9,
		JITSpeedup:      2.2,
		OpOverheadEager: 20 * time.Microsecond,
		OpOverheadJIT:   6 * time.Microsecond,
		MaxBatch:        1,
		MonthlyCostUSD:  108.09,
	}
}

// GPUT4 returns the e2 + NVIDIA Tesla T4 instance (16 GB GPU memory),
// $268.09/month. Peak: 8.1 TFLOP/s FP32, 320 GB/s.
func GPUT4() Spec {
	return Spec{
		Name:            "gpu-t4",
		Kind:            KindGPU,
		Cores:           5,
		CoreFLOPs:       1.2e9,
		JITSpeedup:      1.8,
		FLOPs:           0.6 * 8.1e12,
		MemBW:           0.6 * 320e9,
		ScoreBW:         0.33 * 320e9,
		KernelOverhead:  8 * time.Microsecond,
		SubmitOverhead:  80 * time.Microsecond,
		PCIeRoundTrip:   23 * time.Microsecond,
		HostSyncPenalty: 500 * time.Microsecond,
		MemoryBytes:     16 << 30,
		MaxBatch:        1024,
		MonthlyCostUSD:  268.09,
	}
}

// GPUA100 returns the A100 instance (40 GB GPU memory, 12 vCPUs, 85 GB RAM),
// $2,008.80/month. Peak: 19.5 TFLOP/s FP32, 1,555 GB/s.
func GPUA100() Spec {
	return Spec{
		Name:            "gpu-a100",
		Kind:            KindGPU,
		Cores:           12,
		CoreFLOPs:       1.2e9,
		JITSpeedup:      1.8,
		FLOPs:           0.6 * 19.5e12,
		MemBW:           0.6 * 1555e9,
		ScoreBW:         0.18 * 1555e9,
		KernelOverhead:  8 * time.Microsecond,
		SubmitOverhead:  80 * time.Microsecond,
		PCIeRoundTrip:   23 * time.Microsecond,
		HostSyncPenalty: 500 * time.Microsecond,
		MemoryBytes:     40 << 30,
		MaxBatch:        1024,
		MonthlyCostUSD:  2008.80,
	}
}

// ByName resolves an instance-type label.
func ByName(name string) (Spec, error) {
	switch name {
	case "cpu":
		return CPU(), nil
	case "gpu-t4":
		return GPUT4(), nil
	case "gpu-a100":
		return GPUA100(), nil
	}
	return Spec{}, fmt.Errorf("device: unknown instance type %q", name)
}

// All returns the three instance types of the experimental study.
func All() []Spec {
	return []Spec{CPU(), GPUT4(), GPUA100()}
}

// FitsMemory reports whether the model's catalog representation fits the
// accelerator's memory alongside the score buffers of one max-size batch.
// CPU instances always fit (32 GB host RAM is checked nowhere because no
// paper catalog approaches it).
func (s Spec) FitsMemory(c model.Cost) bool {
	if s.Kind == KindCPU {
		return true
	}
	catalog := c.SharedBytes
	scores := float64(s.MaxBatch) * float64(c.Catalog) * 4
	// Leave 10% headroom for weights, activations and the allocator.
	return catalog+scores <= 0.9*float64(s.MemoryBytes)
}

// EffectiveMaxBatch returns the largest batch size whose score buffers fit
// in accelerator memory, capped at MaxBatch. Zero means the model does not
// fit at all. CPU instances return MaxBatch (1).
func (s Spec) EffectiveMaxBatch(c model.Cost) int {
	if s.Kind == KindCPU {
		return s.MaxBatch
	}
	free := 0.9*float64(s.MemoryBytes) - c.SharedBytes
	if free <= 0 {
		return 0
	}
	b := int(free / (float64(c.Catalog) * 4))
	if b > s.MaxBatch {
		b = s.MaxBatch
	}
	return b
}

// SerialInference returns the latency of a single inference executed one
// request at a time with no intra-request parallelism — the paper's
// micro-benchmark setting (Fig 3).
func (s Spec) SerialInference(c model.Cost, jit bool) time.Duration {
	if s.Kind == KindCPU {
		rate := s.CoreFLOPs
		op := s.OpOverheadEager
		if jit {
			rate *= s.JITSpeedup
			op = s.OpOverheadJIT
		}
		compute := c.TotalFLOPs() / rate
		dispatch := float64(c.KernelLaunches) * op.Seconds()
		return time.Duration((compute + dispatch) * float64(time.Second))
	}
	return s.BatchInference(c, 1, jit)
}

// ParallelInference returns the latency of a single inference on a CPU
// instance with intra-op parallelism across all cores (the serving
// configuration): the encoder runs on one core, the catalog scan fans out.
func (s Spec) ParallelInference(c model.Cost, jit bool) time.Duration {
	if s.Kind != KindCPU {
		return s.BatchInference(c, 1, jit)
	}
	rate := s.CoreFLOPs
	if jit {
		rate *= s.JITSpeedup
	}
	op := s.OpOverheadEager
	if jit {
		op = s.OpOverheadJIT
	}
	const parallelEfficiency = 0.85
	encoder := c.EncoderFLOPs / rate
	scan := (c.MIPSFLOPs + c.DenseOverheadFLOPs) / (rate * float64(s.Cores) * parallelEfficiency)
	dispatch := float64(c.KernelLaunches) * op.Seconds()
	return time.Duration((encoder + scan + dispatch) * float64(time.Second))
}

// BatchInference returns the accelerator latency of one batch of `batch`
// requests (GPU kinds only; CPU falls back to SerialInference for batch 1).
//
//	T(B) = submit + PCIe + launches·kernelOverhead   (fixed per batch)
//	     + SharedBytes / MemBW                        (catalog scan, once)
//	     + B · [ PerRequestBytes/MemBW + FLOPs/rate + transfers·PCIe ]
//
// JIT compilation fuses kernels, halving the launch count.
func (s Spec) BatchInference(c model.Cost, batch int, jit bool) time.Duration {
	if s.Kind == KindCPU {
		if batch <= 1 {
			return s.SerialInference(c, jit)
		}
		return time.Duration(batch) * s.SerialInference(c, jit)
	}
	if batch < 1 {
		batch = 1
	}
	launches := float64(c.KernelLaunches)
	if jit {
		launches /= 2
	}
	fixed := s.SubmitOverhead.Seconds() +
		s.PCIeRoundTrip.Seconds() +
		launches*s.KernelOverhead.Seconds() +
		c.SharedBytes/s.MemBW
	perReq := c.PerRequestBytes/s.ScoreBW +
		c.TotalFLOPs()/s.FLOPs +
		float64(c.HostTransfers)*(s.PCIeRoundTrip.Seconds()+s.HostSyncPenalty.Seconds())
	return time.Duration((fixed + float64(batch)*perReq) * float64(time.Second))
}

// Throughput returns the sustainable request rate of one instance serving
// the model, assuming saturated batching (GPU) or all cores busy (CPU).
func (s Spec) Throughput(c model.Cost, jit bool) float64 {
	if s.Kind == KindCPU {
		return float64(s.Cores) / s.SerialInference(c, jit).Seconds()
	}
	b := s.EffectiveMaxBatch(c)
	if b == 0 {
		return 0
	}
	return float64(b) / s.BatchInference(c, b, jit).Seconds()
}
