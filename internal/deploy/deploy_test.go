package deploy

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"etude/internal/model"
	"etude/internal/objstore"
)

func testManifest(seed int64) model.Manifest {
	return model.Manifest{Model: "gru4rec", Config: model.Config{CatalogSize: 200, Seed: seed}}
}

func testWeights(t *testing.T, seed int64) []byte {
	t.Helper()
	m, err := model.New("gru4rec", model.Config{CatalogSize: 200, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	w, err := model.SaveWeights(m)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// Both substrates run the same store suite — the parity the conformance
// tests in internal/objstore pin down is exactly what lets the release
// store trust either.
func stores(t *testing.T) map[string]*Store {
	fs, err := objstore.NewFSBucket(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Store{
		"mem": NewStore(objstore.NewMemBucket()),
		"fs":  NewStore(fs),
	}
}

func TestPublishPromoteCurrent(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Current(); !errors.Is(err, ErrNoCurrent) {
				t.Fatalf("Current on empty store = %v, want ErrNoCurrent", err)
			}
			rel1, err := s.Publish(testManifest(1), testWeights(t, 1), "first")
			if err != nil {
				t.Fatalf("Publish: %v", err)
			}
			if rel1.Version != 1 {
				t.Fatalf("first version = %d, want 1", rel1.Version)
			}
			if len(rel1.Artifacts) != 2 {
				t.Fatalf("artifacts = %+v, want weights+manifest", rel1.Artifacts)
			}
			// Staged ≠ promoted: CURRENT must not move on Publish.
			if _, err := s.Current(); !errors.Is(err, ErrNoCurrent) {
				t.Fatalf("Publish moved CURRENT: %v", err)
			}
			if err := s.Promote(1); err != nil {
				t.Fatalf("Promote: %v", err)
			}
			cur, err := s.Current()
			if err != nil || cur.Version != 1 {
				t.Fatalf("Current = %+v, %v", cur, err)
			}

			rel2, err := s.Publish(testManifest(2), testWeights(t, 2), "second")
			if err != nil {
				t.Fatalf("Publish v2: %v", err)
			}
			if rel2.Version != 2 {
				t.Fatalf("second version = %d, want 2", rel2.Version)
			}
			if err := s.Promote(2); err != nil {
				t.Fatalf("Promote v2: %v", err)
			}
			cur, err = s.Current()
			if err != nil || cur.Version != 2 {
				t.Fatalf("Current after promote = %+v, %v", cur, err)
			}
			rels, err := s.List()
			if err != nil || len(rels) != 2 {
				t.Fatalf("List = %+v, %v", rels, err)
			}
			if rels[0].Version != 1 || rels[1].Version != 2 {
				t.Fatalf("List order = %+v", rels)
			}
		})
	}
}

func TestLoadRebuildsExactModel(t *testing.T) {
	s := NewStore(objstore.NewMemBucket())
	// Weights from seed 7, manifest claiming seed 1: a loaded model must
	// recommend like the seed-7 original (true weight transport through the
	// release), not like a seed-1 rebuild.
	if _, err := s.Publish(testManifest(1), testWeights(t, 7), ""); err != nil {
		t.Fatal(err)
	}
	rel, err := s.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Load(rel)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	want, _ := model.New("gru4rec", model.Config{CatalogSize: 200, Seed: 7})
	session := []int64{5, 9, 31}
	got, exp := m.Recommend(session), want.Recommend(session)
	for i := range exp {
		if got[i] != exp[i] {
			t.Fatalf("loaded model differs at %d: %+v vs %+v", i, got[i], exp[i])
		}
	}
}

func TestVerifyCatchesBitFlipAndTruncation(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			rel, err := s.Publish(testManifest(1), testWeights(t, 1), "")
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Verify(rel); err != nil {
				t.Fatalf("pristine release fails verify: %v", err)
			}
			wkey := rel.Artifacts[0].Key
			if !strings.HasSuffix(wkey, weightsName) {
				t.Fatalf("first artifact = %s, want weights", wkey)
			}
			orig, _ := s.Bucket().Get(wkey)

			// Bit-flip.
			flipped := append([]byte(nil), orig...)
			flipped[len(flipped)/2] ^= 0x10
			if err := s.Bucket().Put(wkey, flipped); err != nil {
				t.Fatal(err)
			}
			var ve *VerifyError
			if err := s.Verify(rel); !errors.As(err, &ve) {
				t.Fatalf("bit-flip not caught: %v", err)
			} else if ve.Key != wkey {
				t.Fatalf("verify blamed %s, want %s", ve.Key, wkey)
			}
			if _, err := s.Load(rel); err == nil {
				t.Fatalf("Load served a bit-flipped artifact")
			}

			// Truncation.
			if err := s.Bucket().Put(wkey, orig[:len(orig)/2]); err != nil {
				t.Fatal(err)
			}
			if err := s.Verify(rel); !errors.As(err, &ve) {
				t.Fatalf("truncation not caught: %v", err)
			}

			// Missing artifact (torn publish residue).
			if err := s.Bucket().Delete(wkey); err != nil {
				t.Fatal(err)
			}
			if err := s.Verify(rel); !errors.As(err, &ve) {
				t.Fatalf("missing artifact not caught: %v", err)
			} else if !errors.Is(ve, objstore.ErrNotFound) {
				t.Fatalf("missing artifact cause = %v", ve.Cause)
			}
		})
	}
}

// A publish that crashes before the release record commits leaves only an
// invisible partial directory: not listed, not the latest, not promotable,
// and the next publish allocates a fresh version past it.
func TestCrashMidPublishInvisible(t *testing.T) {
	s := NewStore(objstore.NewMemBucket())
	if _, err := s.Publish(testManifest(1), testWeights(t, 1), ""); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: artifacts of v2 written, record never committed.
	b := s.Bucket()
	if err := b.Put(dir(2)+weightsName, []byte("partial weights")); err != nil {
		t.Fatal(err)
	}
	if err := b.Put(dir(2)+manifestName, []byte("{\"model\":\"gru4rec\"")); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Latest(); err != nil || v != 1 {
		t.Fatalf("Latest = %d, %v; want 1 (partial v2 invisible)", v, err)
	}
	rels, err := s.List()
	if err != nil || len(rels) != 1 {
		t.Fatalf("List = %+v, %v; want only v1", rels, err)
	}
	if _, err := s.Get(2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(2) = %v, want ErrNotFound", err)
	}
	if err := s.Promote(2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Promote(2) = %v, want ErrNotFound", err)
	}
	// Recovery: the next publish reclaims the never-committed slot, and the
	// fresh release verifies even over the debris (the record lists only
	// the artifacts this publish wrote).
	rel2, err := s.Publish(testManifest(3), nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if rel2.Version != 2 {
		t.Fatalf("post-crash publish got version %d, want 2 (reclaimed slot)", rel2.Version)
	}
	if err := s.Verify(rel2); err != nil {
		t.Fatalf("reclaimed release fails verify: %v", err)
	}
	if err := s.Promote(2); err != nil {
		t.Fatalf("reclaimed release fails promote: %v", err)
	}
}

// A torn CURRENT pointer — garbage bytes, a checksum that does not match
// its record, or a pointer to a vanished record — must fall back to the
// preserved PREVIOUS pointer, keeping the fleet on the last good release.
func TestTornCurrentFallsBackToPrevious(t *testing.T) {
	// Fresh store per subcase: CURRENT=v2, PREVIOUS=v1, then tear CURRENT.
	setup := func(t *testing.T) *Store {
		s := NewStore(objstore.NewMemBucket())
		for v := int64(1); v <= 2; v++ {
			if _, err := s.Publish(testManifest(v), testWeights(t, v), ""); err != nil {
				t.Fatal(err)
			}
			if err := s.Promote(int(v)); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}

	cases := []struct {
		name string
		tear func(t *testing.T, s *Store)
	}{
		{"garbage-pointer", func(t *testing.T, s *Store) {
			if err := s.Bucket().Put(currentKey, []byte("{{torn")); err != nil {
				t.Fatal(err)
			}
		}},
		{"checksum-mismatch", func(t *testing.T, s *Store) {
			if err := s.Bucket().Put(currentKey, []byte(`{"version":2,"sha256":"deadbeef"}`)); err != nil {
				t.Fatal(err)
			}
		}},
		{"dangling-version", func(t *testing.T, s *Store) {
			if err := s.Bucket().Put(currentKey, []byte(`{"version":9,"sha256":"deadbeef"}`)); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := setup(t)
			tc.tear(t, s)
			cur, err := s.Current()
			if err != nil {
				t.Fatalf("Current with torn pointer = %v, want PREVIOUS fallback", err)
			}
			if cur.Version != 1 {
				t.Fatalf("fallback resolved v%d, want v1", cur.Version)
			}
			// A promotion over the torn pointer must not let the garbage
			// displace the good PREVIOUS: after promoting v2 again, both
			// pointers resolve.
			if err := s.Promote(2); err != nil {
				t.Fatalf("Promote over torn pointer: %v", err)
			}
			if cur, err := s.Current(); err != nil || cur.Version != 2 {
				t.Fatalf("Current after repair = %+v, %v", cur, err)
			}
		})
	}

	// Both pointers torn: only then does resolution fail, loudly.
	s := setup(t)
	if err := s.Bucket().Put(currentKey, []byte("{{")); err != nil {
		t.Fatal(err)
	}
	if err := s.Bucket().Put(previousKey, []byte("{{")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Current(); !errors.Is(err, ErrTornPointer) {
		t.Fatalf("Current with both pointers torn = %v, want ErrTornPointer", err)
	}
}

func TestQuarantineBlocksLoadAndPromote(t *testing.T) {
	s := NewStore(objstore.NewMemBucket())
	rel, err := s.Publish(testManifest(1), nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Quarantine(1, "canary rollback: p99 breach"); err != nil {
		t.Fatal(err)
	}
	if reason, q := s.QuarantineReason(1); !q || !strings.Contains(reason, "p99") {
		t.Fatalf("QuarantineReason = %q, %v", reason, q)
	}
	if _, err := s.Load(rel); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("Load quarantined = %v", err)
	}
	if err := s.Promote(1); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("Promote quarantined = %v", err)
	}
	// Idempotent; first reason sticks.
	if err := s.Quarantine(1, "other"); err != nil {
		t.Fatal(err)
	}
	if reason, _ := s.QuarantineReason(1); !strings.Contains(reason, "p99") {
		t.Fatalf("second quarantine overwrote reason: %q", reason)
	}
	// Quarantining a nonexistent release is an error.
	if err := s.Quarantine(9, "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Quarantine(9) = %v", err)
	}
}

func TestPromoteRefusesCorruptRelease(t *testing.T) {
	s := NewStore(objstore.NewMemBucket())
	rel, err := s.Publish(testManifest(1), testWeights(t, 1), "")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := s.Bucket().Get(rel.Artifacts[0].Key)
	data[0] ^= 0xFF
	if err := s.Bucket().Put(rel.Artifacts[0].Key, data); err != nil {
		t.Fatal(err)
	}
	var ve *VerifyError
	if err := s.Promote(1); !errors.As(err, &ve) {
		t.Fatalf("Promote of corrupt release = %v, want VerifyError", err)
	}
}

func TestWatcherAppliesPromotionsAndPoisonsFailures(t *testing.T) {
	s := NewStore(objstore.NewMemBucket())
	if _, err := s.Publish(testManifest(1), nil, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Promote(1); err != nil {
		t.Fatal(err)
	}

	var serving atomic.Int64
	serving.Store(1)
	applied := make(chan Release, 8)
	w := Watch(s, 5*time.Millisecond,
		func() int { return int(serving.Load()) },
		func(rel Release) error {
			if rel.Version == 2 {
				return fmt.Errorf("synthetic verify failure")
			}
			serving.Store(int64(rel.Version))
			applied <- rel
			return nil
		})
	defer w.Close()

	// v2 fails to apply: the watcher must poison it, not hot-loop it.
	if _, err := s.Publish(testManifest(2), nil, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Promote(2); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for len(w.Failed()) == 0 {
		select {
		case <-deadline:
			t.Fatalf("watcher never recorded the failed apply")
		case <-time.After(5 * time.Millisecond):
		}
	}
	// v3 supersedes the poisoned version and applies cleanly.
	if _, err := s.Publish(testManifest(3), nil, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Promote(3); err != nil {
		t.Fatal(err)
	}
	select {
	case rel := <-applied:
		if rel.Version != 3 {
			t.Fatalf("watcher applied v%d, want 3", rel.Version)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("watcher never applied v3")
	}
	if got := len(applied); got != 0 {
		t.Fatalf("watcher applied %d extra releases", got+1)
	}
	if _, bad := w.Failed()[2]; !bad {
		t.Fatalf("Failed() lost the poisoned version: %+v", w.Failed())
	}
}

func TestDecideVerdicts(t *testing.T) {
	th := Thresholds{MaxP99Ratio: 2, MaxErrorRate: 0.02, MinSamples: 20}
	base := CohortStats{Requests: 500, P99: 10 * time.Millisecond}
	cases := []struct {
		name   string
		canary CohortStats
		want   Verdict
	}{
		{"too-few-samples", CohortStats{Requests: 5, P99: time.Second}, VerdictWait},
		{"healthy", CohortStats{Requests: 100, P99: 12 * time.Millisecond}, VerdictPromote},
		{"boundary-ok", CohortStats{Requests: 100, P99: 20 * time.Millisecond}, VerdictPromote},
		{"latency-breach", CohortStats{Requests: 100, P99: 21 * time.Millisecond}, VerdictRollback},
		{"error-breach", CohortStats{Requests: 97, Errors: 3, P99: 5 * time.Millisecond}, VerdictRollback},
		{"errors-count-toward-samples", CohortStats{Errors: 30}, VerdictRollback},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, reason := Decide(tc.canary, base, th)
			if got != tc.want {
				t.Fatalf("Decide = %v (%s), want %v", got, reason, tc.want)
			}
		})
	}
	// No baseline traffic: latency guardrail is unjudgeable, errors still are.
	if v, _ := Decide(CohortStats{Requests: 100, P99: time.Second}, CohortStats{}, th); v != VerdictPromote {
		t.Fatalf("no-baseline latency verdict = %v, want promote", v)
	}
}

func TestVersionOfRecord(t *testing.T) {
	cases := map[string]struct {
		v  int
		ok bool
	}{
		"releases/v00000001/release.json":  {1, true},
		"releases/v00000042/release.json":  {42, true},
		"releases/v00000042/weights.bin":   {0, false},
		"releases/v00000042/manifest.json": {0, false},
		"releases/CURRENT":                 {0, false},
		"releases/vABC/release.json":       {0, false},
		"releases/v00000000/release.json":  {0, false},
		"models/gru4rec.json":              {0, false},
	}
	for key, want := range cases {
		v, ok := versionOfRecord(key)
		if v != want.v || ok != want.ok {
			t.Errorf("versionOfRecord(%s) = %d,%v; want %d,%v", key, v, ok, want.v, want.ok)
		}
	}
}
