package deploy

import (
	"fmt"
	"time"
)

// The canary verdict is a pure function over two cohort observations, kept
// here — not in the cluster controller — so the live controller
// (internal/cluster) and the discrete-event mirror (internal/sim) apply
// bit-identical promotion rules.

// CohortStats is one cohort's health over an observation window: the
// requests it answered, the errors charged to it, and its p99 latency.
type CohortStats struct {
	Requests int64
	Errors   int64
	P99      time.Duration
}

// ErrorRate returns errors / (requests + errors), 0 with no traffic.
func (c CohortStats) ErrorRate() float64 {
	total := c.Requests + c.Errors
	if total == 0 {
		return 0
	}
	return float64(c.Errors) / float64(total)
}

// Thresholds are the SLO guardrails of a canary rollout.
type Thresholds struct {
	// MaxP99Ratio bounds canary p99 / baseline p99; above it the canary is
	// a latency regression.
	MaxP99Ratio float64
	// MaxErrorRate bounds the canary cohort's error rate.
	MaxErrorRate float64
	// MinSamples is the minimum canary request count before any verdict —
	// a p99 over five requests is noise, not a signal.
	MinSamples int64
}

// DefaultThresholds returns the standard guardrails: canary p99 at most 2×
// the baseline cohort, at most 2% errors, 20 samples minimum.
func DefaultThresholds() Thresholds {
	return Thresholds{MaxP99Ratio: 2.0, MaxErrorRate: 0.02, MinSamples: 20}
}

func (t Thresholds) withDefaults() Thresholds {
	d := DefaultThresholds()
	if t.MaxP99Ratio <= 0 {
		t.MaxP99Ratio = d.MaxP99Ratio
	}
	if t.MaxErrorRate <= 0 {
		t.MaxErrorRate = d.MaxErrorRate
	}
	if t.MinSamples <= 0 {
		t.MinSamples = d.MinSamples
	}
	return t
}

// Verdict is a canary health decision.
type Verdict int

const (
	// VerdictWait means the canary has not served enough to judge.
	VerdictWait Verdict = iota
	// VerdictPromote means the canary met the SLO against its baseline.
	VerdictPromote
	// VerdictRollback means the canary breached a guardrail.
	VerdictRollback
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictWait:
		return "wait"
	case VerdictPromote:
		return "promote"
	case VerdictRollback:
		return "rollback"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// Decide applies the guardrails to one observation window. The reason
// string explains a rollback (or the pending sample count) for reports.
func Decide(canary, baseline CohortStats, th Thresholds) (Verdict, string) {
	th = th.withDefaults()
	if canary.Requests+canary.Errors < th.MinSamples {
		return VerdictWait, fmt.Sprintf("canary has %d samples, need %d",
			canary.Requests+canary.Errors, th.MinSamples)
	}
	if er := canary.ErrorRate(); er > th.MaxErrorRate {
		return VerdictRollback, fmt.Sprintf("canary error rate %.2f%% breaches %.2f%%",
			er*100, th.MaxErrorRate*100)
	}
	if baseline.P99 > 0 && canary.P99 > time.Duration(float64(baseline.P99)*th.MaxP99Ratio) {
		return VerdictRollback, fmt.Sprintf("canary p99 %v breaches %.1fx baseline p99 %v",
			canary.P99, th.MaxP99Ratio, baseline.P99)
	}
	return VerdictPromote, "canary within SLO"
}
