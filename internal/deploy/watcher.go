package deploy

import (
	"sync"
	"time"
)

// Watcher polls a store's CURRENT pointer and applies newly promoted
// releases — the pod-side half of fleet-wide promotion. The canary
// controller moves the pointer once; every pod watching the store converges
// onto the new version without being contacted individually.
type Watcher struct {
	store *Store
	every time.Duration
	// current reports the version the owner is serving right now; apply
	// swaps the owner onto a release. Both are called from the watcher
	// goroutine only.
	current func() int
	apply   func(Release) error

	mu sync.Mutex
	// failed remembers versions whose apply failed (checksum mismatch,
	// undecodable weights): the watcher must not hot-loop a poisoned
	// release every tick. A failed version is retried only after CURRENT
	// moves somewhere else first.
	failed map[int]error

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// Watch starts polling the store every interval. current() is the version
// being served; apply() performs the swap and returns an error to leave the
// fleet on the old version (the watcher then quarantines that version
// locally). Close stops the watcher.
func Watch(s *Store, every time.Duration, current func() int, apply func(Release) error) *Watcher {
	if every <= 0 {
		every = time.Second
	}
	w := &Watcher{
		store:   s,
		every:   every,
		current: current,
		apply:   apply,
		failed:  make(map[int]error),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go w.run()
	return w
}

func (w *Watcher) run() {
	defer close(w.done)
	ticker := time.NewTicker(w.every)
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
			w.tick()
		}
	}
}

func (w *Watcher) tick() {
	rel, err := w.store.Current()
	if err != nil {
		// No promotion yet, or a torn pointer both its records failed to
		// recover from: nothing actionable, keep serving what we serve.
		return
	}
	if rel.Version == w.current() {
		return
	}
	w.mu.Lock()
	_, poisoned := w.failed[rel.Version]
	w.mu.Unlock()
	if poisoned {
		return
	}
	if err := w.apply(rel); err != nil {
		w.mu.Lock()
		w.failed[rel.Version] = err
		w.mu.Unlock()
	}
}

// Failed snapshots the versions this watcher refused after a failed apply,
// with the error that condemned each.
func (w *Watcher) Failed() map[int]error {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[int]error, len(w.failed))
	for v, err := range w.failed {
		out[v] = err
	}
	return out
}

// Close stops the watcher and waits for its goroutine to exit.
func (w *Watcher) Close() {
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}
