// Package deploy is the versioned, content-checksummed model release store
// — the missing half of the paper's "deploy serialised models from storage
// buckets" flow. The bucket already loads one unversioned blob at startup;
// this package adds what a fleet that retrains daily actually needs: a
// monotonic release history, per-artifact SHA-256 so a corrupted archive is
// detected before it ever serves, a publish protocol whose `current`
// pointer is written atomically last (a crash mid-publish can never expose
// a half-written release), and a quarantine ledger for releases the fleet
// has rejected.
//
// Bucket layout:
//
//	releases/v00000001/manifest.json   model manifest (artifact, checksummed)
//	releases/v00000001/weights.bin     optional weight archive (artifact)
//	releases/v00000001/release.json    release record: version + artifact SHAs
//	releases/v00000001/quarantine.json quarantine marker (reason), if rejected
//	releases/PREVIOUS                  prior pointer, kept for torn recovery
//	releases/CURRENT                   {version, sha256(release.json)} — LAST
//
// Publish order is artifacts → release.json → (Promote:) PREVIOUS →
// CURRENT. Readers treat a version directory without a release.json as
// nonexistent, and a CURRENT whose embedded checksum does not match the
// release record it points at as torn — recovery falls back to PREVIOUS.
// Combined with objstore.FSBucket's fsync-then-rename Put, a crash at any
// byte of the protocol leaves the store serving the last good release.
package deploy

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"etude/internal/model"
	"etude/internal/objstore"
)

const (
	// Prefix is the bucket namespace the store owns.
	Prefix = "releases/"
	// currentKey is the fleet-wide promotion pointer, written atomically
	// last in every publish.
	currentKey = Prefix + "CURRENT"
	// previousKey holds the pointer CURRENT replaced, for torn recovery.
	previousKey = Prefix + "PREVIOUS"

	manifestName   = "manifest.json"
	weightsName    = "weights.bin"
	recordName     = "release.json"
	quarantineName = "quarantine.json"
)

// Store errors.
var (
	// ErrNoCurrent means no release has ever been promoted.
	ErrNoCurrent = errors.New("deploy: no current release")
	// ErrNotFound means the requested version has no (complete) release.
	ErrNotFound = errors.New("deploy: release not found")
	// ErrQuarantined refuses loading or promoting a quarantined release.
	ErrQuarantined = errors.New("deploy: release is quarantined")
	// ErrTornPointer marks a CURRENT pointer that does not validate against
	// the release record it names — the signature of a torn publish.
	ErrTornPointer = errors.New("deploy: torn current pointer")
)

// VerifyError reports a content-checksum mismatch on one release artifact.
type VerifyError struct {
	Version int
	Key     string
	Want    string
	Got     string
	Cause   error
}

// Error implements error.
func (e *VerifyError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("deploy: release v%d artifact %s: %v", e.Version, e.Key, e.Cause)
	}
	return fmt.Sprintf("deploy: release v%d artifact %s checksum mismatch: want %.12s, got %.12s",
		e.Version, e.Key, e.Want, e.Got)
}

// Unwrap exposes the underlying bucket error, if any.
func (e *VerifyError) Unwrap() error { return e.Cause }

// Artifact is one checksummed object of a release.
type Artifact struct {
	// Key locates the object in the bucket.
	Key string `json:"key"`
	// SHA256 is the hex digest of the object's content.
	SHA256 string `json:"sha256"`
	// Bytes is the object's size, for reload-cost reporting.
	Bytes int `json:"bytes"`
}

// Release is one immutable published model version.
type Release struct {
	// Version is the monotonic release number (1-based).
	Version int `json:"version"`
	// Model names the architecture, for listings.
	Model string `json:"model"`
	// ManifestKey locates the model manifest artifact.
	ManifestKey string `json:"manifest_key"`
	// Artifacts lists every object of the release with its checksum.
	Artifacts []Artifact `json:"artifacts"`
	// Notes is free-form operator context ("retrain 2024-06-01").
	Notes string `json:"notes,omitempty"`
}

// pointer is the CURRENT/PREVIOUS record: the promoted version plus the
// checksum of its release record, so a reader can detect a pointer that
// survived a crash the record did not (or vice versa).
type pointer struct {
	Version int    `json:"version"`
	SHA256  string `json:"sha256"`
}

// Quarantine is the persisted rejection marker of a release.
type Quarantine struct {
	Version int    `json:"version"`
	Reason  string `json:"reason"`
}

// Store is a release store over a bucket. Methods are safe for concurrent
// readers; publishing is single-writer (one CI/CD pipeline), as in the
// paper's deployment flow.
type Store struct {
	bucket objstore.Bucket
}

// NewStore returns a release store over b.
func NewStore(b objstore.Bucket) *Store { return &Store{bucket: b} }

// Bucket returns the underlying bucket.
func (s *Store) Bucket() objstore.Bucket { return s.bucket }

// dir returns a version's directory prefix ("releases/v00000042/").
func dir(version int) string { return fmt.Sprintf("%sv%08d/", Prefix, version) }

// recordKey returns the release-record key of a version.
func recordKey(version int) string { return dir(version) + recordName }

func sha(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Publish stages a new release: the next monotonic version is allocated,
// artifacts are written first, the checksummed release record last. The
// release becomes visible to Get/List/Latest but does NOT serve anywhere
// until Promote moves the CURRENT pointer (or a canary controller deploys
// it to a slice of pods directly). A crash at any point of Publish leaves
// at worst an invisible, incomplete version directory that the next
// Publish simply skips past.
func (s *Store) Publish(m model.Manifest, weights []byte, notes string) (Release, error) {
	if m.Model == "" {
		return Release{}, fmt.Errorf("deploy: manifest missing model name")
	}
	latest, err := s.Latest()
	if err != nil && !errors.Is(err, ErrNotFound) {
		return Release{}, err
	}
	version := latest + 1

	rel := Release{
		Version:     version,
		Model:       m.Model,
		ManifestKey: dir(version) + manifestName,
		Notes:       notes,
	}
	if len(weights) > 0 {
		wk := dir(version) + weightsName
		if err := s.bucket.Put(wk, weights); err != nil {
			return Release{}, fmt.Errorf("deploy: writing weights: %w", err)
		}
		rel.Artifacts = append(rel.Artifacts, Artifact{Key: wk, SHA256: sha(weights), Bytes: len(weights)})
		// The stored manifest points at the release's own weight archive so
		// the release directory is self-contained.
		m.WeightsKey = wk
	}
	mdata, err := model.MarshalManifest(m)
	if err != nil {
		return Release{}, err
	}
	if err := s.bucket.Put(rel.ManifestKey, mdata); err != nil {
		return Release{}, fmt.Errorf("deploy: writing manifest: %w", err)
	}
	rel.Artifacts = append(rel.Artifacts, Artifact{Key: rel.ManifestKey, SHA256: sha(mdata), Bytes: len(mdata)})

	rdata, err := json.MarshalIndent(rel, "", "  ")
	if err != nil {
		return Release{}, fmt.Errorf("deploy: encoding release record: %w", err)
	}
	// The record is the commit point of the stage: before this Put the
	// version does not exist, after it the version is complete.
	if err := s.bucket.Put(recordKey(version), rdata); err != nil {
		return Release{}, fmt.Errorf("deploy: writing release record: %w", err)
	}
	return rel, nil
}

// Promote makes a staged release the fleet-wide current version. The
// release is verified first (a corrupted release must not be promotable),
// the outgoing pointer is preserved as PREVIOUS, and CURRENT itself is
// written atomically last — the only mutation a reader's view of "what
// serves" depends on.
func (s *Store) Promote(version int) error {
	rel, raw, err := s.getRaw(version)
	if err != nil {
		return err
	}
	if reason, q := s.QuarantineReason(version); q {
		return fmt.Errorf("%w: v%d (%s)", ErrQuarantined, version, reason)
	}
	if err := s.Verify(rel); err != nil {
		return fmt.Errorf("deploy: refusing to promote: %w", err)
	}
	// Preserve the outgoing pointer for torn-CURRENT recovery — but only a
	// pointer that itself resolves. Blindly copying a torn CURRENT into
	// PREVIOUS would destroy the one good fallback; a missing CURRENT
	// (first promotion) has nothing to preserve.
	if _, err := s.resolvePointer(currentKey); err == nil {
		cur, err := s.bucket.Get(currentKey)
		if err != nil {
			return fmt.Errorf("deploy: rereading current pointer: %w", err)
		}
		if err := s.bucket.Put(previousKey, cur); err != nil {
			return fmt.Errorf("deploy: preserving previous pointer: %w", err)
		}
	}
	ptr, err := json.Marshal(pointer{Version: version, SHA256: sha(raw)})
	if err != nil {
		return fmt.Errorf("deploy: encoding pointer: %w", err)
	}
	if err := s.bucket.Put(currentKey, ptr); err != nil {
		return fmt.Errorf("deploy: publishing current pointer: %w", err)
	}
	return nil
}

// Current resolves the promoted release. A CURRENT pointer that is
// unreadable, malformed, or whose checksum does not match the release
// record it names is treated as torn; recovery falls back to the PREVIOUS
// pointer so the fleet keeps resolving the last good release. Only when
// both pointers fail does Current surface ErrTornPointer.
func (s *Store) Current() (Release, error) {
	rel, err := s.resolvePointer(currentKey)
	if err == nil {
		return rel, nil
	}
	if errors.Is(err, ErrNoCurrent) {
		return Release{}, err
	}
	// Torn CURRENT: recover through the preserved predecessor.
	if prev, perr := s.resolvePointer(previousKey); perr == nil {
		return prev, nil
	}
	return Release{}, fmt.Errorf("%w: %v", ErrTornPointer, err)
}

// Previous resolves the PREVIOUS pointer — the release that was serving
// before the last promotion, and therefore the target of an operator
// rollback. Returns ErrNoCurrent when no promotion has ever been
// superseded (there is nothing to roll back to).
func (s *Store) Previous() (Release, error) {
	return s.resolvePointer(previousKey)
}

// resolvePointer reads one pointer object and validates it against the
// release record it names.
func (s *Store) resolvePointer(key string) (Release, error) {
	data, err := s.bucket.Get(key)
	if err != nil {
		if errors.Is(err, objstore.ErrNotFound) {
			return Release{}, ErrNoCurrent
		}
		return Release{}, fmt.Errorf("deploy: reading pointer: %w", err)
	}
	var ptr pointer
	if err := json.Unmarshal(data, &ptr); err != nil {
		return Release{}, fmt.Errorf("deploy: pointer undecodable: %w", err)
	}
	if ptr.Version <= 0 {
		return Release{}, fmt.Errorf("deploy: pointer names invalid version %d", ptr.Version)
	}
	rel, raw, err := s.getRaw(ptr.Version)
	if err != nil {
		return Release{}, fmt.Errorf("deploy: pointer names v%d: %w", ptr.Version, err)
	}
	if got := sha(raw); got != ptr.SHA256 {
		return Release{}, fmt.Errorf("deploy: pointer checksum %.12s does not match release record %.12s", ptr.SHA256, got)
	}
	return rel, nil
}

// Get returns a staged release by version.
func (s *Store) Get(version int) (Release, error) {
	rel, _, err := s.getRaw(version)
	return rel, err
}

func (s *Store) getRaw(version int) (Release, []byte, error) {
	raw, err := s.bucket.Get(recordKey(version))
	if err != nil {
		if errors.Is(err, objstore.ErrNotFound) {
			return Release{}, nil, fmt.Errorf("%w: v%d", ErrNotFound, version)
		}
		return Release{}, nil, fmt.Errorf("deploy: reading release record: %w", err)
	}
	var rel Release
	if err := json.Unmarshal(raw, &rel); err != nil {
		return Release{}, nil, fmt.Errorf("deploy: release record v%d undecodable: %w", version, err)
	}
	if rel.Version != version {
		return Release{}, nil, fmt.Errorf("deploy: release record at v%d claims version %d", version, rel.Version)
	}
	return rel, raw, nil
}

// List returns every complete (record-committed) release, oldest first.
// Version directories without a release record — the residue of a crashed
// publish — are invisible.
func (s *Store) List() ([]Release, error) {
	keys, err := s.bucket.List(Prefix)
	if err != nil {
		return nil, fmt.Errorf("deploy: listing releases: %w", err)
	}
	var rels []Release
	for _, k := range keys {
		v, ok := versionOfRecord(k)
		if !ok {
			continue
		}
		rel, _, err := s.getRaw(v)
		if err != nil {
			// A record deleted between List and Get, or one that fails its
			// own sanity checks: skip rather than fail the whole listing.
			continue
		}
		rels = append(rels, rel)
	}
	sort.Slice(rels, func(i, j int) bool { return rels[i].Version < rels[j].Version })
	return rels, nil
}

// versionOfRecord parses "releases/v<NNNNNNNN>/release.json" into its
// version number.
func versionOfRecord(key string) (int, bool) {
	rest, ok := strings.CutPrefix(key, Prefix+"v")
	if !ok {
		return 0, false
	}
	num, ok := strings.CutSuffix(rest, "/"+recordName)
	if !ok {
		return 0, false
	}
	v, err := strconv.Atoi(num)
	if err != nil || v <= 0 {
		return 0, false
	}
	return v, true
}

// Latest returns the highest complete release version, or ErrNotFound when
// nothing has been published.
func (s *Store) Latest() (int, error) {
	keys, err := s.bucket.List(Prefix)
	if err != nil {
		return 0, fmt.Errorf("deploy: listing releases: %w", err)
	}
	latest := 0
	for _, k := range keys {
		if v, ok := versionOfRecord(k); ok && v > latest {
			latest = v
		}
	}
	if latest == 0 {
		return 0, ErrNotFound
	}
	return latest, nil
}

// Verify re-reads every artifact of a release and checks its SHA-256. The
// error (a *VerifyError) pins the first artifact that is missing or whose
// content drifted — a bit-flip, a truncation, a torn write.
func (s *Store) Verify(rel Release) error {
	for _, a := range rel.Artifacts {
		data, err := s.bucket.Get(a.Key)
		if err != nil {
			return &VerifyError{Version: rel.Version, Key: a.Key, Want: a.SHA256, Cause: err}
		}
		if got := sha(data); got != a.SHA256 {
			return &VerifyError{Version: rel.Version, Key: a.Key, Want: a.SHA256, Got: got}
		}
	}
	return nil
}

// Load verifies a release and materialises its model: checksums first, so
// a corrupted artifact is rejected before a single byte of it is
// interpreted; then manifest decode, model build, and weight restore —
// each failure typed (model.ErrWeightsCorrupt et al.), none panicking.
func (s *Store) Load(rel Release) (model.Model, error) {
	if reason, q := s.QuarantineReason(rel.Version); q {
		return nil, fmt.Errorf("%w: v%d (%s)", ErrQuarantined, rel.Version, reason)
	}
	if err := s.Verify(rel); err != nil {
		return nil, err
	}
	mdata, err := s.bucket.Get(rel.ManifestKey)
	if err != nil {
		return nil, fmt.Errorf("deploy: reading manifest: %w", err)
	}
	manifest, err := model.UnmarshalManifest(mdata)
	if err != nil {
		return nil, err
	}
	m, err := manifest.Load()
	if err != nil {
		return nil, err
	}
	if manifest.WeightsKey != "" {
		weights, err := s.bucket.Get(manifest.WeightsKey)
		if err != nil {
			return nil, fmt.Errorf("deploy: reading weights: %w", err)
		}
		if err := model.LoadWeights(m, weights); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// LoadVersion resolves and loads one version (0 = current).
func (s *Store) LoadVersion(version int) (model.Model, Release, error) {
	var rel Release
	var err error
	if version == 0 {
		rel, err = s.Current()
	} else {
		rel, err = s.Get(version)
	}
	if err != nil {
		return nil, Release{}, err
	}
	m, err := s.Load(rel)
	if err != nil {
		return nil, rel, err
	}
	return m, rel, nil
}

// Quarantine persists a rejection marker for a release: Load and Promote
// refuse it from now on, and rollback tooling lists why. Quarantining is
// idempotent; the first reason wins.
func (s *Store) Quarantine(version int, reason string) error {
	if _, _, err := s.getRaw(version); err != nil {
		return err
	}
	if _, q := s.QuarantineReason(version); q {
		return nil
	}
	data, err := json.Marshal(Quarantine{Version: version, Reason: reason})
	if err != nil {
		return fmt.Errorf("deploy: encoding quarantine: %w", err)
	}
	if err := s.bucket.Put(dir(version)+quarantineName, data); err != nil {
		return fmt.Errorf("deploy: writing quarantine: %w", err)
	}
	return nil
}

// QuarantineReason reports whether a version is quarantined and why.
func (s *Store) QuarantineReason(version int) (string, bool) {
	data, err := s.bucket.Get(dir(version) + quarantineName)
	if err != nil {
		return "", false
	}
	var q Quarantine
	if err := json.Unmarshal(data, &q); err != nil {
		// An undecodable marker still means "someone rejected this".
		return "unreadable quarantine marker", true
	}
	return q.Reason, true
}
