package batching

import "time"

// Assembly is the batch-formation policy shared by the plain batcher and
// the multi-tenant scheduler (internal/sched): when a buffer must flush,
// and which buffered entries are already dead. It works on abstract
// monotonic timestamps (offsets from an arbitrary epoch) so the live
// batcher can drive it from the wall clock while the discrete-event
// simulator drives it from virtual time — the two substrates make
// identical flush decisions.
type Assembly struct {
	// MaxBatch flushes the buffer when this many entries are pending.
	MaxBatch int
	// FlushEvery bounds how long the oldest entry may wait in the buffer.
	FlushEvery time.Duration
	// DeadlineSlack is the headroom reserved before a member deadline: a
	// buffer holding an entry whose deadline is D flushes by D−slack, so
	// the batch is dispatched with time to actually serve the entry rather
	// than exactly when it dies. Schedulers with a cost model set it to
	// the expected batch service time; Config.Assembly defaults it.
	DeadlineSlack time.Duration
}

// FlushAt returns the instant the buffer must flush: the oldest entry's
// enqueue time plus the flush interval, pulled earlier to the tightest
// member deadline minus the slack (zero deadline = none). Waiting past
// the tightest deadline would guarantee a dead entry in the batch, so the
// policy never does — it flushes early instead.
func (a Assembly) FlushAt(oldestEnq, tightestDeadline time.Duration) time.Duration {
	at := oldestEnq + a.FlushEvery
	if tightestDeadline > 0 && tightestDeadline-a.DeadlineSlack < at {
		at = tightestDeadline - a.DeadlineSlack
	}
	return at
}

// Full reports whether a buffer of n entries has hit the size bound.
func (a Assembly) Full(n int) bool { return n >= a.MaxBatch }

// Expired reports whether an entry with the given deadline (zero = none)
// is already dead at now. Dead entries must be answered, not batched:
// computing a response nobody is waiting for spends accelerator FLOPs the
// live entries need.
func (a Assembly) Expired(deadline, now time.Duration) bool {
	return deadline > 0 && deadline <= now
}
