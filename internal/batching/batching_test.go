package batching

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"etude/internal/overload"
)

func TestConfigValidation(t *testing.T) {
	double := func(batch []int) []int {
		out := make([]int, len(batch))
		for i, v := range batch {
			out[i] = 2 * v
		}
		return out
	}
	if _, err := New(Config{MaxBatch: 0, FlushEvery: time.Millisecond}, double); err == nil {
		t.Fatalf("MaxBatch 0 accepted")
	}
	if _, err := New(Config{MaxBatch: 4, FlushEvery: 0}, double); err == nil {
		t.Fatalf("FlushEvery 0 accepted")
	}
	if _, err := New[int, int](DefaultConfig(), nil); err == nil {
		t.Fatalf("nil handler accepted")
	}
	if c := DefaultConfig(); c.MaxBatch != 1024 || c.FlushEvery != 2*time.Millisecond {
		t.Fatalf("paper defaults changed: %+v", c)
	}
}

func TestSingleRequestFlushedByTimer(t *testing.T) {
	b, err := New(Config{MaxBatch: 100, FlushEvery: time.Millisecond}, func(batch []int) []int {
		out := make([]int, len(batch))
		for i, v := range batch {
			out[i] = v + 1
		}
		return out
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	got, err := b.Submit(context.Background(), 41)
	if err != nil || got != 42 {
		t.Fatalf("Submit = %v, %v", got, err)
	}
}

func TestResponsesMatchRequests(t *testing.T) {
	b, _ := New(Config{MaxBatch: 8, FlushEvery: time.Millisecond}, func(batch []int) []int {
		out := make([]int, len(batch))
		for i, v := range batch {
			out[i] = v * v
		}
		return out
	})
	defer b.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 1; i <= 64; i++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			got, err := b.Submit(context.Background(), v)
			if err != nil {
				errs <- err
				return
			}
			if got != v*v {
				t.Errorf("Submit(%d) = %d, want %d", v, got, v*v)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestMaxBatchRespected(t *testing.T) {
	var maxSeen atomic.Int64
	b, _ := New(Config{MaxBatch: 4, FlushEvery: 50 * time.Millisecond}, func(batch []string) []string {
		if int64(len(batch)) > maxSeen.Load() {
			maxSeen.Store(int64(len(batch)))
		}
		return batch
	})
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Submit(context.Background(), "x"); err != nil {
				t.Errorf("Submit: %v", err)
			}
		}()
	}
	wg.Wait()
	if maxSeen.Load() > 4 {
		t.Fatalf("batch of %d exceeded MaxBatch 4", maxSeen.Load())
	}
}

func TestBatchingActuallyBatches(t *testing.T) {
	var calls atomic.Int64
	b, _ := New(Config{MaxBatch: 64, FlushEvery: 20 * time.Millisecond}, func(batch []int) []int {
		calls.Add(1)
		return batch
	})
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = b.Submit(context.Background(), 1)
		}()
	}
	wg.Wait()
	// 32 concurrent requests within one 20ms window must need far fewer
	// handler invocations than requests.
	if calls.Load() > 8 {
		t.Fatalf("32 requests used %d handler calls — not batching", calls.Load())
	}
}

func TestSubmitContextCancelled(t *testing.T) {
	block := make(chan struct{})
	b, _ := New(Config{MaxBatch: 1, FlushEvery: time.Millisecond}, func(batch []int) []int {
		<-block
		return batch
	})
	defer b.Close()
	defer close(block)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	// First request occupies the handler; second's context expires.
	go func() { _, _ = b.Submit(context.Background(), 1) }()
	time.Sleep(5 * time.Millisecond)
	_, err := b.Submit(ctx, 2)
	if err == nil {
		t.Fatalf("expected context error")
	}
}

func TestExpiredEntriesDroppedBeforeHandler(t *testing.T) {
	// A request whose deadline passes while buffered must never reach the
	// handler: the batcher answers its context error at flush time.
	var seen atomic.Int64
	block := make(chan struct{})
	b, _ := New(Config{MaxBatch: 8, FlushEvery: time.Millisecond}, func(batch []int) []int {
		seen.Add(int64(len(batch)))
		<-block
		return batch
	})
	defer b.Close()
	defer close(block)

	// First request occupies the dispatch goroutine in the handler...
	go func() { _, _ = b.Submit(context.Background(), 1) }()
	time.Sleep(5 * time.Millisecond)
	// ...so this one sits buffered past its deadline until the next flush.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := b.Submit(ctx, 2)
	// The flush path answers the dedicated sentinel (so the server can 504
	// and count it) which still matches the generic budget error.
	if err != ErrDeadlineExpired && err != context.DeadlineExceeded {
		t.Fatalf("Submit = %v, want ErrDeadlineExpired", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-drop error %v does not match context.DeadlineExceeded", err)
	}
	time.Sleep(5 * time.Millisecond) // let the blocked flush drain
	if got := seen.Load(); got != 1 {
		t.Fatalf("handler saw %d requests, want only the live one", got)
	}
}

func TestCoDelShedsStandingQueue(t *testing.T) {
	// A CoDel driven into its drop state (virtual clock, nanosecond
	// target/interval so any measurable sojourn counts) must shed the
	// request that sat buffered behind a slow flush, without the handler
	// ever seeing it.
	clk := time.Duration(0)
	cd := overload.NewCoDel(overload.CoDelConfig{Target: time.Nanosecond, Interval: time.Nanosecond}, func() time.Duration {
		clk += time.Millisecond
		return clk
	})

	var seen atomic.Int64
	b, _ := New(Config{MaxBatch: 8, FlushEvery: time.Millisecond, CoDel: cd}, func(batch []int) []int {
		seen.Add(int64(len(batch)))
		time.Sleep(10 * time.Millisecond)
		return batch
	})
	defer b.Close()

	// The first request's flush arms the excursion (its sojourn is above
	// the nanosecond target) and parks the dispatcher in the sleeping
	// handler.
	go func() { _, _ = b.Submit(context.Background(), 1) }()
	time.Sleep(3 * time.Millisecond)
	// Tip the controller into its drop state while the second request sits
	// buffered behind the slow flush.
	if !cd.ShouldDrop(time.Second) || !cd.Dropping() {
		t.Fatal("controller did not enter its drop state")
	}
	_, err := b.Submit(context.Background(), 2)
	if err != ErrCoDelDropped {
		t.Fatalf("Submit = %v, want ErrCoDelDropped", err)
	}
	if cd.Dropped() < 2 {
		t.Fatalf("controller drops = %d, want ≥ 2", cd.Dropped())
	}
	if seen.Load() != 1 {
		t.Fatalf("handler saw %d requests, want only the live one", seen.Load())
	}
}

func TestSubmitAfterClose(t *testing.T) {
	b, _ := New(Config{MaxBatch: 1, FlushEvery: time.Millisecond}, func(batch []int) []int { return batch })
	b.Close()
	time.Sleep(2 * time.Millisecond)
	if _, err := b.Submit(context.Background(), 1); err == nil {
		t.Fatalf("Submit after Close must error")
	}
}

func TestThroughputUnderLoad(t *testing.T) {
	// A handler with a fixed 1ms cost per batch must sustain far more than
	// 1,000 sequential-equivalent requests/second thanks to batching.
	b, _ := New(Config{MaxBatch: 1024, FlushEvery: 2 * time.Millisecond}, func(batch []int) []int {
		time.Sleep(time.Millisecond)
		return batch
	})
	defer b.Close()
	start := time.Now()
	var wg sync.WaitGroup
	const n = 2000
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = b.Submit(context.Background(), 1)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed > time.Second {
		t.Fatalf("2000 batched requests took %v — batching broken", elapsed)
	}
}
