// Package batching implements the request-batching plugin of the inference
// server — the Go analogue of the batched-fn Rust crate the paper uses for
// GPU inference. Incoming requests accumulate in a buffer that is flushed to
// a batch handler when either the maximum batch size is reached (paper
// setting: 1,024 requests) or the flush interval elapses (paper setting: two
// milliseconds), whichever comes first.
package batching

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"etude/internal/overload"
)

// ErrClosed is returned by Submit after the batcher is shut down.
var ErrClosed = errors.New("batching: batcher closed")

// ErrCoDelDropped is returned by Submit when the queue discipline sheds
// the request at flush time: its sojourn in the buffer signalled a
// standing queue. The caller should answer 503 — the request itself was
// fine, the server is behind.
var ErrCoDelDropped = errors.New("batching: shed by CoDel queue discipline")

// Config controls batch formation.
type Config struct {
	// MaxBatch flushes the buffer when this many requests are pending.
	MaxBatch int
	// FlushEvery flushes any non-empty buffer after this interval.
	FlushEvery time.Duration
	// CoDel, when set, sheds buffered requests whose sojourn time shows a
	// standing queue (evaluated per entry at flush, in arrival order).
	// Expired-context entries are always dropped at flush regardless.
	CoDel *overload.CoDel
}

// DefaultConfig returns the paper's settings: up to 1,024 requests, flushed
// every two milliseconds.
func DefaultConfig() Config {
	return Config{MaxBatch: 1024, FlushEvery: 2 * time.Millisecond}
}

func (c Config) validate() error {
	if c.MaxBatch < 1 {
		return fmt.Errorf("batching: MaxBatch must be ≥ 1, got %d", c.MaxBatch)
	}
	if c.FlushEvery <= 0 {
		return fmt.Errorf("batching: FlushEvery must be positive, got %v", c.FlushEvery)
	}
	return nil
}

// Handler processes one batch of requests and returns one response per
// request, in order. It runs on the batcher's dispatch goroutine: at most
// one batch is in flight at a time, which models an accelerator executing
// one kernel sequence at a time.
type Handler[Req, Resp any] func(batch []Req) []Resp

// Batcher groups individual requests into batches. Create with New, submit
// with Submit, and release resources with Close.
type Batcher[Req, Resp any] struct {
	cfg     Config
	handler Handler[Req, Resp]
	in      chan envelope[Req, Resp]
	done    chan struct{}
	pending atomic.Int64
}

// Pending returns the number of requests submitted but not yet answered —
// the queue-depth signal graceful degradation watermarks consume.
func (b *Batcher[Req, Resp]) Pending() int {
	return int(b.pending.Load())
}

type envelope[Req, Resp any] struct {
	req   Req
	ctx   context.Context
	enq   time.Time
	reply chan result[Resp]
}

// result carries either a response or the reason the batcher refused to
// compute one (expired context, CoDel shed, short handler reply).
type result[Resp any] struct {
	resp Resp
	err  error
}

// New starts a batcher that feeds handler. Close must be called to stop the
// dispatch goroutine.
func New[Req, Resp any](cfg Config, handler Handler[Req, Resp]) (*Batcher[Req, Resp], error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if handler == nil {
		return nil, errors.New("batching: nil handler")
	}
	b := &Batcher[Req, Resp]{
		cfg:     cfg,
		handler: handler,
		in:      make(chan envelope[Req, Resp], cfg.MaxBatch),
		done:    make(chan struct{}),
	}
	go b.dispatch()
	return b, nil
}

// Submit enqueues one request and blocks until its response is available,
// the context is cancelled, the request is dropped at flush (expired
// deadline or CoDel shed), or the batcher is closed.
func (b *Batcher[Req, Resp]) Submit(ctx context.Context, req Req) (Resp, error) {
	var zero Resp
	b.pending.Add(1)
	defer b.pending.Add(-1)
	env := envelope[Req, Resp]{req: req, ctx: ctx, enq: time.Now(), reply: make(chan result[Resp], 1)}
	select {
	case b.in <- env:
	case <-ctx.Done():
		return zero, ctx.Err()
	case <-b.done:
		return zero, ErrClosed
	}
	select {
	case r := <-env.reply:
		return r.resp, r.err
	case <-ctx.Done():
		return zero, ctx.Err()
	case <-b.done:
		return zero, ErrClosed
	}
}

// Close stops the dispatcher. Pending requests receive ErrClosed.
func (b *Batcher[Req, Resp]) Close() {
	close(b.done)
}

func (b *Batcher[Req, Resp]) dispatch() {
	ticker := time.NewTicker(b.cfg.FlushEvery)
	defer ticker.Stop()
	buf := make([]envelope[Req, Resp], 0, b.cfg.MaxBatch)
	for {
		select {
		case env := <-b.in:
			buf = append(buf, env)
			if len(buf) >= b.cfg.MaxBatch {
				buf = b.flush(buf)
				ticker.Reset(b.cfg.FlushEvery)
			}
		case <-ticker.C:
			if len(buf) > 0 {
				buf = b.flush(buf)
			}
		case <-b.done:
			return
		}
	}
}

// flush runs the handler on the buffered requests and fans responses out.
// Before the handler sees the batch, entries whose context already expired
// are answered with their context error, and — in arrival order, so the
// CoDel controller sees head-of-queue sojourns — entries the queue
// discipline sheds are answered ErrCoDelDropped. Neither spends handler
// FLOPs. It returns the emptied (reusable) buffer.
func (b *Batcher[Req, Resp]) flush(buf []envelope[Req, Resp]) []envelope[Req, Resp] {
	now := time.Now()
	reqs := make([]Req, 0, len(buf))
	kept := make([]envelope[Req, Resp], 0, len(buf))
	for _, env := range buf {
		if err := env.ctx.Err(); err != nil {
			env.reply <- result[Resp]{err: err}
			continue
		}
		if b.cfg.CoDel.ShouldDrop(now.Sub(env.enq)) {
			env.reply <- result[Resp]{err: ErrCoDelDropped}
			continue
		}
		kept = append(kept, env)
		reqs = append(reqs, env.req)
	}
	if len(reqs) > 0 {
		resps := b.handler(reqs)
		for i, env := range kept {
			if i < len(resps) {
				env.reply <- result[Resp]{resp: resps[i]}
			}
		}
	}
	return buf[:0]
}
