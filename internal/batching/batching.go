// Package batching implements the request-batching plugin of the inference
// server — the Go analogue of the batched-fn Rust crate the paper uses for
// GPU inference. Incoming requests accumulate in a buffer that is flushed to
// a batch handler when the maximum batch size is reached (paper setting:
// 1,024 requests), the flush interval elapses (paper setting: two
// milliseconds), or — new to this implementation — the tightest propagated
// deadline among the buffered requests would otherwise pass. The flush
// decision itself lives in Assembly so the multi-tenant scheduler
// (internal/sched) and the discrete-event simulator apply the same policy.
package batching

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"etude/internal/overload"
)

// ErrClosed is returned by Submit after the batcher is shut down.
var ErrClosed = errors.New("batching: batcher closed")

// ErrCoDelDropped is returned by Submit when the queue discipline sheds
// the request at flush time: its sojourn in the buffer signalled a
// standing queue. The caller should answer 503 — the request itself was
// fine, the server is behind.
var ErrCoDelDropped = errors.New("batching: shed by CoDel queue discipline")

// ErrDeadlineExpired is returned by Submit when the request's propagated
// deadline passed while it sat in the buffer: the entry is dropped at
// flush time instead of spending handler FLOPs on a response nobody is
// waiting for. The caller should answer 504. It matches
// errors.Is(err, context.DeadlineExceeded) so budget-generic callers need
// no special case.
var ErrDeadlineExpired error = deadlineExpiredError{}

type deadlineExpiredError struct{}

func (deadlineExpiredError) Error() string {
	return "batching: deadline expired while buffered"
}

func (deadlineExpiredError) Is(target error) bool {
	return target == context.DeadlineExceeded
}

// Config controls batch formation.
type Config struct {
	// MaxBatch flushes the buffer when this many requests are pending.
	MaxBatch int
	// FlushEvery flushes any non-empty buffer after this interval. A
	// buffered request whose deadline is tighter than the interval pulls
	// the flush earlier (see Assembly.FlushAt).
	FlushEvery time.Duration
	// DeadlineSlack is the headroom reserved before the tightest member
	// deadline when pulling a flush early (see Assembly.DeadlineSlack).
	// Zero picks a default of FlushEvery/4 capped at 5ms.
	DeadlineSlack time.Duration
	// CoDel, when set, sheds buffered requests whose sojourn time shows a
	// standing queue (evaluated per entry at flush, in arrival order).
	// Expired-deadline entries are always dropped at flush regardless.
	CoDel *overload.CoDel
}

// DefaultConfig returns the paper's settings: up to 1,024 requests, flushed
// every two milliseconds.
func DefaultConfig() Config {
	return Config{MaxBatch: 1024, FlushEvery: 2 * time.Millisecond}
}

func (c Config) validate() error {
	if c.MaxBatch < 1 {
		return fmt.Errorf("batching: MaxBatch must be ≥ 1, got %d", c.MaxBatch)
	}
	if c.FlushEvery <= 0 {
		return fmt.Errorf("batching: FlushEvery must be positive, got %v", c.FlushEvery)
	}
	return nil
}

// Assembly returns the batch-formation policy the config describes. A
// zero DeadlineSlack defaults to FlushEvery/4 capped at 5ms — enough
// headroom to dispatch before the deadline without noticeably shrinking
// the batching window; negative disables the slack.
func (c Config) Assembly() Assembly {
	slack := c.DeadlineSlack
	if slack == 0 {
		slack = c.FlushEvery / 4
		if slack > 5*time.Millisecond {
			slack = 5 * time.Millisecond
		}
	}
	if slack < 0 {
		slack = 0
	}
	return Assembly{MaxBatch: c.MaxBatch, FlushEvery: c.FlushEvery, DeadlineSlack: slack}
}

// Handler processes one batch of requests and returns one response per
// request, in order. It runs on the batcher's dispatch goroutine: at most
// one batch is in flight at a time, which models an accelerator executing
// one kernel sequence at a time.
type Handler[Req, Resp any] func(batch []Req) []Resp

// Batcher groups individual requests into batches. Create with New, submit
// with Submit, and release resources with Close.
type Batcher[Req, Resp any] struct {
	cfg     Config
	asm     Assembly
	handler Handler[Req, Resp]
	in      chan envelope[Req, Resp]
	done    chan struct{}
	pending atomic.Int64
	expired atomic.Int64
	// now is the batcher's monotonic clock (offsets from construction
	// time); tests may swap it before the first Submit.
	now func() time.Duration
}

// Pending returns the number of requests submitted but not yet answered —
// the queue-depth signal graceful degradation watermarks consume.
func (b *Batcher[Req, Resp]) Pending() int {
	return int(b.pending.Load())
}

// ExpiredDrops returns how many buffered requests were dropped at flush
// because their deadline had already passed.
func (b *Batcher[Req, Resp]) ExpiredDrops() int64 { return b.expired.Load() }

type envelope[Req, Resp any] struct {
	req Req
	ctx context.Context
	enq time.Duration
	// deadline is the request's absolute deadline on the batcher's clock
	// (zero = none), captured at Submit so the flush path can drop dead
	// entries without touching the context.
	deadline time.Duration
	reply    chan result[Resp]
}

// result carries either a response or the reason the batcher refused to
// compute one (expired deadline, cancelled context, CoDel shed, short
// handler reply).
type result[Resp any] struct {
	resp Resp
	err  error
}

// New starts a batcher that feeds handler. Close must be called to stop the
// dispatch goroutine.
func New[Req, Resp any](cfg Config, handler Handler[Req, Resp]) (*Batcher[Req, Resp], error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if handler == nil {
		return nil, errors.New("batching: nil handler")
	}
	epoch := time.Now()
	b := &Batcher[Req, Resp]{
		cfg:     cfg,
		asm:     cfg.Assembly(),
		handler: handler,
		in:      make(chan envelope[Req, Resp], cfg.MaxBatch),
		done:    make(chan struct{}),
		now:     func() time.Duration { return time.Since(epoch) },
	}
	go b.dispatch()
	return b, nil
}

// Submit enqueues one request and blocks until its response is available,
// the context is cancelled, the request is dropped at flush (expired
// deadline or CoDel shed), or the batcher is closed.
func (b *Batcher[Req, Resp]) Submit(ctx context.Context, req Req) (Resp, error) {
	var zero Resp
	b.pending.Add(1)
	defer b.pending.Add(-1)
	env := envelope[Req, Resp]{req: req, ctx: ctx, enq: b.now(), reply: make(chan result[Resp], 1)}
	if dl, ok := ctx.Deadline(); ok {
		env.deadline = env.enq + time.Until(dl)
	}
	select {
	case b.in <- env:
	case <-ctx.Done():
		return zero, ctx.Err()
	case <-b.done:
		return zero, ErrClosed
	}
	select {
	case r := <-env.reply:
		return r.resp, r.err
	case <-ctx.Done():
		return zero, ctx.Err()
	case <-b.done:
		return zero, ErrClosed
	}
}

// Close stops the dispatcher. Pending requests receive ErrClosed.
func (b *Batcher[Req, Resp]) Close() {
	close(b.done)
}

// dispatch is the single batch-formation goroutine. The buffer's flush
// instant is tracked explicitly (Assembly.FlushAt over the buffered
// entries) and a timer is armed to exactly that instant: an empty buffer
// holds no timer at all, the first entry arms it, and a tighter arriving
// deadline re-arms it earlier. The instant only ever moves earlier while
// the buffer fills — enqueue order makes the oldest entry's bound the
// loosest FlushEvery term — so re-arming on shrink is the only timer
// traffic.
func (b *Batcher[Req, Resp]) dispatch() {
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	armed := false
	rearm := func(at time.Duration) {
		if armed && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		d := at - b.now()
		if d < 0 {
			d = 0
		}
		timer.Reset(d)
		armed = true
	}
	disarm := func() {
		if armed && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		armed = false
	}
	var flushAt time.Duration
	buf := make([]envelope[Req, Resp], 0, b.cfg.MaxBatch)
	for {
		select {
		case env := <-b.in:
			bound := b.asm.FlushAt(env.enq, env.deadline)
			if len(buf) == 0 || bound < flushAt {
				flushAt = bound
			}
			buf = append(buf, env)
			if b.asm.Full(len(buf)) {
				buf = b.flush(buf)
				disarm()
				continue
			}
			rearm(flushAt)
		case <-timer.C:
			armed = false
			if len(buf) > 0 {
				buf = b.flush(buf)
			}
		case <-b.done:
			disarm()
			return
		}
	}
}

// flush runs the handler on the buffered requests and fans responses out.
// Before the handler sees the batch, entries whose deadline already passed
// are answered ErrDeadlineExpired, entries whose context is otherwise done
// are answered their context error, and — in arrival order, so the CoDel
// controller sees head-of-queue sojourns — entries the queue discipline
// sheds are answered ErrCoDelDropped. None of them spends handler FLOPs.
// It returns the emptied (reusable) buffer.
func (b *Batcher[Req, Resp]) flush(buf []envelope[Req, Resp]) []envelope[Req, Resp] {
	now := b.now()
	reqs := make([]Req, 0, len(buf))
	kept := make([]envelope[Req, Resp], 0, len(buf))
	for _, env := range buf {
		if b.asm.Expired(env.deadline, now) {
			b.expired.Add(1)
			env.reply <- result[Resp]{err: ErrDeadlineExpired}
			continue
		}
		if err := env.ctx.Err(); err != nil {
			env.reply <- result[Resp]{err: err}
			continue
		}
		if b.cfg.CoDel.ShouldDrop(now - env.enq) {
			env.reply <- result[Resp]{err: ErrCoDelDropped}
			continue
		}
		kept = append(kept, env)
		reqs = append(reqs, env.req)
	}
	if len(reqs) > 0 {
		resps := b.handler(reqs)
		for i, env := range kept {
			if i < len(resps) {
				env.reply <- result[Resp]{resp: resps[i]}
			}
		}
	}
	return buf[:0]
}
