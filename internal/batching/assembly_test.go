package batching

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The Assembly policy is pure (explicit timestamps), so its flush-timing
// semantics are tested under a virtual clock: plain time.Duration offsets,
// no sleeping, no wall-clock flake.

func TestAssemblyFlushAtBoundedByInterval(t *testing.T) {
	a := Assembly{MaxBatch: 8, FlushEvery: 2 * time.Millisecond}
	if got := a.FlushAt(10*time.Millisecond, 0); got != 12*time.Millisecond {
		t.Fatalf("FlushAt(no deadline) = %v, want oldest+FlushEvery = 12ms", got)
	}
	// A deadline looser than the interval must not delay the flush.
	if got := a.FlushAt(10*time.Millisecond, 50*time.Millisecond); got != 12*time.Millisecond {
		t.Fatalf("FlushAt(loose deadline) = %v, want 12ms", got)
	}
}

func TestAssemblyFlushAtPulledEarlierByTightDeadline(t *testing.T) {
	a := Assembly{MaxBatch: 8, FlushEvery: 2 * time.Millisecond}
	// A member deadline inside the flush window pulls the flush to it:
	// waiting the full interval would guarantee a dead entry.
	if got := a.FlushAt(10*time.Millisecond, 11*time.Millisecond); got != 11*time.Millisecond {
		t.Fatalf("FlushAt(tight deadline) = %v, want the 11ms deadline", got)
	}
	// With slack configured the flush lands ahead of the deadline, leaving
	// headroom to actually serve the entry.
	a.DeadlineSlack = 400 * time.Microsecond
	if got := a.FlushAt(10*time.Millisecond, 11*time.Millisecond); got != 10600*time.Microsecond {
		t.Fatalf("FlushAt(tight deadline, slack) = %v, want 10.6ms", got)
	}
}

func TestAssemblyExpired(t *testing.T) {
	a := Assembly{MaxBatch: 8, FlushEvery: time.Millisecond}
	now := 10 * time.Millisecond
	if a.Expired(0, now) {
		t.Fatal("no-deadline entry reported expired")
	}
	if a.Expired(now+time.Nanosecond, now) {
		t.Fatal("future deadline reported expired")
	}
	if !a.Expired(now, now) || !a.Expired(now-time.Nanosecond, now) {
		t.Fatal("passed deadline not reported expired")
	}
}

// TestAssemblyNeverWaitsPastTightestDeadline is the property test of the
// deadline-aware policy: for arbitrary buffers, the flush instant the
// policy picks is never later than any member deadline and never later
// than the oldest entry's flush-interval bound — i.e. no assembled batch
// ever waits past the tightest remaining deadline.
func TestAssemblyNeverWaitsPastTightestDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		a := Assembly{
			MaxBatch:      64,
			FlushEvery:    2 * time.Millisecond,
			DeadlineSlack: time.Duration(rng.Int63n(int64(time.Millisecond))),
		}
		n := 1 + rng.Intn(16)
		// Entries arrive in enqueue order within one flush window.
		enq := make([]time.Duration, n)
		deadline := make([]time.Duration, n)
		base := time.Duration(rng.Int63n(int64(time.Second)))
		cur := base
		for i := 0; i < n; i++ {
			cur += time.Duration(rng.Int63n(int64(a.FlushEvery) / 4))
			enq[i] = cur
			if rng.Intn(2) == 0 {
				deadline[i] = cur + time.Duration(rng.Int63n(int64(10*time.Millisecond)))
			}
		}
		// Fold the buffer the way the dispatcher does: shrink-only.
		flushAt := a.FlushAt(enq[0], deadline[0])
		for i := 1; i < n; i++ {
			if bound := a.FlushAt(enq[i], deadline[i]); bound < flushAt {
				flushAt = bound
			}
		}
		for i := 0; i < n; i++ {
			if deadline[i] > 0 && flushAt > deadline[i] {
				t.Fatalf("trial %d: flushAt %v waits past member %d deadline %v", trial, flushAt, i, deadline[i])
			}
		}
		if flushAt > enq[0]+a.FlushEvery {
			t.Fatalf("trial %d: flushAt %v exceeds oldest-entry bound %v", trial, flushAt, enq[0]+a.FlushEvery)
		}
	}
}

// TestBatcherEmptyBufferTimerReset exercises the dispatcher's empty-buffer
// semantics: after a flush empties the buffer, a later request gets a
// fresh FlushEvery window measured from its own enqueue — not a stale
// tick boundary left over from the previous buffer.
func TestBatcherEmptyBufferTimerReset(t *testing.T) {
	var flushes atomic.Int64
	b, err := New(Config{MaxBatch: 100, FlushEvery: 20 * time.Millisecond}, func(batch []int) []int {
		flushes.Add(1)
		return batch
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// First request flushes on its timer; buffer is then empty for a while.
	if _, err := b.Submit(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	// A fresh request must wait ≈FlushEvery from ITS enqueue, not flush
	// instantly off a stale timer — and must not hang forever either.
	start := time.Now()
	if _, err := b.Submit(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 10*time.Millisecond {
		t.Fatalf("second request answered in %v — flushed off a stale timer, not a fresh %v window", elapsed, 20*time.Millisecond)
	}
	if flushes.Load() != 2 {
		t.Fatalf("flushes = %d, want 2", flushes.Load())
	}
}

// TestBatcherCoalescedFlushAtSizeBound: once MaxBatch entries are
// buffered the flush happens immediately (no waiting out the interval),
// and the burst coalesces into full-size batches.
func TestBatcherCoalescedFlushAtSizeBound(t *testing.T) {
	var sizes sync.Map
	var flushes atomic.Int64
	b, err := New(Config{MaxBatch: 8, FlushEvery: time.Hour}, func(batch []int) []int {
		sizes.Store(flushes.Add(1), len(batch))
		return batch
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			if _, err := b.Submit(context.Background(), v); err != nil {
				t.Errorf("Submit: %v", err)
			}
		}(i)
	}
	wg.Wait()
	// FlushEvery is an hour: the only way these returned is the size bound.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("size-bound flushes took %v", elapsed)
	}
	if got := flushes.Load(); got != 4 {
		t.Fatalf("32 requests at MaxBatch 8 used %d flushes, want 4", got)
	}
	sizes.Range(func(_, v any) bool {
		if v.(int) != 8 {
			t.Fatalf("flush of size %d, want full batches of 8", v.(int))
		}
		return true
	})
}

// TestBatcherFlushesEarlyForTightDeadline: a buffered request whose
// deadline is tighter than FlushEvery is served before that deadline —
// the dispatcher pulls the flush to the tightest member deadline instead
// of letting the entry die in the buffer. FlushEvery is an hour, so the
// only way the request returns at all is the deadline-aware early flush.
func TestBatcherFlushesEarlyForTightDeadline(t *testing.T) {
	b, err := New(Config{MaxBatch: 100, FlushEvery: time.Hour}, func(batch []int) []int {
		return batch
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	got, err := b.Submit(ctx, 7)
	if err != nil || got != 7 {
		t.Fatalf("Submit = %v, %v — deadline-bound flush did not serve the request", got, err)
	}
	if b.ExpiredDrops() != 0 {
		t.Fatalf("expired drops = %d on a flush that should beat the deadline", b.ExpiredDrops())
	}
}

// TestBatcherExpiredDropCounter: entries dead at flush increment the
// expiry counter and answer ErrDeadlineExpired without reaching the
// handler.
func TestBatcherExpiredDropCounter(t *testing.T) {
	var seen atomic.Int64
	release := make(chan struct{})
	first := make(chan struct{}, 1)
	b, err := New(Config{MaxBatch: 8, FlushEvery: time.Hour}, func(batch []int) []int {
		seen.Add(int64(len(batch)))
		select {
		case first <- struct{}{}:
			<-release // only the first flush parks the dispatcher
		default:
		}
		return batch
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Park the dispatcher in a slow first flush (immediate: the request's
	// budget is far tighter than the hour-long interval)...
	go func() { _, _ = b.Submit(withBudget(t, 10*time.Millisecond), 1) }()
	time.Sleep(5 * time.Millisecond)
	// ...buffer a request whose deadline passes while the flush is stuck...
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	go func() { _, _ = b.Submit(ctx, 2) }()
	time.Sleep(40 * time.Millisecond)
	// ...then release the dispatcher: the next flush must drop the dead
	// entry without handing it to the handler.
	close(release)
	deadline := time.Now().Add(time.Second)
	for b.ExpiredDrops() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := b.ExpiredDrops(); got != 1 {
		t.Fatalf("ExpiredDrops = %d, want 1", got)
	}
	if got := seen.Load(); got != 1 {
		t.Fatalf("handler saw %d requests, want only the live one", got)
	}
}

// withBudget returns a context with the given timeout whose cancel is tied
// to test cleanup.
func withBudget(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}
