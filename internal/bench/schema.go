package bench

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"etude/internal/buildinfo"
	"etude/internal/report"
)

// ColKind types one CSV column for validation.
type ColKind int

const (
	// ColString admits any non-empty cell.
	ColString ColKind = iota
	// ColInt admits base-10 integers.
	ColInt
	// ColFloat admits finite floats — NaN and ±Inf are schema violations,
	// not data.
	ColFloat
	// ColBool admits strconv.ParseBool values.
	ColBool
)

// Column is one schema column.
type Column struct {
	Name string
	Kind ColKind
}

// CSVSchema is the machine-checkable contract of one CSV artifact family.
type CSVSchema struct {
	Name string
	// Stamped requires the buildinfo comment line before the header.
	Stamped bool
	Columns []Column
}

func cols(header string, kinds ...ColKind) []Column {
	names := strings.Split(header, ",")
	if len(names) != len(kinds) {
		panic(fmt.Sprintf("bench: schema %q: %d names vs %d kinds", header, len(names), len(kinds)))
	}
	out := make([]Column, len(names))
	for i, n := range names {
		out[i] = Column{Name: n, Kind: kinds[i]}
	}
	return out
}

// SeriesSchema validates report.WriteSeriesCSV output — including the
// partial/coverage_mean columns added for partial-result serving.
func SeriesSchema() CSVSchema {
	return CSVSchema{
		Name:    "series",
		Stamped: true,
		Columns: cols(report.SeriesHeader,
			ColInt, ColInt, ColInt, ColInt, ColInt, ColInt, ColFloat, ColInt,
			ColInt, ColInt, ColInt, ColInt, ColFloat, ColFloat, ColFloat,
			ColString),
	}
}

// MeasurementsSchema validates report.WriteMeasurementsCSV output.
func MeasurementsSchema() CSVSchema {
	return CSVSchema{
		Name:    "measurements",
		Stamped: true,
		Columns: cols(report.MeasurementsHeader,
			ColString, ColString, ColString, ColBool, ColInt, ColFloat, ColInt,
			ColInt, ColInt, ColFloat, ColFloat, ColFloat, ColBool),
	}
}

// MetricsSchema validates report.WriteMetricsCSV output (the per-repeat
// flat metric dump).
func MetricsSchema() CSVSchema {
	return CSVSchema{
		Name:    "metrics",
		Stamped: true,
		Columns: cols(report.MetricsHeader, ColString, ColFloat),
	}
}

// Validate checks a CSV stream against the schema: build stamp (when
// required), exact header, per-row field count, and per-cell parses with
// finite floats. It returns the first violation.
func (s CSVSchema) Validate(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	next := func() (string, bool) {
		if !sc.Scan() {
			return "", false
		}
		line++
		return sc.Text(), true
	}
	first, ok := next()
	if !ok {
		return fmt.Errorf("bench: %s CSV is empty", s.Name)
	}
	if s.Stamped {
		if _, ok := buildinfo.ParseCommentLine(first); !ok {
			return fmt.Errorf("bench: %s CSV line 1 is not a build stamp: %q", s.Name, first)
		}
		first, ok = next()
		if !ok {
			return fmt.Errorf("bench: %s CSV has no header after the stamp", s.Name)
		}
	}
	if want := s.header(); first != want {
		return fmt.Errorf("bench: %s CSV header mismatch:\n got %q\nwant %q", s.Name, first, want)
	}
	rows := 0
	for {
		row, ok := next()
		if !ok {
			break
		}
		if row == "" {
			continue // tolerate a trailing newline
		}
		rows++
		if err := s.validateRow(row); err != nil {
			return fmt.Errorf("bench: %s CSV line %d: %w", s.Name, line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("bench: reading %s CSV: %w", s.Name, err)
	}
	if rows == 0 {
		return fmt.Errorf("bench: %s CSV has a header but no rows", s.Name)
	}
	return nil
}

func (s CSVSchema) header() string {
	names := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		names[i] = c.Name
	}
	return strings.Join(names, ",")
}

func (s CSVSchema) validateRow(row string) error {
	fields := strings.Split(row, ",")
	if len(fields) != len(s.Columns) {
		return fmt.Errorf("has %d fields, schema wants %d: %q", len(fields), len(s.Columns), row)
	}
	for i, f := range fields {
		col := s.Columns[i]
		switch col.Kind {
		case ColString:
			if f == "" {
				return fmt.Errorf("column %s is empty", col.Name)
			}
		case ColInt:
			if _, err := strconv.ParseInt(f, 10, 64); err != nil {
				return fmt.Errorf("column %s: %q is not an integer", col.Name, f)
			}
		case ColFloat:
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return fmt.Errorf("column %s: %q is not a number", col.Name, f)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("column %s: %q is not finite", col.Name, f)
			}
		case ColBool:
			if _, err := strconv.ParseBool(f); err != nil {
				return fmt.Errorf("column %s: %q is not a bool", col.Name, f)
			}
		}
	}
	return nil
}
