package bench

import (
	"strings"
	"testing"
)

func summaryOf(exp string, det bool, metrics map[string]MetricSummary) *Summary {
	return &Summary{Experiment: exp, Deterministic: det, Scale: "smoke", Seeds: []int64{1}, Metrics: metrics}
}

func point(v float64) MetricSummary {
	return MetricSummary{Median: v, Min: v, Max: v, Values: []float64{v}}
}

func TestMetricPolarity(t *testing.T) {
	cases := map[string]Polarity{
		"adaptive/latency/p99_ms":     LowerBetter,
		"static/monthly_usd":          LowerBetter,
		"crash/error_rate":            LowerBetter,
		"rollout/tail_error_rate":     LowerBetter,
		"gru4rec/c100000/reconcile_err": LowerBetter,
		"adaptive/goodput_rps":        HigherBetter,
		"partial/availability":        HigherBetter,
		"partial/post_availability":   HigherBetter,
		"recall/down1/mean_recall":    HigherBetter,
		"sweep/c100000/s8/speedup":    HigherBetter,
		"partial/coverage_mean":       HigherBetter,
		"adaptive/sent":               Neutral,
		"adaptive/latency/count":      Neutral,
	}
	for key, want := range cases {
		if got := MetricPolarity(key); got != want {
			t.Errorf("MetricPolarity(%q) = %v, want %v", key, got, want)
		}
	}
}

func TestGatePassesWithinBand(t *testing.T) {
	base := summaryOf("overload", true, map[string]MetricSummary{
		"adaptive/latency/p99_ms": {Median: 20, IQR: 1, Values: []float64{19, 20, 21}},
	})
	cur := summaryOf("overload", true, map[string]MetricSummary{
		"adaptive/latency/p99_ms": point(21.5), // within 3×IQR
	})
	if f := Gate(base, cur, DefaultGateConfig()); len(f) != 0 {
		t.Fatalf("in-band drift flagged: %v", f)
	}
}

func TestGateFailsOnRegressionAndPassesOnImprovementPolarity(t *testing.T) {
	base := summaryOf("overload", true, map[string]MetricSummary{
		"adaptive/latency/p99_ms": point(20),
		"adaptive/goodput_rps":    point(1000),
	})
	cur := summaryOf("overload", true, map[string]MetricSummary{
		"adaptive/latency/p99_ms": point(40),   // worse (lower-better rose)
		"adaptive/goodput_rps":    point(1500), // better (higher-better rose)
	})
	findings := Gate(base, cur, DefaultGateConfig())
	if len(findings) != 2 {
		t.Fatalf("findings = %v, want 2", findings)
	}
	regs := Regressions(findings)
	if len(regs) != 1 || regs[0].Key != "adaptive/latency/p99_ms" {
		t.Fatalf("regressions = %v", regs)
	}
	// The improvement is reported (baseline refresh hint) but not failing.
	if findings[1].Regression || findings[1].Key != "adaptive/goodput_rps" {
		t.Fatalf("improvement misreported: %+v", findings[1])
	}
}

func TestGateAttributesStage(t *testing.T) {
	base := summaryOf("overload", true, map[string]MetricSummary{
		"adaptive/latency/p99_ms":               point(20),
		"adaptive/stage=encoder-forward/p99_ms": point(5),
		"adaptive/stage=mips-topk/p99_ms":       point(12),
		"static/stage=mips-topk/p99_ms":         point(12), // other cell: must not leak
	})
	cur := summaryOf("overload", true, map[string]MetricSummary{
		"adaptive/latency/p99_ms":               point(45),
		"adaptive/stage=encoder-forward/p99_ms": point(5.1),
		"adaptive/stage=mips-topk/p99_ms":       point(36),
		"static/stage=mips-topk/p99_ms":         point(12),
	})
	findings := Gate(base, cur, DefaultGateConfig())
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want only the end-to-end p99 (stage keys are not gated)", findings)
	}
	f := findings[0]
	if !f.Regression || f.Stage != "mips-topk" {
		t.Fatalf("attribution wrong: %+v", f)
	}
	if !strings.Contains(f.String(), `stage "mips-topk"`) {
		t.Fatalf("failure message does not name the stage: %s", f.String())
	}
}

func TestGateNonDeterministicSkipsTimings(t *testing.T) {
	base := summaryOf("breakdown", false, map[string]MetricSummary{
		"gru4rec/c100000/total/p99_ms":  point(10), // wall-clock: machine-dependent
		"gru4rec/c100000/reconcile_err": point(0.02),
	})
	cur := summaryOf("breakdown", false, map[string]MetricSummary{
		"gru4rec/c100000/total/p99_ms":  point(50), // 5× — a faster/slower host, not a bug
		"gru4rec/c100000/reconcile_err": point(0.5),
	})
	findings := Gate(base, cur, DefaultGateConfig())
	if len(findings) != 1 || findings[0].Key != "gru4rec/c100000/reconcile_err" {
		t.Fatalf("findings = %v, want only the dimensionless reconcile_err", findings)
	}
}

func TestGateReconcileErrHasWideAbsoluteFloor(t *testing.T) {
	base := summaryOf("breakdown", false, map[string]MetricSummary{
		"gru4rec/c100000/reconcile_err": point(0.004),
	})
	// Scheduler jitter on a busy host: absolute, not proportional.
	cur := summaryOf("breakdown", false, map[string]MetricSummary{
		"gru4rec/c100000/reconcile_err": point(0.03),
	})
	if f := Gate(base, cur, DefaultGateConfig()); len(f) != 0 {
		t.Fatalf("wall-clock jitter flagged: %v", f)
	}
	// A real reconciliation break still fails.
	cur.Metrics["gru4rec/c100000/reconcile_err"] = point(0.3)
	findings := Gate(base, cur, DefaultGateConfig())
	if len(findings) != 1 || !findings[0].Regression {
		t.Fatalf("reconciliation break missed: %v", findings)
	}
}

func TestGateIgnoresAddedAndRemovedMetrics(t *testing.T) {
	base := summaryOf("shard", true, map[string]MetricSummary{
		"sweep/c100000/s8/speedup": point(4),
		"retired/metric/p99_ms":    point(1),
	})
	cur := summaryOf("shard", true, map[string]MetricSummary{
		"sweep/c100000/s8/speedup": point(4),
		"brand/new/p99_ms":         point(100),
	})
	if f := Gate(base, cur, DefaultGateConfig()); len(f) != 0 {
		t.Fatalf("schema churn flagged as drift: %v", f)
	}
}

func TestGateZeroBaselineUsesAbsFloor(t *testing.T) {
	base := summaryOf("blackout", true, map[string]MetricSummary{
		"partial/floor_failures": point(0),
	})
	cur := summaryOf("blackout", true, map[string]MetricSummary{
		"partial/floor_failures": point(2),
	})
	findings := Gate(base, cur, DefaultGateConfig())
	if len(findings) != 1 || !findings[0].Regression {
		t.Fatalf("zero-baseline regression missed: %v", findings)
	}
	// But sub-floor noise near zero passes.
	cur.Metrics["partial/floor_failures"] = point(0.004)
	if f := Gate(base, cur, DefaultGateConfig()); len(f) != 0 {
		t.Fatalf("sub-floor noise flagged: %v", f)
	}
}
