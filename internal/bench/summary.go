package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"etude/internal/buildinfo"
)

// MetricSummary aggregates one metric across a grid's repeats.
type MetricSummary struct {
	Median float64 `json:"median"`
	// IQR is the interquartile range across repeats — the experiment's own
	// noise, from which the regression gate derives its band.
	IQR float64 `json:"iqr"`
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Values are the per-repeat observations in seed order, so a future
	// reader can re-derive any statistic.
	Values []float64 `json:"values"`
}

// Summary is the machine-readable result of one experiment across the
// grid's repeats — the content of BENCH_<experiment>.json.
type Summary struct {
	Experiment string `json:"experiment"`
	// Deterministic echoes the registry flag: metrics of deterministic
	// experiments are comparable across machines, wall-clock ones only
	// through their dimensionless keys.
	Deterministic bool   `json:"deterministic"`
	Scale         string `json:"scale"`
	Seeds         []int64 `json:"seeds"`
	// Build identifies what ran where (git SHA, go version, GOMAXPROCS,
	// host), making every trajectory point attributable to a revision.
	Build buildinfo.Info `json:"build"`
	// GeneratedAt is RFC 3339 UTC, informational only — the gate never
	// compares timestamps.
	GeneratedAt string `json:"generated_at,omitempty"`
	Metrics     map[string]MetricSummary `json:"metrics"`
}

// Aggregate folds per-repeat metric maps (in seed order) into a Summary.
// Metrics missing from some repeats are dropped: a key that only
// sometimes appears cannot be compared across runs.
func Aggregate(experiment, scale string, deterministic bool, seeds []int64, repeats []map[string]float64) (*Summary, error) {
	if len(repeats) == 0 {
		return nil, fmt.Errorf("bench: aggregating %s: no repeats", experiment)
	}
	if len(seeds) != len(repeats) {
		return nil, fmt.Errorf("bench: aggregating %s: %d seeds vs %d repeats", experiment, len(seeds), len(repeats))
	}
	s := &Summary{
		Experiment:    experiment,
		Deterministic: deterministic,
		Scale:         scale,
		Seeds:         append([]int64(nil), seeds...),
		Build:         buildinfo.Get(),
		Metrics:       map[string]MetricSummary{},
	}
	for key := range repeats[0] {
		values := make([]float64, 0, len(repeats))
		for _, rep := range repeats {
			v, ok := rep[key]
			if !ok {
				values = nil
				break
			}
			values = append(values, v)
		}
		if values == nil {
			continue
		}
		s.Metrics[key] = summarize(values)
	}
	return s, nil
}

// summarize computes median and IQR (linear-interpolation quantiles).
func summarize(values []float64) MetricSummary {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return MetricSummary{
		Median: quantile(sorted, 0.5),
		IQR:    quantile(sorted, 0.75) - quantile(sorted, 0.25),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Values: values,
	}
}

// quantile interpolates the q-quantile of a sorted slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// SummaryFileName is the committed-baseline naming convention.
func SummaryFileName(experiment string) string {
	return "BENCH_" + experiment + ".json"
}

// WriteSummary writes a summary as indented JSON (stable key order via
// encoding/json's map sorting), ending with a newline so the files diff
// cleanly under git.
func WriteSummary(dir string, s *Summary) (string, error) {
	raw, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return "", fmt.Errorf("bench: marshaling summary %s: %w", s.Experiment, err)
	}
	raw = append(raw, '\n')
	path := filepath.Join(dir, SummaryFileName(s.Experiment))
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return "", fmt.Errorf("bench: writing summary: %w", err)
	}
	return path, nil
}

// LoadSummary reads a BENCH_<experiment>.json file.
func LoadSummary(path string) (*Summary, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: reading summary: %w", err)
	}
	var s Summary
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("bench: parsing summary %s: %w", path, err)
	}
	if s.Experiment == "" || len(s.Metrics) == 0 {
		return nil, fmt.Errorf("bench: summary %s is missing experiment name or metrics", path)
	}
	return &s, nil
}
