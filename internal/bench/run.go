package bench

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"etude/internal/experiments"
	"etude/internal/report"
)

// RunOptions shape one grid execution.
type RunOptions struct {
	Grid Grid
	// OutDir is the parent results directory; each run gets a fresh
	// timestamped subdirectory under it.
	OutDir string
	// Log receives progress lines (nil discards them).
	Log io.Writer
	// now overrides the run timestamp in tests.
	now func() time.Time
}

// RunReport is the outcome of one grid execution.
type RunReport struct {
	// Dir is the timestamped results directory.
	Dir string
	// Summaries holds one aggregated summary per experiment, in grid
	// order, each also written to Dir as BENCH_<experiment>.json.
	Summaries []*Summary
}

// Run executes the grid: every experiment, once per seed, rendering text
// and metric CSVs into the run directory, schema-validating every CSV it
// wrote, and aggregating the repeats into BENCH_<experiment>.json files.
// The first failing experiment, unwritable file or invalid CSV aborts the
// run — a reproduction harness that silently skips is worse than none.
func Run(ctx context.Context, opts RunOptions) (*RunReport, error) {
	if opts.OutDir == "" {
		return nil, fmt.Errorf("bench: OutDir is required")
	}
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		}
	}
	now := time.Now
	if opts.now != nil {
		now = opts.now
	}
	stamp := now().UTC().Format("20060102-150405")
	dir := filepath.Join(opts.OutDir, fmt.Sprintf("%s-%s", stamp, opts.Grid.Name))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("bench: creating results dir: %w", err)
	}
	rep := &RunReport{Dir: dir}
	scale := experiments.Scale(opts.Grid.Scale)
	for _, name := range opts.Grid.Experiments {
		def, ok := experiments.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown experiment %q", name)
		}
		expDir := filepath.Join(dir, name)
		if err := os.MkdirAll(expDir, 0o755); err != nil {
			return nil, fmt.Errorf("bench: creating %s dir: %w", name, err)
		}
		var repeats []map[string]float64
		for i, seed := range opts.Grid.Seeds {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("bench: interrupted: %w", err)
			}
			logf("bench: %s repeat %d/%d (seed %d, scale %s)", name, i+1, len(opts.Grid.Seeds), seed, scale)
			start := now()
			res, err := def.Run(ctx, experiments.Params{Scale: scale, Pods: opts.Grid.Pods, Seed: seed})
			if err != nil {
				return nil, fmt.Errorf("bench: %s (seed %d): %w", name, seed, err)
			}
			logf("bench: %s repeat %d done in %v", name, i+1, now().Sub(start).Round(time.Millisecond))
			m := res.Metrics()
			if err := writeRepeat(expDir, seed, res, m); err != nil {
				return nil, err
			}
			repeats = append(repeats, m)
		}
		sum, err := Aggregate(name, string(scale), def.Deterministic, opts.Grid.Seeds, repeats)
		if err != nil {
			return nil, err
		}
		sum.GeneratedAt = now().UTC().Format(time.RFC3339)
		if _, err := WriteSummary(dir, sum); err != nil {
			return nil, err
		}
		rep.Summaries = append(rep.Summaries, sum)
	}
	logf("bench: wrote %d summaries to %s", len(rep.Summaries), dir)
	return rep, nil
}

// writeRepeat persists one repeat's artifacts: the rendered text view,
// the schema-validated metrics CSV, and (for experiments that carry
// per-tick series) schema-validated series CSVs.
func writeRepeat(expDir string, seed int64, res experiments.Result, m map[string]float64) error {
	base := fmt.Sprintf("seed%d", seed)
	txt := filepath.Join(expDir, base+".txt")
	if err := os.WriteFile(txt, []byte(res.Render()), 0o644); err != nil {
		return fmt.Errorf("bench: writing %s: %w", txt, err)
	}
	var buf bytes.Buffer
	if err := report.WriteMetricsCSV(&buf, m); err != nil {
		return fmt.Errorf("bench: %s seed %d: %w", expDir, seed, err)
	}
	if err := MetricsSchema().Validate(bytes.NewReader(buf.Bytes())); err != nil {
		return fmt.Errorf("bench: %s seed %d failed its own schema: %w", expDir, seed, err)
	}
	csvPath := filepath.Join(expDir, base+".metrics.csv")
	if err := os.WriteFile(csvPath, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("bench: writing %s: %w", csvPath, err)
	}
	if f2, ok := res.(*experiments.Fig2Result); ok {
		for _, series := range []experiments.Fig2Series{f2.Etude, f2.TorchServe} {
			var sbuf bytes.Buffer
			if err := report.WriteSeriesCSV(&sbuf, series.Series); err != nil {
				return fmt.Errorf("bench: series CSV for %s: %w", series.Server, err)
			}
			if err := SeriesSchema().Validate(bytes.NewReader(sbuf.Bytes())); err != nil {
				return fmt.Errorf("bench: %s series failed schema: %w", series.Server, err)
			}
			sPath := filepath.Join(expDir, fmt.Sprintf("%s.%s.series.csv", base, series.Server))
			if err := os.WriteFile(sPath, sbuf.Bytes(), 0o644); err != nil {
				return fmt.Errorf("bench: writing %s: %w", sPath, err)
			}
		}
	}
	return nil
}

// GateDir loads the committed baselines for every summary of a run and
// gates them, returning all findings plus the list of experiments that
// had no baseline (informational — a new experiment cannot regress).
func GateDir(baselineDir string, summaries []*Summary, cfg GateConfig) (findings []Finding, missing []string, err error) {
	for _, cur := range summaries {
		path := filepath.Join(baselineDir, SummaryFileName(cur.Experiment))
		base, lerr := LoadSummary(path)
		if lerr != nil {
			if errors.Is(lerr, os.ErrNotExist) {
				missing = append(missing, cur.Experiment)
				continue
			}
			return nil, nil, lerr
		}
		findings = append(findings, Gate(base, cur, cfg)...)
	}
	return findings, missing, nil
}
