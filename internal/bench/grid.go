// Package bench is the one-command reproduction harness: it runs a
// declarative grid of registry experiments N independent times, validates
// every emitted CSV against a per-experiment schema, aggregates the
// repeats into median+IQR summaries (`BENCH_<experiment>.json`), and
// gates the current tree against committed baselines — failing on
// latency/goodput/availability drift beyond the baseline's own noise
// band, and naming the trace stage that moved. The repeated, seeded,
// schema-validated protocol follows the model-serving measurement
// literature (InferBench; De Rosa et al.): one-off numbers are anecdotes,
// trajectories are evidence.
package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"etude/internal/experiments"
)

// Grid is the declarative experiment-grid spec, loaded from JSON.
type Grid struct {
	// Name labels the grid in logs and the results directory.
	Name string `json:"name"`
	// Scale is the parameterisation: smoke, test or paper.
	Scale string `json:"scale"`
	// Repeats is how many independent runs each experiment gets. Ignored
	// when Seeds is set (each seed is one repeat).
	Repeats int `json:"repeats,omitempty"`
	// Seeds pins the seed of each repeat. Empty derives 1..Repeats. The
	// regression gate relies on baselines and gate runs using the same
	// seed set: with equal seeds, deterministic experiments reproduce
	// bit-identically unless the code changed.
	Seeds []int64 `json:"seeds,omitempty"`
	// Experiments names the registry experiments to run; empty means all.
	Experiments []string `json:"experiments,omitempty"`
	// Smoke restricts an empty Experiments list to the smoke grid.
	Smoke bool `json:"smoke,omitempty"`
	// Pods selects the cluster substrate for experiments that take one.
	Pods string `json:"pods,omitempty"`
}

// LoadGrid reads and validates a grid spec from a JSON file.
func LoadGrid(path string) (Grid, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Grid{}, fmt.Errorf("bench: reading grid: %w", err)
	}
	return ParseGrid(raw)
}

// ParseGrid parses and validates a grid spec.
func ParseGrid(raw []byte) (Grid, error) {
	var g Grid
	if err := json.Unmarshal(raw, &g); err != nil {
		return Grid{}, fmt.Errorf("bench: parsing grid: %w", err)
	}
	if err := g.normalize(); err != nil {
		return Grid{}, err
	}
	return g, nil
}

// normalize fills defaults and validates every field against the registry.
func (g *Grid) normalize() error {
	if g.Name == "" {
		return fmt.Errorf("bench: grid needs a name")
	}
	if g.Scale == "" {
		g.Scale = string(experiments.ScaleTest)
	}
	if _, err := experiments.ParseScale(g.Scale); err != nil {
		return err
	}
	if len(g.Seeds) == 0 {
		if g.Repeats <= 0 {
			g.Repeats = 3
		}
		for i := 1; i <= g.Repeats; i++ {
			g.Seeds = append(g.Seeds, int64(i))
		}
	}
	g.Repeats = len(g.Seeds)
	seen := map[int64]bool{}
	for _, s := range g.Seeds {
		if s <= 0 {
			return fmt.Errorf("bench: seeds must be positive, got %d", s)
		}
		if seen[s] {
			return fmt.Errorf("bench: duplicate seed %d", s)
		}
		seen[s] = true
	}
	if len(g.Experiments) == 0 {
		for _, d := range experiments.Registry() {
			if !g.Smoke || d.Smoke {
				g.Experiments = append(g.Experiments, d.Name)
			}
		}
	}
	dup := map[string]bool{}
	for _, name := range g.Experiments {
		if _, ok := experiments.Lookup(name); !ok {
			return fmt.Errorf("bench: grid names unknown experiment %q", name)
		}
		if dup[name] {
			return fmt.Errorf("bench: grid lists experiment %q twice", name)
		}
		dup[name] = true
	}
	if g.Pods == "" {
		g.Pods = "inproc"
	}
	if g.Pods != "inproc" && g.Pods != "proc" {
		return fmt.Errorf("bench: pods must be inproc or proc, got %q", g.Pods)
	}
	return nil
}
