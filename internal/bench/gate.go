package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Polarity classifies how a metric's value relates to "better".
type Polarity int

const (
	// Neutral metrics (counts, workload sizes) are never gated.
	Neutral Polarity = iota
	// LowerBetter fails the gate when the value rises beyond the band.
	LowerBetter
	// HigherBetter fails the gate when the value falls beyond the band.
	HigherBetter
)

// lowerBetterSuffixes and higherBetterSuffixes classify a metric by the
// last segment of its key. The convention is part of the Result contract
// (see experiments.Result): emit a suffix from these lists and the gate
// picks the metric up automatically.
var lowerBetterSuffixes = []string{
	"_ms", "_usd", "error_rate", "reconcile_err", "p90_ratio_diff",
	"degraded_fraction", "floor_failures", "forced_kills",
	"deadline_expired", "codel_dropped",
	"blast_radius", "stall_ratio", "bad_serve_fraction", "dropped_fraction",
}

var higherBetterSuffixes = []string{
	"availability", "goodput_rps", "goodput_fraction", "recall",
	"speedup", "coverage", "coverage_mean", "saving_fraction",
	"capacity_rps", "identical", "meets_slo", "supported", "feasible",
	"rolled_back", "promoted", "quarantined",
}

// MetricPolarity infers gate polarity from the quantity suffix of a key.
func MetricPolarity(key string) Polarity {
	last := key
	if i := strings.LastIndex(key, "/"); i >= 0 {
		last = key[i+1:]
	}
	for _, s := range lowerBetterSuffixes {
		if strings.HasSuffix(last, s) {
			return LowerBetter
		}
	}
	for _, s := range higherBetterSuffixes {
		if strings.HasSuffix(last, s) {
			return HigherBetter
		}
	}
	return Neutral
}

// dimensionless reports whether a metric is portable across machines:
// rates, fractions, ratios and booleans — anything not measured in
// milliseconds (or another per-host unit). Wall-clock experiments are
// gated only on these.
func dimensionless(key string) bool {
	last := key
	if i := strings.LastIndex(key, "/"); i >= 0 {
		last = key[i+1:]
	}
	for _, unit := range []string{"_ms", "_rps", "_usd"} {
		if strings.HasSuffix(last, unit) {
			return false
		}
	}
	return true
}

// absFloor widens the absolute noise floor for metrics whose run-to-run
// jitter is absolute rather than proportional to their value. The trace
// reconciliation error is computed from wall-clock stage timestamps, so
// on a busy host it wobbles by scheduler noise independent of its
// (near-zero) baseline; a genuine reconciliation break — stages no longer
// summing to the end-to-end latency — shows up as tens of percent.
func absFloor(key string, cfg GateConfig) float64 {
	if strings.HasSuffix(key, "reconcile_err") {
		return math.Max(cfg.AbsFloor, 0.05)
	}
	return cfg.AbsFloor
}

// GateConfig tunes the noise band: band = max(RelFloor·|baseline|,
// IQRMult·IQR, AbsFloor). The IQR term adapts the band to each metric's
// observed repeat variance; the floors keep near-zero and zero-IQR
// (deterministic) metrics from tripping on rounding.
type GateConfig struct {
	RelFloor float64
	IQRMult  float64
	AbsFloor float64
}

// DefaultGateConfig returns the standard band: 10% relative, 3×IQR,
// 0.005 absolute.
func DefaultGateConfig() GateConfig {
	return GateConfig{RelFloor: 0.10, IQRMult: 3, AbsFloor: 0.005}
}

// Finding is one gated metric that moved beyond its noise band.
type Finding struct {
	Experiment string  `json:"experiment"`
	Key        string  `json:"key"`
	Baseline   float64 `json:"baseline"`
	Current    float64 `json:"current"`
	Band       float64 `json:"band"`
	// Regression is true when the move is in the metric's worse direction;
	// false marks an improvement (worth a baseline refresh, not a failure).
	Regression bool `json:"regression"`
	// Stage names the trace stage whose drift best explains the move, when
	// the experiment emits a stage breakdown for the same cell.
	Stage string `json:"stage,omitempty"`
	// StageDetail quantifies the attributed stage's own move.
	StageDetail string `json:"stage_detail,omitempty"`
}

func (f Finding) String() string {
	verdict := "IMPROVED"
	if f.Regression {
		verdict = "REGRESSED"
	}
	msg := fmt.Sprintf("%s: %s %s: baseline %.4g -> current %.4g (band ±%.4g)",
		f.Experiment, f.Key, verdict, f.Baseline, f.Current, f.Band)
	if f.Stage != "" {
		msg += fmt.Sprintf(" — attributed to stage %q (%s)", f.Stage, f.StageDetail)
	}
	return msg
}

// Gate compares a current summary against its baseline and returns every
// metric that moved beyond the noise band, regressions first, each
// annotated with the trace stage that moved with it (when the experiment
// emits stage metrics for that cell). Metrics present on only one side
// are ignored: adding or retiring a metric is a code change, not a
// regression. For non-deterministic (wall-clock) experiments only
// dimensionless metrics are compared — absolute latencies are not
// portable across hosts.
func Gate(baseline, current *Summary, cfg GateConfig) []Finding {
	var findings []Finding
	for key, base := range baseline.Metrics {
		cur, ok := current.Metrics[key]
		if !ok {
			continue
		}
		pol := MetricPolarity(key)
		if pol == Neutral || isStageKey(key) {
			continue // stages are attribution evidence, not gates
		}
		if !baseline.Deterministic && !dimensionless(key) {
			continue
		}
		band := math.Max(cfg.RelFloor*math.Abs(base.Median), math.Max(cfg.IQRMult*base.IQR, absFloor(key, cfg)))
		delta := cur.Median - base.Median
		if math.Abs(delta) <= band {
			continue
		}
		f := Finding{
			Experiment: baseline.Experiment,
			Key:        key,
			Baseline:   base.Median,
			Current:    cur.Median,
			Band:       band,
			Regression: (pol == LowerBetter && delta > 0) || (pol == HigherBetter && delta < 0),
		}
		f.Stage, f.StageDetail = attributeStage(baseline, current, key)
		findings = append(findings, f)
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Regression != findings[j].Regression {
			return findings[i].Regression
		}
		return findings[i].Key < findings[j].Key
	})
	return findings
}

// isStageKey reports whether a key is a trace-stage metric (a segment of
// the form "stage=<name>").
func isStageKey(key string) bool { return strings.Contains(key, "stage=") }

// attributeStage explains a drifted metric by the trace stage whose own
// metric, in the same cell (shared key prefix), moved the most relative
// to baseline. Returns empty strings when the experiment emits no stage
// breakdown for the cell.
func attributeStage(baseline, current *Summary, key string) (stage, detail string) {
	quantity := key
	if i := strings.LastIndex(key, "/"); i >= 0 {
		quantity = key[i+1:]
	}
	// Stage latencies are milliseconds; when the drifted metric is not
	// itself a latency (goodput, availability), diff the stage p99s.
	if !strings.HasSuffix(quantity, "_ms") {
		quantity = "p99_ms"
	}
	bestRel := 0.0
	for sKey, base := range baseline.Metrics {
		marker := strings.Index(sKey, "stage=")
		if marker < 0 || !strings.HasSuffix(sKey, "/"+quantity) {
			continue
		}
		// Same cell: the drifted key starts with everything before the
		// stage= marker ("adaptive/" for "adaptive/stage=mips-topk/p99_ms").
		if !strings.HasPrefix(key, sKey[:marker]) {
			continue
		}
		cur, ok := current.Metrics[sKey]
		if !ok {
			continue
		}
		denom := math.Abs(base.Median)
		if denom == 0 {
			denom = 1
		}
		rel := math.Abs(cur.Median-base.Median) / denom
		if rel > bestRel {
			bestRel = rel
			rest := sKey[marker+len("stage="):]
			stage = rest[:strings.Index(rest, "/")]
			detail = fmt.Sprintf("%s %.4g -> %.4g (%+.0f%%)",
				quantity, base.Median, cur.Median, 100*(cur.Median-base.Median)/denom)
		}
	}
	return stage, detail
}

// Regressions filters a finding list down to the gate-failing subset.
func Regressions(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if f.Regression {
			out = append(out, f)
		}
	}
	return out
}
