package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"etude/internal/buildinfo"
	"etude/internal/core"
	"etude/internal/metrics"
	"etude/internal/report"
)

var stampLine = buildinfo.Get().CommentLine()

func seriesCSV(rows ...string) string {
	return stampLine + "\n" + report.SeriesHeader + "\n" + strings.Join(rows, "\n") + "\n"
}

func TestSeriesSchemaAcceptsWriterOutput(t *testing.T) {
	var buf bytes.Buffer
	err := report.WriteSeriesCSV(&buf, []metrics.TickStats{
		{Tick: 0, Sent: 10, Completed: 9, Errors: 1, Partial: 2, CoverageMean: 0.9375,
			P50: time.Millisecond, P90: 2 * time.Millisecond, P99: 3 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := SeriesSchema().Validate(&buf); err != nil {
		t.Fatalf("writer output rejected: %v", err)
	}
}

func TestMeasurementsSchemaAcceptsWriterOutput(t *testing.T) {
	var buf bytes.Buffer
	err := report.WriteMeasurementsCSV(&buf, []core.Measurement{{
		Experiment: "fig4", Model: "gru4rec", Instance: "cpu", Replicas: 1,
		TargetRate: 100, Sent: 10,
		Latency: metrics.Snapshot{P50: time.Millisecond, P90: time.Millisecond, P99: time.Millisecond},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := MeasurementsSchema().Validate(&buf); err != nil {
		t.Fatalf("writer output rejected: %v", err)
	}
}

func TestMetricsSchemaAcceptsWriterOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := report.WriteMetricsCSV(&buf, map[string]float64{"a/p99_ms": 1.5, "b/goodput_rps": 10}); err != nil {
		t.Fatal(err)
	}
	if err := MetricsSchema().Validate(&buf); err != nil {
		t.Fatalf("writer output rejected: %v", err)
	}
}

func TestSeriesSchemaRejections(t *testing.T) {
	good := "0,10,9,1,0,2,0.9375,0,0,0,0,1,1.000,2.000,3.000,a"
	cases := map[string]string{
		"empty":            "",
		"missing stamp":    report.SeriesHeader + "\n" + good + "\n",
		"mangled stamp":    "# built by hand\n" + report.SeriesHeader + "\n" + good + "\n",
		"header only":      stampLine + "\n" + report.SeriesHeader + "\n",
		"missing column":   stampLine + "\n" + strings.TrimSuffix(report.SeriesHeader, ",tenant") + "\n" + good + "\n",
		"short row":        seriesCSV("0,10,9"),
		"long row":         seriesCSV(good + ",77"),
		"empty tenant":     seriesCSV(strings.TrimSuffix(good, "a")),
		"text in int col":  seriesCSV(strings.Replace(good, "0,10", "0,ten", 1)),
		"NaN latency":      seriesCSV(strings.Replace(good, "3.000", "NaN", 1)),
		"Inf latency":      seriesCSV(strings.Replace(good, "3.000", "+Inf", 1)),
		"NaN coverage":     seriesCSV(strings.Replace(good, "0.9375", "NaN", 1)),
		"float in int col": seriesCSV(strings.Replace(good, "0,10", "0,10.5", 1)),
	}
	for name, csv := range cases {
		if err := SeriesSchema().Validate(strings.NewReader(csv)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, csv)
		}
	}
	// The partial/coverage_mean columns must round-trip cleanly.
	if err := SeriesSchema().Validate(strings.NewReader(seriesCSV(good))); err != nil {
		t.Fatalf("good CSV rejected: %v", err)
	}
}

func TestMetricsSchemaRejections(t *testing.T) {
	head := stampLine + "\n" + report.MetricsHeader + "\n"
	for name, csv := range map[string]string{
		"NaN value":    head + "x/p99_ms,NaN\n",
		"empty metric": head + ",1.5\n",
		"no value":     head + "x/p99_ms\n",
		"not a number": head + "x/p99_ms,fast\n",
	} {
		if err := MetricsSchema().Validate(strings.NewReader(csv)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, csv)
		}
	}
}
