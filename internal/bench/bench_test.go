package bench

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"etude/internal/buildinfo"
	"etude/internal/experiments"
)

func TestParseGridDefaultsAndValidation(t *testing.T) {
	g, err := ParseGrid([]byte(`{"name":"smoke","scale":"smoke","smoke":true,"repeats":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Seeds) != 2 || g.Seeds[0] != 1 || g.Seeds[1] != 2 {
		t.Fatalf("seeds = %v", g.Seeds)
	}
	want := map[string]bool{"breakdown": true, "shard": true, "overload": true, "blackout": true, "tenant": true, "deploy": true}
	if len(g.Experiments) != len(want) {
		t.Fatalf("smoke experiments = %v", g.Experiments)
	}
	for _, e := range g.Experiments {
		if !want[e] {
			t.Fatalf("unexpected smoke experiment %q", e)
		}
	}
	if g.Pods != "inproc" {
		t.Fatalf("pods default = %q", g.Pods)
	}

	for name, raw := range map[string]string{
		"no name":        `{"scale":"test"}`,
		"bad scale":      `{"name":"x","scale":"huge"}`,
		"bad experiment": `{"name":"x","experiments":["warp"]}`,
		"dup experiment": `{"name":"x","experiments":["shard","shard"]}`,
		"dup seed":       `{"name":"x","seeds":[1,1]}`,
		"bad seed":       `{"name":"x","seeds":[0]}`,
		"bad pods":       `{"name":"x","pods":"vm"}`,
		"not json":       `{`,
	} {
		if _, err := ParseGrid([]byte(raw)); err == nil {
			t.Errorf("%s: accepted %s", name, raw)
		}
	}
}

func TestAggregateMedianIQR(t *testing.T) {
	sum, err := Aggregate("x", "test", true, []int64{1, 2, 3, 4},
		[]map[string]float64{
			{"a/p99_ms": 1, "only_first": 9},
			{"a/p99_ms": 2},
			{"a/p99_ms": 3},
			{"a/p99_ms": 100},
		})
	if err != nil {
		t.Fatal(err)
	}
	a := sum.Metrics["a/p99_ms"]
	if a.Median != 2.5 {
		t.Fatalf("median = %v", a.Median)
	}
	// quartiles at positions 0.75 and 2.25: 1.75 and 27.25
	if got := a.IQR; got != 25.5 {
		t.Fatalf("IQR = %v", got)
	}
	if a.Min != 1 || a.Max != 100 || len(a.Values) != 4 {
		t.Fatalf("summary = %+v", a)
	}
	if _, ok := sum.Metrics["only_first"]; ok {
		t.Fatal("metric missing from some repeats must be dropped")
	}
	if sum.Build.GoVersion != buildinfo.Get().GoVersion {
		t.Fatalf("summary missing build identity: %+v", sum.Build)
	}
	if _, err := Aggregate("x", "test", true, []int64{1}, nil); err == nil {
		t.Fatal("empty aggregate accepted")
	}
	if _, err := Aggregate("x", "test", true, []int64{1, 2}, []map[string]float64{{"a": 1}}); err == nil {
		t.Fatal("seed/repeat mismatch accepted")
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sum, err := Aggregate("overload", "smoke", true, []int64{1, 2},
		[]map[string]float64{{"a/p99_ms": 1}, {"a/p99_ms": 2}})
	if err != nil {
		t.Fatal(err)
	}
	path, err := WriteSummary(dir, sum)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_overload.json" {
		t.Fatalf("summary file = %s", path)
	}
	back, err := LoadSummary(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Experiment != "overload" || !back.Deterministic || len(back.Seeds) != 2 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if back.Metrics["a/p99_ms"].Median != 1.5 {
		t.Fatalf("metrics lost: %+v", back.Metrics)
	}
	if _, err := LoadSummary(filepath.Join(dir, "BENCH_nope.json")); err == nil {
		t.Fatal("missing summary loaded")
	}
	bad := filepath.Join(dir, "BENCH_bad.json")
	os.WriteFile(bad, []byte(`{"experiment":""}`), 0o644)
	if _, err := LoadSummary(bad); err == nil {
		t.Fatal("empty summary accepted")
	}
}

// TestRunGridEndToEnd drives the full harness over the cheapest
// deterministic experiment: runs repeats, validates the emitted CSVs,
// writes BENCH_*.json, and gates the run against its own output (which
// must pass — nothing changed).
func TestRunGridEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment grid")
	}
	out := t.TempDir()
	grid, err := ParseGrid([]byte(`{"name":"t","scale":"smoke","seeds":[1,2],"experiments":["issues"]}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), RunOptions{Grid: grid, OutDir: out})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Summaries) != 1 || rep.Summaries[0].Experiment != "issues" {
		t.Fatalf("summaries = %+v", rep.Summaries)
	}
	// The timestamped directory holds per-seed artifacts + the summary.
	for _, rel := range []string{
		"issues/seed1.txt", "issues/seed1.metrics.csv",
		"issues/seed2.txt", "issues/seed2.metrics.csv",
		"BENCH_issues.json",
	} {
		if _, err := os.Stat(filepath.Join(rep.Dir, rel)); err != nil {
			t.Fatalf("missing artifact %s: %v", rel, err)
		}
	}
	raw, err := os.ReadFile(filepath.Join(rep.Dir, "issues", "seed1.metrics.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := MetricsSchema().Validate(strings.NewReader(string(raw))); err != nil {
		t.Fatalf("emitted CSV fails schema: %v", err)
	}
	// Same tree, same seeds → gating the run against itself passes.
	findings, missing, err := GateDir(rep.Dir, rep.Summaries, DefaultGateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 || len(missing) != 0 {
		t.Fatalf("self-gate failed: findings=%v missing=%v", findings, missing)
	}
	// A baseline dir without the summary reports it as missing, not fatal.
	findings, missing, err = GateDir(t.TempDir(), rep.Summaries, DefaultGateConfig())
	if err != nil || len(findings) != 0 {
		t.Fatalf("missing baseline mishandled: %v %v", findings, err)
	}
	if len(missing) != 1 || missing[0] != "issues" {
		t.Fatalf("missing = %v", missing)
	}
}

// TestGateCatchesInjectedStageRegression is the guard-the-guard test the
// issue demands: inflate one stage's simulated service time, re-run the
// overload experiment, and assert the gate fails AND names that stage.
func TestGateCatchesInjectedStageRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full overload sims")
	}
	seeds := []int64{1}
	run := func(inflate map[string]float64) map[string]float64 {
		cfg := experiments.DefaultOverloadCmpConfig()
		cfg.Duration = 30 * time.Second // ScaleSmoke-equivalent, virtual time
		cfg.Inflate = inflate
		res, err := experiments.OverloadComparison(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics()
	}
	baseline, err := Aggregate("overload", "smoke", true, seeds, []map[string]float64{run(nil)})
	if err != nil {
		t.Fatal(err)
	}
	current, err := Aggregate("overload", "smoke", true, seeds, []map[string]float64{
		run(map[string]float64{"mips-topk": 3}),
	})
	if err != nil {
		t.Fatal(err)
	}
	regs := Regressions(Gate(baseline, current, DefaultGateConfig()))
	if len(regs) == 0 {
		t.Fatal("gate passed an injected 3× mips-topk regression")
	}
	var attributed bool
	for _, f := range regs {
		if f.Stage == "mips-topk" {
			attributed = true
		}
		if f.Stage == "encoder-forward" {
			t.Fatalf("regression misattributed to encoder-forward: %s", f.String())
		}
	}
	if !attributed {
		msgs := make([]string, len(regs))
		for i, f := range regs {
			msgs[i] = f.String()
		}
		t.Fatalf("no finding names mips-topk:\n%s", strings.Join(msgs, "\n"))
	}
	// The identical tree self-gates clean (deterministic, same seed).
	if f := Gate(baseline, baseline, DefaultGateConfig()); len(f) != 0 {
		t.Fatalf("self-gate found drift: %v", f)
	}
}
