package model

import (
	"testing"
)

// TestSaveLoadWeightsAllModels: serialise every model's weights, load them
// into a model built from a DIFFERENT seed, and verify the loaded model now
// recommends exactly like the original — true weight transport, not seed
// regeneration.
func TestSaveLoadWeightsAllModels(t *testing.T) {
	session := []int64{3, 17, 42, 9}
	for _, name := range Names() {
		original, err := New(name, Config{CatalogSize: 150, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		data, err := SaveWeights(original)
		if err != nil {
			t.Fatalf("%s: SaveWeights: %v", name, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s: empty archive", name)
		}
		other, err := New(name, Config{CatalogSize: 150, Seed: 999})
		if err != nil {
			t.Fatal(err)
		}
		// Sanity: different seeds disagree before loading.
		before := other.Recommend(session)
		want := original.Recommend(session)
		if err := LoadWeights(other, data); err != nil {
			t.Fatalf("%s: LoadWeights: %v", name, err)
		}
		after := other.Recommend(session)
		for i := range want {
			if after[i] != want[i] {
				t.Fatalf("%s: loaded model differs at %d: %+v vs %+v", name, i, after[i], want[i])
			}
		}
		_ = before
	}
}

func TestParamsNonEmptyAndUnique(t *testing.T) {
	for _, name := range Names() {
		m, _ := New(name, Config{CatalogSize: 50, Seed: 1})
		src, ok := m.(ParamSource)
		if !ok {
			t.Fatalf("%s: no ParamSource", name)
		}
		params := src.Params()
		if len(params) < 2 {
			t.Fatalf("%s: only %d parameters", name, len(params))
		}
		seen := map[*float32]bool{}
		for i, p := range params {
			if p == nil || p.Len() == 0 {
				t.Fatalf("%s: parameter %d degenerate", name, i)
			}
			head := &p.Data()[0]
			if seen[head] {
				t.Fatalf("%s: parameter %d listed twice", name, i)
			}
			seen[head] = true
		}
	}
}

func TestLoadWeightsShapeMismatch(t *testing.T) {
	a, _ := New("gru4rec", Config{CatalogSize: 100, Seed: 1})
	b, _ := New("gru4rec", Config{CatalogSize: 200, Seed: 1})
	data, err := SaveWeights(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadWeights(b, data); err == nil {
		t.Fatalf("mismatched catalog size accepted")
	}
	// Wrong architecture entirely.
	c, _ := New("stamp", Config{CatalogSize: 100, Seed: 1})
	if err := LoadWeights(c, data); err == nil {
		t.Fatalf("cross-architecture load accepted")
	}
}

func TestLoadWeightsCorruptArchives(t *testing.T) {
	m, _ := New("core", Config{CatalogSize: 50, Seed: 1})
	good, _ := SaveWeights(m)
	cases := map[string][]byte{
		"empty":     {},
		"short":     good[:8],
		"bad magic": append([]byte{1, 2, 3, 4}, good[4:]...),
		"truncated": good[:len(good)-5],
		"trailing":  append(append([]byte{}, good...), 0, 0, 0, 0),
	}
	for label, data := range cases {
		fresh, _ := New("core", Config{CatalogSize: 50, Seed: 1})
		if err := LoadWeights(fresh, data); err == nil {
			t.Errorf("%s archive accepted", label)
		}
	}
}

func TestManifestWithWeightsKeyRoundTrip(t *testing.T) {
	m := Manifest{Model: "core", Config: Config{CatalogSize: 10}, WeightsKey: "weights/core.bin"}
	data, err := MarshalManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.WeightsKey != m.WeightsKey {
		t.Fatalf("weights key lost: %+v", got)
	}
}
