package model

import (
	"etude/internal/nn"
	"etude/internal/tensor"
	"etude/internal/topk"
)

func init() {
	Register("narm", func(cfg Config) (Model, error) { return NewNARM(cfg) })
}

// NARM (Li et al. 2017) is a neural attentive session-based model: a GRU
// encoder produces hidden states, a global encoder takes the last state, a
// local encoder computes an attention-weighted sum of all states with the
// last state as query, and the concatenation is projected back into the
// item-embedding space by a bilinear decoder.
type NARM struct {
	base
	gru  *nn.GRU
	attn *nn.AdditiveAttention
	bili *nn.Linear // [2d] → [d] bilinear decoder B
}

// NewNARM builds a NARM model.
func NewNARM(cfg Config) (*NARM, error) {
	in := nn.NewInitializer(cfg.Seed)
	b, err := newBase(cfg, in)
	if err != nil {
		return nil, err
	}
	d := b.cfg.Dim
	return &NARM{
		base: b,
		gru:  nn.NewGRU(in, d, d, 1),
		attn: nn.NewAdditiveAttention(in, d),
		bili: nn.NewLinearNoBias(in, 2*d, d),
	}, nil
}

// Name implements Model.
func (m *NARM) Name() string { return "narm" }

// Recommend implements Model.
func (m *NARM) Recommend(session []int64) []topk.Result {
	return m.score(m.encode(session))
}

// Encode implements model.Encoder: it returns the session representation
// the MIPS stage scores against the catalog.
func (m *NARM) Encode(session []int64) *tensor.Tensor {
	return m.encode(session)
}

func (m *NARM) encode(session []int64) *tensor.Tensor {
	session, x := m.prepare(session)
	if x == nil {
		return m.zeroRep()
	}
	return m.encodeFrom(session, x)
}

// encodeFrom runs the architecture forward pass on the prepared embeddings
// (the encoder-forward stage of the trace decomposition).
func (m *NARM) encodeFrom(session []int64, x *tensor.Tensor) *tensor.Tensor {
	states := m.gru.Forward(x)
	last := states.Row(len(session) - 1)

	// Global encoder: the final hidden state.
	global := last
	// Local encoder: additive attention over all states, queried by last.
	w := m.attn.Weights(last, states)
	local := nn.Apply(w, states)

	return m.bili.ForwardVec(tensor.Concat(global.Clone(), local))
}

// CompiledRecommend implements JITCompilable: the eager encoder is wrapped
// with a pre-transposed decoder and a reusable score buffer.
func (m *NARM) CompiledRecommend() func(session []int64) []topk.Result {
	scorer := m.compiledScorer()
	return func(session []int64) []topk.Result {
		return scorer(m.encode(session))
	}
}

// Cost implements Model: the GRU dominates (12·d² per step), attention adds
// ~6·d² per step, the decoder 4·d².
func (m *NARM) Cost(sessionLen int) Cost {
	d := float64(m.cfg.Dim)
	l := float64(clampLen(sessionLen, m.cfg.MaxSessionLen))
	c := mipsCost(m.cfg.CatalogSize, m.cfg.Dim, m.cfg.TopK)
	c.EncoderFLOPs = l*12*d*d + l*6*d*d + 4*d*d
	c.KernelLaunches = int(l)*3 + 4
	return c
}
