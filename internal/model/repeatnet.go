package model

import (
	"etude/internal/nn"
	"etude/internal/tensor"
	"etude/internal/topk"
)

func init() {
	Register("repeatnet", func(cfg Config) (Model, error) { return NewRepeatNet(cfg) })
}

// RepeatNet (Ren et al. 2019) uses an encoder-decoder with a repeat-explore
// mechanism: a GRU encodes the session; a discriminator predicts the
// probability of repeating a previously clicked item vs exploring a new one;
// a repeat decoder scores only the session's items and an explore decoder
// scores the full catalog; the final distribution mixes both.
//
// The paper found that the RecBole implementation "contains expensive tensor
// multiplications of very sparse matrices which are implemented with dense
// operations and representations". With Config.Faithful=true we reproduce
// that behaviour: the repeat distribution is scattered into a dense
// C-dimensional vector via a dense [C × L] one-hot matrix product, adding
// O(C·L) work and O(C·L) temporary memory per inference. With Faithful=false
// the fixed variant scatters sparsely in O(L).
type RepeatNet struct {
	base
	gru        *nn.GRU
	repAttn    *nn.AdditiveAttention // repeat-mode attention
	expAttn    *nn.AdditiveAttention // explore-mode attention
	gate       *nn.Linear            // repeat/explore discriminator, 2d → 2
	exploreOut *nn.Linear            // explore decoder projection d → d
}

// NewRepeatNet builds a RepeatNet model.
func NewRepeatNet(cfg Config) (*RepeatNet, error) {
	in := nn.NewInitializer(cfg.Seed)
	b, err := newBase(cfg, in)
	if err != nil {
		return nil, err
	}
	d := b.cfg.Dim
	return &RepeatNet{
		base:       b,
		gru:        nn.NewGRU(in, d, d, 1),
		repAttn:    nn.NewAdditiveAttention(in, d),
		expAttn:    nn.NewAdditiveAttention(in, d),
		gate:       nn.NewLinear(in, 2*d, 2),
		exploreOut: nn.NewLinear(in, d, d),
	}, nil
}

// Name implements Model.
func (m *RepeatNet) Name() string { return "repeatnet" }

// Recommend implements Model. Unlike the pure-MIPS models, RepeatNet
// combines a full-catalog explore distribution with a session-local repeat
// distribution, so scoring happens inside the model.
func (m *RepeatNet) Recommend(session []int64) []topk.Result {
	session, x := m.prepare(session)
	if x == nil {
		return m.score(m.zeroRep())
	}
	states := m.gru.Forward(x)
	last := states.Row(len(session) - 1)

	// Repeat/explore discriminator from [attended; last].
	gw := m.repAttn.Weights(last, states)
	gw.Softmax()
	attended := nn.Apply(gw, states)
	gateLogits := m.gate.ForwardVec(tensor.Concat(attended, last.Clone()))
	gateLogits.Softmax()
	pRepeat, pExplore := gateLogits.At(0), gateLogits.At(1)

	// Repeat decoder: attention distribution over the session's own items.
	repScores := m.repAttn.Weights(last, x)
	repScores.Softmax()

	// Explore decoder: full-catalog scores from the projected session rep.
	ew := m.expAttn.Weights(last, states)
	ew.Softmax()
	exploreRep := m.exploreOut.ForwardVec(nn.Apply(ew, states))
	exploreScores := tensor.MatVec(m.emb.Weight, exploreRep)
	exploreScores.Softmax()
	exploreScores.ScaleInPlace(pExplore)

	if m.cfg.Faithful {
		m.scatterDense(exploreScores, session, repScores, pRepeat)
	} else {
		scatterSparse(exploreScores, session, repScores, pRepeat)
	}
	return topk.SelectFromScores(exploreScores.Data(), m.cfg.TopK)
}

// scatterSparse adds the repeat distribution onto the catalog scores in
// O(L): the fixed implementation.
func scatterSparse(catalog *tensor.Tensor, session []int64, repScores *tensor.Tensor, pRepeat float32) {
	for t, id := range session {
		catalog.Data()[id] += pRepeat * repScores.Data()[t]
	}
}

// scatterDense reproduces the RecBole inefficiency: it materialises a dense
// [C, L] one-hot matrix mapping session positions to catalog rows and
// performs a dense matrix-vector product — O(C·L) work and memory traffic
// for what is logically an O(L) sparse scatter.
func (m *RepeatNet) scatterDense(catalog *tensor.Tensor, session []int64, repScores *tensor.Tensor, pRepeat float32) {
	c := m.cfg.CatalogSize
	l := len(session)
	oneHot := tensor.New(c, l)
	for t, id := range session {
		oneHot.Set(1, int(id), t)
	}
	dense := tensor.MatVec(oneHot, repScores) // [C], dense product over sparse data
	dense.ScaleInPlace(pRepeat)
	catalog.AddInPlace(dense)
}

// CompiledRecommend implements JITCompilable; the repeat/explore merge is
// kept but buffers are reused.
func (m *RepeatNet) CompiledRecommend() func(session []int64) []topk.Result {
	return func(session []int64) []topk.Result {
		return m.Recommend(session)
	}
}

// Cost implements Model. The explore decoder performs the usual MIPS plus a
// full-catalog softmax; the faithful variant adds the dense scatter's
// 2·C·L FLOPs and C·L·4 bytes of traffic.
func (m *RepeatNet) Cost(sessionLen int) Cost {
	d := float64(m.cfg.Dim)
	l := float64(clampLen(sessionLen, m.cfg.MaxSessionLen))
	cat := float64(m.cfg.CatalogSize)
	c := mipsCost(m.cfg.CatalogSize, m.cfg.Dim, m.cfg.TopK)
	c.EncoderFLOPs = l*12*d*d + 3*l*6*d*d + 2*d*d + 3*cat // GRU + three attentions + softmax over C
	c.KernelLaunches = int(l)*2 + 12
	if m.cfg.Faithful {
		c.DenseOverheadFLOPs = 2 * cat * l
		c.PerRequestBytes += cat * l * 4 * 2 // build + read the dense one-hot
	}
	return c
}
