package model

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Weight archive format (all little-endian):
//
//	magic   uint32  0x45545544 ("ETUD")
//	version uint32  1
//	count   uint32  number of tensors
//	per tensor:
//	  dims  uint32, shape dims × uint32, data len(prod) × float32
//
// The archive carries no names: tensors are written and read in the
// deterministic Params() order, which the manifest's model name and config
// pin down. This mirrors how the paper ships serialised TorchScript
// archives to buckets for the inference server to deploy.
const (
	weightsMagic   = 0x45545544
	weightsVersion = 1
)

// Typed decode errors. Every LoadWeights failure wraps ErrWeightsCorrupt
// plus one of the specific sentinels below, so deployment code can both ask
// the broad question ("is this artifact bad?" — quarantine it) and report
// the narrow one ("how?"). None of these paths panic, and none return nil
// after a partial tensor copy.
var (
	// ErrWeightsCorrupt is the class of every archive-decode failure.
	ErrWeightsCorrupt = errors.New("model: corrupt weights archive")
	// ErrWeightsMagic marks an archive that does not start with "ETUD".
	ErrWeightsMagic = fmt.Errorf("%w: bad magic", ErrWeightsCorrupt)
	// ErrWeightsVersion marks an unsupported archive format version.
	ErrWeightsVersion = fmt.Errorf("%w: unsupported version", ErrWeightsCorrupt)
	// ErrWeightsTruncated marks an archive that ended mid-field.
	ErrWeightsTruncated = fmt.Errorf("%w: truncated", ErrWeightsCorrupt)
	// ErrWeightsCount marks a tensor count that disagrees with the model.
	ErrWeightsCount = fmt.Errorf("%w: tensor count mismatch", ErrWeightsCorrupt)
	// ErrWeightsShape marks a tensor whose rank or shape disagrees with the
	// model the archive is being loaded into.
	ErrWeightsShape = fmt.Errorf("%w: tensor shape mismatch", ErrWeightsCorrupt)
	// ErrWeightsTrailing marks bytes left over after the last tensor.
	ErrWeightsTrailing = fmt.Errorf("%w: trailing bytes", ErrWeightsCorrupt)
)

// truncated maps an io read error onto the truncation sentinel: a reader
// hitting EOF mid-field means the archive stopped early.
func truncated(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return ErrWeightsTruncated
	}
	return fmt.Errorf("%w: %v", ErrWeightsCorrupt, err)
}

// SaveWeights serialises a model's parameters.
func SaveWeights(m Model) ([]byte, error) {
	src, ok := m.(ParamSource)
	if !ok {
		return nil, fmt.Errorf("model: %s does not expose parameters", m.Name())
	}
	params := src.Params()
	var buf bytes.Buffer
	w := func(v any) {
		// bytes.Buffer writes cannot fail.
		_ = binary.Write(&buf, binary.LittleEndian, v)
	}
	w(uint32(weightsMagic))
	w(uint32(weightsVersion))
	w(uint32(len(params)))
	for _, p := range params {
		shape := p.Shape()
		w(uint32(len(shape)))
		for _, d := range shape {
			w(uint32(d))
		}
		w(p.Data())
	}
	return buf.Bytes(), nil
}

// LoadWeights restores serialised parameters into a model of the same
// architecture and configuration. Any shape mismatch is an error and leaves
// already-copied tensors modified — construct a fresh model on failure.
func LoadWeights(m Model, data []byte) error {
	src, ok := m.(ParamSource)
	if !ok {
		return fmt.Errorf("model: %s does not expose parameters", m.Name())
	}
	r := bytes.NewReader(data)
	var magic, version, count uint32
	if err := readU32s(r, &magic, &version, &count); err != nil {
		return fmt.Errorf("weights header: %w", truncated(err))
	}
	if magic != weightsMagic {
		return fmt.Errorf("%w %#x", ErrWeightsMagic, magic)
	}
	if version != weightsVersion {
		return fmt.Errorf("%w %d", ErrWeightsVersion, version)
	}
	params := src.Params()
	if int(count) != len(params) {
		return fmt.Errorf("%w: archive has %d tensors, model has %d", ErrWeightsCount, count, len(params))
	}
	for i, p := range params {
		var dims uint32
		if err := readU32s(r, &dims); err != nil {
			return fmt.Errorf("tensor %d dims: %w", i, truncated(err))
		}
		if dims == 0 || dims > 8 {
			return fmt.Errorf("%w: tensor %d has implausible rank %d", ErrWeightsShape, i, dims)
		}
		shape := make([]int, dims)
		for j := range shape {
			var d uint32
			if err := readU32s(r, &d); err != nil {
				return fmt.Errorf("tensor %d shape: %w", i, truncated(err))
			}
			if d > math.MaxInt32 {
				return fmt.Errorf("%w: tensor %d dimension overflow", ErrWeightsShape, i)
			}
			shape[j] = int(d)
		}
		want := p.Shape()
		if !shapesEqual(shape, want) {
			return fmt.Errorf("%w: tensor %d shape %v, model expects %v", ErrWeightsShape, i, shape, want)
		}
		if err := binary.Read(r, binary.LittleEndian, p.Data()); err != nil {
			return fmt.Errorf("tensor %d data: %w", i, truncated(err))
		}
	}
	if r.Len() != 0 {
		return fmt.Errorf("%w: %d bytes after the last tensor", ErrWeightsTrailing, r.Len())
	}
	return nil
}

func readU32s(r io.Reader, out ...*uint32) error {
	for _, o := range out {
		if err := binary.Read(r, binary.LittleEndian, o); err != nil {
			return err
		}
	}
	return nil
}

func shapesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
