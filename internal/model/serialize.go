package model

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Weight archive format (all little-endian):
//
//	magic   uint32  0x45545544 ("ETUD")
//	version uint32  1
//	count   uint32  number of tensors
//	per tensor:
//	  dims  uint32, shape dims × uint32, data len(prod) × float32
//
// The archive carries no names: tensors are written and read in the
// deterministic Params() order, which the manifest's model name and config
// pin down. This mirrors how the paper ships serialised TorchScript
// archives to buckets for the inference server to deploy.
const (
	weightsMagic   = 0x45545544
	weightsVersion = 1
)

// SaveWeights serialises a model's parameters.
func SaveWeights(m Model) ([]byte, error) {
	src, ok := m.(ParamSource)
	if !ok {
		return nil, fmt.Errorf("model: %s does not expose parameters", m.Name())
	}
	params := src.Params()
	var buf bytes.Buffer
	w := func(v any) {
		// bytes.Buffer writes cannot fail.
		_ = binary.Write(&buf, binary.LittleEndian, v)
	}
	w(uint32(weightsMagic))
	w(uint32(weightsVersion))
	w(uint32(len(params)))
	for _, p := range params {
		shape := p.Shape()
		w(uint32(len(shape)))
		for _, d := range shape {
			w(uint32(d))
		}
		w(p.Data())
	}
	return buf.Bytes(), nil
}

// LoadWeights restores serialised parameters into a model of the same
// architecture and configuration. Any shape mismatch is an error and leaves
// already-copied tensors modified — construct a fresh model on failure.
func LoadWeights(m Model, data []byte) error {
	src, ok := m.(ParamSource)
	if !ok {
		return fmt.Errorf("model: %s does not expose parameters", m.Name())
	}
	r := bytes.NewReader(data)
	var magic, version, count uint32
	if err := readU32s(r, &magic, &version, &count); err != nil {
		return fmt.Errorf("model: weights header: %w", err)
	}
	if magic != weightsMagic {
		return fmt.Errorf("model: bad weights magic %#x", magic)
	}
	if version != weightsVersion {
		return fmt.Errorf("model: unsupported weights version %d", version)
	}
	params := src.Params()
	if int(count) != len(params) {
		return fmt.Errorf("model: archive has %d tensors, model has %d", count, len(params))
	}
	for i, p := range params {
		var dims uint32
		if err := readU32s(r, &dims); err != nil {
			return fmt.Errorf("model: tensor %d dims: %w", i, err)
		}
		if dims == 0 || dims > 8 {
			return fmt.Errorf("model: tensor %d has implausible rank %d", i, dims)
		}
		shape := make([]int, dims)
		elems := 1
		for j := range shape {
			var d uint32
			if err := readU32s(r, &d); err != nil {
				return fmt.Errorf("model: tensor %d shape: %w", i, err)
			}
			if d > math.MaxInt32 {
				return fmt.Errorf("model: tensor %d dimension overflow", i)
			}
			shape[j] = int(d)
			elems *= int(d)
		}
		want := p.Shape()
		if !shapesEqual(shape, want) {
			return fmt.Errorf("model: tensor %d shape %v, model expects %v", i, shape, want)
		}
		if err := binary.Read(r, binary.LittleEndian, p.Data()); err != nil {
			return fmt.Errorf("model: tensor %d data: %w", i, err)
		}
		_ = elems
	}
	if r.Len() != 0 {
		return fmt.Errorf("model: %d trailing bytes in weights archive", r.Len())
	}
	return nil
}

func readU32s(r io.Reader, out ...*uint32) error {
	for _, o := range out {
		if err := binary.Read(r, binary.LittleEndian, o); err != nil {
			return err
		}
	}
	return nil
}

func shapesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
