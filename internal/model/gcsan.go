package model

import (
	"etude/internal/nn"
	"etude/internal/tensor"
	"etude/internal/topk"
)

func init() {
	Register("gcsan", func(cfg Config) (Model, error) { return NewGCSAN(cfg) })
}

// GCSAN (Xu et al. 2019) combines SR-GNN-style gated graph propagation with
// stacked self-attention over the propagated node states; the final session
// representation interpolates the self-attention output at the last position
// with the last click's GGNN state.
//
// Like SR-GNN, the RecBole implementation performs NumPy graph preprocessing
// inside the inference function; Config.Faithful=true attributes the
// resulting host↔device round trips in the cost model.
type GCSAN struct {
	base
	ggnn   *nn.GGNNCell
	blocks []*transformerBlock
	weight float32 // interpolation between SAN output and GGNN state
	steps  int
}

const gcsanLayers = 1

// NewGCSAN builds a GC-SAN model with one GGNN step and one self-attention
// layer.
func NewGCSAN(cfg Config) (*GCSAN, error) {
	in := nn.NewInitializer(cfg.Seed)
	b, err := newBase(cfg, in)
	if err != nil {
		return nil, err
	}
	d := b.cfg.Dim
	blocks := make([]*transformerBlock, gcsanLayers)
	for i := range blocks {
		blocks[i] = newTransformerBlock(in, d, 2)
	}
	return &GCSAN{
		base:   b,
		ggnn:   nn.NewGGNNCell(in, d),
		blocks: blocks,
		weight: 0.6,
		steps:  1,
	}, nil
}

// Name implements Model.
func (m *GCSAN) Name() string { return "gcsan" }

// Recommend implements Model.
func (m *GCSAN) Recommend(session []int64) []topk.Result {
	return m.score(m.encode(session))
}

// Encode implements model.Encoder: it returns the session representation
// the MIPS stage scores against the catalog.
func (m *GCSAN) Encode(session []int64) *tensor.Tensor {
	return m.encode(session)
}

func (m *GCSAN) encode(session []int64) *tensor.Tensor {
	session = truncate(session, m.cfg.MaxSessionLen)
	if len(session) == 0 {
		return m.zeroRep()
	}
	g := nn.BuildSessionGraph(session)
	h := m.emb.Lookup(g.Nodes)
	h = m.ggnn.Propagate(g, h, m.steps)

	// Re-expand node states to the session sequence, then self-attend.
	d := m.cfg.Dim
	seq := tensor.New(len(session), d)
	for t, a := range g.Alias {
		copy(seq.Data()[t*d:(t+1)*d], h.Row(a).Data())
	}
	san := seq
	for _, blk := range m.blocks {
		san = blk.forward(san, true)
	}
	// Interpolate the SAN output at the last position with the GGNN state
	// of the last click.
	last := san.Row(len(session) - 1).Clone()
	last.ScaleInPlace(m.weight)
	ggnnLast := seq.Row(len(session) - 1).Clone()
	ggnnLast.ScaleInPlace(1 - m.weight)
	last.AddInPlace(ggnnLast)
	return last
}

// CompiledRecommend implements JITCompilable (host transfers remain, as in
// the paper; they are modelled in Cost).
func (m *GCSAN) CompiledRecommend() func(session []int64) []topk.Result {
	scorer := m.compiledScorer()
	return func(session []int64) []topk.Result {
		return scorer(m.encode(session))
	}
}

// Cost implements Model: GGNN propagation plus transformer layers, with
// host transfers in the faithful variant.
func (m *GCSAN) Cost(sessionLen int) Cost {
	d := float64(m.cfg.Dim)
	l := float64(clampLen(sessionLen, m.cfg.MaxSessionLen))
	c := mipsCost(m.cfg.CatalogSize, m.cfg.Dim, m.cfg.TopK)
	ggnn := float64(m.steps) * l * (8*d*d + 24*d*d)
	san := float64(gcsanLayers) * (l*(8*d*d+16*d*d) + 4*l*l*d)
	c.EncoderFLOPs = ggnn + san
	c.KernelLaunches = m.steps*int(l)*3 + gcsanLayers*10 + 4
	if m.cfg.Faithful {
		c.HostTransfers = 4
	}
	return c
}
