package model

import (
	"etude/internal/nn"
	"etude/internal/tensor"
	"etude/internal/topk"
)

// base bundles the state every SBR model shares: the resolved config, the
// item embedding table (whose rows double as the catalog representation for
// the final MIPS stage), and the top-k scorer.
type base struct {
	cfg Config
	emb *nn.Embedding
}

func newBase(cfg Config, in *nn.Initializer) (base, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return base{}, err
	}
	items := cfg.CatalogSize
	if cfg.costOnly {
		// Cost estimation never touches weights; keep the table tiny. Cost
		// formulas read cfg.CatalogSize, which stays at the requested C.
		items = 1
	}
	return base{cfg: cfg, emb: nn.NewEmbedding(in, items, cfg.Dim)}, nil
}

func (b *base) Config() Config { return b.cfg }

// ItemEmbeddings returns the [C, d] catalog representation scored by the
// MIPS stage; part of the Encoder interface.
func (b *base) ItemEmbeddings() *tensor.Tensor { return b.emb.Weight }

// prepare truncates the session and looks up item embeddings. A nil tensor
// is returned for empty sessions; callers then fall back to zeroRep.
func (b *base) prepare(session []int64) ([]int64, *tensor.Tensor) {
	session = truncate(session, b.cfg.MaxSessionLen)
	if len(session) == 0 {
		return nil, nil
	}
	return session, b.emb.Lookup(session)
}

// zeroRep is the session representation used for empty sessions: it scores
// every item identically, yielding a deterministic lowest-id top-k. Serving
// code never panics on degenerate input.
func (b *base) zeroRep() *tensor.Tensor {
	return tensor.New(b.cfg.Dim)
}

// score runs the maximum-inner-product search of rep against the catalog.
func (b *base) score(rep *tensor.Tensor) []topk.Result {
	return topk.TopK(b.emb.Weight, rep, b.cfg.TopK)
}

// compiledScorer returns a scoring closure that reuses a single score buffer
// across calls — the main memory-allocation win of the JIT path.
func (b *base) compiledScorer() func(rep *tensor.Tensor) []topk.Result {
	buf := tensor.New(b.cfg.CatalogSize)
	return func(rep *tensor.Tensor) []topk.Result {
		tensor.MatVecInto(buf, b.emb.Weight, rep)
		return topk.SelectFromScores(buf.Data(), b.cfg.TopK)
	}
}

// positionTable returns a learned positional embedding table of maxLen rows.
func positionTable(in *nn.Initializer, maxLen, dim int) *tensor.Tensor {
	return in.Xavier(maxLen, dim)
}

// addPositions adds positional embeddings (aligned to the *end* of the
// table, as RecBole right-pads sessions) to x in place.
func addPositions(x, pos *tensor.Tensor) {
	seqLen, dim := x.Dim(0), x.Dim(1)
	for t := 0; t < seqLen; t++ {
		row := x.Data()[t*dim : (t+1)*dim]
		prow := pos.Row(t % pos.Dim(0)).Data()
		for c := range row {
			row[c] += prow[c]
		}
	}
}
