package model

import (
	"encoding/json"
	"fmt"
)

// Manifest is the serialised form of a deployable model — the analogue of
// the TorchScript archives ETUDE deploys from Google storage buckets. Since
// this reproduction initialises weights deterministically from a seed, the
// manifest needs only the model name and configuration; loading a manifest
// rebuilds bit-identical weights.
type Manifest struct {
	// Model is the registered model name.
	Model string `json:"model"`
	// Config is the full model configuration, including the seed.
	Config Config `json:"config"`
	// WeightsKey optionally locates a serialised weight archive (see
	// SaveWeights) in the same bucket as the manifest. When set, deployment
	// loads those weights instead of relying on seed regeneration — the
	// full "serialised model in a storage bucket" flow of the paper.
	WeightsKey string `json:"weights_key,omitempty"`
}

// MarshalManifest serialises a manifest for storage in a bucket.
func MarshalManifest(m Manifest) ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("model: encoding manifest: %w", err)
	}
	return data, nil
}

// UnmarshalManifest parses a stored manifest.
func UnmarshalManifest(data []byte) (Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("model: decoding manifest: %w", err)
	}
	if m.Model == "" {
		return Manifest{}, fmt.Errorf("model: manifest missing model name")
	}
	return m, nil
}

// Load instantiates the model a manifest describes.
func (m Manifest) Load() (Model, error) {
	return New(m.Model, m.Config)
}
