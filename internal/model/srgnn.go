package model

import (
	"etude/internal/nn"
	"etude/internal/tensor"
	"etude/internal/topk"
)

func init() {
	Register("srgnn", func(cfg Config) (Model, error) { return NewSRGNN(cfg) })
}

// SRGNN (Wu et al. 2019) models each session as a directed item-transition
// graph, propagates node states with a gated GNN, and reads out a session
// representation from an attention-weighted global vector combined with the
// last-clicked item's node state.
//
// The paper found that the RecBole implementation "contains NumPy operations
// in the inference function which require repeated data transfers between
// CPU and GPU at inference time". With Config.Faithful=true the graph
// construction and alias bookkeeping are attributed to the *host*, adding
// per-inference host↔device round trips to the cost model (see Cost); the
// fixed variant keeps everything on-device (HostTransfers = 0).
type SRGNN struct {
	base
	ggnn    *nn.GGNNCell
	attn    *nn.AdditiveAttention
	combine *nn.Linear // [2d] → d readout
	steps   int
}

// NewSRGNN builds an SR-GNN model with one propagation step.
func NewSRGNN(cfg Config) (*SRGNN, error) {
	in := nn.NewInitializer(cfg.Seed)
	b, err := newBase(cfg, in)
	if err != nil {
		return nil, err
	}
	d := b.cfg.Dim
	return &SRGNN{
		base:    b,
		ggnn:    nn.NewGGNNCell(in, d),
		attn:    nn.NewAdditiveAttention(in, d),
		combine: nn.NewLinearNoBias(in, 2*d, d),
		steps:   1,
	}, nil
}

// Name implements Model.
func (m *SRGNN) Name() string { return "srgnn" }

// Recommend implements Model.
func (m *SRGNN) Recommend(session []int64) []topk.Result {
	return m.score(m.encode(session))
}

// Encode implements model.Encoder: it returns the session representation
// the MIPS stage scores against the catalog.
func (m *SRGNN) Encode(session []int64) *tensor.Tensor {
	return m.encode(session)
}

func (m *SRGNN) encode(session []int64) *tensor.Tensor {
	session = truncate(session, m.cfg.MaxSessionLen)
	if len(session) == 0 {
		return m.zeroRep()
	}
	// Host-side preprocessing in the reference implementation: building the
	// session graph and alias arrays with NumPy.
	g := nn.BuildSessionGraph(session)
	h := m.emb.Lookup(g.Nodes)
	h = m.ggnn.Propagate(g, h, m.steps)

	// Readout: local = last click's node state; global = additive attention
	// over the session sequence (via alias), queried by local.
	local := h.Row(g.Alias[len(session)-1])
	seqStates := tensor.New(len(session), m.cfg.Dim)
	for t, a := range g.Alias {
		copy(seqStates.Data()[t*m.cfg.Dim:(t+1)*m.cfg.Dim], h.Row(a).Data())
	}
	w := m.attn.Weights(local, seqStates)
	w.Softmax()
	global := nn.Apply(w, seqStates)
	return m.combine.ForwardVec(tensor.Concat(global, local.Clone()))
}

// CompiledRecommend implements JITCompilable. Note that in the paper the
// JIT-optimised SR-GNN still suffers from its host transfers; the transfers
// are modelled in Cost, not here.
func (m *SRGNN) CompiledRecommend() func(session []int64) []topk.Result {
	scorer := m.compiledScorer()
	return func(session []int64) []topk.Result {
		return scorer(m.encode(session))
	}
}

// Cost implements Model: GGNN propagation is ~(8·d² messages + 24·d² gate)
// per node per step; the faithful variant adds four host↔device round trips
// per inference (graph upload, adjacency upload, alias transfer, result
// sync) which dominate GPU serving latency.
func (m *SRGNN) Cost(sessionLen int) Cost {
	d := float64(m.cfg.Dim)
	l := float64(clampLen(sessionLen, m.cfg.MaxSessionLen))
	c := mipsCost(m.cfg.CatalogSize, m.cfg.Dim, m.cfg.TopK)
	c.EncoderFLOPs = float64(m.steps)*l*(8*d*d+24*d*d) + l*6*d*d + 4*d*d
	c.KernelLaunches = m.steps*int(l)*3 + 8
	if m.cfg.Faithful {
		c.HostTransfers = 4
	}
	return c
}
