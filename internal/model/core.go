package model

import (
	"etude/internal/nn"
	"etude/internal/tensor"
	"etude/internal/topk"
)

func init() {
	Register("core", func(cfg Config) (Model, error) { return NewCORE(cfg) })
}

// CORE (Hou et al. 2022) keeps the session representation in the *same*
// space as the item embeddings ("consistent representation space"): the
// session representation is a learned weighted sum of the session's item
// embeddings, and scoring uses cosine similarity with a temperature.
type CORE struct {
	base
	alpha *nn.Linear // per-item weight logits, d → 1
	temp  float32    // softmax temperature for scoring
}

// NewCORE builds a CORE model (transformer-free "CORE-ave/att" style weight
// encoder, temperature 0.07 as in the reference implementation).
func NewCORE(cfg Config) (*CORE, error) {
	in := nn.NewInitializer(cfg.Seed)
	b, err := newBase(cfg, in)
	if err != nil {
		return nil, err
	}
	return &CORE{
		base:  b,
		alpha: nn.NewLinear(in, b.cfg.Dim, 1),
		temp:  0.07,
	}, nil
}

// Name implements Model.
func (m *CORE) Name() string { return "core" }

// Recommend implements Model.
func (m *CORE) Recommend(session []int64) []topk.Result {
	return m.score(m.encode(session))
}

// Encode implements model.Encoder: it returns the session representation
// the MIPS stage scores against the catalog.
func (m *CORE) Encode(session []int64) *tensor.Tensor {
	return m.encode(session)
}

func (m *CORE) encode(session []int64) *tensor.Tensor {
	session, x := m.prepare(session)
	if x == nil {
		return m.zeroRep()
	}
	return m.encodeFrom(session, x)
}

// encodeFrom runs the architecture forward pass on the prepared embeddings
// (the encoder-forward stage of the trace decomposition).
func (m *CORE) encodeFrom(session []int64, x *tensor.Tensor) *tensor.Tensor {
	// Weight each item embedding: alpha = softmax(MLP(x)).
	logits := m.alpha.Forward(x).Reshape(len(session))
	logits.Softmax()
	rep := nn.Apply(logits, x)
	// Consistent representation space: L2-normalise and divide by the
	// temperature so the MIPS stage computes tempered cosine similarity.
	rep2 := rep.Reshape(1, m.cfg.Dim)
	rep2.L2NormalizeRows()
	rep2.ScaleInPlace(1 / m.temp)
	return rep
}

// CompiledRecommend implements JITCompilable.
func (m *CORE) CompiledRecommend() func(session []int64) []topk.Result {
	scorer := m.compiledScorer()
	return func(session []int64) []topk.Result {
		return scorer(m.encode(session))
	}
}

// Cost implements Model: CORE's encoder is the cheapest of the ten — one
// d→1 projection per item plus the weighted sum.
func (m *CORE) Cost(sessionLen int) Cost {
	d := float64(m.cfg.Dim)
	l := float64(clampLen(sessionLen, m.cfg.MaxSessionLen))
	c := mipsCost(m.cfg.CatalogSize, m.cfg.Dim, m.cfg.TopK)
	c.EncoderFLOPs = l*2*d + l*2*d + 3*d
	c.KernelLaunches = 5
	return c
}
