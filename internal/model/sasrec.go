package model

import (
	"etude/internal/nn"
	"etude/internal/tensor"
	"etude/internal/topk"
)

func init() {
	Register("sasrec", func(cfg Config) (Model, error) { return NewSASRec(cfg) })
}

// SASRec (Kang & McAuley 2018) is the self-attentive sequential model: item
// plus positional embeddings run through stacked causal transformer blocks;
// the representation at the final position is the session representation.
type SASRec struct {
	base
	pos    *tensor.Tensor
	blocks []*transformerBlock
}

type transformerBlock struct {
	attn     *nn.MultiHeadAttention
	ffn      *nn.FeedForward
	ln1, ln2 *nn.LayerNorm
}

func newTransformerBlock(in *nn.Initializer, d, heads int) *transformerBlock {
	return &transformerBlock{
		attn: nn.NewMultiHeadAttention(in, d, heads),
		ffn:  nn.NewFeedForward(in, d, 4*d),
		ln1:  nn.NewLayerNorm(in, d),
		ln2:  nn.NewLayerNorm(in, d),
	}
}

// forward applies pre-norm attention and feed-forward with residuals.
func (b *transformerBlock) forward(x *tensor.Tensor, causal bool) *tensor.Tensor {
	h := tensor.Add(x, b.attn.Forward(b.ln1.Forward(x), causal))
	return tensor.Add(h, b.ffn.Forward(b.ln2.Forward(h)))
}

const sasrecLayers = 2

// NewSASRec builds a SASRec model with two transformer layers and two heads.
func NewSASRec(cfg Config) (*SASRec, error) {
	in := nn.NewInitializer(cfg.Seed)
	b, err := newBase(cfg, in)
	if err != nil {
		return nil, err
	}
	d := b.cfg.Dim
	blocks := make([]*transformerBlock, sasrecLayers)
	for i := range blocks {
		blocks[i] = newTransformerBlock(in, d, 2)
	}
	return &SASRec{
		base:   b,
		pos:    positionTable(in, b.cfg.MaxSessionLen, d),
		blocks: blocks,
	}, nil
}

// Name implements Model.
func (m *SASRec) Name() string { return "sasrec" }

// Recommend implements Model.
func (m *SASRec) Recommend(session []int64) []topk.Result {
	return m.score(m.encode(session))
}

// Encode implements model.Encoder: it returns the session representation
// the MIPS stage scores against the catalog.
func (m *SASRec) Encode(session []int64) *tensor.Tensor {
	return m.encode(session)
}

func (m *SASRec) encode(session []int64) *tensor.Tensor {
	session, x := m.prepare(session)
	if x == nil {
		return m.zeroRep()
	}
	return m.encodeFrom(session, x)
}

// encodeFrom runs the architecture forward pass on the prepared embeddings
// (the encoder-forward stage of the trace decomposition).
func (m *SASRec) encodeFrom(session []int64, x *tensor.Tensor) *tensor.Tensor {
	addPositions(x, m.pos)
	for _, b := range m.blocks {
		x = b.forward(x, true)
	}
	return x.Row(len(session) - 1).Clone()
}

// CompiledRecommend implements JITCompilable.
func (m *SASRec) CompiledRecommend() func(session []int64) []topk.Result {
	scorer := m.compiledScorer()
	return func(session []int64) []topk.Result {
		return scorer(m.encode(session))
	}
}

// Cost implements Model: per layer, QKV+output projections are 8·d² per
// position, attention itself 4·L·d per position, and the 4×-expanded FFN
// 16·d² per position.
func (m *SASRec) Cost(sessionLen int) Cost {
	d := float64(m.cfg.Dim)
	l := float64(clampLen(sessionLen, m.cfg.MaxSessionLen))
	c := mipsCost(m.cfg.CatalogSize, m.cfg.Dim, m.cfg.TopK)
	perLayer := l*(8*d*d+16*d*d) + 4*l*l*d
	c.EncoderFLOPs = float64(sasrecLayers) * perLayer
	c.KernelLaunches = sasrecLayers*10 + 3
	return c
}
