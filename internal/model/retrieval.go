package model

import (
	"fmt"
	"time"

	"etude/internal/tensor"
	"etude/internal/topk"
)

// Encoder is implemented by models whose inference decomposes into a
// session encoder followed by a pure maximum-inner-product search over the
// item-embedding matrix — nine of the ten models (RepeatNet mixes a
// session-local repeat distribution into the scores and therefore cannot
// swap its retrieval stage).
//
// Exposing the decomposition lets the paper's future-work techniques —
// int8 quantisation and approximate nearest-neighbour search — replace the
// exact retrieval stage without touching the encoders (see WithRetrieval).
type Encoder interface {
	Model
	// Encode returns the d-dimensional session representation the MIPS
	// stage scores against the catalog.
	Encode(session []int64) *tensor.Tensor
	// ItemEmbeddings returns the [C, d] catalog representation. Callers
	// must not modify it.
	ItemEmbeddings() *tensor.Tensor
}

// Retriever scores a session representation against the catalog and
// returns the top-k items. Implementations: exact MIPS (the default inside
// every model), int8 quantised scoring (internal/quant) and IVF search
// (internal/ann), adapted via small closures.
type Retriever interface {
	Retrieve(query *tensor.Tensor, k int) ([]topk.Result, error)
}

// RetrieverFunc adapts a function to the Retriever interface.
type RetrieverFunc func(query *tensor.Tensor, k int) ([]topk.Result, error)

// Retrieve implements Retriever.
func (f RetrieverFunc) Retrieve(query *tensor.Tensor, k int) ([]topk.Result, error) {
	return f(query, k)
}

// WithRetrieval wraps an Encoder model, replacing its exact MIPS stage with
// the given retriever. The wrapped model serves through internal/server
// unchanged. Retrieval errors surface as empty recommendation lists (the
// serving path cannot propagate them; construct-time validation should
// prevent them).
func WithRetrieval(m Encoder, r Retriever) (Model, error) {
	if m == nil || r == nil {
		return nil, fmt.Errorf("model: WithRetrieval requires a model and a retriever")
	}
	return &retrievalModel{enc: m, retriever: r}, nil
}

type retrievalModel struct {
	enc       Encoder
	retriever Retriever
}

// Name implements Model.
func (m *retrievalModel) Name() string { return m.enc.Name() + "+retrieval" }

// Config implements Model.
func (m *retrievalModel) Config() Config { return m.enc.Config() }

// Cost implements Model; the encoder cost carries over while the retrieval
// stage differs per retriever — callers measuring approximate retrievers
// should time them directly.
func (m *retrievalModel) Cost(sessionLen int) Cost { return m.enc.Cost(sessionLen) }

// Recommend implements Model.
func (m *retrievalModel) Recommend(session []int64) []topk.Result {
	rep := m.enc.Encode(session)
	recs, err := m.retriever.Retrieve(rep, m.enc.Config().TopK)
	if err != nil {
		return nil
	}
	return recs
}

// RecommendStaged implements StagedRecommender: the encoder and the
// substituted retrieval stage are measured separately, so a pod serving a
// catalog shard (internal/shard's PartitionModel) still reports the
// encoder-forward vs mips-topk split instead of one opaque blob.
func (m *retrievalModel) RecommendStaged(session []int64, now func() time.Duration) ([]topk.Result, StageTimings) {
	var tm StageTimings
	t0 := now()
	rep := m.enc.Encode(session)
	t1 := now()
	tm.Encoder = t1 - t0
	recs, err := m.retriever.Retrieve(rep, m.enc.Config().TopK)
	tm.TopK = now() - t1
	if err != nil {
		return nil, tm
	}
	return recs, tm
}
