package model

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{CatalogSize: 200, Seed: 1}
}

func TestHeuristicDim(t *testing.T) {
	cases := []struct{ c, want int }{
		{10_000, 10},
		{100_000, 18},
		{1_000_000, 32},
		{10_000_000, 58},
		{20_000_000, 68},
		{1, 2},
		{16, 2},
		{17, 4},
	}
	for _, tc := range cases {
		if got := HeuristicDim(tc.c); got != tc.want {
			t.Errorf("HeuristicDim(%d) = %d, want %d", tc.c, got, tc.want)
		}
	}
}

func TestNamesContainsAllTenModels(t *testing.T) {
	want := []string{"core", "gcsan", "gru4rec", "lightsans", "narm", "repeatnet", "sasrec", "sine", "srgnn", "stamp"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestNewUnknownModel(t *testing.T) {
	if _, err := New("nonexistent", testConfig()); err == nil {
		t.Fatalf("expected error for unknown model")
	}
}

func TestNewInvalidConfig(t *testing.T) {
	for _, name := range Names() {
		if _, err := New(name, Config{CatalogSize: 0}); err == nil {
			t.Errorf("%s: expected error for zero catalog", name)
		}
		if _, err := New(name, Config{CatalogSize: -5}); err == nil {
			t.Errorf("%s: expected error for negative catalog", name)
		}
	}
}

// TestAllModelsRecommend is the core contract test: every registered model
// must produce k unique, in-range, score-sorted recommendations for typical,
// single-click, repeated-item and over-long sessions — without panicking.
func TestAllModelsRecommend(t *testing.T) {
	sessions := map[string][]int64{
		"typical":  {3, 17, 42, 9},
		"single":   {5},
		"repeats":  {7, 7, 7, 7, 7},
		"long":     longSession(120, 200),
		"empty":    {},
		"boundary": {0, 199},
		"revisits": {1, 2, 1, 3, 2, 1},
	}
	for _, name := range Names() {
		m, err := New(name, testConfig())
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("%s: Name() = %q", name, m.Name())
		}
		cfg := m.Config()
		if cfg.TopK != DefaultTopK || cfg.Dim == 0 {
			t.Errorf("%s: defaults not applied: %+v", name, cfg)
		}
		for label, session := range sessions {
			recs := m.Recommend(session)
			if len(recs) != cfg.TopK {
				t.Fatalf("%s/%s: got %d recs, want %d", name, label, len(recs), cfg.TopK)
			}
			seen := make(map[int64]bool)
			for i, r := range recs {
				if r.Item < 0 || r.Item >= int64(cfg.CatalogSize) {
					t.Fatalf("%s/%s: item %d out of range", name, label, r.Item)
				}
				if seen[r.Item] {
					t.Fatalf("%s/%s: duplicate item %d", name, label, r.Item)
				}
				seen[r.Item] = true
				if i > 0 && recs[i-1].Score < r.Score {
					t.Fatalf("%s/%s: scores not descending at %d", name, label, i)
				}
			}
		}
	}
}

// TestModelsDeterministic: same seed and session ⇒ identical output;
// different seeds ⇒ (almost surely) different top item ordering.
func TestModelsDeterministic(t *testing.T) {
	session := []int64{3, 17, 42, 9, 65}
	for _, name := range Names() {
		a, _ := New(name, testConfig())
		b, _ := New(name, testConfig())
		ra, rb := a.Recommend(session), b.Recommend(session)
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("%s: nondeterministic output at %d: %+v vs %+v", name, i, ra[i], rb[i])
			}
		}
	}
}

func TestModelsSeedSensitivity(t *testing.T) {
	session := []int64{3, 17, 42, 9, 65}
	differs := 0
	for _, name := range Names() {
		a, _ := New(name, Config{CatalogSize: 200, Seed: 1})
		b, _ := New(name, Config{CatalogSize: 200, Seed: 99})
		if a.Recommend(session)[0] != b.Recommend(session)[0] {
			differs++
		}
	}
	if differs < len(Names())-2 {
		t.Fatalf("only %d/%d models changed output with the seed", differs, len(Names()))
	}
}

// TestCompiledMatchesEager: the JIT contract — the compiled path must return
// exactly the same recommendations as eager execution. LightSANs must NOT be
// compilable (the paper's finding).
func TestCompiledMatchesEager(t *testing.T) {
	sessions := [][]int64{{3, 17, 42, 9}, {5}, {1, 2, 1, 3, 2, 1}, {}}
	for _, name := range Names() {
		m, _ := New(name, testConfig())
		jc, ok := m.(JITCompilable)
		if name == "lightsans" {
			if ok {
				t.Fatalf("lightsans must not be JIT-compilable (dynamic code paths)")
			}
			continue
		}
		if !ok {
			t.Fatalf("%s: expected JITCompilable", name)
		}
		compiled := jc.CompiledRecommend()
		for _, session := range sessions {
			eager := m.Recommend(session)
			fast := compiled(session)
			if len(eager) != len(fast) {
				t.Fatalf("%s: compiled len %d != eager %d", name, len(fast), len(eager))
			}
			for i := range eager {
				if eager[i].Item != fast[i].Item {
					t.Fatalf("%s session %v pos %d: compiled item %d != eager %d",
						name, session, i, fast[i].Item, eager[i].Item)
				}
			}
		}
	}
}

// TestCompiledReusableAcrossCalls guards against stale buffer state: calling
// the compiled closure twice with different sessions must match eager each
// time.
func TestCompiledReusableAcrossCalls(t *testing.T) {
	for _, name := range Names() {
		m, _ := New(name, testConfig())
		jc, ok := m.(JITCompilable)
		if !ok {
			continue
		}
		compiled := jc.CompiledRecommend()
		s1, s2 := []int64{1, 2, 3}, []int64{99, 98}
		compiled(s1)
		got := compiled(s2)
		want := m.Recommend(s2)
		if got[0].Item != want[0].Item {
			t.Fatalf("%s: compiled state leaked across calls", name)
		}
	}
}

func TestCostScalesWithCatalog(t *testing.T) {
	for _, name := range Names() {
		small, _ := New(name, Config{CatalogSize: 1000, Seed: 1})
		large, _ := New(name, Config{CatalogSize: 100_000, Seed: 1})
		cs, cl := small.Cost(10), large.Cost(10)
		if cl.MIPSFLOPs <= cs.MIPSFLOPs {
			t.Errorf("%s: MIPS cost must grow with catalog", name)
		}
		// The catalog term must dominate for large C: the paper's central
		// observation that inference time is linear in C.
		if cl.MIPSFLOPs < 10*cs.MIPSFLOPs {
			t.Errorf("%s: MIPS cost not linear in catalog: %v vs %v", name, cs.MIPSFLOPs, cl.MIPSFLOPs)
		}
		if cs.EncoderFLOPs <= 0 || cs.TotalFLOPs() <= 0 || cs.SharedBytes <= 0 || cs.PerRequestBytes <= 0 {
			t.Errorf("%s: degenerate cost %+v", name, cs)
		}
		if cs.KernelLaunches <= 0 {
			t.Errorf("%s: kernel launches must be positive", name)
		}
	}
}

func TestCostSessionLenClamped(t *testing.T) {
	m, _ := New("gru4rec", testConfig())
	atMax := m.Cost(m.Config().MaxSessionLen)
	beyond := m.Cost(10 * m.Config().MaxSessionLen)
	if atMax.EncoderFLOPs != beyond.EncoderFLOPs {
		t.Fatalf("cost must clamp session length to MaxSessionLen")
	}
}

func TestFaithfulVariantsCostMore(t *testing.T) {
	cfgFix := Config{CatalogSize: 50_000, Seed: 1}
	cfgBug := Config{CatalogSize: 50_000, Seed: 1, Faithful: true}

	rn, _ := New("repeatnet", cfgFix)
	rnBug, _ := New("repeatnet", cfgBug)
	if rnBug.Cost(20).DenseOverheadFLOPs <= rn.Cost(20).DenseOverheadFLOPs {
		t.Fatalf("faithful RepeatNet must carry dense-scatter overhead")
	}
	if rn.Cost(20).DenseOverheadFLOPs != 0 {
		t.Fatalf("fixed RepeatNet must have zero dense overhead")
	}
	for _, name := range []string{"srgnn", "gcsan"} {
		fix, _ := New(name, cfgFix)
		bug, _ := New(name, cfgBug)
		if bug.Cost(20).HostTransfers == 0 {
			t.Fatalf("faithful %s must report host transfers", name)
		}
		if fix.Cost(20).HostTransfers != 0 {
			t.Fatalf("fixed %s must report zero host transfers", name)
		}
	}
}

// TestRepeatNetFaithfulMatchesFixed: the dense and sparse scatter are
// mathematically identical — the bug is performance, not correctness.
func TestRepeatNetFaithfulMatchesFixed(t *testing.T) {
	fix, _ := New("repeatnet", Config{CatalogSize: 300, Seed: 7})
	bug, _ := New("repeatnet", Config{CatalogSize: 300, Seed: 7, Faithful: true})
	for _, session := range [][]int64{{1, 2, 3}, {250, 4, 250}, {0}} {
		rf, rb := fix.Recommend(session), bug.Recommend(session)
		for i := range rf {
			if rf[i].Item != rb[i].Item {
				t.Fatalf("session %v pos %d: fixed %d != faithful %d", session, i, rf[i].Item, rb[i].Item)
			}
		}
	}
}

// TestRepeatNetBoostsRepeats: a heavily repeated item should rank very high
// thanks to the repeat mechanism, regardless of random weights.
func TestRepeatNetBoostsRepeats(t *testing.T) {
	m, _ := New("repeatnet", Config{CatalogSize: 500, Seed: 3})
	session := []int64{123, 123, 123, 123, 123, 123}
	recs := m.Recommend(session)
	for i, r := range recs {
		if r.Item == 123 {
			if i > 3 {
				t.Fatalf("repeated item ranked only %d-th", i)
			}
			return
		}
	}
	t.Fatalf("repeated item not in top-%d at all", len(recs))
}

func TestBrokenAndTableIModelsPartition(t *testing.T) {
	all := map[string]bool{}
	for _, n := range BrokenModels() {
		all[n] = true
	}
	for _, n := range TableIModels() {
		if all[n] {
			t.Fatalf("%s is in both broken and Table I lists", n)
		}
		all[n] = true
	}
	if len(all) != len(Names()) {
		t.Fatalf("broken + tableI = %d models, want %d", len(all), len(Names()))
	}
}

func TestTopKConfigRespected(t *testing.T) {
	m, _ := New("core", Config{CatalogSize: 100, Seed: 1, TopK: 5})
	if got := len(m.Recommend([]int64{1, 2})); got != 5 {
		t.Fatalf("TopK=5 but got %d recs", got)
	}
}

func TestTopKLargerThanCatalog(t *testing.T) {
	m, _ := New("stamp", Config{CatalogSize: 10, Seed: 1, TopK: 50})
	if got := len(m.Recommend([]int64{1, 2})); got != 10 {
		t.Fatalf("k>C should return C recs, got %d", got)
	}
}

// Property: for every model, any session over a small catalog yields valid
// recommendations.
func TestRecommendProperty(t *testing.T) {
	models := make([]Model, 0, len(Names()))
	for _, name := range Names() {
		m, err := New(name, Config{CatalogSize: 64, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	f := func(raw []uint8) bool {
		session := make([]int64, len(raw))
		for i, r := range raw {
			session[i] = int64(r % 64)
		}
		for _, m := range models {
			recs := m.Recommend(session)
			if len(recs) != m.Config().TopK {
				return false
			}
			for _, r := range recs {
				if r.Item < 0 || r.Item >= 64 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func longSession(n int, catalog int64) []int64 {
	rng := rand.New(rand.NewSource(13))
	s := make([]int64, n)
	for i := range s {
		s[i] = rng.Int63n(catalog)
	}
	return s
}

func TestManifestRoundTrip(t *testing.T) {
	m := Manifest{Model: "stamp", Config: Config{CatalogSize: 100, Seed: 7, TopK: 5}}
	data, err := MarshalManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("round trip: %+v != %+v", got, m)
	}
	loaded, err := got.Load()
	if err != nil {
		t.Fatal(err)
	}
	// Loaded model must be bit-identical to a directly constructed one.
	direct, _ := New("stamp", m.Config)
	a, b := loaded.Recommend([]int64{1, 2}), direct.Recommend([]int64{1, 2})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("manifest load not reproducible at %d", i)
		}
	}
}

func TestManifestErrors(t *testing.T) {
	if _, err := UnmarshalManifest([]byte("{")); err == nil {
		t.Fatalf("bad JSON accepted")
	}
	if _, err := UnmarshalManifest([]byte("{}")); err == nil {
		t.Fatalf("missing model name accepted")
	}
	if _, err := (Manifest{Model: "ghost", Config: Config{CatalogSize: 10}}).Load(); err == nil {
		t.Fatalf("unknown model loaded")
	}
}

func TestEstimateCostMatchesFullModel(t *testing.T) {
	for _, name := range Names() {
		cfg := Config{CatalogSize: 5000, Seed: 1}
		m, err := New(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		est, err := EstimateCost(name, cfg, 7)
		if err != nil {
			t.Fatal(err)
		}
		if est != m.Cost(7) {
			t.Fatalf("%s: EstimateCost %+v != Cost %+v", name, est, m.Cost(7))
		}
	}
}

// TestGoldenRecommendations pins the exact top-3 items every model returns
// for a fixed seed and session. Any change here means inference behaviour
// changed — architectures, initialisation order or scoring — and must be a
// conscious decision (regenerate the goldens when it is).
func TestGoldenRecommendations(t *testing.T) {
	golden := map[string][3]int64{
		"core":      {71, 83, 17},
		"gcsan":     {95, 13, 89},
		"gru4rec":   {49, 128, 52},
		"lightsans": {71, 50, 177},
		"narm":      {50, 71, 70},
		"repeatnet": {9, 42, 3},
		"sasrec":    {148, 8, 168},
		"sine":      {71, 50, 70},
		"srgnn":     {71, 50, 70},
		"stamp":     {97, 90, 54},
	}
	session := []int64{3, 17, 42, 9, 65}
	for _, name := range Names() {
		want, ok := golden[name]
		if !ok {
			t.Fatalf("no golden for %s — add one", name)
		}
		m, err := New(name, Config{CatalogSize: 200, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		recs := m.Recommend(session)
		got := [3]int64{recs[0].Item, recs[1].Item, recs[2].Item}
		if got != want {
			t.Errorf("%s: top-3 = %v, golden %v — inference behaviour changed", name, got, want)
		}
	}
}
