package model

import (
	"testing"

	"etude/internal/tensor"
	"etude/internal/topk"
)

// TestAllPureMIPSModelsAreEncoders: nine of the ten models expose their
// encoder/catalog decomposition; RepeatNet does not (its repeat mechanism
// mixes a session-local distribution into the scores).
func TestAllPureMIPSModelsAreEncoders(t *testing.T) {
	for _, name := range Names() {
		m, err := New(name, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		_, ok := m.(Encoder)
		if name == "repeatnet" {
			if ok {
				t.Fatalf("repeatnet must not be an Encoder (repeat/explore mixing)")
			}
			continue
		}
		if !ok {
			t.Fatalf("%s: expected Encoder", name)
		}
	}
}

// TestEncodeMatchesRecommend: encoding then exact MIPS must equal the
// model's own Recommend for every Encoder model.
func TestEncodeMatchesRecommend(t *testing.T) {
	session := []int64{3, 17, 42, 9}
	for _, name := range Names() {
		m, _ := New(name, testConfig())
		enc, ok := m.(Encoder)
		if !ok {
			continue
		}
		rep := enc.Encode(session)
		manual := topk.TopK(enc.ItemEmbeddings(), rep, m.Config().TopK)
		direct := m.Recommend(session)
		for i := range direct {
			if manual[i].Item != direct[i].Item {
				t.Fatalf("%s pos %d: manual %d != direct %d", name, i, manual[i].Item, direct[i].Item)
			}
		}
	}
}

// TestWithRetrievalExactEquivalence: wrapping a model with an exact-MIPS
// retriever reproduces its native recommendations.
func TestWithRetrievalExactEquivalence(t *testing.T) {
	m, _ := New("stamp", testConfig())
	enc := m.(Encoder)
	exact := RetrieverFunc(func(q *tensor.Tensor, k int) ([]topk.Result, error) {
		return topk.TopK(enc.ItemEmbeddings(), q, k), nil
	})
	wrapped, err := WithRetrieval(enc, exact)
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.Name() != "stamp+retrieval" {
		t.Fatalf("name = %s", wrapped.Name())
	}
	if wrapped.Config() != m.Config() {
		t.Fatalf("config not forwarded")
	}
	for _, session := range [][]int64{{1}, {5, 9, 13}, {}} {
		a, b := m.Recommend(session), wrapped.Recommend(session)
		if len(a) != len(b) {
			t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i].Item != b[i].Item {
				t.Fatalf("session %v pos %d: %d != %d", session, i, a[i].Item, b[i].Item)
			}
		}
	}
}

func TestWithRetrievalValidation(t *testing.T) {
	m, _ := New("core", testConfig())
	if _, err := WithRetrieval(nil, RetrieverFunc(nil)); err == nil {
		t.Fatalf("nil model accepted")
	}
	if _, err := WithRetrieval(m.(Encoder), nil); err == nil {
		t.Fatalf("nil retriever accepted")
	}
}

// TestWithRetrievalErrorsYieldEmpty: a failing retriever degrades to an
// empty recommendation list rather than a panic in the serving path.
func TestWithRetrievalErrorsYieldEmpty(t *testing.T) {
	m, _ := New("core", testConfig())
	boom := RetrieverFunc(func(q *tensor.Tensor, k int) ([]topk.Result, error) {
		return nil, errBoom
	})
	wrapped, err := WithRetrieval(m.(Encoder), boom)
	if err != nil {
		t.Fatal(err)
	}
	if got := wrapped.Recommend([]int64{1}); got != nil {
		t.Fatalf("failing retriever returned %v", got)
	}
}

type boomErr struct{}

func (boomErr) Error() string { return "boom" }

var errBoom = boomErr{}
