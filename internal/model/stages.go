package model

import (
	"time"

	"etude/internal/tensor"
	"etude/internal/topk"
)

// StageTimings is the per-stage decomposition of one Recommend call: the
// embedding gather, the architecture-specific encoder forward pass, and the
// O(C·(d+log k)) MIPS top-k scan — the three terms of the paper's cost
// model, measured rather than estimated.
type StageTimings struct {
	EmbeddingLookup time.Duration
	Encoder         time.Duration
	TopK            time.Duration
}

// StagedRecommender is implemented by models — in any package, see
// internal/knn — that decompose their own Recommend into stages under a
// caller-supplied clock. Implementations must return exactly the results
// Recommend would.
type StagedRecommender interface {
	RecommendStaged(session []int64, now func() time.Duration) ([]topk.Result, StageTimings)
}

// splitEncoder is satisfied in-package by the embedding-table models whose
// encode factors into prepare (embedding gather, promoted from base) +
// encodeFrom (the architecture forward pass); score and zeroRep are also
// promoted from base. Keeping the interface unexported keeps the factored
// methods out of the public model API.
type splitEncoder interface {
	prepare(session []int64) ([]int64, *tensor.Tensor)
	zeroRep() *tensor.Tensor
	encodeFrom(session []int64, x *tensor.Tensor) *tensor.Tensor
	score(rep *tensor.Tensor) []topk.Result
}

// RecommendStaged produces exactly m.Recommend(session) while measuring the
// stage decomposition under now. Decomposition fidelity degrades gracefully
// with what the model exposes:
//
//   - split encoders (most embedding-table models) report embedding-lookup,
//     encoder-forward and mips-topk separately;
//   - StagedRecommender implementations (e.g. V-SkNN, whose "encoder" is a
//     neighbor search) report their own split;
//   - plain Encoders (the session-graph models, whose lookup is interleaved
//     with graph construction) report encoder vs. top-k;
//   - anything else (RepeatNet's fused repeat/explore scoring) reports the
//     whole call as encoder time.
func RecommendStaged(m Model, session []int64, now func() time.Duration) ([]topk.Result, StageTimings) {
	switch mm := m.(type) {
	case splitEncoder:
		var tm StageTimings
		t0 := now()
		sess, x := mm.prepare(session)
		t1 := now()
		tm.EmbeddingLookup = t1 - t0
		var rep *tensor.Tensor
		if x == nil {
			rep = mm.zeroRep()
		} else {
			rep = mm.encodeFrom(sess, x)
		}
		t2 := now()
		tm.Encoder = t2 - t1
		recs := mm.score(rep)
		tm.TopK = now() - t2
		return recs, tm
	case StagedRecommender:
		return mm.RecommendStaged(session, now)
	case Encoder:
		var tm StageTimings
		t0 := now()
		rep := mm.Encode(session)
		t1 := now()
		tm.Encoder = t1 - t0
		recs := topk.TopK(mm.ItemEmbeddings(), rep, mm.Config().TopK)
		tm.TopK = now() - t1
		return recs, tm
	default:
		t0 := now()
		recs := m.Recommend(session)
		return recs, StageTimings{Encoder: now() - t0}
	}
}
