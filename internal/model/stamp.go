package model

import (
	"etude/internal/nn"
	"etude/internal/tensor"
	"etude/internal/topk"
)

func init() {
	Register("stamp", func(cfg Config) (Model, error) { return NewSTAMP(cfg) })
}

// STAMP (Liu et al. 2018) captures short-term attention/memory priority:
// attention over the session items is computed from each item, the last
// click and the session mean; the attended memory and the last click are
// passed through separate MLPs and combined by an element-wise product.
type STAMP struct {
	base
	w1, w2, w3 *nn.Linear     // attention input transforms
	w0         *tensor.Tensor // attention output vector [d]
	mlpA, mlpB *nn.Linear     // hs and ht transforms
}

// NewSTAMP builds a STAMP model.
func NewSTAMP(cfg Config) (*STAMP, error) {
	in := nn.NewInitializer(cfg.Seed)
	b, err := newBase(cfg, in)
	if err != nil {
		return nil, err
	}
	d := b.cfg.Dim
	return &STAMP{
		base: b,
		w1:   nn.NewLinearNoBias(in, d, d),
		w2:   nn.NewLinearNoBias(in, d, d),
		w3:   nn.NewLinearNoBias(in, d, d),
		w0:   in.Xavier(d),
		mlpA: nn.NewLinear(in, d, d),
		mlpB: nn.NewLinear(in, d, d),
	}, nil
}

// Name implements Model.
func (m *STAMP) Name() string { return "stamp" }

// Recommend implements Model.
func (m *STAMP) Recommend(session []int64) []topk.Result {
	return m.score(m.encode(session))
}

// Encode implements model.Encoder: it returns the session representation
// the MIPS stage scores against the catalog.
func (m *STAMP) Encode(session []int64) *tensor.Tensor {
	return m.encode(session)
}

func (m *STAMP) encode(session []int64) *tensor.Tensor {
	session, x := m.prepare(session)
	if x == nil {
		return m.zeroRep()
	}
	return m.encodeFrom(session, x)
}

// encodeFrom runs the architecture forward pass on the prepared embeddings
// (the encoder-forward stage of the trace decomposition).
func (m *STAMP) encodeFrom(_ []int64, x *tensor.Tensor) *tensor.Tensor {
	seqLen, d := x.Dim(0), x.Dim(1)
	xt := x.Row(seqLen - 1) // last click
	// Session mean ms.
	ms := tensor.New(d)
	for t := 0; t < seqLen; t++ {
		ms.AddInPlace(x.Row(t))
	}
	ms.ScaleInPlace(1 / float32(seqLen))

	// Attention: a_i = w0 · σ(W1·x_i + W2·x_t + W3·ms).
	wxt := m.w2.ForwardVec(xt)
	wms := m.w3.ForwardVec(ms)
	w1x := m.w1.Forward(x)
	weights := tensor.New(seqLen)
	for t := 0; t < seqLen; t++ {
		row := w1x.Row(t).Clone()
		row.AddInPlace(wxt)
		row.AddInPlace(wms)
		row.Sigmoid()
		weights.Data()[t] = tensor.Dot(m.w0.Data(), row.Data())
	}
	ma := nn.Apply(weights, x)
	ma.AddInPlace(ms) // residual with the mean, as in the reference code

	hs := m.mlpA.ForwardVec(ma)
	hs.Tanh()
	ht := m.mlpB.ForwardVec(xt)
	ht.Tanh()
	return tensor.Mul(hs, ht)
}

// CompiledRecommend implements JITCompilable.
func (m *STAMP) CompiledRecommend() func(session []int64) []topk.Result {
	scorer := m.compiledScorer()
	return func(session []int64) []topk.Result {
		return scorer(m.encode(session))
	}
}

// Cost implements Model: attention transforms are 2·d² per item plus two
// fixed 2·d² MLPs.
func (m *STAMP) Cost(sessionLen int) Cost {
	d := float64(m.cfg.Dim)
	l := float64(clampLen(sessionLen, m.cfg.MaxSessionLen))
	c := mipsCost(m.cfg.CatalogSize, m.cfg.Dim, m.cfg.TopK)
	c.EncoderFLOPs = l*4*d*d + 8*d*d
	c.KernelLaunches = 8 + int(l)
	return c
}
