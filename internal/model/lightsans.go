package model

import (
	"etude/internal/nn"
	"etude/internal/tensor"
	"etude/internal/topk"
)

func init() {
	Register("lightsans", func(cfg Config) (Model, error) { return NewLightSANs(cfg) })
}

// LightSANs (Fan et al. 2021) replaces quadratic self-attention with
// low-rank decomposed attention over k latent interests.
//
// LightSANs deliberately does NOT implement JITCompilable: the reference
// implementation contains dynamic, data-dependent code paths that PyTorch's
// JIT cannot trace, which the paper reports as "cannot be JIT-optimised ...
// due to dynamic code paths". We reproduce that property by selecting the
// attention variant at inference time based on the observed sequence length
// (see encode), which makes the execution graph input-dependent.
type LightSANs struct {
	base
	pos    *tensor.Tensor
	blocks []*lightBlock
	// shortAttn is the data-dependent alternative path used for very short
	// sequences, making the execution graph dynamic.
	shortAttn *nn.MultiHeadAttention
}

type lightBlock struct {
	attn     *nn.LowRankAttention
	ffn      *nn.FeedForward
	ln1, ln2 *nn.LayerNorm
}

const (
	lightsansLayers   = 2
	lightsansInterest = 4
	// lightsansShortCut: sessions at or below this length take the dense
	// attention path — the dynamic branch that defeats JIT tracing.
	lightsansShortCut = 2
)

// NewLightSANs builds a LightSANs model with two low-rank layers.
func NewLightSANs(cfg Config) (*LightSANs, error) {
	in := nn.NewInitializer(cfg.Seed)
	b, err := newBase(cfg, in)
	if err != nil {
		return nil, err
	}
	d := b.cfg.Dim
	blocks := make([]*lightBlock, lightsansLayers)
	for i := range blocks {
		blocks[i] = &lightBlock{
			attn: nn.NewLowRankAttention(in, d, lightsansInterest),
			ffn:  nn.NewFeedForward(in, d, 4*d),
			ln1:  nn.NewLayerNorm(in, d),
			ln2:  nn.NewLayerNorm(in, d),
		}
	}
	return &LightSANs{
		base:      b,
		pos:       positionTable(in, b.cfg.MaxSessionLen, d),
		blocks:    blocks,
		shortAttn: nn.NewMultiHeadAttention(in, d, 2),
	}, nil
}

// Name implements Model.
func (m *LightSANs) Name() string { return "lightsans" }

// Recommend implements Model.
func (m *LightSANs) Recommend(session []int64) []topk.Result {
	return m.score(m.encode(session))
}

// Encode implements model.Encoder: it returns the session representation
// the MIPS stage scores against the catalog.
func (m *LightSANs) Encode(session []int64) *tensor.Tensor {
	return m.encode(session)
}

func (m *LightSANs) encode(session []int64) *tensor.Tensor {
	session, x := m.prepare(session)
	if x == nil {
		return m.zeroRep()
	}
	return m.encodeFrom(session, x)
}

// encodeFrom runs the architecture forward pass on the prepared embeddings
// (the encoder-forward stage of the trace decomposition).
func (m *LightSANs) encodeFrom(session []int64, x *tensor.Tensor) *tensor.Tensor {
	addPositions(x, m.pos)
	if len(session) <= lightsansShortCut {
		// Dynamic path: dense attention for short sequences.
		x = tensor.Add(x, m.shortAttn.Forward(x, false))
	} else {
		for _, b := range m.blocks {
			h := tensor.Add(x, b.attn.Forward(b.ln1.Forward(x)))
			x = tensor.Add(h, b.ffn.Forward(b.ln2.Forward(h)))
		}
	}
	return x.Row(len(session) - 1).Clone()
}

// Cost implements Model: low-rank attention costs 8·d² projections plus
// 4·L·kLat·d for the two attention stages per layer.
func (m *LightSANs) Cost(sessionLen int) Cost {
	d := float64(m.cfg.Dim)
	l := float64(clampLen(sessionLen, m.cfg.MaxSessionLen))
	c := mipsCost(m.cfg.CatalogSize, m.cfg.Dim, m.cfg.TopK)
	perLayer := l*(8*d*d+16*d*d) + 4*l*lightsansInterest*d
	c.EncoderFLOPs = float64(lightsansLayers) * perLayer
	c.KernelLaunches = lightsansLayers*12 + 3
	return c
}
