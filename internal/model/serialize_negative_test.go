package model

import (
	"encoding/binary"
	"errors"
	"testing"
)

// Table-driven negative suite for LoadWeights: every malformed archive —
// truncated at each structural boundary, bit-flipped headers, wrong-shape
// and wrong-architecture tensors, trailing garbage — must come back as a
// typed error wrapping ErrWeightsCorrupt plus the specific sentinel, with
// no panic and no silent partial load. This is the contract the release
// store's verify-then-swap path depends on.
func TestLoadWeightsTypedErrors(t *testing.T) {
	fresh := func() Model {
		m, err := New("core", Config{CatalogSize: 50, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	good, err := SaveWeights(fresh())
	if err != nil {
		t.Fatal(err)
	}
	mut := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), good...))
	}
	wrongArch := func() []byte {
		m, err := New("stamp", Config{CatalogSize: 50, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		data, err := SaveWeights(m)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrWeightsTruncated},
		{"truncated-mid-magic", good[:2], ErrWeightsTruncated},
		{"truncated-mid-header", good[:9], ErrWeightsTruncated},
		{"truncated-after-header", good[:12], ErrWeightsTruncated},
		{"truncated-mid-shape", good[:14], ErrWeightsTruncated},
		{"truncated-mid-data", good[:len(good)/2], ErrWeightsTruncated},
		{"truncated-last-byte", good[:len(good)-1], ErrWeightsTruncated},
		{"bitflip-magic", mut(func(b []byte) []byte { b[0] ^= 0x01; return b }), ErrWeightsMagic},
		{"bitflip-version", mut(func(b []byte) []byte { b[4] ^= 0x80; return b }), ErrWeightsVersion},
		{"bitflip-count", mut(func(b []byte) []byte { b[8] ^= 0x04; return b }), ErrWeightsCount},
		{"zero-rank", mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:], 0)
			return b
		}), ErrWeightsShape},
		{"huge-rank", mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:], 99)
			return b
		}), ErrWeightsShape},
		{"overflow-dim", mut(func(b []byte) []byte {
			// First tensor keeps its rank but claims a dimension beyond
			// MaxInt32.
			binary.LittleEndian.PutUint32(b[16:], 0xFFFFFFFF)
			return b
		}), ErrWeightsShape},
		{"wrong-shape", mut(func(b []byte) []byte {
			// Perturb the first tensor's first dimension by one: plausible
			// rank, wrong extent.
			d := binary.LittleEndian.Uint32(b[16:])
			binary.LittleEndian.PutUint32(b[16:], d+1)
			return b
		}), ErrWeightsShape},
		{"wrong-architecture", wrongArch(), ErrWeightsCorrupt},
		{"trailing-bytes", append(append([]byte(nil), good...), 0xDE, 0xAD), ErrWeightsTrailing},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := LoadWeights(fresh(), tc.data)
			if err == nil {
				t.Fatalf("corrupt archive accepted")
			}
			if !errors.Is(err, ErrWeightsCorrupt) {
				t.Fatalf("error %v does not wrap ErrWeightsCorrupt", err)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v does not wrap the expected sentinel %v", err, tc.want)
			}
		})
	}
}

// A bit-flip inside the tensor payload cannot be caught by the structural
// decoder (any float bit pattern is a valid float) — that is exactly why
// the release store checksums artifacts. Document the division of labour:
// the flip loads fine here and must be caught one layer up by SHA-256.
func TestLoadWeightsPayloadBitFlipIsStructurallyValid(t *testing.T) {
	m, _ := New("core", Config{CatalogSize: 50, Seed: 1})
	good, err := SaveWeights(m)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-3] ^= 0x40
	fresh, _ := New("core", Config{CatalogSize: 50, Seed: 1})
	if err := LoadWeights(fresh, flipped); err != nil {
		t.Fatalf("payload bit-flip unexpectedly caught structurally: %v", err)
	}
}
