package model

import (
	"etude/internal/nn"
	"etude/internal/tensor"
)

// ParamSource is implemented by every model: the learnable parameters in a
// deterministic order. This is what weight serialisation walks.
type ParamSource = nn.ParamSource

func (b *transformerBlock) params() []*tensor.Tensor {
	var out []*tensor.Tensor
	out = append(out, b.attn.Params()...)
	out = append(out, b.ffn.Params()...)
	out = append(out, b.ln1.Params()...)
	out = append(out, b.ln2.Params()...)
	return out
}

// Params implements ParamSource.
func (m *GRU4Rec) Params() []*tensor.Tensor {
	out := m.emb.Params()
	out = append(out, m.gru.Params()...)
	return append(out, m.proj.Params()...)
}

// Params implements ParamSource.
func (m *NARM) Params() []*tensor.Tensor {
	out := m.emb.Params()
	out = append(out, m.gru.Params()...)
	out = append(out, m.attn.Params()...)
	return append(out, m.bili.Params()...)
}

// Params implements ParamSource.
func (m *STAMP) Params() []*tensor.Tensor {
	out := m.emb.Params()
	for _, l := range []*nn.Linear{m.w1, m.w2, m.w3, m.mlpA, m.mlpB} {
		out = append(out, l.Params()...)
	}
	return append(out, m.w0)
}

// Params implements ParamSource.
func (m *SASRec) Params() []*tensor.Tensor {
	out := append(m.emb.Params(), m.pos)
	for _, b := range m.blocks {
		out = append(out, b.params()...)
	}
	return out
}

// Params implements ParamSource.
func (m *LightSANs) Params() []*tensor.Tensor {
	out := append(m.emb.Params(), m.pos)
	for _, b := range m.blocks {
		out = append(out, b.attn.Params()...)
		out = append(out, b.ffn.Params()...)
		out = append(out, b.ln1.Params()...)
		out = append(out, b.ln2.Params()...)
	}
	return append(out, m.shortAttn.Params()...)
}

// Params implements ParamSource.
func (m *CORE) Params() []*tensor.Tensor {
	return append(m.emb.Params(), m.alpha.Params()...)
}

// Params implements ParamSource.
func (m *SINE) Params() []*tensor.Tensor {
	out := append(m.emb.Params(), m.concepts)
	out = append(out, m.selfAttn.Params()...)
	return append(out, m.aggGate.Params()...)
}

// Params implements ParamSource.
func (m *RepeatNet) Params() []*tensor.Tensor {
	out := m.emb.Params()
	out = append(out, m.gru.Params()...)
	out = append(out, m.repAttn.Params()...)
	out = append(out, m.expAttn.Params()...)
	out = append(out, m.gate.Params()...)
	return append(out, m.exploreOut.Params()...)
}

// Params implements ParamSource.
func (m *SRGNN) Params() []*tensor.Tensor {
	out := m.emb.Params()
	out = append(out, m.ggnn.Params()...)
	out = append(out, m.attn.Params()...)
	return append(out, m.combine.Params()...)
}

// Params implements ParamSource.
func (m *GCSAN) Params() []*tensor.Tensor {
	out := m.emb.Params()
	out = append(out, m.ggnn.Params()...)
	for _, b := range m.blocks {
		out = append(out, b.params()...)
	}
	return out
}
