package model

import (
	"testing"
	"time"
)

// tickClock returns a clock advancing 1ms per reading, so every stage gets a
// distinct, deterministic duration.
func tickClock() func() time.Duration {
	var n time.Duration
	return func() time.Duration {
		n += time.Millisecond
		return n
	}
}

func TestRecommendStagedMatchesRecommend(t *testing.T) {
	cfg := Config{CatalogSize: 500, Dim: 16, MaxSessionLen: 20, TopK: 5, Seed: 7}
	session := []int64{3, 1, 4, 1, 5}
	for _, name := range Names() {
		m, err := New(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := m.Recommend(session)
		got, tm := RecommendStaged(m, session, tickClock())
		if len(got) != len(want) {
			t.Fatalf("%s: staged returned %d results, want %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: staged result[%d] = %+v, want %+v", name, i, got[i], want[i])
			}
		}
		if tm.Encoder <= 0 {
			t.Fatalf("%s: no encoder time measured: %+v", name, tm)
		}
	}
}

func TestRecommendStagedSplitsStages(t *testing.T) {
	cfg := Config{CatalogSize: 500, Dim: 16, MaxSessionLen: 20, TopK: 5, Seed: 7}
	m, err := New("gru4rec", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(splitEncoder); !ok {
		t.Fatal("gru4rec must satisfy splitEncoder")
	}
	_, tm := RecommendStaged(m, []int64{1, 2, 3}, tickClock())
	if tm.EmbeddingLookup <= 0 || tm.Encoder <= 0 || tm.TopK <= 0 {
		t.Fatalf("split encoder must time all three stages: %+v", tm)
	}
}

func TestRecommendStagedEmptySession(t *testing.T) {
	cfg := Config{CatalogSize: 100, Dim: 8, MaxSessionLen: 10, TopK: 3, Seed: 1}
	for _, name := range Names() {
		m, err := New(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		recs, _ := RecommendStaged(m, nil, tickClock())
		if len(recs) != len(m.Recommend(nil)) {
			t.Fatalf("%s: empty-session mismatch", name)
		}
	}
}
