package model

import (
	"etude/internal/nn"
	"etude/internal/tensor"
	"etude/internal/topk"
)

func init() {
	Register("sine", func(cfg Config) (Model, error) { return NewSINE(cfg) })
}

// SINE (Tan et al. 2021) is the sparse-interest network: a pool of L concept
// prototypes is maintained; for each session the top few concepts are
// activated, items are softly assigned to the active concepts, one
// representation per active concept is aggregated, and an intention head
// fuses them into the session representation.
type SINE struct {
	base
	concepts  *tensor.Tensor // [numConcepts, d] prototype pool
	selfAttn  *nn.AdditiveAttention
	aggGate   *nn.Linear // intention-weight head, d → 1
	numActive int
}

const (
	sineConcepts = 8
	sineActive   = 2
)

// NewSINE builds a SINE model with an 8-prototype pool and 2 active
// concepts per session.
func NewSINE(cfg Config) (*SINE, error) {
	in := nn.NewInitializer(cfg.Seed)
	b, err := newBase(cfg, in)
	if err != nil {
		return nil, err
	}
	d := b.cfg.Dim
	return &SINE{
		base:      b,
		concepts:  in.Xavier(sineConcepts, d),
		selfAttn:  nn.NewAdditiveAttention(in, d),
		aggGate:   nn.NewLinear(in, d, 1),
		numActive: sineActive,
	}, nil
}

// Name implements Model.
func (m *SINE) Name() string { return "sine" }

// Recommend implements Model.
func (m *SINE) Recommend(session []int64) []topk.Result {
	return m.score(m.encode(session))
}

// Encode implements model.Encoder: it returns the session representation
// the MIPS stage scores against the catalog.
func (m *SINE) Encode(session []int64) *tensor.Tensor {
	return m.encode(session)
}

func (m *SINE) encode(session []int64) *tensor.Tensor {
	session, x := m.prepare(session)
	if x == nil {
		return m.zeroRep()
	}
	return m.encodeFrom(session, x)
}

// encodeFrom runs the architecture forward pass on the prepared embeddings
// (the encoder-forward stage of the trace decomposition).
func (m *SINE) encodeFrom(session []int64, x *tensor.Tensor) *tensor.Tensor {
	d := m.cfg.Dim

	// Session summary via self-attention (query = mean of embeddings).
	mean := tensor.New(d)
	for t := 0; t < len(session); t++ {
		mean.AddInPlace(x.Row(t))
	}
	mean.ScaleInPlace(1 / float32(len(session)))
	w := m.selfAttn.Weights(mean, x)
	w.Softmax()
	zu := nn.Apply(w, x)

	// Activate the top numActive concepts by prototype similarity.
	conceptScores := tensor.MatVec(m.concepts, zu)
	active := topk.SelectFromScores(conceptScores.Data(), m.numActive)

	// Per active concept: soft-assign items and aggregate one interest
	// embedding, then fuse with intention weights.
	rep := tensor.New(d)
	gateLogits := tensor.New(len(active))
	interests := tensor.New(len(active), d)
	for a, concept := range active {
		proto := m.concepts.Row(int(concept.Item))
		assign := tensor.MatVec(x, proto) // [seqLen] item-to-concept affinity
		assign.Softmax()
		interest := nn.Apply(assign, x)
		copy(interests.Data()[a*d:(a+1)*d], interest.Data())
		gateLogits.Data()[a] = m.aggGate.ForwardVec(interest).At(0)
	}
	gateLogits.Softmax()
	for a := 0; a < len(active); a++ {
		g := gateLogits.Data()[a]
		row := interests.Row(a)
		for c := 0; c < d; c++ {
			rep.Data()[c] += g * row.Data()[c]
		}
	}
	return rep
}

// CompiledRecommend implements JITCompilable.
func (m *SINE) CompiledRecommend() func(session []int64) []topk.Result {
	scorer := m.compiledScorer()
	return func(session []int64) []topk.Result {
		return scorer(m.encode(session))
	}
}

// Cost implements Model: attention summary (4·d² per item), prototype
// scoring (2·numConcepts·d) and per-active-concept assignment (2·L·d each).
func (m *SINE) Cost(sessionLen int) Cost {
	d := float64(m.cfg.Dim)
	l := float64(clampLen(sessionLen, m.cfg.MaxSessionLen))
	c := mipsCost(m.cfg.CatalogSize, m.cfg.Dim, m.cfg.TopK)
	c.EncoderFLOPs = l*4*d*d + 2*sineConcepts*d + sineActive*(4*l*d+2*d)
	c.KernelLaunches = 6 + 3*sineActive
	return c
}
