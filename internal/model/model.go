// Package model implements the ten session-based recommendation models
// benchmarked in the ETUDE paper: GRU4Rec, RepeatNet, GC-SAN, SR-GNN, NARM,
// SINE, STAMP, LightSANs, CORE and SASRec.
//
// All models share the same inference skeleton: the session's item ids are
// embedded, an architecture-specific encoder produces a d-dimensional session
// representation, and a maximum-inner-product search over the learned
// representations of all C catalog items yields the top-k recommendations.
// This makes inference O(C·(d + log k)) for every architecture — the paper's
// central complexity observation — with the encoders differing only in the
// C-independent term.
//
// Weights are randomly initialised (deterministically, from a seed): the
// paper measures inference performance only, never prediction quality, and
// random weights exercise exactly the same compute.
package model

import (
	"fmt"
	"math"
	"sort"

	"etude/internal/topk"
)

// DefaultTopK is the number of recommendations returned per request unless
// configured otherwise, matching the paper's "k is set to a small value".
const DefaultTopK = 21

// Config declares the shape of a model instance.
type Config struct {
	// CatalogSize is C, the number of distinct items.
	CatalogSize int
	// Dim is the embedding/hidden dimension d. If zero, it is derived from
	// CatalogSize with HeuristicDim.
	Dim int
	// MaxSessionLen truncates input sessions (most recent clicks win).
	MaxSessionLen int
	// TopK is the number of items to recommend.
	TopK int
	// Seed drives weight initialisation.
	Seed int64
	// Faithful selects the RecBole-faithful implementation for the four
	// models where the paper found performance bugs (RepeatNet's dense
	// operations on sparse matrices; SR-GNN's and GC-SAN's host round-trips).
	// When false, the fixed variants are used.
	Faithful bool

	// costOnly skips weight materialisation; set by EstimateCost. Such
	// models answer Cost and Config but must not serve Recommend.
	costOnly bool
}

// withDefaults fills derived and defaulted fields.
func (c Config) withDefaults() Config {
	if c.Dim == 0 {
		c.Dim = HeuristicDim(c.CatalogSize)
	}
	if c.MaxSessionLen == 0 {
		c.MaxSessionLen = 50
	}
	if c.TopK == 0 {
		c.TopK = DefaultTopK
	}
	return c
}

func (c Config) validate() error {
	if c.CatalogSize <= 0 {
		return fmt.Errorf("model: catalog size must be positive, got %d", c.CatalogSize)
	}
	if c.Dim < 0 || c.MaxSessionLen < 0 || c.TopK < 0 {
		return fmt.Errorf("model: negative config field in %+v", c)
	}
	return nil
}

// HeuristicDim returns the embedding dimension for a catalog of size c using
// the common "round up the fourth root of the category count" heuristic the
// paper adopts, rounded up to the next even number so multi-head attention
// always has an integral head size.
func HeuristicDim(c int) int {
	// The small epsilon absorbs float error for exact fourth powers
	// (e.g. 10000^0.25 evaluating to 10.000000000000002).
	d := int(math.Ceil(math.Pow(float64(c), 0.25) - 1e-9))
	if d < 2 {
		d = 2
	}
	if d%2 != 0 {
		d++
	}
	return d
}

// Cost is the analytic per-inference cost of a model, consumed by the
// accelerator cost model in internal/device. FLOP counts follow the usual
// 2·m·n·k convention for an [m,k]×[k,n] product.
//
// Memory traffic is split into SharedBytes (the catalog-embedding scan,
// which request batching amortises: one batch reads the catalog once) and
// PerRequestBytes (score materialisation, softmax and top-k passes over the
// C-length score vector, which every request in a batch pays individually).
type Cost struct {
	// Catalog and Dim echo the model configuration (C and d).
	Catalog int
	Dim     int
	// EncoderFLOPs covers the session encoder (independent of C).
	EncoderFLOPs float64
	// MIPSFLOPs covers the catalog scoring pass: 2·C·d.
	MIPSFLOPs float64
	// TopKOps approximates the heap maintenance: C·log2(k).
	TopKOps float64
	// SharedBytes is the batch-amortisable catalog scan traffic: C·d·4.
	SharedBytes float64
	// PerRequestBytes is the non-amortisable per-request traffic over the
	// score vector (materialise, softmax, select): scorePasses·C·4.
	PerRequestBytes float64
	// KernelLaunches approximates the number of device kernels per
	// inference; on accelerators each launch costs fixed overhead.
	KernelLaunches int
	// HostTransfers counts host↔device round trips forced by the
	// implementation (the SR-GNN / GC-SAN NumPy-in-inference bug). Zero for
	// healthy models and fixed variants.
	HostTransfers int
	// DenseOverheadFLOPs is extra work from dense operations on sparse data
	// (the RepeatNet bug). Zero for healthy models and fixed variants.
	DenseOverheadFLOPs float64
}

// scorePasses is the number of passes over the C-length score vector a
// PyTorch-style full_sort_predict makes per request: materialise the scores,
// soft-max them (read + write) and run top-k selection (two passes).
const scorePasses = 6

// TotalFLOPs returns all floating-point work per inference.
func (c Cost) TotalFLOPs() float64 {
	return c.EncoderFLOPs + c.MIPSFLOPs + c.DenseOverheadFLOPs
}

// Model is a deployable SBR model.
type Model interface {
	// Name returns the canonical model name (e.g. "gru4rec").
	Name() string
	// Config returns the resolved configuration.
	Config() Config
	// Recommend returns the top-k next-item recommendations for a session
	// of item ids, most recent click last.
	Recommend(session []int64) []topk.Result
	// Cost returns the analytic per-inference cost for a session of the
	// given length.
	Cost(sessionLen int) Cost
}

// JITCompilable is implemented by models whose execution can be compiled
// into a fused plan by internal/jit. LightSANs deliberately does not
// implement it (dynamic code paths), reproducing the paper's finding.
type JITCompilable interface {
	// CompiledRecommend returns an optimised closure equivalent to
	// Recommend. The closure may reuse internal buffers and must not be
	// called concurrently.
	CompiledRecommend() func(session []int64) []topk.Result
}

// Builder constructs a model from a config.
type Builder func(cfg Config) (Model, error)

var registry = map[string]Builder{}

// Register adds a model builder under name. It panics on duplicates, which
// indicates a programming error at init time.
func Register(name string, b Builder) {
	if _, dup := registry[name]; dup {
		panic("model: duplicate registration of " + name)
	}
	registry[name] = b
}

// New builds the named model.
func New(name string, cfg Config) (Model, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("model: unknown model %q (have %v)", name, Names())
	}
	return b(cfg)
}

// EstimateCost returns the analytic per-inference Cost of the named model
// under cfg without materialising any weights. Use this for capacity
// planning and simulation over very large catalogs, where instantiating the
// [C × d] embedding table (gigabytes for C = 2·10⁷) would be wasteful.
func EstimateCost(name string, cfg Config, sessionLen int) (Cost, error) {
	cfg.costOnly = true
	m, err := New(name, cfg)
	if err != nil {
		return Cost{}, err
	}
	return m.Cost(sessionLen), nil
}

// Names returns all registered model names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BrokenModels lists the four models for which the paper found
// implementation errors in RecBole and which Table I therefore excludes.
func BrokenModels() []string {
	return []string{"gcsan", "lightsans", "repeatnet", "srgnn"}
}

// TableIModels lists the six healthy models that appear in Table I.
func TableIModels() []string {
	return []string{"core", "gru4rec", "narm", "sasrec", "sine", "stamp"}
}

// truncate clips a session to the most recent maxLen clicks.
func truncate(session []int64, maxLen int) []int64 {
	if len(session) > maxLen {
		return session[len(session)-maxLen:]
	}
	return session
}

// mipsCost returns the catalog-scan components shared by all models.
func mipsCost(catalog, dim, k int) Cost {
	return Cost{
		Catalog:         catalog,
		Dim:             dim,
		MIPSFLOPs:       2 * float64(catalog) * float64(dim),
		TopKOps:         float64(catalog) * math.Log2(float64(max(k, 2))),
		SharedBytes:     float64(catalog) * float64(dim) * 4,
		PerRequestBytes: scorePasses * float64(catalog) * 4,
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
