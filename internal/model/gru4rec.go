package model

import (
	"etude/internal/nn"
	"etude/internal/tensor"
	"etude/internal/topk"
)

func init() {
	Register("gru4rec", func(cfg Config) (Model, error) { return NewGRU4Rec(cfg) })
}

// GRU4Rec is the classic recurrent SBR model (Tan et al. 2016): item
// embeddings are fed through a GRU and the final hidden state is the session
// representation.
type GRU4Rec struct {
	base
	gru  *nn.GRU
	proj *nn.Linear // hidden → embedding space
}

// NewGRU4Rec builds a GRU4Rec model.
func NewGRU4Rec(cfg Config) (*GRU4Rec, error) {
	in := nn.NewInitializer(cfg.Seed)
	b, err := newBase(cfg, in)
	if err != nil {
		return nil, err
	}
	d := b.cfg.Dim
	return &GRU4Rec{
		base: b,
		gru:  nn.NewGRU(in, d, d, 1),
		proj: nn.NewLinear(in, d, d),
	}, nil
}

// Name implements Model.
func (m *GRU4Rec) Name() string { return "gru4rec" }

// Recommend implements Model.
func (m *GRU4Rec) Recommend(session []int64) []topk.Result {
	return m.score(m.encode(session))
}

// Encode implements model.Encoder: it returns the session representation
// the MIPS stage scores against the catalog.
func (m *GRU4Rec) Encode(session []int64) *tensor.Tensor {
	return m.encode(session)
}

func (m *GRU4Rec) encode(session []int64) *tensor.Tensor {
	session, x := m.prepare(session)
	if x == nil {
		return m.zeroRep()
	}
	return m.encodeFrom(session, x)
}

// encodeFrom runs the architecture forward pass on the prepared embeddings
// (the encoder-forward stage of the trace decomposition).
func (m *GRU4Rec) encodeFrom(session []int64, x *tensor.Tensor) *tensor.Tensor {
	states := m.gru.Forward(x)
	return m.proj.ForwardVec(states.Row(len(session) - 1))
}

// CompiledRecommend implements JITCompilable: GRU weights are pre-transposed
// once and all per-step buffers are reused, eliminating the per-request
// allocations of the eager path.
func (m *GRU4Rec) CompiledRecommend() func(session []int64) []topk.Result {
	d := m.cfg.Dim
	cell := m.gru.Cells[0]
	wiT := tensor.Transpose(cell.Wi)
	whT := tensor.Transpose(cell.Wh)
	projT := tensor.Transpose(m.proj.Weight)
	h := tensor.New(d)
	hNext := tensor.New(d)
	gi := tensor.New(3 * d)
	gh := tensor.New(3 * d)
	rep := tensor.New(d)
	scorer := m.compiledScorer()
	return func(session []int64) []topk.Result {
		session = truncate(session, m.cfg.MaxSessionLen)
		if len(session) == 0 {
			rep.Zero()
			return scorer(rep)
		}
		h.Zero()
		for _, id := range session {
			cell.StepInto(hNext, m.emb.Weight.Row(int(id)), h, wiT, whT, gi, gh)
			h.CopyFrom(hNext)
		}
		tensor.MatVecInto(rep, projT, h)
		rep.AddInPlace(m.proj.Bias)
		return scorer(rep)
	}
}

// Cost implements Model. Per GRU step: input and hidden transforms are
// 2·d·3d FLOPs each; the projection adds 2·d².
func (m *GRU4Rec) Cost(sessionLen int) Cost {
	d := float64(m.cfg.Dim)
	l := float64(clampLen(sessionLen, m.cfg.MaxSessionLen))
	c := mipsCost(m.cfg.CatalogSize, m.cfg.Dim, m.cfg.TopK)
	c.EncoderFLOPs = l*12*d*d + 2*d*d
	c.KernelLaunches = int(l)*2 + 3
	return c
}

func clampLen(l, maxLen int) int {
	if l > maxLen {
		return maxLen
	}
	if l < 1 {
		return 1
	}
	return l
}
