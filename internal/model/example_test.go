package model_test

import (
	"fmt"

	"etude/internal/model"
)

// Build a model, get recommendations, and switch to the JIT-compiled
// execution plan.
func ExampleNew() {
	m, err := model.New("gru4rec", model.Config{CatalogSize: 1_000, Seed: 42, TopK: 3})
	if err != nil {
		panic(err)
	}
	session := []int64{17, 430, 99}
	recs := m.Recommend(session)
	fmt.Println("recommendations:", len(recs))

	compiled := m.(model.JITCompilable).CompiledRecommend()
	fast := compiled(session)
	fmt.Println("jit matches eager:", fast[0].Item == recs[0].Item)
	// Output:
	// recommendations: 3
	// jit matches eager: true
}

// Estimate deployment-relevant inference cost without materialising
// gigabytes of weights.
func ExampleEstimateCost() {
	cost, err := model.EstimateCost("sasrec", model.Config{CatalogSize: 20_000_000, Seed: 1}, 5)
	if err != nil {
		panic(err)
	}
	fmt.Println("catalog scan dominates:", cost.MIPSFLOPs > 100*cost.EncoderFLOPs)
	// Output: catalog scan dominates: true
}

// Ship weights through a byte archive: the deployment artifact the
// inference server loads from the object store.
func ExampleSaveWeights() {
	donor, _ := model.New("stamp", model.Config{CatalogSize: 500, Seed: 42})
	archive, err := model.SaveWeights(donor)
	if err != nil {
		panic(err)
	}
	replica, _ := model.New("stamp", model.Config{CatalogSize: 500, Seed: 7})
	if err := model.LoadWeights(replica, archive); err != nil {
		panic(err)
	}
	a := donor.Recommend([]int64{1, 2})
	b := replica.Recommend([]int64{1, 2})
	fmt.Println("replica matches donor:", a[0] == b[0])
	// Output: replica matches donor: true
}
