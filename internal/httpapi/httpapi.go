// Package httpapi defines the wire protocol between the load generator and
// the inference servers: JSON request/response bodies for the /predictions
// endpoint, the metric response headers the server reports (the paper's
// "inference server additionally communicates metrics like the inference
// duration via HTTP response headers"), and the readiness endpoint used by
// the cluster manager's probes.
package httpapi

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Paths and headers of the protocol.
const (
	// PredictPath serves model inference.
	PredictPath = "/predictions"
	// ReadyPath answers readiness probes once the model is loaded. A
	// draining server fails this probe (503) so routers stop sending new
	// work, even though the process is still alive and finishing requests.
	ReadyPath = "/ping"
	// LivePath answers liveness probes: 200 whenever the process is up and
	// able to serve HTTP, including while draining. Supervisors restart a
	// pod on liveness failure; they must NOT restart on readiness failure,
	// or every graceful drain would look like a crash.
	LivePath = "/live"
	// HeaderInferenceDuration carries the server-side model execution time
	// (excluding queueing and network) as a Go duration string.
	HeaderInferenceDuration = "X-Inference-Duration"
	// HeaderBatchSize carries the size of the batch the request was served
	// in (1 for unbatched CPU serving).
	HeaderBatchSize = "X-Batch-Size"
	// HeaderDegraded marks a response that relaxed the quality contract:
	// "1" when served by the cheap fallback responder instead of the model
	// (graceful degradation under overload), DegradedPartial when merged
	// from a strict subset of shard groups (partial-result serving).
	HeaderDegraded = "X-Degraded"
	// HeaderCoverage carries the fraction of shard groups that contributed
	// to a scatter-gather response (e.g. "0.7500" when 3 of 4 answered).
	// Full-coverage responses carry "1.0000"; unsharded servers omit it.
	HeaderCoverage = "X-Coverage"
	// DegradedPartial is the HeaderDegraded value for partial-coverage
	// responses.
	DegradedPartial = "partial"
	// HeaderRequestID carries the client-chosen request id. The server
	// echoes it on every response — including 429/4xx/degraded paths — so
	// chaos-run errors are attributable to a specific request trace, and
	// retried attempts of one logical request share one id.
	HeaderRequestID = "X-Request-ID"
	// HeaderTenant names the tenant (customer / model owner) a request is
	// billed to. The scheduler keys its per-tenant queues and WDRR weights
	// on it; the server echoes it on every response — including shed,
	// degraded and partial paths — mirroring HeaderRequestID, so per-tenant
	// client-side series stay attributable even for refused work. Absent
	// means the anonymous default tenant.
	HeaderTenant = "X-Tenant"
	// HeaderDeadline carries the request's absolute deadline as Unix
	// nanoseconds. It is absolute, not a relative timeout, so it survives
	// queueing and proxy hops unchanged, and retried attempts of one
	// logical request share one deadline — the client's SLO budget does
	// not reset per attempt. Servers drop work whose deadline has passed
	// (504) instead of computing a response nobody is waiting for.
	HeaderDeadline = "X-Deadline"
	// MetricsPath serves Prometheus text exposition: request/stage latency
	// summaries, outcome counters, queue depth and drain state.
	MetricsPath = "/metrics"
	// HeaderModelVersion carries the release version that served a
	// prediction (absent when the model did not come from a release store).
	// The canary controller's blast-radius accounting — "which responses did
	// the bad version touch" — reads this header client-side.
	HeaderModelVersion = "X-Model-Version"
	// DeployPath is the admin endpoint for hot-swapping the serving model:
	// POST {"version": N} loads, verifies and atomically swaps onto release
	// N (0 = the store's CURRENT pointer). A release failing checksum or
	// deserialisation answers 422 and never serves a single request.
	DeployPath = "/admin/deploy"
)

// StatusClientClosedRequest is the nginx-convention status for a request
// abandoned by the client before the server answered. It is never written
// to the wire successfully (the client is gone); it exists for logs and
// metrics.
const StatusClientClosedRequest = 499

// StatusError reports a non-2xx HTTP response, preserving the status code
// so clients can distinguish shed load (429/503, retryable) from client
// errors (4xx, not retryable).
type StatusError struct {
	Code int
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("httpapi: server returned HTTP %d", e.Code)
}

// Degraded reports whether a response relaxed the quality contract in any
// way (fallback responder or partial shard coverage).
func Degraded(h http.Header) bool { return h.Get(HeaderDegraded) != "" }

// SetCoverageHeader stamps the shard-coverage fraction on a response.
func SetCoverageHeader(h http.Header, frac float64) {
	h.Set(HeaderCoverage, strconv.FormatFloat(frac, 'f', 4, 64))
}

// Coverage parses the coverage header; ok is false when absent or
// malformed (unsharded responses have no coverage, not zero coverage).
func Coverage(h http.Header) (float64, bool) {
	v := h.Get(HeaderCoverage)
	if v == "" {
		return 0, false
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || f < 0 || f > 1 {
		return 0, false
	}
	return f, true
}

// PredictRequest asks for next-item recommendations for an ongoing session.
type PredictRequest struct {
	// SessionID identifies the visitor session (used for tracing; the
	// models are stateless and receive the full item history every call).
	SessionID int64 `json:"session_id"`
	// RequestID identifies this logical request across retries. Clients
	// usually send it in the X-Request-ID header; the body field is a
	// fallback for transports that strip headers.
	RequestID string `json:"request_id,omitempty"`
	// Tenant names the tenant the request is billed to. Clients usually
	// send it in the X-Tenant header; the body field is the same
	// stripped-header fallback RequestID has. Empty means the default
	// tenant.
	Tenant string `json:"tenant,omitempty"`
	// Items is the session's click history, most recent last.
	Items []int64 `json:"items"`
}

// DeployRequest asks a server to hot-swap onto a release version.
type DeployRequest struct {
	// Version is the release to deploy; 0 means the store's CURRENT pointer.
	Version int `json:"version"`
}

// DeployResponse reports the version serving after a deploy request.
type DeployResponse struct {
	Version int `json:"version"`
}

// PredictResponse carries the top-k recommendation list.
type PredictResponse struct {
	// Items are the recommended item ids, best first.
	Items []int64 `json:"items"`
	// Scores are the model scores aligned with Items.
	Scores []float32 `json:"scores"`
}

// Validate rejects malformed prediction requests.
func (r *PredictRequest) Validate() error {
	for _, it := range r.Items {
		if it < 0 {
			return fmt.Errorf("httpapi: negative item id %d", it)
		}
	}
	return nil
}

// WriteJSON encodes v with status code to w.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past WriteHeader can only be logged by the caller's
	// middleware; the connection is gone anyway.
	_ = json.NewEncoder(w).Encode(v)
}

// ReadJSON decodes the request body into v with a size cap.
func ReadJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, 1<<20))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("httpapi: decoding request: %w", err)
	}
	return nil
}

// SetDurationHeaders records server-side metrics on the response.
func SetDurationHeaders(h http.Header, inference time.Duration, batch int) {
	h.Set(HeaderInferenceDuration, inference.String())
	h.Set(HeaderBatchSize, fmt.Sprintf("%d", batch))
}

// InferenceDuration parses the inference-duration header from a response
// (zero when absent or malformed).
func InferenceDuration(h http.Header) time.Duration {
	d, err := time.ParseDuration(h.Get(HeaderInferenceDuration))
	if err != nil {
		return 0
	}
	return d
}

// SetDeadlineHeader stamps the request's absolute deadline. Zero deadlines
// are not written.
func SetDeadlineHeader(h http.Header, deadline time.Time) {
	if deadline.IsZero() {
		return
	}
	h.Set(HeaderDeadline, strconv.FormatInt(deadline.UnixNano(), 10))
}

// DeadlineHeader parses the deadline header; ok is false when the header
// is absent or malformed (such requests have no deadline, not an expired
// one).
func DeadlineHeader(h http.Header) (time.Time, bool) {
	v := h.Get(HeaderDeadline)
	if v == "" {
		return time.Time{}, false
	}
	ns, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ns <= 0 {
		return time.Time{}, false
	}
	return time.Unix(0, ns), true
}
