package httpapi

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestPredictRequestValidate(t *testing.T) {
	ok := PredictRequest{SessionID: 1, Items: []int64{0, 5, 99}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	empty := PredictRequest{}
	if err := empty.Validate(); err != nil {
		t.Fatalf("empty session must be valid (cold-start visitors): %v", err)
	}
	bad := PredictRequest{Items: []int64{3, -1}}
	if err := bad.Validate(); err == nil {
		t.Fatalf("negative item accepted")
	}
}

func TestReadJSON(t *testing.T) {
	var req PredictRequest
	if err := ReadJSON(strings.NewReader(`{"session_id":7,"items":[1,2,3]}`), &req); err != nil {
		t.Fatal(err)
	}
	if req.SessionID != 7 || len(req.Items) != 3 {
		t.Fatalf("decoded %+v", req)
	}
	if err := ReadJSON(strings.NewReader(`{`), &req); err == nil {
		t.Fatalf("malformed JSON accepted")
	}
}

func TestReadJSONSizeCapped(t *testing.T) {
	// Just over 1 MiB of items must fail rather than exhaust memory.
	var b strings.Builder
	b.WriteString(`{"items":[`)
	for b.Len() < 1<<20+100 {
		b.WriteString("1,")
	}
	b.WriteString("1]}")
	var req PredictRequest
	if err := ReadJSON(strings.NewReader(b.String()), &req); err == nil {
		t.Fatalf("oversized body accepted")
	}
}

func TestWriteJSON(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteJSON(rec, http.StatusOK, PredictResponse{Items: []int64{4}, Scores: []float32{0.5}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), `"items":[4]`) {
		t.Fatalf("body = %s", rec.Body.String())
	}
}

func TestDurationHeadersRoundTrip(t *testing.T) {
	h := http.Header{}
	SetDurationHeaders(h, 1500*time.Microsecond, 8)
	if got := InferenceDuration(h); got != 1500*time.Microsecond {
		t.Fatalf("duration = %v", got)
	}
	if got := h.Get(HeaderBatchSize); got != "8" {
		t.Fatalf("batch = %q", got)
	}
}

func TestDeadlineHeaderRoundTrip(t *testing.T) {
	h := http.Header{}
	want := time.Unix(1722945600, 123456789)
	SetDeadlineHeader(h, want)
	got, ok := DeadlineHeader(h)
	if !ok {
		t.Fatal("deadline header not parsed back")
	}
	if !got.Equal(want) {
		t.Fatalf("deadline = %v, want %v", got, want)
	}
}

func TestDeadlineHeaderAbsentOrMalformed(t *testing.T) {
	h := http.Header{}
	if _, ok := DeadlineHeader(h); ok {
		t.Fatal("absent header parsed as a deadline")
	}
	SetDeadlineHeader(h, time.Time{})
	if h.Get(HeaderDeadline) != "" {
		t.Fatal("zero deadline must not be written")
	}
	for _, bad := range []string{"not-a-number", "-5", "0", "1.5e9"} {
		h.Set(HeaderDeadline, bad)
		if _, ok := DeadlineHeader(h); ok {
			t.Fatalf("malformed header %q parsed as a deadline", bad)
		}
	}
}

func TestInferenceDurationMalformed(t *testing.T) {
	h := http.Header{}
	if got := InferenceDuration(h); got != 0 {
		t.Fatalf("missing header = %v, want 0", got)
	}
	h.Set(HeaderInferenceDuration, "not-a-duration")
	if got := InferenceDuration(h); got != 0 {
		t.Fatalf("malformed header = %v, want 0", got)
	}
}
