package nn

import (
	"math"
	"testing"
	"testing/quick"

	"etude/internal/tensor"
)

func TestInitializerDeterministic(t *testing.T) {
	a := NewInitializer(42).Xavier(4, 4)
	b := NewInitializer(42).Xavier(4, 4)
	if !a.AllClose(b, 0) {
		t.Fatalf("same seed must yield identical weights")
	}
	c := NewInitializer(43).Xavier(4, 4)
	if a.AllClose(c, 0) {
		t.Fatalf("different seeds should differ")
	}
}

func TestXavierRange(t *testing.T) {
	w := NewInitializer(1).Xavier(10, 10)
	limit := math.Sqrt(6.0 / 20.0)
	for _, v := range w.Data() {
		if math.Abs(float64(v)) > limit {
			t.Fatalf("Xavier value %v outside ±%v", v, limit)
		}
	}
}

func TestEmbeddingLookup(t *testing.T) {
	in := NewInitializer(2)
	e := NewEmbedding(in, 5, 3)
	out := e.Lookup([]int64{0, 4, 2})
	if out.Dim(0) != 3 || out.Dim(1) != 3 {
		t.Fatalf("lookup shape = %v", out.Shape())
	}
	if !out.Row(1).AllClose(e.Weight.Row(4), 0) {
		t.Fatalf("row mismatch")
	}
	one := e.LookupOne(2)
	if !one.AllClose(e.Weight.Row(2), 0) {
		t.Fatalf("LookupOne mismatch")
	}
}

func TestEmbeddingOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewEmbedding(NewInitializer(1), 3, 2).Lookup([]int64{3})
}

func TestLinearForward(t *testing.T) {
	l := &Linear{
		Weight: tensor.FromSlice([]float32{1, 0, 0, 1, 1, 1}, 3, 2),
		Bias:   tensor.FromSlice([]float32{10, 20}, 2),
	}
	x := tensor.FromSlice([]float32{1, 2, 3}, 1, 3)
	out := l.Forward(x)
	// [1*1+2*0+3*1, 1*0+2*1+3*1] + [10,20] = [4+10, 5+20]
	if out.At(0, 0) != 14 || out.At(0, 1) != 25 {
		t.Fatalf("Linear.Forward = %v", out.Data())
	}
	vec := l.ForwardVec(tensor.FromSlice([]float32{1, 2, 3}, 3))
	if vec.At(0) != 14 || vec.At(1) != 25 {
		t.Fatalf("Linear.ForwardVec = %v", vec.Data())
	}
}

func TestLinearNoBias(t *testing.T) {
	in := NewInitializer(3)
	l := NewLinearNoBias(in, 4, 2)
	if l.Bias != nil {
		t.Fatalf("NoBias layer has a bias")
	}
	out := l.Forward(tensor.New(1, 4))
	if out.At(0, 0) != 0 || out.At(0, 1) != 0 {
		t.Fatalf("zero input through biasless layer must be zero")
	}
}

func TestLayerNormForward(t *testing.T) {
	in := NewInitializer(4)
	ln := NewLayerNorm(in, 4)
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 10, 20, 30, 40}, 2, 4)
	out := ln.Forward(x)
	for i := 0; i < 2; i++ {
		if m := out.Row(i).Mean(); math.Abs(float64(m)) > 1e-4 {
			t.Fatalf("row %d mean = %v", i, m)
		}
	}
	// 1-D path
	v := ln.Forward(tensor.FromSlice([]float32{1, 2, 3, 4}, 4))
	if m := v.Mean(); math.Abs(float64(m)) > 1e-4 {
		t.Fatalf("vector mean = %v", m)
	}
}

func TestGRUCellStepProperties(t *testing.T) {
	in := NewInitializer(5)
	cell := NewGRUCell(in, 4, 6)
	x := in.Normal(1, 4)
	h0 := tensor.New(6)
	h1 := cell.Step(x, h0)
	if h1.Dim(0) != 6 {
		t.Fatalf("hidden size = %v", h1.Shape())
	}
	if h1.HasNaN() {
		t.Fatalf("NaN in GRU output")
	}
	// GRU hidden state is a convex combination of tanh output and previous
	// state, so every component must stay in (-1, 1) when h0 is zero.
	for _, v := range h1.Data() {
		if v <= -1 || v >= 1 {
			t.Fatalf("GRU state %v out of (-1,1)", v)
		}
	}
	// Determinism.
	h1b := cell.Step(x, h0)
	if !h1.AllClose(h1b, 0) {
		t.Fatalf("GRU step must be deterministic")
	}
}

func TestGRUCellStepIntoMatchesStep(t *testing.T) {
	in := NewInitializer(6)
	cell := NewGRUCell(in, 4, 5)
	x := in.Normal(1, 4)
	h := in.Normal(0.5, 5)
	want := cell.Step(x, h)

	wiT := tensor.Transpose(cell.Wi)
	whT := tensor.Transpose(cell.Wh)
	dst := tensor.New(5)
	cell.StepInto(dst, x, h, wiT, whT, tensor.New(15), tensor.New(15))
	if !dst.AllClose(want, 1e-6) {
		t.Fatalf("StepInto disagrees with Step: %v vs %v", dst.Data(), want.Data())
	}
}

func TestGRUForwardShapeAndStacking(t *testing.T) {
	in := NewInitializer(7)
	g := NewGRU(in, 3, 5, 2)
	x := in.Normal(1, 4, 3)
	out := g.Forward(x)
	if out.Dim(0) != 4 || out.Dim(1) != 5 {
		t.Fatalf("GRU output shape = %v", out.Shape())
	}
	if out.HasNaN() {
		t.Fatalf("NaN in stacked GRU output")
	}
}

func TestGRUSequenceDependsOnHistory(t *testing.T) {
	in := NewInitializer(8)
	g := NewGRU(in, 3, 4, 1)
	a := in.Normal(1, 3, 3)
	b := a.Clone()
	// Perturb the first element; the last hidden state must change.
	b.Set(b.At(0, 0)+1, 0, 0)
	ha := g.Forward(a).Row(2)
	hb := g.Forward(b).Row(2)
	if ha.AllClose(hb, 1e-9) {
		t.Fatalf("GRU must propagate history")
	}
}

func TestFeedForward(t *testing.T) {
	in := NewInitializer(9)
	ff := NewFeedForward(in, 4, 8)
	x := in.Normal(1, 2, 4)
	out := ff.Forward(x)
	if out.Dim(0) != 2 || out.Dim(1) != 4 {
		t.Fatalf("FFN shape = %v", out.Shape())
	}
}

func TestMultiHeadAttentionShape(t *testing.T) {
	in := NewInitializer(10)
	mha := NewMultiHeadAttention(in, 8, 2)
	x := in.Normal(1, 5, 8)
	out := mha.Forward(x, false)
	if out.Dim(0) != 5 || out.Dim(1) != 8 {
		t.Fatalf("MHA shape = %v", out.Shape())
	}
	if out.HasNaN() {
		t.Fatalf("NaN in MHA output")
	}
}

func TestMultiHeadAttentionCausalMask(t *testing.T) {
	in := NewInitializer(11)
	mha := NewMultiHeadAttention(in, 8, 2)
	x := in.Normal(1, 6, 8)
	causal := mha.Forward(x, true)

	// With a causal mask, output at position 0 must not depend on later
	// positions: perturb the last input row and compare row 0.
	y := x.Clone()
	y.Row(5).AddScalar(3)
	causal2 := mha.Forward(y, true)
	if !causal.Row(0).AllClose(causal2.Row(0), 1e-6) {
		t.Fatalf("causal attention leaked future positions")
	}
	// Without mask, it must depend on them.
	full := mha.Forward(x, false)
	full2 := mha.Forward(y, false)
	if full.Row(0).AllClose(full2.Row(0), 1e-9) {
		t.Fatalf("unmasked attention ignored other positions")
	}
}

func TestMultiHeadAttentionBadHeadsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewMultiHeadAttention(NewInitializer(1), 8, 3)
}

func TestLowRankAttentionShape(t *testing.T) {
	in := NewInitializer(12)
	lra := NewLowRankAttention(in, 8, 3)
	x := in.Normal(1, 7, 8)
	out := lra.Forward(x)
	if out.Dim(0) != 7 || out.Dim(1) != 8 {
		t.Fatalf("LowRank shape = %v", out.Shape())
	}
	if out.HasNaN() {
		t.Fatalf("NaN in low-rank attention output")
	}
}

func TestAdditiveAttention(t *testing.T) {
	in := NewInitializer(13)
	aa := NewAdditiveAttention(in, 4)
	states := in.Normal(1, 5, 4)
	q := in.Normal(1, 4)
	w := aa.Weights(q, states)
	if w.Dim(0) != 5 {
		t.Fatalf("weights shape = %v", w.Shape())
	}
	agg := Apply(w, states)
	if agg.Dim(0) != 4 {
		t.Fatalf("apply shape = %v", agg.Shape())
	}
	// Apply with one-hot weights must pick out the row.
	oneHot := tensor.New(5)
	oneHot.Set(1, 3)
	picked := Apply(oneHot, states)
	if !picked.AllClose(states.Row(3), 1e-6) {
		t.Fatalf("Apply with one-hot failed")
	}
}

func TestBuildSessionGraph(t *testing.T) {
	g := BuildSessionGraph([]int64{10, 20, 10, 30})
	if len(g.Nodes) != 3 {
		t.Fatalf("nodes = %v", g.Nodes)
	}
	if g.Nodes[0] != 10 || g.Nodes[1] != 20 || g.Nodes[2] != 30 {
		t.Fatalf("node order = %v", g.Nodes)
	}
	wantAlias := []int{0, 1, 0, 2}
	for i, a := range g.Alias {
		if a != wantAlias[i] {
			t.Fatalf("alias = %v", g.Alias)
		}
	}
	// Edges: 10→20, 20→10, 10→30. Out-degree of node 0 (item 10) is 2,
	// normalised to 0.5 each.
	if g.AOut.At(0, 1) != 0.5 || g.AOut.At(0, 2) != 0.5 {
		t.Fatalf("AOut row 0 = %v %v", g.AOut.At(0, 1), g.AOut.At(0, 2))
	}
	if g.AOut.At(1, 0) != 1 {
		t.Fatalf("AOut(1,0) = %v", g.AOut.At(1, 0))
	}
	// In-adjacency mirrors: node 0 receives from node 1.
	if g.AIn.At(0, 1) != 1 {
		t.Fatalf("AIn(0,1) = %v", g.AIn.At(0, 1))
	}
}

func TestBuildSessionGraphSingleItem(t *testing.T) {
	g := BuildSessionGraph([]int64{7})
	if len(g.Nodes) != 1 || g.AOut.At(0, 0) != 0 {
		t.Fatalf("single-click graph wrong: %+v", g)
	}
}

func TestGGNNPropagate(t *testing.T) {
	in := NewInitializer(14)
	cell := NewGGNNCell(in, 6)
	g := BuildSessionGraph([]int64{1, 2, 3, 1})
	h := in.Normal(1, len(g.Nodes), 6)
	out := cell.Propagate(g, h, 2)
	if out.Dim(0) != len(g.Nodes) || out.Dim(1) != 6 {
		t.Fatalf("GGNN shape = %v", out.Shape())
	}
	if out.HasNaN() {
		t.Fatalf("NaN in GGNN output")
	}
	// Zero steps returns the input unchanged.
	same := cell.Propagate(g, h, 0)
	if !same.AllClose(h, 0) {
		t.Fatalf("0-step propagation must be identity")
	}
}

// Property: session graph adjacency rows are valid sub-stochastic vectors
// (each row sums to 0 or 1) and Alias always points into Nodes.
func TestSessionGraphProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		session := make([]int64, len(raw))
		for i, r := range raw {
			session[i] = int64(r % 16)
		}
		g := BuildSessionGraph(session)
		for _, a := range g.Alias {
			if a < 0 || a >= len(g.Nodes) {
				return false
			}
		}
		for _, m := range []*tensor.Tensor{g.AIn, g.AOut} {
			n := m.Dim(1)
			for i := 0; i < m.Dim(0); i++ {
				var sum float64
				for j := 0; j < n; j++ {
					v := float64(m.At(i, j))
					if v < 0 {
						return false
					}
					sum += v
				}
				if sum != 0 && math.Abs(sum-1) > 1e-5 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestParamsEnumerations: every layer exposes its full parameter set in a
// stable order (the weight-serialisation contract).
func TestParamsEnumerations(t *testing.T) {
	in := NewInitializer(1)
	cases := []struct {
		name string
		src  ParamSource
		want int
	}{
		{"embedding", NewEmbedding(in, 4, 3), 1},
		{"linear", NewLinear(in, 3, 2), 2},
		{"linear-nobias", NewLinearNoBias(in, 3, 2), 1},
		{"layernorm", NewLayerNorm(in, 4), 2},
		{"grucell", NewGRUCell(in, 3, 4), 4},
		{"gru-2layer", NewGRU(in, 3, 4, 2), 8},
		{"ffn", NewFeedForward(in, 4, 8), 4},
		{"mha", NewMultiHeadAttention(in, 4, 2), 8},
		{"lowrank", NewLowRankAttention(in, 4, 2), 9},
		{"additive", NewAdditiveAttention(in, 4), 3},
		{"ggnn", NewGGNNCell(in, 4), 8},
	}
	for _, tc := range cases {
		params := tc.src.Params()
		if len(params) != tc.want {
			t.Errorf("%s: %d params, want %d", tc.name, len(params), tc.want)
		}
		for i, p := range params {
			if p == nil || p.Len() == 0 {
				t.Errorf("%s: param %d degenerate", tc.name, i)
			}
		}
	}
}
