package nn

import (
	"etude/internal/tensor"
)

// SessionGraph is the directed item-transition graph SR-GNN and GC-SAN build
// from a session: nodes are the unique items (in order of first occurrence)
// and an edge u→v exists for every consecutive click pair (u, v).
type SessionGraph struct {
	Nodes []int64 // unique item ids in first-occurrence order
	Alias []int   // Alias[t] = node index of the t-th click
	AIn   *tensor.Tensor
	AOut  *tensor.Tensor
}

// BuildSessionGraph constructs the session graph with row-normalised
// incoming and outgoing adjacency matrices, matching the RecBole
// `_get_slice` preprocessing.
func BuildSessionGraph(session []int64) *SessionGraph {
	index := make(map[int64]int, len(session))
	var nodes []int64
	alias := make([]int, len(session))
	for t, id := range session {
		ix, ok := index[id]
		if !ok {
			ix = len(nodes)
			index[id] = ix
			nodes = append(nodes, id)
		}
		alias[t] = ix
	}
	n := len(nodes)
	aOut := tensor.New(n, n)
	aIn := tensor.New(n, n)
	for t := 0; t+1 < len(session); t++ {
		u, v := alias[t], alias[t+1]
		aOut.Set(aOut.At(u, v)+1, u, v)
		aIn.Set(aIn.At(v, u)+1, v, u)
	}
	normalizeRows(aOut)
	normalizeRows(aIn)
	return &SessionGraph{Nodes: nodes, Alias: alias, AIn: aIn, AOut: aOut}
}

func normalizeRows(a *tensor.Tensor) {
	n := a.Dim(1)
	for i := 0; i < a.Dim(0); i++ {
		row := a.Data()[i*n : (i+1)*n]
		var sum float32
		for _, v := range row {
			sum += v
		}
		if sum == 0 {
			continue
		}
		inv := 1 / sum
		for j := range row {
			row[j] *= inv
		}
	}
}

// GGNNCell is the gated graph neural network propagation cell used by SR-GNN
// and GC-SAN: at each step every node aggregates messages from its in- and
// out-neighbourhoods and updates its state with a GRU-style gate.
type GGNNCell struct {
	WIn, WOut *Linear  // message transforms for the two edge directions
	Gate      *GRUCell // state update, input = concatenated messages (2*dim)
	dim       int
}

// NewGGNNCell returns an initialised GGNN cell over dim-dimensional states.
func NewGGNNCell(in *Initializer, dim int) *GGNNCell {
	return &GGNNCell{
		WIn:  NewLinear(in, dim, dim),
		WOut: NewLinear(in, dim, dim),
		Gate: NewGRUCell(in, 2*dim, dim),
		dim:  dim,
	}
}

// Propagate runs `steps` rounds of message passing over the session graph g,
// starting from node states h ([numNodes, dim]), and returns the final node
// states.
func (c *GGNNCell) Propagate(g *SessionGraph, h *tensor.Tensor, steps int) *tensor.Tensor {
	cur := h
	for s := 0; s < steps; s++ {
		msgIn := tensor.MatMul(g.AIn, c.WIn.Forward(cur))    // [n, dim]
		msgOut := tensor.MatMul(g.AOut, c.WOut.Forward(cur)) // [n, dim]
		next := tensor.New(cur.Dim(0), c.dim)
		for i := 0; i < cur.Dim(0); i++ {
			msg := tensor.Concat(msgIn.Row(i), msgOut.Row(i))
			hi := c.Gate.Step(msg, cur.Row(i))
			copy(next.Data()[i*c.dim:(i+1)*c.dim], hi.Data())
		}
		cur = next
	}
	return cur
}
