package nn

import (
	"fmt"

	"etude/internal/tensor"
)

// Embedding maps item ids to d-dimensional vectors. The weight matrix rows
// double as the catalog representation scored by the final MIPS stage.
type Embedding struct {
	Weight *tensor.Tensor // [numItems, dim]
}

// NewEmbedding returns an Xavier-initialised embedding table.
func NewEmbedding(in *Initializer, numItems, dim int) *Embedding {
	return &Embedding{Weight: in.Xavier(numItems, dim)}
}

// NumItems returns the vocabulary size.
func (e *Embedding) NumItems() int { return e.Weight.Dim(0) }

// Dim returns the embedding dimension.
func (e *Embedding) Dim() int { return e.Weight.Dim(1) }

// Lookup gathers the rows for ids into a new [len(ids), dim] tensor.
func (e *Embedding) Lookup(ids []int64) *tensor.Tensor {
	d := e.Dim()
	out := tensor.New(len(ids), d)
	for i, id := range ids {
		if id < 0 || id >= int64(e.NumItems()) {
			panic(fmt.Sprintf("nn: embedding id %d out of range [0,%d)", id, e.NumItems()))
		}
		copy(out.Data()[i*d:(i+1)*d], e.Weight.Row(int(id)).Data())
	}
	return out
}

// LookupOne gathers a single row into a new length-dim tensor.
func (e *Embedding) LookupOne(id int64) *tensor.Tensor {
	return e.Weight.Row(int(id)).Clone()
}

// Linear is a dense affine map y = xW + b.
type Linear struct {
	Weight *tensor.Tensor // [in, out]
	Bias   *tensor.Tensor // [out] or nil
}

// NewLinear returns an Xavier-initialised linear layer with bias.
func NewLinear(in *Initializer, inDim, outDim int) *Linear {
	return &Linear{Weight: in.Xavier(inDim, outDim), Bias: in.Zeros(outDim)}
}

// NewLinearNoBias returns an Xavier-initialised linear layer without bias.
func NewLinearNoBias(in *Initializer, inDim, outDim int) *Linear {
	return &Linear{Weight: in.Xavier(inDim, outDim)}
}

// Forward applies the layer to a [n, in] matrix, returning [n, out].
func (l *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := tensor.MatMul(x, l.Weight)
	if l.Bias != nil {
		out.AddRowVector(l.Bias)
	}
	return out
}

// ForwardVec applies the layer to a single length-in vector.
func (l *Linear) ForwardVec(x *tensor.Tensor) *tensor.Tensor {
	out := tensor.MatVec(tensor.Transpose(l.Weight), x)
	if l.Bias != nil {
		out.AddInPlace(l.Bias)
	}
	return out
}

// LayerNorm is layer normalisation with learned gain and bias.
type LayerNorm struct {
	Gamma *tensor.Tensor
	Beta  *tensor.Tensor
	Eps   float32
}

// NewLayerNorm returns a LayerNorm over vectors of length dim.
func NewLayerNorm(in *Initializer, dim int) *LayerNorm {
	return &LayerNorm{Gamma: in.Ones(dim), Beta: in.Zeros(dim), Eps: 1e-6}
}

// Forward normalises each row of x in a new tensor.
func (ln *LayerNorm) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	if out.Dims() == 1 {
		out.LayerNorm(ln.Gamma, ln.Beta, ln.Eps)
	} else {
		out.LayerNormRows(ln.Gamma, ln.Beta, ln.Eps)
	}
	return out
}

// GRUCell is a single gated recurrent unit step.
//
//	r = σ(x·Wir + h·Whr + br)
//	z = σ(x·Wiz + h·Whz + bz)
//	n = tanh(x·Win + r ⊙ (h·Whn) + bn)
//	h' = (1-z) ⊙ n + z ⊙ h
type GRUCell struct {
	Wi *tensor.Tensor // [in, 3*hidden]: reset | update | new
	Wh *tensor.Tensor // [hidden, 3*hidden]
	Bi *tensor.Tensor // [3*hidden]
	Bh *tensor.Tensor // [3*hidden]

	inDim, hidden int
}

// NewGRUCell returns an initialised GRU cell.
func NewGRUCell(in *Initializer, inDim, hidden int) *GRUCell {
	return &GRUCell{
		Wi:     in.Xavier(inDim, 3*hidden),
		Wh:     in.Xavier(hidden, 3*hidden),
		Bi:     in.Zeros(3 * hidden),
		Bh:     in.Zeros(3 * hidden),
		inDim:  inDim,
		hidden: hidden,
	}
}

// Hidden returns the hidden-state size.
func (g *GRUCell) Hidden() int { return g.hidden }

// Step computes the next hidden state for input x (length inDim) and
// previous hidden state h (length hidden).
func (g *GRUCell) Step(x, h *tensor.Tensor) *tensor.Tensor {
	gi := tensor.MatVec(tensor.Transpose(g.Wi), x)
	gi.AddInPlace(g.Bi)
	gh := tensor.MatVec(tensor.Transpose(g.Wh), h)
	gh.AddInPlace(g.Bh)
	return g.combine(gi, gh, h)
}

// StepInto is the pre-transposed fast path used by compiled plans: wiT and
// whT are [3*hidden, in] and [3*hidden, hidden] transposed weights, and the
// caller supplies scratch buffers to avoid allocation.
func (g *GRUCell) StepInto(dst, x, h, wiT, whT, giBuf, ghBuf *tensor.Tensor) {
	tensor.MatVecInto(giBuf, wiT, x)
	giBuf.AddInPlace(g.Bi)
	tensor.MatVecInto(ghBuf, whT, h)
	ghBuf.AddInPlace(g.Bh)
	hNew := g.combine(giBuf, ghBuf, h)
	dst.CopyFrom(hNew)
}

func (g *GRUCell) combine(gi, gh, h *tensor.Tensor) *tensor.Tensor {
	hd := g.hidden
	giD, ghD, hD := gi.Data(), gh.Data(), h.Data()
	out := tensor.New(hd)
	oD := out.Data()
	for j := 0; j < hd; j++ {
		r := sigmoid32(giD[j] + ghD[j])
		z := sigmoid32(giD[hd+j] + ghD[hd+j])
		n := tanh32(giD[2*hd+j] + r*ghD[2*hd+j])
		oD[j] = (1-z)*n + z*hD[j]
	}
	return out
}

// GRU runs one or more stacked GRU layers over a sequence.
type GRU struct {
	Cells []*GRUCell
}

// NewGRU returns numLayers stacked GRU cells; the first maps inDim→hidden,
// the rest hidden→hidden.
func NewGRU(in *Initializer, inDim, hidden, numLayers int) *GRU {
	cells := make([]*GRUCell, numLayers)
	for i := range cells {
		d := hidden
		if i == 0 {
			d = inDim
		}
		cells[i] = NewGRUCell(in, d, hidden)
	}
	return &GRU{Cells: cells}
}

// Forward runs the stack over x ([seqLen, inDim]) and returns all top-layer
// hidden states as [seqLen, hidden].
func (g *GRU) Forward(x *tensor.Tensor) *tensor.Tensor {
	seqLen := x.Dim(0)
	cur := x
	for _, cell := range g.Cells {
		states := tensor.New(seqLen, cell.Hidden())
		h := tensor.New(cell.Hidden())
		for t := 0; t < seqLen; t++ {
			h = cell.Step(cur.Row(t), h)
			copy(states.Data()[t*cell.Hidden():(t+1)*cell.Hidden()], h.Data())
		}
		cur = states
	}
	return cur
}

// FeedForward is the transformer position-wise two-layer MLP with GELU.
type FeedForward struct {
	W1, W2 *Linear
}

// NewFeedForward returns a dim → inner → dim feed-forward block.
func NewFeedForward(in *Initializer, dim, inner int) *FeedForward {
	return &FeedForward{W1: NewLinear(in, dim, inner), W2: NewLinear(in, inner, dim)}
}

// Forward applies the block row-wise to [n, dim].
func (f *FeedForward) Forward(x *tensor.Tensor) *tensor.Tensor {
	h := f.W1.Forward(x)
	h.GELU()
	return f.W2.Forward(h)
}

func sigmoid32(v float32) float32 {
	return 1 / (1 + exp32(-v))
}
