// Package nn provides the neural-network layers used by the session-based
// recommendation models in internal/model: embeddings, linear maps, GRUs,
// multi-head and low-rank self-attention, feed-forward blocks, layer
// normalisation and gated graph neural network cells.
//
// Layers hold their parameters as tensors and expose Forward methods that
// operate on single sessions (2-D [seqLen, dim] inputs); there is no training
// support because the paper — and this reproduction — measures inference
// latency with randomly initialised weights.
package nn

import (
	"math"
	"math/rand"

	"etude/internal/tensor"
)

// Initializer deterministically fills parameter tensors from a seeded PRNG.
// All model weights in the repository flow from an Initializer so that every
// experiment is reproducible from a single seed.
type Initializer struct {
	rng *rand.Rand
}

// NewInitializer returns an Initializer seeded with seed.
func NewInitializer(seed int64) *Initializer {
	return &Initializer{rng: rand.New(rand.NewSource(seed))}
}

// Xavier fills a new tensor with Glorot-uniform values, the RecBole default
// for embedding and projection weights.
func (in *Initializer) Xavier(shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	fanIn, fanOut := fans(shape)
	limit := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	d := t.Data()
	for i := range d {
		d[i] = (in.rng.Float32()*2 - 1) * limit
	}
	return t
}

// Normal fills a new tensor with N(0, std²) values.
func (in *Initializer) Normal(std float64, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	d := t.Data()
	for i := range d {
		d[i] = float32(in.rng.NormFloat64() * std)
	}
	return t
}

// Zeros returns a zero tensor (bias initialisation).
func (in *Initializer) Zeros(shape ...int) *tensor.Tensor {
	return tensor.New(shape...)
}

// Ones returns a tensor of ones (layer-norm gain initialisation).
func (in *Initializer) Ones(shape ...int) *tensor.Tensor {
	return tensor.Full(1, shape...)
}

func fans(shape []int) (fanIn, fanOut int) {
	switch len(shape) {
	case 1:
		return shape[0], shape[0]
	default:
		fanIn = shape[len(shape)-2]
		fanOut = shape[len(shape)-1]
		for _, d := range shape[:len(shape)-2] {
			fanIn *= d
			fanOut *= d
		}
		return fanIn, fanOut
	}
}
