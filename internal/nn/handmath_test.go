package nn

import (
	"math"
	"testing"

	"etude/internal/tensor"
)

// TestGRUCellHandComputed verifies the GRU recurrence against a fully
// hand-computed 1-dimensional case:
//
//	r = σ(x·Wir + h·Whr)   z = σ(x·Wiz + h·Whz)
//	n = tanh(x·Win + r·(h·Whn))   h' = (1−z)·n + z·h
func TestGRUCellHandComputed(t *testing.T) {
	cell := &GRUCell{
		// Layout: [reset | update | new] along the 3*hidden axis.
		Wi: tensor.FromSlice([]float32{0.5, -0.25, 1.0}, 1, 3),
		Wh: tensor.FromSlice([]float32{0.2, 0.3, -0.4}, 1, 3),
		Bi: tensor.New(3),
		Bh: tensor.New(3),
	}
	cell.inDim, cell.hidden = 1, 1

	x := tensor.FromSlice([]float32{2}, 1)
	h := tensor.FromSlice([]float32{0.5}, 1)
	got := cell.Step(x, h).At(0)

	sig := func(v float64) float64 { return 1 / (1 + math.Exp(-v)) }
	r := sig(2*0.5 + 0.5*0.2)   // σ(1.1)
	z := sig(2*-0.25 + 0.5*0.3) // σ(-0.35)
	n := math.Tanh(2*1.0 + r*(0.5*-0.4))
	want := (1-z)*n + z*0.5

	if math.Abs(float64(got)-want) > 1e-5 {
		t.Fatalf("GRU step = %v, hand-computed %v", got, want)
	}
}

// TestMHAUniformAttention: with zero-initialised Q and K projections every
// attention weight is uniform, so each output position is the mean of the
// projected values (plus the output projection).
func TestMHAUniformAttention(t *testing.T) {
	in := NewInitializer(1)
	const d = 4
	mha := &MultiHeadAttention{
		WQ:    &Linear{Weight: tensor.New(d, d), Bias: tensor.New(d)},
		WK:    &Linear{Weight: tensor.New(d, d), Bias: tensor.New(d)},
		WV:    &Linear{Weight: identity(d), Bias: tensor.New(d)},
		WO:    &Linear{Weight: identity(d), Bias: tensor.New(d)},
		Heads: 1,
		dim:   d,
	}
	x := in.Normal(1, 3, d)
	out := mha.Forward(x, false)

	mean := tensor.New(d)
	for i := 0; i < 3; i++ {
		mean.AddInPlace(x.Row(i))
	}
	mean.ScaleInPlace(1.0 / 3)
	for i := 0; i < 3; i++ {
		if !out.Row(i).AllClose(mean, 1e-5) {
			t.Fatalf("position %d: %v, want mean %v", i, out.Row(i).Data(), mean.Data())
		}
	}
}

// TestMHACausalFirstPositionSelfOnly: with a causal mask, position 0 can
// only attend to itself, so (with identity V/O) its output equals its own
// value regardless of Q/K.
func TestMHACausalFirstPositionSelfOnly(t *testing.T) {
	in := NewInitializer(2)
	const d = 4
	mha := &MultiHeadAttention{
		WQ:    NewLinear(in, d, d),
		WK:    NewLinear(in, d, d),
		WV:    &Linear{Weight: identity(d), Bias: tensor.New(d)},
		WO:    &Linear{Weight: identity(d), Bias: tensor.New(d)},
		Heads: 2,
		dim:   d,
	}
	x := in.Normal(1, 5, d)
	out := mha.Forward(x, true)
	if !out.Row(0).AllClose(x.Row(0), 1e-5) {
		t.Fatalf("causal position 0 = %v, want its own value %v", out.Row(0).Data(), x.Row(0).Data())
	}
}

// TestAdditiveAttentionZeroWeightsUniform: zero V vector gives zero scores
// everywhere, so softmaxed application is the uniform mean.
func TestAdditiveAttentionZeroV(t *testing.T) {
	in := NewInitializer(3)
	aa := &AdditiveAttention{
		W1: NewLinearNoBias(in, 4, 4),
		W2: NewLinearNoBias(in, 4, 4),
		V:  tensor.New(4),
	}
	states := in.Normal(1, 6, 4)
	w := aa.Weights(in.Normal(1, 4), states)
	for _, v := range w.Data() {
		if v != 0 {
			t.Fatalf("zero V must give zero scores, got %v", w.Data())
		}
	}
}

// TestLowRankAttentionSinglePosition: with one position, item-to-interest
// attention over any latents returns a convex combination of that single
// value row, so the output equals WO(WV(x)) row exactly when aggregation
// weights sum to 1.
func TestLowRankAttentionSinglePosition(t *testing.T) {
	in := NewInitializer(4)
	const d = 4
	lra := &LowRankAttention{
		WQ:      NewLinear(in, d, d),
		WK:      NewLinear(in, d, d),
		WV:      &Linear{Weight: identity(d), Bias: tensor.New(d)},
		WO:      &Linear{Weight: identity(d), Bias: tensor.New(d)},
		Latents: in.Xavier(3, d),
		dim:     d,
	}
	x := in.Normal(1, 1, d)
	out := lra.Forward(x)
	if !out.Row(0).AllClose(x.Row(0), 1e-5) {
		t.Fatalf("single-position low-rank attention = %v, want %v", out.Row(0).Data(), x.Row(0).Data())
	}
}

// TestGGNNSelfLoopFreeSingleNode: a single-node session graph has no edges,
// so both message aggregates are the zero vector and the GRU gate decides
// the update deterministically from zero input.
func TestGGNNSingleNodeNoMessages(t *testing.T) {
	in := NewInitializer(5)
	cell := NewGGNNCell(in, 4)
	g := BuildSessionGraph([]int64{42})
	h := in.Normal(1, 1, 4)
	got := cell.Propagate(g, h, 1)

	zeroMsg := tensor.New(8)
	want := cell.Gate.Step(zeroMsg, h.Row(0))
	if !got.Row(0).AllClose(want, 1e-6) {
		t.Fatalf("single node GGNN: %v, want gate(0, h) = %v", got.Row(0).Data(), want.Data())
	}
}

func identity(d int) *tensor.Tensor {
	m := tensor.New(d, d)
	for i := 0; i < d; i++ {
		m.Set(1, i, i)
	}
	return m
}
