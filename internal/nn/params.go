package nn

import "etude/internal/tensor"

// ParamSource exposes a module's learnable parameters in a deterministic
// order, which is the contract weight serialisation (internal/model's
// SaveWeights/LoadWeights) relies on: saving and loading walk the same
// parameter sequence.
type ParamSource interface {
	Params() []*tensor.Tensor
}

// Params implements ParamSource.
func (e *Embedding) Params() []*tensor.Tensor { return []*tensor.Tensor{e.Weight} }

// Params implements ParamSource. Biasless layers contribute one tensor.
func (l *Linear) Params() []*tensor.Tensor {
	if l.Bias == nil {
		return []*tensor.Tensor{l.Weight}
	}
	return []*tensor.Tensor{l.Weight, l.Bias}
}

// Params implements ParamSource.
func (ln *LayerNorm) Params() []*tensor.Tensor {
	return []*tensor.Tensor{ln.Gamma, ln.Beta}
}

// Params implements ParamSource.
func (g *GRUCell) Params() []*tensor.Tensor {
	return []*tensor.Tensor{g.Wi, g.Wh, g.Bi, g.Bh}
}

// Params implements ParamSource.
func (g *GRU) Params() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, c := range g.Cells {
		out = append(out, c.Params()...)
	}
	return out
}

// Params implements ParamSource.
func (f *FeedForward) Params() []*tensor.Tensor {
	return append(f.W1.Params(), f.W2.Params()...)
}

// Params implements ParamSource.
func (a *MultiHeadAttention) Params() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range []*Linear{a.WQ, a.WK, a.WV, a.WO} {
		out = append(out, l.Params()...)
	}
	return out
}

// Params implements ParamSource.
func (a *LowRankAttention) Params() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range []*Linear{a.WQ, a.WK, a.WV, a.WO} {
		out = append(out, l.Params()...)
	}
	return append(out, a.Latents)
}

// Params implements ParamSource.
func (a *AdditiveAttention) Params() []*tensor.Tensor {
	out := append(a.W1.Params(), a.W2.Params()...)
	return append(out, a.V)
}

// Params implements ParamSource.
func (c *GGNNCell) Params() []*tensor.Tensor {
	out := append(c.WIn.Params(), c.WOut.Params()...)
	return append(out, c.Gate.Params()...)
}
