package nn

import (
	"math"

	"etude/internal/tensor"
)

// MultiHeadAttention is standard scaled dot-product self-attention with h
// heads over a [seqLen, dim] input, as used by SASRec, GC-SAN and CORE.
type MultiHeadAttention struct {
	WQ, WK, WV, WO *Linear
	Heads          int
	dim            int
}

// NewMultiHeadAttention returns an initialised attention block. dim must be
// divisible by heads.
func NewMultiHeadAttention(in *Initializer, dim, heads int) *MultiHeadAttention {
	if heads <= 0 || dim%heads != 0 {
		panic("nn: dim must be divisible by heads")
	}
	return &MultiHeadAttention{
		WQ:    NewLinear(in, dim, dim),
		WK:    NewLinear(in, dim, dim),
		WV:    NewLinear(in, dim, dim),
		WO:    NewLinear(in, dim, dim),
		Heads: heads,
		dim:   dim,
	}
}

// Forward computes self-attention over x ([seqLen, dim]). If causal is true,
// position i attends only to positions ≤ i (the SASRec masking).
func (a *MultiHeadAttention) Forward(x *tensor.Tensor, causal bool) *tensor.Tensor {
	seqLen := x.Dim(0)
	q := a.WQ.Forward(x)
	k := a.WK.Forward(x)
	v := a.WV.Forward(x)

	headDim := a.dim / a.Heads
	scale := float32(1 / math.Sqrt(float64(headDim)))
	out := tensor.New(seqLen, a.dim)

	scores := tensor.New(seqLen, seqLen)
	for h := 0; h < a.Heads; h++ {
		off := h * headDim
		// scores[i][j] = q_i · k_j over this head's slice.
		for i := 0; i < seqLen; i++ {
			qi := q.Data()[i*a.dim+off : i*a.dim+off+headDim]
			srow := scores.Data()[i*seqLen : (i+1)*seqLen]
			for j := 0; j < seqLen; j++ {
				if causal && j > i {
					srow[j] = float32(math.Inf(-1))
					continue
				}
				kj := k.Data()[j*a.dim+off : j*a.dim+off+headDim]
				srow[j] = tensor.Dot(qi, kj) * scale
			}
		}
		scores.SoftmaxRows()
		// out slice = scores × v over this head's slice.
		for i := 0; i < seqLen; i++ {
			orow := out.Data()[i*a.dim+off : i*a.dim+off+headDim]
			srow := scores.Data()[i*seqLen : (i+1)*seqLen]
			for j := 0; j < seqLen; j++ {
				w := srow[j]
				if w == 0 {
					continue
				}
				vj := v.Data()[j*a.dim+off : j*a.dim+off+headDim]
				for c := range orow {
					orow[c] += w * vj[c]
				}
			}
		}
	}
	return a.WO.Forward(out)
}

// LowRankAttention implements the LightSANs-style low-rank decomposed
// self-attention: instead of L×L attention, each position attends over kLat
// learned latent interest vectors, reducing the quadratic term to L×kLat.
type LowRankAttention struct {
	WQ, WK, WV, WO *Linear
	Latents        *tensor.Tensor // [kLat, dim] learned latent interests
	dim            int
}

// NewLowRankAttention returns an initialised low-rank attention block with
// kLat latent interests.
func NewLowRankAttention(in *Initializer, dim, kLat int) *LowRankAttention {
	return &LowRankAttention{
		WQ:      NewLinear(in, dim, dim),
		WK:      NewLinear(in, dim, dim),
		WV:      NewLinear(in, dim, dim),
		WO:      NewLinear(in, dim, dim),
		Latents: in.Xavier(kLat, dim),
		dim:     dim,
	}
}

// Forward computes item-to-interest attention over x ([seqLen, dim]):
// the sequence is first aggregated into the kLat latent interests (interest-
// to-item attention), then each position attends over the aggregated
// interests (item-to-interest attention).
func (a *LowRankAttention) Forward(x *tensor.Tensor) *tensor.Tensor {
	k := a.WK.Forward(x)
	v := a.WV.Forward(x)

	// Interest aggregation: latents attend over the sequence.
	aggScores := tensor.MatMul(a.Latents, tensor.Transpose(k)) // [kLat, seqLen]
	aggScores.ScaleInPlace(float32(1 / math.Sqrt(float64(a.dim))))
	aggScores.SoftmaxRows()
	agg := tensor.MatMul(aggScores, v) // [kLat, dim]

	// Item-to-interest attention: each position attends over agg.
	q := a.WQ.Forward(x)
	scores := tensor.MatMul(q, tensor.Transpose(agg)) // [seqLen, kLat]
	scores.ScaleInPlace(float32(1 / math.Sqrt(float64(a.dim))))
	scores.SoftmaxRows()
	out := tensor.MatMul(scores, agg) // [seqLen, dim]
	return a.WO.Forward(out)
}

// AdditiveAttention is the NARM/STAMP-style attention: score for each
// position is vᵀ·σ(W1·q + W2·h_t) where q is a query vector and h_t the
// sequence states.
type AdditiveAttention struct {
	W1, W2 *Linear
	V      *tensor.Tensor // [dim]
}

// NewAdditiveAttention returns an initialised additive attention block.
func NewAdditiveAttention(in *Initializer, dim int) *AdditiveAttention {
	return &AdditiveAttention{
		W1: NewLinearNoBias(in, dim, dim),
		W2: NewLinearNoBias(in, dim, dim),
		V:  in.Xavier(dim),
	}
}

// Weights returns the unnormalised attention scores of query against each
// row of states ([seqLen, dim]).
func (a *AdditiveAttention) Weights(query *tensor.Tensor, states *tensor.Tensor) *tensor.Tensor {
	seqLen := states.Dim(0)
	wq := a.W1.ForwardVec(query)
	ws := a.W2.Forward(states)
	out := tensor.New(seqLen)
	for t := 0; t < seqLen; t++ {
		row := ws.Row(t).Clone()
		row.AddInPlace(wq)
		row.Sigmoid()
		out.Data()[t] = tensor.Dot(a.V.Data(), row.Data())
	}
	return out
}

// Apply returns the weighted sum of states by the (already normalised or
// unnormalised) weights w: Σ_t w_t · states_t.
func Apply(w, states *tensor.Tensor) *tensor.Tensor {
	dim := states.Dim(1)
	out := tensor.New(dim)
	oD := out.Data()
	for t := 0; t < states.Dim(0); t++ {
		wt := w.Data()[t]
		row := states.Data()[t*dim : (t+1)*dim]
		for c := range oD {
			oD[c] += wt * row[c]
		}
	}
	return out
}

func exp32(v float32) float32 {
	return float32(math.Exp(float64(v)))
}

func tanh32(v float32) float32 {
	return float32(math.Tanh(float64(v)))
}
