package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"etude/internal/httpapi"
	"etude/internal/metrics"
	"etude/internal/model"
	"etude/internal/server"
	"etude/internal/workload"
)

// fixedSessions yields the given sessions round-robin.
type fixedSessions struct {
	mu       sync.Mutex
	sessions []workload.Session
	i        int
}

func (f *fixedSessions) NextSession() workload.Session {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.sessions[f.i%len(f.sessions)]
	f.i++
	return s
}

func fastConfig(rate float64) Config {
	return Config{
		TargetRate:     rate,
		Duration:       500 * time.Millisecond,
		Tick:           50 * time.Millisecond,
		RequestTimeout: 200 * time.Millisecond,
		DrainTimeout:   time.Second,
	}
}

func TestConfigValidation(t *testing.T) {
	src := &fixedSessions{sessions: []workload.Session{{1}}}
	tgt := FuncTarget(func(ctx context.Context, r httpapi.PredictRequest) error { return nil })
	if _, err := Run(context.Background(), Config{TargetRate: 0, Duration: time.Second}, src, tgt); err == nil {
		t.Fatalf("zero rate accepted")
	}
	if _, err := Run(context.Background(), Config{TargetRate: 10, Duration: 0}, src, tgt); err == nil {
		t.Fatalf("zero duration accepted")
	}
	if _, err := Run(context.Background(), fastConfig(10), nil, tgt); err == nil {
		t.Fatalf("nil source accepted")
	}
	if _, err := Run(context.Background(), fastConfig(10), src, nil); err == nil {
		t.Fatalf("nil target accepted")
	}
}

func TestRunSendsRequests(t *testing.T) {
	var count atomic.Int64
	tgt := FuncTarget(func(ctx context.Context, r httpapi.PredictRequest) error {
		count.Add(1)
		return nil
	})
	src := &fixedSessions{sessions: []workload.Session{{1, 2, 3}}}
	res, err := Run(context.Background(), fastConfig(200), src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("run did not complete")
	}
	if count.Load() == 0 {
		t.Fatalf("no requests sent")
	}
	if res.Recorder.Sent() != count.Load() {
		t.Fatalf("sent %d but recorded %d", count.Load(), res.Recorder.Sent())
	}
	if res.Recorder.Overall().Count != count.Load() {
		t.Fatalf("latencies %d != sent %d", res.Recorder.Overall().Count, count.Load())
	}
}

// TestRampUp: the request rate in early ticks must be well below the rate
// in late ticks (time-proportional ramp-up).
func TestRampUp(t *testing.T) {
	tgt := FuncTarget(func(ctx context.Context, r httpapi.PredictRequest) error { return nil })
	src := &fixedSessions{sessions: []workload.Session{{1}}}
	cfg := Config{
		TargetRate:     400,
		Duration:       time.Second,
		Tick:           100 * time.Millisecond,
		RequestTimeout: 100 * time.Millisecond,
	}
	res, err := Run(context.Background(), cfg, src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	series := res.Recorder.Series()
	if len(series) < 8 {
		t.Fatalf("too few ticks recorded: %d", len(series))
	}
	early := series[0].Sent + series[1].Sent
	late := series[len(series)-2].Sent + series[len(series)-1].Sent
	if late < 3*early {
		t.Fatalf("no ramp-up: early %d vs late %d", early, late)
	}
}

// TestBackpressure: a target that answers slowly must trigger backpressure
// rather than unbounded request pileup.
func TestBackpressure(t *testing.T) {
	var inFlight, maxInFlight atomic.Int64
	tgt := FuncTarget(func(ctx context.Context, r httpapi.PredictRequest) error {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			prev := maxInFlight.Load()
			if cur <= prev || maxInFlight.CompareAndSwap(prev, cur) {
				break
			}
		}
		select {
		case <-time.After(150 * time.Millisecond): // slower than the tick
		case <-ctx.Done():
			return ctx.Err()
		}
		return nil
	})
	src := &fixedSessions{sessions: []workload.Session{{1}}}
	cfg := Config{
		TargetRate:     1000,
		Duration:       600 * time.Millisecond,
		Tick:           50 * time.Millisecond,
		RequestTimeout: time.Second,
		DrainTimeout:   2 * time.Second,
	}
	res, err := Run(context.Background(), cfg, src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backpressured == 0 {
		t.Fatalf("slow target produced no backpressure")
	}
	// Pending must never exceed the maximum per-tick rate.
	if maxInFlight.Load() > 1000*50/1000+5 {
		t.Fatalf("in-flight exploded to %d", maxInFlight.Load())
	}
}

// TestSessionOrderPreserved: the generator must never send click n+1 of a
// session before click n was answered, and prefixes must grow by one.
func TestSessionOrderPreserved(t *testing.T) {
	var mu sync.Mutex
	lastLen := map[int64]int{}
	violation := false
	tgt := FuncTarget(func(ctx context.Context, r httpapi.PredictRequest) error {
		mu.Lock()
		if prev, ok := lastLen[r.SessionID]; ok && len(r.Items) != prev+1 {
			violation = true
		}
		lastLen[r.SessionID] = len(r.Items)
		mu.Unlock()
		return nil
	})
	src := &fixedSessions{sessions: []workload.Session{{10, 20, 30, 40}}}
	if _, err := Run(context.Background(), fastConfig(100), src, tgt); err != nil {
		t.Fatal(err)
	}
	if violation {
		t.Fatalf("session prefix order violated")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lastLen) == 0 {
		t.Fatalf("no sessions replayed")
	}
}

// TestErrorsAbandonSessions: a failed click retires the session; the next
// request for that stream starts a new session.
func TestErrorsAbandonSession(t *testing.T) {
	var calls atomic.Int64
	tgt := FuncTarget(func(ctx context.Context, r httpapi.PredictRequest) error {
		calls.Add(1)
		if len(r.Items) >= 2 {
			t.Errorf("session continued after error: %v", r.Items)
		}
		return context.DeadlineExceeded
	})
	src := &fixedSessions{sessions: []workload.Session{{1, 2, 3}}}
	res, err := Run(context.Background(), fastConfig(50), src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recorder.Errors() != calls.Load() {
		t.Fatalf("errors %d != calls %d", res.Recorder.Errors(), calls.Load())
	}
}

func TestContextCancellation(t *testing.T) {
	tgt := FuncTarget(func(ctx context.Context, r httpapi.PredictRequest) error { return nil })
	src := &fixedSessions{sessions: []workload.Session{{1}}}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	cfg := Config{TargetRate: 10, Duration: 10 * time.Second, Tick: 50 * time.Millisecond}
	start := time.Now()
	res, err := Run(ctx, cfg, src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatalf("cancellation ignored")
	}
	if res.Completed {
		t.Fatalf("cancelled run must not report completion")
	}
}

// TestAgainstRealServer wires the full live path: HTTP load generator →
// inference server → model, asserting zero errors and sane latencies.
func TestAgainstRealServer(t *testing.T) {
	m, err := model.New("stamp", model.Config{CatalogSize: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(m, server.Options{Workers: 4, JIT: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	tgt := NewHTTPTarget(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := tgt.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}

	gen, err := workload.NewGenerator(workload.Spec{
		CatalogSize: 500, NumClicks: 1, AlphaLength: 2.2, AlphaClicks: 1.6, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), fastConfig(100), gen, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recorder.Errors() != 0 {
		t.Fatalf("%d errors against healthy server", res.Recorder.Errors())
	}
	snap := res.Recorder.Overall()
	if snap.Count == 0 {
		t.Fatalf("no latencies recorded")
	}
	if snap.P90 > 100*time.Millisecond {
		t.Fatalf("p90 %v against a local tiny model", snap.P90)
	}
}

// TestScheduleAccuracy: against an instant target, the generator must send
// approximately the planned ramp total: Σ_t rate·tick·(t+1)/ticks.
func TestScheduleAccuracy(t *testing.T) {
	tgt := FuncTarget(func(ctx context.Context, r httpapi.PredictRequest) error { return nil })
	src := &fixedSessions{sessions: []workload.Session{{1}}}
	cfg := Config{
		TargetRate:     300,
		Duration:       time.Second,
		Tick:           100 * time.Millisecond,
		RequestTimeout: time.Second,
	}
	res, err := Run(context.Background(), cfg, src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	planned := int64(0)
	ticks := int(cfg.Duration / cfg.Tick)
	for i := 1; i <= ticks; i++ {
		planned += int64(cfg.TargetRate * cfg.Tick.Seconds() * float64(i) / float64(ticks))
	}
	sent := res.Recorder.Sent()
	if sent < planned*8/10 || sent > planned*11/10 {
		t.Fatalf("sent %d, planned %d — schedule drifting", sent, planned)
	}
}

// TestHTTPTargetErrorStatuses: non-200 responses count as errors.
func TestHTTPTargetErrorStatuses(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	tgt := NewHTTPTarget(ts.URL)
	if err := tgt.Predict(context.Background(), httpapi.PredictRequest{Items: []int64{1}}); err == nil {
		t.Fatalf("500 response must be an error")
	}
}

// TestHTTPTargetUnreachable: connection failures surface as errors, not
// panics.
func TestHTTPTargetUnreachable(t *testing.T) {
	tgt := NewHTTPTarget("http://127.0.0.1:1")
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if err := tgt.Predict(ctx, httpapi.PredictRequest{Items: []int64{1}}); err == nil {
		t.Fatalf("unreachable host must error")
	}
}

func TestWaitReadyTimesOut(t *testing.T) {
	tgt := NewHTTPTarget("http://127.0.0.1:1")
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := tgt.WaitReady(ctx); err == nil {
		t.Fatalf("WaitReady against nothing must time out")
	}
}

// TestInferenceDurationCollection: the target harvests the server-side
// inference duration header, which must be at most the end-to-end latency.
func TestInferenceDurationCollection(t *testing.T) {
	m, err := model.New("core", model.Config{CatalogSize: 2_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(m, server.Options{Workers: 2, JIT: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	tgt := NewHTTPTarget(ts.URL)
	hist := metrics.NewHistogram()
	tgt.CollectInferenceDurations(hist)

	src := &fixedSessions{sessions: []workload.Session{{1, 2, 3}}}
	res, err := Run(context.Background(), fastConfig(100), src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if hist.Count() == 0 {
		t.Fatalf("no inference durations collected")
	}
	if hist.Count() != res.Recorder.Overall().Count {
		t.Fatalf("collected %d inference durations for %d responses", hist.Count(), res.Recorder.Overall().Count)
	}
	// Server-side time must not exceed end-to-end time (it is a component
	// of it); compare the medians with quantisation slack.
	if float64(hist.Quantile(0.5)) > float64(res.Recorder.Overall().P50)*1.1 {
		t.Fatalf("server p50 %v exceeds end-to-end p50 %v", hist.Quantile(0.5), res.Recorder.Overall().P50)
	}
}

// TestDrainTimeoutCountsStragglers pins the accounting contract of the
// drain window: requests still in flight when it expires are recorded as
// failures — they stay in the denominator instead of silently vanishing
// from the run's totals.
func TestDrainTimeoutCountsStragglers(t *testing.T) {
	var sent atomic.Int64
	tgt := FuncTarget(func(ctx context.Context, r httpapi.PredictRequest) error {
		sent.Add(1)
		<-ctx.Done() // hang until aborted: a server that never answers
		return ctx.Err()
	})
	src := &fixedSessions{sessions: []workload.Session{{1, 2, 3}}}
	cfg := Config{
		TargetRate:     100,
		Duration:       300 * time.Millisecond,
		Tick:           50 * time.Millisecond,
		RequestTimeout: time.Minute, // outlives the drain window
		DrainTimeout:   100 * time.Millisecond,
	}
	start := time.Now()
	res, err := Run(context.Background(), cfg, src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > cfg.Duration+cfg.DrainTimeout+2*time.Second {
		t.Fatalf("drain did not bound the run: took %v", elapsed)
	}
	if !res.Completed {
		t.Fatal("run should complete despite stragglers")
	}
	n := sent.Load()
	if n == 0 {
		t.Fatal("no requests issued")
	}
	if got := res.Recorder.Errors(); got != n {
		t.Fatalf("errors = %d, want every one of the %d hung requests", got, n)
	}
	// Every hung request is a timeout; at least one was swept by the drain
	// expiry itself (the others may have raced their own abort first).
	if res.Outcomes.Timeouts != n {
		t.Fatalf("timeouts = %d, want %d\n%v", res.Outcomes.Timeouts, n, res.Outcomes)
	}
	if res.Outcomes.Stragglers == 0 {
		t.Fatal("no stragglers recorded at drain expiry")
	}
	// The denominator is intact: sent == completed + errors.
	var series int64
	for _, ts := range res.Recorder.Series() {
		series += ts.Sent
	}
	if series != n {
		t.Fatalf("per-tick sent %d != issued %d", series, n)
	}
}

// TestRequestIDSharedAcrossRetries: every request carries a non-empty
// RequestID, and all retry attempts of one logical request reuse it — the
// server-side trace then aggregates a retried request into one span instead
// of splitting its attempts.
func TestRequestIDSharedAcrossRetries(t *testing.T) {
	var mu sync.Mutex
	attempts := map[string]int{}
	tgt := FuncTarget(func(ctx context.Context, r httpapi.PredictRequest) error {
		mu.Lock()
		defer mu.Unlock()
		if r.RequestID == "" {
			t.Error("request sent without a RequestID")
			return nil
		}
		attempts[r.RequestID]++
		if attempts[r.RequestID] == 1 {
			return &httpapi.StatusError{Code: http.StatusServiceUnavailable} // retryable
		}
		return nil
	})
	src := &fixedSessions{sessions: []workload.Session{{1, 2, 3}}}
	cfg := fastConfig(50)
	cfg.Retry = RetryConfig{MaxAttempts: 3, BaseBackoff: time.Millisecond, Budget: 10}
	if _, err := Run(context.Background(), cfg, src, tgt); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	retried := 0
	for _, n := range attempts {
		if n >= 2 {
			retried++
		}
	}
	if retried == 0 {
		t.Fatalf("no logical request was retried under the same RequestID: %v", attempts)
	}
}

// TestSLODeadlineSharedAcrossRetries: with Config.SLO set, every retry
// attempt of one logical request runs under the same absolute deadline —
// the budget does not reset per attempt.
func TestSLODeadlineSharedAcrossRetries(t *testing.T) {
	var mu sync.Mutex
	deadlines := map[string][]time.Time{}
	tgt := FuncTarget(func(ctx context.Context, r httpapi.PredictRequest) error {
		dl, ok := ctx.Deadline()
		if !ok {
			t.Error("attempt context carries no deadline despite SLO")
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		deadlines[r.RequestID] = append(deadlines[r.RequestID], dl)
		if len(deadlines[r.RequestID]) == 1 {
			return &httpapi.StatusError{Code: http.StatusServiceUnavailable}
		}
		return nil
	})
	src := &fixedSessions{sessions: []workload.Session{{1, 2, 3}}}
	cfg := fastConfig(50)
	cfg.SLO = 150 * time.Millisecond
	cfg.RequestTimeout = 10 * time.Second // so the SLO is the binding deadline
	cfg.Retry = RetryConfig{MaxAttempts: 3, BaseBackoff: time.Millisecond, Budget: 10}
	if _, err := Run(context.Background(), cfg, src, tgt); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	shared := 0
	for id, dls := range deadlines {
		for i := 1; i < len(dls); i++ {
			if !dls[i].Equal(dls[0]) {
				t.Fatalf("request %s: attempt %d deadline %v differs from first %v — budget reset per attempt", id, i+1, dls[i], dls[0])
			}
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("no logical request was retried; the shared-deadline property went unexercised")
	}
}

// TestBackoffClampedToBudget: when the retry backoff cannot fit inside the
// remaining SLO budget, the request is abandoned as budget-exhausted — no
// sleep past the deadline, no generic server-error accounting.
func TestBackoffClampedToBudget(t *testing.T) {
	var calls atomic.Int64
	tgt := FuncTarget(func(ctx context.Context, r httpapi.PredictRequest) error {
		calls.Add(1)
		return &httpapi.StatusError{Code: http.StatusServiceUnavailable} // always retryable
	})
	src := &fixedSessions{sessions: []workload.Session{{1}}}
	cfg := fastConfig(20)
	cfg.SLO = 50 * time.Millisecond
	// Backoff (200ms) always exceeds the 50ms budget: every failed request
	// must stop after its first attempt with a budget-exhausted outcome.
	cfg.Retry = RetryConfig{MaxAttempts: 5, BaseBackoff: 200 * time.Millisecond, MaxBackoff: 200 * time.Millisecond, Budget: 10}
	start := time.Now()
	res, err := Run(context.Background(), cfg, src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes.BudgetExhausted == 0 {
		t.Fatalf("no budget-exhausted outcomes recorded: %+v", res.Outcomes)
	}
	if res.Outcomes.Retries != 0 {
		t.Fatalf("retries = %d, want 0 (backoff can never fit the budget)", res.Outcomes.Retries)
	}
	if res.Outcomes.ServerErrors != 0 || res.Outcomes.Refused != 0 {
		t.Fatalf("budget exhaustion misrecorded as generic errors: %+v", res.Outcomes)
	}
	if res.Outcomes.Timeouts != res.Outcomes.BudgetExhausted {
		t.Fatalf("budget-exhausted requests must count as timeouts: %+v", res.Outcomes)
	}
	// The run must not have slept 200ms per request: total wall time stays
	// near the configured duration + drain, not attempts × backoff.
	if elapsed := time.Since(start); elapsed > cfg.Duration+cfg.DrainTimeout+time.Second {
		t.Fatalf("run took %v — backoff slept past the budget", elapsed)
	}
	if calls.Load() == 0 {
		t.Fatal("target never called")
	}
}

// TestHTTPTargetSetsDeadlineHeader: the wire target stamps the context
// deadline as the X-Deadline header.
func TestHTTPTargetSetsDeadlineHeader(t *testing.T) {
	var mu sync.Mutex
	var got []time.Time
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if dl, ok := httpapi.DeadlineHeader(r.Header); ok {
			mu.Lock()
			got = append(got, dl)
			mu.Unlock()
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	tgt := NewHTTPTarget(ts.URL)

	want := time.Now().Add(time.Minute)
	ctx, cancel := context.WithDeadline(context.Background(), want)
	defer cancel()
	if err := tgt.Predict(ctx, httpapi.PredictRequest{Items: []int64{1}}); err != nil {
		t.Fatal(err)
	}
	// No deadline on the context → no header.
	if err := tgt.Predict(context.Background(), httpapi.PredictRequest{Items: []int64{1}}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("X-Deadline stamped on %d of 2 requests, want exactly the one with a deadline", len(got))
	}
	if !got[0].Equal(want) {
		t.Fatalf("X-Deadline = %v, want %v", got[0], want)
	}
}

// TestHTTPTargetSetsRequestIDHeader: the wire target forwards the request id
// as the X-Request-ID header, and distinct clicks get distinct ids.
func TestHTTPTargetSetsRequestIDHeader(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]bool{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen[r.Header.Get(httpapi.HeaderRequestID)] = true
		mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	tgt := NewHTTPTarget(ts.URL)
	for i, id := range []string{"s1-0", "s1-1"} {
		req := httpapi.PredictRequest{SessionID: 1, RequestID: id, Items: []int64{int64(i)}}
		if err := tgt.Predict(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if !seen["s1-0"] || !seen["s1-1"] {
		t.Fatalf("X-Request-ID headers not received, saw %v", seen)
	}
}
