package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"etude/internal/httpapi"
	"etude/internal/workload"
)

// Every request of a tenant-labelled run carries the tenant — including
// all retry attempts of one logical request — and the recorder's per-tick
// series is labelled with it.
func TestTenantStampedOnRequestsAndRetries(t *testing.T) {
	var mu sync.Mutex
	attempts := map[string]int{}
	tenants := map[string]bool{}
	tgt := FuncTarget(func(ctx context.Context, r httpapi.PredictRequest) error {
		mu.Lock()
		defer mu.Unlock()
		tenants[r.Tenant] = true
		attempts[r.RequestID]++
		if attempts[r.RequestID] == 1 {
			return &httpapi.StatusError{Code: http.StatusServiceUnavailable} // retryable
		}
		return nil
	})
	src := &fixedSessions{sessions: []workload.Session{{1, 2, 3}}}
	cfg := fastConfig(50)
	cfg.Tenant = "acme"
	cfg.Retry = RetryConfig{MaxAttempts: 3, BaseBackoff: time.Millisecond, Budget: 10}
	res, err := Run(context.Background(), cfg, src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if len(tenants) != 1 || !tenants["acme"] {
		t.Fatalf("requests carried tenants %v, want only %q (retries included)", tenants, "acme")
	}
	mu.Unlock()
	series := res.Recorder.Series()
	if len(series) == 0 {
		t.Fatal("empty series")
	}
	for _, ts := range series {
		if ts.Tenant != "acme" {
			t.Fatalf("tick %d tenant = %q, want %q", ts.Tick, ts.Tenant, "acme")
		}
	}
}

// The HTTP target forwards the tenant as the X-Tenant header alongside the
// body copy.
func TestHTTPTargetSetsTenantHeader(t *testing.T) {
	var mu sync.Mutex
	headers := map[string]int{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		headers[r.Header.Get(httpapi.HeaderTenant)]++
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"items":[],"scores":[]}`))
	}))
	defer srv.Close()
	tgt := NewHTTPTarget(srv.URL)
	for i := 0; i < 3; i++ {
		req := httpapi.PredictRequest{SessionID: 1, Items: []int64{int64(i)}, Tenant: "acme"}
		if err := tgt.Predict(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	if err := tgt.Predict(context.Background(), httpapi.PredictRequest{SessionID: 2, Items: []int64{9}}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if headers["acme"] != 3 {
		t.Fatalf("X-Tenant=acme on %d requests, want 3 (saw %v)", headers["acme"], headers)
	}
	if headers[""] != 1 {
		t.Fatalf("untenanted request count = %d, want 1 with no header", headers[""])
	}
}
