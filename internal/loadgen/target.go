package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"etude/internal/httpapi"
	"etude/internal/metrics"
)

// HTTPTarget sends requests to an inference server over HTTP — the Go
// analogue of the paper's asynchronous Apache HttpComponents client. The
// transport keeps a large idle-connection pool so that a 1,000 req/s ramp
// does not exhaust ephemeral ports.
type HTTPTarget struct {
	baseURL string
	client  *http.Client
	// inference optionally collects the server-side inference durations
	// reported via the X-Inference-Duration response header (the paper:
	// "the inference server additionally communicates metrics like the
	// inference duration via HTTP response headers"). Set with
	// CollectInferenceDurations.
	inference *metrics.Histogram
}

// CollectInferenceDurations starts recording the server-reported inference
// duration of every successful response into h. Comparing h against the
// end-to-end latencies separates model time from queueing and network time.
func (t *HTTPTarget) CollectInferenceDurations(h *metrics.Histogram) {
	t.inference = h
}

// NewHTTPTarget returns a target for the server at baseURL (scheme + host +
// port, no path).
func NewHTTPTarget(baseURL string) *HTTPTarget {
	return NewHTTPTargetTransport(baseURL, nil)
}

// NewHTTPTargetTransport is NewHTTPTarget with a custom transport — the
// hook fault injection (internal/chaos) uses to wrap the wire with delays
// and drops. A nil transport uses the default pooled one.
func NewHTTPTargetTransport(baseURL string, transport http.RoundTripper) *HTTPTarget {
	if transport == nil {
		transport = &http.Transport{
			MaxIdleConns:        2048,
			MaxIdleConnsPerHost: 2048,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	return &HTTPTarget{
		baseURL: baseURL,
		client:  &http.Client{Transport: transport},
	}
}

// Predict implements Target.
func (t *HTTPTarget) Predict(ctx context.Context, req httpapi.PredictRequest) error {
	_, err := t.PredictMeta(ctx, req)
	return err
}

// PredictMeta implements MetaTarget: it reports the HTTP status class and
// the degraded flag alongside the error, so the load generator can count
// shed vs degraded vs healthy responses separately.
func (t *HTTPTarget) PredictMeta(ctx context.Context, req httpapi.PredictRequest) (Meta, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return Meta{}, fmt.Errorf("loadgen: encoding request: %w", err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, t.baseURL+httpapi.PredictPath, bytes.NewReader(body))
	if err != nil {
		return Meta{}, fmt.Errorf("loadgen: building request: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if req.RequestID != "" {
		httpReq.Header.Set(httpapi.HeaderRequestID, req.RequestID)
	}
	// The tenant label rides both the header (the scheduler's queue key)
	// and the body (already marshalled above), so it survives
	// header-stripping hops; retries reuse the same req and keep it.
	if req.Tenant != "" {
		httpReq.Header.Set(httpapi.HeaderTenant, req.Tenant)
	}
	// Deadline propagation: the context's absolute deadline (the SLO budget
	// when Config.SLO is set, the per-attempt timeout otherwise) rides the
	// X-Deadline header so the server can drop the request the moment it
	// can no longer be answered in time.
	if dl, ok := ctx.Deadline(); ok {
		httpapi.SetDeadlineHeader(httpReq.Header, dl)
	}
	resp, err := t.client.Do(httpReq)
	if err != nil {
		return Meta{}, fmt.Errorf("loadgen: request failed: %w", err)
	}
	defer resp.Body.Close()
	meta := Meta{Status: resp.StatusCode, Degraded: httpapi.Degraded(resp.Header)}
	meta.Coverage, _ = httpapi.Coverage(resp.Header)
	// Drain the body so the connection is reusable.
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return meta, fmt.Errorf("loadgen: draining response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return meta, &httpapi.StatusError{Code: resp.StatusCode}
	}
	if t.inference != nil {
		if d := httpapi.InferenceDuration(resp.Header); d > 0 {
			t.inference.Record(d)
		}
	}
	return meta, nil
}

// WaitReady polls the target's readiness endpoint until it answers 200 or
// the context expires — the client-side half of the Kubernetes readiness
// probe flow.
func (t *HTTPTarget) WaitReady(ctx context.Context) error {
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.baseURL+httpapi.ReadyPath, nil)
		if err != nil {
			return err
		}
		resp, err := t.client.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("loadgen: target never became ready: %w", ctx.Err())
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// FuncTarget adapts a function to the Target interface; used by tests and
// by in-process benchmarks that skip the network.
type FuncTarget func(ctx context.Context, req httpapi.PredictRequest) error

// Predict implements Target.
func (f FuncTarget) Predict(ctx context.Context, req httpapi.PredictRequest) error {
	return f(ctx, req)
}
