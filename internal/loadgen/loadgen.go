// Package loadgen implements ETUDE's backpressure-aware load generator
// (paper Algorithm 2). It replays synthetic sessions against an inference
// target, ramping the request rate up to a target throughput proportionally
// to elapsed time, spreading requests evenly within one-second ticks, and —
// crucially — tracking the number of pending requests: when backpressure
// builds up (pending ≥ current per-tick rate), the generator pauses instead
// of piling more work onto a struggling server, which lets experiments shut
// down gracefully and reveals the throughput threshold where a model fails.
//
// Like the paper's Java implementation, the generator respects session
// order: the next click of a session is only sent after the response to the
// previous click has been received.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"etude/internal/httpapi"
	"etude/internal/metrics"
	"etude/internal/workload"
)

// Target is the system under test.
type Target interface {
	// Predict sends one recommendation request and blocks until the
	// response arrives. A non-nil error counts as a failed request
	// (timeout or HTTP error).
	Predict(ctx context.Context, req httpapi.PredictRequest) error
}

// Meta describes one response beyond pass/fail.
type Meta struct {
	// Status is the HTTP status code (0 when the transport failed before a
	// response arrived).
	Status int
	// Degraded marks a response served by the server's fallback path.
	Degraded bool
	// Coverage is the shard-coverage fraction reported via X-Coverage
	// (0 when the response carried no coverage header; a value in (0, 1)
	// marks a partial-coverage response).
	Coverage float64
}

// MetaTarget is an optional Target extension reporting response metadata;
// the generator uses it to split outcomes by status class and to count
// degraded responses. Targets without it are treated as 200-or-error.
type MetaTarget interface {
	Target
	PredictMeta(ctx context.Context, req httpapi.PredictRequest) (Meta, error)
}

// Classify maps a request error to its metrics kind: deadline/cancellation
// and 504 (the server dropped the request because its propagated deadline
// expired in queue — the budget is spent either way) → timeout; 429/503
// and transport-level failures (connection refused, reset, injected drop)
// → refused; other 5xx → server; anything else → other.
func Classify(err error) metrics.ErrorKind {
	var se *httpapi.StatusError
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return metrics.KindTimeout
	case errors.As(err, &se):
		switch {
		case se.Code == http.StatusTooManyRequests || se.Code == http.StatusServiceUnavailable:
			return metrics.KindRefused
		case se.Code == http.StatusGatewayTimeout:
			return metrics.KindTimeout
		case se.Code >= 500:
			return metrics.KindServer
		default:
			return metrics.KindOther
		}
	default:
		return metrics.KindRefused
	}
}

// retryable reports whether a failed attempt is worth retrying: shed load
// and transient server failures are; timeouts (the client already waited a
// full deadline) and client errors are not.
func retryable(err error) bool {
	kind := Classify(err)
	return kind == metrics.KindRefused || kind == metrics.KindServer
}

// SessionSource supplies the synthetic sessions to replay.
type SessionSource interface {
	// NextSession returns the next session to replay. It must be safe for
	// use from the generator's single scheduling goroutine.
	NextSession() workload.Session
}

// Config controls one load-generation run.
type Config struct {
	// TargetRate is r: the request rate (per second) reached at the end of
	// the ramp-up.
	TargetRate float64
	// Duration is d: the total run length; the rate ramps from 0 to
	// TargetRate linearly across it.
	Duration time.Duration
	// Tick is the scheduling quantum (paper: one second). Shorter ticks
	// let tests run quickly.
	Tick time.Duration
	// RequestTimeout bounds each in-flight request attempt.
	RequestTimeout time.Duration
	// SLO, when positive, is the overall latency budget of one logical
	// request: an absolute deadline of first-attempt-start + SLO is shared
	// across all retry attempts (the budget does not reset per attempt),
	// propagated to the server in the X-Deadline header, and retries whose
	// backoff cannot fit inside the remaining budget are abandoned as
	// budget-exhausted instead of sleeping past the deadline. 0 disables
	// the overall budget (attempts are bounded by RequestTimeout alone).
	SLO time.Duration
	// Tenant labels every request with an X-Tenant value (header and body)
	// so the server's multi-tenant scheduler can key its queues, and labels
	// the recorder's per-tick series. Retries reuse the original request,
	// so all attempts of one logical request carry the same tenant. Empty
	// means anonymous (the scheduler's default queue).
	Tenant string
	// DrainTimeout bounds the wait for stragglers after the last tick.
	// Requests still outstanding when it expires are recorded as timeout
	// failures (never dropped from the denominator).
	DrainTimeout time.Duration
	// Retry configures client-side retries (zero value: no retries).
	Retry RetryConfig
}

// RetryConfig controls client-side retries of shed or transiently failed
// requests.
type RetryConfig struct {
	// MaxAttempts bounds total attempts per request including the first;
	// 0 or 1 disables retries.
	MaxAttempts int
	// BaseBackoff is the wait before the first retry, doubling per attempt
	// (default 10ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff growth (default 500ms).
	MaxBackoff time.Duration
	// Budget caps retries at Budget×(requests sent) run-wide — a token
	// bucket that stops retry storms from amplifying an outage (default
	// 0.2 when retries are enabled).
	Budget float64
	// Seed drives the backoff jitter.
	Seed int64
}

func (r RetryConfig) withDefaults() RetryConfig {
	if r.MaxAttempts < 1 {
		r.MaxAttempts = 1
	}
	if r.BaseBackoff <= 0 {
		r.BaseBackoff = 10 * time.Millisecond
	}
	if r.MaxBackoff <= 0 {
		r.MaxBackoff = 500 * time.Millisecond
	}
	if r.Budget <= 0 {
		r.Budget = 0.2
	}
	return r
}

// backoff returns the pre-jitter wait before retry number `retry` (1-based).
func (r RetryConfig) backoff(retry int) time.Duration {
	d := r.BaseBackoff
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= r.MaxBackoff {
			return r.MaxBackoff
		}
	}
	if d > r.MaxBackoff {
		d = r.MaxBackoff
	}
	return d
}

func (c Config) withDefaults() Config {
	if c.Tick <= 0 {
		c.Tick = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	c.Retry = c.Retry.withDefaults()
	return c
}

func (c Config) validate() error {
	if c.TargetRate <= 0 {
		return fmt.Errorf("loadgen: target rate must be positive, got %v", c.TargetRate)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("loadgen: duration must be positive, got %v", c.Duration)
	}
	return nil
}

// Result summarises a load-generation run.
type Result struct {
	// Recorder holds all latency and error measurements.
	Recorder *metrics.Recorder
	// Outcomes breaks responses down by status class, error kind, degraded
	// flag, retries and stragglers (a copy of Recorder.Outcomes()).
	Outcomes metrics.OutcomeCounts
	// Backpressured counts scheduling slots skipped because too many
	// requests were pending — the "graceful degradation" signal.
	Backpressured int64
	// Completed is true when the full duration elapsed (vs. context
	// cancellation).
	Completed bool
}

// Run executes Algorithm 2 against the target. It returns when the duration
// has elapsed and in-flight requests have drained (or ctx is cancelled).
func Run(ctx context.Context, cfg Config, src SessionSource, target Target) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if src == nil || target == nil {
		return nil, errors.New("loadgen: nil session source or target")
	}

	rec := metrics.NewRecorder()
	rec.SetTenant(cfg.Tenant)
	res := &Result{Recorder: rec}
	feed := newFeeder(src)
	var pending atomic.Int64
	var wg sync.WaitGroup

	// flightCtx parents every request attempt; cancelling it at drain
	// expiry aborts stragglers so they fail fast instead of leaking.
	flightCtx, abortFlights := context.WithCancel(context.Background())
	defer abortFlights()

	// Each logical request records its outcome exactly once: either its
	// goroutine finishes, or the drain sweep declares it a straggler —
	// whoever flips `recorded` first wins.
	type reqState struct {
		tick     int
		recorded atomic.Bool
	}
	var outMu sync.Mutex
	outstanding := make(map[*reqState]struct{})

	// Retry budget in fixed-point millionths: each original request earns
	// Budget tokens; each retry spends one.
	const tokenUnit = 1_000_000
	var retryTokens atomic.Int64
	earn := int64(cfg.Retry.Budget * tokenUnit)
	spendToken := func() bool {
		for {
			cur := retryTokens.Load()
			if cur < tokenUnit {
				return false
			}
			if retryTokens.CompareAndSwap(cur, cur-tokenUnit) {
				return true
			}
		}
	}
	var jitterMu sync.Mutex
	jitterRng := rand.New(rand.NewSource(cfg.Retry.Seed))
	jitter := func(d time.Duration) time.Duration {
		jitterMu.Lock()
		defer jitterMu.Unlock()
		return time.Duration(jitterRng.Int63n(int64(d)/2 + 1))
	}
	predictMeta := func(ctx context.Context, req httpapi.PredictRequest) (Meta, error) {
		if mt, ok := target.(MetaTarget); ok {
			return mt.PredictMeta(ctx, req)
		}
		if err := target.Predict(ctx, req); err != nil {
			return Meta{}, err
		}
		return Meta{Status: http.StatusOK}, nil
	}

	ticks := int(cfg.Duration / cfg.Tick)
	if ticks < 1 {
		ticks = 1
	}
	start := time.Now()

mainLoop:
	for t := 0; t < ticks; t++ { // Main tick loop
		select {
		case <-ctx.Done():
			break mainLoop
		default:
		}
		tickEnd := start.Add(time.Duration(t+1) * cfg.Tick)
		// TIMEPROP_RAMPUP: the per-tick rate grows proportionally to the
		// time spent relative to the benchmark duration.
		frac := float64(t+1) / float64(ticks)
		rc := int(cfg.TargetRate * cfg.Tick.Seconds() * frac)
		if rc < 1 {
			rc = 1
		}

	requestLoop:
		for i := 0; i < rc; i++ { // Request generation loop
			// Backpressure handling: wait while too much work is pending.
			for pending.Load() >= int64(rc) {
				if time.Now().After(tickEnd) {
					res.Backpressured += int64(rc - i)
					continue mainLoop
				}
				select {
				case <-ctx.Done():
					break mainLoop
				case <-time.After(time.Millisecond):
				}
			}
			if time.Now().After(tickEnd) {
				res.Backpressured += int64(rc - i)
				continue mainLoop
			}

			req, done := feed.next()
			req.Tenant = cfg.Tenant
			pending.Add(1)
			rec.RecordSent(t)
			retryTokens.Add(earn)
			st := &reqState{tick: t}
			outMu.Lock()
			outstanding[st] = struct{}{}
			outMu.Unlock()
			wg.Add(1)
			go func(tick int) { // SCHEDULE_REQUEST_ASYNC
				defer wg.Done()
				defer pending.Add(-1)
				defer func() {
					outMu.Lock()
					delete(outstanding, st)
					outMu.Unlock()
				}()
				reqStart := time.Now()
				// The SLO budget is one absolute deadline for the whole
				// logical request: every retry attempt runs under it, so
				// attempt N inherits whatever budget attempts 1..N-1 left.
				overall := flightCtx
				if cfg.SLO > 0 {
					var cancelSLO context.CancelFunc
					overall, cancelSLO = context.WithDeadline(flightCtx, reqStart.Add(cfg.SLO))
					defer cancelSLO()
				}
				var meta Meta
				var err error
				budgetExhausted := false
				for attempt := 1; ; attempt++ {
					rctx, cancel := context.WithTimeout(overall, cfg.RequestTimeout)
					meta, err = predictMeta(rctx, req)
					cancel()
					if err == nil || flightCtx.Err() != nil ||
						attempt >= cfg.Retry.MaxAttempts || !retryable(err) {
						break
					}
					if overall.Err() != nil {
						// The SLO deadline passed during the attempt.
						budgetExhausted = cfg.SLO > 0
						break
					}
					backoff := cfg.Retry.backoff(attempt)
					sleep := backoff + jitter(backoff)
					if dl, ok := overall.Deadline(); ok && time.Until(dl) <= sleep {
						// Sleeping the backoff would outlive the budget: the
						// next attempt could never be answered in time, so
						// abandon now — before spending a retry token — and
						// record the truth (out of time, not server error).
						budgetExhausted = cfg.SLO > 0
						break
					}
					if !spendToken() {
						break
					}
					rec.RecordRetry(tick)
					select {
					case <-time.After(sleep):
					case <-overall.Done():
					}
				}
				if !st.recorded.CompareAndSwap(false, true) {
					return // the drain sweep already counted this straggler
				}
				if meta.Status != 0 {
					rec.RecordStatus(tick, meta.Status)
				}
				switch {
				case err != nil && budgetExhausted:
					rec.RecordBudgetExhausted(tick)
				case err != nil:
					rec.RecordErrorKind(tick, Classify(err))
				case meta.Coverage > 0 && meta.Coverage < 1:
					// Partial-coverage success: a distinct outcome from the
					// fallback-responder degradation below — the model ran,
					// just over less catalog.
					rec.RecordPartial(tick, time.Since(reqStart), meta.Coverage)
				case meta.Degraded:
					rec.RecordDegraded(tick, time.Since(reqStart))
				default:
					rec.RecordLatency(tick, time.Since(reqStart))
				}
				done(err == nil)
			}(t)

			// Evenly spread the remaining requests over the rest of the tick.
			if left := rc - i - 1; left > 0 {
				if remaining := time.Until(tickEnd); remaining > 0 {
					select {
					case <-ctx.Done():
						break requestLoop
					case <-time.After(remaining / time.Duration(left+1)):
					}
				}
			}
		}
		// Wait until the next tick boundary.
		if remaining := time.Until(tickEnd); remaining > 0 {
			select {
			case <-ctx.Done():
				break mainLoop
			case <-time.After(remaining):
			}
		}
	}
	res.Completed = ctx.Err() == nil

	// Graceful shutdown: wait for stragglers, bounded. Requests still
	// outstanding when the drain window expires are aborted and recorded
	// as timeout failures — they were sent, so they stay in the
	// denominator instead of silently vanishing.
	drained := make(chan struct{})
	go func() {
		wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(cfg.DrainTimeout):
		abortFlights()
		outMu.Lock()
		for st := range outstanding {
			if st.recorded.CompareAndSwap(false, true) {
				rec.RecordStraggler(st.tick)
			}
		}
		outMu.Unlock()
	}
	res.Outcomes = rec.Outcomes()
	return res, nil
}

// feeder hands out requests while preserving session order: a session's
// next click is only eligible after the previous click was answered.
type feeder struct {
	mu       sync.Mutex
	src      SessionSource
	eligible []*cursor
	nextID   int64
}

type cursor struct {
	id      int64
	session workload.Session
	pos     int
}

func newFeeder(src SessionSource) *feeder {
	return &feeder{src: src}
}

// next returns the request for some session's next click and a completion
// callback that re-arms the session (or retires it after its last click or
// a failure).
func (f *feeder) next() (httpapi.PredictRequest, func(ok bool)) {
	f.mu.Lock()
	var c *cursor
	if n := len(f.eligible); n > 0 {
		c = f.eligible[n-1]
		f.eligible = f.eligible[:n-1]
	} else {
		f.nextID++
		c = &cursor{id: f.nextID, session: f.src.NextSession()}
		for len(c.session) == 0 { // skip degenerate sessions
			c.session = f.src.NextSession()
		}
	}
	f.mu.Unlock()

	req := httpapi.PredictRequest{
		SessionID: c.id,
		// One logical request = one trace: the retry loop reuses this req
		// verbatim, so every attempt carries the same id and the server-side
		// trace aggregates across attempts instead of splitting them.
		RequestID: fmt.Sprintf("s%d-%d", c.id, c.pos),
		Items:     append([]int64(nil), c.session[:c.pos+1]...),
	}
	done := func(ok bool) {
		f.mu.Lock()
		defer f.mu.Unlock()
		c.pos++
		// Only continue the session on success (the paper's generator only
		// sends the next interaction after receiving a response; a timed
		// out session is abandoned like a frustrated visitor).
		if ok && c.pos < len(c.session) {
			f.eligible = append(f.eligible, c)
		}
	}
	return req, done
}
