// Package loadgen implements ETUDE's backpressure-aware load generator
// (paper Algorithm 2). It replays synthetic sessions against an inference
// target, ramping the request rate up to a target throughput proportionally
// to elapsed time, spreading requests evenly within one-second ticks, and —
// crucially — tracking the number of pending requests: when backpressure
// builds up (pending ≥ current per-tick rate), the generator pauses instead
// of piling more work onto a struggling server, which lets experiments shut
// down gracefully and reveals the throughput threshold where a model fails.
//
// Like the paper's Java implementation, the generator respects session
// order: the next click of a session is only sent after the response to the
// previous click has been received.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"etude/internal/httpapi"
	"etude/internal/metrics"
	"etude/internal/workload"
)

// Target is the system under test.
type Target interface {
	// Predict sends one recommendation request and blocks until the
	// response arrives. A non-nil error counts as a failed request
	// (timeout or HTTP error).
	Predict(ctx context.Context, req httpapi.PredictRequest) error
}

// SessionSource supplies the synthetic sessions to replay.
type SessionSource interface {
	// NextSession returns the next session to replay. It must be safe for
	// use from the generator's single scheduling goroutine.
	NextSession() workload.Session
}

// Config controls one load-generation run.
type Config struct {
	// TargetRate is r: the request rate (per second) reached at the end of
	// the ramp-up.
	TargetRate float64
	// Duration is d: the total run length; the rate ramps from 0 to
	// TargetRate linearly across it.
	Duration time.Duration
	// Tick is the scheduling quantum (paper: one second). Shorter ticks
	// let tests run quickly.
	Tick time.Duration
	// RequestTimeout bounds each in-flight request.
	RequestTimeout time.Duration
	// DrainTimeout bounds the wait for stragglers after the last tick.
	DrainTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Tick <= 0 {
		c.Tick = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	return c
}

func (c Config) validate() error {
	if c.TargetRate <= 0 {
		return fmt.Errorf("loadgen: target rate must be positive, got %v", c.TargetRate)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("loadgen: duration must be positive, got %v", c.Duration)
	}
	return nil
}

// Result summarises a load-generation run.
type Result struct {
	// Recorder holds all latency and error measurements.
	Recorder *metrics.Recorder
	// Backpressured counts scheduling slots skipped because too many
	// requests were pending — the "graceful degradation" signal.
	Backpressured int64
	// Completed is true when the full duration elapsed (vs. context
	// cancellation).
	Completed bool
}

// Run executes Algorithm 2 against the target. It returns when the duration
// has elapsed and in-flight requests have drained (or ctx is cancelled).
func Run(ctx context.Context, cfg Config, src SessionSource, target Target) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if src == nil || target == nil {
		return nil, errors.New("loadgen: nil session source or target")
	}

	rec := metrics.NewRecorder()
	res := &Result{Recorder: rec}
	feed := newFeeder(src)
	var pending atomic.Int64
	var wg sync.WaitGroup

	ticks := int(cfg.Duration / cfg.Tick)
	if ticks < 1 {
		ticks = 1
	}
	start := time.Now()

mainLoop:
	for t := 0; t < ticks; t++ { // Main tick loop
		select {
		case <-ctx.Done():
			break mainLoop
		default:
		}
		tickEnd := start.Add(time.Duration(t+1) * cfg.Tick)
		// TIMEPROP_RAMPUP: the per-tick rate grows proportionally to the
		// time spent relative to the benchmark duration.
		frac := float64(t+1) / float64(ticks)
		rc := int(cfg.TargetRate * cfg.Tick.Seconds() * frac)
		if rc < 1 {
			rc = 1
		}

	requestLoop:
		for i := 0; i < rc; i++ { // Request generation loop
			// Backpressure handling: wait while too much work is pending.
			for pending.Load() >= int64(rc) {
				if time.Now().After(tickEnd) {
					res.Backpressured += int64(rc - i)
					continue mainLoop
				}
				select {
				case <-ctx.Done():
					break mainLoop
				case <-time.After(time.Millisecond):
				}
			}
			if time.Now().After(tickEnd) {
				res.Backpressured += int64(rc - i)
				continue mainLoop
			}

			req, done := feed.next()
			pending.Add(1)
			rec.RecordSent(t)
			wg.Add(1)
			go func(tick int) { // SCHEDULE_REQUEST_ASYNC
				defer wg.Done()
				defer pending.Add(-1)
				rctx, cancel := context.WithTimeout(context.Background(), cfg.RequestTimeout)
				defer cancel()
				reqStart := time.Now()
				err := target.Predict(rctx, req)
				if err != nil {
					rec.RecordError(tick)
				} else {
					rec.RecordLatency(tick, time.Since(reqStart))
				}
				done(err == nil)
			}(t)

			// Evenly spread the remaining requests over the rest of the tick.
			if left := rc - i - 1; left > 0 {
				if remaining := time.Until(tickEnd); remaining > 0 {
					select {
					case <-ctx.Done():
						break requestLoop
					case <-time.After(remaining / time.Duration(left+1)):
					}
				}
			}
		}
		// Wait until the next tick boundary.
		if remaining := time.Until(tickEnd); remaining > 0 {
			select {
			case <-ctx.Done():
				break mainLoop
			case <-time.After(remaining):
			}
		}
	}
	res.Completed = ctx.Err() == nil

	// Graceful shutdown: wait for stragglers, bounded.
	drained := make(chan struct{})
	go func() {
		wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(cfg.DrainTimeout):
	}
	return res, nil
}

// feeder hands out requests while preserving session order: a session's
// next click is only eligible after the previous click was answered.
type feeder struct {
	mu       sync.Mutex
	src      SessionSource
	eligible []*cursor
	nextID   int64
}

type cursor struct {
	id      int64
	session workload.Session
	pos     int
}

func newFeeder(src SessionSource) *feeder {
	return &feeder{src: src}
}

// next returns the request for some session's next click and a completion
// callback that re-arms the session (or retires it after its last click or
// a failure).
func (f *feeder) next() (httpapi.PredictRequest, func(ok bool)) {
	f.mu.Lock()
	var c *cursor
	if n := len(f.eligible); n > 0 {
		c = f.eligible[n-1]
		f.eligible = f.eligible[:n-1]
	} else {
		f.nextID++
		c = &cursor{id: f.nextID, session: f.src.NextSession()}
		for len(c.session) == 0 { // skip degenerate sessions
			c.session = f.src.NextSession()
		}
	}
	f.mu.Unlock()

	req := httpapi.PredictRequest{
		SessionID: c.id,
		Items:     append([]int64(nil), c.session[:c.pos+1]...),
	}
	done := func(ok bool) {
		f.mu.Lock()
		defer f.mu.Unlock()
		c.pos++
		// Only continue the session on success (the paper's generator only
		// sends the next interaction after receiving a response; a timed
		// out session is abandoned like a frustrated visitor).
		if ok && c.pos < len(c.session) {
			f.eligible = append(f.eligible, c)
		}
	}
	return req, done
}
