package costmodel

import (
	"testing"

	"etude/internal/device"
)

func TestScenariosMatchTableI(t *testing.T) {
	sc := Scenarios()
	if len(sc) != 5 {
		t.Fatalf("want 5 scenarios, got %d", len(sc))
	}
	wantCatalogs := []int{10_000, 100_000, 1_000_000, 10_000_000, 20_000_000}
	wantRates := []float64{100, 250, 500, 1000, 1000}
	for i, s := range sc {
		if s.CatalogSize != wantCatalogs[i] || s.TargetRate != wantRates[i] {
			t.Errorf("scenario %d = %+v", i, s)
		}
	}
}

func TestScenarioByName(t *testing.T) {
	s, err := ScenarioByName("Fashion")
	if err != nil || s.CatalogSize != 1_000_000 {
		t.Fatalf("ScenarioByName: %+v, %v", s, err)
	}
	if _, err := ScenarioByName("Bookstore"); err == nil {
		t.Fatalf("unknown scenario accepted")
	}
}

func TestPlanSizing(t *testing.T) {
	sc := Scenario{Name: "x", CatalogSize: 1, TargetRate: 1000}
	// Capacity 220/instance ⇒ ceil(1000/220) = 5 instances.
	o := Plan(device.GPUT4(), 220, sc)
	if !o.Feasible || o.Count != 5 {
		t.Fatalf("Plan = %+v", o)
	}
	if diff := o.MonthlyUSD - 5*268.09; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("cost = %v", o.MonthlyUSD)
	}
	// Exactly-sufficient capacity needs one instance.
	if o := Plan(device.CPU(), 1000, sc); o.Count != 1 {
		t.Fatalf("exact capacity: %+v", o)
	}
	// Infeasible capacity.
	if o := Plan(device.GPUT4(), 0, sc); o.Feasible {
		t.Fatalf("zero capacity must be infeasible")
	}
}

func TestPlanShardedSizing(t *testing.T) {
	sc := Scenario{Name: "x", CatalogSize: 1_000_000, TargetRate: 1000}
	// 4-way sharding: per-shard capacity 300 ⇒ ceil(1000/300) = 4 replicas
	// per shard group ⇒ 16 instances total.
	o := PlanSharded(device.CPU(), 300, sc, 4)
	if !o.Feasible || o.Shards != 4 || o.Count != 16 {
		t.Fatalf("PlanSharded = %+v", o)
	}
	if diff := o.MonthlyUSD - 16*108.09; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("cost = %v", o.MonthlyUSD)
	}
	// One shard degenerates to Plan with the shard count recorded.
	one := PlanSharded(device.CPU(), 300, sc, 1)
	plain := Plan(device.CPU(), 300, sc)
	if one.Count != plain.Count || one.MonthlyUSD != plain.MonthlyUSD || one.Shards != 1 {
		t.Fatalf("PlanSharded(1) = %+v, Plan = %+v", one, plain)
	}
	// Infeasible per-shard capacity stays infeasible, and renders as such.
	inf := PlanSharded(device.CPU(), 0, sc, 4)
	if inf.Feasible {
		t.Fatalf("zero capacity must be infeasible: %+v", inf)
	}
	if s := inf.String(); s != "cpu: infeasible" {
		t.Fatalf("infeasible sharded rendering: %q", s)
	}
	// Sharded rendering names the fan-out.
	want := "cpu ×16, 4-way sharded ($1729/month)"
	if s := PlanSharded(device.CPU(), 300, sc, 4).String(); s != want {
		t.Fatalf("sharded rendering = %q, want %q", s, want)
	}
}

func TestCheapestPrefersLowCost(t *testing.T) {
	options := []Option{
		{Instance: "gpu-a100", Count: 2, MonthlyUSD: 4017.6, Feasible: true},
		{Instance: "gpu-t4", Count: 5, MonthlyUSD: 1340.45, Feasible: true},
		{Instance: "cpu", Feasible: false},
	}
	best, ok := Cheapest(options)
	if !ok || best.Instance != "gpu-t4" {
		t.Fatalf("Cheapest = %+v, %v", best, ok)
	}
}

func TestCheapestAllInfeasible(t *testing.T) {
	if _, ok := Cheapest([]Option{{Instance: "cpu"}, {Instance: "gpu-t4"}}); ok {
		t.Fatalf("infeasible options produced a winner")
	}
	if _, ok := Cheapest(nil); ok {
		t.Fatalf("empty options produced a winner")
	}
}

func TestCheapestTieBreaksOnCount(t *testing.T) {
	options := []Option{
		{Instance: "a", Count: 4, MonthlyUSD: 400, Feasible: true},
		{Instance: "b", Count: 2, MonthlyUSD: 400, Feasible: true},
	}
	best, _ := Cheapest(options)
	if best.Instance != "b" {
		t.Fatalf("tie break failed: %+v", best)
	}
}

// TestPaperECommerceComparison reproduces the paper's remark that for the
// e-Commerce scenario "it is significantly cheaper to deploy five GPU-T4
// instances ($1,343) than to leverage two more powerful GPU-A100 instances
// (for $4,017)".
func TestPaperECommerceComparison(t *testing.T) {
	sc, _ := ScenarioByName("e-Commerce")
	t4 := Plan(device.GPUT4(), 210, sc)     // ≈200 req/s per T4 ⇒ 5 instances
	a100 := Plan(device.GPUA100(), 520, sc) // ≈500 req/s per A100 ⇒ 2 instances
	if t4.Count != 5 || a100.Count != 2 {
		t.Fatalf("fleet sizes: T4 %d, A100 %d", t4.Count, a100.Count)
	}
	best, _ := Cheapest([]Option{t4, a100})
	if best.Instance != "gpu-t4" {
		t.Fatalf("T4 fleet must win: %+v", best)
	}
	if t4.MonthlyUSD > 1400 || a100.MonthlyUSD < 4000 {
		t.Fatalf("costs off: T4 $%.0f, A100 $%.0f", t4.MonthlyUSD, a100.MonthlyUSD)
	}
}

func TestOptionString(t *testing.T) {
	if s := (Option{Instance: "cpu"}).String(); s != "cpu: infeasible" {
		t.Fatalf("infeasible rendering: %q", s)
	}
	o := Option{Instance: "cpu", Count: 3, MonthlyUSD: 324.27, Feasible: true}
	if s := o.String(); s == "" {
		t.Fatalf("empty rendering")
	}
}

func TestCloudCatalogShape(t *testing.T) {
	catalog := CloudCatalog()
	byCloud := map[string]int{}
	byDevice := map[string]int{}
	for _, ci := range catalog {
		byCloud[ci.Cloud]++
		byDevice[ci.Device]++
		if ci.MonthlyUSD <= 0 {
			t.Errorf("%s/%s: non-positive price", ci.Cloud, ci.Name)
		}
	}
	for _, cloud := range []string{"gcp", "aws", "azure"} {
		if byCloud[cloud] != 3 {
			t.Errorf("cloud %s has %d offerings, want 3", cloud, byCloud[cloud])
		}
	}
	for _, dev := range []string{"cpu", "gpu-t4", "gpu-a100"} {
		if byDevice[dev] != 3 {
			t.Errorf("device %s has %d offerings, want 3", dev, byDevice[dev])
		}
	}
}

func TestGCPPricesMatchPaperInCatalog(t *testing.T) {
	for _, ci := range CloudCatalog() {
		if ci.Cloud != "gcp" {
			continue
		}
		want := map[string]float64{"cpu": 108.09, "gpu-t4": 268.09, "gpu-a100": 2008.80}[ci.Device]
		if ci.MonthlyUSD != want {
			t.Errorf("gcp %s price = %v, want %v", ci.Device, ci.MonthlyUSD, want)
		}
	}
}

func TestPlanAcrossClouds(t *testing.T) {
	sc := Scenario{Name: "e-Commerce", CatalogSize: 10_000_000, TargetRate: 1000}
	capacities := map[string]float64{"cpu": 0, "gpu-t4": 210, "gpu-a100": 900}
	options := PlanAcrossClouds(capacities, sc)
	if len(options) != 9 {
		t.Fatalf("options = %d, want 9", len(options))
	}
	// Sorted: feasible first, cheapest first.
	if !options[0].Feasible {
		t.Fatalf("first option infeasible: %+v", options[0])
	}
	for i := 1; i < len(options); i++ {
		if options[i].Feasible && !options[i-1].Feasible {
			t.Fatalf("infeasible sorted before feasible")
		}
		if options[i].Feasible && options[i-1].Feasible && options[i-1].MonthlyUSD > options[i].MonthlyUSD {
			t.Fatalf("not cost-sorted at %d", i)
		}
	}
	// CPU rows must be infeasible at capacity 0.
	for _, o := range options {
		if o.Instance.Device == "cpu" && o.Feasible {
			t.Fatalf("cpu option feasible at zero capacity: %+v", o)
		}
	}
	// The cheapest feasible fleet: AWS g4dn T4s at $231 × 5 = $1155
	// undercuts GCP's $1340 and Azure's $1560.
	best, ok := CheapestCloud(options)
	if !ok || best.Instance.Cloud != "aws" || best.Instance.Device != "gpu-t4" || best.Count != 5 {
		t.Fatalf("cheapest = %+v", best)
	}
}

func TestCheapestCloudNoneFeasible(t *testing.T) {
	options := PlanAcrossClouds(map[string]float64{}, Scenario{TargetRate: 100})
	if _, ok := CheapestCloud(options); ok {
		t.Fatalf("no capacities should mean no feasible option")
	}
	if s := options[0].String(); s == "" {
		t.Fatalf("empty render")
	}
}
