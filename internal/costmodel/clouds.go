package costmodel

import (
	"fmt"
	"sort"
)

// CloudInstance is an instance offering on one cloud, mapped to one of the
// three device classes of the study. Prices are indicative public monthly
// rates under a one-year commitment (the same basis as the paper's GCP
// prices); they exist to support cross-cloud cost comparison — the paper's
// future-work plan "to support additional cloud environments such as
// Microsoft Azure or Amazon Web Services".
type CloudInstance struct {
	// Cloud is the provider ("gcp", "aws", "azure").
	Cloud string
	// Name is the provider's instance-type name.
	Name string
	// Device maps the offering to a device class ("cpu", "gpu-t4",
	// "gpu-a100"); capacities measured for the device class transfer.
	Device string
	// MonthlyUSD is the indicative one-year-commitment monthly price.
	MonthlyUSD float64
}

// CloudCatalog returns the cross-cloud offerings for the three device
// classes. GCP rows are the paper's exact prices.
func CloudCatalog() []CloudInstance {
	return []CloudInstance{
		// GCP (the paper's testbed).
		{Cloud: "gcp", Name: "e2-custom (5.5 vCPU)", Device: "cpu", MonthlyUSD: 108.09},
		{Cloud: "gcp", Name: "e2 + nvidia-tesla-t4", Device: "gpu-t4", MonthlyUSD: 268.09},
		{Cloud: "gcp", Name: "a2-highgpu-1g (A100)", Device: "gpu-a100", MonthlyUSD: 2008.80},
		// AWS (indicative 1-yr reserved).
		{Cloud: "aws", Name: "m6i.2xlarge", Device: "cpu", MonthlyUSD: 159.00},
		{Cloud: "aws", Name: "g4dn.xlarge (T4)", Device: "gpu-t4", MonthlyUSD: 231.00},
		{Cloud: "aws", Name: "p4d slice (A100)", Device: "gpu-a100", MonthlyUSD: 1967.00},
		// Azure (indicative 1-yr reserved).
		{Cloud: "azure", Name: "D8s_v5", Device: "cpu", MonthlyUSD: 140.00},
		{Cloud: "azure", Name: "NC4as_T4_v3", Device: "gpu-t4", MonthlyUSD: 312.00},
		{Cloud: "azure", Name: "NC24ads_A100_v4", Device: "gpu-a100", MonthlyUSD: 2681.00},
	}
}

// CloudOption is a fleet priced on a specific cloud.
type CloudOption struct {
	// Instance is the priced offering.
	Instance CloudInstance
	// Count is the fleet size.
	Count int
	// MonthlyUSD is the fleet's total monthly cost.
	MonthlyUSD float64
	// Feasible is false when the device class cannot serve the scenario.
	Feasible bool
}

// String renders the option.
func (o CloudOption) String() string {
	if !o.Feasible {
		return fmt.Sprintf("%s/%s: infeasible", o.Instance.Cloud, o.Instance.Name)
	}
	return fmt.Sprintf("%s %s ×%d ($%.0f/month)", o.Instance.Cloud, o.Instance.Name, o.Count, o.MonthlyUSD)
}

// PlanAcrossClouds sizes fleets for every cloud offering of every device
// class, given the per-instance capacity of each device class (from
// measurement or simulation; the hardware is identical across clouds, so
// capacity transfers). Results are sorted cheapest-feasible first.
func PlanAcrossClouds(capacityByDevice map[string]float64, sc Scenario) []CloudOption {
	var out []CloudOption
	for _, ci := range CloudCatalog() {
		capacity := capacityByDevice[ci.Device]
		opt := CloudOption{Instance: ci}
		if capacity > 0 {
			count := int(sc.TargetRate / capacity)
			if float64(count)*capacity < sc.TargetRate {
				count++
			}
			if count < 1 {
				count = 1
			}
			opt.Count = count
			opt.MonthlyUSD = float64(count) * ci.MonthlyUSD
			opt.Feasible = true
		}
		out = append(out, opt)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Feasible != out[j].Feasible {
			return out[i].Feasible
		}
		if out[i].MonthlyUSD != out[j].MonthlyUSD {
			return out[i].MonthlyUSD < out[j].MonthlyUSD
		}
		return out[i].Instance.Cloud < out[j].Instance.Cloud
	})
	return out
}

// CheapestCloud returns the lowest-cost feasible option across clouds.
func CheapestCloud(options []CloudOption) (CloudOption, bool) {
	for _, o := range options {
		if o.Feasible {
			return o, true
		}
	}
	return CloudOption{}, false
}
