package costmodel_test

import (
	"fmt"

	"etude/internal/costmodel"
	"etude/internal/device"
)

// Size a T4 fleet for the paper's e-Commerce scenario given a measured
// per-instance capacity, and compare it with an A100 fleet — the Table I
// calculation.
func ExamplePlan() {
	sc, _ := costmodel.ScenarioByName("e-Commerce")
	t4 := costmodel.Plan(device.GPUT4(), 210, sc)
	a100 := costmodel.Plan(device.GPUA100(), 520, sc)
	best, _ := costmodel.Cheapest([]costmodel.Option{t4, a100})
	fmt.Println(t4)
	fmt.Println(a100)
	fmt.Println("cheapest:", best.Instance)
	// Output:
	// gpu-t4 ×5 ($1340/month)
	// gpu-a100 ×2 ($4018/month)
	// cheapest: gpu-t4
}
