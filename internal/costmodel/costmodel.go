// Package costmodel turns ETUDE's measurements into deployment decisions:
// given the per-instance capacity of a (model, instance type) pair under a
// latency constraint, it computes how many instances a scenario needs, what
// the fleet costs per month in GCP (one-year commitment prices), and which
// deployment option is the most cost-efficient — the machinery behind the
// paper's Table I.
package costmodel

import (
	"fmt"
	"math"
	"time"

	"etude/internal/device"
)

// LatencySLO is the paper's service-level objective: 50 ms at the 90th
// percentile.
const LatencySLO = 50 * time.Millisecond

// Scenario is one e-Commerce use case from Table I.
type Scenario struct {
	// Name labels the use case.
	Name string
	// CatalogSize is the number of distinct items.
	CatalogSize int
	// TargetRate is the required throughput in requests/second.
	TargetRate float64
}

// Scenarios returns the five use cases of Table I.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "Groceries (small)", CatalogSize: 10_000, TargetRate: 100},
		{Name: "Groceries (large)", CatalogSize: 100_000, TargetRate: 250},
		{Name: "Fashion", CatalogSize: 1_000_000, TargetRate: 500},
		{Name: "e-Commerce", CatalogSize: 10_000_000, TargetRate: 1000},
		{Name: "Platform", CatalogSize: 20_000_000, TargetRate: 1000},
	}
}

// ScenarioByName looks a scenario up by its Table I label.
func ScenarioByName(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("costmodel: unknown scenario %q", name)
}

// Option is one deployment option for a scenario: a fleet of identical
// instances.
type Option struct {
	// Instance is the instance-type name ("cpu", "gpu-t4", "gpu-a100").
	Instance string
	// Count is the number of instances in the fleet.
	Count int
	// MonthlyUSD is the fleet's monthly cost.
	MonthlyUSD float64
	// Feasible is false when no fleet size can satisfy the scenario (the
	// instance cannot serve the model within the latency SLO at all).
	Feasible bool
}

// String renders the option as in Table I rows.
func (o Option) String() string {
	if !o.Feasible {
		return fmt.Sprintf("%s: infeasible", o.Instance)
	}
	return fmt.Sprintf("%s ×%d ($%.0f/month)", o.Instance, o.Count, o.MonthlyUSD)
}

// Plan sizes a fleet of the given instance type for a scenario.
// capacityPerInstance is the measured (or simulated) sustainable throughput
// of one instance under the latency SLO; zero or negative means the
// instance cannot serve the model within the SLO.
func Plan(spec device.Spec, capacityPerInstance float64, sc Scenario) Option {
	if capacityPerInstance <= 0 {
		return Option{Instance: spec.Name}
	}
	count := int(math.Ceil(sc.TargetRate / capacityPerInstance))
	if count < 1 {
		count = 1
	}
	return Option{
		Instance:   spec.Name,
		Count:      count,
		MonthlyUSD: float64(count) * spec.MonthlyCostUSD,
		Feasible:   true,
	}
}

// Cheapest returns the lowest-cost feasible option, with ties broken by
// fewer instances. The second return value is false when nothing is
// feasible.
func Cheapest(options []Option) (Option, bool) {
	var best Option
	found := false
	for _, o := range options {
		if !o.Feasible {
			continue
		}
		if !found || o.MonthlyUSD < best.MonthlyUSD ||
			(o.MonthlyUSD == best.MonthlyUSD && o.Count < best.Count) {
			best = o
			found = true
		}
	}
	return best, found
}
