// Package costmodel turns ETUDE's measurements into deployment decisions:
// given the per-instance capacity of a (model, instance type) pair under a
// latency constraint, it computes how many instances a scenario needs, what
// the fleet costs per month in GCP (one-year commitment prices), and which
// deployment option is the most cost-efficient — the machinery behind the
// paper's Table I.
package costmodel

import (
	"fmt"
	"math"
	"time"

	"etude/internal/device"
)

// LatencySLO is the paper's service-level objective: 50 ms at the 90th
// percentile.
const LatencySLO = 50 * time.Millisecond

// Scenario is one e-Commerce use case from Table I.
type Scenario struct {
	// Name labels the use case.
	Name string
	// CatalogSize is the number of distinct items.
	CatalogSize int
	// TargetRate is the required throughput in requests/second.
	TargetRate float64
}

// Scenarios returns the five use cases of Table I.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "Groceries (small)", CatalogSize: 10_000, TargetRate: 100},
		{Name: "Groceries (large)", CatalogSize: 100_000, TargetRate: 250},
		{Name: "Fashion", CatalogSize: 1_000_000, TargetRate: 500},
		{Name: "e-Commerce", CatalogSize: 10_000_000, TargetRate: 1000},
		{Name: "Platform", CatalogSize: 20_000_000, TargetRate: 1000},
	}
}

// ScenarioByName looks a scenario up by its Table I label.
func ScenarioByName(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("costmodel: unknown scenario %q", name)
}

// Option is one deployment option for a scenario: a fleet of identical
// instances.
type Option struct {
	// Instance is the instance-type name ("cpu", "gpu-t4", "gpu-a100").
	Instance string
	// Count is the number of instances in the fleet.
	Count int
	// MonthlyUSD is the fleet's monthly cost.
	MonthlyUSD float64
	// Feasible is false when no fleet size can satisfy the scenario (the
	// instance cannot serve the model within the latency SLO at all).
	Feasible bool
	// Shards is the catalog shard count of a scatter-gather deployment
	// (internal/shard); 1 (or 0) means an unsharded fleet.
	Shards int
}

// String renders the option as in Table I rows.
func (o Option) String() string {
	if !o.Feasible {
		return fmt.Sprintf("%s: infeasible", o.Instance)
	}
	if o.Shards > 1 {
		return fmt.Sprintf("%s ×%d, %d-way sharded ($%.0f/month)", o.Instance, o.Count, o.Shards, o.MonthlyUSD)
	}
	return fmt.Sprintf("%s ×%d ($%.0f/month)", o.Instance, o.Count, o.MonthlyUSD)
}

// Plan sizes a fleet of the given instance type for a scenario.
// capacityPerInstance is the measured (or simulated) sustainable throughput
// of one instance under the latency SLO; zero or negative means the
// instance cannot serve the model within the SLO.
func Plan(spec device.Spec, capacityPerInstance float64, sc Scenario) Option {
	if capacityPerInstance <= 0 {
		return Option{Instance: spec.Name}
	}
	count := int(math.Ceil(sc.TargetRate / capacityPerInstance))
	if count < 1 {
		count = 1
	}
	return Option{
		Instance:   spec.Name,
		Count:      count,
		MonthlyUSD: float64(count) * spec.MonthlyCostUSD,
		Feasible:   true,
	}
}

// PlanSharded sizes a catalog-sharded scatter-gather fleet: the catalog is
// split into `shards` partitions, every request fans out to one worker per
// partition, so the fleet needs shards × ceil(rate / perShardCapacity)
// instances. capacityPerShardInstance is one shard worker's sustainable
// throughput under the SLO — higher than an unsharded instance's, because
// each worker scans only C/S catalog rows. Sharding pays when the latency
// win (the dominant MIPS term divides by S) is worth the fan-out in
// instance count; on huge catalogs it is also the only way an instance type
// becomes feasible at all under the SLO.
func PlanSharded(spec device.Spec, capacityPerShardInstance float64, sc Scenario, shards int) Option {
	if shards < 1 {
		shards = 1
	}
	o := Plan(spec, capacityPerShardInstance, sc)
	o.Shards = shards
	if !o.Feasible {
		return o
	}
	o.Count *= shards
	o.MonthlyUSD = float64(o.Count) * spec.MonthlyCostUSD
	return o
}

// Cheapest returns the lowest-cost feasible option, with ties broken by
// fewer instances. The second return value is false when nothing is
// feasible.
func Cheapest(options []Option) (Option, bool) {
	var best Option
	found := false
	for _, o := range options {
		if !o.Feasible {
			continue
		}
		if !found || o.MonthlyUSD < best.MonthlyUSD ||
			(o.MonthlyUSD == best.MonthlyUSD && o.Count < best.Count) {
			best = o
			found = true
		}
	}
	return best, found
}
