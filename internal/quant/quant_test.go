package quant

import (
	"math/rand"
	"testing"
	"testing/quick"

	"etude/internal/tensor"
	"etude/internal/topk"
)

func randMatrix(seed int64, rows, dim int) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	m := tensor.New(rows, dim)
	for i := range m.Data() {
		m.Data()[i] = float32(rng.NormFloat64())
	}
	return m
}

func TestQuantizeShapeValidation(t *testing.T) {
	if _, err := Quantize(tensor.New(4)); err == nil {
		t.Fatalf("1-D input accepted")
	}
}

func TestQuantizeMemoryFootprint(t *testing.T) {
	items := randMatrix(1, 1000, 32)
	tab, err := Quantize(items)
	if err != nil {
		t.Fatal(err)
	}
	floatBytes := 1000 * 32 * 4
	if tab.MemoryBytes() >= floatBytes/3 {
		t.Fatalf("quantised table %d bytes vs %d float32 — expected ≈4x shrink", tab.MemoryBytes(), floatBytes)
	}
	if tab.Rows() != 1000 || tab.Dim() != 32 {
		t.Fatalf("dims lost: %d×%d", tab.Rows(), tab.Dim())
	}
}

func TestQuantizedTopKHighRecall(t *testing.T) {
	items := randMatrix(2, 5000, 32)
	tab, err := Quantize(items)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var totalRecall float64
	const queries = 20
	for q := 0; q < queries; q++ {
		query := tensor.New(32)
		for i := range query.Data() {
			query.Data()[i] = float32(rng.NormFloat64())
		}
		exact := topk.TopK(items, query, 21)
		approx, err := tab.TopK(query, 21)
		if err != nil {
			t.Fatal(err)
		}
		totalRecall += Recall(exact, approx)
	}
	if avg := totalRecall / queries; avg < 0.9 {
		t.Fatalf("int8 recall@21 = %.3f, want ≥ 0.9", avg)
	}
}

func TestQuantizedScoresApproximate(t *testing.T) {
	items := randMatrix(4, 100, 16)
	tab, _ := Quantize(items)
	query := items.Row(7).Clone() // self-similarity: item 7 must win
	approx, err := tab.TopK(query, 1)
	if err != nil {
		t.Fatal(err)
	}
	if approx[0].Item != 7 {
		t.Fatalf("self query returned item %d", approx[0].Item)
	}
	exactScore := tensor.Dot(items.Row(7).Data(), query.Data())
	rel := float64(approx[0].Score-exactScore) / float64(exactScore)
	if rel > 0.05 || rel < -0.05 {
		t.Fatalf("score error %.1f%%", rel*100)
	}
}

func TestQuantizeZeroRows(t *testing.T) {
	items := tensor.New(3, 4)
	items.Set(1, 1, 0) // only row 1 is non-zero
	tab, err := Quantize(items)
	if err != nil {
		t.Fatal(err)
	}
	query := tensor.New(4)
	query.Set(1, 0)
	res, err := tab.TopK(query, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Item != 1 || res[0].Score <= 0 {
		t.Fatalf("non-zero row must win: %+v", res)
	}
	if res[1].Score != 0 || res[2].Score != 0 {
		t.Fatalf("zero rows must score zero: %+v", res)
	}
}

func TestTopKQueryShapeValidation(t *testing.T) {
	tab, _ := Quantize(randMatrix(5, 10, 8))
	if _, err := tab.TopK(tensor.New(4), 3); err == nil {
		t.Fatalf("wrong query dim accepted")
	}
	if _, err := tab.TopK(tensor.New(2, 4), 3); err == nil {
		t.Fatalf("2-D query accepted")
	}
}

func TestRecall(t *testing.T) {
	exact := []topk.Result{{Item: 1}, {Item: 2}, {Item: 3}, {Item: 4}}
	approx := []topk.Result{{Item: 2}, {Item: 4}, {Item: 9}, {Item: 1}}
	if got := Recall(exact, approx); got != 0.75 {
		t.Fatalf("recall = %v, want 0.75", got)
	}
	if got := Recall(nil, approx); got != 1 {
		t.Fatalf("empty exact recall = %v, want 1", got)
	}
	if got := Recall(exact, nil); got != 0 {
		t.Fatalf("empty approx recall = %v, want 0", got)
	}
}

// Property: the quantised top-1 result is contained in the exact top-3 —
// int8 noise may swap near-ties but never surfaces a distant item.
func TestNearExactTopProperty(t *testing.T) {
	f := func(seed int64, rowRaw uint8) bool {
		items := randMatrix(seed, 64, 16)
		tab, err := Quantize(items)
		if err != nil {
			return false
		}
		query := items.Row(int(rowRaw % 64)).Clone()
		approx, err := tab.TopK(query, 1)
		if err != nil {
			return false
		}
		exact := topk.TopK(items, query, 3)
		for _, r := range exact {
			if r.Item == approx[0].Item {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
