// Package quant implements int8 post-training quantisation for the
// maximum-inner-product search stage — one of the latency/quality
// trade-off techniques the paper names as future work ("techniques to
// trade-off prediction quality with inference latency, such as model
// quantisation").
//
// The catalog embedding matrix is quantised symmetrically per row to int8
// with one float32 scale per row; the query stays float32 and is quantised
// once per request. Scoring then runs over int8 dot products (4× less
// memory traffic than float32 — the resource that dominates large-catalog
// inference), and the exact float32 score is recovered approximately as
// rowScale · queryScale · int32Dot.
package quant

import (
	"fmt"
	"math"

	"etude/internal/tensor"
	"etude/internal/topk"
)

// Table is an int8-quantised catalog embedding matrix.
type Table struct {
	dim    int
	rows   int
	codes  []int8    // rows × dim
	scales []float32 // per-row dequantisation scale
}

// Quantize builds a Table from a [C, d] float32 embedding matrix.
func Quantize(items *tensor.Tensor) (*Table, error) {
	if items.Dims() != 2 {
		return nil, fmt.Errorf("quant: want a 2-D embedding matrix, got %v", items.Shape())
	}
	rows, dim := items.Dim(0), items.Dim(1)
	t := &Table{
		dim:    dim,
		rows:   rows,
		codes:  make([]int8, rows*dim),
		scales: make([]float32, rows),
	}
	for i := 0; i < rows; i++ {
		row := items.Row(i).Data()
		var maxAbs float32
		for _, v := range row {
			if a := abs32(v); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			t.scales[i] = 1
			continue // codes stay zero
		}
		scale := maxAbs / 127
		t.scales[i] = scale
		inv := 1 / scale
		out := t.codes[i*dim : (i+1)*dim]
		for j, v := range row {
			q := int32(math.RoundToEven(float64(v * inv)))
			if q > 127 {
				q = 127
			}
			if q < -127 {
				q = -127
			}
			out[j] = int8(q)
		}
	}
	return t, nil
}

// Rows returns the catalog size.
func (t *Table) Rows() int { return t.rows }

// Dim returns the embedding dimension.
func (t *Table) Dim() int { return t.dim }

// MemoryBytes returns the table's storage footprint (codes + scales):
// roughly a quarter of the float32 original.
func (t *Table) MemoryBytes() int {
	return len(t.codes) + 4*len(t.scales)
}

// TopK scores all quantised rows against the float32 query and returns the
// k best by approximate inner product, in descending order.
func (t *Table) TopK(query *tensor.Tensor, k int) ([]topk.Result, error) {
	if query.Dims() != 1 || query.Dim(0) != t.dim {
		return nil, fmt.Errorf("quant: query shape %v, want [%d]", query.Shape(), t.dim)
	}
	qCodes, qScale := quantizeQuery(query.Data())
	scores := make([]float32, t.rows)
	for i := 0; i < t.rows; i++ {
		row := t.codes[i*t.dim : (i+1)*t.dim]
		scores[i] = t.scales[i] * qScale * float32(dotInt8(row, qCodes))
	}
	return topk.SelectFromScores(scores, k), nil
}

func quantizeQuery(q []float32) ([]int8, float32) {
	var maxAbs float32
	for _, v := range q {
		if a := abs32(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return make([]int8, len(q)), 1
	}
	scale := maxAbs / 127
	inv := 1 / scale
	codes := make([]int8, len(q))
	for i, v := range q {
		c := int32(math.RoundToEven(float64(v * inv)))
		if c > 127 {
			c = 127
		}
		if c < -127 {
			c = -127
		}
		codes[i] = int8(c)
	}
	return codes, scale
}

func dotInt8(a, b []int8) int32 {
	var s0, s1 int32
	i := 0
	for ; i+2 <= len(a); i += 2 {
		s0 += int32(a[i]) * int32(b[i])
		s1 += int32(a[i+1]) * int32(b[i+1])
	}
	if i < len(a) {
		s0 += int32(a[i]) * int32(b[i])
	}
	return s0 + s1
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// Recall computes recall@k of approximate results against exact results:
// the fraction of the exact top-k items present in the approximate top-k.
// This is the prediction-quality side of the latency trade-off.
func Recall(exact, approx []topk.Result) float64 {
	if len(exact) == 0 {
		return 1
	}
	set := make(map[int64]bool, len(approx))
	for _, r := range approx {
		set[r.Item] = true
	}
	hit := 0
	for _, r := range exact {
		if set[r.Item] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}

// Retrieve adapts the table to the model.Retriever interface so quantised
// scoring can replace a model's exact MIPS stage via model.WithRetrieval.
func (t *Table) Retrieve(query *tensor.Tensor, k int) ([]topk.Result, error) {
	return t.TopK(query, k)
}
