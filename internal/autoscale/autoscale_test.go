package autoscale

import (
	"testing"
	"time"

	"etude/internal/device"
	"etude/internal/model"
)

func cpuConfig(minR, maxR int) Config {
	return Config{
		Device:      device.CPU(),
		Model:       "gru4rec",
		ModelCfg:    model.Config{CatalogSize: 1_000_000, Seed: 1},
		JIT:         true,
		MinReplicas: minR,
		MaxReplicas: maxR,
		Interval:    5 * time.Second,
		Seed:        1,
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(cpuConfig(0, 2), DiurnalProfile(10, 20, 60), time.Minute); err == nil {
		t.Fatalf("MinReplicas 0 accepted")
	}
	if _, err := Run(cpuConfig(3, 2), DiurnalProfile(10, 20, 60), time.Minute); err == nil {
		t.Fatalf("Max < Min accepted")
	}
	cfg := cpuConfig(1, 2)
	cfg.Model = ""
	if _, err := Run(cfg, DiurnalProfile(10, 20, 60), time.Minute); err == nil {
		t.Fatalf("missing model accepted")
	}
	if _, err := Run(cpuConfig(1, 2), nil, time.Minute); err == nil {
		t.Fatalf("nil profile accepted")
	}
	if _, err := Run(cpuConfig(1, 2), DiurnalProfile(10, 20, 60), time.Millisecond); err == nil {
		t.Fatalf("sub-second duration accepted")
	}
}

func TestProfiles(t *testing.T) {
	d := DiurnalProfile(100, 1000, 240)
	if got := d(0); got != 100 {
		t.Fatalf("diurnal trough = %v, want 100", got)
	}
	if got := d(120); got < 999 || got > 1001 {
		t.Fatalf("diurnal peak = %v, want ≈1000", got)
	}
	s := StepProfile(10, 200, 30)
	if s(29) != 10 || s(30) != 200 {
		t.Fatalf("step profile broken: %v %v", s(29), s(30))
	}
}

// TestStaysAtMinUnderLowLoad: with light traffic the scaler never leaves
// the floor.
func TestStaysAtMinUnderLowLoad(t *testing.T) {
	res, err := Run(cpuConfig(1, 5), StepProfile(20, 20, 0), 40*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScaleUps != 0 || res.PeakReplicas != 1 {
		t.Fatalf("scaled up under low load: ups=%d peak=%d", res.ScaleUps, res.PeakReplicas)
	}
	if !res.MeetsSLO(50 * time.Millisecond) {
		t.Fatalf("low load must meet the SLO: %+v", res.Recorder.Overall())
	}
}

// TestScalesUpOnSpike: a load step beyond one instance's capacity must
// trigger scale-ups, and the scaled fleet must absorb the load.
func TestScalesUpOnSpike(t *testing.T) {
	cfg := cpuConfig(1, 6)
	res, err := Run(cfg, StepProfile(50, 400, 20), 120*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScaleUps == 0 {
		t.Fatalf("no scale-up despite a 400 req/s step on a ~170 req/s instance")
	}
	if res.PeakReplicas < 3 {
		t.Fatalf("peak replicas = %d, want ≥3 for 400 req/s", res.PeakReplicas)
	}
	// After stabilisation, the tail of the run must be healthy.
	series := res.Recorder.Series()
	tail := series[len(series)-20:]
	bad := 0
	for _, ts := range tail {
		if ts.P90 > 50*time.Millisecond || ts.Errors > 0 {
			bad++
		}
	}
	if bad > 4 {
		t.Fatalf("%d/20 tail ticks unhealthy after scale-up", bad)
	}
}

// TestScalesBackDown: when the spike ends, the fleet shrinks toward the
// floor.
func TestScalesBackDown(t *testing.T) {
	cfg := cpuConfig(1, 6)
	// Spike first, then quiet.
	profile := func(second int) float64 {
		if second < 40 {
			return 400
		}
		return 20
	}
	res, err := Run(cfg, profile, 160*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScaleDowns == 0 {
		t.Fatalf("never scaled down after the spike ended")
	}
	if final := res.Replicas[len(res.Replicas)-1]; final > 2 {
		t.Fatalf("fleet still at %d replicas long after the spike", final)
	}
}

// TestAutoscalerCheaperThanStaticPeak is the headline: over a diurnal day,
// the autoscaled fleet burns significantly fewer instance-seconds than a
// static fleet sized for the peak, while both meet the SLO.
func TestAutoscalerCheaperThanStaticPeak(t *testing.T) {
	profile := DiurnalProfile(40, 500, 240)
	duration := 480 * time.Second // two "days"

	static, err := Run(cpuConfig(4, 4), profile, duration) // peak-sized, no scaling
	if err != nil {
		t.Fatal(err)
	}
	auto, err := Run(cpuConfig(1, 4), profile, duration)
	if err != nil {
		t.Fatal(err)
	}
	if !static.MeetsSLO(50 * time.Millisecond) {
		t.Fatalf("static peak fleet must meet the SLO: %+v", static.Recorder.Overall())
	}
	if !auto.MeetsSLO(60 * time.Millisecond) {
		// The autoscaler tolerates brief threshold crossings while reacting;
		// allow 20% headroom on the overall p90.
		t.Fatalf("autoscaled fleet too slow: %+v errors=%d", auto.Recorder.Overall(), auto.Recorder.Errors())
	}
	saving := 1 - auto.InstanceSeconds/static.InstanceSeconds
	if saving < 0.2 {
		t.Fatalf("autoscaler saved only %.0f%% instance-seconds", saving*100)
	}
	if auto.MonthlyUSD(device.CPU(), duration) >= static.MonthlyUSD(device.CPU(), duration) {
		t.Fatalf("autoscaled cost not lower")
	}
}

func TestDeterministicRuns(t *testing.T) {
	profile := DiurnalProfile(20, 100, 60)
	a, err := Run(cpuConfig(1, 3), profile, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cpuConfig(1, 3), profile, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sent != b.Sent || a.InstanceSeconds != b.InstanceSeconds || a.ScaleUps != b.ScaleUps {
		t.Fatalf("autoscale runs not deterministic")
	}
}
