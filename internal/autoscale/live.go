package autoscale

import (
	"context"
	"fmt"
	"sync"
	"time"

	"etude/internal/cluster"
	"etude/internal/metrics"
)

// LiveSignal is one control-loop observation of a live serving fleet.
type LiveSignal struct {
	// P90 is the recent-window 90th-percentile latency (zero with no
	// completed requests in the window).
	P90 time.Duration
	// ErrorRate is failed / issued requests over the window.
	ErrorRate float64
	// Sent is how many requests the window saw; windows with no traffic
	// never trigger scaling decisions.
	Sent int64
}

// LiveConfig tunes a live autoscale controller — the reactive scaler from
// the simulation study (Run) wired to a real fleet via a scale function.
type LiveConfig struct {
	// MinReplicas and MaxReplicas bound the fleet.
	MinReplicas int
	MaxReplicas int
	// Interval is the control-loop period (default 1s).
	Interval time.Duration
	// SLO is the p90 target the controller defends (default 50ms): a
	// window above it (or with errors) scales up.
	SLO time.Duration
	// DownFraction scales down only when the window's p90 sits below
	// DownFraction×SLO (default 0.5) — a fleet barely meeting its SLO must
	// not shrink.
	DownFraction float64
	// StabilizationWindow damps flapping (default 5×Interval): a
	// scale-down is applied only when every recommendation inside the
	// window agreed the fleet could be smaller, mirroring the HPA's
	// downscale stabilization. Scale-ups apply immediately — capacity
	// shortfalls hurt now, surplus only costs money.
	StabilizationWindow time.Duration
}

func (c LiveConfig) withDefaults() LiveConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.SLO <= 0 {
		c.SLO = 50 * time.Millisecond
	}
	if c.DownFraction <= 0 || c.DownFraction >= 1 {
		c.DownFraction = 0.5
	}
	if c.StabilizationWindow <= 0 {
		c.StabilizationWindow = 5 * c.Interval
	}
	return c
}

func (c LiveConfig) validate() error {
	if c.MinReplicas < 1 || c.MaxReplicas < c.MinReplicas {
		return fmt.Errorf("autoscale: need 1 ≤ MinReplicas ≤ MaxReplicas, got %d..%d", c.MinReplicas, c.MaxReplicas)
	}
	return nil
}

// LiveController runs a reactive scaling loop against a live fleet: it
// samples a signal, computes a desired replica count, damps scale-downs
// over a stabilization window, and applies changes through the provided
// scale function (normally cluster.Scale via ClusterScaler).
type LiveController struct {
	cfg    LiveConfig
	sample func() LiveSignal
	scale  func(context.Context, int) error

	mu       sync.Mutex
	replicas int
	// recommendations holds timestamped desired counts inside the
	// stabilization window; scale-down uses their maximum.
	recommendations []recommendation
	scaleUps        int
	scaleDowns      int
	lastErr         error

	done chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

type recommendation struct {
	at      time.Time
	desired int
}

// ClusterScaler adapts a cluster deployment to the controller's scale
// function.
func ClusterScaler(c *cluster.Cluster, name string) func(context.Context, int) error {
	return func(ctx context.Context, replicas int) error {
		return c.Scale(ctx, name, replicas)
	}
}

// RecorderSignal samples a load generator's recorder over its trailing
// `window` ticks — the glue between a live benchmark's measurements and the
// controller.
func RecorderSignal(rec *metrics.Recorder, window int) func() LiveSignal {
	if window < 1 {
		window = 1
	}
	return func() LiveSignal {
		series := rec.Series()
		if len(series) == 0 {
			return LiveSignal{}
		}
		from := len(series) - window
		if from < 0 {
			from = 0
		}
		var sig LiveSignal
		var errs int64
		var worstP90 time.Duration
		for _, ts := range series[from:] {
			sig.Sent += ts.Sent
			errs += ts.Errors
			if ts.P90 > worstP90 {
				worstP90 = ts.P90
			}
		}
		sig.P90 = worstP90
		if sig.Sent > 0 {
			sig.ErrorRate = float64(errs) / float64(sig.Sent)
		}
		return sig
	}
}

// NewLiveController builds a controller managing `initial` replicas. Call
// Start to begin the loop.
func NewLiveController(cfg LiveConfig, initial int, sample func() LiveSignal, scale func(context.Context, int) error) (*LiveController, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if sample == nil || scale == nil {
		return nil, fmt.Errorf("autoscale: nil sample or scale function")
	}
	if initial < cfg.MinReplicas {
		initial = cfg.MinReplicas
	}
	if initial > cfg.MaxReplicas {
		initial = cfg.MaxReplicas
	}
	return &LiveController{
		cfg:      cfg,
		sample:   sample,
		scale:    scale,
		replicas: initial,
		done:     make(chan struct{}),
	}, nil
}

// Start launches the control loop; Stop ends it.
func (lc *LiveController) Start(ctx context.Context) {
	lc.wg.Add(1)
	go func() {
		defer lc.wg.Done()
		ticker := time.NewTicker(lc.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-lc.done:
				return
			case <-ctx.Done():
				return
			case <-ticker.C:
				lc.Tick(ctx, lc.sample(), time.Now())
			}
		}
	}()
}

// Stop halts the control loop. Idempotent.
func (lc *LiveController) Stop() {
	lc.once.Do(func() { close(lc.done) })
	lc.wg.Wait()
}

// Replicas returns the controller's current applied replica count.
func (lc *LiveController) Replicas() int {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.replicas
}

// ScaleUps and ScaleDowns count applied control actions.
func (lc *LiveController) ScaleUps() int {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.scaleUps
}

// ScaleDowns counts applied shrink actions.
func (lc *LiveController) ScaleDowns() int {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.scaleDowns
}

// LastErr returns the most recent scale-function failure (nil when clean).
func (lc *LiveController) LastErr() error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.lastErr
}

// Tick runs one control iteration with an explicit signal and clock — the
// loop calls it each interval; tests call it directly for determinism.
func (lc *LiveController) Tick(ctx context.Context, sig LiveSignal, now time.Time) {
	lc.mu.Lock()
	current := lc.replicas
	desired := lc.desire(sig, current)

	// Record the recommendation and prune the stabilization window.
	lc.recommendations = append(lc.recommendations, recommendation{at: now, desired: desired})
	cutoff := now.Add(-lc.cfg.StabilizationWindow)
	for len(lc.recommendations) > 0 && lc.recommendations[0].at.Before(cutoff) {
		lc.recommendations = lc.recommendations[1:]
	}

	target := current
	switch {
	case desired > current:
		// Capacity shortfall: act immediately.
		target = desired
	case desired < current:
		// Flap damping: shrink only to the maximum desired count seen
		// anywhere in the window — one optimistic sample must not kill a
		// replica a traffic spike will want back next interval.
		target = desired
		for _, r := range lc.recommendations {
			if r.desired > target {
				target = r.desired
			}
		}
	}
	if target == current {
		lc.mu.Unlock()
		return
	}
	lc.mu.Unlock()

	err := lc.scale(ctx, target)

	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.lastErr = err
	if err != nil {
		return
	}
	if target > lc.replicas {
		lc.scaleUps++
	} else if target < lc.replicas {
		lc.scaleDowns++
	}
	lc.replicas = target
}

// desire maps a window's signal to the replica count it argues for. Callers
// hold lc.mu.
func (lc *LiveController) desire(sig LiveSignal, current int) int {
	if sig.Sent == 0 {
		return current // no traffic, no evidence
	}
	switch {
	case sig.ErrorRate > 0 || sig.P90 > lc.cfg.SLO:
		// Multiplicative growth (+50%, at least one), like the simulation
		// scaler: catch steep spikes within a few intervals.
		grow := current / 2
		if grow < 1 {
			grow = 1
		}
		desired := current + grow
		if desired > lc.cfg.MaxReplicas {
			desired = lc.cfg.MaxReplicas
		}
		return desired
	case sig.P90 < time.Duration(float64(lc.cfg.SLO)*lc.cfg.DownFraction):
		if current > lc.cfg.MinReplicas {
			return current - 1
		}
	}
	return current
}
