// Package autoscale extends the benchmarking framework with a reactive
// fleet autoscaler, evaluated on the discrete-event simulator. It pushes
// the paper's future-work theme — automatically choosing deployments for
// declaratively specified workloads — one step further: e-Commerce traffic
// is strongly diurnal, so a fleet sized statically for the peak wastes most
// of its capacity at night. The autoscaler watches the recent p90 latency
// and scales replicas between configured bounds, and the harness reports
// instance-seconds (∝ monthly cost) next to SLO compliance so the saving is
// measurable (see BenchmarkAutoscaler and the autoscale experiment tests).
package autoscale

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"etude/internal/device"
	"etude/internal/metrics"
	"etude/internal/model"
	"etude/internal/powerlaw"
	"etude/internal/sim"
)

// Config controls an autoscaled (or static) fleet simulation.
type Config struct {
	// Device is the instance type of every replica.
	Device device.Spec
	// Model and ModelCfg define the deployed model.
	Model    string
	ModelCfg model.Config
	// JIT serves compiled variants.
	JIT bool
	// MinReplicas and MaxReplicas bound the fleet (equal values disable
	// scaling: the static baseline).
	MinReplicas int
	MaxReplicas int
	// Interval is the control-loop period (default 10s).
	Interval time.Duration
	// SLO is the p90 target; the scaler aims below it.
	SLO time.Duration
	// UpUtilization scales the fleet up when the window's mean device
	// utilisation exceeds it (default 0.8); errors in the window also
	// trigger scale-up regardless of utilisation.
	UpUtilization float64
	// DownUtilization scales the fleet down when the shrunken fleet would
	// still sit below it (default 0.6).
	DownUtilization float64
	// AlphaLength shapes per-request session lengths.
	AlphaLength float64
	// Timeout marks responses slower than this as errors.
	Timeout time.Duration
	// QueueCap sheds new arrivals (immediate error) when the least-loaded
	// replica already has this many requests outstanding — a bounded accept
	// queue, so an under-provisioned episode cannot build an unbounded
	// backlog (default 500).
	QueueCap int
	// Seed drives sampling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 10 * time.Second
	}
	if c.SLO <= 0 {
		c.SLO = 50 * time.Millisecond
	}
	if c.UpUtilization == 0 {
		c.UpUtilization = 0.8
	}
	if c.DownUtilization == 0 {
		c.DownUtilization = 0.6
	}
	if c.AlphaLength == 0 {
		c.AlphaLength = 2.2
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 500
	}
	return c
}

func (c Config) validate() error {
	if c.MinReplicas < 1 || c.MaxReplicas < c.MinReplicas {
		return fmt.Errorf("autoscale: need 1 ≤ MinReplicas ≤ MaxReplicas, got %d..%d", c.MinReplicas, c.MaxReplicas)
	}
	if c.Model == "" {
		return fmt.Errorf("autoscale: model is required")
	}
	return nil
}

// Profile maps a simulated second to an offered request rate — the shape of
// the day. See DiurnalProfile for the standard e-Commerce curve.
type Profile func(second int) float64

// DiurnalProfile returns a day-shaped load curve: a sinusoid between low
// and high requests/second over `period` seconds, with the trough at t=0.
func DiurnalProfile(low, high float64, period int) Profile {
	return func(second int) float64 {
		phase := 2 * math.Pi * float64(second) / float64(period)
		return low + (high-low)*(1-math.Cos(phase))/2
	}
}

// StepProfile returns a flat profile that jumps from low to high at
// `stepAt` seconds — the spike-response test case.
func StepProfile(low, high float64, stepAt int) Profile {
	return func(second int) float64 {
		if second >= stepAt {
			return high
		}
		return low
	}
}

// Result summarises an autoscaled run.
type Result struct {
	// Recorder holds latency and error measurements.
	Recorder *metrics.Recorder
	// Replicas is the active replica count per simulated second.
	Replicas []int
	// InstanceSeconds integrates the replica count over the run — the
	// cost-proportional quantity.
	InstanceSeconds float64
	// PeakReplicas is the high-water mark.
	PeakReplicas int
	// ScaleUps and ScaleDowns count control actions.
	ScaleUps, ScaleDowns int
	// Sent counts issued requests.
	Sent int64
}

// MonthlyUSD converts the run's average fleet size to a monthly cost at the
// device's price.
func (r *Result) MonthlyUSD(spec device.Spec, duration time.Duration) float64 {
	if duration <= 0 {
		return 0
	}
	avg := r.InstanceSeconds / duration.Seconds()
	return avg * spec.MonthlyCostUSD
}

// MeetsSLO reports whether the run's overall p90 stayed within the SLO with
// at most 1% errors.
func (r *Result) MeetsSLO(slo time.Duration) bool {
	if r.Sent == 0 {
		return false
	}
	okRatio := float64(r.Sent-r.Recorder.Errors()) / float64(r.Sent)
	return r.Recorder.Overall().P90 <= slo && okRatio >= 0.99
}

// Run simulates the profile against an autoscaled fleet for the given
// duration of virtual time.
func Run(cfg Config, profile Profile, duration time.Duration) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if profile == nil || duration < time.Second {
		return nil, fmt.Errorf("autoscale: need a profile and ≥1s duration")
	}

	eng := sim.NewEngine()
	newInstance := func() (*sim.Instance, error) {
		return sim.NewInstance(eng, cfg.Device, cfg.Model, cfg.ModelCfg, cfg.JIT, 2*time.Millisecond, cfg.Device.MaxBatch)
	}

	fleet := make([]*sim.Instance, 0, cfg.MaxReplicas)
	for i := 0; i < cfg.MinReplicas; i++ {
		in, err := newInstance()
		if err != nil {
			return nil, err
		}
		if !in.Fits() {
			return nil, fmt.Errorf("autoscale: model does not fit %s", cfg.Device.Name)
		}
		fleet = append(fleet, in)
	}

	lengths, err := powerlaw.New(cfg.AlphaLength, 1)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{Recorder: metrics.NewRecorder(), PeakReplicas: cfg.MinReplicas}

	// Control-loop state: per-window error counter and the busy-time
	// snapshot utilisation is measured against.
	windowErrors := 0
	prevBusy := time.Duration(0)
	fleetBusy := func() time.Duration {
		var total time.Duration
		for _, in := range fleet {
			total += in.BusyTime()
		}
		return total
	}

	seconds := int(duration / time.Second)
	for t := 0; t < seconds; t++ {
		tick := t
		rate := profile(t)
		rc := int(rate)
		if rc < 1 {
			rc = 1
		}
		gap := time.Second / time.Duration(rc)
		for i := 0; i < rc; i++ {
			at := time.Duration(tick)*time.Second + time.Duration(i)*gap
			sessionLen := lengths.SampleIntCapped(rng, 50)
			eng.Schedule(at-eng.Now(), func() {
				res.Sent++
				res.Recorder.RecordSent(tick)
				// Join-shortest-queue routing: new replicas absorb load the
				// moment they join the fleet.
				in := fleet[0]
				for _, cand := range fleet[1:] {
					if cand.Pending() < in.Pending() {
						in = cand
					}
				}
				if in.Pending() >= cfg.QueueCap {
					// Bounded accept queue: shed instead of building an
					// unbounded backlog.
					res.Recorder.RecordError(tick)
					windowErrors++
					return
				}
				in.Submit(sessionLen, func(latency time.Duration) {
					if latency > cfg.Timeout {
						res.Recorder.RecordError(tick)
						windowErrors++
					} else {
						res.Recorder.RecordLatency(tick, latency)
					}
				})
			})
		}
		// Account the current fleet size for this second and snapshot it.
		eng.Schedule(time.Duration(tick)*time.Second-eng.Now(), func() {
			res.Replicas = append(res.Replicas, len(fleet))
			res.InstanceSeconds += float64(len(fleet))
		})
		// Control loop at interval boundaries.
		if cfg.MinReplicas != cfg.MaxReplicas && t > 0 && t%int(cfg.Interval/time.Second) == 0 {
			eng.Schedule(time.Duration(tick)*time.Second-eng.Now(), func() {
				errs := windowErrors
				windowErrors = 0
				curBusy := fleetBusy()
				// A retired replica's busy time leaves the sum; clamp to
				// keep utilisation non-negative in that window.
				delta := curBusy - prevBusy
				prevBusy = curBusy
				if delta < 0 {
					delta = 0
				}
				util := delta.Seconds() / (cfg.Interval.Seconds() * float64(len(fleet)))
				overloaded := util > cfg.UpUtilization || errs > 0
				// Scale down only when the SHRUNKEN fleet would still sit
				// below the down threshold.
				idle := errs == 0 && len(fleet) > 1 &&
					util*float64(len(fleet))/float64(len(fleet)-1) < cfg.DownUtilization
				switch {
				case overloaded && len(fleet) < cfg.MaxReplicas:
					// Multiplicative growth (+50%, at least one) so the
					// fleet catches steep spikes within a few intervals.
					grow := len(fleet) / 2
					if grow < 1 {
						grow = 1
					}
					for g := 0; g < grow && len(fleet) < cfg.MaxReplicas; g++ {
						in, err := newInstance()
						if err != nil {
							break
						}
						fleet = append(fleet, in)
						res.ScaleUps++
					}
				case idle && len(fleet) > cfg.MinReplicas:
					// Retire the last replica: it drains naturally because
					// routing no longer selects it once others are shorter.
					fleet = fleet[:len(fleet)-1]
					res.ScaleDowns++
				}
				if len(fleet) > res.PeakReplicas {
					res.PeakReplicas = len(fleet)
				}
			})
		}
	}
	eng.Run(duration)
	eng.Drain()
	return res, nil
}
