package autoscale

import (
	"context"
	"fmt"
	"testing"
	"time"

	"etude/internal/metrics"
)

// fakeFleet records the scale calls a controller makes.
type fakeFleet struct {
	replicas int
	calls    []int
	fail     bool
}

func (f *fakeFleet) scale(_ context.Context, n int) error {
	if f.fail {
		return fmt.Errorf("fake scale failure")
	}
	f.replicas = n
	f.calls = append(f.calls, n)
	return nil
}

func newTestController(t *testing.T, cfg LiveConfig, initial int, fleet *fakeFleet) *LiveController {
	t.Helper()
	lc, err := NewLiveController(cfg, initial, func() LiveSignal { return LiveSignal{} }, fleet.scale)
	if err != nil {
		t.Fatal(err)
	}
	return lc
}

func TestLiveControllerScalesUpOnSLOBreach(t *testing.T) {
	fleet := &fakeFleet{replicas: 2}
	lc := newTestController(t, LiveConfig{MinReplicas: 1, MaxReplicas: 8, SLO: 50 * time.Millisecond}, 2, fleet)
	now := time.Now()

	// p90 over SLO: multiplicative growth, applied immediately.
	lc.Tick(context.Background(), LiveSignal{P90: 80 * time.Millisecond, Sent: 100}, now)
	if lc.Replicas() != 3 || fleet.replicas != 3 {
		t.Fatalf("replicas after SLO breach = %d (fleet %d), want 3", lc.Replicas(), fleet.replicas)
	}
	// Errors alone also scale up, even with good latency.
	lc.Tick(context.Background(), LiveSignal{P90: 10 * time.Millisecond, ErrorRate: 0.05, Sent: 100}, now.Add(time.Second))
	if lc.Replicas() != 4 {
		t.Fatalf("replicas after errors = %d, want 4", lc.Replicas())
	}
	if lc.ScaleUps() != 2 {
		t.Fatalf("scaleUps = %d, want 2", lc.ScaleUps())
	}
	// Growth respects MaxReplicas.
	for i := 0; i < 6; i++ {
		lc.Tick(context.Background(), LiveSignal{P90: 90 * time.Millisecond, Sent: 100}, now.Add(time.Duration(2+i)*time.Second))
	}
	if lc.Replicas() != 8 {
		t.Fatalf("replicas at cap = %d, want 8", lc.Replicas())
	}
}

func TestLiveControllerStabilizationDampsScaleDown(t *testing.T) {
	fleet := &fakeFleet{replicas: 4}
	cfg := LiveConfig{
		MinReplicas:         1,
		MaxReplicas:         8,
		SLO:                 50 * time.Millisecond,
		StabilizationWindow: 10 * time.Second,
	}
	lc := newTestController(t, cfg, 4, fleet)
	now := time.Now()

	// A spike recommendation enters the window.
	lc.Tick(context.Background(), LiveSignal{P90: 90 * time.Millisecond, Sent: 100}, now)
	if lc.Replicas() != 6 {
		t.Fatalf("replicas after spike = %d, want 6", lc.Replicas())
	}
	// Idle samples inside the window must NOT shrink the fleet: the
	// window still remembers wanting 6.
	for i := 1; i <= 5; i++ {
		lc.Tick(context.Background(), LiveSignal{P90: 5 * time.Millisecond, Sent: 100}, now.Add(time.Duration(i)*time.Second))
	}
	if lc.Replicas() != 6 {
		t.Fatalf("replicas inside stabilization window = %d, want 6 (flapped)", lc.Replicas())
	}
	if lc.ScaleDowns() != 0 {
		t.Fatalf("scaleDowns inside window = %d, want 0", lc.ScaleDowns())
	}
	// Once the spike recommendation ages out, the fleet shrinks one step
	// per interval.
	lc.Tick(context.Background(), LiveSignal{P90: 5 * time.Millisecond, Sent: 100}, now.Add(15*time.Second))
	if lc.Replicas() != 5 {
		t.Fatalf("replicas after window aged out = %d, want 5", lc.Replicas())
	}
	if lc.ScaleDowns() != 1 {
		t.Fatalf("scaleDowns = %d, want 1", lc.ScaleDowns())
	}
}

func TestLiveControllerQuietSignalsAndBounds(t *testing.T) {
	fleet := &fakeFleet{replicas: 2}
	lc := newTestController(t, LiveConfig{MinReplicas: 2, MaxReplicas: 4, SLO: 50 * time.Millisecond}, 2, fleet)
	now := time.Now()

	// No traffic: no evidence, no action.
	lc.Tick(context.Background(), LiveSignal{Sent: 0, P90: 0}, now)
	// Healthy but not idle: hold.
	lc.Tick(context.Background(), LiveSignal{P90: 40 * time.Millisecond, Sent: 50}, now.Add(time.Second))
	// Idle but already at MinReplicas: hold.
	lc.Tick(context.Background(), LiveSignal{P90: 2 * time.Millisecond, Sent: 50}, now.Add(20*time.Second))
	if len(fleet.calls) != 0 {
		t.Fatalf("scale calls on hold paths: %v", fleet.calls)
	}
	if lc.Replicas() != 2 {
		t.Fatalf("replicas drifted to %d", lc.Replicas())
	}
}

func TestLiveControllerScaleFailureKeepsState(t *testing.T) {
	fleet := &fakeFleet{replicas: 2, fail: true}
	lc := newTestController(t, LiveConfig{MinReplicas: 1, MaxReplicas: 8, SLO: 50 * time.Millisecond}, 2, fleet)
	lc.Tick(context.Background(), LiveSignal{P90: 90 * time.Millisecond, Sent: 100}, time.Now())
	if lc.Replicas() != 2 {
		t.Fatalf("replicas advanced to %d despite scale failure", lc.Replicas())
	}
	if lc.LastErr() == nil {
		t.Fatal("scale failure not surfaced")
	}
}

func TestLiveControllerConfigValidation(t *testing.T) {
	if _, err := NewLiveController(LiveConfig{MinReplicas: 3, MaxReplicas: 1}, 1,
		func() LiveSignal { return LiveSignal{} },
		func(context.Context, int) error { return nil }); err == nil {
		t.Fatal("inverted bounds accepted")
	}
	if _, err := NewLiveController(LiveConfig{MinReplicas: 1, MaxReplicas: 2}, 1, nil, nil); err == nil {
		t.Fatal("nil hooks accepted")
	}
}

func TestRecorderSignalWindow(t *testing.T) {
	rec := metrics.NewRecorder()
	// Tick 0: slow and failing; ticks 1-2: healthy.
	rec.RecordSent(0)
	rec.RecordSent(0)
	rec.RecordLatency(0, 200*time.Millisecond)
	rec.RecordError(0)
	for tick := 1; tick <= 2; tick++ {
		rec.RecordSent(tick)
		rec.RecordLatency(tick, 5*time.Millisecond)
	}

	full := RecorderSignal(rec, 10)()
	if full.Sent != 4 {
		t.Fatalf("full-window sent = %d, want 4", full.Sent)
	}
	if full.ErrorRate == 0 {
		t.Fatal("full window lost the tick-0 error")
	}
	if full.P90 < 100*time.Millisecond {
		t.Fatalf("full-window p90 = %v, should reflect slow tick", full.P90)
	}

	// A trailing window past the bad tick sees a healthy fleet.
	recent := RecorderSignal(rec, 2)()
	if recent.Sent != 2 || recent.ErrorRate != 0 {
		t.Fatalf("recent window = %+v, want 2 sent / 0 errors", recent)
	}
	if recent.P90 > 50*time.Millisecond {
		t.Fatalf("recent-window p90 = %v contaminated by old tick", recent.P90)
	}

	if empty := RecorderSignal(metrics.NewRecorder(), 3)(); empty.Sent != 0 {
		t.Fatalf("empty recorder signal = %+v", empty)
	}
}
