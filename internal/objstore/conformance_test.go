package objstore

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// The conformance suite pins MemBucket and FSBucket to one observable
// contract, so code layered on the Bucket interface — most demandingly the
// release store (internal/deploy), which trusts Put/Get round-trips for
// checksummed artifacts — can swap substrates without behavioural drift.

func TestBucketConformance(t *testing.T) {
	impls := []struct {
		name string
		make func(t *testing.T) Bucket
	}{
		{"mem", func(t *testing.T) Bucket { return NewMemBucket() }},
		{"mem-zero", func(t *testing.T) Bucket { return &MemBucket{} }},
		{"fs", func(t *testing.T) Bucket {
			b, err := NewFSBucket(t.TempDir())
			if err != nil {
				t.Fatalf("NewFSBucket: %v", err)
			}
			return b
		}},
	}
	for _, impl := range impls {
		impl := impl
		t.Run(impl.name, func(t *testing.T) {
			runBucketConformance(t, impl.make)
		})
	}
}

func runBucketConformance(t *testing.T, mk func(t *testing.T) Bucket) {
	t.Run("put-get-roundtrip", func(t *testing.T) {
		b := mk(t)
		want := []byte("hello bucket")
		if err := b.Put("a/b/c.bin", want); err != nil {
			t.Fatalf("Put: %v", err)
		}
		got, err := b.Get("a/b/c.bin")
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Get = %q, want %q", got, want)
		}
	})

	t.Run("get-missing", func(t *testing.T) {
		b := mk(t)
		if _, err := b.Get("absent"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
		}
	})

	t.Run("overwrite", func(t *testing.T) {
		b := mk(t)
		if err := b.Put("k", []byte("v1")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if err := b.Put("k", []byte("v2 longer than before")); err != nil {
			t.Fatalf("Put overwrite: %v", err)
		}
		got, err := b.Get("k")
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if string(got) != "v2 longer than before" {
			t.Fatalf("Get after overwrite = %q", got)
		}
		if err := b.Put("k", []byte("v3")); err != nil {
			t.Fatalf("Put shrink: %v", err)
		}
		got, err = b.Get("k")
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if string(got) != "v3" {
			t.Fatalf("Get after shrinking overwrite = %q (stale bytes?)", got)
		}
	})

	t.Run("defensive-copies", func(t *testing.T) {
		b := mk(t)
		src := []byte("original")
		if err := b.Put("k", src); err != nil {
			t.Fatalf("Put: %v", err)
		}
		// Mutating the caller's slice after Put must not change the object.
		copy(src, "XXXXXXXX")
		got, err := b.Get("k")
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if string(got) != "original" {
			t.Fatalf("Put aliased the caller's slice: Get = %q", got)
		}
		// Mutating a Get result must not change the stored object either.
		copy(got, "YYYYYYYY")
		again, err := b.Get("k")
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if string(again) != "original" {
			t.Fatalf("Get aliased the stored object: second Get = %q", again)
		}
	})

	t.Run("empty-value", func(t *testing.T) {
		b := mk(t)
		if err := b.Put("empty", nil); err != nil {
			t.Fatalf("Put(nil): %v", err)
		}
		got, err := b.Get("empty")
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if len(got) != 0 {
			t.Fatalf("Get(empty) = %q, want empty", got)
		}
	})

	t.Run("list-prefix-sorted", func(t *testing.T) {
		b := mk(t)
		// Note: no key may double as a directory prefix of another (e.g.
		// "m" next to "m/1") — the filesystem substrate cannot represent
		// that, so it is outside the Bucket contract.
		for _, k := range []string{"m/2", "m/1", "m/10", "other/x", "n"} {
			if err := b.Put(k, []byte(k)); err != nil {
				t.Fatalf("Put(%s): %v", k, err)
			}
		}
		keys, err := b.List("m/")
		if err != nil {
			t.Fatalf("List: %v", err)
		}
		want := []string{"m/1", "m/10", "m/2"}
		if !reflect.DeepEqual(keys, want) {
			t.Fatalf("List(m/) = %v, want %v", keys, want)
		}
		all, err := b.List("")
		if err != nil {
			t.Fatalf("List(\"\"): %v", err)
		}
		if len(all) != 5 {
			t.Fatalf("List(\"\") = %v, want 5 keys", all)
		}
	})

	t.Run("delete", func(t *testing.T) {
		b := mk(t)
		if err := b.Put("k", []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if err := b.Delete("k"); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		if _, err := b.Get("k"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get after Delete = %v, want ErrNotFound", err)
		}
		// Deleting an absent key is not an error.
		if err := b.Delete("k"); err != nil {
			t.Fatalf("Delete(absent): %v", err)
		}
	})

	t.Run("key-validation", func(t *testing.T) {
		b := mk(t)
		if err := b.Put("", []byte("v")); err == nil {
			t.Fatalf("Put(\"\") accepted an empty key")
		}
		if err := b.Put("../escape", []byte("v")); err == nil {
			t.Fatalf("Put(../escape) accepted a traversal key")
		}
	})

	t.Run("many-keys", func(t *testing.T) {
		b := mk(t)
		for i := 0; i < 20; i++ {
			key := fmt.Sprintf("releases/v%04d/release.json", i)
			if err := b.Put(key, []byte(fmt.Sprintf("rel-%d", i))); err != nil {
				t.Fatalf("Put(%s): %v", key, err)
			}
		}
		keys, err := b.List("releases/")
		if err != nil {
			t.Fatalf("List: %v", err)
		}
		if len(keys) != 20 {
			t.Fatalf("List(releases/) = %d keys, want 20", len(keys))
		}
		// Zero-padded version directories must list in version order.
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				t.Fatalf("List not sorted: %q >= %q", keys[i-1], keys[i])
			}
		}
	})
}
