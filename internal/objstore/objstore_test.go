package objstore

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func buckets(t *testing.T) map[string]Bucket {
	t.Helper()
	fs, err := NewFSBucket(filepath.Join(t.TempDir(), "bucket"))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Bucket{
		"mem": NewMemBucket(),
		"fs":  fs,
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	for name, b := range buckets(t) {
		if err := b.Put("results/run1.json", []byte("hello")); err != nil {
			t.Fatalf("%s: Put: %v", name, err)
		}
		got, err := b.Get("results/run1.json")
		if err != nil {
			t.Fatalf("%s: Get: %v", name, err)
		}
		if string(got) != "hello" {
			t.Fatalf("%s: got %q", name, got)
		}
	}
}

func TestGetMissing(t *testing.T) {
	for name, b := range buckets(t) {
		_, err := b.Get("nope")
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("%s: want ErrNotFound, got %v", name, err)
		}
	}
}

func TestPutOverwrites(t *testing.T) {
	for name, b := range buckets(t) {
		mustPut(t, b, "k", "v1")
		mustPut(t, b, "k", "v2")
		got, _ := b.Get("k")
		if string(got) != "v2" {
			t.Fatalf("%s: got %q after overwrite", name, got)
		}
	}
}

func TestListPrefix(t *testing.T) {
	for name, b := range buckets(t) {
		mustPut(t, b, "models/gru4rec.json", "a")
		mustPut(t, b, "models/stamp.json", "b")
		mustPut(t, b, "results/x.json", "c")
		keys, err := b.List("models/")
		if err != nil {
			t.Fatalf("%s: List: %v", name, err)
		}
		if len(keys) != 2 || keys[0] != "models/gru4rec.json" || keys[1] != "models/stamp.json" {
			t.Fatalf("%s: List = %v", name, keys)
		}
		all, _ := b.List("")
		if len(all) != 3 {
			t.Fatalf("%s: List(\"\") = %v", name, all)
		}
	}
}

func TestDelete(t *testing.T) {
	for name, b := range buckets(t) {
		mustPut(t, b, "k", "v")
		if err := b.Delete("k"); err != nil {
			t.Fatalf("%s: Delete: %v", name, err)
		}
		if _, err := b.Get("k"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("%s: object survived delete", name)
		}
		// Deleting again is fine.
		if err := b.Delete("k"); err != nil {
			t.Fatalf("%s: idempotent delete: %v", name, err)
		}
	}
}

func TestBadKeys(t *testing.T) {
	for name, b := range buckets(t) {
		if err := b.Put("", []byte("x")); err == nil {
			t.Fatalf("%s: empty key accepted", name)
		}
		if err := b.Put("../escape", []byte("x")); err == nil {
			t.Fatalf("%s: traversal key accepted", name)
		}
	}
}

func TestGetReturnsCopy(t *testing.T) {
	b := NewMemBucket()
	mustPut(t, b, "k", "abc")
	got, _ := b.Get("k")
	got[0] = 'X'
	again, _ := b.Get("k")
	if string(again) != "abc" {
		t.Fatalf("bucket contents mutated through returned slice")
	}
}

func TestMemBucketConcurrent(t *testing.T) {
	b := NewMemBucket()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id byte) {
			defer wg.Done()
			key := "k" + string('0'+id)
			for i := 0; i < 200; i++ {
				_ = b.Put(key, []byte{id})
				if _, err := b.Get(key); err != nil {
					t.Errorf("Get(%s): %v", key, err)
					return
				}
				_, _ = b.List("")
			}
		}(byte(w))
	}
	wg.Wait()
}

func TestFSBucketPersistsAcrossOpens(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bucket")
	b1, err := NewFSBucket(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, b1, "nested/deep/key.txt", "persisted")
	b2, err := NewFSBucket(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b2.Get("nested/deep/key.txt")
	if err != nil || string(got) != "persisted" {
		t.Fatalf("reopen: %q %v", got, err)
	}
}

func mustPut(t *testing.T, b Bucket, key, val string) {
	t.Helper()
	if err := b.Put(key, []byte(val)); err != nil {
		t.Fatalf("Put(%s): %v", key, err)
	}
}

func TestNewFSBucketOnFile(t *testing.T) {
	// A root path that is an existing FILE must fail.
	f := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFSBucket(f); err == nil {
		t.Fatalf("file-as-root accepted")
	}
}

func TestFSBucketGetDirectoryKey(t *testing.T) {
	b, err := NewFSBucket(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, b, "dir/inner", "v")
	// Reading the directory itself must error, not panic.
	if _, err := b.Get("dir"); err == nil {
		t.Fatalf("directory read accepted")
	}
}
