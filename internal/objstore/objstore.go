// Package objstore is the Google-Cloud-Storage stand-in of this
// reproduction: a bucket abstraction that the benchmark uses exactly the way
// ETUDE uses GCS — the inference server deploys serialised models from a
// bucket, and experiment measurements are written to a bucket upon
// termination.
//
// Two implementations are provided: an in-memory bucket for tests and
// simulations, and a filesystem bucket for the CLI tools.
package objstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound is returned when a key does not exist in the bucket.
var ErrNotFound = errors.New("objstore: object not found")

// Bucket stores named byte objects.
type Bucket interface {
	// Put stores data under key, overwriting any existing object.
	Put(key string, data []byte) error
	// Get retrieves the object at key, or ErrNotFound.
	Get(key string) ([]byte, error)
	// List returns all keys with the given prefix, sorted.
	List(prefix string) ([]string, error)
	// Delete removes the object at key (no error if absent).
	Delete(key string) error
}

// MemBucket is an in-memory Bucket, safe for concurrent use. The zero value
// is ready to use.
type MemBucket struct {
	mu      sync.RWMutex
	objects map[string][]byte
}

// NewMemBucket returns an empty in-memory bucket.
func NewMemBucket() *MemBucket {
	return &MemBucket{objects: make(map[string][]byte)}
}

// Put implements Bucket.
func (b *MemBucket) Put(key string, data []byte) error {
	if err := checkKey(key); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.objects == nil {
		b.objects = make(map[string][]byte)
	}
	b.objects[key] = append([]byte(nil), data...)
	return nil
}

// Get implements Bucket.
func (b *MemBucket) Get(key string) ([]byte, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	data, ok := b.objects[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return append([]byte(nil), data...), nil
}

// List implements Bucket.
func (b *MemBucket) List(prefix string) ([]string, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var keys []string
	for k := range b.objects {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete implements Bucket.
func (b *MemBucket) Delete(key string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.objects, key)
	return nil
}

// FSBucket stores objects as files under a root directory. Keys may contain
// forward slashes, which map to subdirectories.
type FSBucket struct {
	root string
}

// NewFSBucket returns a bucket rooted at dir, creating it if necessary.
func NewFSBucket(dir string) (*FSBucket, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("objstore: creating bucket root: %w", err)
	}
	return &FSBucket{root: dir}, nil
}

// Dir returns the bucket's root directory, so a separate process can be
// pointed at the same objects (the cluster's process backend passes it to
// etude-server via -bucket).
func (b *FSBucket) Dir() string { return b.root }

func (b *FSBucket) path(key string) (string, error) {
	if err := checkKey(key); err != nil {
		return "", err
	}
	p := filepath.Join(b.root, filepath.FromSlash(key))
	// Reject traversal outside the root.
	rel, err := filepath.Rel(b.root, p)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("objstore: key %q escapes bucket root", key)
	}
	return p, nil
}

// Put implements Bucket.
func (b *FSBucket) Put(key string, data []byte) error {
	p, err := b.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("objstore: creating object dir: %w", err)
	}
	// Write, fsync, rename, fsync the directory: the rename makes the
	// replacement atomic against concurrent readers, and the two syncs make
	// it atomic against a host crash — without the file sync a crash after
	// the rename can surface a truncated "atomically written" object (the
	// rename is a metadata operation and can reach disk before the data
	// writeback), and without the directory sync the rename itself can be
	// lost. The release store (internal/deploy) leans on exactly this
	// guarantee when it publishes its `current` pointer last.
	tmp := p + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("objstore: writing object: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("objstore: writing object: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("objstore: syncing object: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("objstore: closing object: %w", err)
	}
	if err := os.Rename(tmp, p); err != nil {
		return fmt.Errorf("objstore: committing object: %w", err)
	}
	return syncDir(filepath.Dir(p))
}

// syncDir fsyncs a directory so a just-committed rename survives a host
// crash. Filesystems that reject directory fsync (some network and overlay
// mounts) degrade to the old rename-only guarantee rather than failing the
// write.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// Get implements Bucket.
func (b *FSBucket) Get(key string) ([]byte, error) {
	p, err := b.path(key)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if err != nil {
		return nil, fmt.Errorf("objstore: reading object: %w", err)
	}
	return data, nil
}

// List implements Bucket.
func (b *FSBucket) List(prefix string) ([]string, error) {
	var keys []string
	err := filepath.Walk(b.root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || strings.HasSuffix(path, ".tmp") {
			return err
		}
		rel, err := filepath.Rel(b.root, path)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("objstore: listing bucket: %w", err)
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete implements Bucket.
func (b *FSBucket) Delete(key string) error {
	p, err := b.path(key)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("objstore: deleting object: %w", err)
	}
	return nil
}

func checkKey(key string) error {
	if key == "" {
		return errors.New("objstore: empty key")
	}
	if strings.Contains(key, "..") {
		return fmt.Errorf("objstore: key %q contains '..'", key)
	}
	return nil
}
