package tensor

import (
	"math"
)

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float32 {
	var s float32
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float32 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float32(len(t.data))
}

// Max returns the maximum element and its flat index. It panics on empty
// tensors.
func (t *Tensor) Max() (float32, int) {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	best, bestIdx := t.data[0], 0
	for i, v := range t.data[1:] {
		if v > best {
			best, bestIdx = v, i+1
		}
	}
	return best, bestIdx
}

// Norm returns the Euclidean (L2) norm of all elements.
func (t *Tensor) Norm() float32 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return float32(math.Sqrt(s))
}

// L2NormalizeRows scales each row of a 2-D tensor to unit Euclidean norm in
// place. Zero rows are left unchanged. Used by CORE-style models that operate
// in a cosine-similarity representation space.
func (t *Tensor) L2NormalizeRows() {
	if len(t.shape) != 2 {
		panic("tensor: L2NormalizeRows on non-2D tensor")
	}
	n := t.shape[1]
	for i := 0; i < t.shape[0]; i++ {
		row := t.data[i*n : (i+1)*n]
		var s float64
		for _, v := range row {
			s += float64(v) * float64(v)
		}
		if s == 0 {
			continue
		}
		inv := float32(1 / math.Sqrt(s))
		for j := range row {
			row[j] *= inv
		}
	}
}

// Softmax normalises a 1-D tensor in place into a probability distribution
// using the numerically stable max-shift formulation.
func (t *Tensor) Softmax() {
	softmaxSlice(t.data)
}

// SoftmaxRows applies Softmax independently to each row of a 2-D tensor in
// place.
func (t *Tensor) SoftmaxRows() {
	if len(t.shape) != 2 {
		panic("tensor: SoftmaxRows on non-2D tensor")
	}
	n := t.shape[1]
	for i := 0; i < t.shape[0]; i++ {
		softmaxSlice(t.data[i*n : (i+1)*n])
	}
}

func softmaxSlice(row []float32) {
	if len(row) == 0 {
		return
	}
	maxv := row[0]
	for _, v := range row[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range row {
		e := math.Exp(float64(v - maxv))
		row[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range row {
		row[i] *= inv
	}
}

// LayerNorm normalises a 1-D tensor in place to zero mean and unit variance,
// then applies the affine transform gamma⊙x + beta. gamma and beta must have
// the same length as t; eps stabilises the variance.
func (t *Tensor) LayerNorm(gamma, beta *Tensor, eps float32) {
	layerNormSlice(t.data, gamma.data, beta.data, eps)
}

// LayerNormRows applies LayerNorm to each row of a 2-D tensor in place.
func (t *Tensor) LayerNormRows(gamma, beta *Tensor, eps float32) {
	if len(t.shape) != 2 {
		panic("tensor: LayerNormRows on non-2D tensor")
	}
	n := t.shape[1]
	for i := 0; i < t.shape[0]; i++ {
		layerNormSlice(t.data[i*n:(i+1)*n], gamma.data, beta.data, eps)
	}
}

func layerNormSlice(row, gamma, beta []float32, eps float32) {
	if len(row) != len(gamma) || len(row) != len(beta) {
		panic("tensor: LayerNorm parameter length mismatch")
	}
	var mean float64
	for _, v := range row {
		mean += float64(v)
	}
	mean /= float64(len(row))
	var variance float64
	for _, v := range row {
		d := float64(v) - mean
		variance += d * d
	}
	variance /= float64(len(row))
	inv := 1 / math.Sqrt(variance+float64(eps))
	for i, v := range row {
		row[i] = float32((float64(v)-mean)*inv)*gamma[i] + beta[i]
	}
}

// ArgSortDesc returns the indices that would sort a 1-D tensor in descending
// order. Used by the exhaustive (non-heap) top-k baseline.
func (t *Tensor) ArgSortDesc() []int {
	idx := make([]int, len(t.data))
	for i := range idx {
		idx[i] = i
	}
	// Simple binary-insertion-free sort via sort.Slice would import sort;
	// use a local pdq-style fallback: delegate to sortIdx.
	sortIdx(idx, t.data)
	return idx
}

// sortIdx sorts idx so that data[idx[i]] is non-increasing, using heapsort
// (in-place, O(n log n), no recursion) to keep the package dependency-free.
func sortIdx(idx []int, data []float32) {
	n := len(idx)
	less := func(a, b int) bool { // max-heap on ascending order -> descending output
		return data[idx[a]] < data[idx[b]] || (data[idx[a]] == data[idx[b]] && idx[a] > idx[b])
	}
	var siftDown func(lo, hi int)
	siftDown = func(lo, hi int) {
		root := lo
		for {
			child := 2*root + 1
			if child >= hi {
				return
			}
			if child+1 < hi && less(child, child+1) {
				child++
			}
			if !less(root, child) {
				return
			}
			idx[root], idx[child] = idx[child], idx[root]
			root = child
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(i, n)
	}
	for i := n - 1; i > 0; i-- {
		idx[0], idx[i] = idx[i], idx[0]
		siftDown(0, i)
	}
	// heapsort with a max-heap yields ascending order; reverse for descending.
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		idx[i], idx[j] = idx[j], idx[i]
	}
}
