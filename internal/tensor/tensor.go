// Package tensor implements dense float32 tensors and the linear-algebra
// kernels needed for inference with session-based recommendation models.
//
// Tensors are row-major and contiguous. The package is deliberately small:
// it provides exactly the operations used by the model encoders in
// internal/model (matrix products, element-wise arithmetic, softmax,
// layer normalisation and friends), implemented with cache-friendly loops
// and no external dependencies.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, row-major float32 tensor.
//
// The zero value is not useful; construct tensors with New, FromSlice or
// one of the operation helpers. Data is always contiguous: the element at
// index (i0, i1, ..., ik) lives at offset i0*stride0 + i1*stride1 + ... where
// strides are derived from the shape.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative or the shape is empty.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor with the given shape. The slice is used
// directly (not copied); it panics if len(data) does not match the shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Full returns a tensor with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the backing slice. Mutating it mutates the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// At returns the element at the given indices.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set assigns v to the element at the given indices.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for %d-dim tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dim %d", ix, t.shape[i], i))
		}
		off = off*t.shape[i] + ix
	}
	return off
}

// Reshape returns a view of t with a new shape. The total element count must
// be unchanged. The view shares data with t.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's data into t. Shapes must have equal element counts.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic("tensor: CopyFrom size mismatch")
	}
	copy(t.data, src.data)
}

// Zero sets every element of t to zero.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Row returns a view of row i of a 2-D tensor as a 1-D tensor sharing data.
func (t *Tensor) Row(i int) *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: Row on non-2D tensor")
	}
	cols := t.shape[1]
	return &Tensor{shape: []int{cols}, data: t.data[i*cols : (i+1)*cols : (i+1)*cols]}
}

// Rows returns a view of rows [from, to) of a 2-D tensor.
func (t *Tensor) Rows(from, to int) *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: Rows on non-2D tensor")
	}
	if from < 0 || to > t.shape[0] || from > to {
		panic(fmt.Sprintf("tensor: Rows[%d:%d) out of range for %d rows", from, to, t.shape[0]))
	}
	cols := t.shape[1]
	return &Tensor{shape: []int{to - from, cols}, data: t.data[from*cols : to*cols : to*cols]}
}

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether all elements of t and u are within tol of each
// other. Tensors of different shape are never close.
func (t *Tensor) AllClose(u *Tensor, tol float64) bool {
	if !t.SameShape(u) {
		return false
	}
	for i := range t.data {
		if math.Abs(float64(t.data[i])-float64(u.data[i])) > tol {
			return false
		}
	}
	return true
}

// HasNaN reports whether any element is NaN or infinite.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return true
		}
	}
	return false
}

// String renders small tensors for debugging; large tensors are summarised.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.data) <= 16 {
		fmt.Fprintf(&b, "%v", t.data)
	} else {
		fmt.Fprintf(&b, "[%v %v %v ... %v]", t.data[0], t.data[1], t.data[2], t.data[len(t.data)-1])
	}
	return b.String()
}
