package tensor

import "fmt"

// MatMul returns a × b for 2-D tensors, a new [m,n] tensor where a is [m,k]
// and b is [k,n]. It panics on shape mismatch.
func MatMul(a, b *Tensor) *Tensor {
	out := New(a.shape[0], b.shape[1])
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a × b, reusing dst's storage. dst must be [m,n]
// for a [m,k] and b [k,n]. dst must not alias a or b.
func MatMulInto(dst, a, b *Tensor) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMul requires 2-D operands")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d != %d", k, k2))
	}
	if len(dst.shape) != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMul dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	ad, bd, dd := a.data, b.data, dst.data
	// i-k-j loop order keeps the inner loop streaming over contiguous rows of
	// b and dst, which is the cache-friendly order for row-major data.
	for i := 0; i < m; i++ {
		drow := dd[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
		arow := ad[i*k : (i+1)*k]
		for l := 0; l < k; l++ {
			av := arow[l]
			if av == 0 {
				continue
			}
			brow := bd[l*n : (l+1)*n]
			axpy(av, brow, drow)
		}
	}
}

// axpy computes y += a*x over equal-length slices. Split out so the compiler
// can eliminate bounds checks and unroll.
func axpy(a float32, x, y []float32) {
	_ = y[len(x)-1]
	i := 0
	for ; i+4 <= len(x); i += 4 {
		y[i] += a * x[i]
		y[i+1] += a * x[i+1]
		y[i+2] += a * x[i+2]
		y[i+3] += a * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += a * x[i]
	}
}

// MatVec returns a × x for a [m,k] matrix and a length-k vector, a length-m
// vector.
func MatVec(a, x *Tensor) *Tensor {
	out := New(a.shape[0])
	MatVecInto(out, a, x)
	return out
}

// MatVecInto computes dst = a × x. dst must have length m for a [m,k]
// matrix and a length-k vector x.
func MatVecInto(dst, a, x *Tensor) {
	if len(a.shape) != 2 || len(x.shape) != 1 {
		panic("tensor: MatVec requires a 2-D matrix and a 1-D vector")
	}
	m, k := a.shape[0], a.shape[1]
	if x.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatVec dims [%d %d] × %d", m, k, x.shape[0]))
	}
	if len(dst.shape) != 1 || dst.shape[0] != m {
		panic("tensor: MatVec dst shape mismatch")
	}
	ad, xd, dd := a.data, x.data, dst.data
	for i := 0; i < m; i++ {
		dd[i] = Dot(ad[i*k:(i+1)*k], xd)
	}
}

// Dot returns the inner product of two equal-length slices.
func Dot(x, y []float32) float32 {
	if len(x) != len(y) {
		panic("tensor: Dot length mismatch")
	}
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}

// Transpose returns the transpose of a 2-D tensor as a new tensor.
func Transpose(a *Tensor) *Tensor {
	if len(a.shape) != 2 {
		panic("tensor: Transpose requires a 2-D tensor")
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		for j, v := range row {
			out.data[j*m+i] = v
		}
	}
	return out
}

// Outer returns the outer product x ⊗ y as an [len(x), len(y)] tensor.
func Outer(x, y *Tensor) *Tensor {
	if len(x.shape) != 1 || len(y.shape) != 1 {
		panic("tensor: Outer requires 1-D operands")
	}
	m, n := x.shape[0], y.shape[0]
	out := New(m, n)
	for i := 0; i < m; i++ {
		axpy(x.data[i], y.data, out.data[i*n:(i+1)*n])
	}
	return out
}
