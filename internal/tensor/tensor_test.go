package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	a := New(3, 4)
	if got := a.Len(); got != 12 {
		t.Fatalf("Len = %d, want 12", got)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if a.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, a.At(i, j))
			}
		}
	}
}

func TestFromSliceAndAtSet(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if a.At(0, 0) != 1 || a.At(1, 2) != 6 {
		t.Fatalf("row-major layout broken: %v", a.Data())
	}
	a.Set(42, 1, 1)
	if a.At(1, 1) != 42 {
		t.Fatalf("Set/At round trip failed")
	}
}

func TestFromSliceShapeMismatchPanics(t *testing.T) {
	defer expectPanic(t, "FromSlice with bad shape")
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer expectPanic(t, "At out of range")
	New(2, 2).At(2, 0)
}

func TestReshapeSharesData(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := a.Reshape(4)
	b.Set(9, 0)
	if a.At(0, 0) != 9 {
		t.Fatalf("Reshape must be a view")
	}
}

func TestReshapeBadSizePanics(t *testing.T) {
	defer expectPanic(t, "Reshape size change")
	New(2, 2).Reshape(3)
}

func TestCloneIndependent(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := a.Clone()
	b.Set(7, 0)
	if a.At(0) != 1 {
		t.Fatalf("Clone must not share data")
	}
}

func TestRowAndRowsViews(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 3, 2)
	r := a.Row(1)
	if r.At(0) != 3 || r.At(1) != 4 {
		t.Fatalf("Row(1) = %v", r.Data())
	}
	rs := a.Rows(1, 3)
	if rs.Dim(0) != 2 || rs.At(1, 1) != 6 {
		t.Fatalf("Rows(1,3) wrong: %v", rs.Data())
	}
	r.Set(99, 0)
	if a.At(1, 0) != 99 {
		t.Fatalf("Row must be a view")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := FromSlice([]float32{58, 64, 139, 154}, 2, 2)
	if !c.AllClose(want, 1e-6) {
		t.Fatalf("MatMul = %v, want %v", c.Data(), want.Data())
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randTensor(rng, 5, 5)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(1, i, i)
	}
	if got := MatMul(a, id); !got.AllClose(a, 1e-6) {
		t.Fatalf("A × I != A")
	}
	if got := MatMul(id, a); !got.AllClose(a, 1e-6) {
		t.Fatalf("I × A != A")
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer expectPanic(t, "MatMul inner dim mismatch")
	MatMul(New(2, 3), New(2, 3))
}

func TestMatVecMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randTensor(rng, 7, 4)
	x := randTensor(rng, 4)
	got := MatVec(a, x)
	want := MatMul(a, x.Reshape(4, 1)).Reshape(7)
	if !got.AllClose(want, 1e-5) {
		t.Fatalf("MatVec disagrees with MatMul")
	}
}

func TestDot(t *testing.T) {
	x := []float32{1, 2, 3, 4, 5}
	y := []float32{5, 4, 3, 2, 1}
	if got := Dot(x, y); got != 35 {
		t.Fatalf("Dot = %v, want 35", got)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randTensor(rng, 3, 5)
	tt := Transpose(Transpose(a))
	if !tt.AllClose(a, 0) {
		t.Fatalf("Transpose(Transpose(a)) != a")
	}
	at := Transpose(a)
	if at.Dim(0) != 5 || at.Dim(1) != 3 {
		t.Fatalf("Transpose shape = %v", at.Shape())
	}
	if at.At(2, 1) != a.At(1, 2) {
		t.Fatalf("Transpose element mismatch")
	}
}

func TestOuter(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := FromSlice([]float32{3, 4, 5}, 3)
	o := Outer(x, y)
	want := FromSlice([]float32{3, 4, 5, 6, 8, 10}, 2, 3)
	if !o.AllClose(want, 0) {
		t.Fatalf("Outer = %v", o.Data())
	}
}

func TestAddSubMulScale(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	if got := Add(a, b); !got.AllClose(FromSlice([]float32{5, 7, 9}, 3), 0) {
		t.Fatalf("Add = %v", got.Data())
	}
	if got := Sub(b, a); !got.AllClose(FromSlice([]float32{3, 3, 3}, 3), 0) {
		t.Fatalf("Sub = %v", got.Data())
	}
	if got := Mul(a, b); !got.AllClose(FromSlice([]float32{4, 10, 18}, 3), 0) {
		t.Fatalf("Mul = %v", got.Data())
	}
	if got := Scale(a, 2); !got.AllClose(FromSlice([]float32{2, 4, 6}, 3), 0) {
		t.Fatalf("Scale = %v", got.Data())
	}
}

func TestAddRowVector(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	a.AddRowVector(FromSlice([]float32{10, 20}, 2))
	want := FromSlice([]float32{11, 22, 13, 24}, 2, 2)
	if !a.AllClose(want, 0) {
		t.Fatalf("AddRowVector = %v", a.Data())
	}
}

func TestConcat(t *testing.T) {
	c := Concat(FromSlice([]float32{1, 2}, 2), FromSlice([]float32{3}, 1))
	if !c.AllClose(FromSlice([]float32{1, 2, 3}, 3), 0) {
		t.Fatalf("Concat = %v", c.Data())
	}
}

func TestConcatRows(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 1, 2)
	b := FromSlice([]float32{3, 4, 5, 6}, 2, 2)
	c := ConcatRows(a, b)
	if c.Dim(0) != 3 || c.At(2, 1) != 6 {
		t.Fatalf("ConcatRows = %v %v", c.Shape(), c.Data())
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 4)
	a.Softmax()
	if s := a.Sum(); math.Abs(float64(s)-1) > 1e-5 {
		t.Fatalf("softmax sum = %v", s)
	}
	// monotone: larger logits get larger probabilities
	for i := 0; i < 3; i++ {
		if a.At(i) >= a.At(i+1) {
			t.Fatalf("softmax not monotone: %v", a.Data())
		}
	}
}

func TestSoftmaxNumericallyStable(t *testing.T) {
	a := FromSlice([]float32{1000, 1001, 1002}, 3)
	a.Softmax()
	if a.HasNaN() {
		t.Fatalf("softmax overflow: %v", a.Data())
	}
	if s := a.Sum(); math.Abs(float64(s)-1) > 1e-5 {
		t.Fatalf("softmax sum = %v", s)
	}
}

func TestSoftmaxRows(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	a.SoftmaxRows()
	for i := 0; i < 2; i++ {
		if s := a.Row(i).Sum(); math.Abs(float64(s)-1) > 1e-5 {
			t.Fatalf("row %d sum = %v", i, s)
		}
	}
}

func TestLayerNormZeroMeanUnitVar(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8}, 8)
	gamma := Full(1, 8)
	beta := New(8)
	a.LayerNorm(gamma, beta, 1e-6)
	if m := a.Mean(); math.Abs(float64(m)) > 1e-5 {
		t.Fatalf("mean after LayerNorm = %v", m)
	}
	var varSum float64
	for _, v := range a.Data() {
		varSum += float64(v) * float64(v)
	}
	if v := varSum / 8; math.Abs(v-1) > 1e-3 {
		t.Fatalf("variance after LayerNorm = %v", v)
	}
}

func TestLayerNormAffine(t *testing.T) {
	a := FromSlice([]float32{-1, 1}, 2)
	gamma := FromSlice([]float32{2, 2}, 2)
	beta := FromSlice([]float32{10, 10}, 2)
	a.LayerNorm(gamma, beta, 1e-9)
	if math.Abs(float64(a.At(0)-8)) > 1e-3 || math.Abs(float64(a.At(1)-12)) > 1e-3 {
		t.Fatalf("LayerNorm affine = %v", a.Data())
	}
}

func TestActivations(t *testing.T) {
	a := FromSlice([]float32{-2, 0, 2}, 3)
	r := a.Clone()
	r.ReLU()
	if r.At(0) != 0 || r.At(1) != 0 || r.At(2) != 2 {
		t.Fatalf("ReLU = %v", r.Data())
	}
	s := a.Clone()
	s.Sigmoid()
	if math.Abs(float64(s.At(1))-0.5) > 1e-6 {
		t.Fatalf("sigmoid(0) = %v", s.At(1))
	}
	if s.At(0) <= 0 || s.At(0) >= 0.5 || s.At(2) <= 0.5 || s.At(2) >= 1 {
		t.Fatalf("sigmoid range broken: %v", s.Data())
	}
	th := a.Clone()
	th.Tanh()
	if math.Abs(float64(th.At(1))) > 1e-9 {
		t.Fatalf("tanh(0) = %v", th.At(1))
	}
	g := a.Clone()
	g.GELU()
	if math.Abs(float64(g.At(1))) > 1e-9 {
		t.Fatalf("gelu(0) = %v", g.At(1))
	}
	if g.At(2) <= 1.9 || g.At(2) >= 2 {
		t.Fatalf("gelu(2) = %v, want just below 2", g.At(2))
	}
}

func TestL2NormalizeRows(t *testing.T) {
	a := FromSlice([]float32{3, 4, 0, 0}, 2, 2)
	a.L2NormalizeRows()
	if n := a.Row(0).Norm(); math.Abs(float64(n)-1) > 1e-5 {
		t.Fatalf("row norm = %v", n)
	}
	if a.At(1, 0) != 0 || a.At(1, 1) != 0 {
		t.Fatalf("zero row must stay zero: %v", a.Data())
	}
}

func TestMaxAndArgSortDesc(t *testing.T) {
	a := FromSlice([]float32{3, 1, 4, 1, 5, 9, 2, 6}, 8)
	v, i := a.Max()
	if v != 9 || i != 5 {
		t.Fatalf("Max = %v at %d", v, i)
	}
	idx := a.ArgSortDesc()
	for j := 1; j < len(idx); j++ {
		if a.At(idx[j-1]) < a.At(idx[j]) {
			t.Fatalf("ArgSortDesc not descending: %v", idx)
		}
	}
	if idx[0] != 5 {
		t.Fatalf("ArgSortDesc[0] = %d, want 5", idx[0])
	}
}

func TestHasNaN(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	if a.HasNaN() {
		t.Fatalf("clean tensor reported NaN")
	}
	a.Set(float32(math.NaN()), 0)
	if !a.HasNaN() {
		t.Fatalf("NaN not detected")
	}
	a.Set(float32(math.Inf(1)), 0)
	if !a.HasNaN() {
		t.Fatalf("Inf not detected")
	}
}

// Property: (A × B) × C == A × (B × C) within float tolerance.
func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randTensor(rng, 4, 3)
		b := randTensor(rng, 3, 5)
		c := randTensor(rng, 5, 2)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return left.AllClose(right, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul distributes over addition: A×(B+C) == A×B + A×C.
func TestMatMulDistributivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randTensor(rng, 3, 4)
		b := randTensor(rng, 4, 3)
		c := randTensor(rng, 4, 3)
		left := MatMul(a, Add(b, c))
		right := Add(MatMul(a, b), MatMul(a, c))
		return left.AllClose(right, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax output is a probability distribution and is invariant to
// a constant shift of the logits.
func TestSoftmaxShiftInvarianceProperty(t *testing.T) {
	f := func(seed int64, shift float32) bool {
		if shift != shift || shift > 50 || shift < -50 { // NaN / huge shift guard
			shift = 1.5
		}
		rng := rand.New(rand.NewSource(seed))
		a := randTensor(rng, 16)
		b := a.Clone()
		b.AddScalar(shift)
		a.Softmax()
		b.Softmax()
		if !a.AllClose(b, 1e-4) {
			return false
		}
		sum := a.Sum()
		if math.Abs(float64(sum)-1) > 1e-4 {
			return false
		}
		for _, v := range a.Data() {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Transpose swaps operands: (A×B)ᵀ == Bᵀ×Aᵀ.
func TestMatMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randTensor(rng, 3, 4)
		b := randTensor(rng, 4, 5)
		left := Transpose(MatMul(a, b))
		right := MatMul(Transpose(b), Transpose(a))
		return left.AllClose(right, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: ArgSortDesc returns a permutation with non-increasing values.
func TestArgSortDescProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		size := int(n%64) + 1
		rng := rand.New(rand.NewSource(seed))
		a := randTensor(rng, size)
		idx := a.ArgSortDesc()
		if len(idx) != size {
			return false
		}
		seen := make([]bool, size)
		for _, i := range idx {
			if i < 0 || i >= size || seen[i] {
				return false
			}
			seen[i] = true
		}
		for j := 1; j < size; j++ {
			if a.At(idx[j-1]) < a.At(idx[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	d := t.Data()
	for i := range d {
		d[i] = float32(rng.NormFloat64())
	}
	return t
}

func expectPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("%s: expected panic", what)
	}
}
