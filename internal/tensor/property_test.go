package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: LayerNorm (γ=1, β=0) is invariant to affine transforms of its
// input: LN(a·x + b) == LN(x) for a > 0.
func TestLayerNormAffineInvarianceProperty(t *testing.T) {
	f := func(seed int64, aRaw, bRaw uint8) bool {
		a := float32(aRaw%50)/10 + 0.1 // 0.1 .. 5.0
		b := float32(bRaw%100) - 50    // -50 .. 49
		rng := rand.New(rand.NewSource(seed))
		x := randTensor(rng, 16)
		gamma := Full(1, 16)
		beta := New(16)

		plain := x.Clone()
		plain.LayerNorm(gamma, beta, 1e-9)

		scaled := x.Clone()
		scaled.ScaleInPlace(a)
		scaled.AddScalar(b)
		scaled.LayerNorm(gamma, beta, 1e-9)

		return plain.AllClose(scaled, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: MatVec is linear: A(x+y) == Ax + Ay and A(c·x) == c·Ax.
func TestMatVecLinearityProperty(t *testing.T) {
	f := func(seed int64, cRaw uint8) bool {
		c := float32(cRaw%10) - 5
		rng := rand.New(rand.NewSource(seed))
		a := randTensor(rng, 5, 7)
		x := randTensor(rng, 7)
		y := randTensor(rng, 7)

		sum := MatVec(a, Add(x, y))
		parts := Add(MatVec(a, x), MatVec(a, y))
		if !sum.AllClose(parts, 1e-3) {
			return false
		}
		scaled := MatVec(a, Scale(x, c))
		scaledOut := Scale(MatVec(a, x), c)
		return scaled.AllClose(scaledOut, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Outer(x, y)·z == x · (y·z) — outer product contracts correctly.
func TestOuterContractionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randTensor(rng, 4)
		y := randTensor(rng, 6)
		z := randTensor(rng, 6)
		left := MatVec(Outer(x, y), z)
		right := Scale(x, Dot(y.Data(), z.Data()))
		return left.AllClose(right, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFullAndString(t *testing.T) {
	a := Full(3, 2, 2)
	for _, v := range a.Data() {
		if v != 3 {
			t.Fatalf("Full = %v", a.Data())
		}
	}
	if s := a.String(); s == "" {
		t.Fatalf("empty String")
	}
	big := New(100)
	if s := big.String(); s == "" {
		t.Fatalf("empty String for large tensor")
	}
}

func TestCopyFromSizeMismatchPanics(t *testing.T) {
	defer expectPanic(t, "CopyFrom size mismatch")
	New(3).CopyFrom(New(4))
}

func TestRowsOutOfRangePanics(t *testing.T) {
	defer expectPanic(t, "Rows out of range")
	New(3, 2).Rows(1, 5)
}

func TestAddScalar(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	a.AddScalar(10)
	if a.At(0) != 11 || a.At(1) != 12 {
		t.Fatalf("AddScalar = %v", a.Data())
	}
}

func TestZero(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	a.Zero()
	for _, v := range a.Data() {
		if v != 0 {
			t.Fatalf("Zero left %v", a.Data())
		}
	}
}

func TestNormMatchesMath(t *testing.T) {
	a := FromSlice([]float32{3, 4}, 2)
	if n := a.Norm(); math.Abs(float64(n)-5) > 1e-6 {
		t.Fatalf("Norm = %v, want 5", n)
	}
}

func TestApplyAndApplyInPlace(t *testing.T) {
	a := FromSlice([]float32{1, 4, 9}, 3)
	b := Apply(a, func(v float32) float32 { return v * 2 })
	if b.At(1) != 8 {
		t.Fatalf("Apply = %v", b.Data())
	}
	if a.At(1) != 4 {
		t.Fatalf("Apply mutated the input")
	}
	a.ApplyInPlace(func(v float32) float32 { return -v })
	if a.At(0) != -1 {
		t.Fatalf("ApplyInPlace = %v", a.Data())
	}
}

func TestMulAndScaleInPlaceAliasesSafe(t *testing.T) {
	a := FromSlice([]float32{2, 3}, 2)
	a.MulInPlace(a) // squaring through aliasing must work
	if a.At(0) != 4 || a.At(1) != 9 {
		t.Fatalf("self MulInPlace = %v", a.Data())
	}
}
