package tensor

import (
	"fmt"
	"math"
)

// Add returns a + b element-wise as a new tensor.
func Add(a, b *Tensor) *Tensor {
	out := a.Clone()
	out.AddInPlace(b)
	return out
}

// AddInPlace computes t += u element-wise.
func (t *Tensor) AddInPlace(u *Tensor) {
	checkSameLen(t, u, "Add")
	for i, v := range u.data {
		t.data[i] += v
	}
}

// Sub returns a - b element-wise as a new tensor.
func Sub(a, b *Tensor) *Tensor {
	checkSameLen(a, b, "Sub")
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out
}

// Mul returns the element-wise (Hadamard) product a ⊙ b.
func Mul(a, b *Tensor) *Tensor {
	out := a.Clone()
	out.MulInPlace(b)
	return out
}

// MulInPlace computes t ⊙= u element-wise.
func (t *Tensor) MulInPlace(u *Tensor) {
	checkSameLen(t, u, "Mul")
	for i, v := range u.data {
		t.data[i] *= v
	}
}

// Scale returns s·a as a new tensor.
func Scale(a *Tensor, s float32) *Tensor {
	out := a.Clone()
	out.ScaleInPlace(s)
	return out
}

// ScaleInPlace multiplies every element by s.
func (t *Tensor) ScaleInPlace(s float32) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AddScalar adds s to every element in place.
func (t *Tensor) AddScalar(s float32) {
	for i := range t.data {
		t.data[i] += s
	}
}

// AddRowVector adds a length-n vector v to every row of an [m,n] tensor in
// place (broadcast add, the bias pattern).
func (t *Tensor) AddRowVector(v *Tensor) {
	if len(t.shape) != 2 || len(v.shape) != 1 || t.shape[1] != v.shape[0] {
		panic(fmt.Sprintf("tensor: AddRowVector %v += %v", t.shape, v.shape))
	}
	n := t.shape[1]
	for i := 0; i < t.shape[0]; i++ {
		row := t.data[i*n : (i+1)*n]
		for j, b := range v.data {
			row[j] += b
		}
	}
}

// Concat concatenates 1-D tensors into one longer 1-D tensor.
func Concat(ts ...*Tensor) *Tensor {
	n := 0
	for _, t := range ts {
		if len(t.shape) != 1 {
			panic("tensor: Concat requires 1-D tensors")
		}
		n += t.shape[0]
	}
	out := New(n)
	off := 0
	for _, t := range ts {
		copy(out.data[off:], t.data)
		off += len(t.data)
	}
	return out
}

// ConcatRows stacks 2-D tensors with equal column counts vertically.
func ConcatRows(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatRows with no operands")
	}
	cols := ts[0].shape[1]
	rows := 0
	for _, t := range ts {
		if len(t.shape) != 2 || t.shape[1] != cols {
			panic("tensor: ConcatRows shape mismatch")
		}
		rows += t.shape[0]
	}
	out := New(rows, cols)
	off := 0
	for _, t := range ts {
		copy(out.data[off:], t.data)
		off += len(t.data)
	}
	return out
}

// Apply returns a new tensor with f applied element-wise.
func Apply(a *Tensor, f func(float32) float32) *Tensor {
	out := a.Clone()
	out.ApplyInPlace(f)
	return out
}

// ApplyInPlace applies f to every element.
func (t *Tensor) ApplyInPlace(f func(float32) float32) {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
}

// Sigmoid applies the logistic function element-wise in place.
func (t *Tensor) Sigmoid() {
	for i, v := range t.data {
		t.data[i] = sigmoid(v)
	}
}

// Tanh applies tanh element-wise in place.
func (t *Tensor) Tanh() {
	for i, v := range t.data {
		t.data[i] = float32(math.Tanh(float64(v)))
	}
}

// ReLU applies max(0, x) element-wise in place.
func (t *Tensor) ReLU() {
	for i, v := range t.data {
		if v < 0 {
			t.data[i] = 0
		}
	}
}

// GELU applies the Gaussian error linear unit (tanh approximation)
// element-wise in place.
func (t *Tensor) GELU() {
	const c = 0.7978845608028654 // sqrt(2/pi)
	for i, v := range t.data {
		x := float64(v)
		t.data[i] = float32(0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x))))
	}
}

func sigmoid(v float32) float32 {
	return float32(1.0 / (1.0 + math.Exp(-float64(v))))
}

func checkSameLen(a, b *Tensor, op string) {
	if len(a.data) != len(b.data) {
		panic(fmt.Sprintf("tensor: %s operand sizes %d and %d", op, len(a.data), len(b.data)))
	}
}
