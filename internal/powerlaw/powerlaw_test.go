package powerlaw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1.0, 1); err == nil {
		t.Fatalf("alpha=1 must be rejected")
	}
	if _, err := New(0.5, 1); err == nil {
		t.Fatalf("alpha<1 must be rejected")
	}
	if _, err := New(2, 0); err == nil {
		t.Fatalf("xmin=0 must be rejected")
	}
	if _, err := New(2.5, 1); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
}

func TestSampleAboveXmin(t *testing.T) {
	d, _ := New(2.5, 3)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if x := d.Sample(rng); x < 3 {
			t.Fatalf("sample %v below xmin", x)
		}
	}
}

func TestSampleIntCapped(t *testing.T) {
	d, _ := New(1.3, 1)
	rng := rand.New(rand.NewSource(2))
	sawCap := false
	for i := 0; i < 5000; i++ {
		v := d.SampleIntCapped(rng, 50)
		if v < 1 || v > 50 {
			t.Fatalf("capped sample %d outside [1,50]", v)
		}
		if v == 50 {
			sawCap = true
		}
	}
	// α=1.3 is heavy-tailed enough that the cap must bind sometimes.
	if !sawCap {
		t.Fatalf("cap never reached with heavy tail")
	}
}

func TestCCDF(t *testing.T) {
	d, _ := New(3, 2)
	if got := d.CCDF(2); got != 1 {
		t.Fatalf("CCDF(xmin) = %v, want 1", got)
	}
	if got := d.CCDF(1); got != 1 {
		t.Fatalf("CCDF below xmin = %v, want 1", got)
	}
	// P(X ≥ 4) = (4/2)^-(3-1) = 0.25.
	if got := d.CCDF(4); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("CCDF(4) = %v, want 0.25", got)
	}
}

// TestFitMLERecoversExponent: the round trip at the heart of ETUDE's
// workload model — sample from α, fit α̂, check they agree.
func TestFitMLERecoversExponent(t *testing.T) {
	for _, alpha := range []float64{1.5, 2.0, 2.8} {
		d, _ := New(alpha, 1)
		rng := rand.New(rand.NewSource(3))
		samples := make([]float64, 20000)
		for i := range samples {
			samples[i] = d.Sample(rng)
		}
		got, err := FitMLE(samples, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-alpha) > 0.05 {
			t.Errorf("FitMLE: α = %v, α̂ = %v", alpha, got)
		}
	}
}

func TestFitMLEErrors(t *testing.T) {
	if _, err := FitMLE([]float64{1, 2, 3}, 0, false); err == nil {
		t.Fatalf("xmin=0 must error")
	}
	if _, err := FitMLE([]float64{0.5}, 1, false); err == nil {
		t.Fatalf("too few samples must error")
	}
	if _, err := FitMLE([]float64{1, 1, 1}, 1, false); err == nil {
		t.Fatalf("degenerate samples must error")
	}
}

func TestFitMLEIgnoresBelowXmin(t *testing.T) {
	d, _ := New(2.2, 5)
	rng := rand.New(rand.NewSource(4))
	samples := make([]float64, 0, 11000)
	for i := 0; i < 10000; i++ {
		samples = append(samples, d.Sample(rng))
	}
	for i := 0; i < 1000; i++ {
		samples = append(samples, rng.Float64()) // noise below xmin
	}
	got, err := FitMLE(samples, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.2) > 0.1 {
		t.Fatalf("fit contaminated by sub-xmin samples: %v", got)
	}
}

func TestKSDistanceSelfConsistency(t *testing.T) {
	d, _ := New(2.0, 1)
	rng := rand.New(rand.NewSource(5))
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = d.Sample(rng)
	}
	if ks := d.KSDistance(samples); ks > 0.02 {
		t.Fatalf("KS distance of own samples = %v", ks)
	}
	// A very different exponent should be far away.
	other, _ := New(5.0, 1)
	if ks := other.KSDistance(samples); ks < 0.2 {
		t.Fatalf("KS distance of mismatched dist = %v, want large", ks)
	}
}

func TestKSDistanceEmpty(t *testing.T) {
	d, _ := New(2.0, 10)
	if ks := d.KSDistance([]float64{1, 2}); ks != 1 {
		t.Fatalf("KS with no usable samples = %v, want 1", ks)
	}
}

func TestEmpiricalCDFValidation(t *testing.T) {
	if _, err := NewEmpiricalCDF([]float64{0, 0}); err == nil {
		t.Fatalf("zero mass must error")
	}
	if _, err := NewEmpiricalCDF([]float64{1, -1}); err == nil {
		t.Fatalf("negative weight must error")
	}
	if _, err := NewEmpiricalCDF(nil); err == nil {
		t.Fatalf("empty weights must error")
	}
}

func TestEmpiricalCDFSampleFrequencies(t *testing.T) {
	cdf, err := NewEmpiricalCDF([]float64{1, 2, 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[cdf.Sample(rng)]++
	}
	wants := []float64{0.1, 0.2, 0.7}
	for i, want := range wants {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("category %d frequency %v, want %v", i, got, want)
		}
		if p := cdf.Prob(i); math.Abs(p-want) > 1e-12 {
			t.Errorf("Prob(%d) = %v, want %v", i, p, want)
		}
	}
}

func TestEmpiricalCDFZeroWeightNeverSampled(t *testing.T) {
	cdf, _ := NewEmpiricalCDF([]float64{0, 1, 0, 1, 0})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		s := cdf.Sample(rng)
		if s != 1 && s != 3 {
			t.Fatalf("sampled zero-weight category %d", s)
		}
	}
}

// Property: samples always land within [xmin, ∞) and FitMLE on enough of
// them lands within a loose band of the true exponent.
func TestSampleFitProperty(t *testing.T) {
	f := func(seed int64, aRaw uint8) bool {
		alpha := 1.2 + float64(aRaw%20)/10 // 1.2 .. 3.1
		d, err := New(alpha, 1)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		samples := make([]float64, 5000)
		for i := range samples {
			samples[i] = d.Sample(rng)
			if samples[i] < 1 {
				return false
			}
		}
		got, err := FitMLE(samples, 1, false)
		if err != nil {
			return false
		}
		return math.Abs(got-alpha) < 0.25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: EmpiricalCDF sampling never returns an out-of-range index.
func TestEmpiricalCDFRangeProperty(t *testing.T) {
	f := func(seed int64, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		total := 0.0
		for i, r := range raw {
			weights[i] = float64(r)
			total += weights[i]
		}
		if total == 0 {
			weights[0] = 1
		}
		cdf, err := NewEmpiricalCDF(weights)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			s := cdf.Sample(rng)
			if s < 0 || s >= len(weights) {
				return false
			}
			if weights[s] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestFitFlooredParetoRecovers: floor Pareto draws and recover the exponent.
func TestFitFlooredParetoRecovers(t *testing.T) {
	for _, alpha := range []float64{1.6, 2.2, 3.0} {
		d, _ := New(alpha, 1)
		rng := rand.New(rand.NewSource(8))
		samples := make([]float64, 30000)
		for i := range samples {
			samples[i] = math.Floor(d.Sample(rng))
		}
		got, err := FitFlooredPareto(samples)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-alpha) > 0.08 {
			t.Errorf("FitFlooredPareto: α = %v, α̂ = %v", alpha, got)
		}
	}
}

func TestFitFlooredParetoErrors(t *testing.T) {
	if _, err := FitFlooredPareto([]float64{0.5, 0.2}); err == nil {
		t.Fatalf("samples below 1 only must error")
	}
	if _, err := FitFlooredPareto([]float64{1, 1, 1}); err == nil {
		t.Fatalf("degenerate samples must error")
	}
	if _, err := FitFlooredPareto([]float64{5}); err == nil {
		t.Fatalf("single sample must error")
	}
}

// FuzzFitFlooredPareto: arbitrary float inputs never panic the estimator,
// and every successful fit returns α > 1.
func FuzzFitFlooredPareto(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 4.0)
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Add(1.0, 1.0, 1.0, 1.0)
	f.Add(-5.0, math.Inf(1), math.NaN(), 1e300)
	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		alpha, err := FitFlooredPareto([]float64{a, b, c, d})
		if err != nil {
			return
		}
		if !(alpha > 1) {
			t.Fatalf("fit returned α = %v ≤ 1 without error", alpha)
		}
	})
}
