package powerlaw

import (
	"errors"
	"math"
)

// FitFlooredPareto estimates the exponent α of a power law whose samples
// were produced by flooring continuous Pareto(α, xmin=1) draws to integers —
// exactly how the workload generator produces session lengths and click
// counts. For L = ⌊X⌋ with X ~ Pareto(α, 1), the pmf is
//
//	P(L = k) = k^(-β) − (k+1)^(-β),  β = α − 1, k = 1, 2, ...
//
// The maximum-likelihood β solves dℓ/dβ = 0 with
//
//	ℓ(β) = Σ_i ln( k_i^(-β) − (k_i+1)^(-β) )
//
// which has no closed form; we find the root of the (monotonically
// decreasing) derivative by bisection. Samples below 1 are ignored.
func FitFlooredPareto(samples []float64) (float64, error) {
	ks := make([]float64, 0, len(samples))
	for _, x := range samples {
		if x >= 1 {
			ks = append(ks, math.Floor(x))
		}
	}
	if len(ks) < 2 {
		return 0, errors.New("powerlaw: need at least two samples ≥ 1")
	}
	allOnes := true
	for _, k := range ks {
		if k != 1 {
			allOnes = false
			break
		}
	}
	if allOnes {
		return 0, errors.New("powerlaw: degenerate samples (all equal to 1)")
	}

	deriv := func(beta float64) float64 {
		var s float64
		for _, k := range ks {
			a := math.Pow(k, -beta)
			b := math.Pow(k+1, -beta)
			// d/dβ ln(a-b) = (-ln(k)·a + ln(k+1)·b) / (a - b)
			s += (-math.Log(k)*a + math.Log(k+1)*b) / (a - b)
		}
		return s
	}

	lo, hi := 1e-3, 64.0
	if deriv(lo) <= 0 {
		return 1 + lo, nil
	}
	if deriv(hi) >= 0 {
		return 1 + hi, nil
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if deriv(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 1 + (lo+hi)/2, nil
}
