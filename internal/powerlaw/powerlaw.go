// Package powerlaw provides discrete power-law sampling and exponent
// estimation for the synthetic workload generator.
//
// ETUDE's workload model (paper §II, "Synthetic session generation") is fully
// described by two power-law exponents: α_l for the distribution of session
// lengths and α_c for the distribution of per-item click counts. This
// package samples from such distributions via inverse-transform sampling and
// recovers exponents from data with the standard Clauset-Shalizi-Newman
// maximum-likelihood estimator, which is how the statistics are "estimated
// once from a real click log and reused for experiments later".
package powerlaw

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// Dist is a power law P(x) ∝ x^(-alpha) over x ≥ xmin.
type Dist struct {
	Alpha float64
	Xmin  float64
}

// New returns a power-law distribution. alpha must exceed 1 and xmin must be
// positive for the distribution to normalise.
func New(alpha, xmin float64) (Dist, error) {
	if alpha <= 1 {
		return Dist{}, errors.New("powerlaw: alpha must be > 1")
	}
	if xmin <= 0 {
		return Dist{}, errors.New("powerlaw: xmin must be > 0")
	}
	return Dist{Alpha: alpha, Xmin: xmin}, nil
}

// Sample draws one continuous value via inverse-transform sampling:
// x = xmin · (1-u)^(-1/(α-1)).
func (d Dist) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	return d.Xmin * math.Pow(1-u, -1/(d.Alpha-1))
}

// SampleInt draws an integer value by flooring a continuous draw
// (never below xmin).
func (d Dist) SampleInt(rng *rand.Rand) int {
	v := int(d.Sample(rng))
	if m := int(d.Xmin); v < m {
		return m
	}
	return v
}

// SampleIntCapped draws an integer value clamped to [xmin, cap].
func (d Dist) SampleIntCapped(rng *rand.Rand, cap int) int {
	v := d.SampleInt(rng)
	if v > cap {
		return cap
	}
	return v
}

// CCDF returns P(X ≥ x) for the continuous power law.
func (d Dist) CCDF(x float64) float64 {
	if x <= d.Xmin {
		return 1
	}
	return math.Pow(x/d.Xmin, -(d.Alpha - 1))
}

// FitMLE estimates the exponent of a power law from samples with the
// continuous maximum-likelihood estimator
//
//	α̂ = 1 + n / Σ ln(x_i / xmin)
//
// using the discrete correction xmin-0.5 when the data are integers drawn
// from a discrete distribution (set discrete=true). Samples below xmin are
// ignored. It returns an error when fewer than two usable samples remain or
// the samples are degenerate (all equal to xmin).
func FitMLE(samples []float64, xmin float64, discrete bool) (float64, error) {
	if xmin <= 0 {
		return 0, errors.New("powerlaw: xmin must be > 0")
	}
	ref := xmin
	if discrete {
		ref = xmin - 0.5
	}
	var sum float64
	n := 0
	for _, x := range samples {
		if x < xmin {
			continue
		}
		sum += math.Log(x / ref)
		n++
	}
	if n < 2 {
		return 0, errors.New("powerlaw: need at least two samples ≥ xmin")
	}
	if sum == 0 {
		return 0, errors.New("powerlaw: degenerate samples (all at xmin)")
	}
	return 1 + float64(n)/sum, nil
}

// KSDistance returns the Kolmogorov–Smirnov distance between the empirical
// CCDF of samples (restricted to x ≥ d.Xmin) and d's theoretical CCDF: the
// validation statistic for "the achieved latencies resemble each other
// closely"-style distribution comparisons.
func (d Dist) KSDistance(samples []float64) float64 {
	xs := make([]float64, 0, len(samples))
	for _, x := range samples {
		if x >= d.Xmin {
			xs = append(xs, x)
		}
	}
	if len(xs) == 0 {
		return 1
	}
	sort.Float64s(xs)
	n := float64(len(xs))
	var worst float64
	for i, x := range xs {
		emp := 1 - float64(i)/n // empirical P(X ≥ x)
		if diff := math.Abs(emp - d.CCDF(x)); diff > worst {
			worst = diff
		}
	}
	return worst
}

// EmpiricalCDF is a cumulative distribution over item indices built from
// nonnegative weights (the "empirical CDF of C click counts" in Algorithm 1,
// line 7). Sampling is an O(log C) binary search.
type EmpiricalCDF struct {
	cum []float64 // strictly the running sums; cum[len-1] is the total mass
}

// NewEmpiricalCDF builds a CDF from weights. It returns an error when the
// total mass is not positive.
func NewEmpiricalCDF(weights []float64) (*EmpiricalCDF, error) {
	cum := make([]float64, len(weights))
	var total float64
	for i, w := range weights {
		if w < 0 {
			return nil, errors.New("powerlaw: negative weight")
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		return nil, errors.New("powerlaw: total weight must be positive")
	}
	return &EmpiricalCDF{cum: cum}, nil
}

// Len returns the number of categories.
func (c *EmpiricalCDF) Len() int { return len(c.cum) }

// Sample draws an index via inverse-transform sampling.
func (c *EmpiricalCDF) Sample(rng *rand.Rand) int {
	u := rng.Float64() * c.cum[len(c.cum)-1]
	// Find the first cumulative weight exceeding u.
	lo, hi := 0, len(c.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability mass of index i.
func (c *EmpiricalCDF) Prob(i int) float64 {
	total := c.cum[len(c.cum)-1]
	if i == 0 {
		return c.cum[0] / total
	}
	return (c.cum[i] - c.cum[i-1]) / total
}
