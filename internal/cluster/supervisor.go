package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"etude/internal/httpapi"
)

// RestartPolicy tunes a deployment supervisor — the kubelet stand-in that
// probes pod liveness and restarts pods that stop answering.
type RestartPolicy struct {
	// ProbeInterval is how often every pod's liveness endpoint is polled
	// (default 50ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds each liveness probe (default 250ms).
	ProbeTimeout time.Duration
	// FailThreshold is the number of consecutive liveness failures after
	// which a pod is declared dead and restarted (default 3) — a single
	// dropped probe must not bounce a healthy pod.
	FailThreshold int
	// InitialBackoff is the wait before the first restart attempt (default
	// 100ms); it doubles per consecutive restart up to MaxBackoff
	// (default 5s) — CrashLoopBackOff, capped.
	InitialBackoff time.Duration
	MaxBackoff     time.Duration
	// HealthyReset is how long without any restart counts as "healthy
	// again": the next restart's backoff starts over at InitialBackoff
	// (default 10s) instead of continuing the escalation.
	HealthyReset time.Duration
	// ReadyTimeout bounds the replacement pod's readiness wait (default
	// 10s). A replacement that never readies counts as a failed restart and
	// the supervisor retries after backoff.
	ReadyTimeout time.Duration
}

func (p RestartPolicy) withDefaults() RestartPolicy {
	if p.ProbeInterval <= 0 {
		p.ProbeInterval = 50 * time.Millisecond
	}
	if p.ProbeTimeout <= 0 {
		p.ProbeTimeout = 250 * time.Millisecond
	}
	if p.FailThreshold <= 0 {
		p.FailThreshold = 3
	}
	if p.InitialBackoff <= 0 {
		p.InitialBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Second
	}
	if p.HealthyReset <= 0 {
		p.HealthyReset = 10 * time.Second
	}
	if p.ReadyTimeout <= 0 {
		p.ReadyTimeout = 10 * time.Second
	}
	return p
}

// RestartEvent records one supervised pod restart.
type RestartEvent struct {
	// OldReplica and NewReplica are the dead pod's and replacement's
	// ordinals.
	OldReplica int
	NewReplica int
	// Downtime is the repair time: from the first failed liveness probe to
	// the replacement answering its readiness probe — the per-incident MTTR
	// sample.
	Downtime time.Duration
	// Err is non-nil when the restart attempt failed (the pod stays gone
	// until the next attempt).
	Err error
}

// Supervisor watches one deployment's pods via their liveness probes and
// restarts dead ones: remove from rotation, start a replacement with a
// fresh ordinal, gate on readiness, admit. It is the piece that turns a
// chaos-crashed pod from "dead forever" into a measurable MTTR.
//
// The supervisor probes liveness (/live), not readiness (/ping): a pod
// draining for a rolling update fails readiness on purpose, and restarting
// it would turn every graceful operation into an outage.
type Supervisor struct {
	cluster *Cluster
	svc     *Service
	policy  RestartPolicy
	probe   *http.Client
	done    chan struct{}
	once    sync.Once
	wg      sync.WaitGroup

	mu     sync.Mutex
	fails  map[*Pod]int
	events []RestartEvent
}

// Supervise attaches a supervisor to the named deployment. Stop it with
// Stop; it also stops observing pods that Delete/Teardown remove.
func (c *Cluster) Supervise(name string, policy RestartPolicy) (*Supervisor, error) {
	svc, ok := c.Service(name)
	if !ok {
		return nil, fmt.Errorf("cluster: no deployment %q to supervise", name)
	}
	policy = policy.withDefaults()
	s := &Supervisor{
		cluster: c,
		svc:     svc,
		policy:  policy,
		probe:   &http.Client{Timeout: policy.ProbeTimeout},
		done:    make(chan struct{}),
		fails:   make(map[*Pod]int),
	}
	s.wg.Add(1)
	go s.loop()
	return s, nil
}

// Stop halts the supervision loop. Idempotent; in-progress restarts finish.
func (s *Supervisor) Stop() {
	s.once.Do(func() { close(s.done) })
	s.wg.Wait()
}

// Events returns the restart log so far.
func (s *Supervisor) Events() []RestartEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]RestartEvent(nil), s.events...)
}

// Restarts returns how many successful restarts the supervisor performed.
func (s *Supervisor) Restarts() int {
	n := 0
	for _, ev := range s.Events() {
		if ev.Err == nil {
			n++
		}
	}
	return n
}

// MTTR returns the mean repair time across successful restarts (zero with
// none).
func (s *Supervisor) MTTR() time.Duration {
	var total time.Duration
	n := 0
	for _, ev := range s.Events() {
		if ev.Err == nil {
			total += ev.Downtime
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / time.Duration(n)
}

func (s *Supervisor) loop() {
	defer s.wg.Done()
	backoff := restartBackoff{
		Initial:      s.policy.InitialBackoff,
		Max:          s.policy.MaxBackoff,
		HealthyReset: s.policy.HealthyReset,
	}
	ticker := time.NewTicker(s.policy.ProbeInterval)
	defer ticker.Stop()
	// firstFail anchors each pod's downtime clock at the first missed
	// probe, so MTTR covers detection latency, not just the restart.
	firstFail := make(map[*Pod]time.Time)
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
		}
		for _, pod := range s.svc.Pods() {
			if pod.Draining() {
				continue // graceful removal in progress, not a crash
			}
			if s.alive(pod) {
				delete(firstFail, pod)
				s.mu.Lock()
				delete(s.fails, pod)
				s.mu.Unlock()
				continue
			}
			s.mu.Lock()
			s.fails[pod]++
			n := s.fails[pod]
			s.mu.Unlock()
			if _, ok := firstFail[pod]; !ok {
				firstFail[pod] = time.Now()
			}
			if n < s.policy.FailThreshold {
				continue
			}
			// Dead: back off (CrashLoopBackOff — doubling while crashes
			// come quickly, reset after a healthy stretch), then replace.
			select {
			case <-s.done:
				return
			case <-time.After(backoff.Next(time.Now())):
			}
			ev := s.restart(pod, firstFail[pod])
			if ev.Err != nil {
				logEvent().Warn("pod restart failed", "deployment", s.svc.Name(), "replica", ev.OldReplica, "err", ev.Err)
			} else {
				logEvent().Info("pod restarted", "deployment", s.svc.Name(),
					"old_replica", ev.OldReplica, "new_replica", ev.NewReplica, "downtime", ev.Downtime)
			}
			delete(firstFail, pod)
			s.mu.Lock()
			delete(s.fails, pod)
			s.events = append(s.events, ev)
			s.mu.Unlock()
		}
	}
}

func (s *Supervisor) alive(pod *Pod) bool {
	resp, err := s.probe.Get(pod.URL() + httpapi.LivePath)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// restart replaces a dead pod: take it out of the rotation, dispose of the
// corpse, start a fresh-ordinal replacement, gate on readiness, admit.
func (s *Supervisor) restart(dead *Pod, downSince time.Time) RestartEvent {
	s.svc.opMu.Lock()
	defer s.svc.opMu.Unlock()

	// The operation may have raced a scale-down that already removed the
	// pod; re-check membership under the op lock.
	member := false
	for _, p := range s.svc.Pods() {
		if p == dead {
			member = true
			break
		}
	}
	if !member || dead.Draining() {
		return RestartEvent{OldReplica: dead.Replica(), NewReplica: -1,
			Err: fmt.Errorf("cluster: pod %s left the deployment before restart", dead.Addr())}
	}
	s.svc.removePods([]*Pod{dead})
	dead.forceStop() // it is unresponsive; no drain to wait for

	spec := s.svc.Spec()
	ctx, cancel := context.WithTimeout(context.Background(), s.policy.ReadyTimeout)
	defer cancel()
	added, err := s.cluster.startReadyPods(ctx, s.svc, spec, 1)
	if err != nil {
		return RestartEvent{OldReplica: dead.Replica(), NewReplica: -1,
			Err: fmt.Errorf("cluster: restarting pod %s: %w", dead.Addr(), err)}
	}
	s.svc.addPods(added)
	return RestartEvent{
		OldReplica: dead.Replica(),
		NewReplica: added[0].Replica(),
		Downtime:   time.Since(downSince),
	}
}
