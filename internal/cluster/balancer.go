package cluster

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"etude/internal/httpapi"
	"etude/internal/loadgen"
	"etude/internal/metrics"
)

// BalancerConfig tunes the health-aware service balancer.
type BalancerConfig struct {
	// FailThreshold is the number of consecutive request failures after
	// which a pod's circuit breaker opens and the pod is ejected from the
	// rotation (default 3).
	FailThreshold int
	// ProbeInterval is how often an ejected pod's readiness endpoint is
	// polled (default 50ms). The pod rejoins the rotation on the first 200.
	ProbeInterval time.Duration
	// ProbeTimeout bounds each readiness probe (default 250ms).
	ProbeTimeout time.Duration
}

func (c BalancerConfig) withDefaults() BalancerConfig {
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 50 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 250 * time.Millisecond
	}
	return c
}

// endpoint is one routable backend: its target, its circuit-breaker state
// and a removal flag that tells a background re-admission probe to give up
// when the endpoint has left the set (scale-down, rolling update).
type endpoint struct {
	url     string
	target  *loadgen.HTTPTarget
	removed atomic.Bool

	mu      sync.Mutex
	fails   int
	open    bool
	probing bool
}

// Balancer routes requests across a service's pods with per-pod circuit
// breakers: a pod that fails FailThreshold requests in a row is ejected
// from the round-robin rotation and only re-admitted once its readiness
// probe answers again — the kube-proxy + kubelet interplay that plain
// round-robin ignores. While a pod is ejected, its share of traffic flows
// to the survivors instead of timing out against a dead backend.
//
// The endpoint set is dynamic: Update replaces the URL list at runtime
// (scale-out, scale-in, rolling update) while preserving breaker state for
// endpoints present in both the old and new sets, so a half-open breaker is
// not reset to healthy just because an unrelated pod joined the fleet.
type Balancer struct {
	cfg   BalancerConfig
	mu    sync.RWMutex
	eps   []*endpoint
	rr    atomic.Uint64
	probe *http.Client
	done  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup
}

// NewBalancer builds a health-aware balancer over the given pod base URLs.
func NewBalancer(urls []string, cfg BalancerConfig) *Balancer {
	cfg = cfg.withDefaults()
	b := &Balancer{
		cfg:   cfg,
		probe: &http.Client{Timeout: cfg.ProbeTimeout},
		done:  make(chan struct{}),
	}
	for _, url := range urls {
		b.eps = append(b.eps, &endpoint{url: url, target: loadgen.NewHTTPTarget(url)})
	}
	return b
}

// Update replaces the endpoint set with urls. Endpoints present in both the
// old and new sets keep their breaker and connection state; removed
// endpoints stop receiving picks immediately and their re-admission probes
// exit; added endpoints join the rotation closed (routable). Safe to call
// concurrently with Predict.
func (b *Balancer) Update(urls []string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	byURL := make(map[string]*endpoint, len(b.eps))
	for _, ep := range b.eps {
		byURL[ep.url] = ep
	}
	next := make([]*endpoint, 0, len(urls))
	kept := make(map[string]bool, len(urls))
	for _, url := range urls {
		if ep, ok := byURL[url]; ok {
			next = append(next, ep)
			kept[url] = true
			continue
		}
		next = append(next, &endpoint{url: url, target: loadgen.NewHTTPTarget(url)})
	}
	for _, ep := range b.eps {
		if !kept[ep.url] {
			ep.removed.Store(true)
		}
	}
	b.eps = next
}

// URLs returns the current endpoint URLs in rotation order.
func (b *Balancer) URLs() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	urls := make([]string, len(b.eps))
	for i, ep := range b.eps {
		urls[i] = ep.url
	}
	return urls
}

// Close stops any background readiness probes. Idempotent.
func (b *Balancer) Close() {
	b.once.Do(func() { close(b.done) })
	b.wg.Wait()
}

// snapshot returns the current endpoint slice without copying the breaker
// state; the slice itself is never mutated after publication.
func (b *Balancer) snapshot() []*endpoint {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.eps
}

// Ejected returns how many pods are currently out of the rotation.
func (b *Balancer) Ejected() int {
	n := 0
	for _, ep := range b.snapshot() {
		ep.mu.Lock()
		if ep.open {
			n++
		}
		ep.mu.Unlock()
	}
	return n
}

// pick returns the next routable endpoint, or nil when every breaker is
// open (or the set is empty). It scans at most one full rotation from the
// round-robin cursor.
func (b *Balancer) pick() *endpoint {
	eps := b.snapshot()
	if len(eps) == 0 {
		return nil
	}
	start := b.rr.Add(1)
	for off := 0; off < len(eps); off++ {
		ep := eps[int(start+uint64(off))%len(eps)]
		ep.mu.Lock()
		open := ep.open
		ep.mu.Unlock()
		if !open {
			return ep
		}
	}
	return nil
}

// PickURL returns the next routable endpoint's base URL without issuing a
// request — "" when every breaker is open or the set is empty. It is the
// routing hook for external scatter tiers (internal/shard's gateway) that
// own their HTTP calls but still want per-pod circuit breaking; pair every
// pick with a Report so the breaker sees the outcome.
func (b *Balancer) PickURL() string {
	ep := b.pick()
	if ep == nil {
		return ""
	}
	return ep.url
}

// Report feeds the outcome of an externally issued request back into the
// endpoint's breaker (the counterpart of PickURL). Unknown URLs are
// ignored — the endpoint may have been removed by an Update in between.
func (b *Balancer) Report(url string, ok bool) {
	for _, ep := range b.snapshot() {
		if ep.url != url {
			continue
		}
		if ok {
			b.onSuccess(ep)
		} else {
			b.onFailure(ep)
		}
		return
	}
}

func (b *Balancer) onSuccess(ep *endpoint) {
	ep.mu.Lock()
	ep.fails = 0
	ep.mu.Unlock()
}

func (b *Balancer) onFailure(ep *endpoint) {
	ep.mu.Lock()
	ep.fails++
	if ep.fails >= b.cfg.FailThreshold && !ep.open {
		ep.open = true
		logEvent().Warn("circuit breaker opened", "endpoint", ep.url, "consecutive_fails", ep.fails)
		if !ep.probing {
			ep.probing = true
			b.wg.Add(1)
			go b.reAdmit(ep)
		}
	}
	ep.mu.Unlock()
}

// reAdmit polls an ejected pod's readiness endpoint until it answers 200,
// then closes the breaker — readiness-probe-driven recovery, so a restarted
// pod rejoins the rotation without operator action. The probe gives up when
// the endpoint is removed from the set (the pod is gone for good) or the
// balancer is closed.
func (b *Balancer) reAdmit(ep *endpoint) {
	defer b.wg.Done()
	ticker := time.NewTicker(b.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-b.done:
			return
		case <-ticker.C:
			if ep.removed.Load() {
				return
			}
			resp, err := b.probe.Get(ep.url + httpapi.ReadyPath)
			if err != nil {
				continue
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				continue
			}
			ep.mu.Lock()
			ep.open = false
			ep.fails = 0
			ep.probing = false
			ep.mu.Unlock()
			logEvent().Info("circuit breaker closed", "endpoint", ep.url)
			return
		}
	}
}

// WriteMetrics appends the balancer's breaker state to a Prometheus
// exposition — one gauge per endpoint (1 = breaker open / ejected) plus the
// ejected total. Plug it into server.Options.MetricsExtra or any other
// PromBuilder-based scrape.
func (b *Balancer) WriteMetrics(pb *metrics.PromBuilder) {
	open := 0
	for _, ep := range b.snapshot() {
		ep.mu.Lock()
		v := 0.0
		if ep.open {
			v = 1
			open++
		}
		ep.mu.Unlock()
		pb.Gauge("etude_breaker_open", "Circuit breaker state per endpoint (1 = open, pod ejected from rotation).",
			v, metrics.Label{Name: "endpoint", Value: ep.url})
	}
	pb.Gauge("etude_breaker_ejected", "Number of pods currently ejected from the rotation.", float64(open))
}

// Predict implements loadgen.Target.
func (b *Balancer) Predict(ctx context.Context, req httpapi.PredictRequest) error {
	_, err := b.PredictMeta(ctx, req)
	return err
}

// PredictMeta implements loadgen.MetaTarget: route to a healthy pod, feed
// the outcome back into its breaker. With every pod ejected the balancer
// refuses fast (503) instead of dialing a dead backend — the client's retry
// policy then backs off until a readiness probe re-admits someone.
func (b *Balancer) PredictMeta(ctx context.Context, req httpapi.PredictRequest) (loadgen.Meta, error) {
	ep := b.pick()
	if ep == nil {
		return loadgen.Meta{Status: http.StatusServiceUnavailable},
			&httpapi.StatusError{Code: http.StatusServiceUnavailable}
	}
	meta, err := ep.target.PredictMeta(ctx, req)
	if err != nil && ctx.Err() == nil {
		// Context cancellation is the client's doing, not the pod's.
		b.onFailure(ep)
	} else {
		b.onSuccess(ep)
	}
	return meta, err
}
