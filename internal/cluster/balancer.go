package cluster

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"etude/internal/httpapi"
	"etude/internal/loadgen"
)

// BalancerConfig tunes the health-aware service balancer.
type BalancerConfig struct {
	// FailThreshold is the number of consecutive request failures after
	// which a pod's circuit breaker opens and the pod is ejected from the
	// rotation (default 3).
	FailThreshold int
	// ProbeInterval is how often an ejected pod's readiness endpoint is
	// polled (default 50ms). The pod rejoins the rotation on the first 200.
	ProbeInterval time.Duration
	// ProbeTimeout bounds each readiness probe (default 250ms).
	ProbeTimeout time.Duration
}

func (c BalancerConfig) withDefaults() BalancerConfig {
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 50 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 250 * time.Millisecond
	}
	return c
}

// podBreaker is one pod's circuit breaker: consecutive failures open it,
// and a background readiness probe closes it again.
type podBreaker struct {
	mu      sync.Mutex
	fails   int
	open    bool
	probing bool
}

// Balancer routes requests across a service's pods with per-pod circuit
// breakers: a pod that fails FailThreshold requests in a row is ejected
// from the round-robin rotation and only re-admitted once its readiness
// probe answers again — the kube-proxy + kubelet interplay that plain
// round-robin ignores. While a pod is ejected, its share of traffic flows
// to the survivors instead of timing out against a dead backend.
type Balancer struct {
	cfg      BalancerConfig
	targets  []*loadgen.HTTPTarget
	urls     []string
	breakers []*podBreaker
	rr       atomic.Uint64
	probe    *http.Client
	done     chan struct{}
	once     sync.Once
	wg       sync.WaitGroup
}

// NewBalancer builds a health-aware balancer over the given pod base URLs.
func NewBalancer(urls []string, cfg BalancerConfig) *Balancer {
	cfg = cfg.withDefaults()
	b := &Balancer{
		cfg:      cfg,
		targets:  make([]*loadgen.HTTPTarget, len(urls)),
		urls:     urls,
		breakers: make([]*podBreaker, len(urls)),
		probe:    &http.Client{Timeout: cfg.ProbeTimeout},
		done:     make(chan struct{}),
	}
	for i, url := range urls {
		b.targets[i] = loadgen.NewHTTPTarget(url)
		b.breakers[i] = &podBreaker{}
	}
	return b
}

// Close stops any background readiness probes. Idempotent.
func (b *Balancer) Close() {
	b.once.Do(func() { close(b.done) })
	b.wg.Wait()
}

// Ejected returns how many pods are currently out of the rotation.
func (b *Balancer) Ejected() int {
	n := 0
	for _, br := range b.breakers {
		br.mu.Lock()
		if br.open {
			n++
		}
		br.mu.Unlock()
	}
	return n
}

// pick returns the next routable pod index, or -1 when every breaker is
// open. It scans at most one full rotation from the round-robin cursor.
func (b *Balancer) pick() int {
	start := b.rr.Add(1)
	for off := 0; off < len(b.targets); off++ {
		i := int(start+uint64(off)) % len(b.targets)
		br := b.breakers[i]
		br.mu.Lock()
		open := br.open
		br.mu.Unlock()
		if !open {
			return i
		}
	}
	return -1
}

func (b *Balancer) onSuccess(i int) {
	br := b.breakers[i]
	br.mu.Lock()
	br.fails = 0
	br.mu.Unlock()
}

func (b *Balancer) onFailure(i int) {
	br := b.breakers[i]
	br.mu.Lock()
	br.fails++
	if br.fails >= b.cfg.FailThreshold && !br.open {
		br.open = true
		if !br.probing {
			br.probing = true
			b.wg.Add(1)
			go b.reAdmit(i)
		}
	}
	br.mu.Unlock()
}

// reAdmit polls an ejected pod's readiness endpoint until it answers 200,
// then closes the breaker — readiness-probe-driven recovery, so a restarted
// pod rejoins the rotation without operator action.
func (b *Balancer) reAdmit(i int) {
	defer b.wg.Done()
	ticker := time.NewTicker(b.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-b.done:
			return
		case <-ticker.C:
			resp, err := b.probe.Get(b.urls[i] + httpapi.ReadyPath)
			if err != nil {
				continue
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				continue
			}
			br := b.breakers[i]
			br.mu.Lock()
			br.open = false
			br.fails = 0
			br.probing = false
			br.mu.Unlock()
			return
		}
	}
}

// Predict implements loadgen.Target.
func (b *Balancer) Predict(ctx context.Context, req httpapi.PredictRequest) error {
	_, err := b.PredictMeta(ctx, req)
	return err
}

// PredictMeta implements loadgen.MetaTarget: route to a healthy pod, feed
// the outcome back into its breaker. With every pod ejected the balancer
// refuses fast (503) instead of dialing a dead backend — the client's retry
// policy then backs off until a readiness probe re-admits someone.
func (b *Balancer) PredictMeta(ctx context.Context, req httpapi.PredictRequest) (loadgen.Meta, error) {
	i := b.pick()
	if i < 0 {
		return loadgen.Meta{Status: http.StatusServiceUnavailable},
			&httpapi.StatusError{Code: http.StatusServiceUnavailable}
	}
	meta, err := b.targets[i].PredictMeta(ctx, req)
	if err != nil && ctx.Err() == nil {
		// Context cancellation is the client's doing, not the pod's.
		b.onFailure(i)
	} else {
		b.onSuccess(i)
	}
	return meta, err
}
