package cluster

import (
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"etude/internal/httpapi"
	"etude/internal/metrics"
)

// This file is the process substrate underneath the control plane: a
// runner that execs real etude-server binaries (one OS process per pod),
// watches their lifecycle, measures their startup phases, delivers POSIX
// signals, and reaps whatever is left when the benchmark ends. It is the
// piece that turns "chaos kill" from a middleware answering 503 into an
// actual SIGKILL against an actual PID — and MTTR from a simulated number
// into a measured one (supervisor detection + exec + model load + ready).

// Proc states, in lifecycle order. A restarting pod goes back to
// ProcStarting with the same ID and port.
const (
	// ProcStarting: exec'd, HTTP not necessarily up yet.
	ProcStarting = "starting"
	// ProcReady: the readiness probe has passed at least once.
	ProcReady = "ready"
	// ProcDraining: SIGTERM delivered, in-flight work completing.
	ProcDraining = "draining"
	// ProcExited: the process is gone (ExitCode holds the status).
	ProcExited = "exited"
)

// ProcSpec declares one real server process.
type ProcSpec struct {
	// Bin is the etude-server binary path.
	Bin string `json:"bin"`
	// Args are the command-line flags, excluding -port (the runner owns
	// port assignment so restarts keep a stable address).
	Args []string `json:"args"`
	// Port fixes the listen port; 0 allocates a free one.
	Port int `json:"port"`
	// Restart enables runner-level restart-on-crash: an unexpected exit
	// respawns the process on the same port after a capped exponential
	// backoff. Leave false when a cluster Supervisor owns recovery —
	// two repair loops fighting over one pod would double-restart.
	Restart bool `json:"restart"`
	// InitialBackoff, MaxBackoff and HealthyReset tune the restart
	// backoff (defaults 100ms / 5s / 10s; see restartBackoff).
	InitialBackoff time.Duration `json:"initial_backoff"`
	MaxBackoff     time.Duration `json:"max_backoff"`
	HealthyReset   time.Duration `json:"healthy_reset"`
}

// ProcStatus is one process's externally visible state — what the control
// plane reports over its API.
type ProcStatus struct {
	ID   int    `json:"id"`
	PID  int    `json:"pid"`
	Addr string `json:"addr"`
	// State is one of ProcStarting/ProcReady/ProcDraining/ProcExited.
	State string `json:"state"`
	// ColdStart is exec → first /live 200: process creation, runtime
	// bootstrap, listener up. Zero until measured.
	ColdStart time.Duration `json:"cold_start"`
	// WarmReady is exec → first /ping 200: cold start plus model load and
	// warmup. Zero until measured.
	WarmReady time.Duration `json:"warm_ready"`
	// Restarts counts runner-initiated respawns of this pod.
	Restarts int `json:"restarts"`
	// ExitCode is the last exit status (-1 while running). A non-zero code
	// on a drained pod means its in-flight work outlived the drain bound
	// and the server force-closed.
	ExitCode int `json:"exit_code"`
	// Forced reports that a drain escalated to SIGKILL or the server
	// force-closed itself at its drain deadline.
	Forced bool `json:"forced"`
}

// ProcRunner spawns and supervises real server processes. It backs the
// control-plane daemon; everything here is also usable directly in tests.
type ProcRunner struct {
	// Log receives child stderr/stdout when non-nil (one writer shared by
	// every child); nil discards. Set before the first Spawn.
	Log interface{ Write([]byte) (int, error) }

	probe *http.Client

	mu     sync.Mutex
	nextID int
	procs  map[int]*managedProc
	closed bool

	restarts atomic.Int64
	coldHist *metrics.Histogram
	warmHist *metrics.Histogram
	wg       sync.WaitGroup
}

// NewProcRunner returns an empty runner.
func NewProcRunner() *ProcRunner {
	return &ProcRunner{
		probe:    &http.Client{Timeout: 500 * time.Millisecond},
		procs:    make(map[int]*managedProc),
		coldHist: metrics.NewHistogram(),
		warmHist: metrics.NewHistogram(),
	}
}

// managedProc is one supervised child process.
type managedProc struct {
	runner *ProcRunner
	id     int
	spec   ProcSpec
	port   int
	addr   string

	mu       sync.Mutex
	cmd      *exec.Cmd
	state    string
	execAt   time.Time
	cold     time.Duration
	warm     time.Duration
	restarts int
	exitCode int
	// stopRequested marks an operator-initiated drain/kill: the waiter
	// must not restart the process, whatever the exit code. A chaos
	// signal (Signal) deliberately does NOT set it — a SIGKILL from the
	// fault injector is exactly the crash restart-on-crash exists for.
	stopRequested bool
	forced        bool
	backoff       restartBackoff
}

func (p *managedProc) status() ProcStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := ProcStatus{
		ID: p.id, Addr: p.addr, State: p.state,
		ColdStart: p.cold, WarmReady: p.warm,
		Restarts: p.restarts, ExitCode: -1, Forced: p.forced,
	}
	if p.cmd != nil && p.cmd.Process != nil {
		st.PID = p.cmd.Process.Pid
	}
	if p.state == ProcExited {
		st.ExitCode = p.exitCode
	}
	return st
}

// allocPort asks the kernel for a free TCP port. The listener is closed
// before the child binds it, so a raced port is possible but vanishingly
// rare on loopback; a bind failure surfaces as the child exiting before
// ever answering /live, which the readiness gate turns into an error.
func allocPort() (int, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	port := ln.Addr().(*net.TCPAddr).Port
	_ = ln.Close()
	return port, nil
}

// Spawn execs one process for spec and begins supervising it. It returns
// as soon as the process is started; readiness is the caller's probe loop
// (the runner measures cold-start and warm-ready in the background either
// way).
func (r *ProcRunner) Spawn(spec ProcSpec) (ProcStatus, error) {
	if spec.Bin == "" {
		return ProcStatus{}, fmt.Errorf("cluster: proc spec needs a binary path")
	}
	port := spec.Port
	if port == 0 {
		var err error
		if port, err = allocPort(); err != nil {
			return ProcStatus{}, fmt.Errorf("cluster: allocating port: %w", err)
		}
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ProcStatus{}, fmt.Errorf("cluster: runner closed")
	}
	id := r.nextID
	r.nextID++
	p := &managedProc{
		runner: r,
		id:     id,
		spec:   spec,
		port:   port,
		addr:   fmt.Sprintf("127.0.0.1:%d", port),
		backoff: restartBackoff{
			Initial:      spec.InitialBackoff,
			Max:          spec.MaxBackoff,
			HealthyReset: spec.HealthyReset,
		},
	}
	r.procs[id] = p
	r.mu.Unlock()

	p.mu.Lock()
	err := p.startLocked()
	p.mu.Unlock()
	if err != nil {
		r.mu.Lock()
		delete(r.procs, id)
		r.mu.Unlock()
		return ProcStatus{}, err
	}
	return p.status(), nil
}

// startLocked execs the child and arms its watcher goroutines. Callers
// hold p.mu.
func (p *managedProc) startLocked() error {
	args := append(append([]string(nil), p.spec.Args...), "-port", strconv.Itoa(p.port))
	cmd := exec.Command(p.spec.Bin, args...)
	if p.runner.Log != nil {
		cmd.Stdout = p.runner.Log
		cmd.Stderr = p.runner.Log
	}
	// The child dies with the runner (SIGKILL on parent death, linux):
	// even a crashed benchmark harness leaves no orphaned servers behind.
	setPdeathsig(cmd)
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("cluster: exec %s: %w", p.spec.Bin, err)
	}
	p.cmd = cmd
	p.state = ProcStarting
	p.execAt = time.Now()
	p.cold, p.warm = 0, 0
	p.forced = false

	p.runner.wg.Add(2)
	go p.probeStartup(cmd)
	go p.wait(cmd)
	return nil
}

// probeStartup measures the two startup phases: exec → /live (cold start:
// the process can serve HTTP at all) and exec → /ping (warm ready: model
// loaded). It gives up when the process exits first.
func (p *managedProc) probeStartup(cmd *exec.Cmd) {
	defer p.runner.wg.Done()
	base := "http://" + p.addr
	phase := func(path string) (time.Duration, bool) {
		for {
			p.mu.Lock()
			gone := p.cmd != cmd || p.state == ProcExited
			execAt := p.execAt
			p.mu.Unlock()
			if gone {
				return 0, false
			}
			resp, err := p.runner.probe.Get(base + path)
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return time.Since(execAt), true
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	cold, ok := phase(httpapi.LivePath)
	if !ok {
		return
	}
	p.mu.Lock()
	p.cold = cold
	p.mu.Unlock()
	p.runner.coldHist.Record(cold)

	warm, ok := phase(httpapi.ReadyPath)
	if !ok {
		return
	}
	p.mu.Lock()
	p.warm = warm
	if p.state == ProcStarting {
		p.state = ProcReady
	}
	p.mu.Unlock()
	p.runner.warmHist.Record(warm)
}

// wait reaps the child when it exits and — for unexpected deaths of
// restart-enabled pods — respawns it on the same port after backoff.
func (p *managedProc) wait(cmd *exec.Cmd) {
	defer p.runner.wg.Done()
	err := cmd.Wait()
	code := 0
	if err != nil {
		code = -1
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		}
	}

	p.mu.Lock()
	if p.cmd != cmd { // a restart already replaced this incarnation
		p.mu.Unlock()
		return
	}
	p.state = ProcExited
	p.exitCode = code
	requested := p.stopRequested
	restart := p.spec.Restart && !requested
	p.mu.Unlock()

	logEvent().Info("process pod exited", "id", p.id, "addr", p.addr,
		"exit_code", code, "requested", requested)
	if !restart {
		return
	}
	delay := p.backoff.Next(time.Now())
	time.Sleep(delay)

	p.runner.mu.Lock()
	closed := p.runner.closed
	p.runner.mu.Unlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	if closed || p.stopRequested || p.cmd != cmd {
		return
	}
	if err := p.startLocked(); err != nil {
		logEvent().Warn("process pod restart failed", "id", p.id, "err", err)
		return
	}
	p.restarts++
	p.runner.restarts.Add(1)
	logEvent().Info("process pod restarted", "id", p.id, "addr", p.addr,
		"restarts", p.restarts, "backoff", delay)
}

func (r *ProcRunner) proc(id int) (*managedProc, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.procs[id]
	if !ok {
		return nil, fmt.Errorf("cluster: no process pod %d", id)
	}
	return p, nil
}

// Status returns one pod's state.
func (r *ProcRunner) Status(id int) (ProcStatus, error) {
	p, err := r.proc(id)
	if err != nil {
		return ProcStatus{}, err
	}
	return p.status(), nil
}

// List returns every pod's state, ordered by ID.
func (r *ProcRunner) List() []ProcStatus {
	r.mu.Lock()
	ids := make([]int, 0, len(r.procs))
	for id := range r.procs {
		ids = append(ids, id)
	}
	r.mu.Unlock()
	// Insertion sort; fleets are small.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	out := make([]ProcStatus, 0, len(ids))
	for _, id := range ids {
		if p, err := r.proc(id); err == nil {
			out = append(out, p.status())
		}
	}
	return out
}

// Drain begins a graceful shutdown: SIGTERM (the server fails readiness,
// finishes in-flight work bounded by its -drain-timeout, then exits).
// When escalate > 0 the runner adds its own insurance: a still-running
// process is SIGKILLed after that long. The pod will not be restarted.
func (r *ProcRunner) Drain(id int, escalate time.Duration) error {
	p, err := r.proc(id)
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.stopRequested = true
	cmd := p.cmd
	if p.state != ProcExited {
		p.state = ProcDraining
	}
	running := p.state == ProcDraining
	p.mu.Unlock()
	if !running || cmd == nil || cmd.Process == nil {
		return nil
	}
	_ = cmd.Process.Signal(syscall.SIGTERM)
	if escalate > 0 {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			deadline := time.Now().Add(escalate)
			for time.Now().Before(deadline) {
				p.mu.Lock()
				exited := p.state == ProcExited || p.cmd != cmd
				p.mu.Unlock()
				if exited {
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
			p.mu.Lock()
			stillHim := p.cmd == cmd && p.state != ProcExited
			if stillHim {
				p.forced = true
			}
			p.mu.Unlock()
			if stillHim {
				logEvent().Warn("drain escalated to SIGKILL", "id", p.id, "addr", p.addr)
				_ = cmd.Process.Kill()
			}
		}()
	}
	return nil
}

// Kill terminates the pod immediately with SIGKILL — the operator's
// force-stop. The pod will not be restarted.
func (r *ProcRunner) Kill(id int) error {
	p, err := r.proc(id)
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.stopRequested = true
	p.forced = p.forced || p.state != ProcExited
	cmd := p.cmd
	exited := p.state == ProcExited
	p.mu.Unlock()
	if exited || cmd == nil || cmd.Process == nil {
		return nil
	}
	return ignoreFinished(cmd.Process.Kill())
}

// Signal delivers a named POSIX signal ("KILL", "TERM", "STOP", "CONT")
// to the pod — the chaos hook. Unlike Kill/Drain it does NOT mark the pod
// stopped: a restart-enabled pod that a fault injector SIGKILLs is
// respawned, which is precisely the recovery being measured.
func (r *ProcRunner) Signal(id int, sig string) error {
	p, err := r.proc(id)
	if err != nil {
		return err
	}
	s, err := sigFromName(sig)
	if err != nil {
		return err
	}
	p.mu.Lock()
	cmd := p.cmd
	exited := p.state == ProcExited
	p.mu.Unlock()
	if exited || cmd == nil || cmd.Process == nil {
		return nil
	}
	return ignoreFinished(cmd.Process.Signal(s))
}

// WaitExit blocks until the pod's current process exits (or timeout
// elapses) and returns its final status. ok is false on timeout.
func (r *ProcRunner) WaitExit(id int, timeout time.Duration) (ProcStatus, bool) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := r.Status(id)
		if err != nil {
			return st, false
		}
		if st.State == ProcExited {
			return st, true
		}
		if time.Now().After(deadline) {
			return st, false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Forget removes an exited pod from the runner's table (a still-running
// pod is killed first).
func (r *ProcRunner) Forget(id int) error {
	if err := r.Kill(id); err != nil {
		return err
	}
	r.WaitExit(id, 5*time.Second)
	r.mu.Lock()
	delete(r.procs, id)
	r.mu.Unlock()
	return nil
}

// Restarts returns the total number of runner-initiated respawns.
func (r *ProcRunner) Restarts() int64 { return r.restarts.Load() }

// Reap SIGKILLs every process still running — the orphan guard. It is
// idempotent and safe to call at any time; Close calls it.
func (r *ProcRunner) Reap() {
	r.mu.Lock()
	procs := make([]*managedProc, 0, len(r.procs))
	for _, p := range r.procs {
		procs = append(procs, p)
	}
	r.mu.Unlock()
	for _, p := range procs {
		p.mu.Lock()
		p.stopRequested = true
		cmd := p.cmd
		running := p.state != ProcExited
		p.mu.Unlock()
		if running && cmd != nil && cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
	}
	for _, p := range procs {
		r.WaitExit(p.id, 5*time.Second)
	}
}

// Close reaps every child and waits for all supervision goroutines. After
// Close the runner rejects spawns.
func (r *ProcRunner) Close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.Reap()
	r.wg.Wait()
}

// WriteMetrics appends the runner's fleet state to a Prometheus
// exposition: restart counter, per-pod up/down gauges, and the cold-start
// and warm-ready distributions (PR 3 conventions: summaries in seconds).
func (r *ProcRunner) WriteMetrics(pb *metrics.PromBuilder) {
	pb.Counter("etude_pod_restarts_total",
		"Process pods respawned by the runner after an unexpected exit.",
		float64(r.restarts.Load()))
	for _, st := range r.List() {
		up := 0.0
		if st.State == ProcReady || st.State == ProcStarting || st.State == ProcDraining {
			up = 1
		}
		pb.Gauge("etude_pod_up", "Process pod liveness (1 = process running).", up,
			metrics.Label{Name: "pod", Value: strconv.Itoa(st.ID)},
			metrics.Label{Name: "addr", Value: st.Addr})
	}
	if snap := r.coldHist.Snapshot(); snap.Count > 0 {
		pb.Summary("etude_pod_coldstart_seconds",
			"Process pod cold start: exec until /live answers.", snap)
	}
	if snap := r.warmHist.Snapshot(); snap.Count > 0 {
		pb.Summary("etude_pod_warmready_seconds",
			"Process pod warm ready: exec until /ping answers (cold start + model load).", snap)
	}
}

// ignoreFinished drops the error a signal against an already-exited
// process returns — racing a natural death is not a failure.
func ignoreFinished(err error) error {
	if err == nil || err.Error() == "os: process already finished" {
		return nil
	}
	return err
}

// sigFromName maps a wire-protocol signal name to the POSIX signal.
func sigFromName(name string) (syscall.Signal, error) {
	switch name {
	case "KILL":
		return syscall.SIGKILL, nil
	case "TERM":
		return syscall.SIGTERM, nil
	case "STOP":
		return syscall.SIGSTOP, nil
	case "CONT":
		return syscall.SIGCONT, nil
	}
	return 0, fmt.Errorf("cluster: unknown signal %q", name)
}
