package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"etude/internal/httpapi"
)

// slowMiddleware returns a middleware holding every prediction for d —
// in-flight work the drain sequence must wait on.
func slowMiddleware(d time.Duration) func(replica int) func(http.Handler) http.Handler {
	return func(replica int) func(http.Handler) http.Handler {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == httpapi.PredictPath {
					time.Sleep(d)
				}
				next.ServeHTTP(w, r)
			})
		}
	}
}

func TestScaleUpAndDown(t *testing.T) {
	c, key := newClusterWithModel(t)
	svc, err := c.Deploy(ctx(t), "scale", PodSpec{Runtime: RuntimeEtude, ModelKey: key}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := svc.Balancer(BalancerConfig{})
	defer b.Close()

	if err := c.Scale(ctx(t), "scale", 3); err != nil {
		t.Fatal(err)
	}
	if got := len(svc.Pods()); got != 3 {
		t.Fatalf("pods after scale-up = %d, want 3", got)
	}
	// The pre-existing balancer learned the new endpoints.
	if got := len(b.URLs()); got != 3 {
		t.Fatalf("balancer endpoints after scale-up = %d, want 3", got)
	}
	for i := 0; i < 6; i++ {
		if err := b.Predict(ctx(t), httpapi.PredictRequest{Items: []int64{1}}); err != nil {
			t.Fatalf("predict after scale-up: %v", err)
		}
	}

	removed := svc.Pods()[1].URL()
	if err := c.Scale(ctx(t), "scale", 1); err != nil {
		t.Fatal(err)
	}
	if got := len(svc.Pods()); got != 1 {
		t.Fatalf("pods after scale-down = %d, want 1", got)
	}
	if got := len(b.URLs()); got != 1 {
		t.Fatalf("balancer endpoints after scale-down = %d, want 1", got)
	}
	// Drained pods really shut down.
	client := &http.Client{Timeout: 200 * time.Millisecond}
	if resp, err := client.Get(removed + httpapi.ReadyPath); err == nil {
		resp.Body.Close()
		t.Fatalf("scaled-down pod still answering")
	}
	if c.ForcedKills() != 0 {
		t.Fatalf("idle scale-down forced %d kills", c.ForcedKills())
	}

	if err := c.Scale(ctx(t), "scale", 0); err == nil {
		t.Fatalf("scale to zero accepted")
	}
	if err := c.Scale(ctx(t), "missing", 2); err == nil {
		t.Fatalf("scale of unknown deployment accepted")
	}
}

func TestDrainWaitsForInFlight(t *testing.T) {
	c, _ := newClusterWithModel(t)
	svc, err := c.Deploy(ctx(t), "drain", PodSpec{
		Runtime:      RuntimeEtudeStatic,
		DrainTimeout: 2 * time.Second,
		Middleware:   slowMiddleware(300 * time.Millisecond),
	}, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Park one slow request on each pod, then scale down: the drain must
	// let both finish (no forced kill, request succeeds).
	var wg sync.WaitGroup
	var failures atomic.Int64
	for _, p := range svc.Pods() {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			tgt := NewBalancer([]string{url}, BalancerConfig{})
			defer tgt.Close()
			if err := tgt.Predict(ctx(t), httpapi.PredictRequest{Items: []int64{1}}); err != nil {
				failures.Add(1)
			}
		}(p.URL())
	}
	time.Sleep(100 * time.Millisecond) // let the requests reach the pods
	if err := c.Scale(ctx(t), "drain", 1); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d in-flight requests failed during drain", failures.Load())
	}
	if c.ForcedKills() != 0 {
		t.Fatalf("drain forced %d kills despite finishing in time", c.ForcedKills())
	}
}

func TestDrainDeadlineForcesKillAndCounts(t *testing.T) {
	c, _ := newClusterWithModel(t)
	_, err := c.Deploy(ctx(t), "stuck", PodSpec{
		Runtime:      RuntimeEtudeStatic,
		DrainTimeout: 100 * time.Millisecond,
		Middleware:   slowMiddleware(5 * time.Second),
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	svc, _ := c.Service("stuck")
	url := svc.Pods()[0].URL()

	go func() {
		tgt := NewBalancer([]string{url}, BalancerConfig{})
		defer tgt.Close()
		_ = tgt.Predict(ctx(t), httpapi.PredictRequest{Items: []int64{1}})
	}()
	time.Sleep(100 * time.Millisecond)

	start := time.Now()
	if err := c.Delete("stuck"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("delete took %v despite 100ms drain deadline", elapsed)
	}
	if c.ForcedKills() != 1 {
		t.Fatalf("forced kills = %d, want 1", c.ForcedKills())
	}
}

func TestTeardownDrainsConcurrently(t *testing.T) {
	c, _ := newClusterWithModel(t)
	const hold = 400 * time.Millisecond
	svc, err := c.Deploy(ctx(t), "par", PodSpec{
		Runtime:      RuntimeEtudeStatic,
		DrainTimeout: 2 * time.Second,
		Middleware:   slowMiddleware(hold),
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// One in-flight slow request per pod: a serial drain would cost
	// 3×hold, a concurrent one ~1×hold.
	var wg sync.WaitGroup
	for _, p := range svc.Pods() {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			tgt := NewBalancer([]string{url}, BalancerConfig{})
			defer tgt.Close()
			_ = tgt.Predict(ctx(t), httpapi.PredictRequest{Items: []int64{1}})
		}(p.URL())
	}
	time.Sleep(150 * time.Millisecond)
	start := time.Now()
	c.Teardown()
	elapsed := time.Since(start)
	wg.Wait()
	if elapsed >= 2*hold {
		t.Fatalf("teardown of 3 draining pods took %v — drains look serial", elapsed)
	}
}

func TestRollingUpdateUnderLoadZeroErrors(t *testing.T) {
	c, key := newClusterWithModel(t)
	// Generous drain deadline: it is a bound, not a sleep — drains complete
	// as soon as in-flight requests finish. A tight deadline turns CI load
	// (whole suite running in parallel) into spurious forced kills.
	spec := PodSpec{Runtime: RuntimeEtude, ModelKey: key, DrainTimeout: 10 * time.Second}
	svc, err := c.Deploy(ctx(t), "roll", spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	oldURLs := map[string]bool{}
	for _, p := range svc.Pods() {
		oldURLs[p.URL()] = true
	}
	b := svc.Balancer(BalancerConfig{})
	defer b.Close()

	// Sustained load across the whole rollout.
	stop := make(chan struct{})
	var sent, failed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sent.Add(1)
				if err := b.Predict(ctx(t), httpapi.PredictRequest{Items: []int64{1, 2}}); err != nil {
					failed.Add(1)
				}
			}
		}()
	}

	time.Sleep(100 * time.Millisecond)
	newSpec := spec
	newSpec.Server.Workers = 2
	if err := c.RollingUpdate(ctx(t), "roll", newSpec, RolloutConfig{}); err != nil {
		t.Fatalf("rolling update: %v", err)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d/%d requests failed during drained rolling update", failed.Load(), sent.Load())
	}
	if sent.Load() == 0 {
		t.Fatal("no load generated")
	}
	// Every pod was replaced, fleet size preserved, spec updated.
	pods := svc.Pods()
	if len(pods) != 2 {
		t.Fatalf("pods after rollout = %d, want 2", len(pods))
	}
	for _, p := range pods {
		if oldURLs[p.URL()] {
			t.Fatalf("old pod %s survived the rollout", p.URL())
		}
	}
	if svc.Spec().Server.Workers != 2 {
		t.Fatalf("service spec not updated after rollout")
	}
	if c.ForcedKills() != 0 {
		t.Fatalf("drained rollout forced %d kills", c.ForcedKills())
	}
}

func TestRollingUpdateMaxUnavailable(t *testing.T) {
	c, key := newClusterWithModel(t)
	spec := PodSpec{Runtime: RuntimeEtude, ModelKey: key, DrainTimeout: time.Second}
	svc, err := c.Deploy(ctx(t), "ru", spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RollingUpdate(ctx(t), "ru", spec, RolloutConfig{MaxUnavailable: 2}); err != nil {
		t.Fatal(err)
	}
	if got := len(svc.Pods()); got != 3 {
		t.Fatalf("pods after unavailable-first rollout = %d, want 3", got)
	}
	tgt := svc.Target()
	for i := 0; i < 6; i++ {
		if err := tgt.Predict(ctx(t), httpapi.PredictRequest{Items: []int64{1}}); err != nil {
			t.Fatalf("predict after rollout: %v", err)
		}
	}
}

func TestRollingUpdateAbortsOnBadSpec(t *testing.T) {
	c, key := newClusterWithModel(t)
	spec := PodSpec{Runtime: RuntimeEtude, ModelKey: key}
	svc, err := c.Deploy(ctx(t), "abort", spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	bad := spec
	bad.ModelKey = "models/missing.json"
	if err := c.RollingUpdate(ctx(t), "abort", bad, RolloutConfig{}); err == nil {
		t.Fatal("rollout to a missing model succeeded")
	}
	// The old fleet must still be intact and serving.
	if got := len(svc.Pods()); got != 2 {
		t.Fatalf("pods after aborted rollout = %d, want 2", got)
	}
	if err := svc.Target().Predict(ctx(t), httpapi.PredictRequest{Items: []int64{1}}); err != nil {
		t.Fatalf("predict after aborted rollout: %v", err)
	}
}

// crashablePods simulates kill-switch-controlled pods: once tripped, a pod
// answers 503 on everything, liveness included — a dead process as far as
// probes can tell.
type crashablePods struct {
	mu   sync.Mutex
	down map[int]bool
}

func (cp *crashablePods) middleware(replica int) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			cp.mu.Lock()
			down := cp.down[replica]
			cp.mu.Unlock()
			if down {
				http.Error(w, "crashed", http.StatusServiceUnavailable)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

func (cp *crashablePods) crash(replica int) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.down[replica] = true
}

func TestSupervisorRestartsCrashedPod(t *testing.T) {
	c, _ := newClusterWithModel(t)
	cp := &crashablePods{down: map[int]bool{}}
	svc, err := c.Deploy(ctx(t), "sup", PodSpec{
		Runtime:    RuntimeEtudeStatic,
		Middleware: cp.middleware,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := svc.Balancer(BalancerConfig{FailThreshold: 2, ProbeInterval: 10 * time.Millisecond})
	defer b.Close()

	sup, err := c.Supervise("sup", RestartPolicy{
		ProbeInterval:  10 * time.Millisecond,
		FailThreshold:  2,
		InitialBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	// Replica 0 dies for good: only the supervisor can bring capacity
	// back, as a fresh ordinal the kill switch does not target.
	cp.crash(0)
	deadline := time.Now().Add(5 * time.Second)
	for sup.Restarts() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("supervisor never restarted the crashed pod")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := len(svc.Pods()); got != 2 {
		t.Fatalf("pods after supervised restart = %d, want 2", got)
	}
	for _, p := range svc.Pods() {
		if p.Replica() == 0 {
			t.Fatal("crashed ordinal still in the fleet")
		}
	}
	if mttr := sup.MTTR(); mttr <= 0 {
		t.Fatalf("MTTR = %v, want > 0", mttr)
	}
	// The full fleet serves again — including the replacement.
	for i := 0; i < 8; i++ {
		if err := b.Predict(ctx(t), httpapi.PredictRequest{Items: []int64{1}}); err != nil {
			t.Fatalf("predict after restart: %v", err)
		}
	}
}

func TestSupervisorIgnoresDrainingPods(t *testing.T) {
	c, _ := newClusterWithModel(t)
	svc, err := c.Deploy(ctx(t), "nodrain-restart", PodSpec{
		Runtime:      RuntimeEtudeStatic,
		DrainTimeout: time.Second,
		Middleware:   slowMiddleware(300 * time.Millisecond),
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := c.Supervise("nodrain-restart", RestartPolicy{
		ProbeInterval:  10 * time.Millisecond,
		FailThreshold:  2,
		InitialBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	// A graceful scale-down fails readiness on purpose; the supervisor
	// must not mistake it for a crash and resurrect the pod.
	if err := c.Scale(ctx(t), "nodrain-restart", 1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	if got := sup.Restarts(); got != 0 {
		t.Fatalf("supervisor restarted %d draining pods", got)
	}
	if got := len(svc.Pods()); got != 1 {
		t.Fatalf("pods = %d after scale-down under supervision, want 1", got)
	}
}

func TestBalancerUpdatePreservesBreakerState(t *testing.T) {
	good, bad := &flakyPod{}, &flakyPod{}
	bad.down.Store(true)
	goodSrv := httptest.NewServer(good.handler())
	defer goodSrv.Close()
	badSrv := httptest.NewServer(bad.handler())
	defer badSrv.Close()
	extra := &flakyPod{}
	extraSrv := httptest.NewServer(extra.handler())
	defer extraSrv.Close()

	b := NewBalancer([]string{goodSrv.URL, badSrv.URL}, BalancerConfig{
		FailThreshold: 2,
		ProbeInterval: time.Hour, // re-admission effectively off
	})
	defer b.Close()

	req := httpapi.PredictRequest{Items: []int64{1}}
	for i := 0; i < 8; i++ {
		_, _ = b.PredictMeta(context.Background(), req)
	}
	if b.Ejected() != 1 {
		t.Fatalf("ejected = %d, want 1", b.Ejected())
	}

	// Adding an endpoint must not reset the bad pod's open breaker.
	b.Update([]string{goodSrv.URL, badSrv.URL, extraSrv.URL})
	if b.Ejected() != 1 {
		t.Fatalf("ejected after additive update = %d, want 1 (breaker state lost)", b.Ejected())
	}
	before := bad.hits.Load()
	for i := 0; i < 10; i++ {
		if _, err := b.PredictMeta(context.Background(), req); err != nil {
			t.Fatalf("predict with surviving breaker: %v", err)
		}
	}
	if bad.hits.Load() != before {
		t.Fatal("ejected pod received traffic after update")
	}

	// Removing endpoints takes them out of the rotation immediately.
	b.Update([]string{extraSrv.URL})
	gBefore, eBefore := good.hits.Load(), extra.hits.Load()
	for i := 0; i < 10; i++ {
		if _, err := b.PredictMeta(context.Background(), req); err != nil {
			t.Fatalf("predict after removal: %v", err)
		}
	}
	if good.hits.Load() != gBefore {
		t.Fatal("removed endpoint still receiving picks")
	}
	if extra.hits.Load()-eBefore != 10 {
		t.Fatalf("surviving endpoint served %d/10", extra.hits.Load()-eBefore)
	}
	if got := len(b.URLs()); got != 1 {
		t.Fatalf("URLs() = %d entries, want 1", got)
	}
}

func TestBalancerUpdateReleasesRemovedProber(t *testing.T) {
	bad := &flakyPod{}
	bad.down.Store(true)
	srv := httptest.NewServer(bad.handler())
	defer srv.Close()

	b := NewBalancer([]string{srv.URL}, BalancerConfig{
		FailThreshold: 1,
		ProbeInterval: 5 * time.Millisecond,
	})
	req := httpapi.PredictRequest{Items: []int64{1}}
	_, _ = b.PredictMeta(context.Background(), req)
	if b.Ejected() != 1 {
		t.Fatalf("ejected = %d, want 1", b.Ejected())
	}
	// Removing the ejected endpoint must let its probe goroutine exit, so
	// Close returns promptly instead of waiting on an orphan prober.
	b.Update(nil)
	done := make(chan struct{})
	go func() { b.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung: removed endpoint's probe goroutine leaked")
	}
}

func TestServiceEndpointSkipsDrainingPods(t *testing.T) {
	c, _ := newClusterWithModel(t)
	svc, err := c.Deploy(ctx(t), "ep", PodSpec{Runtime: RuntimeEtudeStatic}, 2)
	if err != nil {
		t.Fatal(err)
	}
	pods := svc.Pods()
	pods[0].beginDrain()
	for i := 0; i < 6; i++ {
		if got := svc.Endpoint(); got != pods[1].URL() {
			t.Fatalf("Endpoint() returned draining pod %s", got)
		}
	}
}
