package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"etude/internal/deploy"
	"etude/internal/httpapi"
	"etude/internal/metrics"
)

// This file implements the SLO-guarded canary rollout: a new release is
// deployed to a small slice of a service's pods, its per-version error rate
// and p99 are compared against the baseline cohort over an observation
// window, and the verdict (deploy.Decide — the same pure function the
// discrete-event simulator applies) either promotes the release fleet-wide
// through the store's CURRENT pointer or rolls the canary pods back and
// quarantines the release. The blast radius of a bad release is bounded by
// construction: only the canary slice ever serves it.

// CanaryConfig tunes one rollout.
type CanaryConfig struct {
	// CanaryPods is the slice size pinned to the candidate (default 1; must
	// leave at least one baseline pod).
	CanaryPods int
	// Observe is the pause between verdict evaluations (default 100ms).
	Observe time.Duration
	// Timeout bounds the whole rollout; expiring without a verdict rolls
	// back — an unjudgeable canary is treated as a failed one (default 30s).
	Timeout time.Duration
	// Thresholds are the SLO guardrails (zero fields take
	// deploy.DefaultThresholds).
	Thresholds deploy.Thresholds
}

func (c CanaryConfig) withDefaults() CanaryConfig {
	if c.CanaryPods <= 0 {
		c.CanaryPods = 1
	}
	if c.Observe <= 0 {
		c.Observe = 100 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// CanaryOutcome reports how a rollout ended.
type CanaryOutcome struct {
	// Version is the candidate release.
	Version int
	// Promoted means the candidate met the SLO and now serves fleet-wide.
	Promoted bool
	// RolledBack means a guardrail breached (or the rollout timed out): the
	// canary pods were re-pinned to the baseline version and the candidate
	// quarantined.
	RolledBack bool
	// Quarantined means the candidate failed artifact verification on the
	// canary pods and never served a single request.
	Quarantined bool
	// Reason explains the verdict.
	Reason string
	// BaselineVersion is the version the baseline cohort served throughout.
	BaselineVersion int
	// CanaryP99/BaselineP99 are the cohort latencies at verdict time.
	CanaryP99, BaselineP99 time.Duration
	// CanaryErrorRate is the canary cohort's error rate at verdict time.
	CanaryErrorRate float64
	// CanaryServed counts requests the candidate answered before the
	// verdict — the rollback blast radius in requests.
	CanaryServed int64
	// Decided is the time from canary deploy to verdict.
	Decided time.Duration
}

// CanaryController drives SLO-guarded rollouts against a release store.
// Safe for use from one goroutine per service.
type CanaryController struct {
	store      *deploy.Store
	promotions atomic.Int64
	rollbacks  atomic.Int64
}

// NewCanaryController returns a controller promoting and quarantining
// through store.
func NewCanaryController(store *deploy.Store) *CanaryController {
	return &CanaryController{store: store}
}

// Promotions returns how many releases this controller promoted fleet-wide.
func (cc *CanaryController) Promotions() int64 { return cc.promotions.Load() }

// Rollbacks returns how many releases this controller rolled back.
func (cc *CanaryController) Rollbacks() int64 { return cc.rollbacks.Load() }

// WriteMetrics appends the controller's counters to a Prometheus builder.
func (cc *CanaryController) WriteMetrics(b *metrics.PromBuilder) {
	b.Counter("etude_deploy_promotions_total", "Releases promoted fleet-wide after a clean canary.", float64(cc.promotions.Load()))
	b.Counter("etude_deploy_rollbacks_total", "Releases rolled back by the canary guardrails.", float64(cc.rollbacks.Load()))
}

// Rollout canaries release `version` on svc: deploy it to the canary slice,
// observe per-version health against the baseline cohort, then promote
// fleet-wide or roll back and quarantine. The service's pods must run the
// ETUDE runtime with PodSpec.Releases — the controller talks to their
// /admin/deploy endpoints and scrapes their /metrics.
func (cc *CanaryController) Rollout(ctx context.Context, svc *Service, version int, cfg CanaryConfig) (CanaryOutcome, error) {
	cfg = cfg.withDefaults()
	out := CanaryOutcome{Version: version}

	pods := svc.Pods()
	if len(pods) <= cfg.CanaryPods {
		return out, fmt.Errorf("cluster: canary needs more than %d pods, service has %d", cfg.CanaryPods, len(pods))
	}
	canary, baseline := pods[:cfg.CanaryPods], pods[cfg.CanaryPods:]

	// The baseline version anchors both the comparison cohort and the
	// rollback target; read it off a baseline pod's gauge.
	bv, err := scrapeModelVersion(baseline[0].URL())
	if err != nil {
		return out, fmt.Errorf("cluster: reading baseline version: %w", err)
	}
	if bv == version {
		return out, fmt.Errorf("cluster: candidate v%d is already the baseline", version)
	}
	out.BaselineVersion = bv

	// Deploy the candidate to the canary slice. A pod refusing it (422
	// checksum failure, 409 quarantined) means the release must not serve:
	// the pod has already quarantined it in the store, the incumbent keeps
	// serving, and the rollout is over without a single candidate response.
	started := time.Now()
	for _, p := range canary {
		code, err := postDeploy(ctx, p.URL(), version)
		if err != nil {
			return out, fmt.Errorf("cluster: deploying canary to replica %d: %w", p.Replica(), err)
		}
		if code != http.StatusOK {
			out.Quarantined = true
			out.Reason = fmt.Sprintf("canary pod refused release (HTTP %d)", code)
			out.Decided = time.Since(started)
			cc.rollbacks.Add(1)
			// Re-pin any canary pods an earlier iteration already swapped.
			cc.repin(ctx, canary, bv)
			return out, nil
		}
	}

	deadline := time.Now().Add(cfg.Timeout)
	for {
		select {
		case <-ctx.Done():
			cc.repin(ctx, canary, bv)
			return out, ctx.Err()
		case <-time.After(cfg.Observe):
		}
		cstats := scrapeCohort(canary, version)
		bstats := scrapeCohort(baseline, bv)
		verdict, reason := deploy.Decide(cstats, bstats, cfg.Thresholds)
		if verdict == deploy.VerdictWait && time.Now().Before(deadline) {
			continue
		}
		out.Reason = reason
		out.CanaryP99, out.BaselineP99 = cstats.P99, bstats.P99
		out.CanaryErrorRate = cstats.ErrorRate()
		out.CanaryServed = cstats.Requests
		out.Decided = time.Since(started)

		if verdict == deploy.VerdictPromote {
			if err := cc.store.Promote(version); err != nil {
				cc.repin(ctx, canary, bv)
				return out, fmt.Errorf("cluster: promoting v%d: %w", version, err)
			}
			// Watchers converge on CURRENT on their own; the direct deploy
			// below makes promotion immediate for pods polling slowly (or
			// not at all).
			cc.repin(ctx, baseline, version)
			out.Promoted = true
			cc.promotions.Add(1)
			return out, nil
		}
		// Rollback: a timed-out canary lands here too — an unjudgeable
		// release does not get promoted.
		if verdict == deploy.VerdictWait {
			out.Reason = "observation timeout: " + reason
		}
		cc.repin(ctx, canary, bv)
		if qerr := cc.store.Quarantine(version, out.Reason); qerr != nil {
			logEvent().Warn("quarantine after rollback failed", "version", version, "err", qerr)
		}
		out.RolledBack = true
		cc.rollbacks.Add(1)
		return out, nil
	}
}

// repin points pods at a version, best-effort: rollback must make progress
// even if one pod is mid-restart.
func (cc *CanaryController) repin(ctx context.Context, pods []*Pod, version int) {
	for _, p := range pods {
		if code, err := postDeploy(ctx, p.URL(), version); err != nil || code != http.StatusOK {
			logEvent().Warn("re-pinning pod failed", "replica", p.Replica(), "version", version, "code", code, "err", err)
		}
	}
}

// postDeploy POSTs a hot-swap request to one pod's admin endpoint.
func postDeploy(ctx context.Context, podURL string, version int) (int, error) {
	body, _ := json.Marshal(httpapi.DeployRequest{Version: version})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, podURL+httpapi.DeployPath, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// scrapeCohort aggregates one cohort's per-version health: requests and
// errors sum across pods, p99 is the worst pod's (a single slow canary pod
// must not hide behind a fast sibling).
func scrapeCohort(pods []*Pod, version int) deploy.CohortStats {
	var agg deploy.CohortStats
	for _, p := range pods {
		st, err := scrapeVersionStats(p.URL(), version)
		if err != nil {
			continue
		}
		agg.Requests += st.Requests
		agg.Errors += st.Errors
		if st.P99 > agg.P99 {
			agg.P99 = st.P99
		}
	}
	return agg
}

// scrapeVersionStats reads one pod's version-scoped health families.
func scrapeVersionStats(podURL string, version int) (deploy.CohortStats, error) {
	samples, err := scrapeMetrics(podURL)
	if err != nil {
		return deploy.CohortStats{}, err
	}
	vs := strconv.Itoa(version)
	var st deploy.CohortStats
	for _, s := range samples {
		if s.Labels["version"] != vs {
			continue
		}
		switch s.Name {
		case "etude_version_requests_total":
			st.Requests = int64(s.Value)
		case "etude_version_errors_total":
			st.Errors = int64(s.Value)
		case "etude_version_request_seconds":
			if s.Labels["quantile"] == "0.99" {
				st.P99 = time.Duration(s.Value * float64(time.Second))
			}
		}
	}
	return st, nil
}

// scrapeModelVersion reads a pod's etude_model_version gauge.
func scrapeModelVersion(podURL string) (int, error) {
	samples, err := scrapeMetrics(podURL)
	if err != nil {
		return 0, err
	}
	for _, s := range samples {
		if s.Name == "etude_model_version" {
			return int(s.Value), nil
		}
	}
	return 0, fmt.Errorf("cluster: pod exposes no etude_model_version gauge")
}

func scrapeMetrics(podURL string) ([]metrics.PromSample, error) {
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get(podURL + httpapi.MetricsPath)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: metrics scrape returned HTTP %d", resp.StatusCode)
	}
	return metrics.ParsePromText(resp.Body)
}
