//go:build !linux

package cluster

import "os/exec"

// setPdeathsig is a no-op where parent-death signals are unavailable;
// orphan reaping falls back to ProcRunner.Reap/Close.
func setPdeathsig(cmd *exec.Cmd) {}
