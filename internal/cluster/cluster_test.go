package cluster

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"

	"etude/internal/httpapi"
	"etude/internal/model"
	"etude/internal/objstore"
	"etude/internal/server"
	"etude/internal/torchserve"
)

func newClusterWithModel(t *testing.T) (*Cluster, string) {
	t.Helper()
	bucket := objstore.NewMemBucket()
	manifest := model.Manifest{Model: "core", Config: model.Config{CatalogSize: 100, Seed: 1, TopK: 3}}
	data, err := model.MarshalManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	const key = "models/core.json"
	if err := bucket.Put(key, data); err != nil {
		t.Fatal(err)
	}
	c := New(bucket)
	t.Cleanup(c.Teardown)
	return c, key
}

func ctx(t *testing.T) context.Context {
	t.Helper()
	c, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return c
}

func TestDeployAndServe(t *testing.T) {
	c, key := newClusterWithModel(t)
	svc, err := c.Deploy(ctx(t), "core", PodSpec{Runtime: RuntimeEtude, ModelKey: key}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(svc.Pods()) != 2 {
		t.Fatalf("pods = %d", len(svc.Pods()))
	}
	tgt := svc.Target()
	for i := 0; i < 6; i++ {
		if err := tgt.Predict(ctx(t), httpapi.PredictRequest{Items: []int64{1, 2}}); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}

func TestRoundRobinSpreadsLoad(t *testing.T) {
	c, key := newClusterWithModel(t)
	svc, err := c.Deploy(ctx(t), "rr", PodSpec{Runtime: RuntimeEtude, ModelKey: key}, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for i := 0; i < 9; i++ {
		seen[svc.Endpoint()]++
	}
	if len(seen) != 3 {
		t.Fatalf("round robin hit %d/3 pods", len(seen))
	}
	for url, n := range seen {
		if n != 3 {
			t.Fatalf("pod %s got %d/9 requests", url, n)
		}
	}
}

func TestDeployMissingModelFails(t *testing.T) {
	c, _ := newClusterWithModel(t)
	if _, err := c.Deploy(ctx(t), "bad", PodSpec{Runtime: RuntimeEtude, ModelKey: "models/missing.json"}, 1); err == nil {
		t.Fatalf("deploy of missing artifact must fail")
	}
}

func TestDeployDuplicateName(t *testing.T) {
	c, key := newClusterWithModel(t)
	if _, err := c.Deploy(ctx(t), "dup", PodSpec{Runtime: RuntimeEtude, ModelKey: key}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy(ctx(t), "dup", PodSpec{Runtime: RuntimeEtude, ModelKey: key}, 1); err == nil {
		t.Fatalf("duplicate deployment accepted")
	}
}

func TestDeployZeroReplicas(t *testing.T) {
	c, key := newClusterWithModel(t)
	if _, err := c.Deploy(ctx(t), "zero", PodSpec{Runtime: RuntimeEtude, ModelKey: key}, 0); err == nil {
		t.Fatalf("zero replicas accepted")
	}
}

func TestStaticRuntime(t *testing.T) {
	c, _ := newClusterWithModel(t)
	svc, err := c.Deploy(ctx(t), "static", PodSpec{Runtime: RuntimeEtudeStatic}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Target().Predict(ctx(t), httpapi.PredictRequest{Items: []int64{1}}); err != nil {
		t.Fatal(err)
	}
}

func TestTorchServeRuntime(t *testing.T) {
	c, _ := newClusterWithModel(t)
	cfg := torchserve.DefaultConfig()
	cfg.PerRequestOverhead = time.Millisecond
	svc, err := c.Deploy(ctx(t), "ts", PodSpec{Runtime: RuntimeTorchServe, TorchServe: cfg}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Target().Predict(ctx(t), httpapi.PredictRequest{Items: []int64{1}}); err != nil {
		t.Fatal(err)
	}
}

func TestServiceLookupAndDelete(t *testing.T) {
	c, key := newClusterWithModel(t)
	svc, err := c.Deploy(ctx(t), "lookup", PodSpec{Runtime: RuntimeEtude, ModelKey: key}, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c.Service("lookup")
	if !ok || got != svc {
		t.Fatalf("Service lookup failed")
	}
	url := svc.Pods()[0].URL()
	if err := c.Delete("lookup"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Service("lookup"); ok {
		t.Fatalf("service survived delete")
	}
	if err := c.Delete("lookup"); err == nil {
		t.Fatalf("double delete must error")
	}
	// The pod must actually be down.
	time.Sleep(50 * time.Millisecond)
	client := &http.Client{Timeout: 200 * time.Millisecond}
	if resp, err := client.Get(url + httpapi.ReadyPath); err == nil {
		resp.Body.Close()
		t.Fatalf("pod still answering after delete")
	}
}

func TestReadinessGate(t *testing.T) {
	// A deployment only returns once /ping answers: make sure the returned
	// service is immediately usable under concurrency.
	c, key := newClusterWithModel(t)
	svc, err := c.Deploy(ctx(t), "ready", PodSpec{
		Runtime:  RuntimeEtude,
		ModelKey: key,
		Server:   server.Options{Workers: 2, JIT: true},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	tgt := svc.Target()
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := tgt.Predict(ctx(t), httpapi.PredictRequest{Items: []int64{5}}); err != nil {
				t.Errorf("predict: %v", err)
			}
		}()
	}
	wg.Wait()
}

func TestTeardownStopsEverything(t *testing.T) {
	c, key := newClusterWithModel(t)
	svc1, _ := c.Deploy(ctx(t), "a", PodSpec{Runtime: RuntimeEtude, ModelKey: key}, 1)
	svc2, _ := c.Deploy(ctx(t), "b", PodSpec{Runtime: RuntimeEtudeStatic}, 1)
	// Teardown empties service membership; capture the URLs first.
	urls := map[string]string{
		svc1.Name(): svc1.Pods()[0].URL(),
		svc2.Name(): svc2.Pods()[0].URL(),
	}
	c.Teardown()
	time.Sleep(50 * time.Millisecond)
	client := &http.Client{Timeout: 200 * time.Millisecond}
	for name, url := range urls {
		if resp, err := client.Get(url + httpapi.ReadyPath); err == nil {
			resp.Body.Close()
			t.Fatalf("pod of %s still up after teardown", name)
		}
	}
}

func TestPodAccessorsAndBucket(t *testing.T) {
	c, key := newClusterWithModel(t)
	svc, err := c.Deploy(ctx(t), "accessors", PodSpec{Runtime: RuntimeEtude, ModelKey: key}, 1)
	if err != nil {
		t.Fatal(err)
	}
	pod := svc.Pods()[0]
	if pod.Addr() == "" {
		t.Fatalf("empty pod address")
	}
	if pod.URL() != "http://"+pod.Addr() {
		t.Fatalf("URL %q does not match Addr %q", pod.URL(), pod.Addr())
	}
	if svc.Name() != "accessors" {
		t.Fatalf("service name = %q", svc.Name())
	}
	if c.Bucket() == nil {
		t.Fatalf("nil bucket")
	}
}

func TestUnknownRuntimeRejected(t *testing.T) {
	c, _ := newClusterWithModel(t)
	if _, err := c.Deploy(ctx(t), "bad-rt", PodSpec{Runtime: Runtime(99)}, 1); err == nil {
		t.Fatalf("unknown runtime accepted")
	}
}
